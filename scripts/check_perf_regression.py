#!/usr/bin/env python3
"""Perf-regression gate for bench_perf_sweep reports.

Compares a fresh sweep (swarmlab.batch/* schema, as written by
``bench_perf_sweep --json``) against the committed baseline at the repo
root and fails when any tier's events-per-second throughput regressed by
more than the threshold.

Usage:
    check_perf_regression.py BASELINE FRESH [--threshold 0.20]

Only tiers present in BOTH reports are compared (so a small-tier CI run
gates against the baseline's small tier without requiring the full
ladder). events/s = results[].events / results[].wall.sim — the events
numerator is deterministic; the wall-clock denominator varies with the
host, which is why the baseline should be refreshed from the CI-uploaded
artifact (same runner class), not from a developer machine. A fresh run
much FASTER than baseline exits 0 but prints a refresh hint.
"""
import argparse
import json
import sys


def events_per_second(report):
    """Tier name -> events/s, from a swarmlab.batch report."""
    schema = report.get("schema", "")
    if not str(schema).startswith("swarmlab.batch/"):
        sys.exit(f"error: unexpected report schema {schema!r}")
    out = {}
    for entry in report.get("results", []):
        name = entry.get("name")
        events = entry.get("events", 0)
        sim_wall = entry.get("wall", {}).get("sim", 0.0)
        if not name or not sim_wall:
            continue
        out[name] = events / sim_wall
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max tolerated fractional regression (default 0.20)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = events_per_second(json.load(f))
    with open(args.fresh) as f:
        fresh = events_per_second(json.load(f))

    shared = sorted(set(base) & set(fresh))
    if not shared:
        sys.exit("error: no common tiers between baseline and fresh report")

    failures = []
    print(f"{'tier':<14}{'baseline ev/s':>16}{'fresh ev/s':>16}{'delta':>10}")
    for tier in shared:
        delta = (fresh[tier] - base[tier]) / base[tier]
        print(f"{tier:<14}{base[tier]:>16.0f}{fresh[tier]:>16.0f}"
              f"{delta:>+9.1%}")
        if delta < -args.threshold:
            failures.append(tier)
        elif delta > 0.5:
            print(f"  note: {tier} is >50% faster than baseline — consider "
                  f"refreshing {args.baseline} from the CI artifact")

    if failures:
        print(f"\nFAIL: events/s regressed >{args.threshold:.0%} on: "
              + ", ".join(failures))
        return 1
    print(f"\nOK: no tier regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
