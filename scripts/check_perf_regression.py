#!/usr/bin/env python3
"""Perf-regression gate for bench_perf_sweep reports.

Compares a fresh sweep (swarmlab.batch/* schema, as written by
``bench_perf_sweep --json``) against the committed baseline at the repo
root and fails when any (tier, backend) pair's events-per-second
throughput regressed by more than its threshold.

Usage:
    check_perf_regression.py BASELINE FRESH [--threshold 0.20]
        [--pair-threshold TIER:BACKEND=FRACTION ...]

Pairs are keyed by (tier name, network backend) — the same tier run on
a different backend is a different workload, so a fluid-vs-packet mixup
can never silently pass the gate. Only pairs present in BOTH reports
are compared (so a small-tier CI run gates against the baseline's small
tiers without requiring the full ladder). --pair-threshold overrides the
global threshold for one pair; the packet tiers typically want a looser
bound than the fluid ones because their wall time is shorter and so
noisier.

events/s = results[].events / results[].wall.sim — the events numerator
is deterministic; the wall-clock denominator varies with the host, which
is why the baseline should be refreshed from the CI-uploaded artifact
(same runner class), not from a developer machine. A fresh run much
FASTER than baseline exits 0 but prints a refresh hint.
"""
import argparse
import json
import sys


def load_report(path, role):
    """Parse a report file, exiting with an actionable message (not a
    traceback) when it is missing, unreadable, or not a batch report."""
    try:
        with open(path) as f:
            report = json.load(f)
    except FileNotFoundError:
        sys.exit(
            f"error: {role} report {path!r} does not exist.\n"
            f"  baseline: the committed BENCH_perf.json at the repo root "
            f"(refresh it from the CI perf-gate artifact);\n"
            f"  fresh: produce one with "
            f"'bench_perf_sweep --tier small --json <path>'."
        )
    except OSError as e:
        sys.exit(f"error: cannot read {role} report {path!r}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(
            f"error: {role} report {path!r} is not valid JSON "
            f"(line {e.lineno}, column {e.colno}: {e.msg}).\n"
            f"  The file may be truncated (e.g. a killed bench run) — "
            f"regenerate it with bench_perf_sweep --json."
        )
    if not isinstance(report, dict):
        sys.exit(
            f"error: {role} report {path!r} holds a JSON "
            f"{type(report).__name__}, expected a swarmlab.batch object."
        )
    schema = report.get("schema", "")
    if not str(schema).startswith("swarmlab.batch/"):
        sys.exit(
            f"error: {role} report {path!r} has schema {schema!r}, "
            f"expected swarmlab.batch/* (is this a bench_perf_sweep "
            f"--json report?)"
        )
    return report


def events_per_second(report):
    """(tier name, backend) -> events/s, from a swarmlab.batch report.

    Pre-v6 reports lack the per-entry backend field; those entries key
    under "fluid", the only backend that existed then.
    """
    out = {}
    for entry in report.get("results", []):
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        backend = entry.get("backend") or "fluid"
        events = entry.get("events", 0)
        wall = entry.get("wall", {})
        sim_wall = wall.get("sim", 0.0) if isinstance(wall, dict) else 0.0
        if not name or not sim_wall:
            continue
        out[(name, backend)] = events / sim_wall
    return out


def parse_pair_thresholds(specs):
    """["pkt_small:packet=0.3", ...] -> {("pkt_small", "packet"): 0.3}."""
    out = {}
    for spec in specs:
        key, eq, value = spec.partition("=")
        tier, colon, backend = key.partition(":")
        if not eq or not colon or not tier or not backend:
            sys.exit(
                f"error: bad --pair-threshold {spec!r} — expected "
                f"TIER:BACKEND=FRACTION (e.g. pkt_small:packet=0.3)."
            )
        try:
            out[(tier, backend)] = float(value)
        except ValueError:
            sys.exit(
                f"error: bad --pair-threshold {spec!r} — {value!r} is not "
                f"a number."
            )
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max tolerated fractional regression (default 0.20)")
    ap.add_argument("--pair-threshold", action="append", default=[],
                    metavar="TIER:BACKEND=FRACTION",
                    help="override the threshold for one (tier, backend) "
                         "pair; repeatable")
    args = ap.parse_args()
    pair_thresholds = parse_pair_thresholds(args.pair_threshold)

    base = events_per_second(load_report(args.baseline, "baseline"))
    fresh = events_per_second(load_report(args.fresh, "fresh"))

    if not base or not fresh:
        which = args.baseline if not base else args.fresh
        sys.exit(
            f"error: {which!r} contains no usable tier entries "
            f"(each needs a name, an events count and wall.sim > 0)."
        )
    shared = sorted(set(base) & set(fresh))
    if not shared:
        def fmt(keys):
            return ", ".join(f"{t}[{b}]" for t, b in sorted(keys))
        sys.exit(
            "error: no common (tier, backend) pairs between baseline "
            f"({fmt(base)}) and fresh report ({fmt(fresh)}) — did the "
            f"tier names or backend assignments change?"
        )

    failures = []
    print(f"{'tier[backend]':<22}{'baseline ev/s':>16}{'fresh ev/s':>16}"
          f"{'delta':>10}{'gate':>8}")
    for pair in shared:
        tier, backend = pair
        label = f"{tier}[{backend}]"
        threshold = pair_thresholds.get(pair, args.threshold)
        delta = (fresh[pair] - base[pair]) / base[pair]
        print(f"{label:<22}{base[pair]:>16.0f}{fresh[pair]:>16.0f}"
              f"{delta:>+9.1%}{threshold:>8.0%}")
        if delta < -threshold:
            failures.append(label)
        elif delta > 0.5:
            print(f"  note: {label} is >50% faster than baseline — consider "
                  f"refreshing {args.baseline} from the CI artifact")

    unknown = sorted(set(pair_thresholds) - set(base) - set(fresh))
    for tier, backend in unknown:
        print(f"  note: --pair-threshold {tier}:{backend} matched no entry "
              f"in either report")

    if failures:
        print("\nFAIL: events/s regressed beyond the gate on: "
              + ", ".join(failures))
        return 1
    print("\nOK: no (tier, backend) pair regressed beyond its threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
