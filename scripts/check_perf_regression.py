#!/usr/bin/env python3
"""Perf-regression gate for bench_perf_sweep reports.

Compares a fresh sweep (swarmlab.batch/* schema, as written by
``bench_perf_sweep --json``) against the committed baseline at the repo
root and fails when any tier's events-per-second throughput regressed by
more than the threshold.

Usage:
    check_perf_regression.py BASELINE FRESH [--threshold 0.20]

Only tiers present in BOTH reports are compared (so a small-tier CI run
gates against the baseline's small tier without requiring the full
ladder). events/s = results[].events / results[].wall.sim — the events
numerator is deterministic; the wall-clock denominator varies with the
host, which is why the baseline should be refreshed from the CI-uploaded
artifact (same runner class), not from a developer machine. A fresh run
much FASTER than baseline exits 0 but prints a refresh hint.
"""
import argparse
import json
import sys


def load_report(path, role):
    """Parse a report file, exiting with an actionable message (not a
    traceback) when it is missing, unreadable, or not a batch report."""
    try:
        with open(path) as f:
            report = json.load(f)
    except FileNotFoundError:
        sys.exit(
            f"error: {role} report {path!r} does not exist.\n"
            f"  baseline: the committed BENCH_perf.json at the repo root "
            f"(refresh it from the CI perf-gate artifact);\n"
            f"  fresh: produce one with "
            f"'bench_perf_sweep --tier small --json <path>'."
        )
    except OSError as e:
        sys.exit(f"error: cannot read {role} report {path!r}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(
            f"error: {role} report {path!r} is not valid JSON "
            f"(line {e.lineno}, column {e.colno}: {e.msg}).\n"
            f"  The file may be truncated (e.g. a killed bench run) — "
            f"regenerate it with bench_perf_sweep --json."
        )
    if not isinstance(report, dict):
        sys.exit(
            f"error: {role} report {path!r} holds a JSON "
            f"{type(report).__name__}, expected a swarmlab.batch object."
        )
    schema = report.get("schema", "")
    if not str(schema).startswith("swarmlab.batch/"):
        sys.exit(
            f"error: {role} report {path!r} has schema {schema!r}, "
            f"expected swarmlab.batch/* (is this a bench_perf_sweep "
            f"--json report?)"
        )
    return report


def events_per_second(report):
    """Tier name -> events/s, from a swarmlab.batch report."""
    out = {}
    for entry in report.get("results", []):
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        events = entry.get("events", 0)
        wall = entry.get("wall", {})
        sim_wall = wall.get("sim", 0.0) if isinstance(wall, dict) else 0.0
        if not name or not sim_wall:
            continue
        out[name] = events / sim_wall
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max tolerated fractional regression (default 0.20)")
    args = ap.parse_args()

    base = events_per_second(load_report(args.baseline, "baseline"))
    fresh = events_per_second(load_report(args.fresh, "fresh"))

    if not base or not fresh:
        which = args.baseline if not base else args.fresh
        sys.exit(
            f"error: {which!r} contains no usable tier entries "
            f"(each needs a name, an events count and wall.sim > 0)."
        )
    shared = sorted(set(base) & set(fresh))
    if not shared:
        sys.exit(
            "error: no common tiers between baseline "
            f"({', '.join(sorted(base))}) and fresh report "
            f"({', '.join(sorted(fresh))}) — did the tier names change?"
        )

    failures = []
    print(f"{'tier':<14}{'baseline ev/s':>16}{'fresh ev/s':>16}{'delta':>10}")
    for tier in shared:
        delta = (fresh[tier] - base[tier]) / base[tier]
        print(f"{tier:<14}{base[tier]:>16.0f}{fresh[tier]:>16.0f}"
              f"{delta:>+9.1%}")
        if delta < -args.threshold:
            failures.append(tier)
        elif delta > 0.5:
            print(f"  note: {tier} is >50% faster than baseline — consider "
                  f"refreshing {args.baseline} from the CI artifact")

    if failures:
        print(f"\nFAIL: events/s regressed >{args.threshold:.0%} on: "
              + ", ".join(failures))
        return 1
    print(f"\nOK: no tier regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
