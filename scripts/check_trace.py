#!/usr/bin/env python3
"""Validate swarmlab observability artifacts.

Two kinds of artifact, checkable together in one invocation:

* JSONL event traces (``swarmlab.trace/1``, written by ``--trace`` /
  ``ObservationPlan::trace_path``): header line carries the schema,
  every event line carries ``t``/``kind``/``remote``/``detail`` with
  non-decreasing ``t``, and the trailer's ``events``/``dropped``
  counts must agree with the lines actually present.
* Batch reports (``--report REPORT.json``, schema ``swarmlab.batch/7``):
  every result must carry a ``telemetry`` object with a valid
  ``scope``; swarm scopes must include the SwarmProbe ``metrics``
  snapshot (counters/gauges/histograms/series with well-formed
  histogram buckets and ``[t, v]`` series samples), and any ``trace``
  block must be internally consistent.

Exit 0 when every artifact validates, 1 otherwise (all problems are
listed, not just the first).

Usage:
    check_trace.py TRACE.jsonl [TRACE2.jsonl ...]
    check_trace.py --report REPORT.json [TRACE.jsonl ...]
"""
import json
import sys

TRACE_SCHEMA = "swarmlab.trace/1"
REPORT_SCHEMA = "swarmlab.batch/7"
SCOPES = ("local", "sampled", "all")


def fail(errors, path, msg):
    errors.append(f"{path}: {msg}")


def check_trace(path, errors):
    """Validates one swarmlab.trace/1 JSONL file."""
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(errors, path, f"cannot read: {e.strerror}")
        return
    if len(lines) < 2:
        fail(errors, path, f"expected header + trailer, got {len(lines)} "
             f"line(s)")
        return
    rows = []
    for i, line in enumerate(lines, 1):
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(errors, path, f"line {i}: invalid JSON ({e.msg})")
            return
    header, events, trailer = rows[0], rows[1:-1], rows[-1]
    if header.get("schema") != TRACE_SCHEMA:
        fail(errors, path, f"header schema {header.get('schema')!r}, "
             f"expected {TRACE_SCHEMA!r}")
    last_t = None
    for i, ev in enumerate(events, 2):
        where = f"line {i}"
        if not isinstance(ev, dict):
            fail(errors, path, f"{where}: event is not an object")
            continue
        missing = [k for k in ("t", "kind", "remote", "detail")
                   if k not in ev]
        if missing:
            fail(errors, path, f"{where}: missing {', '.join(missing)}")
            continue
        t = ev["t"]
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            fail(errors, path, f"{where}: t is not a number")
            continue
        if last_t is not None and t < last_t:
            fail(errors, path, f"{where}: t={t} goes backwards "
                 f"(previous {last_t})")
        last_t = t
        if not isinstance(ev["kind"], str) or not ev["kind"]:
            fail(errors, path, f"{where}: kind must be a non-empty string")
        if not isinstance(ev["remote"], int) or isinstance(ev["remote"],
                                                           bool):
            fail(errors, path, f"{where}: remote must be an integer")
        if not isinstance(ev["detail"], str):
            fail(errors, path, f"{where}: detail must be a string")
    if not isinstance(trailer, dict) or "events" not in trailer:
        fail(errors, path, "missing trailer {\"events\": ..., "
             "\"dropped\": ...}")
        return
    if trailer.get("events") != len(events):
        fail(errors, path, f"trailer claims {trailer.get('events')} "
             f"events, file holds {len(events)}")
    dropped = trailer.get("dropped")
    if not isinstance(dropped, int) or isinstance(dropped, bool) \
            or dropped < 0:
        fail(errors, path, f"trailer dropped={dropped!r} is not a "
             f"non-negative integer")


def check_metrics(where, metrics, errors, path):
    for group in ("counters", "gauges", "histograms", "series"):
        if not isinstance(metrics.get(group), dict):
            fail(errors, path, f"{where}: metrics.{group} missing or not "
                 f"an object")
    for name, value in metrics.get("counters", {}).items():
        if not isinstance(value, (int, float)) or value < 0:
            fail(errors, path, f"{where}: counter {name!r} = {value!r}")
    for name, h in metrics.get("histograms", {}).items():
        if not isinstance(h, dict):
            fail(errors, path, f"{where}: histogram {name!r} not an object")
            continue
        bounds, counts = h.get("bounds"), h.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list) \
                or len(counts) != len(bounds) + 1:
            fail(errors, path, f"{where}: histogram {name!r} needs "
                 f"len(counts) == len(bounds)+1")
            continue
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            fail(errors, path, f"{where}: histogram {name!r} bounds not "
                 f"strictly increasing")
        if h.get("count") != sum(counts):
            fail(errors, path, f"{where}: histogram {name!r} count "
                 f"{h.get('count')} != sum(counts) {sum(counts)}")
    for name, s in metrics.get("series", {}).items():
        if not isinstance(s, dict) or not isinstance(s.get("samples"),
                                                     list):
            fail(errors, path, f"{where}: series {name!r} needs a samples "
                 f"array")
            continue
        last_t = None
        for j, pair in enumerate(s["samples"]):
            if not isinstance(pair, list) or len(pair) != 2:
                fail(errors, path, f"{where}: series {name!r} sample {j} "
                     f"is not a [t, v] pair")
                break
            if last_t is not None and pair[0] < last_t:
                fail(errors, path, f"{where}: series {name!r} time goes "
                     f"backwards at sample {j}")
            last_t = pair[0]


def check_report(path, errors):
    """Validates the telemetry blocks of one swarmlab.batch/7 report."""
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        fail(errors, path, f"cannot read: {e.strerror}")
        return
    except json.JSONDecodeError as e:
        fail(errors, path, f"invalid JSON ({e.msg})")
        return
    if report.get("schema") != REPORT_SCHEMA:
        fail(errors, path, f"schema {report.get('schema')!r}, expected "
             f"{REPORT_SCHEMA!r}")
        return
    results = report.get("results")
    if not isinstance(results, list) or not results:
        fail(errors, path, "report has no results")
        return
    for entry in results:
        where = f"result id={entry.get('id')}"
        telemetry = entry.get("telemetry")
        if not isinstance(telemetry, dict):
            fail(errors, path, f"{where}: missing telemetry object "
                 f"(schema v7 requires one per result)")
            continue
        scope = telemetry.get("scope")
        if scope not in SCOPES:
            fail(errors, path, f"{where}: telemetry scope {scope!r} not in "
                 f"{SCOPES}")
            continue
        if scope == "sampled" and not isinstance(telemetry.get("sample_k"),
                                                 int):
            fail(errors, path, f"{where}: sampled scope without sample_k")
        if scope != "local":
            metrics = telemetry.get("metrics")
            if not isinstance(metrics, dict):
                fail(errors, path, f"{where}: scope {scope!r} without a "
                     f"metrics snapshot")
            else:
                check_metrics(where, metrics, errors, path)
        trace = telemetry.get("trace")
        if trace is not None:
            if trace.get("format") not in ("csv", "jsonl"):
                fail(errors, path, f"{where}: trace format "
                     f"{trace.get('format')!r}")
            for key in ("events", "dropped"):
                v = trace.get(key)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    fail(errors, path, f"{where}: trace {key}={v!r}")
            if trace.get("write_error"):
                fail(errors, path, f"{where}: trace file write failed "
                     f"(path {trace.get('path')!r})")


def main(argv):
    args = argv[1:]
    report = None
    if args and args[0] == "--report":
        if len(args) < 2:
            print(__doc__, file=sys.stderr)
            return 2
        report, args = args[1], args[2:]
    if report is None and not args:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    checked = 0
    if report is not None:
        check_report(report, errors)
        checked += 1
    for path in args:
        check_trace(path, errors)
        checked += 1
    for e in errors:
        print(f"FAIL {e}")
    if errors:
        print(f"{len(errors)} problem(s) across {checked} artifact(s)")
        return 1
    print(f"OK: {checked} artifact(s) validated")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
