#!/usr/bin/env python3
"""Print the deterministic core of a swarmlab.batch report.

Strips the fields that legitimately vary between runs of the same sweep
— ``host``, ``jobs``, ``wall_seconds`` and every per-result ``wall``
object — and prints the rest as stable, sorted-key JSON. Two runs of the
same (jobs, master seed) sweep must produce byte-identical output here
for any worker count, and an interrupted-then-resumed sweep must match
its uninterrupted twin; CI's resilience job diffs exactly this view.
The schema-v6 perf counters (``fastpath``, ``compactions``,
``train_segments``) are deterministic and therefore part of the core —
a coalescing or event-dispatch behaviour change shows up as a diff
here, not just as a throughput delta. The schema-v7 per-result
``telemetry`` object (observation scope, SwarmProbe metrics snapshot,
trace accounting) is likewise deterministic — every value is derived
from observer callbacks on the simulated trajectory, never from wall
clocks — and stays in the core: a passivity bug that perturbs
observation shows up as a diff here.

This is the Python twin of runner::deterministic_view() (see
src/runner/batch_runner.h), usable on archived artifacts without a
build tree.

Usage:
    report_core.py REPORT.json            # print core to stdout
    report_core.py A.json B.json          # exit 1 if cores differ
"""
import json
import sys


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except FileNotFoundError:
        sys.exit(f"error: report {path!r} does not exist")
    except OSError as e:
        sys.exit(f"error: cannot read {path!r}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(
            f"error: {path!r} is not valid JSON "
            f"(line {e.lineno}, column {e.colno}: {e.msg})"
        )
    if not isinstance(report, dict):
        sys.exit(
            f"error: {path!r} holds a JSON {type(report).__name__}, "
            f"expected a swarmlab.batch object"
        )
    return report


def core(report):
    out = {k: v for k, v in report.items()
           if k not in ("host", "jobs", "wall_seconds")}
    results = out.get("results")
    if isinstance(results, list):
        out["results"] = [
            {k: v for k, v in entry.items() if k != "wall"}
            if isinstance(entry, dict) else entry
            for entry in results
        ]
    return out


def dumps(report):
    return json.dumps(core(report), indent=2, sort_keys=True)


def main(argv):
    if len(argv) == 2:
        print(dumps(load(argv[1])))
        return 0
    if len(argv) == 3:
        a, b = dumps(load(argv[1])), dumps(load(argv[2]))
        if a != b:
            import difflib
            for line in difflib.unified_diff(
                    a.splitlines(), b.splitlines(),
                    fromfile=argv[1], tofile=argv[2], lineterm=""):
                print(line)
            print(f"\nFAIL: deterministic cores of {argv[1]} and {argv[2]} "
                  f"differ")
            return 1
        print(f"OK: deterministic cores of {argv[1]} and {argv[2]} are "
              f"identical")
        return 0
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
