// Fig. 7 reproduction: CDF of piece interarrival time, torrent 10
// (steady state). Paper shape: the last 100 pieces arrive with the same
// interarrival distribution as all pieces (NO last pieces problem), while
// the first 100 pieces are significantly slower (a FIRST pieces problem).
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

void print_cdf_row(const char* label, const swarmlab::stats::Cdf& cdf) {
  if (cdf.empty()) {
    std::printf("%-12s (empty)\n", label);
    return;
  }
  std::printf("%-12s n=%4zu  %s  max=%.3g\n", label, cdf.count(),
              swarmlab::stats::describe_quantiles(cdf).c_str(), cdf.max());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  auto cfg = swarm::scenario_from_table1(10, bench::deep_dive_limits());

  std::printf("=== Fig. 7: CDF of piece interarrival time, torrent 10 ===\n");
  bench::print_scale(cfg, seed);

  // The paper uses the first/last 100 of torrent 10's 1393 pieces (~7%).
  // Keep the same fraction at our scale.
  const std::size_t k =
      std::max<std::size_t>(10, cfg.num_pieces * 100 / 1393);
  std::printf("first/last window: %zu pieces (paper: 100 of 1393)\n", k);
  auto run = bench::run_scenario(std::move(cfg), seed, 500.0);
  const auto result = instrument::analyze_piece_interarrival(*run.log, k);

  std::printf("\ninterarrival-time quantiles (seconds):\n");
  print_cdf_row("all pieces", result.all);
  print_cdf_row("100 first", result.first_k);
  print_cdf_row("100 last", result.last_k);

  std::printf("\nCDF on a log-spaced axis (fraction of interarrivals <= "
              "t):\n%10s %8s %8s %8s\n", "t (s)", "all", "first", "last");
  if (!result.all.empty()) {
    const double lo = std::max(0.01, result.all.min());
    const double hi = std::max(lo * 10, result.all.max());
    for (const auto& [x, f] : result.all.log_spaced_points(lo, hi, 14)) {
      std::printf("%10.2f %8.2f %8.2f %8.2f\n", x, f,
                  result.first_k.at(x), result.last_k.at(x));
    }
  }

  const double med_all = result.all.quantile(0.5);
  const double med_first = result.first_k.quantile(0.5);
  const double med_last = result.last_k.quantile(0.5);
  std::printf("\npaper check — first pieces problem, no last pieces "
              "problem:\n  median(first)/median(all) = %.2f  (paper: "
              "first pieces clearly slower, >> 1)\n  median(last)/"
              "median(all)  = %.2f  (paper: ~1)\n",
              med_all > 0 ? med_first / med_all : 0.0,
              med_all > 0 ? med_last / med_all : 0.0);
  std::printf("end game engaged at t=%.0f; completion at t=%.0f "
              "(end game affects only the download tail)\n",
              run.log->end_game_time(),
              run.runner->local_peer().completion_time());
  return 0;
}
