// Fig. 3 reproduction: number of rarest pieces in the local peer set over
// time, torrent 8 (transient). Paper shape: the rarest-pieces set shrinks
// linearly, at a rate bounded by the initial seed's upload capacity —
// evidence that the transient-phase duration depends only on the initial
// seed, not on the piece-selection strategy.
#include <algorithm>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  auto cfg = swarm::scenario_from_table1(8, bench::deep_dive_limits());
  const double piece_kb = cfg.piece_size / 1024.0;
  const double seed_up_kbs = cfg.initial_seed_upload / 1024.0;

  std::printf("=== Fig. 3: number of rarest pieces, torrent 8 "
              "(transient), leecher state ===\n");
  bench::print_scale(cfg, seed);

  instrument::LocalPeerLog log(cfg.num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
  instrument::AvailabilitySampler sampler(runner.simulation(),
                                          runner.local_peer(), 20.0);
  const double end = runner.run_until_local_complete(0.0);
  log.finalize(end);
  const double ls_end = log.seed_time() >= 0 ? log.seed_time() : end;

  std::printf("\n%10s %10s\n", "t (s)", "#rarest");
  double first_t = -1, first_v = 0, last_t = 0, last_v = 0;
  for (const auto& s : sampler.rarest_set_size().samples()) {
    if (s.time > ls_end) break;
    if (first_t < 0) {
      first_t = s.time;
      first_v = s.value;
    }
    last_t = s.time;
    last_v = s.value;
  }
  for (const auto& s : sampler.rarest_set_size().downsample(28)) {
    if (s.time > ls_end) break;
    std::printf("%10.0f %10.0f\n", s.time, s.value);
  }

  // Linear-decline check: pieces served per second vs the seed's capacity.
  double seed_rate_kbs = 0.0;
  if (!runner.initial_seed_ids().empty() && end > 0.0) {
    const peer::Peer* s =
        runner.swarm().find_peer(runner.initial_seed_ids().front());
    seed_rate_kbs = s->total_uploaded() / 1024.0 / end;
  }
  if (last_t > first_t && first_v > last_v) {
    const double slope = (first_v - last_v) / (last_t - first_t);
    const double implied_rate_kbs = slope * piece_kb;
    std::printf("\nobserved decline: %.4f pieces/s  ==> first-copy "
                "service rate %.1f kB/s\n",
                slope, implied_rate_kbs);
    std::printf("initial seed upload: %.1f of %.1f kB/s used "
                "(saturated)\n", seed_rate_kbs, seed_up_kbs);
    std::printf("paper check — the decline is LINEAR (constant-rate "
                "service by the initial seed) and bounded by the seed's "
                "upload capacity; the paper infers 36 kB/s for its "
                "torrent 8 from the same construction. The gap between "
                "the first-copy rate and the raw upload rate is duplicate "
                "and strict-priority fragment service — the duplicate "
                "effect §IV-A.4 attributes to rarest first in transient "
                "state.\n");
  } else {
    std::printf("\n(no decline measured — torrent left transient state "
                "immediately at this scale)\n");
  }
  return 0;
}
