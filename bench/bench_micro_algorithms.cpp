// Micro-benchmarks (google-benchmark) for the core algorithmic kernels:
// rarest-first piece picking, choke-round selection, availability
// bookkeeping, the wire codec, bencode, and SHA-1 throughput. These back
// the paper's simplicity argument (§IV-A.4): rarest first is cheap —
// microseconds per decision — where network coding is CPU intensive.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "core/availability.h"
#include "core/bitfield.h"
#include "core/choker.h"
#include "core/piece_picker.h"
#include "sim/rng.h"
#include "wire/bencode.h"
#include "wire/messages.h"
#include "wire/sha1.h"

namespace {

using namespace swarmlab;

void BM_RarestFirstPick(benchmark::State& state) {
  const auto pieces = static_cast<std::uint32_t>(state.range(0));
  sim::Rng rng(1);
  core::Bitfield local(pieces);
  core::Bitfield remote = core::Bitfield::full(pieces);
  core::AvailabilityMap avail(pieces);
  for (std::uint32_t p = 0; p < pieces; ++p) {
    if (rng.chance(0.4)) local.set(p);
    const auto copies = rng.index(20);
    for (std::size_t i = 0; i < copies; ++i) avail.add_have(p);
  }
  core::RarestFirstPicker picker(4);
  const std::function<bool(wire::PieceIndex)> startable =
      [](wire::PieceIndex) { return true; };
  const core::PickContext ctx{local, remote, avail, startable, 10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(picker.pick(ctx, rng));
  }
}
BENCHMARK(BM_RarestFirstPick)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ChokeRoundLeecher(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  core::ProtocolParams params;
  core::LeecherChoker choker(params);
  std::vector<core::ChokeCandidate> cs(peers);
  for (std::size_t i = 0; i < peers; ++i) {
    cs[i].key = i + 1;
    cs[i].interested = rng.chance(0.7);
    cs[i].download_rate = rng.uniform(0, 1e5);
  }
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(choker.select(cs, round++, rng));
  }
}
BENCHMARK(BM_ChokeRoundLeecher)->Arg(20)->Arg(80)->Arg(320);

void BM_ChokeRoundNewSeed(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  core::ProtocolParams params;
  core::NewSeedChoker choker(params);
  std::vector<core::ChokeCandidate> cs(peers);
  for (std::size_t i = 0; i < peers; ++i) {
    cs[i].key = i + 1;
    cs[i].interested = rng.chance(0.7);
    cs[i].unchoked = rng.chance(0.1);
    cs[i].last_unchoke_time = rng.uniform(0, 1000);
  }
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(choker.select(cs, round++, rng));
  }
}
BENCHMARK(BM_ChokeRoundNewSeed)->Arg(20)->Arg(80)->Arg(320);

void BM_AvailabilityHave(benchmark::State& state) {
  const auto pieces = static_cast<std::uint32_t>(state.range(0));
  core::AvailabilityMap avail(pieces);
  sim::Rng rng(1);
  std::uint32_t p = 0;
  for (auto _ : state) {
    avail.add_have(p);
    p = (p + 1) % pieces;
  }
}
BENCHMARK(BM_AvailabilityHave)->Arg(1024);

void BM_AvailabilityAddPeer(benchmark::State& state) {
  const auto pieces = static_cast<std::uint32_t>(state.range(0));
  core::AvailabilityMap avail(pieces);
  sim::Rng rng(1);
  core::Bitfield have(pieces);
  for (std::uint32_t p = 0; p < pieces; ++p) {
    if (rng.chance(0.5)) have.set(p);
  }
  for (auto _ : state) {
    avail.add_peer(have);
    avail.remove_peer(have);
  }
}
BENCHMARK(BM_AvailabilityAddPeer)->Arg(1024);

void BM_MessageCodecRoundTrip(benchmark::State& state) {
  const wire::Message msg{wire::RequestMsg{42, 16384, 16384}};
  for (auto _ : state) {
    const auto bytes = wire::encode_message(msg);
    std::size_t consumed = 0;
    benchmark::DoNotOptimize(wire::decode_message(bytes, 1024, consumed));
  }
}
BENCHMARK(BM_MessageCodecRoundTrip);

void BM_BitfieldCodec(benchmark::State& state) {
  const auto pieces = static_cast<std::uint32_t>(state.range(0));
  wire::BitfieldMsg msg;
  msg.bits.assign(pieces, false);
  for (std::uint32_t p = 0; p < pieces; p += 3) msg.bits[p] = true;
  for (auto _ : state) {
    const auto bytes = wire::encode_message(wire::Message{msg}, pieces);
    std::size_t consumed = 0;
    benchmark::DoNotOptimize(
        wire::decode_message(bytes, pieces, consumed));
  }
}
BENCHMARK(BM_BitfieldCodec)->Arg(1024)->Arg(4096);

void BM_Bencode(benchmark::State& state) {
  wire::BValue::Dict dict;
  dict.emplace("announce", wire::BValue("http://tracker/announce"));
  wire::BValue::Dict info;
  info.emplace("length", wire::BValue(700 * 1024 * 1024));
  info.emplace("name", wire::BValue("content.bin"));
  info.emplace("piece length", wire::BValue(262144));
  info.emplace("pieces", wire::BValue(std::string(2800 * 20, 'x')));
  dict.emplace("info", wire::BValue(std::move(info)));
  const wire::BValue root{std::move(dict)};
  for (auto _ : state) {
    const std::string encoded = wire::bencode(root);
    benchmark::DoNotOptimize(wire::bdecode(encoded));
  }
}
BENCHMARK(BM_Bencode);

void BM_Sha1Piece(benchmark::State& state) {
  const std::vector<std::uint8_t> piece(256 * 1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::Sha1::hash(
        std::span<const std::uint8_t>(piece.data(), piece.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(piece.size()));
}
BENCHMARK(BM_Sha1Piece);

}  // namespace

BENCHMARK_MAIN();
