// Fig. 8 reproduction: CDF of block interarrival time, torrent 10.
// Paper shape: no last blocks problem (the last-100 curve tracks the
// all-blocks curve), but a first blocks problem — the first 100 blocks
// arrive much more slowly because the newcomer must wait to be
// optimistically unchoked (paper §IV-A.3: an area of improvement).
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

void print_cdf_row(const char* label, const swarmlab::stats::Cdf& cdf) {
  if (cdf.empty()) {
    std::printf("%-12s (empty)\n", label);
    return;
  }
  std::printf("%-12s n=%5zu  %s  max=%.3g\n", label, cdf.count(),
              swarmlab::stats::describe_quantiles(cdf).c_str(), cdf.max());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  auto cfg = swarm::scenario_from_table1(10, bench::deep_dive_limits());

  std::printf("=== Fig. 8: CDF of block interarrival time, torrent 10 ===\n");
  bench::print_scale(cfg, seed);

  auto run = bench::run_scenario(std::move(cfg), seed, 500.0);
  const auto result = instrument::analyze_block_interarrival(*run.log, 100);

  std::printf("\ninterarrival-time quantiles (seconds):\n");
  print_cdf_row("all blocks", result.all);
  print_cdf_row("100 first", result.first_k);
  print_cdf_row("100 last", result.last_k);

  std::printf("\nCDF on a log-spaced axis:\n%10s %8s %8s %8s\n", "t (s)",
              "all", "first", "last");
  if (!result.all.empty()) {
    const double lo = std::max(0.001, result.all.min());
    const double hi = std::max(lo * 10, result.all.max());
    for (const auto& [x, f] : result.all.log_spaced_points(lo, hi, 14)) {
      std::printf("%10.3f %8.2f %8.2f %8.2f\n", x, f,
                  result.first_k.at(x), result.last_k.at(x));
    }
  }

  const double p90_all = result.all.quantile(0.9);
  const double p90_first = result.first_k.quantile(0.9);
  const double p90_last = result.last_k.quantile(0.9);
  std::printf("\npaper check — first blocks problem, no last blocks "
              "problem:\n  p90(first)/p90(all) = %.2f  (paper: >> 1; the "
              "startup wait dominates)\n  p90(last)/p90(all)  = %.2f  "
              "(paper: ~1; largest interarrivals all belong to the first "
              "blocks)\n",
              p90_all > 0 ? p90_first / p90_all : 0.0,
              p90_all > 0 ? p90_last / p90_all : 0.0);
  return 0;
}
