// Fig. 10 reproduction: correlation between the number of times the local
// peer unchokes a remote peer and the time that remote peer spent
// interested in the local peer — torrent 7, leecher state (top) and seed
// state (bottom). Paper shape: in leecher state there is no correlation
// (a few peers are unchoked many times — the regular unchokes — while
// optimistic unchokes spread thinly with interested time); in seed state
// the new choke algorithm produces a strong correlation (equal service
// time per interested peer).
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

void print_scatter(const char* title,
                   const swarmlab::instrument::UnchokeCorrelation& c) {
  std::printf("%s: n=%zu, spearman=%.2f, pearson=%.2f\n", title,
              c.unchokes.size(), c.spearman, c.pearson);
  // Compact scatter: bucket interested time into deciles and report the
  // unchoke-count range per bucket.
  if (c.unchokes.empty()) return;
  double max_t = 0;
  for (const double t : c.interested_time) max_t = std::max(max_t, t);
  if (max_t <= 0) return;
  constexpr int kBuckets = 8;
  for (int b = 0; b < kBuckets; ++b) {
    const double lo = max_t * b / kBuckets;
    const double hi = max_t * (b + 1) / kBuckets;
    double min_u = 1e18, max_u = -1, sum_u = 0;
    int n = 0;
    for (std::size_t i = 0; i < c.unchokes.size(); ++i) {
      if (c.interested_time[i] >= lo &&
          (c.interested_time[i] < hi || b == kBuckets - 1)) {
        min_u = std::min(min_u, c.unchokes[i]);
        max_u = std::max(max_u, c.unchokes[i]);
        sum_u += c.unchokes[i];
        ++n;
      }
    }
    if (n == 0) continue;
    std::printf("  interested %6.0f..%6.0f s: n=%3d  unchokes min=%3.0f "
                "mean=%6.1f max=%3.0f\n", lo, hi, n, min_u, sum_u / n,
                max_u);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  auto cfg = swarm::scenario_from_table1(7, bench::deep_dive_limits());

  std::printf("=== Fig. 10: unchokes vs interested time, torrent 7 ===\n");
  bench::print_scale(cfg, seed);
  std::printf("\n");

  // Long seed-state tail so the rotation statistics accumulate. The
  // local peer's log lives inside a SwarmProbe now (attached through the
  // ObserverHub under the default local-only plan) — the correlation
  // analyzers see the identical callback stream.
  const std::uint32_t num_pieces = cfg.num_pieces;
  instrument::MetricsRegistry registry;
  instrument::SwarmProbe probe(registry, num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), seed, nullptr, &probe);
  const double end = runner.run_until_local_complete(8000.0);
  probe.finalize(end);
  const auto ls = probe.unchoke_correlation(runner.local_peer_id(), false);
  const auto ss = probe.unchoke_correlation(runner.local_peer_id(), true);

  print_scatter("leecher state (top graph)", ls);
  std::printf("\n");
  print_scatter("seed state (bottom graph)", ss);

  // Leecher-state concentration: the paper's signature is that most peers
  // are unchoked a few times (optimistic unchokes) while a small set is
  // unchoked frequently (regular unchokes).
  double total = 0;
  std::vector<double> sorted = ls.unchokes;
  std::sort(sorted.rbegin(), sorted.rend());
  for (const double u : sorted) total += u;
  double top5 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
    top5 += sorted[i];
  }
  std::printf("\npaper check — leecher state: top-5 peers take %.0f%% of "
              "all unchoke events (few peers unchoked frequently); seed "
              "state: strong unchoke/interested-time correlation "
              "(spearman=%.2f, paper shows a clear linear band)\n",
              total > 0 ? 100.0 * top5 / total : 0.0, ss.spearman);
  return 0;
}
