// Fig. 4 reproduction: evolution of the number of copies of pieces in the
// local peer set, torrent 7 (steady state). Paper shape: the least
// replicated piece always has at least one copy (no rare pieces — the
// torrent never re-enters transient state), and the mean stays bounded
// between min and max, tracking the peer set size.
#include <algorithm>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  auto cfg = swarm::scenario_from_table1(7, bench::deep_dive_limits());

  std::printf("=== Fig. 4: replication of pieces in the peer set, "
              "torrent 7 (steady state) ===\n");
  bench::print_scale(cfg, seed);

  instrument::LocalPeerLog log(cfg.num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
  instrument::AvailabilitySampler sampler(runner.simulation(),
                                          runner.local_peer(), 20.0);
  const double end = runner.run_until_local_complete(3000.0);
  log.finalize(end);

  std::printf("\n%10s %8s %8s %8s\n", "t (s)", "min", "mean", "max");
  const auto& min_s = sampler.min_copies();
  const auto& max_s = sampler.max_copies();
  for (const auto& s : sampler.mean_copies().downsample(30)) {
    std::printf("%10.0f %8.1f %8.2f %8.1f\n", s.time,
                min_s.value_at(s.time), s.value, max_s.value_at(s.time));
  }

  // Steady-state check: min copies during the local peer's leecher phase.
  double min_while_leecher = 1e18;
  const double ls_end = log.seed_time() >= 0 ? log.seed_time() : end;
  for (const auto& s : min_s.samples()) {
    if (s.time > 30.0 && s.time <= ls_end) {  // skip pre-bitfield startup
      min_while_leecher = std::min(min_while_leecher, s.value);
    }
  }
  std::printf("\nlocal became seed at t=%.0f (drop in copies afterwards "
              "mirrors the paper: a new seed closes connections to "
              "seeds)\n", log.seed_time());
  std::printf("paper check — least replicated piece never drops to zero "
              "in steady state: min over leecher phase = %.0f (>= 1)\n",
              min_while_leecher);
  return 0;
}
