// Fig. 1 reproduction: entropy characterization over all 26 torrents.
//
// Top graph: ratio a/b per remote leecher (a = time the local peer in
// leecher state is interested in the remote peer, b = time the remote
// spent in the peer set while the local peer was a leecher).
// Bottom graph: ratio c/d (c = time the remote is interested in the local
// peer). The paper reports 20th percentile, median, 80th percentile per
// torrent; ideal entropy puts all three at 1.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  const auto limits = bench::sweep_limits();

  std::printf("=== Fig. 1: entropy characterization ===\n");
  std::printf("seed=%llu  scale: max_peers=%u max_pieces=%u  "
              "residency filter=10s\n\n",
              static_cast<unsigned long long>(seed), limits.max_peers,
              limits.max_pieces);
  std::printf("%3s %5s | %-28s | %-28s | %s\n", "ID", "n",
              "local->remote  p20  med  p80", "remote->local  p20  med  p80",
              "median bar (top graph)");
  std::printf("---------------------------------------------------------"
              "--------------------------------------\n");

  double steady_medians = 0.0;
  int steady_count = 0;
  double transient_medians = 0.0;
  int transient_count = 0;

  for (int id = 1; id <= 26; ++id) {
    auto cfg = swarm::scenario_from_table1(id, limits);
    const bool transient = !cfg.leechers_warm || cfg.initial_seeds == 0;
    auto run = bench::run_scenario(std::move(cfg), seed + id, 1000.0);
    const auto entropy = instrument::analyze_entropy(*run.log);
    std::printf("%3d %5zu |            %5.2f %5.2f %5.2f |            "
                "%5.2f %5.2f %5.2f | %s%s\n",
                id, entropy.local_interest_ratios.size(), entropy.p20_local,
                entropy.median_local, entropy.p80_local, entropy.p20_remote,
                entropy.median_remote, entropy.p80_remote,
                bench::bar(entropy.median_local).c_str(),
                transient ? "  (transient)" : "");
    if (transient) {
      transient_medians += entropy.median_local;
      ++transient_count;
    } else {
      steady_medians += entropy.median_local;
      ++steady_count;
    }
  }

  std::printf("\nsummary: mean median a/b — steady-state torrents %.2f "
              "(paper: ~1), transient torrents %.2f (paper: depressed "
              "during startup; rarest first is not the cause)\n",
              steady_count > 0 ? steady_medians / steady_count : 0.0,
              transient_count > 0 ? transient_medians / transient_count
                                  : 0.0);
  return 0;
}
