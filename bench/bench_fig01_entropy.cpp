// Fig. 1 reproduction: entropy characterization over all 26 torrents.
//
// Top graph: ratio a/b per remote leecher (a = time the local peer in
// leecher state is interested in the remote peer, b = time the remote
// spent in the peer set while the local peer was a leecher).
// Bottom graph: ratio c/d (c = time the remote is interested in the local
// peer). The paper reports 20th percentile, median, 80th percentile per
// torrent; ideal entropy puts all three at 1.
//
// Runs through the parallel BatchRunner (--jobs N / --json PATH); output
// is identical for any worker count.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const auto opts = bench::parse_bench_options(argc, argv);
  const auto limits = bench::sweep_limits();

  std::printf("=== Fig. 1: entropy characterization ===\n");
  std::printf("seed=%llu  scale: max_peers=%u max_pieces=%u  "
              "residency filter=10s\n\n",
              static_cast<unsigned long long>(opts.seed), limits.max_peers,
              limits.max_pieces);
  std::printf("%3s %5s | %-28s | %-28s | %s\n", "ID", "n",
              "local->remote  p20  med  p80", "remote->local  p20  med  p80",
              "median bar (top graph)");
  std::printf("---------------------------------------------------------"
              "--------------------------------------\n");

  const auto jobs = bench::table1_bench_jobs(opts.seed, limits);
  const auto outcome = bench::run_sweep(
      "bench_fig01_entropy", opts, jobs,
      [](const runner::BatchJob& job, const runner::JobContext& ctx) {
        return runner::run_scenario_job(
            job, ctx, 1000.0,
            [&job](const swarm::ScenarioRunner& sr,
                   const instrument::LocalPeerLog& log,
                   runner::RunResult& res) {
              const auto& cfg = sr.config();
              const bool transient =
                  !cfg.leechers_warm || cfg.initial_seeds == 0;
              const auto entropy = instrument::analyze_entropy(log);
              bench::appendf(
                  res.text,
                  "%3d %5zu |            %5.2f %5.2f %5.2f |            "
                  "%5.2f %5.2f %5.2f | %s%s\n",
                  job.id, entropy.local_interest_ratios.size(),
                  entropy.p20_local, entropy.median_local, entropy.p80_local,
                  entropy.p20_remote, entropy.median_remote,
                  entropy.p80_remote, bench::bar(entropy.median_local).c_str(),
                  transient ? "  (transient)" : "");
              res.metrics["n"] = static_cast<unsigned long long>(
                  entropy.local_interest_ratios.size());
              res.metrics["p20_local"] = entropy.p20_local;
              res.metrics["median_local"] = entropy.median_local;
              res.metrics["p80_local"] = entropy.p80_local;
              res.metrics["p20_remote"] = entropy.p20_remote;
              res.metrics["median_remote"] = entropy.median_remote;
              res.metrics["p80_remote"] = entropy.p80_remote;
              res.metrics["transient"] = transient;
            });
      });

  double steady_medians = 0.0;
  int steady_count = 0;
  double transient_medians = 0.0;
  int transient_count = 0;
  for (const auto& res : outcome.results) {
    if (!res.ok()) continue;  // failed jobs carry no entropy metrics
    const double median = res.metrics.find("median_local")->as_double();
    if (res.metrics.find("transient")->as_bool()) {
      transient_medians += median;
      ++transient_count;
    } else {
      steady_medians += median;
      ++steady_count;
    }
  }

  std::printf("\nsummary: mean median a/b — steady-state torrents %.2f "
              "(paper: ~1), transient torrents %.2f (paper: depressed "
              "during startup; rarest first is not the cause)\n",
              steady_count > 0 ? steady_medians / steady_count : 0.0,
              transient_count > 0 ? transient_medians / transient_count
                                  : 0.0);
  return outcome.exit_code;
}
