// Extension E4: the choke-algorithm equilibrium (paper §IV-B.2 future
// work). The paper observes that "each peer elects a small subset of
// peers to upload data to" and conjectures an equilibrium in the peer
// selection. This bench quantifies that equilibrium on torrent 7:
//
//  * tenure — for how many consecutive 10 s rounds an unchoked peer
//    keeps its slot (long tenures = stable pairs, not churn);
//  * mutuality — how often a peer we unchoke is simultaneously unchoking
//    us, against the rate a random assignment would produce (lift > 1 =
//    genuine pair formation);
//  * the comparison against a random peer selection (optimistic-style
//    unchokes only), where no equilibrium can form.
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

swarmlab::instrument::MarketStats run_market(bool rate_based,
                                             std::uint64_t seed) {
  using namespace swarmlab;
  auto cfg = swarm::scenario_from_table1(7, bench::deep_dive_limits());
  if (!rate_based) {
    // Null model: every peer re-draws its 4 unchoke slots uniformly at
    // random each round — no rate feedback, so no equilibrium can form.
    for (core::ProtocolParams* p :
         {&cfg.remote_params, &cfg.local_params}) {
      p->leecher_choker = core::LeecherChokerKind::kRandomRotation;
    }
  }
  // The market log lives inside a SwarmProbe (local-only plan); the
  // probe's finalize() closes open tenures exactly as the direct
  // ChokeMarketLog attachment did.
  const std::uint32_t num_pieces = cfg.num_pieces;
  instrument::MetricsRegistry registry;
  instrument::SwarmProbe probe(registry, num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), seed, nullptr, &probe);
  const double end = runner.run_until_local_complete(0.0);
  probe.finalize(end);
  return probe.market_stats(runner.local_peer_id());
}

void print_stats(const char* name,
                 const swarmlab::instrument::MarketStats& m) {
  std::vector<double> tenures = m.tenures;
  std::sort(tenures.begin(), tenures.end());
  const double p90 =
      tenures.empty() ? 0.0 : tenures[tenures.size() * 9 / 10];
  std::printf("%-26s %7llu %10.1f %8.0f %8.0f %10.2f %10.2f %8.2fx\n",
              name, static_cast<unsigned long long>(m.rounds),
              m.mean_tenure, p90, m.max_tenure, m.mutuality,
              m.null_mutuality, m.mutuality_lift());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);

  std::printf("=== Extension E4: the choke-algorithm equilibrium "
              "(torrent 7, leecher state) ===\n");
  std::printf("seed=%llu  tenure in 10 s choke rounds; mutuality = "
              "P(unchoked peer also unchokes us)\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-26s %7s %10s %8s %8s %10s %10s %8s\n", "peer selection",
              "rounds", "mean ten.", "p90", "max", "mutuality", "random",
              "lift");

  print_stats("choke (rate-based)", run_market(true, seed));
  print_stats("random rotation", run_market(false, seed));

  std::printf("\npaper check (§IV-B.2) — the rate-based choke algorithm "
              "forms a stable market: unchoke tenures far beyond the "
              "rotation baseline and mutuality well above the random "
              "rate (lift > 1). Pure random rotation shows tenures of "
              "~1-2 rounds and no mutuality lift: the equilibrium comes "
              "from the rate feedback loop, which is exactly why the "
              "paper finds that 'each peer elects a small subset of "
              "peers' and why reciprocation works without bit-level "
              "accounting.\n");
  return 0;
}
