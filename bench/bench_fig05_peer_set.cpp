// Fig. 5 reproduction: evolution of the local peer set size, torrent 7.
// Paper shape: ramps quickly to (and hovers near) the maximum of 80, with
// fluctuations from churn; explains the copy-count variations of Fig. 4.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  auto cfg = swarm::scenario_from_table1(7, bench::deep_dive_limits());
  const auto max_ps = cfg.local_params.max_peer_set;

  std::printf("=== Fig. 5: size of the local peer set, torrent 7 ===\n");
  bench::print_scale(cfg, seed);

  instrument::LocalPeerLog log(cfg.num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
  instrument::AvailabilitySampler sampler(runner.simulation(),
                                          runner.local_peer(), 20.0);
  const double end = runner.run_until_local_complete(3000.0);
  log.finalize(end);

  std::printf("\n%10s %8s  %s\n", "t (s)", "peers", "");
  for (const auto& s : sampler.peer_set_size().downsample(30)) {
    std::printf("%10.0f %8.0f  %s\n", s.time, s.value,
                bench::bar(s.value / max_ps, 40).c_str());
  }
  std::printf("\npaper check — the peer set ramps quickly, then "
              "fluctuates with churn; Fig. 4's copy-count variations "
              "track exactly these fluctuations. Observed max %.0f, "
              "final %.0f (cap %u). The paper's torrent 7 pinned the "
              "80-peer cap because hundreds of leechers were live at all "
              "times; the scaled swarm's concurrent population is an "
              "order of magnitude smaller, so the set sits lower while "
              "showing the same dynamics.\n",
              sampler.peer_set_size().max_value(),
              sampler.peer_set_size().samples().back().value, max_ps);
  return 0;
}
