// Fig. 11 reproduction: contribution of remote peers to the bytes the
// local peer uploads in SEED state, all 26 torrents, sets of 5 remote
// peers (best first). Paper shape: with the new seed-state choke
// algorithm every interested peer receives roughly the same service time,
// so the per-set shares are far more uniform than in leecher state —
// except for torrents where fewer than ~10 peers ever downloaded from the
// local seed.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  const auto limits = bench::sweep_limits();

  std::printf("=== Fig. 11: seed-state contribution per sets of 5 remote "
              "peers ===\n");
  std::printf("seed=%llu  scale: max_peers=%u max_pieces=%u  (new seed "
              "choke algorithm, mainline >= 4.0.0)\n\n",
              static_cast<unsigned long long>(seed), limits.max_peers,
              limits.max_pieces);
  std::printf("%3s %6s | %-30s | %s\n", "ID", "peers",
              "upload share  s0   s1   s2   s3   s4",
              "service gini + top-5 bar");
  std::printf("-----------------------------------------------------------"
              "--------------\n");

  double top_share_sum = 0.0;
  int counted = 0;
  for (int id = 1; id <= 26; ++id) {
    auto cfg = swarm::scenario_from_table1(id, limits);
    // Long seeding tail so the rotation serves many peers.
    auto run = bench::run_scenario(std::move(cfg), seed + id, 6000.0);
    const auto sets = instrument::analyze_seed_fairness(*run.log, 5, 6);
    std::size_t served = 0;
    std::vector<double> per_peer;
    for (const auto& [pid, r] : run.log->records()) {
      if (r.up_bytes_seed > 0) {
        ++served;
        per_peer.push_back(static_cast<double>(r.up_bytes_seed));
      }
    }
    const double g = stats::gini(per_peer);
    std::printf("%3d %6zu |          ", id, served);
    for (int s = 0; s < 5; ++s) {
      std::printf(" %4.2f", sets.upload_fraction[s]);
    }
    std::printf(" | gini=%.2f %s\n", g,
                bench::bar(sets.upload_fraction[0]).c_str());
    if (served >= 10) {
      top_share_sum += sets.upload_fraction[0];
      ++counted;
    }
  }
  std::printf("\npaper check — equal service: across torrents where >= 10 "
              "peers were served, the top-5 set averages %.2f of the "
              "seed-state upload (the paper's Fig. 11 shows roughly "
              "even shares across sets, vs ~0.7+ for the top set in "
              "leecher state; torrents with < 10 served peers "
              "concentrate trivially, as the paper notes for torrents 6 "
              "and 15)\n",
              counted > 0 ? top_share_sum / counted : 0.0);
  return 0;
}
