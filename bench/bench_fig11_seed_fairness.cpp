// Fig. 11 reproduction: contribution of remote peers to the bytes the
// local peer uploads in SEED state, all 26 torrents, sets of 5 remote
// peers (best first). Paper shape: with the new seed-state choke
// algorithm every interested peer receives roughly the same service time,
// so the per-set shares are far more uniform than in leecher state —
// except for torrents where fewer than ~10 peers ever downloaded from the
// local seed.
//
// Runs through the parallel BatchRunner (--jobs N / --json PATH); output
// is identical for any worker count.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const auto opts = bench::parse_bench_options(argc, argv);
  const auto limits = bench::sweep_limits();

  std::printf("=== Fig. 11: seed-state contribution per sets of 5 remote "
              "peers ===\n");
  std::printf("seed=%llu  scale: max_peers=%u max_pieces=%u  (new seed "
              "choke algorithm, mainline >= 4.0.0)\n\n",
              static_cast<unsigned long long>(opts.seed), limits.max_peers,
              limits.max_pieces);
  std::printf("%3s %6s | %-30s | %s\n", "ID", "peers",
              "upload share  s0   s1   s2   s3   s4",
              "service gini + top-5 bar");
  std::printf("-----------------------------------------------------------"
              "--------------\n");

  const auto jobs = bench::table1_bench_jobs(opts.seed, limits);
  const auto outcome = bench::run_sweep(
      "bench_fig11_seed_fairness", opts, jobs,
      [](const runner::BatchJob& job, const runner::JobContext& ctx) {
        // Long seeding tail so the rotation serves many peers.
        return runner::run_scenario_job(
            job, ctx, 6000.0,
            [&job](const swarm::ScenarioRunner&,
                   const instrument::LocalPeerLog& log,
                   runner::RunResult& res) {
              const auto sets = instrument::analyze_seed_fairness(log, 5, 6);
              std::size_t served = 0;
              std::vector<double> per_peer;
              for (const auto& [pid, r] : log.records()) {
                if (r.up_bytes_seed > 0) {
                  ++served;
                  per_peer.push_back(static_cast<double>(r.up_bytes_seed));
                }
              }
              const double g = stats::gini(per_peer);
              bench::appendf(res.text, "%3d %6zu |          ", job.id,
                             served);
              for (int s = 0; s < 5; ++s) {
                bench::appendf(res.text, " %4.2f", sets.upload_fraction[s]);
              }
              bench::appendf(res.text, " | gini=%.2f %s\n", g,
                             bench::bar(sets.upload_fraction[0]).c_str());
              auto upload = runner::json::Value::array();
              for (int s = 0; s < 5; ++s) {
                upload.push_back(sets.upload_fraction[s]);
              }
              res.metrics["served"] =
                  static_cast<unsigned long long>(served);
              res.metrics["upload_fraction"] = std::move(upload);
              res.metrics["gini"] = g;
            });
      });

  double top_share_sum = 0.0;
  int counted = 0;
  for (const auto& res : outcome.results) {
    if (!res.ok()) continue;  // failed jobs carry no fairness metrics
    if (res.metrics.find("served")->as_uint64() >= 10) {
      top_share_sum +=
          res.metrics.find("upload_fraction")->at(0).as_double();
      ++counted;
    }
  }
  std::printf("\npaper check — equal service: across torrents where >= 10 "
              "peers were served, the top-5 set averages %.2f of the "
              "seed-state upload (the paper's Fig. 11 shows roughly "
              "even shares across sets, vs ~0.7+ for the top set in "
              "leecher state; torrents with < 10 served peers "
              "concentrate trivially, as the paper notes for torrents 6 "
              "and 15)\n",
              counted > 0 ? top_share_sum / counted : 0.0);
  return outcome.exit_code;
}
