// Table I reproduction: torrent characteristics.
//
// Prints, per torrent: the published row (seeds, leechers, ratio, size)
// alongside the scaled scenario actually simulated and the observed
// maximum peer set size of the local peer in leecher state (column 5 of
// the paper's table is an observed quantity).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  const auto limits = bench::sweep_limits();

  std::printf("=== Table I: torrent characteristics (paper vs scaled) ===\n");
  std::printf("seed=%llu  scale: max_peers=%u max_pieces=%u\n\n",
              static_cast<unsigned long long>(seed), limits.max_peers,
              limits.max_pieces);
  std::printf("%3s | %7s %7s %8s %7s | %5s %5s %6s %7s | %6s\n", "ID",
              "S(pap)", "L(pap)", "S/L", "MB", "S(sim)", "L(sim)", "pieces",
              "MB(sim)", "MaxPS");
  std::printf("-----------------------------------------------------------"
              "--------------------\n");

  for (int id = 1; id <= 26; ++id) {
    const auto& spec =
        swarm::table1_torrents()[static_cast<std::size_t>(id - 1)];
    auto cfg = swarm::scenario_from_table1(id, limits);
    const double sim_mb = static_cast<double>(cfg.num_pieces) *
                          cfg.piece_size / (1024.0 * 1024.0);
    const std::uint32_t sim_seeds = cfg.initial_seeds;
    const std::uint32_t sim_leechers = cfg.initial_leechers;
    auto run = bench::run_scenario(std::move(cfg), seed + id, 500.0);
    const double ratio =
        spec.leechers > 0
            ? static_cast<double>(spec.seeds) / spec.leechers
            : 0.0;
    std::printf("%3d | %7u %7u %8.5f %7u | %5u %5u %6u %7.0f | %6zu\n", id,
                spec.seeds, spec.leechers, ratio, spec.size_mb, sim_seeds,
                sim_leechers, run.runner->config().num_pieces, sim_mb,
                run.runner->local_peer().max_peer_set_leecher());
  }
  std::printf("\nMaxPS = observed maximum peer set size of the local peer "
              "in leecher state\n(caps at the mainline default of 80; "
              "smaller torrents saturate below it, as in the paper).\n");
  return 0;
}
