// Table I reproduction: torrent characteristics.
//
// Prints, per torrent: the published row (seeds, leechers, ratio, size)
// alongside the scaled scenario actually simulated and the observed
// maximum peer set size of the local peer in leecher state (column 5 of
// the paper's table is an observed quantity).
//
// Runs the 26 torrents through the parallel BatchRunner; pass --jobs N
// to use N workers (output and JSON results are identical for any N)
// and --json PATH for the machine-readable report.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const auto opts = bench::parse_bench_options(argc, argv);
  const auto limits = bench::sweep_limits();

  std::printf("=== Table I: torrent characteristics (paper vs scaled) ===\n");
  std::printf("seed=%llu  scale: max_peers=%u max_pieces=%u\n\n",
              static_cast<unsigned long long>(opts.seed), limits.max_peers,
              limits.max_pieces);
  std::printf("%3s | %7s %7s %8s %7s | %5s %5s %6s %7s | %6s\n", "ID",
              "S(pap)", "L(pap)", "S/L", "MB", "S(sim)", "L(sim)", "pieces",
              "MB(sim)", "MaxPS");
  std::printf("-----------------------------------------------------------"
              "--------------------\n");

  const auto jobs = bench::table1_bench_jobs(opts.seed, limits);
  const auto outcome = bench::run_sweep(
      "bench_table1", opts, jobs,
      [](const runner::BatchJob& job, const runner::JobContext& ctx) {
        return runner::run_scenario_job(
            job, ctx, 500.0,
            [&job](const swarm::ScenarioRunner& sr,
                   const instrument::LocalPeerLog&, runner::RunResult& res) {
              const auto& spec = swarm::table1_torrents()
                  [static_cast<std::size_t>(job.id - 1)];
              const auto& cfg = sr.config();
              const double sim_mb = static_cast<double>(cfg.num_pieces) *
                                    cfg.piece_size / (1024.0 * 1024.0);
              const double ratio =
                  spec.leechers > 0
                      ? static_cast<double>(spec.seeds) / spec.leechers
                      : 0.0;
              const std::size_t max_ps =
                  sr.local_peer().max_peer_set_leecher();
              bench::appendf(res.text,
                             "%3d | %7u %7u %8.5f %7u | %5u %5u %6u %7.0f "
                             "| %6zu\n",
                             job.id, spec.seeds, spec.leechers, ratio,
                             spec.size_mb, cfg.initial_seeds,
                             cfg.initial_leechers, cfg.num_pieces, sim_mb,
                             max_ps);
              res.metrics["paper_seeds"] = spec.seeds;
              res.metrics["paper_leechers"] = spec.leechers;
              res.metrics["paper_size_mb"] = spec.size_mb;
              res.metrics["sim_seeds"] = cfg.initial_seeds;
              res.metrics["sim_leechers"] = cfg.initial_leechers;
              res.metrics["sim_pieces"] = cfg.num_pieces;
              res.metrics["sim_mb"] = sim_mb;
              res.metrics["max_peer_set_leecher"] =
                  static_cast<unsigned long long>(max_ps);
            });
      });

  std::printf("\nMaxPS = observed maximum peer set size of the local peer "
              "in leecher state\n(caps at the mainline default of 80; "
              "smaller torrents saturate below it, as in the paper).\n");
  return outcome.exit_code;
}
