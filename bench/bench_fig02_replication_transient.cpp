// Fig. 2 reproduction: evolution of the number of copies of pieces in the
// local peer set over time, torrent 8 (transient state), local peer in
// leecher state. Paper shape: the min curve hugs the floor (rare pieces
// exist for most of the run), the mean rises steadily, the max sits near
// the peer set size.
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

/// Clips a probe series to [0, t_max] as a stats::TimeSeries (for
/// downsample()/value_at()).
swarmlab::stats::TimeSeries truncate(
    const std::vector<swarmlab::stats::Sample>& in, double t_max) {
  swarmlab::stats::TimeSeries out;
  for (const auto& s : in) {
    if (t_max < 0.0 || s.time <= t_max) out.add(s.time, s.value);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  auto cfg = swarm::scenario_from_table1(8, bench::deep_dive_limits());

  std::printf("=== Fig. 2: replication of pieces in the peer set, "
              "torrent 8 (transient), leecher state ===\n");
  bench::print_scale(cfg, seed);
  std::printf("initial seed upload: %.0f kB/s (bounds rare-piece "
              "replication, paper §IV-A.2.a)\n\n",
              cfg.initial_seed_upload / 1024.0);

  // The copies series now come from the swarm-scope probe (focus = the
  // local peer) instead of a scheduled AvailabilitySampler: samples land
  // at observer-callback times on a 20 s grid, so nothing is injected
  // into the event queue.
  const std::uint32_t num_pieces = cfg.num_pieces;
  instrument::MetricsRegistry registry;
  instrument::SwarmProbe probe(registry, num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), seed, nullptr, &probe);
  probe.bind([&runner](peer::PeerId id) -> const peer::Peer* {
    return runner.swarm().find_peer(id);
  });
  probe.set_focus(runner.local_peer_id());
  probe.force_sample(0.0);
  const double end = runner.run_until_local_complete(0.0);
  probe.finalize(end);
  const instrument::LocalPeerLog* log =
      probe.peer_log(runner.local_peer_id());
  const double ls_end = log->seed_time() >= 0 ? log->seed_time() : end;

  const auto min_ls =
      truncate(registry.samples(registry.find("copies_min")), ls_end);
  const auto mean_ls =
      truncate(registry.samples(registry.find("copies_mean")), ls_end);
  const auto max_ls =
      truncate(registry.samples(registry.find("copies_max")), ls_end);

  std::printf("%10s %8s %8s %8s\n", "t (s)", "min", "mean", "max");
  const auto rows = mean_ls.downsample(28);
  for (const auto& s : rows) {
    std::printf("%10.0f %8.1f %8.2f %8.1f\n", s.time,
                min_ls.value_at(s.time), s.value, max_ls.value_at(s.time));
  }
  std::printf("\nlocal peer leecher phase: 0 .. %.0f s\n", ls_end);
  // The transient signature: the min curve sits at the floor (rare
  // pieces exist) for almost the whole phase, releasing only at the end.
  std::size_t floor_samples = 0;
  for (const auto& s : min_ls.samples()) {
    if (s.value <= 1.0) ++floor_samples;
  }
  const double floor_frac =
      min_ls.samples().empty()
          ? 0.0
          : static_cast<double>(floor_samples) /
                static_cast<double>(min_ls.samples().size());
  std::printf("paper check — min copies pinned at the floor for %.0f%% of "
              "the leecher phase (rare pieces exist throughout the "
              "transient state); mean rises steadily to %.1f; max tracks "
              "the peer set size\n",
              100.0 * floor_frac,
              mean_ls.samples().empty() ? -1.0
                                        : mean_ls.samples().back().value);
  return 0;
}
