// Extension E-scale: mega-swarm flash crowds — 1k / 4k / 10k peers.
//
// The paper's Table I tops out at ~12k peers (torrent 26); the sweep
// benches scale those rows down to stay affordable. This bench goes the
// other way: it runs the catalog's "mega-flash" base (1k cold leechers,
// an arrival storm, briefly-lingering seeds) through
// ScenarioBuilder::scale(4) and scale(10), on both network backends, and
// reports wall-clock cost next to the deterministic event counts. It is
// the workload behind the huge perf tiers and the CI mega-swarm smoke:
// every swarm hot path that is accidentally O(population) per tick shows
// up here as a superlinear wall_s column long before it hurts anywhere
// else.
//
// Each job also records a sampled swarm-entropy estimate
// (swarm_entropy_sampled over 64 leechers, private RNG — the exact
// O(leechers²) walk would cost more than the simulation at 10k): the
// flash crowd should sit near ideal entropy once startup ends (§IV-A.1).
//
// stdout carries wall-clock numbers (NOT byte-stable); end_time, events
// and the metrics are deterministic — identical for any --jobs value.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace swarmlab;

struct Tier {
  const char* name;
  double factor;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --tier before handing the rest to the shared parser.
  std::string tier = "all";
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tier") == 0 && i + 1 < argc) {
      tier = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (tier != "all" && tier != "1k" && tier != "4k" && tier != "10k") {
    std::fprintf(stderr, "%s: unknown tier '%s' (1k, 4k, 10k or all)\n",
                 argv[0], tier.c_str());
    return 2;
  }
  const auto opts = bench::parse_bench_options(static_cast<int>(rest.size()),
                                               rest.data());

  const Tier tiers[] = {{"1k", 1.0}, {"4k", 4.0}, {"10k", 10.0}};
  // --backend restricts to one backend; the default runs both so the
  // packet and fluid scaling curves land in one report.
  std::vector<std::string> backends;
  if (opts.backend_explicit) {
    backends.push_back(opts.backend);
  } else {
    backends = {"fluid", "packet"};
  }

  std::vector<runner::BatchJob> jobs;
  int id = 0;
  for (const Tier& t : tiers) {
    for (const std::string& backend : backends) {
      // Ids advance over the full tier x backend grid even when
      // filtered, so a single-tier run reproduces the same trajectories
      // as the full sweep.
      ++id;
      if (tier != "all" && tier != t.name) continue;
      runner::BatchJob job;
      job.id = id;
      job.config = swarm::ScenarioBuilder::from_catalog("mega-flash")
                       .scale(t.factor)
                       .name(std::string("mega-flash-") + t.name)
                       .backend(backend)
                       .build();
      job.name = job.config.name + "/" + backend;
      job.seed = sim::fork_seed(opts.seed, static_cast<std::uint64_t>(id));
      job.config.observation =
          bench::observation_plan("bench_ext_scale", opts, job.id);
      // Swarm-scope probes over thousands of peers only pay for detail
      // logs on the first 64 tracked peers; counters stay global.
      job.config.observation.detail_peer_cap = 64;
      jobs.push_back(std::move(job));
    }
  }

  std::printf("=== Extension E-scale: mega-swarm flash crowds ===\n");
  std::printf("seed=%llu jobs=%d base=mega-flash (catalog), tiers x "
              "backends=%zu\n\n",
              static_cast<unsigned long long>(opts.seed), opts.jobs,
              jobs.size());
  std::printf("%-22s %10s %14s %12s %10s %10s %10s\n", "tier/backend",
              "wall_s", "events", "events/s", "peers", "done", "entropy~");

  if (!opts.hostile.empty() && !bench::apply_hostile_spec(opts.hostile, jobs)) {
    return 2;
  }
  runner::BatchOptions bopts;
  bopts.jobs = opts.jobs;
  bopts.master_seed = opts.seed;
  bopts.job_timeout = opts.timeout;
  bopts.retries = opts.retries;
  bopts.checkpoint_path = opts.resume_path;
  runner::BatchRunner batch(bopts);
  const auto results = batch.run(
      jobs,
      [](const runner::BatchJob& job, const runner::JobContext& ctx) {
        // extra_after = duration runs the arrival storm to the end of
        // the scenario window even after the local peer finishes.
        return runner::run_scenario_job(
            job, ctx, job.config.duration,
            [&job](const swarm::ScenarioRunner& r,
                   const instrument::LocalPeerLog&, runner::RunResult& res) {
              // Sampled entropy with a private stream: 64 leechers is
              // plenty for a point estimate and never touches the
              // simulation's RNG.
              sim::Rng rng(sim::fork_seed(job.seed, 0xE57u));
              res.metrics["entropy_sampled"] =
                  swarm::swarm_entropy_sampled(r.swarm(), 64, rng);
              res.metrics["active_peers"] =
                  static_cast<double>(r.swarm().active_peers());
              res.metrics["peers_total"] =
                  static_cast<double>(r.swarm().peer_ids().size());
              res.metrics["tracker_announces"] = static_cast<double>(
                  r.swarm().tracker().stats().announces);
            });
      },
      [](const runner::RunResult& r) {
        const double evps =
            r.sim_seconds > 0.0
                ? static_cast<double>(r.events_executed) / r.sim_seconds
                : 0.0;
        const auto metric = [&r](const char* name) {
          const auto* v = r.metrics.find(name);
          return v != nullptr ? v->as_double() : 0.0;
        };
        std::printf("%-22s %10.2f %14llu %12.0f %10.0f %10.0f %10.3f\n",
                    r.name.c_str(), r.sim_seconds,
                    static_cast<unsigned long long>(r.events_executed), evps,
                    metric("peers_total"), metric("active_peers"),
                    metric("entropy_sampled"));
        std::fflush(stdout);
      });

  if (!opts.json_path.empty()) {
    const auto report = runner::make_report("bench_ext_scale", bopts,
                                            results, batch.wall_seconds());
    std::string error;
    if (!runner::write_report(opts.json_path, report, &error)) {
      std::fprintf(stderr, "bench_ext_scale: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nReport written to %s (schema %s).\n",
                opts.json_path.c_str(), runner::kReportSchema);
  }
  std::printf("\nwall_s varies with the host; events, peers and the "
              "sampled entropy are\ndeterministic for any --jobs value. "
              "Sub-linear events/s decay across tiers\nmeans a hot path "
              "is super-linear in population.\n");
  const std::string summary = runner::failure_summary(results);
  if (!summary.empty()) {
    std::fputs(summary.c_str(), stderr);
    return 1;
  }
  return 0;
}
