// Ablation A3 (DESIGN.md): the choke algorithm vs bit-level tit-for-tat
// (paper §IV-B.1).
//
// The paper's critique of TFT fairness: "when there is more capacity of
// service in the torrent than request for this capacity, the excess
// capacity will be lost even if slow leechers or free riders could
// benefit from it". The scenario therefore includes high-upload
// "altruist" leechers whose capacity far exceeds what byte-balanced
// reciprocation lets them give away: under the choke algorithm that
// excess flows to whoever can use it; under deficit-gated TFT it is
// stranded.
//
// Expected shape: comparable behaviour for balanced peers, but TFT shows
// (a) lower aggregate goodput, (b) much slower downloads for slow
// uploaders (they can no longer ride the excess), and (c) free riders
// reduced to seed service only.
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

struct Outcome {
  double honest_mean_dl = 0.0;
  double slow_mean_dl = 0.0;       // the 8 kB/s-upload class
  double fast_mean_dl = 0.0;       // the altruist class
  double fr_mean_dl = 0.0;
  double honest_done = 0.0;
  double fr_done = 0.0;
  double goodput_kbs = 0.0;
};

Outcome run_variant(swarmlab::core::LeecherChokerKind kind,
                    std::uint64_t seed) {
  using namespace swarmlab;
  swarm::ScenarioConfig cfg;
  cfg.name = "tft-ablation";
  cfg.num_pieces = 48;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 70;
  // Steady state: a warm background swarm plus a stream of cold
  // arrivals. In a flash crowd the piece-availability wave synchronizes
  // every completion and masks peer selection entirely; in steady state
  // pieces are plentiful and the choker decides who downloads fast.
  cfg.leechers_warm = true;
  cfg.arrival_rate = 0.04;
  cfg.free_rider_fraction = 0.2;
  // Finished peers leave at once: only the initial seed and live
  // reciprocation carry the swarm, so the peer-selection policy is the
  // binding constraint (lingering seeds serve everyone equally and
  // would mask the TFT gate).
  cfg.seed_linger_mean = 1.0;
  cfg.duration = 20000.0;
  cfg.remote_params.leecher_choker = kind;
  cfg.local_params.leecher_choker = kind;
  // Bit-level TFT means a tight byte balance: 4 blocks of slack.
  cfg.remote_params.tft_deficit_threshold = 4 * 16 * 1024;
  cfg.local_params.tft_deficit_threshold = 4 * 16 * 1024;
  // Asymmetric population with real excess capacity: slow and mid
  // residential links plus 20% high-upload altruists.
  cfg.leecher_classes = {
      {0.4, 8.0 * 1024, 96.0 * 1024},
      {0.4, 16.0 * 1024, 128.0 * 1024},
      {0.2, 96.0 * 1024, 384.0 * 1024},
  };
  cfg.initial_seed_upload = 48.0 * 1024;

  swarm::ScenarioRunner runner(cfg, seed);
  runner.run();

  // Measure the cold arrivals only (the warm background peers start with
  // random partial content, so their download times are not comparable).
  Outcome out;
  int honest = 0, honest_done = 0, fr = 0, fr_done = 0;
  int slow_n = 0, fast_n = 0, fr_dl_n = 0;
  double honest_sum = 0, slow_sum = 0, fast_sum = 0, fr_sum = 0;
  std::uint64_t bytes = 0;
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (p->config().start_complete) continue;
    bytes += p->total_downloaded();
    if (!p->config().initial_pieces.empty()) continue;  // warm background
    if (id == runner.local_peer_id()) continue;
    // Leave a fair completion window for late arrivals.
    if (p->start_time() < 0 || p->start_time() > cfg.duration - 8000.0) {
      continue;
    }
    const bool done = p->completion_time() >= 0.0;
    const double dl = done ? p->completion_time() - p->start_time() : 0;
    if (p->config().free_rider) {
      ++fr;
      if (done) {
        ++fr_done;
        fr_sum += dl;
        ++fr_dl_n;
      }
      continue;
    }
    ++honest;
    if (!done) continue;
    ++honest_done;
    honest_sum += dl;
    if (p->config().upload_capacity < 12.0 * 1024) {
      slow_sum += dl;
      ++slow_n;
    } else if (p->config().upload_capacity > 64.0 * 1024) {
      fast_sum += dl;
      ++fast_n;
    }
  }
  out.honest_mean_dl = honest_done > 0 ? honest_sum / honest_done : -1;
  out.slow_mean_dl = slow_n > 0 ? slow_sum / slow_n : -1;
  out.fast_mean_dl = fast_n > 0 ? fast_sum / fast_n : -1;
  out.fr_mean_dl = fr_dl_n > 0 ? fr_sum / fr_dl_n : -1;
  out.honest_done = honest > 0 ? 100.0 * honest_done / honest : 0;
  out.fr_done = fr > 0 ? 100.0 * fr_done / fr : 0;
  out.goodput_kbs =
      static_cast<double>(bytes) / runner.simulation().now() / 1024.0;
  return out;
}

void print_row(const char* name, const Outcome& o) {
  std::printf("%-18s %9.0fs %9.0fs %9.0fs %9.0fs %8.0f%% %7.0f%% %9.1f\n",
              name, o.honest_mean_dl, o.slow_mean_dl, o.fast_mean_dl,
              o.fr_mean_dl, o.honest_done, o.fr_done, o.goodput_kbs);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);

  std::printf("=== Ablation A3: choke algorithm vs bit-level tit-for-tat "
              "===\n");
  std::printf("seed=%llu  setup: steady-state swarm, cold arrivals measured "
              "(40%% slow / 40%% mid / 20%% altruist uploads, 20%% free "
              "riders), 1 seed, TFT slack = 4 blocks\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-18s %10s %10s %10s %10s %9s %8s %10s\n",
              "leecher strategy", "honest dl", "slow dl", "altruist",
              "FR dl", "honest", "FR done", "goodput");
  std::printf("%-18s %10s %10s %10s %10s %9s %8s %10s\n", "", "(mean)",
              "(mean)", "dl (mean)", "(mean)", "done", "", "(kB/s)");

  print_row("choke (mainline)",
            run_variant(core::LeecherChokerKind::kChoke, seed));
  print_row("bit-level TFT",
            run_variant(core::LeecherChokerKind::kTitForTat, seed));

  std::printf("\npaper check (§IV-B.1) — under the choke algorithm every "
              "class downloads at about the same pace: the altruists' "
              "excess upload flows to whoever can use it (the paper's "
              "first fairness criterion explicitly allows this). Under "
              "bit-level TFT the deficit gate strands that excess: slow "
              "uploaders can no longer ride it (downloads roughly track "
              "their own upload rate) and free riders collapse to "
              "per-partner slack plus seed service. Note a seed cannot "
              "run TFT at all (it downloads nothing) — the paper's "
              "second fairness criterion exists precisely for seeds.\n");
  return 0;
}
