// Extension E3: super seeding vs the normal seed-state choke algorithm.
//
// Paper §IV-A.4: "simple policies can be implemented to guarantee that
// the ratio of duplicate pieces remains low for the initial seed, e.g.,
// the new choke algorithm in seed state or the super seeding mode". This
// bench measures, during the transient phase of a fresh torrent, how
// many bytes the initial seed spends before every piece has left it
// (first-copy cost), with and without super seeding.
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

struct Outcome {
  double first_copy_time = -1.0;   // every piece served at least once
  double seed_bytes_at_copy = 0.0; // seed upload spent by then
  double swarm_finish = -1.0;      // all initial leechers complete
};

Outcome run(bool super_seeding, std::uint64_t seed) {
  using namespace swarmlab;
  swarm::ScenarioConfig cfg;
  cfg.name = "super-seeding";
  cfg.num_pieces = 64;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 30;
  cfg.leechers_warm = false;
  cfg.seed_linger_mean = 0.0;
  cfg.spawn_local_peer = false;
  cfg.duration = 40000.0;
  cfg.remote_params.super_seeding = super_seeding;
  cfg.initial_seed_upload = 32.0 * 1024;

  swarm::ScenarioRunner runner(cfg, seed);
  const peer::PeerId seed_id = runner.initial_seed_ids().front();
  Outcome out;
  for (double t = 50.0; t <= cfg.duration; t += 50.0) {
    runner.simulation().run_until(t);
    if (out.first_copy_time < 0 &&
        runner.swarm().global_availability().min_copies() >= 2) {
      out.first_copy_time = t;
      out.seed_bytes_at_copy = static_cast<double>(
          runner.swarm().find_peer(seed_id)->total_uploaded());
    }
    std::size_t done = 0;
    for (const peer::PeerId id : runner.swarm().peer_ids()) {
      const peer::Peer* p = runner.swarm().find_peer(id);
      if (!p->config().start_complete && p->completion_time() >= 0) ++done;
    }
    if (done >= cfg.initial_leechers) {
      out.swarm_finish = t;
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);

  std::printf("=== Extension E3: super seeding vs normal seed state ===\n");
  std::printf("seed=%llu  setup: fresh torrent, 1 initial seed @32 kB/s, "
              "30 cold leechers, 64 pieces (16 MiB)\n",
              static_cast<unsigned long long>(seed));
  const double content_mb = 64 * 256.0 / 1024.0;
  std::printf("content: %.0f MiB -> a perfectly efficient seed serves "
              "exactly 1.00x the content before the first full copy "
              "exists\n\n", content_mb);

  std::printf("%-22s %16s %20s %14s\n", "initial-seed mode",
              "first copy at", "seed bytes by then", "swarm finish");
  for (const bool ss : {false, true}) {
    const Outcome o = run(ss, seed);
    std::printf("%-22s %15.0fs %16.2fx content %13.0fs\n",
                ss ? "super seeding" : "new seed choke",
                o.first_copy_time,
                o.seed_bytes_at_copy / (content_mb * 1024 * 1024),
                o.swarm_finish);
  }
  std::printf("\npaper check (§IV-A.4) — both policies keep the initial "
              "seed's duplicate ratio low; super seeding pushes the "
              "bytes-per-first-copy closer to the 1.0x ideal by refusing "
              "to serve a piece twice before seeing it replicated — "
              "which here also ends the transient phase (and hence the "
              "whole flash crowd) sooner. Its known cost, pipeline "
              "stalls when confirmations lag, only bites in very small "
              "or disconnected swarms.\n");
  return 0;
}
