// Performance baseline sweep: a scenario ladder timed through the
// BatchRunner, reporting wall seconds, events per second and event-queue
// pressure per tier (see docs/performance.md).
//
// Unlike the figure/table benches this binary measures the simulator, not
// the paper: its stdout carries wall-clock numbers and is therefore NOT
// byte-stable across runs. The simulated trajectory itself is still fully
// deterministic — end_time, events and the perf counters are identical
// for any --jobs value and any machine.
//
// Always writes a compact machine-readable summary (default
// BENCH_perf.json, override with --json PATH) so CI can archive the
// throughput trend per commit.
//
// --tier NAME|all restricts the ladder to one tier (CI's perf gate runs
// only the small tiers to keep the job fast). Tier names: perf_small,
// perf_medium, perf_large, perf_huge (fluid; "small" etc. accepted as
// shorthand) and pkt_small, pkt_medium, pkt_large, pkt_huge (frozen to
// the packet backend). The huge tiers are the mega-swarm scale tier:
// ~2k-peer populations exercising the O(active) hot paths.
//
// Tier parameters live in the scenario catalog
// (swarm/scenario_catalog.h) and are frozen — BENCH_perf.json numbers
// are only comparable across commits if the workload never moves.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  // Peel off --tier before handing the rest to the shared parser.
  std::string tier = "all";
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tier") == 0 && i + 1 < argc) {
      tier = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (tier != "all" && tier != "perf_small" && tier != "perf_medium" &&
      tier != "perf_large" && tier != "perf_huge" && tier != "small" &&
      tier != "medium" && tier != "large" && tier != "huge" &&
      tier != "pkt_small" && tier != "pkt_medium" && tier != "pkt_large" &&
      tier != "pkt_huge") {
    std::fprintf(stderr, "%s: unknown tier '%s'\n", argv[0], tier.c_str());
    return 2;
  }
  auto opts = bench::parse_bench_options(static_cast<int>(rest.size()),
                                         rest.data());
  if (opts.json_path.empty()) opts.json_path = "BENCH_perf.json";

  // The ladder, in frozen order (job ids — and thus per-job seeds — are
  // tied to the position here).
  const char* const ladder[] = {
      "perf_small", "perf_medium", "perf_large", "perf_huge",
      "pkt_small",  "pkt_medium",  "pkt_large",  "pkt_huge",
  };

  std::vector<runner::BatchJob> jobs;
  int id = 0;
  for (const char* name : ladder) {
    // Job ids (and thus per-job seeds) stay tied to the ladder position,
    // so a tier run's trajectory matches the same tier in a full sweep.
    ++id;
    if (tier != "all" && name != "perf_" + tier && name != tier) {
      continue;
    }
    runner::BatchJob job;
    job.id = id;
    job.name = name;
    job.config = swarm::catalog_scenario(name);
    // Fluid tiers follow --backend (the historical behaviour, used by
    // the CI backend smoke); the pkt_* tiers are frozen to the packet
    // backend unless --backend is given explicitly.
    if (opts.backend_explicit ||
        job.config.network_backend == net::kDefaultNetworkBackend) {
      job.config.network_backend = opts.backend;
    }
    job.seed = sim::fork_seed(opts.seed, static_cast<std::uint64_t>(job.id));
    // Observation is off by default (the gate compares raw throughput);
    // --observe/--trace opt in without changing any trajectory.
    job.config.observation =
        bench::observation_plan("bench_perf_sweep", opts, job.id);
    jobs.push_back(std::move(job));
  }

  std::printf("=== Perf sweep: simulator throughput ladder ===\n");
  std::printf("seed=%llu jobs=%d\n\n",
              static_cast<unsigned long long>(opts.seed), opts.jobs);
  std::printf("%-12s %10s %14s %12s %12s %12s %14s %12s\n", "tier", "wall_s",
              "events", "events/s", "peak_pend", "cancelled", "fastpath",
              "trains");

  // Driven directly (not via run_sweep): the streamed rows here contain
  // wall-clock throughput, which only exists after the job returns.
  if (!opts.hostile.empty() && !bench::apply_hostile_spec(opts.hostile, jobs)) {
    return 2;
  }
  runner::BatchOptions bopts;
  bopts.jobs = opts.jobs;
  bopts.master_seed = opts.seed;
  bopts.job_timeout = opts.timeout;
  bopts.retries = opts.retries;
  bopts.checkpoint_path = opts.resume_path;
  runner::BatchRunner batch(bopts);
  const auto results = batch.run(
      jobs,
      [](const runner::BatchJob& job, const runner::JobContext& ctx) {
        return runner::run_scenario_job(job, ctx, 300.0);
      },
      [](const runner::RunResult& r) {
        const double evps =
            r.sim_seconds > 0.0
                ? static_cast<double>(r.events_executed) / r.sim_seconds
                : 0.0;
        std::printf("%-12s %10.3f %14llu %12.0f %12llu %12llu %14llu %12llu\n",
                    r.name.c_str(), r.sim_seconds,
                    static_cast<unsigned long long>(r.events_executed), evps,
                    static_cast<unsigned long long>(r.peak_pending),
                    static_cast<unsigned long long>(r.events_cancelled),
                    static_cast<unsigned long long>(r.events_fastpath),
                    static_cast<unsigned long long>(r.train_segments));
        std::fflush(stdout);
      });

  const auto report =
      runner::make_report("bench_perf_sweep", bopts, results,
                          batch.wall_seconds());
  std::string error;
  if (!runner::write_report(opts.json_path, report, &error)) {
    std::fprintf(stderr, "bench_perf_sweep: %s\n", error.c_str());
    return 1;
  }
  std::printf("\nwall_s and events/s vary with the host; events, peak_pend "
              "and cancelled are\ndeterministic. Report written to %s "
              "(schema %s).\n",
              opts.json_path.c_str(), runner::kReportSchema);
  const std::string summary = runner::failure_summary(results);
  if (!summary.empty()) {
    std::fputs(summary.c_str(), stderr);
    return 1;
  }
  return 0;
}
