// Fig. 9 reproduction: fairness characterization of the choke algorithm
// in leecher state, all 26 torrents. Top graph: share of the local
// peer's uploaded bytes received by each set of 5 remote peers (sets
// ordered by bytes received, best first). Bottom graph: share of the
// local peer's *downloads from leechers* contributed by those same sets.
// Paper shape: the black (top-5) set dominates both directions — the
// choke algorithm fosters reciprocation — except for low-entropy
// (transient) torrents, where a larger set of peers is served.
//
// Runs through the parallel BatchRunner (--jobs N / --json PATH); output
// is identical for any worker count.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const auto opts = bench::parse_bench_options(argc, argv);
  const auto limits = bench::sweep_limits();

  std::printf("=== Fig. 9: choke-algorithm fairness, leecher state ===\n");
  std::printf("seed=%llu  scale: max_peers=%u max_pieces=%u  sets of 5 "
              "remote peers, best downloaders first\n\n",
              static_cast<unsigned long long>(opts.seed), limits.max_peers,
              limits.max_pieces);
  std::printf("%3s | %-35s | %-35s | %s\n", "ID",
              "upload share  s0   s1   s2   s3   s4",
              "download share s0   s1   s2   s3   s4", "top-5 bar");
  std::printf("-----------------------------------------------------------"
              "-----------------------------------------\n");

  const auto jobs = bench::table1_bench_jobs(opts.seed, limits);
  const auto outcome = bench::run_sweep(
      "bench_fig09_leecher_fairness", opts, jobs,
      [](const runner::BatchJob& job, const runner::JobContext& ctx) {
        return runner::run_scenario_job(
            job, ctx, 500.0,
            [&job](const swarm::ScenarioRunner& sr,
                   const instrument::LocalPeerLog& log,
                   runner::RunResult& res) {
              const auto& cfg = sr.config();
              const bool transient =
                  !cfg.leechers_warm || cfg.initial_seeds == 0;
              const auto sets =
                  instrument::analyze_leecher_fairness(log, 5, 6);
              bench::appendf(res.text, "%3d |          ", job.id);
              for (int s = 0; s < 5; ++s) {
                bench::appendf(res.text, " %4.2f", sets.upload_fraction[s]);
              }
              bench::appendf(res.text, " |           ");
              for (int s = 0; s < 5; ++s) {
                bench::appendf(res.text, " %4.2f",
                               sets.download_fraction[s]);
              }
              bench::appendf(res.text, " | %s%s\n",
                             bench::bar(sets.upload_fraction[0]).c_str(),
                             transient ? " (transient)" : "");
              // Reciprocation: correlate upload and download shares.
              const double corr = stats::pearson(sets.upload_fraction,
                                                 sets.download_fraction);
              auto upload = runner::json::Value::array();
              auto download = runner::json::Value::array();
              for (int s = 0; s < 5; ++s) {
                upload.push_back(sets.upload_fraction[s]);
                download.push_back(sets.download_fraction[s]);
              }
              res.metrics["upload_fraction"] = std::move(upload);
              res.metrics["download_fraction"] = std::move(download);
              res.metrics["pearson"] = corr;
              res.metrics["transient"] = transient;
            });
      });

  double corr_sum = 0.0;
  int corr_n = 0;
  for (const auto& res : outcome.results) {
    if (!res.ok()) continue;  // failed jobs carry no fairness metrics
    corr_sum += res.metrics.find("pearson")->as_double();
    ++corr_n;
  }
  std::printf("\npaper check — the same sets that receive the most bytes "
              "also supplied the most (reciprocation): mean per-torrent "
              "correlation of upload vs download shares = %.2f "
              "(paper: strong correlation)\n",
              corr_n > 0 ? corr_sum / corr_n : 0.0);
  return outcome.exit_code;
}
