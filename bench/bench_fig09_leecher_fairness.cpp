// Fig. 9 reproduction: fairness characterization of the choke algorithm
// in leecher state, all 26 torrents. Top graph: share of the local
// peer's uploaded bytes received by each set of 5 remote peers (sets
// ordered by bytes received, best first). Bottom graph: share of the
// local peer's *downloads from leechers* contributed by those same sets.
// Paper shape: the black (top-5) set dominates both directions — the
// choke algorithm fosters reciprocation — except for low-entropy
// (transient) torrents, where a larger set of peers is served.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  const auto limits = bench::sweep_limits();

  std::printf("=== Fig. 9: choke-algorithm fairness, leecher state ===\n");
  std::printf("seed=%llu  scale: max_peers=%u max_pieces=%u  sets of 5 "
              "remote peers, best downloaders first\n\n",
              static_cast<unsigned long long>(seed), limits.max_peers,
              limits.max_pieces);
  std::printf("%3s | %-35s | %-35s | %s\n", "ID",
              "upload share  s0   s1   s2   s3   s4",
              "download share s0   s1   s2   s3   s4", "top-5 bar");
  std::printf("-----------------------------------------------------------"
              "-----------------------------------------\n");

  double corr_sum = 0.0;
  int corr_n = 0;
  for (int id = 1; id <= 26; ++id) {
    auto cfg = swarm::scenario_from_table1(id, limits);
    const bool transient = !cfg.leechers_warm || cfg.initial_seeds == 0;
    auto run = bench::run_scenario(std::move(cfg), seed + id, 500.0);
    const auto sets = instrument::analyze_leecher_fairness(*run.log, 5, 6);
    std::printf("%3d |          ", id);
    for (int s = 0; s < 5; ++s) {
      std::printf(" %4.2f", sets.upload_fraction[s]);
    }
    std::printf(" |           ");
    for (int s = 0; s < 5; ++s) {
      std::printf(" %4.2f", sets.download_fraction[s]);
    }
    std::printf(" | %s%s\n", bench::bar(sets.upload_fraction[0]).c_str(),
                transient ? " (transient)" : "");
    // Reciprocation: correlate upload and download shares across sets.
    corr_sum += stats::pearson(sets.upload_fraction, sets.download_fraction);
    ++corr_n;
  }
  std::printf("\npaper check — the same sets that receive the most bytes "
              "also supplied the most (reciprocation): mean per-torrent "
              "correlation of upload vs download shares = %.2f "
              "(paper: strong correlation)\n",
              corr_n > 0 ? corr_sum / corr_n : 0.0);
  return 0;
}
