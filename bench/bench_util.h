// Shared helpers for the experiment benches (one binary per paper
// table/figure; see DESIGN.md §3).
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "swarmlab/swarmlab.h"

namespace swarmlab::bench {

/// Strict decimal uint64 parse: the whole token must be digits (no sign,
/// no trailing junk) and fit in 64 bits.
inline bool parse_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

/// Usage message shared by every bench binary.
[[noreturn]] inline void usage(const char* argv0) {
  std::string backends;
  for (const auto& name : net::network_backends()) {
    if (!backends.empty()) backends += ", ";
    backends += name;
  }
  std::fprintf(stderr,
               "usage: %s [SEED] [--seed N] [--jobs N] [--json PATH] "
               "[--backend NAME]\n"
               "          [--timeout SECS] [--retries N] [--resume PATH] "
               "[--hostile SPEC]\n"
               "          [--observe SCOPE] [--trace[=FORMAT]]\n"
               "  SEED / --seed N  master RNG seed (decimal; default "
               "20061025)\n"
               "  --jobs N         worker threads (26-torrent sweep benches "
               "only, default 1);\n"
               "                   results are identical for any N\n"
               "  --json PATH      write the machine-readable batch report "
               "(sweep benches only)\n"
               "  --backend NAME   network backend (%s; default %s)\n"
               "  --timeout SECS   per-job wall-clock budget; a job over "
               "budget is recorded\n"
               "                   with status \"timeout\" and the sweep "
               "continues\n"
               "  --retries N      extra attempts for failed jobs (same "
               "seed each attempt)\n"
               "  --resume PATH    JSONL checkpoint: completed jobs stream "
               "to PATH and a rerun\n"
               "                   with the same PATH skips them "
               "(byte-identical output)\n"
               "  --hostile SPEC   test-only fault hook: ID:MODE[:ATTEMPTS]"
               "[,...] with MODE in\n"
               "                   throw|wedge|spin, e.g. "
               "'7:wedge,13:throw:1'\n"
               "  --observe SCOPE  observation scope: local (default), "
               "sampled-K (local peer\n"
               "                   + first K spawned, e.g. sampled-8) or "
               "all; swarm scopes\n"
               "                   attach a passive probe and add telemetry "
               "to --json reports\n"
               "  --trace[=FORMAT] write the local peer's event trace per "
               "job to\n"
               "                   <tool>.jobN.trace.<ext>; FORMAT is jsonl "
               "(default) or csv\n",
               argv0, backends.c_str(), net::kDefaultNetworkBackend);
  std::exit(2);
}

/// Seed used by every bench unless overridden with argv[1]; printed so a
/// run can be reproduced exactly. Non-numeric input is rejected with the
/// shared usage message instead of silently parsing to 0.
inline std::uint64_t bench_seed(int argc, char** argv,
                                std::uint64_t fallback = 20061025) {
  // Default commemorates the paper's IMC 2006 presentation date.
  if (argc <= 1) return fallback;
  std::uint64_t seed = 0;
  if (!parse_u64(argv[1], &seed)) {
    std::fprintf(stderr, "%s: invalid seed '%s'\n", argv[0], argv[1]);
    usage(argv[0]);
  }
  return seed;
}

/// Strict decimal double parse for flag values (whole token, finite,
/// non-negative).
inline bool parse_f64(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno == ERANGE || end == nullptr || *end != '\0' || !(v >= 0.0) ||
      v > 1e12) {
    return false;
  }
  *out = v;
  return true;
}

/// Options shared by the sweep benches: master seed (positional for
/// backwards compatibility or --seed), worker count, JSON report path,
/// plus the resilience knobs threaded into BatchOptions.
struct BenchOptions {
  std::uint64_t seed = 20061025;
  int jobs = 1;
  std::string json_path;
  std::string backend = net::kDefaultNetworkBackend;
  /// True when --backend was passed on the command line. Benches whose
  /// jobs carry a frozen per-tier backend (bench_perf_sweep) only
  /// override it on an explicit flag.
  bool backend_explicit = false;
  double timeout = 0.0;      ///< per-job wall budget (0 disables)
  int retries = 0;           ///< extra attempts for failed jobs
  std::string resume_path;   ///< JSONL checkpoint path ("" disables)
  std::string hostile;       ///< raw --hostile spec (test-only)
  /// --observe: how widely each job is instrumented (strictly passive;
  /// identical trajectories for every scope).
  swarm::ObservationPlan::Scope observe_scope =
      swarm::ObservationPlan::Scope::kLocal;
  std::uint32_t observe_k = 8;  ///< K for --observe sampled-K
  /// --trace[=FORMAT]: per-job local-peer event trace export.
  swarm::ObservationPlan::TraceFormat trace_format =
      swarm::ObservationPlan::TraceFormat::kNone;
};

/// Builds the per-job ObservationPlan for a sweep bench: the --observe
/// scope plus, when --trace was given, a deterministic per-job trace
/// path `<tool>.job<id>.trace.<csv|jsonl>` in the working directory.
inline swarm::ObservationPlan observation_plan(const char* tool,
                                               const BenchOptions& opts,
                                               int job_id) {
  swarm::ObservationPlan plan;
  plan.scope = opts.observe_scope;
  plan.sample_k = opts.observe_k;
  plan.trace_format = opts.trace_format;
  if (plan.trace_format != swarm::ObservationPlan::TraceFormat::kNone) {
    const char* ext =
        plan.trace_format == swarm::ObservationPlan::TraceFormat::kCsv
            ? "csv"
            : "jsonl";
    plan.trace_path = std::string(tool) + ".job" + std::to_string(job_id) +
                      ".trace." + ext;
  }
  return plan;
}

/// Parses a --hostile spec ("ID:MODE[:ATTEMPTS]" comma-separated, MODE in
/// throw|wedge|spin) onto the matching jobs. Returns false (with a
/// message on stderr) on a malformed spec or an ID with no matching job.
inline bool apply_hostile_spec(const std::string& spec,
                               std::vector<runner::BatchJob>& jobs) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;

    const std::size_t c1 = item.find(':');
    if (c1 == std::string::npos) {
      std::fprintf(stderr, "hostile spec '%s': expected ID:MODE\n",
                   item.c_str());
      return false;
    }
    std::size_t c2 = item.find(':', c1 + 1);
    const std::string id_tok = item.substr(0, c1);
    const std::string mode_tok =
        item.substr(c1 + 1, (c2 == std::string::npos ? item.size() : c2) -
                                (c1 + 1));
    std::uint64_t id = 0;
    if (!parse_u64(id_tok.c_str(), &id)) {
      std::fprintf(stderr, "hostile spec '%s': bad job id\n", item.c_str());
      return false;
    }
    runner::HostileSpec hostile;
    if (mode_tok == "throw") {
      hostile.mode = runner::HostileSpec::Mode::kThrow;
    } else if (mode_tok == "wedge") {
      hostile.mode = runner::HostileSpec::Mode::kWedge;
    } else if (mode_tok == "spin") {
      hostile.mode = runner::HostileSpec::Mode::kSpin;
    } else {
      std::fprintf(stderr,
                   "hostile spec '%s': mode must be throw|wedge|spin\n",
                   item.c_str());
      return false;
    }
    if (c2 != std::string::npos) {
      std::uint64_t attempts = 0;
      if (!parse_u64(item.substr(c2 + 1).c_str(), &attempts) ||
          attempts == 0) {
        std::fprintf(stderr, "hostile spec '%s': bad attempt limit\n",
                     item.c_str());
        return false;
      }
      hostile.attempts = static_cast<int>(attempts);
    }
    bool matched = false;
    for (auto& job : jobs) {
      if (job.id == static_cast<int>(id)) {
        job.hostile = hostile;
        matched = true;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "hostile spec '%s': no job with id %llu\n",
                   item.c_str(), static_cast<unsigned long long>(id));
      return false;
    }
  }
  return true;
}

inline BenchOptions parse_bench_options(int argc, char** argv,
                                        std::uint64_t fallback = 20061025) {
  BenchOptions opts;
  opts.seed = fallback;
  bool observe_seen = false;
  bool trace_seen = false;
  const auto next = [&](int* i) -> const char* {
    if (*i + 1 >= argc) usage(argv[0]);
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t v = 0;
    if (arg == "--seed") {
      if (!parse_u64(next(&i), &opts.seed)) usage(argv[0]);
    } else if (arg == "--jobs") {
      if (!parse_u64(next(&i), &v) || v == 0 || v > 512) usage(argv[0]);
      opts.jobs = static_cast<int>(v);
    } else if (arg == "--json") {
      opts.json_path = next(&i);
    } else if (arg == "--backend") {
      opts.backend = next(&i);
      opts.backend_explicit = true;
      const auto known = net::network_backends();
      if (std::find(known.begin(), known.end(), opts.backend) ==
          known.end()) {
        std::fprintf(stderr, "%s: unknown backend '%s'\n", argv[0],
                     opts.backend.c_str());
        usage(argv[0]);
      }
    } else if (arg == "--timeout") {
      if (!parse_f64(next(&i), &opts.timeout)) usage(argv[0]);
    } else if (arg == "--retries") {
      if (!parse_u64(next(&i), &v) || v > 100) usage(argv[0]);
      opts.retries = static_cast<int>(v);
    } else if (arg == "--resume") {
      opts.resume_path = next(&i);
    } else if (arg == "--hostile") {
      opts.hostile = next(&i);
    } else if (arg == "--observe") {
      if (observe_seen) usage(argv[0]);
      observe_seen = true;
      const std::string scope = next(&i);
      if (scope == "local") {
        opts.observe_scope = swarm::ObservationPlan::Scope::kLocal;
      } else if (scope == "all") {
        opts.observe_scope = swarm::ObservationPlan::Scope::kAll;
      } else if (scope.rfind("sampled-", 0) == 0) {
        if (!parse_u64(scope.c_str() + 8, &v) || v == 0 || v > 100000) {
          std::fprintf(stderr, "%s: bad --observe scope '%s'\n", argv[0],
                       scope.c_str());
          usage(argv[0]);
        }
        opts.observe_scope = swarm::ObservationPlan::Scope::kSampled;
        opts.observe_k = static_cast<std::uint32_t>(v);
      } else {
        std::fprintf(stderr,
                     "%s: --observe scope must be local, sampled-K or all "
                     "(got '%s')\n",
                     argv[0], scope.c_str());
        usage(argv[0]);
      }
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      if (trace_seen) usage(argv[0]);
      trace_seen = true;
      if (arg == "--trace") {
        opts.trace_format = swarm::ObservationPlan::TraceFormat::kJsonl;
      } else {
        const std::string fmt = arg.substr(8);
        if (fmt == "csv") {
          opts.trace_format = swarm::ObservationPlan::TraceFormat::kCsv;
        } else if (fmt == "jsonl") {
          opts.trace_format = swarm::ObservationPlan::TraceFormat::kJsonl;
        } else {
          std::fprintf(stderr,
                       "%s: --trace format must be csv or jsonl (got "
                       "'%s')\n",
                       argv[0], fmt.c_str());
          usage(argv[0]);
        }
      }
    } else if (i == 1 && parse_u64(argv[1], &v)) {
      opts.seed = v;  // historical positional seed
    } else {
      std::fprintf(stderr, "%s: invalid argument '%s'\n", argv[0],
                   arg.c_str());
      usage(argv[0]);
    }
  }
  return opts;
}

/// printf-appends to a std::string (for building RunResult::text rows
/// that are byte-identical to what printf would have emitted).
inline void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
inline void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt,
                   args);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

/// Scale used by the 26-torrent sweep benches (Figs. 1, 9, 11; Table I).
/// Delegates to the catalog's preset so benches and catalog entries can
/// never drift apart.
inline swarm::ScaleLimits sweep_limits() {
  return swarm::sweep_scale_limits();
}

/// Scale used by the single-torrent deep-dive benches (Figs. 2-8, 10);
/// the catalog's deep-dive preset.
inline swarm::ScaleLimits deep_dive_limits() {
  return swarm::deep_dive_scale_limits();
}

inline void print_scale(const swarm::ScenarioConfig& cfg,
                        std::uint64_t seed) {
  std::printf("scale: torrent=%d seeds=%u leechers=%u pieces=%u "
              "piece_size=%uKiB arrival=%.3f/s warm=%d seed=%llu\n",
              cfg.torrent_id, cfg.initial_seeds, cfg.initial_leechers,
              cfg.num_pieces, cfg.piece_size / 1024, cfg.arrival_rate,
              cfg.leechers_warm ? 1 : 0,
              static_cast<unsigned long long>(seed));
}

/// Runs one scenario with an instrumented local peer until the local peer
/// completes (plus `extra_after` seconds of seed state), finalizing the
/// log at the stop time.
struct ScenarioRun {
  std::unique_ptr<instrument::LocalPeerLog> log;
  std::unique_ptr<swarm::ScenarioRunner> runner;
  double end_time = 0.0;
};

inline ScenarioRun run_scenario(swarm::ScenarioConfig cfg,
                                std::uint64_t seed,
                                double extra_after = 2500.0) {
  ScenarioRun run;
  run.log = std::make_unique<instrument::LocalPeerLog>(cfg.num_pieces);
  run.runner = std::make_unique<swarm::ScenarioRunner>(std::move(cfg), seed,
                                                       run.log.get());
  run.end_time = run.runner->run_until_local_complete(extra_after);
  run.log->finalize(run.end_time);
  return run;
}

/// The Table-I job list with the benches' historical per-torrent seed
/// derivation (`seed + id`), so default single-threaded output matches
/// the pre-batch binaries byte for byte.
inline std::vector<runner::BatchJob> table1_bench_jobs(
    std::uint64_t seed, const swarm::ScaleLimits& limits) {
  std::vector<runner::BatchJob> jobs;
  jobs.reserve(26);
  for (int id = 1; id <= 26; ++id) {
    runner::BatchJob job;
    job.id = id;
    job.config = swarm::scenario_from_table1(id, limits);
    job.name = job.config.name;
    job.seed = seed + static_cast<std::uint64_t>(id);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// What a sweep produced: the per-job results plus the process exit code
/// the bench should return (0 = all jobs completed, 1 = at least one
/// failed/wedged/timed out — the report still contains every result).
struct SweepOutcome {
  std::vector<runner::RunResult> results;
  int exit_code = 0;
};

/// Runs a sweep through the BatchRunner: rows stream to stdout in
/// submission order (so output is identical for any --jobs value) and
/// the aggregate JSON report is written when --json was given. The
/// selected --backend is applied to every job's config, so any sweep
/// bench runs on any registered network backend unchanged; the
/// --observe/--trace observation plan is applied the same way (passive
/// — rows and digests are identical for every scope). The
/// resilience knobs (--timeout/--retries/--resume/--hostile) are
/// threaded into BatchOptions; failures are contained per job, summarized
/// on stderr, and reflected in `exit_code` rather than thrown.
inline SweepOutcome run_sweep(const char* tool, const BenchOptions& opts,
                              std::vector<runner::BatchJob> jobs,
                              const runner::JobFnCtx& fn) {
  for (auto& job : jobs) {
    job.config.network_backend = opts.backend;
    job.config.observation = observation_plan(tool, opts, job.id);
  }
  if (!opts.hostile.empty() && !apply_hostile_spec(opts.hostile, jobs)) {
    usage(tool);
  }
  runner::BatchOptions bopts;
  bopts.jobs = opts.jobs;
  bopts.master_seed = opts.seed;
  bopts.job_timeout = opts.timeout;
  bopts.retries = opts.retries;
  bopts.checkpoint_path = opts.resume_path;
  runner::BatchRunner batch(bopts);
  SweepOutcome out;
  out.results = batch.run(jobs, fn, [](const runner::RunResult& r) {
    std::fputs(r.text.c_str(), stdout);
    std::fflush(stdout);
  });
  if (batch.resumed_jobs() > 0) {
    std::fprintf(stderr, "%s: resumed %zu of %zu jobs from %s\n", tool,
                 batch.resumed_jobs(), jobs.size(),
                 opts.resume_path.c_str());
  }
  if (!opts.json_path.empty()) {
    const auto report =
        runner::make_report(tool, bopts, out.results, batch.wall_seconds());
    std::string error;
    if (!runner::write_report(opts.json_path, report, &error)) {
      std::fprintf(stderr, "%s: %s\n", tool, error.c_str());
      std::exit(1);
    }
  }
  const std::string summary = runner::failure_summary(out.results);
  if (!summary.empty()) {
    std::fputs(summary.c_str(), stderr);
    out.exit_code = 1;
  }
  return out;
}

/// Convenience overload for context-free job functions (benches that
/// ignore the per-attempt JobContext).
inline SweepOutcome run_sweep(const char* tool, const BenchOptions& opts,
                              std::vector<runner::BatchJob> jobs,
                              const runner::JobFn& fn) {
  return run_sweep(
      tool, opts, std::move(jobs),
      [&fn](const runner::BatchJob& job, const runner::JobContext&) {
        return fn(job);
      });
}

/// Renders a 0..1 value as a small ASCII bar (for figure-like output).
inline std::string bar(double fraction, int width = 24) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int fill = static_cast<int>(fraction * width + 0.5);
  std::string out(static_cast<std::size_t>(fill), '#');
  out.append(static_cast<std::size_t>(width - fill), '.');
  return out;
}

/// Prints a downsampled time series as aligned rows.
inline void print_series(const char* name, const stats::TimeSeries& series,
                         std::size_t rows = 24) {
  std::printf("%s (%zu samples, downsampled to %zu rows)\n", name,
              series.size(), rows);
  for (const auto& s : series.downsample(rows)) {
    std::printf("  t=%8.0f  %10.2f\n", s.time, s.value);
  }
}

}  // namespace swarmlab::bench
