// Shared helpers for the experiment benches (one binary per paper
// table/figure; see DESIGN.md §3).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "swarmlab/swarmlab.h"

namespace swarmlab::bench {

/// Seed used by every bench unless overridden with argv[1]; printed so a
/// run can be reproduced exactly.
inline std::uint64_t bench_seed(int argc, char** argv,
                                std::uint64_t fallback = 20061025) {
  // Default commemorates the paper's IMC 2006 presentation date.
  return argc > 1 ? std::strtoull(argv[1], nullptr, 10) : fallback;
}

/// Scale used by the 26-torrent sweep benches (Figs. 1, 9, 11; Table I):
/// small enough that a full sweep stays in the tens of seconds.
inline swarm::ScaleLimits sweep_limits() {
  swarm::ScaleLimits limits;
  limits.max_peers = 120;
  limits.max_pieces = 96;
  limits.min_pieces = 16;
  limits.duration = 30000.0;
  return limits;
}

/// Scale used by the single-torrent deep-dive benches (Figs. 2-8, 10):
/// larger swarm and content for better-resolved time series.
inline swarm::ScaleLimits deep_dive_limits() {
  swarm::ScaleLimits limits;
  limits.max_peers = 200;
  limits.max_pieces = 200;
  limits.duration = 30000.0;
  return limits;
}

inline void print_scale(const swarm::ScenarioConfig& cfg,
                        std::uint64_t seed) {
  std::printf("scale: torrent=%d seeds=%u leechers=%u pieces=%u "
              "piece_size=%uKiB arrival=%.3f/s warm=%d seed=%llu\n",
              cfg.torrent_id, cfg.initial_seeds, cfg.initial_leechers,
              cfg.num_pieces, cfg.piece_size / 1024, cfg.arrival_rate,
              cfg.leechers_warm ? 1 : 0,
              static_cast<unsigned long long>(seed));
}

/// Runs one scenario with an instrumented local peer until the local peer
/// completes (plus `extra_after` seconds of seed state), finalizing the
/// log at the stop time.
struct ScenarioRun {
  std::unique_ptr<instrument::LocalPeerLog> log;
  std::unique_ptr<swarm::ScenarioRunner> runner;
  double end_time = 0.0;
};

inline ScenarioRun run_scenario(swarm::ScenarioConfig cfg,
                                std::uint64_t seed,
                                double extra_after = 2500.0) {
  ScenarioRun run;
  run.log = std::make_unique<instrument::LocalPeerLog>(cfg.num_pieces);
  run.runner = std::make_unique<swarm::ScenarioRunner>(std::move(cfg), seed,
                                                       run.log.get());
  run.end_time = run.runner->run_until_local_complete(extra_after);
  run.log->finalize(run.end_time);
  return run;
}

/// Renders a 0..1 value as a small ASCII bar (for figure-like output).
inline std::string bar(double fraction, int width = 24) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int fill = static_cast<int>(fraction * width + 0.5);
  std::string out(static_cast<std::size_t>(fill), '#');
  out.append(static_cast<std::size_t>(width - fill), '.');
  return out;
}

/// Prints a downsampled time series as aligned rows.
inline void print_series(const char* name, const stats::TimeSeries& series,
                         std::size_t rows = 24) {
  std::printf("%s (%zu samples, downsampled to %zu rows)\n", name,
              series.size(), rows);
  for (const auto& s : series.downsample(rows)) {
    std::printf("  t=%8.0f  %10.2f\n", s.time, s.value);
  }
}

}  // namespace swarmlab::bench
