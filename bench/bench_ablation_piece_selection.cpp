// Ablation A1 (DESIGN.md): piece-selection strategies compared on the
// same torrent — local rarest first (the paper's subject), uniform
// random, sequential, and the global-rarest oracle (network-coding-like
// ideal knowledge; §IV-A.4 discussion).
//
// Expected shape: rarest first achieves entropy close to the oracle's;
// random is noticeably worse; sequential collapses diversity. The
// transient-state duration (torrent 8 variant) is insensitive to the
// picker — it is bounded by the initial seed's upload capacity.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "swarm/entropy.h"

namespace {

struct Row {
  const char* name;
  swarmlab::core::PickerKind kind;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  const Row rows[] = {
      {"rarest-first", core::PickerKind::kRarestFirst},
      {"random", core::PickerKind::kRandom},
      {"sequential", core::PickerKind::kSequential},
      {"global-oracle", core::PickerKind::kGlobalRarest},
  };

  std::printf("=== Ablation A1: piece-selection strategy ===\n");
  std::printf("seed=%llu — every peer in the swarm runs the listed "
              "picker\n\n", static_cast<unsigned long long>(seed));

  // Part 1: steady-state entropy (torrent-7-like swarm).
  std::printf("steady state (torrent 7 scaled): entropy and download "
              "time\n");
  std::printf("%-14s %8s %8s %8s %10s %10s %10s\n", "picker", "a/b p20",
              "a/b med", "c/d med", "dl time", "min copies",
              "global ent");
  for (const Row& row : rows) {
    swarm::ScaleLimits limits = bench::sweep_limits();
    auto cfg = swarm::scenario_from_table1(7, limits);
    cfg.remote_params.picker = row.kind;
    cfg.local_params.picker = row.kind;
    instrument::LocalPeerLog log(cfg.num_pieces);
    swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
    instrument::AvailabilitySampler sampler(runner.simulation(),
                                            runner.local_peer(), 20.0);
    swarm::SwarmEntropySampler global(runner.simulation(), runner.swarm(),
                                      120.0);
    const double end = runner.run_until_local_complete(1000.0);
    log.finalize(end);
    const auto entropy = instrument::analyze_entropy(log);
    // Time-averaged swarm-wide entropy over the local leecher phase.
    double global_sum = 0.0;
    std::size_t global_n = 0;
    for (const auto& smp : global.entropy().samples()) {
      if (smp.time > end) break;
      global_sum += smp.value;
      ++global_n;
    }
    const double global_mean =
        global_n > 0 ? global_sum / static_cast<double>(global_n) : 0.0;
    const double ls_end = log.seed_time() >= 0 ? log.seed_time() : end;
    double min_copies = 1e18;
    for (const auto& s : sampler.min_copies().samples()) {
      if (s.time > 30.0 && s.time <= ls_end) {
        min_copies = std::min(min_copies, s.value);
      }
    }
    const double dl = runner.local_peer().completion_time();
    std::printf("%-14s %8.2f %8.2f %8.2f %9.0fs %10.0f %10.2f\n",
                row.name, entropy.p20_local, entropy.median_local,
                entropy.median_remote, dl, min_copies, global_mean);
  }

  // Part 2: transient-state duration (torrent-8-like swarm). The time for
  // the rarest set to drain is seed-upload-bound for every picker that
  // avoids duplicate fetches from the seed.
  std::printf("\ntransient state (torrent 8 scaled): time for the initial "
              "seed to place one full copy\n");
  std::printf("%-14s %14s %12s\n", "picker", "transient end", "dl time");
  for (const Row& row : rows) {
    swarm::ScaleLimits limits = bench::sweep_limits();
    limits.max_peers = 100;
    auto cfg = swarm::scenario_from_table1(8, limits);
    cfg.remote_params.picker = row.kind;
    cfg.local_params.picker = row.kind;
    const double expected_floor =
        static_cast<double>(cfg.num_pieces) * cfg.piece_size /
        cfg.initial_seed_upload;
    instrument::LocalPeerLog log(cfg.num_pieces);
    swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
    // Transient ends when the global min copies (excluding the initial
    // seed's own copy) reaches 1, i.e. global availability min >= 2.
    double transient_end = -1.0;
    std::function<void()> watch = [&] {
      if (transient_end < 0 &&
          runner.swarm().global_availability().min_copies() >= 2) {
        transient_end = runner.simulation().now();
      }
      if (transient_end < 0) runner.simulation().schedule_in(20.0, watch);
    };
    runner.simulation().schedule_in(20.0, watch);
    const double end = runner.run_until_local_complete(0.0);
    log.finalize(end);
    std::printf("%-14s %13.0fs %11.0fs   (seed-capacity floor %.0fs)\n",
                row.name, transient_end,
                runner.local_peer().completion_time(), expected_floor);
  }
  std::printf("\npaper check — rarest first ~ oracle on entropy; the "
              "transient duration is bounded below by content/seed-upload "
              "for all pickers (the piece strategy cannot shorten it, "
              "§IV-A.2.a), but poor pickers lengthen it via duplicate "
              "fetches from the seed.\n");
  return 0;
}
