// Fig. 6 reproduction: number of rarest pieces, torrent 7 (steady state).
// Paper shape: a sawtooth — peer-set churn creates new rarest sets, and
// the rarest first algorithm rapidly duplicates them (consistent sharp
// drops after each rise). A steady state never relapses into a transient
// state.
#include <algorithm>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  auto cfg = swarm::scenario_from_table1(7, bench::deep_dive_limits());

  std::printf("=== Fig. 6: number of rarest pieces, torrent 7 "
              "(steady state) ===\n");
  bench::print_scale(cfg, seed);

  instrument::LocalPeerLog log(cfg.num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
  instrument::AvailabilitySampler sampler(runner.simulation(),
                                          runner.local_peer(), 10.0);
  const double end = runner.run_until_local_complete(3000.0);
  log.finalize(end);

  std::printf("\n%10s %10s\n", "t (s)", "#rarest");
  for (const auto& s : sampler.rarest_set_size().downsample(30)) {
    std::printf("%10.0f %10.0f\n", s.time, s.value);
  }

  // Sawtooth quantification: count rises (churn events) and how quickly
  // each rise decays (rarest-first duplication speed).
  const auto& samples = sampler.rarest_set_size().samples();
  int rises = 0, fast_decays = 0;
  for (std::size_t i = 1; i + 3 < samples.size(); ++i) {
    if (samples[i].value > samples[i - 1].value) {
      ++rises;
      // decayed back to (or below) the pre-rise level within 3 samples?
      for (std::size_t j = i + 1; j < std::min(i + 4, samples.size()); ++j) {
        if (samples[j].value <= samples[i - 1].value) {
          ++fast_decays;
          break;
        }
      }
    }
  }
  // Floor check over the local peer's leecher phase, skipping the first
  // 30 s (peer set still assembling, bitfields in flight).
  const double ls_end = log.seed_time() >= 0 ? log.seed_time() : end;
  double min_floor = 1e18;
  for (const auto& s : sampler.min_copies().samples()) {
    if (s.time > 30.0 && s.time <= ls_end) {
      min_floor = std::min(min_floor, s.value);
    }
  }
  std::printf("\nsawtooth: %d rises in the rarest-set size; %d of them "
              "collapsed again within 30 s (rarest first duplicates new "
              "rarest pieces fast)\n", rises, fast_decays);
  std::printf("paper check — no relapse into transient state: min copies "
              "over the leecher phase = %.0f (>= 1)\n", min_floor);
  return 0;
}
