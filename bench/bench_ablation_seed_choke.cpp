// Ablation A2 (DESIGN.md): new vs old seed-state choke algorithm under a
// fast free rider (paper §IV-B.3).
//
// Setup: the local peer is a SEED from the start (it plays the paper's
// "initial seed" role); the swarm contains ordinary leechers plus one
// free rider with a very fast access link. With the OLD algorithm
// (upload-rate ordering) the fast free rider camps in the seed's regular
// unchoke slots and monopolizes it; with the NEW algorithm (SKU/SRU
// rotation) every interested leecher gets a similar service time and the
// free rider's intake is bounded by its rotation share.
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

struct Outcome {
  double free_rider_share = 0.0;
  double top5_share = 0.0;
  std::size_t peers_served = 0;
  double spearman_service = 0.0;
};

Outcome run_variant(swarmlab::core::SeedChokerKind kind,
                    std::uint64_t seed) {
  using namespace swarmlab;
  // The catalog's ablation base (slow leechers so the fast free rider
  // stands out); only the algorithm under test varies per run.
  swarm::ScenarioConfig cfg =
      swarm::catalog_scenario("seed-choke-ablation");
  cfg.local_params.seed_choker = kind;

  instrument::LocalPeerLog log(cfg.num_pieces);
  swarm::ScenarioRunner runner(cfg, seed, &log);
  // Make the local peer a seed: we cannot set start_complete through the
  // ScenarioConfig (the local peer is always a leecher there), so rebuild
  // its role by... (see below) — instead we exploit PeerConfig directly.
  // The runner spawned the local peer as an empty leecher; replace the
  // scenario by giving the swarm one more peer we control:
  peer::PeerConfig sc;
  sc.start_complete = true;
  sc.params = cfg.local_params;
  sc.upload_capacity = cfg.local_upload;
  sc.download_capacity = cfg.local_download;
  instrument::LocalPeerLog seed_log(cfg.num_pieces);
  const peer::PeerId seed_id = runner.swarm().add_peer(sc, &seed_log);
  runner.swarm().start_peer(seed_id);

  // One fast free rider: downloads at 8x everyone, uploads nothing.
  peer::PeerConfig fr;
  fr.free_rider = true;
  fr.upload_capacity = 1.0;  // irrelevant: never unchokes anyone
  fr.download_capacity = net::kUnlimited;
  const peer::PeerId fr_id = runner.swarm().add_peer(fr);
  runner.swarm().start_peer(fr_id);

  runner.simulation().run_until(cfg.duration);
  seed_log.finalize(cfg.duration);

  Outcome out;
  std::uint64_t total = 0, to_fr = 0;
  std::vector<double> service, unchokes;
  std::vector<std::uint64_t> per_peer;
  for (const auto& [pid, r] : seed_log.records()) {
    total += r.up_bytes_seed;
    if (pid == fr_id) to_fr = r.up_bytes_seed;
    if (r.up_bytes_seed > 0) {
      per_peer.push_back(r.up_bytes_seed);
      ++out.peers_served;
    }
    if (r.time_in_set_seed > 0) {
      service.push_back(r.remote_interested_seed);
      unchokes.push_back(static_cast<double>(r.unchokes_seed));
    }
  }
  std::sort(per_peer.rbegin(), per_peer.rend());
  std::uint64_t top5 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(5, per_peer.size());
       ++i) {
    top5 += per_peer[i];
  }
  out.free_rider_share =
      total > 0 ? static_cast<double>(to_fr) / static_cast<double>(total)
                : 0.0;
  out.top5_share =
      total > 0 ? static_cast<double>(top5) / static_cast<double>(total)
                : 0.0;
  out.spearman_service = stats::spearman(service, unchokes);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);

  std::printf("=== Ablation A2: seed-state choke algorithm vs a fast free "
              "rider ===\n");
  std::printf("seed=%llu  setup: local seed @40kB/s, 40 leechers, 1 free "
              "rider with unlimited download\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-22s %16s %12s %14s %20s\n", "seed choke algorithm",
              "free-rider share", "top-5 share", "peers served",
              "unchokes~interested");

  const Outcome new_out = run_variant(core::SeedChokerKind::kNewSeed, seed);
  const Outcome old_out = run_variant(core::SeedChokerKind::kOldSeed, seed);
  std::printf("%-22s %15.1f%% %11.1f%% %14zu %20.2f\n",
              "new (SKU/SRU rotation)", 100 * new_out.free_rider_share,
              100 * new_out.top5_share, new_out.peers_served,
              new_out.spearman_service);
  std::printf("%-22s %15.1f%% %11.1f%% %14zu %20.2f\n",
              "old (upload-rate)", 100 * old_out.free_rider_share,
              100 * old_out.top5_share, old_out.peers_served,
              old_out.spearman_service);

  std::printf("\npaper check (§IV-B.3) — the old algorithm lets the fast "
              "free rider take a disproportionate share of the seed "
              "(paper: 'a fast free rider can monopolize a seed'); the "
              "new algorithm rotates, serving more peers with a bounded "
              "free-rider share and a strong unchoke/interested-time "
              "correlation.\n");
  return 0;
}
