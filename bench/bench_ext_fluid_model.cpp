// Extension E1: protocol-faithful simulation vs the Qiu-Srikant fluid
// model (the analytical baseline of the paper's §V).
//
// The analytical studies assume global knowledge; the paper argues that
// real BitTorrent, with its 80-peer local views, still "achieves an
// efficiency close to the one predicted by the models". This bench runs
// a swarm with Poisson arrivals to (quasi) steady state and compares the
// observed leecher/seed populations and mean download time with the
// fluid-model equilibrium for the same parameters.
#include <algorithm>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);

  // Simulation scenario: the catalog's fluid-comparison entry (Poisson
  // steady state, homogeneous capacities so the model mapping is exact,
  // no local peer — it is a population study).
  const swarm::ScenarioConfig cfg =
      swarm::catalog_scenario("fluid-comparison");
  const double up = cfg.leecher_classes.front().up;      // bytes/s
  const double down = cfg.leecher_classes.front().down;  // bytes/s

  // Fluid-model parameters in file copies per second.
  const double file_bytes =
      static_cast<double>(cfg.num_pieces) * cfg.piece_size;
  model::FluidParams params;
  params.lambda = cfg.arrival_rate;
  params.mu = up / file_bytes;
  params.c = down / file_bytes;
  params.gamma = 1.0 / cfg.seed_linger_mean;
  params.eta = 1.0;  // rarest first with large peer sets (the paper's claim)

  std::printf("=== Extension E1: simulation vs Qiu-Srikant fluid model "
              "===\n");
  std::printf("seed=%llu  lambda=%.3f/s mu=%.5f c=%.5f gamma=%.4f "
              "(copies/s)\n\n",
              static_cast<unsigned long long>(seed), params.lambda,
              params.mu, params.c, params.gamma);

  // Run the simulation, sampling populations.
  swarm::ScenarioRunner runner(cfg, seed);
  const auto model_traj =
      model::integrate(params, cfg.initial_leechers, cfg.initial_seeds,
                       cfg.duration, 500.0);
  std::printf("%8s | %10s %10s | %10s %10s\n", "t (s)", "sim x", "sim y",
              "model x", "model y");
  std::vector<double> sim_x, sim_y;
  for (const auto& m : model_traj) {
    runner.simulation().run_until(m.t);
    const double x = static_cast<double>(
        runner.swarm().tracker().num_leechers());
    const double y =
        static_cast<double>(runner.swarm().tracker().num_seeds());
    if (m.t > 5000.0) {  // discard the warmup
      sim_x.push_back(x);
      sim_y.push_back(y);
    }
    std::printf("%8.0f | %10.1f %10.1f | %10.1f %10.1f\n", m.t, x, y,
                m.leechers, m.seeds);
  }

  // Steady-state comparison.
  const model::FluidEquilibrium eq = model::equilibrium(params);
  double mean_x = 0, mean_y = 0;
  for (const double v : sim_x) mean_x += v;
  for (const double v : sim_y) mean_y += v;
  if (!sim_x.empty()) mean_x /= static_cast<double>(sim_x.size());
  if (!sim_y.empty()) mean_y /= static_cast<double>(sim_y.size());

  // Observed mean download time of peers that completed after warmup.
  double dl_sum = 0;
  int dl_n = 0;
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (p->config().start_complete || p->completion_time() < 0) continue;
    if (!p->config().initial_pieces.empty()) continue;  // warm starters
    if (p->start_time() < 5000.0) continue;
    dl_sum += p->completion_time() - p->start_time();
    ++dl_n;
  }

  std::printf("\nsteady state:        %10s %10s %14s\n", "leechers",
              "seeds", "download time");
  std::printf("  simulation (mean)  %10.1f %10.1f %13.0fs (n=%d)\n",
              mean_x, mean_y, dl_n > 0 ? dl_sum / dl_n : -1.0, dl_n);
  std::printf("  fluid equilibrium  %10.1f %10.1f %13.0fs (%s-"
              "constrained)\n",
              eq.leechers, eq.seeds, eq.download_time,
              eq.download_constrained ? "download" : "upload");
  std::printf("\npaper check (§V) — the protocol with 80-peer local views "
              "tracks the global-knowledge fluid prediction: populations "
              "and download time agree to within tens of percent; the "
              "residual gap is the protocol overhead the models assume "
              "away (choke rotation, pipelining, piece granularity).\n");
  return 0;
}
