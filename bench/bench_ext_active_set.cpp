// Extension E2: active-set-size sweep.
//
// Biersack, Rodriguez & Felber (paper §V) show analytically that the
// number of simultaneous uploads should be between 3 and 5: too few
// serializes the distribution, too many splits each upload so thin that
// reciprocation signals drown and pieces trickle. This bench sweeps the
// active set size (regular slots + 1 optimistic) on a fixed flash-crowd
// scenario and reports the mean download time and swarm finish time.
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

struct Outcome {
  double mean_dl = 0.0;
  double last_finish = 0.0;
  double local_dl = 0.0;
};

Outcome run(std::uint32_t active_set, std::uint64_t seed) {
  using namespace swarmlab;
  swarm::ScenarioConfig cfg;
  cfg.name = "active-set-sweep";
  cfg.num_pieces = 48;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 40;
  cfg.leechers_warm = false;
  cfg.seed_linger_mean = 0.0;
  cfg.duration = 30000.0;
  for (core::ProtocolParams* p :
       {&cfg.remote_params, &cfg.local_params}) {
    p->active_set_size = active_set;
    p->regular_unchoke_slots = active_set > 1 ? active_set - 1 : 1;
  }
  cfg.initial_seed_upload = 40.0 * 1024;

  swarm::ScenarioRunner runner(cfg, seed);
  runner.run();
  Outcome out;
  double sum = 0;
  int n = 0;
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (p->config().start_complete) continue;
    if (p->completion_time() < 0) {
      out.last_finish = cfg.duration;  // someone never finished
      continue;
    }
    sum += p->completion_time() - p->start_time();
    ++n;
    out.last_finish = std::max(out.last_finish, p->completion_time());
  }
  out.mean_dl = n > 0 ? sum / n : -1;
  out.local_dl = runner.local_peer().completion_time();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed = bench::bench_seed(argc, argv);

  std::printf("=== Extension E2: active-set-size sweep (flash crowd, 41 "
              "leechers, 1 seed) ===\n");
  std::printf("seed=%llu — active set = regular unchoke slots + 1 "
              "optimistic\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%12s %14s %14s %14s\n", "active set", "mean dl (s)",
              "last finish", "local peer dl");
  double best = 1e18;
  std::uint32_t best_k = 0;
  for (const std::uint32_t k : {1u, 2u, 3u, 4u, 5u, 6u, 8u, 12u}) {
    const Outcome o = run(k, seed);
    std::printf("%12u %14.0f %14.0f %14.0f\n", k, o.mean_dl,
                o.last_finish, o.local_dl);
    if (o.mean_dl > 0 && o.mean_dl < best) {
      best = o.mean_dl;
      best_k = k;
    }
  }
  std::printf("\npaper check (§V, Biersack et al.: 3-5 simultaneous "
              "uploads) — measured optimum here: active set = %u. The "
              "upper half of the recommendation reproduces sharply: "
              "large active sets split each upload so thin that pieces "
              "complete slowly everywhere. The lower half does not bind "
              "in this substrate: the fluid model has no per-connection "
              "overhead, no TCP slow start, and departures stall a "
              "single-slot downloader for at most one 10 s choke round, "
              "so the robustness cost that makes 1-2 slots risky on real "
              "networks is deliberately absent (see DESIGN.md "
              "substitutions).\n",
              best_k);
  return 0;
}
