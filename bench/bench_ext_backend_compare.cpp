// Cross-backend comparison harness: runs a representative cross-section
// of the Table-I torrents plus a cold flash crowd on BOTH registered
// transfer models ("fluid" and "packet") under identical seeds, then
// checks the backends agree:
//
//  * structurally — a scenario that completes on one backend completes
//    on the other (exact);
//  * in aggregate — local completion times within a multiplicative
//    tolerance band, and the Gini fairness index of per-remote download
//    contributions within an absolute delta.
//
// Writes a machine-readable comparison report (--json, default
// backend-compare.json) and exits non-zero if any scenario falls outside
// its band — CI runs this and archives the report. The bands are
// deliberately wide: the two models SHOULD disagree on timing detail
// (that is the point of having both); the gate only catches a backend
// drifting into a different qualitative regime.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace swarmlab;

// Multiplicative band for packet/fluid local completion-time ratio.
constexpr double kCompletionRatioBand = 2.0;
// Absolute band for the fairness-index difference.
constexpr double kGiniDeltaBand = 0.30;

struct BackendOutcome {
  bool completed = false;
  double completion = -1.0;
  double gini = 0.0;
  std::uint64_t events = 0;
};

runner::JobFnCtx make_job_fn() {
  return [](const runner::BatchJob& job, const runner::JobContext& ctx) {
    return runner::run_scenario_job(
        job, ctx, 500.0,
        [](const swarm::ScenarioRunner&, const instrument::LocalPeerLog& log,
           runner::RunResult& res) {
          std::vector<double> shares;
          shares.reserve(log.records().size());
          for (const auto& [id, rec] : log.records()) {
            shares.push_back(static_cast<double>(rec.down_bytes()));
          }
          res.metrics["download_gini"] = stats::gini(std::move(shares));
        });
  };
}

BackendOutcome outcome_of(const runner::RunResult& r) {
  BackendOutcome out;
  out.completed = r.completed;
  out.completion = r.local_completion;
  out.events = r.events_executed;
  if (const auto* g = r.metrics.find("download_gini")) {
    out.gini = g->as_double();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_bench_options(argc, argv);
  const std::string json_path =
      opts.json_path.empty() ? "backend-compare.json" : opts.json_path;

  // A cross-section of Table I — transient and steady state, seed-poor
  // and seed-rich — at a reduced scale so the per-segment packet model
  // stays affordable, plus a cold flash crowd (the paper's §IV-A.1
  // startup regime, which stresses rare-piece replication hardest).
  swarm::ScaleLimits limits;
  limits.max_peers = 48;
  limits.max_pieces = 32;
  limits.min_pieces = 16;
  limits.duration = 25000.0;
  const int table_rows[] = {2, 3, 7, 13, 16, 19};

  std::vector<runner::BatchJob> scenarios;
  int id = 0;
  for (const int row : table_rows) {
    runner::BatchJob job;
    job.id = ++id;
    job.config = swarm::scenario_from_table1(row, limits);
    job.name = job.config.name;
    job.seed = opts.seed + static_cast<std::uint64_t>(row);
    scenarios.push_back(std::move(job));
  }
  {
    runner::BatchJob job;
    job.id = ++id;
    job.config = swarm::catalog_scenario("flash-crowd-cold");
    job.name = job.config.name;
    job.seed = opts.seed + 100;
    scenarios.push_back(std::move(job));
  }

  std::printf("=== Backend comparison: fluid vs packet ===\n");
  std::printf("seed=%llu jobs=%d scenarios=%zu bands: completion x%.1f, "
              "gini +/-%.2f\n\n",
              static_cast<unsigned long long>(opts.seed), opts.jobs,
              scenarios.size(), kCompletionRatioBand, kGiniDeltaBand);

  // One batch per backend, identical jobs and seeds. Jobs parallelize
  // within each batch; results merge in submission order, so stdout and
  // the report are byte-stable for any --jobs.
  if (!opts.hostile.empty() &&
      !bench::apply_hostile_spec(opts.hostile, scenarios)) {
    return 2;
  }
  runner::BatchOptions bopts;
  bopts.jobs = opts.jobs;
  bopts.master_seed = opts.seed;
  bopts.job_timeout = opts.timeout;
  bopts.retries = opts.retries;
  std::vector<std::vector<runner::RunResult>> by_backend;
  const char* backends[] = {"fluid", "packet"};
  for (const char* backend : backends) {
    std::vector<runner::BatchJob> jobs = scenarios;
    for (auto& job : jobs) job.config.network_backend = backend;
    // Each backend gets its own checkpoint file: the two batches share
    // job ids, so one JSONL stream could not hold both result sets.
    bopts.checkpoint_path =
        opts.resume_path.empty() ? ""
                                 : opts.resume_path + "." + backend;
    runner::BatchRunner batch(bopts);
    by_backend.push_back(batch.run(jobs, make_job_fn()));
  }

  std::printf("%-20s %12s %12s %8s %8s %8s %8s  %s\n", "scenario", "fluid_t",
              "packet_t", "ratio", "f_gini", "p_gini", "d_gini", "verdict");

  auto entries = runner::json::Value::array();
  int failures = 0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const BackendOutcome f = outcome_of(by_backend[0][i]);
    const BackendOutcome p = outcome_of(by_backend[1][i]);

    std::string why;
    if (f.completed != p.completed) {
      why = "completion disagreement";
    }
    double ratio = 0.0;
    if (f.completed && p.completed) {
      ratio = p.completion / f.completion;
      if (ratio > kCompletionRatioBand || ratio < 1.0 / kCompletionRatioBand) {
        why = "completion-time ratio out of band";
      }
    }
    const double gini_delta = p.gini - f.gini;
    if (why.empty() && std::fabs(gini_delta) > kGiniDeltaBand) {
      why = "fairness delta out of band";
    }
    if (!why.empty()) ++failures;

    std::printf("%-20s %12.1f %12.1f %8.3f %8.3f %8.3f %8.3f  %s\n",
                scenarios[i].name.c_str(), f.completion, p.completion, ratio,
                f.gini, p.gini, gini_delta,
                why.empty() ? "ok" : why.c_str());

    auto entry = runner::json::Value::object();
    entry["id"] = scenarios[i].id;
    entry["name"] = scenarios[i].name;
    entry["seed"] = scenarios[i].seed;
    for (int b = 0; b < 2; ++b) {
      const BackendOutcome& o = b == 0 ? f : p;
      auto side = runner::json::Value::object();
      side["completed"] = o.completed;
      side["completion"] = o.completion;
      side["download_gini"] = o.gini;
      side["events"] = o.events;
      entry[backends[b]] = std::move(side);
    }
    entry["completion_ratio"] = ratio;
    entry["gini_delta"] = gini_delta;
    entry["pass"] = why.empty();
    if (!why.empty()) entry["why"] = why;
    entries.push_back(std::move(entry));
  }

  auto report = runner::json::Value::object();
  report["schema"] = "swarmlab.backend-compare/1";
  report["master_seed"] = opts.seed;
  report["completion_ratio_band"] = kCompletionRatioBand;
  report["gini_delta_band"] = kGiniDeltaBand;
  report["failures"] = failures;
  report["results"] = std::move(entries);
  std::string error;
  if (!runner::write_report(json_path, report, &error)) {
    std::fprintf(stderr, "bench_ext_backend_compare: %s\n", error.c_str());
    return 1;
  }

  std::printf("\n%d/%zu scenarios within bands. Report written to %s.\n",
              static_cast<int>(scenarios.size()) - failures,
              scenarios.size(), json_path.c_str());
  for (const auto& results : by_backend) {
    const std::string summary = runner::failure_summary(results);
    if (!summary.empty()) {
      std::fputs(summary.c_str(), stderr);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
