// Extension: fault-tolerance matrix.
//
// The paper observes swarms under graceful churn only; this bench runs a
// Table-I subset through a matrix of adverse conditions — control-message
// loss, abrupt peer crashes, initial-seed death, tracker outages, and the
// combined storm — and reports whether rarest-first + choke still carry
// the local peer to completion (and at what cost in completion time).
//
// Every fault draw comes from a per-job RNG stream forked from the job
// seed, so rows and the JSON report are identical for any --jobs value.
#include "bench_util.h"

namespace {

using swarmlab::fault::FaultPlan;
using swarmlab::fault::TrackerOutage;

struct FaultLevel {
  const char* name;
  FaultPlan plan;
};

// The matrix columns. Rates are chosen to stress, not to guarantee a
// stall: ~5% loss, one crash every ~10 simulated minutes, the initial
// seeds dying at t=900s (after the paper's transient but often before
// every piece has a second replica), and a 20-minute tracker blackout.
std::vector<FaultLevel> fault_levels() {
  std::vector<FaultLevel> levels;
  levels.push_back({"clean", {}});

  FaultLevel loss{"loss", {}};
  loss.plan.message_loss_rate = 0.05;
  loss.plan.message_delay_jitter = 0.25;
  levels.push_back(loss);

  FaultLevel crash{"crash", {}};
  crash.plan.peer_crash_rate = 1.0 / 600.0;
  levels.push_back(crash);

  FaultLevel seeddeath{"seeddeath", {}};
  seeddeath.plan.initial_seed_death_time = 900.0;
  levels.push_back(seeddeath);

  FaultLevel flowkill{"flowkill", {}};
  flowkill.plan.flow_kill_rate = 1.0 / 120.0;
  levels.push_back(flowkill);

  FaultLevel outage{"outage", {}};
  outage.plan.tracker_outages.push_back(TrackerOutage{600.0, 1200.0});
  levels.push_back(outage);

  FaultLevel storm{"storm", {}};
  storm.plan.message_loss_rate = 0.05;
  storm.plan.message_delay_jitter = 0.25;
  storm.plan.peer_crash_rate = 1.0 / 600.0;
  storm.plan.initial_seed_death_time = 900.0;
  storm.plan.flow_kill_rate = 1.0 / 120.0;
  storm.plan.tracker_outages.push_back(TrackerOutage{600.0, 1200.0});
  levels.push_back(storm);
  return levels;
}

std::uint64_t fault_u64(const swarmlab::runner::RunResult& res,
                        const char* key) {
  const auto* faults = res.metrics.find("faults");
  if (faults == nullptr) return 0;
  const auto* v = faults->find(key);
  return v != nullptr ? v->as_uint64() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const auto opts = bench::parse_bench_options(argc, argv);
  const auto limits = bench::sweep_limits();
  const auto levels = fault_levels();
  // Small/medium/large rows of Table I — enough spread to show scale
  // effects without turning the matrix into a full 26x6 sweep.
  const int torrents[] = {3, 5, 14};

  std::printf("=== Extension: fault-tolerance matrix ===\n");
  std::printf("seed=%llu  torrents={3,5,14}  levels: clean loss(5%%+0.25s) "
              "crash(1/600s)\nseeddeath(t=900) flowkill(1/120s) "
              "outage(600..1800) storm(all)\n\n",
              static_cast<unsigned long long>(opts.seed));
  std::printf("%3s %-10s | %-7s %8s %8s | %6s %5s %5s %5s %6s %6s\n", "ID",
              "level", "outcome", "done_t", "end_t", "crash", "drop",
              "kill", "out", "annfl", "ghost");
  std::printf("-----------------------------------------------------------"
              "------------------\n");

  std::vector<runner::BatchJob> jobs;
  int job_id = 0;
  for (const int torrent : torrents) {
    for (const auto& level : levels) {
      runner::BatchJob job;
      job.id = ++job_id;
      job.config = swarm::scenario_from_table1(torrent, limits);
      job.config.faults = level.plan;
      job.name = std::string("T") + std::to_string(torrent) + "/" +
                 level.name;
      job.seed = sim::fork_seed(opts.seed,
                                static_cast<std::uint64_t>(job.id));
      jobs.push_back(std::move(job));
    }
  }

  const std::size_t per_torrent = levels.size();
  const auto outcome = bench::run_sweep(
      "bench_ext_fault_matrix", opts, jobs,
      [&](const runner::BatchJob& job, const runner::JobContext& ctx) {
        return runner::run_scenario_job(
            job, ctx, 500.0,
            [&](const swarm::ScenarioRunner& sr,
                const instrument::LocalPeerLog&, runner::RunResult& res) {
              const std::size_t idx =
                  static_cast<std::size_t>(job.id - 1);
              const char* level = levels[idx % per_torrent].name;
              bench::appendf(
                  res.text,
                  "%3d %-10s | %-7s %8.0f %8.0f | %6llu %5llu %5llu %5llu "
                  "%6llu %6llu\n",
                  sr.config().torrent_id, level,
                  res.completed ? "done" : "STALLED",
                  res.local_completion, res.end_time,
                  static_cast<unsigned long long>(
                      fault_u64(res, "peer_crashes") +
                      fault_u64(res, "seed_deaths")),
                  static_cast<unsigned long long>(
                      fault_u64(res, "messages_dropped")),
                  static_cast<unsigned long long>(
                      fault_u64(res, "flows_killed")),
                  static_cast<unsigned long long>(
                      fault_u64(res, "tracker_outages")),
                  static_cast<unsigned long long>(
                      fault_u64(res, "announce_failures")),
                  static_cast<unsigned long long>(
                      fault_u64(res, "local_ghosts_evicted")));
              res.metrics["fault_level"] = level;
            });
      });

  std::printf("\noutcome: done = local peer finished its download; STALLED "
              "= hit the duration cap\nstill leeching (done_t is -1). "
              "crash counts seed deaths; annfl = failed announces;\nghost "
              "= dead neighbours the local peer evicted via its silence "
              "timeout.\n");
  return outcome.exit_code;
}
