// Swarm-wide invariants, checked repeatedly during live runs across many
// RNG seeds (parameterized property tests).
#include <gtest/gtest.h>

#include "swarm/scenario.h"

namespace swarmlab {
namespace {

class SwarmInvariantsTest : public ::testing::TestWithParam<int> {};

/// Checks structural invariants of every active peer at one instant.
void check_invariants(swarm::Swarm& sw, double t) {
  const auto ids = sw.peer_ids();
  for (const peer::PeerId id : ids) {
    const peer::Peer* p = sw.find_peer(id);
    ASSERT_NE(p, nullptr);
    if (!p->active()) continue;
    const auto& params = p->config().params;

    // Peer set bounded.
    EXPECT_LE(p->peer_set_size(), params.max_peer_set) << "t=" << t;
    EXPECT_LE(p->initiated_connections(), params.max_initiated)
        << "t=" << t;

    // Availability map equals the sum of remote bitfields.
    core::AvailabilityMap reference(p->have().size());
    std::size_t unchoked_interested = 0;
    for (const peer::PeerId remote : p->connected_peers()) {
      const peer::Connection* conn = p->connection(remote);
      ASSERT_NE(conn, nullptr);
      reference.add_peer(conn->remote_have);
      if (!conn->am_choking && conn->peer_interested) {
        ++unchoked_interested;
      }

      // Connection symmetry: the other side sees us too (unless it left
      // the torrent this very instant, which disconnect() makes atomic).
      const peer::Peer* other = sw.find_peer(remote);
      ASSERT_NE(other, nullptr);
      if (other->active()) {
        EXPECT_NE(other->connection(id), nullptr)
            << "asymmetric connection " << id << "<->" << remote;
      }

      // Interest flag consistency with missing_count semantics.
      std::uint32_t missing = 0;
      for (wire::PieceIndex piece = 0; piece < p->have().size(); ++piece) {
        if (conn->remote_have.has(piece) && !p->have().has(piece)) {
          ++missing;
        }
      }
      EXPECT_EQ(conn->missing_count, missing);
      EXPECT_EQ(conn->am_interested, missing > 0);

      // Request pipeline bounded.
      EXPECT_LE(conn->outstanding.size(), params.pipeline_depth);
    }
    for (wire::PieceIndex piece = 0; piece < p->have().size(); ++piece) {
      EXPECT_EQ(p->availability().copies(piece), reference.copies(piece))
          << "peer " << id << " piece " << piece << " t=" << t;
    }

    // The choke algorithm's cardinality bound: at most `active_set_size`
    // peers unchoked-and-interested (paper §II-C.2).
    EXPECT_LE(unchoked_interested, params.active_set_size)
        << "peer " << id << " t=" << t;

    // A seed is never interested in anyone.
    if (p->is_seed()) {
      for (const peer::PeerId remote : p->connected_peers()) {
        EXPECT_FALSE(p->connection(remote)->am_interested);
      }
    }
  }
}

TEST_P(SwarmInvariantsTest, HoldThroughoutARun) {
  swarm::ScenarioConfig cfg;
  cfg.num_pieces = 24;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 14;
  cfg.leechers_warm = (GetParam() % 2) == 0;
  cfg.arrival_rate = 0.02;
  cfg.seed_linger_mean = 200.0;
  cfg.free_rider_fraction = 0.15;
  cfg.duration = 6000.0;
  swarm::ScenarioRunner runner(cfg, static_cast<std::uint64_t>(GetParam()));
  for (double t = 100.0; t <= cfg.duration; t += 400.0) {
    runner.simulation().run_until(t);
    check_invariants(runner.swarm(), t);
  }
  // With a persistent initial seed, the local peer always finishes.
  EXPECT_TRUE(runner.local_peer().is_seed());
  // Every departed or finished peer downloaded at least the content size
  // (end-game duplicates may add a few blocks) or nothing relevant.
  const auto geo = runner.swarm().geometry();
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (!p->is_seed() || p->config().start_complete) continue;
    std::uint64_t initial_bytes = 0;
    for (wire::PieceIndex piece = 0;
         piece < static_cast<wire::PieceIndex>(p->config().initial_pieces.size());
         ++piece) {
      if (p->config().initial_pieces[piece]) {
        initial_bytes += geo.piece_bytes(piece);
      }
    }
    EXPECT_GE(p->total_downloaded() + initial_bytes, geo.total_bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwarmInvariantsTest, ::testing::Range(1, 9));

class DeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismTest, IdenticalSeedIdenticalTrajectory) {
  const auto run_digest = [](std::uint64_t seed) {
    swarm::ScenarioConfig cfg;
    cfg.num_pieces = 16;
    cfg.initial_seeds = 1;
    cfg.initial_leechers = 8;
    cfg.arrival_rate = 0.05;
    cfg.duration = 2000.0;
    swarm::ScenarioRunner runner(cfg, seed);
    runner.run();
    // Digest: every peer's byte counters and completion time.
    std::uint64_t digest = 0;
    for (const peer::PeerId id : runner.swarm().peer_ids()) {
      const peer::Peer* p = runner.swarm().find_peer(id);
      digest = digest * 1000003 + p->total_uploaded();
      digest = digest * 1000003 + p->total_downloaded();
      digest = digest * 1000003 +
               static_cast<std::uint64_t>(p->completion_time() * 1000);
    }
    return digest;
  };
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 7919;
  EXPECT_EQ(run_digest(seed), run_digest(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest, ::testing::Range(1, 5));

}  // namespace
}  // namespace swarmlab
