// MockFabric: a recording peer::Fabric for single-module unit tests.
//
// Drives one Peer in isolation: every outbound control message, block
// send, connect, and disconnect is recorded instead of routed, so a test
// plays the remote side by calling the peer's entry points directly and
// asserts on exactly what the module under test emitted — no Swarm, no
// tracker, no second peer.
#pragma once

#include <utility>
#include <vector>

#include "core/availability.h"
#include "mock_network.h"
#include "peer/fabric.h"
#include "sim/simulation.h"

namespace swarmlab::test {

class MockFabric final : public peer::Fabric {
 public:
  MockFabric(sim::Simulation& sim, const wire::ContentGeometry& geo)
      : sim_(sim), net_(sim, 0.05), global_avail_(geo.num_pieces()) {}

  sim::Simulation& simulation() override { return sim_; }
  net::Network& network() override { return net_; }

  void send_control(peer::PeerId /*from*/, peer::PeerId to,
                    wire::Message msg) override {
    sent.push_back({to, std::move(msg)});
  }

  void broadcast_have(peer::PeerId /*from*/, wire::PieceIndex piece) override {
    broadcast_haves.push_back(piece);
  }

  net::FlowId send_block(peer::PeerId /*from*/, peer::PeerId to,
                         wire::BlockRef block) override {
    blocks_sent.push_back({to, block});
    if (fail_send_block) return 0;
    return net_.start_flow(0, 0, 16 * 1024, [] {});
  }

  void connect(peer::PeerId /*from*/, peer::PeerId to) override {
    connects.push_back(to);
  }

  void disconnect(peer::PeerId a, peer::PeerId b) override {
    disconnects.push_back({a, b});
  }

  peer::AnnounceResult announce(peer::PeerId /*who*/,
                                peer::AnnounceEvent event) override {
    announces.push_back(event);
    return announce_result;
  }

  const core::AvailabilityMap& global_availability() const override {
    return global_avail_;
  }

  // --- recorded traffic --------------------------------------------------
  std::vector<std::pair<peer::PeerId, wire::Message>> sent;
  std::vector<wire::PieceIndex> broadcast_haves;
  std::vector<std::pair<peer::PeerId, wire::BlockRef>> blocks_sent;
  std::vector<peer::PeerId> connects;
  std::vector<std::pair<peer::PeerId, peer::PeerId>> disconnects;
  std::vector<peer::AnnounceEvent> announces;

  /// What the next announce returns (default: success, no candidates).
  peer::AnnounceResult announce_result;
  /// When set, send_block reports failure (returns flow id 0).
  bool fail_send_block = false;

  /// Messages of type M sent to `to`, in send order.
  template <typename M>
  std::vector<M> sent_to(peer::PeerId to) const {
    std::vector<M> out;
    for (const auto& [dest, msg] : sent) {
      if (dest != to) continue;
      if (const auto* m = std::get_if<M>(&msg)) out.push_back(*m);
    }
    return out;
  }

  template <typename M>
  std::size_t count_sent(peer::PeerId to) const {
    return sent_to<M>(to).size();
  }

 private:
  sim::Simulation& sim_;
  MockNetwork net_;
  core::AvailabilityMap global_avail_;
};

}  // namespace swarmlab::test
