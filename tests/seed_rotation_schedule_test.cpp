// The new seed-state choke algorithm's exact 3-round cycle (paper
// §II-C.2): two consecutive 10 s periods keep the 3 most recently
// unchoked peers and add one random choked peer; the third period keeps
// the 4 most recently unchoked.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/choker.h"
#include "sim/rng.h"

namespace swarmlab::core {
namespace {

struct Sim {
  ProtocolParams params;
  NewSeedChoker choker{params};
  sim::Rng rng{5};
  std::map<PeerKey, double> last_unchoke;
  std::map<PeerKey, bool> unchoked;
  double t = 0.0;

  explicit Sim(int peers) {
    for (PeerKey k = 1; k <= static_cast<PeerKey>(peers); ++k) {
      last_unchoke[k] = -1.0;
      unchoked[k] = false;
    }
  }

  std::vector<PeerKey> round(std::uint64_t n) {
    t += 10.0;
    std::vector<ChokeCandidate> cs;
    for (const auto& [k, lu] : last_unchoke) {
      ChokeCandidate c;
      c.key = k;
      c.interested = true;
      c.unchoked = unchoked[k];
      c.last_unchoke_time = lu;
      cs.push_back(c);
    }
    const auto sel = choker.select(cs, n, rng);
    for (auto& [k, u] : unchoked) {
      const bool now =
          std::find(sel.begin(), sel.end(), k) != sel.end();
      if (now && !u) last_unchoke[k] = t;
      u = now;
    }
    return sel;
  }
};

TEST(SeedRotation, SruRoundsKeepThreeAndAddOne) {
  Sim sim(12);
  // Warm up until 4 slots are filled.
  std::vector<PeerKey> prev;
  for (std::uint64_t r = 0; r < 6; ++r) prev = sim.round(r);
  ASSERT_EQ(prev.size(), 4u);

  for (std::uint64_t r = 6; r < 60; ++r) {
    const auto sel = sim.round(r);
    ASSERT_EQ(sel.size(), 4u);
    std::vector<PeerKey> kept;
    for (const PeerKey k : sel) {
      if (std::find(prev.begin(), prev.end(), k) != prev.end()) {
        kept.push_back(k);
      }
    }
    if (r % 3 == 2) {
      // Keep round: all four carried over.
      EXPECT_EQ(kept.size(), 4u) << "round " << r;
    } else {
      // SRU round: at least the 3 most recent survive; the newcomer (if
      // any) is drawn from the choked pool.
      EXPECT_GE(kept.size(), 3u) << "round " << r;
    }
    prev = sel;
  }
}

TEST(SeedRotation, OldestSkuLosesItsSlotToTheSru) {
  Sim sim(12);
  for (std::uint64_t r = 0; r < 30; ++r) sim.round(r);
  // After many rounds, track one full cycle: the peer with the OLDEST
  // last-unchoke time among the active four is the one displaced on the
  // next SRU round that brings in a newcomer.
  for (std::uint64_t r = 30; r < 60; ++r) {
    std::vector<PeerKey> active;
    for (const auto& [k, u] : sim.unchoked) {
      if (u) active.push_back(k);
    }
    if (active.size() < 4 || (r % 3) == 2) {
      sim.round(r);
      continue;
    }
    const PeerKey oldest = *std::min_element(
        active.begin(), active.end(), [&](PeerKey a, PeerKey b) {
          return sim.last_unchoke[a] < sim.last_unchoke[b];
        });
    const auto sel = sim.round(r);
    // If somebody new came in, the displaced peer must be the oldest.
    std::vector<PeerKey> dropped;
    for (const PeerKey k : active) {
      if (std::find(sel.begin(), sel.end(), k) == sel.end()) {
        dropped.push_back(k);
      }
    }
    if (!dropped.empty()) {
      ASSERT_EQ(dropped.size(), 1u);
      EXPECT_EQ(dropped[0], oldest) << "round " << r;
    }
  }
}

TEST(SeedRotation, EveryInterestedPeerEventuallyServed) {
  Sim sim(16);
  std::set<PeerKey> ever;
  for (std::uint64_t r = 0; r < 200; ++r) {
    for (const PeerKey k : sim.round(r)) ever.insert(k);
  }
  EXPECT_EQ(ever.size(), 16u);
}

}  // namespace
}  // namespace swarmlab::core
