// ObserverHub / ObserverList / SwarmObserver wiring tests, plus the
// digest-under-observation passivity check: attaching a record-only
// all-peers observer must not change any simulated trajectory.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "instrument/trace.h"
#include "peer/observer.h"
#include "runner/batch_runner.h"
#include "swarm/observer_hub.h"
#include "swarm/scenario.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

/// Appends "<tag>" to a shared journal on every on_start; optionally
/// mutates the list it lives in mid-dispatch.
struct TagObserver final : peer::PeerObserver {
  TagObserver(std::string tag, std::vector<std::string>& journal)
      : tag(std::move(tag)), journal(&journal) {}
  void on_start(sim::SimTime) override {
    journal->push_back(tag);
    if (action) action();
  }
  std::string tag;
  std::vector<std::string>* journal;
  std::function<void()> action;
};

TEST(ObserverList, DispatchFollowsAttachOrder) {
  std::vector<std::string> journal;
  TagObserver a("a", journal), b("b", journal), c("c", journal);
  instrument::ObserverList list;
  list.add(&b);
  list.add(&a);
  list.add(&c);
  list.on_start(0.0);
  EXPECT_EQ(journal, (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_EQ(list.size(), 3u);
}

TEST(ObserverList, SelfRemovalMidDispatchKeepsLaterObservers) {
  std::vector<std::string> journal;
  TagObserver a("a", journal), b("b", journal), c("c", journal);
  instrument::ObserverList list;
  list.add(&a);
  list.add(&b);
  list.add(&c);
  b.action = [&] { EXPECT_TRUE(list.remove(&b)); };
  list.on_start(0.0);
  // b fires once (its own callback was already in flight), c still runs.
  EXPECT_EQ(journal, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(list.size(), 2u);
  journal.clear();
  b.action = nullptr;
  list.on_start(1.0);
  EXPECT_EQ(journal, (std::vector<std::string>{"a", "c"}));
}

TEST(ObserverList, RemovingALaterObserverSuppressesItsInFlightEvent) {
  std::vector<std::string> journal;
  TagObserver a("a", journal), b("b", journal);
  instrument::ObserverList list;
  list.add(&a);
  list.add(&b);
  a.action = [&] { EXPECT_TRUE(list.remove(&b)); };
  list.on_start(0.0);
  // b was removed before its slot was reached: no callback at all.
  EXPECT_EQ(journal, (std::vector<std::string>{"a"}));
  EXPECT_EQ(list.size(), 1u);
}

TEST(ObserverList, AddMidDispatchStartsWithTheNextEvent) {
  std::vector<std::string> journal;
  TagObserver a("a", journal), late("late", journal);
  instrument::ObserverList list;
  list.add(&a);
  a.action = [&] { list.add(&late); };
  list.on_start(0.0);
  EXPECT_EQ(journal, (std::vector<std::string>{"a"}));
  a.action = nullptr;
  journal.clear();
  list.on_start(1.0);
  EXPECT_EQ(journal, (std::vector<std::string>{"a", "late"}));
}

TEST(ObserverList, RemoveUnknownReturnsFalse) {
  std::vector<std::string> journal;
  TagObserver a("a", journal);
  instrument::ObserverList list;
  EXPECT_FALSE(list.remove(&a));
  list.add(&a);
  EXPECT_TRUE(list.remove(&a));
  EXPECT_FALSE(list.remove(&a));
  EXPECT_EQ(list.size(), 0u);
}

/// Counts SwarmObserver callbacks per observed peer — the "record-only
/// all-peers observer" of the passivity requirement.
struct CountingSwarmObserver final : peer::SwarmObserver {
  void on_start(peer::PeerId self, sim::SimTime) override {
    ++starts[self];
  }
  void on_piece_complete(peer::PeerId self, sim::SimTime,
                         wire::PieceIndex) override {
    ++pieces[self];
  }
  void on_message_sent(peer::PeerId self, sim::SimTime, peer::PeerId,
                       const wire::Message&) override {
    ++messages[self];
  }
  std::map<peer::PeerId, int> starts, pieces, messages;
};

swarm::Swarm& make_seeded_swarm(sim::Simulation& sim,
                                const wire::ContentGeometry& geo,
                                std::unique_ptr<swarm::Swarm>& out) {
  out = std::make_unique<swarm::Swarm>(sim, geo);
  peer::PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.upload_capacity = 50e3;
  out->start_peer(out->add_peer(std::move(seed_cfg)));
  return *out;
}

TEST(ObserverHub, SingleObserverKeepsTheRawPointerFastPath) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(4 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  instrument::TraceWriter trace;
  peer::PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const peer::PeerId id = sw.add_peer(std::move(cfg), &trace);
  // One observer: the peer dispatches straight through the observer
  // pointer, no fan-out in between (the pre-hub local-peer wiring).
  EXPECT_EQ(sw.find_peer(id)->observer(), &trace);
  EXPECT_EQ(sw.observers().observers_on(id), 1u);
}

TEST(ObserverHub, AttachAndDetachOnALivePeer) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(4 * 256 * 1024);
  std::unique_ptr<swarm::Swarm> own;
  swarm::Swarm& sw = make_seeded_swarm(sim, geo, own);

  instrument::TraceWriter first, second;
  peer::PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const peer::PeerId l = sw.add_peer(std::move(cfg), &first);
  sw.start_peer(l);
  sim.run_until(200.0);
  const std::size_t at_attach = first.events().size();
  EXPECT_GT(at_attach, 0u);

  // A second observer mid-run promotes the hook to a fan-out; both see
  // the stream from here on.
  sw.observers().attach(l, &second);
  EXPECT_EQ(sw.observers().observers_on(l), 2u);
  sim.run_until(2000.0);
  EXPECT_TRUE(sw.find_peer(l)->is_seed());
  EXPECT_GT(first.events().size(), at_attach);
  EXPECT_GT(second.events().size(), 0u);

  // Detaching the original leaves the late subscriber running.
  EXPECT_TRUE(sw.observers().detach(l, &first));
  EXPECT_FALSE(sw.observers().detach(l, &first));
  EXPECT_EQ(sw.observers().observers_on(l), 1u);
}

TEST(ObserverHub, AttachAllCoversCurrentAndFuturePeers) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(4 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  CountingSwarmObserver counter;
  sw.observers().attach_all(&counter);

  peer::PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.upload_capacity = 50e3;
  const peer::PeerId s = sw.add_peer(std::move(seed_cfg));
  sw.start_peer(s);
  peer::PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const peer::PeerId l = sw.add_peer(std::move(cfg));  // after attach_all
  sw.start_peer(l);
  sim.run_until(2000.0);

  // Both peers (the one added after attach_all included) reported their
  // start and their traffic, each under its own id.
  EXPECT_EQ(counter.starts[s], 1);
  EXPECT_EQ(counter.starts[l], 1);
  EXPECT_EQ(counter.pieces[l], 4);
  EXPECT_GT(counter.messages[s], 0);
  EXPECT_GT(counter.messages[l], 0);

  EXPECT_TRUE(sw.observers().detach_all(&counter));
  EXPECT_FALSE(sw.observers().detach_all(&counter));
}

// --- the passivity requirement -------------------------------------------

swarm::ScaleLimits tiny_limits() {
  swarm::ScaleLimits limits;
  limits.max_peers = 30;
  limits.max_pieces = 24;
  limits.min_pieces = 12;
  limits.duration = 8000.0;
  return limits;
}

runner::RunResult run_observed(swarm::ObservationPlan::Scope scope) {
  runner::BatchJob job;
  job.id = 1;
  job.config = swarm::scenario_from_table1(3, tiny_limits());
  job.config.observation.scope = scope;
  job.name = job.config.name;
  job.seed = sim::fork_seed(20061025, 1);
  return runner::run_scenario_job(job, 200.0);
}

// An all-peers record-only observer (the runner's SwarmProbe) must not
// perturb the trajectory: every deterministic outcome — event counts,
// RNG-driven completion times, the preformatted text row — must be
// byte-identical to the unobserved run. Only `telemetry` (the
// observation product itself) may differ.
TEST(DigestUnderObservation, AllPeersProbeLeavesTrajectoryUntouched) {
  const runner::RunResult plain =
      run_observed(swarm::ObservationPlan::Scope::kLocal);
  const runner::RunResult observed =
      run_observed(swarm::ObservationPlan::Scope::kAll);

  EXPECT_EQ(plain.end_time, observed.end_time);
  EXPECT_EQ(plain.local_completion, observed.local_completion);
  EXPECT_EQ(plain.completed, observed.completed);
  EXPECT_EQ(plain.events_executed, observed.events_executed);
  EXPECT_EQ(plain.events_scheduled, observed.events_scheduled);
  EXPECT_EQ(plain.events_cancelled, observed.events_cancelled);
  EXPECT_EQ(plain.peak_pending, observed.peak_pending);
  EXPECT_EQ(plain.events_fastpath, observed.events_fastpath);
  EXPECT_EQ(plain.queue_compactions, observed.queue_compactions);
  EXPECT_EQ(plain.train_segments, observed.train_segments);
  EXPECT_EQ(plain.text, observed.text);

  // The observed run did produce a swarm-scope metrics snapshot.
  ASSERT_TRUE(observed.telemetry.is_object());
  EXPECT_EQ(observed.telemetry.find("scope")->as_string(), "all");
  ASSERT_NE(observed.telemetry.find("metrics"), nullptr);

  // Whole-report byte identity once the (legitimately different)
  // telemetry blocks are equalized: deterministic_view() of both runs
  // must serialize to the same bytes.
  runner::RunResult a = plain;
  runner::RunResult b = observed;
  a.telemetry = runner::json::Value();
  b.telemetry = runner::json::Value();
  runner::BatchOptions opts;
  opts.master_seed = 20061025;
  const auto report_a = runner::make_report("obs-test", opts, {a}, 0.0);
  const auto report_b = runner::make_report("obs-test", opts, {b}, 0.0);
  EXPECT_EQ(runner::json::dump(runner::deterministic_view(report_a)),
            runner::json::dump(runner::deterministic_view(report_b)));
}

// The sampled scope attaches to the local peer plus the first K spawned
// — equally passive, and the telemetry advertises the cap.
TEST(DigestUnderObservation, SampledScopeIsEquallyPassive) {
  const runner::RunResult plain =
      run_observed(swarm::ObservationPlan::Scope::kLocal);
  const runner::RunResult sampled =
      run_observed(swarm::ObservationPlan::Scope::kSampled);
  EXPECT_EQ(plain.events_executed, sampled.events_executed);
  EXPECT_EQ(plain.text, sampled.text);
  ASSERT_TRUE(sampled.telemetry.is_object());
  EXPECT_EQ(sampled.telemetry.find("scope")->as_string(), "sampled");
  ASSERT_NE(sampled.telemetry.find("sample_k"), nullptr);
}

}  // namespace
}  // namespace swarmlab
