// Peer protocol edge cases, driven by direct message injection on live
// connections.
#include <gtest/gtest.h>

#include "instrument/local_log.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;

struct Harness {
  explicit Harness(std::uint32_t pieces = 8, std::uint64_t seed = 1)
      : sim(seed),
        geo(std::uint64_t{pieces} * 256 * 1024, 256 * 1024, 16 * 1024),
        swarm(sim, geo) {}

  PeerId add(PeerConfig cfg, peer::PeerObserver* obs = nullptr) {
    const PeerId id = swarm.add_peer(std::move(cfg), obs);
    swarm.start_peer(id);
    return id;
  }

  /// Two connected peers: a seed (slow, so transfers straddle the test
  /// window) and an empty leecher.
  std::pair<PeerId, PeerId> seed_and_leecher(double seed_up = 5e3) {
    PeerConfig s;
    s.start_complete = true;
    s.upload_capacity = seed_up;
    const PeerId sid = add(std::move(s));
    PeerConfig l;
    l.upload_capacity = 50e3;
    const PeerId lid = add(std::move(l));
    sim.run_until(1.0);  // connect + bitfields, before any choke round
    return {sid, lid};
  }

  sim::Simulation sim;
  wire::ContentGeometry geo;
  swarm::Swarm swarm;
};

TEST(PeerEdge, MalformedRequestsAreIgnored) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  peer::Peer* seed = h.swarm.find_peer(sid);
  // Force-unchoke by injecting interest and waiting for a choke round.
  h.sim.run_until(30.0);
  const peer::Connection* conn = seed->connection(lid);
  ASSERT_NE(conn, nullptr);
  ASSERT_FALSE(conn->am_choking);
  const std::size_t q0 = conn->upload_queue.size();
  // Piece index out of range.
  seed->handle_message(lid, wire::RequestMsg{99, 0, 16384});
  // Misaligned offset.
  seed->handle_message(lid, wire::RequestMsg{0, 100, 16384});
  // Wrong length.
  seed->handle_message(lid, wire::RequestMsg{0, 0, 1});
  // Block index past the piece end.
  seed->handle_message(lid, wire::RequestMsg{0, 256 * 1024, 16384});
  EXPECT_EQ(conn->upload_queue.size(), q0);
}

TEST(PeerEdge, RequestWhileChokedIsIgnored) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  peer::Peer* seed = h.swarm.find_peer(sid);
  const peer::Connection* conn = seed->connection(lid);
  ASSERT_NE(conn, nullptr);
  ASSERT_TRUE(conn->am_choking);  // no choke round ran yet
  seed->handle_message(lid, wire::RequestMsg{0, 0, 16384});
  EXPECT_TRUE(conn->upload_queue.empty());
  EXPECT_EQ(conn->upload_flow, 0u);
}

TEST(PeerEdge, CancelRemovesQueuedRequest) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  peer::Peer* seed = h.swarm.find_peer(sid);
  h.sim.run_until(30.0);
  const peer::Connection* conn = seed->connection(lid);
  ASSERT_NE(conn, nullptr);
  ASSERT_FALSE(conn->am_choking);
  // Inject two extra requests beyond whatever is queued, then cancel one.
  seed->handle_message(lid, wire::RequestMsg{5, 0, 16384});
  seed->handle_message(lid, wire::RequestMsg{5, 16384, 16384});
  const std::size_t before = conn->upload_queue.size();
  ASSERT_GE(before, 1u);
  seed->handle_message(lid, wire::CancelMsg{5, 16384, 16384});
  EXPECT_EQ(conn->upload_queue.size(), before - 1);
}

TEST(PeerEdge, ChokeClearsUploadQueueButNotInFlight) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  peer::Peer* seed = h.swarm.find_peer(sid);
  h.sim.run_until(30.0);
  peer::Connection* conn =
      const_cast<peer::Connection*>(seed->connection(lid));
  ASSERT_NE(conn, nullptr);
  ASSERT_FALSE(conn->am_choking);
  // At 5 kB/s a 16 KiB block takes >3 s: something is in flight.
  EXPECT_NE(conn->upload_flow, 0u);
  seed->handle_message(lid, wire::RequestMsg{6, 0, 16384});
  ASSERT_FALSE(conn->upload_queue.empty());
  // A choke round that drops this peer clears the queue. Simulate the
  // transition directly through another 30 s in which the leecher (which
  // reciprocates nothing to a seed) cannot be... the seed keeps it
  // unchoked (rotation). Instead verify queue clearing on disconnect:
  const net::FlowId flow = conn->upload_flow;
  h.swarm.disconnect(sid, lid);
  EXPECT_EQ(seed->connection(lid), nullptr);
  // The flow was cancelled with the connection.
  EXPECT_EQ(h.swarm.network().flow_rate(flow), 0.0);
}

TEST(PeerEdge, KeepAliveAndStaleMessagesAreHarmless) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  peer::Peer* seed = h.swarm.find_peer(sid);
  seed->handle_message(lid, wire::KeepAliveMsg{});
  // Messages from a peer not in the peer set are dropped.
  seed->handle_message(4242, wire::InterestedMsg{});
  seed->handle_message(4242, wire::RequestMsg{0, 0, 16384});
  h.sim.run_until(100.0);
  EXPECT_TRUE(seed->active());
}

TEST(PeerEdge, MalformedBitfieldIgnored) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  peer::Peer* leecher = h.swarm.find_peer(lid);
  const peer::Connection* conn = leecher->connection(sid);
  ASSERT_NE(conn, nullptr);
  const std::uint32_t before = conn->remote_have.count();
  wire::BitfieldMsg bad;
  bad.bits.assign(3, true);  // wrong size
  leecher->handle_message(sid, wire::Message{bad});
  EXPECT_EQ(conn->remote_have.count(), before);
}

TEST(PeerEdge, DuplicateHaveDoesNotDoubleCount) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  peer::Peer* seed = h.swarm.find_peer(sid);
  seed->handle_message(lid, wire::HaveMsg{2});
  seed->handle_message(lid, wire::HaveMsg{2});
  EXPECT_EQ(seed->availability().copies(2), 1u);
}

TEST(PeerEdge, InterestFollowsRemoteHave) {
  Harness h;
  PeerConfig a_cfg;  // two empty leechers
  a_cfg.upload_capacity = 50e3;
  const PeerId a = h.add(std::move(a_cfg));
  PeerConfig b_cfg;
  b_cfg.upload_capacity = 50e3;
  const PeerId b = h.add(std::move(b_cfg));
  h.sim.run_until(1.0);
  peer::Peer* pa = h.swarm.find_peer(a);
  const peer::Connection* conn = pa->connection(b);
  ASSERT_NE(conn, nullptr);
  EXPECT_FALSE(conn->am_interested);  // b has nothing
  pa->handle_message(b, wire::HaveMsg{3});
  EXPECT_TRUE(conn->am_interested);
}

TEST(PeerEdge, UnchokeWithoutInterestSendsNoRequests) {
  Harness h;
  PeerConfig a_cfg;
  a_cfg.upload_capacity = 50e3;
  const PeerId a = h.add(std::move(a_cfg));
  PeerConfig b_cfg;
  b_cfg.upload_capacity = 50e3;
  const PeerId b = h.add(std::move(b_cfg));
  h.sim.run_until(1.0);
  peer::Peer* pa = h.swarm.find_peer(a);
  pa->handle_message(b, wire::UnchokeMsg{});
  const peer::Connection* conn = pa->connection(b);
  ASSERT_NE(conn, nullptr);
  EXPECT_FALSE(conn->peer_choking);
  EXPECT_TRUE(conn->outstanding.empty());  // nothing to want from b
}

TEST(PeerEdge, ChokeReleasesOutstandingForOtherPeers) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  h.sim.run_until(30.0);
  peer::Peer* leecher = h.swarm.find_peer(lid);
  const peer::Connection* conn = leecher->connection(sid);
  ASSERT_NE(conn, nullptr);
  ASSERT_FALSE(conn->outstanding.empty());
  leecher->handle_message(sid, wire::ChokeMsg{});
  EXPECT_TRUE(conn->outstanding.empty());
  // And an unchoke refills the pipeline.
  leecher->handle_message(sid, wire::UnchokeMsg{});
  EXPECT_FALSE(conn->outstanding.empty());
  EXPECT_LE(conn->outstanding.size(),
            leecher->config().params.pipeline_depth);
}

TEST(PeerEdge, PipelineDepthRespected) {
  Harness h;
  const auto [sid, lid] = h.seed_and_leecher();
  h.sim.run_until(60.0);
  const peer::Connection* conn = h.swarm.find_peer(lid)->connection(sid);
  ASSERT_NE(conn, nullptr);
  EXPECT_LE(conn->outstanding.size(),
            h.swarm.find_peer(lid)->config().params.pipeline_depth);
}

TEST(PeerEdge, StrictPriorityOffStillCompletes) {
  Harness h;
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 50e3;
  h.add(std::move(s));
  PeerConfig l;
  l.upload_capacity = 50e3;
  l.params.strict_priority = false;
  const PeerId lid = h.add(std::move(l));
  h.sim.run_until(3000.0);
  EXPECT_TRUE(h.swarm.find_peer(lid)->is_seed());
}

TEST(PeerEdge, EndGameOffStillCompletes) {
  Harness h;
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 50e3;
  h.add(std::move(s));
  PeerConfig l;
  l.upload_capacity = 50e3;
  l.params.end_game = false;
  const PeerId lid = h.add(std::move(l));
  instrument::LocalPeerLog log(8);
  h.sim.run_until(3000.0);
  EXPECT_TRUE(h.swarm.find_peer(lid)->is_seed());
  EXPECT_FALSE(h.swarm.find_peer(lid)->in_end_game());
}

TEST(PeerEdge, ZeroPieceLeechersBootstrapEachOther) {
  // Two empty leechers + one seed: both must finish, and they must
  // exchange data with each other (not only with the seed).
  Harness h(8, 5);
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 10e3;  // slow seed forces peer exchange
  h.add(std::move(s));
  PeerConfig l;
  l.upload_capacity = 50e3;
  const PeerId a = h.add(PeerConfig(l));
  const PeerId b = h.add(PeerConfig(l));
  h.sim.run_until(30000.0);
  EXPECT_TRUE(h.swarm.find_peer(a)->is_seed());
  EXPECT_TRUE(h.swarm.find_peer(b)->is_seed());
  EXPECT_GT(h.swarm.find_peer(a)->total_uploaded() +
                h.swarm.find_peer(b)->total_uploaded(),
            0u);
}

}  // namespace
}  // namespace swarmlab
