// Fast Extension (BEP 6) codec tests.
#include <gtest/gtest.h>

#include "wire/messages.h"

namespace swarmlab::wire {
namespace {

constexpr std::uint32_t kPieces = 20;

Message round_trip(const Message& msg) {
  const auto bytes = encode_message(msg, kPieces);
  std::size_t consumed = 0;
  const auto decoded = decode_message(bytes, kPieces, consumed);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, bytes.size());
  return *decoded;
}

TEST(FastExtension, SuggestPieceRoundTrip) {
  const auto m = std::get<SuggestPieceMsg>(round_trip(SuggestPieceMsg{7}));
  EXPECT_EQ(m.piece, 7u);
}

TEST(FastExtension, HaveAllHaveNoneRoundTrip) {
  EXPECT_TRUE(std::holds_alternative<HaveAllMsg>(round_trip(HaveAllMsg{})));
  EXPECT_TRUE(
      std::holds_alternative<HaveNoneMsg>(round_trip(HaveNoneMsg{})));
}

TEST(FastExtension, WireIdsMatchBep6) {
  EXPECT_EQ(encode_message(Message{HaveAllMsg{}})[4], 14);
  EXPECT_EQ(encode_message(Message{HaveNoneMsg{}})[4], 15);
  EXPECT_EQ(encode_message(Message{SuggestPieceMsg{0}})[4], 13);
  EXPECT_EQ(encode_message(Message{RejectRequestMsg{}})[4], 16);
  EXPECT_EQ(encode_message(Message{AllowedFastMsg{0}})[4], 17);
}

TEST(FastExtension, RejectRequestRoundTrip) {
  const auto m = std::get<RejectRequestMsg>(
      round_trip(RejectRequestMsg{3, 16384, 16384}));
  EXPECT_EQ(m.piece, 3u);
  EXPECT_EQ(m.begin, 16384u);
  EXPECT_EQ(m.length, 16384u);
}

TEST(FastExtension, AllowedFastRoundTrip) {
  const auto m = std::get<AllowedFastMsg>(round_trip(AllowedFastMsg{19}));
  EXPECT_EQ(m.piece, 19u);
}

TEST(FastExtension, OutOfRangeIndicesRejected) {
  std::size_t consumed = 0;
  EXPECT_THROW(decode_message(
                   encode_message(Message{SuggestPieceMsg{kPieces}}),
                   kPieces, consumed),
               WireError);
  EXPECT_THROW(decode_message(
                   encode_message(Message{AllowedFastMsg{kPieces}}),
                   kPieces, consumed),
               WireError);
}

TEST(FastExtension, BadPayloadLengthsRejected) {
  // have_all with payload.
  const std::vector<std::uint8_t> bad{0, 0, 0, 2, 14, 1};
  std::size_t consumed = 0;
  EXPECT_THROW(decode_message(bad, kPieces, consumed), WireError);
}

TEST(FastExtension, MessageNames) {
  EXPECT_STREQ(message_name(Message{HaveAllMsg{}}), "have_all");
  EXPECT_STREQ(message_name(Message{AllowedFastMsg{}}), "allowed_fast");
  EXPECT_STREQ(message_id_name(MessageId::kRejectRequest),
               "reject_request");
}

TEST(FastExtension, HandshakeBitNegotiation) {
  Handshake hs;
  EXPECT_FALSE(hs.supports_fast_extension());
  hs.set_fast_extension(true);
  EXPECT_TRUE(hs.supports_fast_extension());
  // The flag survives the wire.
  const Handshake decoded = decode_handshake(encode_handshake(hs));
  EXPECT_TRUE(decoded.supports_fast_extension());
  hs.set_fast_extension(false);
  EXPECT_FALSE(hs.supports_fast_extension());
  // Other reserved bits are untouched.
  hs.reserved[7] = 0xFF;
  hs.set_fast_extension(false);
  EXPECT_EQ(hs.reserved[7], 0xFB);
}

}  // namespace
}  // namespace swarmlab::wire
