// MetricsRegistry unit tests and a SwarmProbe smoke test on a live
// swarm (the probe's aggregates against ground truth).
#include <gtest/gtest.h>

#include <sstream>

#include "instrument/metrics.h"
#include "instrument/swarm_probe.h"
#include "peer/peer.h"
#include "sim/simulation.h"
#include "swarm/swarm.h"

namespace swarmlab::instrument {
namespace {

TEST(MetricsRegistry, CountersAndGauges) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("blocks");
  const MetricId g = reg.gauge("peers");
  reg.add(c);
  reg.add(c, 4.0);
  reg.set(g, 17.0);
  EXPECT_EQ(reg.value(c), 5.0);
  EXPECT_EQ(reg.value(g), 17.0);
  reg.set(g, 3.0);
  EXPECT_EQ(reg.value(g), 3.0);
}

TEST(MetricsRegistry, IdsAreStableAndInterned) {
  MetricsRegistry reg;
  const MetricId a = reg.counter("x");
  const MetricId b = reg.gauge("y");
  EXPECT_NE(a, b);
  // Re-registering the same (name, kind) returns the existing id.
  EXPECT_EQ(reg.counter("x"), a);
  EXPECT_EQ(reg.find("x"), a);
  EXPECT_EQ(reg.find("nope"), kNoMetric);
  // A kind collision is rejected, not silently rebound.
  EXPECT_EQ(reg.gauge("x"), kNoMetric);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, KindMismatchedRecordingIsIgnored) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("c");
  reg.set(c, 99.0);      // gauge op on a counter: no-op
  reg.observe(c, 1.0);   // histogram op on a counter: no-op
  reg.record(c, 0.0, 1.0);
  EXPECT_EQ(reg.value(c), 0.0);
  reg.add(kNoMetric);    // sentinel id: no-op, no crash
}

TEST(MetricsRegistry, HistogramBuckets) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("lat", {1.0, 4.0, 16.0});
  // Non-increasing bounds are rejected.
  EXPECT_EQ(reg.histogram("bad", {4.0, 4.0}), kNoMetric);
  reg.observe(h, 0.5);   // bucket 0 (<= 1)
  reg.observe(h, 1.0);   // bucket 0 (upper bounds are inclusive)
  reg.observe(h, 3.0);   // bucket 1
  reg.observe(h, 100.0); // +inf bucket
  const auto& counts = reg.counts(h);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(reg.value(h), 0.5 + 1.0 + 3.0 + 100.0);  // sum
}

TEST(MetricsRegistry, SeriesRingKeepsTheNewestSamples) {
  MetricsRegistry reg;
  const MetricId s = reg.series("ts", /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    reg.record(s, i * 10.0, static_cast<double>(i));
  }
  const auto samples = reg.samples(s);
  ASSERT_EQ(samples.size(), 3u);
  // Chronological order, oldest survivors first: samples 2, 3, 4.
  EXPECT_EQ(samples[0].time, 20.0);
  EXPECT_EQ(samples[1].time, 30.0);
  EXPECT_EQ(samples[2].time, 40.0);
  EXPECT_EQ(reg.dropped(s), 2u);
}

// The probe attached (via the hub) to every peer of a two-peer swarm:
// its counters must equal ground truth from the trajectory.
TEST(SwarmProbe, AggregatesMatchGroundTruth) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(4 * 256 * 1024);
  swarm::Swarm sw(sim, geo);

  MetricsRegistry reg;
  SwarmProbe::Options popts;
  popts.sampling_period = 100.0;
  SwarmProbe probe(reg, 4, popts);
  sw.observers().attach_all(&probe);
  probe.bind([&sw](peer::PeerId id) -> const peer::Peer* {
    return sw.find_peer(id);
  });

  peer::PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.upload_capacity = 50e3;
  sw.start_peer(sw.add_peer(std::move(seed_cfg)));
  peer::PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const peer::PeerId l = sw.add_peer(std::move(cfg));
  sw.start_peer(l);
  sim.run_until(2000.0);
  ASSERT_TRUE(sw.find_peer(l)->is_seed());
  probe.finalize(2000.0);

  EXPECT_EQ(probe.tracked_peers(), 2u);
  EXPECT_EQ(reg.value(reg.find("peers_started")), 2.0);
  // The leecher completed 4 pieces; nobody else completed any.
  EXPECT_EQ(reg.value(reg.find("pieces_completed")), 4.0);
  // Download ground truth: 4 pieces of 256 KiB in 16 KiB blocks.
  const double bytes = 4.0 * 256.0 * 1024.0;
  EXPECT_EQ(reg.value(reg.find("bytes_downloaded")), bytes);
  EXPECT_EQ(reg.value(reg.find("blocks_received")), 64.0);
  // The uploader's completion callback for the final block can be
  // clipped when the downloader finishes and tears the flow down, so
  // the upload side may trail by at most one block.
  EXPECT_GE(reg.value(reg.find("blocks_uploaded")), 63.0);
  EXPECT_LE(reg.value(reg.find("blocks_uploaded")),
            reg.value(reg.find("blocks_received")));
  EXPECT_GE(reg.value(reg.find("bytes_uploaded")), bytes - 16.0 * 1024.0);
  // Data-plane block deliveries are synthesized by the fabric (not sent
  // as wire messages), so swarm-wide received >= sent.
  EXPECT_GE(reg.value(reg.find("messages_received")),
            reg.value(reg.find("messages_sent")));
  EXPECT_GT(reg.value(reg.find("messages_sent")), 0.0);
  // Both the start-complete seed and the finished leecher report seed
  // state.
  EXPECT_EQ(reg.value(reg.find("became_seeds")), 2.0);

  // The periodic series sampled along the way.
  EXPECT_GE(reg.samples(reg.find("interested_occupancy")).size(), 2u);
  // Per-peer detail: the leecher's log saw all four completions.
  ASSERT_NE(probe.peer_log(l), nullptr);
  EXPECT_EQ(probe.peer_log(l)->piece_events().size(), 4u);
}

TEST(SwarmProbe, SamplingHonorsThePeriod) {
  MetricsRegistry reg;
  SwarmProbe::Options popts;
  popts.sampling_period = 10.0;
  SwarmProbe probe(reg, 8, popts);
  // Synthetic callbacks: samples land only when t crosses the grid.
  probe.on_start(1, 0.0);
  for (int i = 1; i <= 100; ++i) {
    probe.on_message_sent(1, i * 1.0, 2, wire::Message{wire::HaveMsg{0}});
  }
  const auto churn = reg.samples(reg.find("choke_churn"));
  // 0, 10, 20, ... 100 -> 11 samples.
  EXPECT_EQ(churn.size(), 11u);
}

}  // namespace
}  // namespace swarmlab::instrument
