// End-to-end smoke tests: small swarms must fully replicate the content.
#include <gtest/gtest.h>

#include "swarmlab/swarmlab.h"

namespace swarmlab {
namespace {

swarm::ScenarioConfig tiny_scenario() {
  swarm::ScenarioConfig cfg;
  cfg.name = "tiny";
  cfg.num_pieces = 16;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 4;
  cfg.leechers_warm = false;
  cfg.seed_linger_mean = 0.0;  // nobody departs
  cfg.duration = 30000.0;
  return cfg;
}

TEST(IntegrationSmoke, LocalPeerCompletesSmallSwarm) {
  instrument::LocalPeerLog log(16);
  swarm::ScenarioRunner runner(tiny_scenario(), /*seed=*/42, &log);
  runner.run_until_local_complete(/*extra=*/100.0);
  EXPECT_TRUE(runner.local_peer().is_seed());
  EXPECT_GT(runner.local_peer().completion_time(), 0.0);
  EXPECT_EQ(log.piece_events().size(), 16u);
  // End game mode may deliver a few duplicate blocks.
  EXPECT_GE(log.block_events().size(), 16u * 16u);
  EXPECT_LE(log.block_events().size(), 16u * 16u + 64u);
}

TEST(IntegrationSmoke, EveryLeecherCompletes) {
  auto cfg = tiny_scenario();
  cfg.duration = 60000.0;
  swarm::ScenarioRunner runner(cfg, /*seed=*/7);
  runner.simulation().run_until(cfg.duration);
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->is_seed()) << "peer " << id << " has "
                              << p->have().count() << "/16 pieces";
  }
}

TEST(IntegrationSmoke, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    instrument::LocalPeerLog log(16);
    swarm::ScenarioRunner runner(tiny_scenario(), seed, &log);
    runner.run_until_local_complete(50.0);
    return runner.local_peer().completion_time();
  };
  EXPECT_DOUBLE_EQ(run_once(123), run_once(123));
  // Different seeds should (generically) differ.
  EXPECT_NE(run_once(123), run_once(456));
}

}  // namespace
}  // namespace swarmlab
