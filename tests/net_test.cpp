// Fluid-network model tests: rates, sharing, caps, cancellation.
#include <gtest/gtest.h>

#include "net/fluid_network.h"
#include "sim/simulation.h"

namespace swarmlab::net {
namespace {

struct Harness {
  Harness() : sim(1), net(sim, /*control_latency=*/0.05) {}
  sim::Simulation sim;
  FluidNetwork net;
};

TEST(FluidNetwork, SingleFlowRunsAtBottleneck) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double completed_at = -1.0;
  h.net.start_flow(a, b, 1000, [&] { completed_at = h.sim.now(); });
  h.sim.run();
  EXPECT_NEAR(completed_at, 10.0, 0.01);  // 1000 B / 100 B/s
}

TEST(FluidNetwork, ReceiverCapBinds) {
  Harness h;
  const NodeId a = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, 50.0);
  double completed_at = -1.0;
  h.net.start_flow(a, b, 1000, [&] { completed_at = h.sim.now(); });
  h.sim.run();
  EXPECT_NEAR(completed_at, 20.0, 0.01);
}

TEST(FluidNetwork, UploadSplitsEquallyAcrossFlows) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId c = h.net.add_node(kUnlimited, kUnlimited);
  const FlowId f1 = h.net.start_flow(a, b, 1000, [] {});
  const FlowId f2 = h.net.start_flow(a, c, 1000, [] {});
  EXPECT_NEAR(h.net.flow_rate(f1), 50.0, 1e-9);
  EXPECT_NEAR(h.net.flow_rate(f2), 50.0, 1e-9);
}

TEST(FluidNetwork, RateRisesWhenCompetitorFinishes) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId c = h.net.add_node(kUnlimited, kUnlimited);
  double b_done = -1.0, c_done = -1.0;
  h.net.start_flow(a, b, 500, [&] { b_done = h.sim.now(); });
  h.net.start_flow(a, c, 1000, [&] { c_done = h.sim.now(); });
  h.sim.run();
  // Both run at 50 B/s until b finishes at t=10; then c gets 100 B/s for
  // its remaining 500 bytes: 10 + 5 = 15.
  EXPECT_NEAR(b_done, 10.0, 0.01);
  EXPECT_NEAR(c_done, 15.0, 0.01);
}

TEST(FluidNetwork, ReceiverSharesAcrossInbound) {
  Harness h;
  const NodeId a = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId r = h.net.add_node(kUnlimited, 100.0);
  const FlowId f1 = h.net.start_flow(a, r, 1000, [] {});
  const FlowId f2 = h.net.start_flow(b, r, 1000, [] {});
  EXPECT_NEAR(h.net.flow_rate(f1), 50.0, 1e-9);
  EXPECT_NEAR(h.net.flow_rate(f2), 50.0, 1e-9);
}

TEST(FluidNetwork, MinOfSenderShareAndReceiverShare) {
  Harness h;
  const NodeId a = h.net.add_node(80.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, 30.0);
  const NodeId c = h.net.add_node(kUnlimited, kUnlimited);
  const FlowId fab = h.net.start_flow(a, b, 1000, [] {});
  const FlowId fac = h.net.start_flow(a, c, 1000, [] {});
  // a's share per flow = 40; b's cap 30 binds for fab only.
  EXPECT_NEAR(h.net.flow_rate(fab), 30.0, 1e-9);
  EXPECT_NEAR(h.net.flow_rate(fac), 40.0, 1e-9);
}

TEST(FluidNetwork, CancelStopsCompletion) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  bool completed = false;
  const FlowId f = h.net.start_flow(a, b, 1000, [&] { completed = true; });
  h.sim.schedule_in(5.0, [&] { EXPECT_TRUE(h.net.cancel_flow(f)); });
  h.sim.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(h.net.active_flows(), 0u);
}

TEST(FluidNetwork, CancelUnknownFlowReturnsFalse) {
  Harness h;
  EXPECT_FALSE(h.net.cancel_flow(999));
}

TEST(FluidNetwork, CancelFreesCapacityForSiblings) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId c = h.net.add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  const FlowId f1 = h.net.start_flow(a, b, 10000, [] {});
  h.net.start_flow(a, c, 1000, [&] { done = h.sim.now(); });
  h.sim.schedule_in(10.0, [&] { h.net.cancel_flow(f1); });
  h.sim.run();
  // 10 s at 50 B/s (500 B), then 500 B at 100 B/s: t = 15.
  EXPECT_NEAR(done, 15.0, 0.01);
}

TEST(FluidNetwork, RemoveNodeAbortsItsFlowsSilently) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  bool fired = false;
  h.net.start_flow(a, b, 1000, [&] { fired = true; });
  h.net.start_flow(b, a, 1000, [&] { fired = true; });
  h.net.remove_node(a);
  h.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(h.net.active_flows(), 0u);
  EXPECT_FALSE(h.net.has_node(a));
  EXPECT_TRUE(h.net.has_node(b));
}

TEST(FluidNetwork, ControlMessagesArriveAfterLatency) {
  Harness h;
  double delivered_at = -1.0;
  h.net.send_control([&] { delivered_at = h.sim.now(); });
  h.sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.05);
}

TEST(FluidNetwork, CompletionCallbackCanStartNextFlow) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double second_done = -1.0;
  h.net.start_flow(a, b, 500, [&] {
    h.net.start_flow(a, b, 500, [&] { second_done = h.sim.now(); });
  });
  h.sim.run();
  EXPECT_NEAR(second_done, 10.0, 0.01);
}

TEST(FluidNetwork, ByteConservationUnderChurn) {
  // Many overlapping flows with adds/cancels: every completed flow's
  // bytes must equal its requested size (timing-wise: total completion
  // time >= bytes / capacity).
  Harness h;
  const NodeId src = h.net.add_node(1000.0, kUnlimited);
  std::vector<NodeId> sinks;
  for (int i = 0; i < 10; ++i) {
    sinks.push_back(h.net.add_node(kUnlimited, kUnlimited));
  }
  int completed = 0;
  constexpr int kFlows = 50;
  constexpr std::uint64_t kBytes = 2000;
  for (int i = 0; i < kFlows; ++i) {
    const double start = static_cast<double>(i) * 0.5;
    h.sim.schedule_at(start, [&, i] {
      h.net.start_flow(src, sinks[static_cast<std::size_t>(i) % 10], kBytes,
                       [&] { ++completed; });
    });
  }
  h.sim.run();
  EXPECT_EQ(completed, kFlows);
  // 100 kB total at 1000 B/s cannot finish before t=100.
  EXPECT_GE(h.sim.now(), 100.0 - 0.01);
}

TEST(FluidNetwork, ControlExtraDelayAddsToBaseLatency) {
  Harness h;  // base control latency 0.05
  double delivered_at = -1.0;
  h.net.send_control([&] { delivered_at = h.sim.now(); }, /*extra_delay=*/0.2);
  h.sim.run();
  EXPECT_NEAR(delivered_at, 0.25, 1e-9);
}

TEST(FluidNetwork, StalledFlowParksWhileCapacityIsZero) {
  // Dropping a sender's capacity to zero parks its flows (rate 0, no
  // completion event); the flow must still exist and make no progress.
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  bool done = false;
  const FlowId f = h.net.start_flow(a, b, 1000, [&] { done = true; });
  h.sim.schedule_at(2.0, [&] { h.net.set_node_capacity(a, 0.0, kUnlimited); });
  h.sim.run_until(500.0);
  EXPECT_FALSE(done);
  EXPECT_TRUE(h.net.has_flow(f));
  EXPECT_DOUBLE_EQ(h.net.flow_rate(f), 0.0);
}

TEST(FluidNetwork, StalledFlowResumesWhenCapacityReturns) {
  // The regression this guards: a parked flow (rate <= 0) must be
  // rescheduled by the capacity-change reallocation, not stay wedged.
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double completed_at = -1.0;
  h.net.start_flow(a, b, 1000, [&] { completed_at = h.sim.now(); });
  // 200 bytes transferred by t=2; parked until t=50; remaining 800 bytes
  // at the restored 100 B/s finish at t=58.
  h.sim.schedule_at(2.0, [&] { h.net.set_node_capacity(a, 0.0, kUnlimited); });
  h.sim.schedule_at(50.0,
                    [&] { h.net.set_node_capacity(a, 100.0, kUnlimited); });
  h.sim.run();
  EXPECT_NEAR(completed_at, 58.0, 0.01);
}

TEST(FluidNetwork, StalledReceiverResumesToo) {
  Harness h;
  const NodeId a = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, 100.0);
  double completed_at = -1.0;
  h.net.start_flow(a, b, 1000, [&] { completed_at = h.sim.now(); });
  h.sim.schedule_at(5.0, [&] { h.net.set_node_capacity(b, kUnlimited, 0.0); });
  h.sim.schedule_at(20.0,
                    [&] { h.net.set_node_capacity(b, kUnlimited, 100.0); });
  h.sim.run();
  // 500 bytes by t=5, parked 15 s, remaining 500 bytes done at t=25.
  EXPECT_NEAR(completed_at, 25.0, 0.01);
}

TEST(FluidNetwork, ActiveFlowIdsAreSortedAndCancelable) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const FlowId f1 = h.net.start_flow(a, b, 10000, [] {});
  const FlowId f2 = h.net.start_flow(a, b, 10000, [] {});
  const auto ids = h.net.active_flow_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_TRUE(h.net.cancel_flow(f1));
  EXPECT_FALSE(h.net.has_flow(f1));
  EXPECT_TRUE(h.net.has_flow(f2));
  EXPECT_EQ(h.net.active_flow_ids().size(), 1u);
}

// Generation-check regression: FlowIds are slab handles and cancelled or
// completed flows free their slot for reuse. A stale id held across the
// reuse (e.g. a Connection's upload_flow surviving a remote crash) must
// not cancel, rate-query, or liveness-probe the slot's next tenant.
TEST(FluidNetwork, StaleFlowIdCannotTouchSlotsNextTenant) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const FlowId first = h.net.start_flow(a, b, 10000, [] {});
  ASSERT_TRUE(h.net.cancel_flow(first));
  bool completed = false;
  const FlowId second =
      h.net.start_flow(a, b, 1000, [&] { completed = true; });
  EXPECT_EQ(second & 0xffffffffu, first & 0xffffffffu);  // same slot...
  EXPECT_NE(second, first);                              // ...new generation
  EXPECT_FALSE(h.net.has_flow(first));
  EXPECT_FALSE(h.net.cancel_flow(first));
  EXPECT_TRUE(h.net.has_flow(second));
  EXPECT_DOUBLE_EQ(h.net.flow_rate(first), 0.0);
  h.sim.run();
  EXPECT_TRUE(completed);  // the tenant was never disturbed
}

TEST(FluidNetwork, StaleFlowIdSurvivesCompletionReuse) {
  Harness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const FlowId first = h.net.start_flow(a, b, 100, [] {});
  h.sim.run();  // completes; slot retires
  EXPECT_FALSE(h.net.has_flow(first));
  for (int round = 0; round < 50; ++round) {
    const FlowId tenant = h.net.start_flow(a, b, 100, [] {});
    EXPECT_FALSE(h.net.cancel_flow(first)) << "round " << round;
    ASSERT_TRUE(h.net.cancel_flow(tenant));
  }
  EXPECT_EQ(h.net.active_flows(), 0u);
}

TEST(FluidNetwork, ZeroLatencyDeliversImmediatelyNextEvent) {
  sim::Simulation sim(1);
  FluidNetwork net(sim, 0.0);
  bool delivered = false;
  net.send_control([&] { delivered = true; });
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

}  // namespace
}  // namespace swarmlab::net
