// Cross-backend conformance: the same scenarios run on "fluid" and
// "packet" and must agree on every structural invariant — all leechers
// finish, rarest-first ordering is preserved, fault-injected churn never
// resurrects a stale FlowId — even though the two models produce
// different timings. Tolerance-band *metric* comparison (completion-time
// ratios, fairness deltas) lives in bench/bench_ext_backend_compare.cpp;
// this file holds the exact, always-on checks.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "instrument/local_log.h"
#include "net/backend.h"
#include "runner/batch_runner.h"
#include "runner/json.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "swarm/scenario.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using runner::BatchJob;
using runner::BatchOptions;
using runner::BatchRunner;
using runner::RunResult;

class BackendConformance : public ::testing::TestWithParam<const char*> {};

/// A small cold flash crowd: one seed, uniform leechers, 1 MiB content.
/// Small enough that the packet backend's per-segment events stay cheap.
swarm::ScenarioConfig flash_crowd_cfg(const std::string& backend) {
  swarm::ScenarioConfig cfg;
  cfg.name = "conformance-flash-crowd";
  cfg.num_pieces = 16;
  cfg.piece_size = 64 * 1024;
  cfg.block_size = 16 * 1024;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 8;
  cfg.leechers_warm = false;
  cfg.arrival_rate = 0.0;
  cfg.seed_linger_mean = 0.0;  // finished peers stay: everyone must finish
  cfg.initial_seed_upload = 64.0 * 1024;
  cfg.leecher_classes = {{1.0, 32.0 * 1024, 256.0 * 1024}};
  cfg.local_upload = 32.0 * 1024;
  cfg.duration = 6000.0;
  cfg.network_backend = backend;
  return cfg;
}

TEST_P(BackendConformance, FlashCrowdEveryLeecherCompletes) {
  instrument::LocalPeerLog log(16);
  swarm::ScenarioRunner runner(flash_crowd_cfg(GetParam()), /*seed=*/42,
                               &log);
  runner.run();
  log.finalize(runner.simulation().now());

  // The local peer finished and saw each piece complete exactly once, in
  // nondecreasing time.
  EXPECT_TRUE(log.local_is_seed());
  ASSERT_EQ(log.piece_events().size(), 16u);
  std::set<wire::PieceIndex> seen;
  double last = 0.0;
  for (const auto& ev : log.piece_events()) {
    EXPECT_TRUE(seen.insert(ev.piece).second)
        << "piece " << ev.piece << " completed twice";
    EXPECT_GE(ev.time, last);
    last = ev.time;
  }

  // Every peer in the swarm — seed, remote leechers, local — ended as a
  // seed well before the duration cap.
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->is_seed()) << "peer " << id << " never completed on "
                              << GetParam();
  }
}

TEST_P(BackendConformance, RarestPieceIsFetchedFirst) {
  // One seed holds everything; three free riders hold pieces 0..6 but
  // never upload. Piece 7 therefore has one copy, pieces 0..6 have four —
  // and the seed is the only source of anything. A pure rarest-first
  // local peer (random-first disabled) must complete piece 7 first, on
  // any backend.
  sim::Simulation sim(7);
  const wire::ContentGeometry geo(8 * 64 * 1024, 64 * 1024, 16 * 1024);
  swarm::Swarm swarm(sim, geo, 0.05,
                     net::make_network(GetParam(), sim, 0.05));

  peer::PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.upload_capacity = 64.0 * 1024;
  const peer::PeerId seed = swarm.add_peer(seed_cfg);

  for (int i = 0; i < 3; ++i) {
    peer::PeerConfig rc;
    rc.free_rider = true;
    rc.initial_pieces.assign(8, true);
    rc.initial_pieces[7] = false;
    swarm.add_peer(rc);
  }

  peer::PeerConfig lc;
  lc.params.random_first_threshold = 0;  // rarest-first from block one
  lc.upload_capacity = 32.0 * 1024;
  instrument::LocalPeerLog log(8);
  const peer::PeerId local = swarm.add_peer(lc, &log);

  for (const peer::PeerId id : swarm.peer_ids()) swarm.start_peer(id);
  sim.run_until(4000.0);
  log.finalize(sim.now());

  ASSERT_TRUE(swarm.find_peer(local)->is_seed())
      << "local never completed on " << GetParam();
  ASSERT_FALSE(log.piece_events().empty());
  EXPECT_EQ(log.piece_events().front().piece, 7u)
      << "rarest piece not fetched first on " << GetParam();
  EXPECT_TRUE(swarm.find_peer(seed)->is_seed());
}

TEST_P(BackendConformance, FaultedChurnNeverTripsStaleFlowIds) {
  // Flow kills + crashes + message loss keep the fault injector holding
  // and cancelling FlowIds across node churn. The run completing (or
  // stalling) without assertion/sanitizer failures is the invariant; the
  // stats prove the paths were actually taken.
  swarm::ScenarioConfig cfg = flash_crowd_cfg(GetParam());
  cfg.faults.flow_kill_rate = 1.0 / 50.0;
  cfg.faults.peer_crash_rate = 1.0 / 500.0;
  cfg.faults.message_loss_rate = 0.02;

  BatchJob job;
  job.id = 1;
  job.name = cfg.name;
  job.config = cfg;
  job.seed = 1234;
  const RunResult res = runner::run_scenario_job(job, 200.0);

  EXPECT_TRUE(res.error.empty()) << res.error;
  EXPECT_GT(res.end_time, 0.0);
  const runner::json::Value* faults = res.metrics.find("faults");
  ASSERT_NE(faults, nullptr);
  const runner::json::Value* killed = faults->find("flows_killed");
  ASSERT_NE(killed, nullptr);
  EXPECT_GT(killed->as_uint64(), 0u)
      << "fault plan never exercised cancel_flow on " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values("fluid", "packet"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// --- packet-backend batch determinism ----------------------------------------

struct SweepOutput {
  std::string text;
  std::string report_core;
};

SweepOutput run_packet_sweep(int workers) {
  swarm::ScaleLimits limits;
  limits.max_peers = 24;
  limits.max_pieces = 16;
  limits.min_pieces = 16;
  limits.duration = 6000.0;

  BatchOptions opts;
  opts.jobs = workers;
  opts.master_seed = 20061025;
  std::vector<BatchJob> jobs = runner::table1_jobs(opts.master_seed, limits);
  jobs.resize(8);  // a cross-section; CI smokes the full 26 via bench_table1
  for (auto& job : jobs) job.config.network_backend = "packet";

  BatchRunner batch(opts);
  SweepOutput out;
  const auto results = batch.run(
      jobs,
      [](const BatchJob& job) {
        return runner::run_scenario_job(
            job, 200.0,
            [&job](const swarm::ScenarioRunner&,
                   const instrument::LocalPeerLog& log, RunResult& res) {
              char row[96];
              std::snprintf(row, sizeof row, "%d done=%.2f peers=%zu\n",
                            job.id, res.local_completion,
                            log.records().size());
              res.text = row;
            });
      },
      [&](const RunResult& r) { out.text += r.text; });
  const auto report = runner::make_report("backend_conformance_test", opts,
                                          results, batch.wall_seconds());
  out.report_core = dump(runner::deterministic_view(report), 2);
  return out;
}

// The packet backend honors the same replay-identity contract as fluid:
// a sweep is byte-identical for any worker count, and the report records
// which backend produced it.
TEST(PacketBatchDeterminism, SweepIsIdenticalAcrossWorkerCounts) {
  const SweepOutput serial = run_packet_sweep(1);
  const SweepOutput parallel = run_packet_sweep(8);
  EXPECT_EQ(serial.text, parallel.text);
  EXPECT_EQ(serial.report_core, parallel.report_core);
  EXPECT_NE(serial.text.find("1 done="), std::string::npos);
  EXPECT_NE(serial.report_core.find("\"backend\": \"packet\""),
            std::string::npos);
}

}  // namespace
}  // namespace swarmlab
