// Data-plane tests: real content bytes over the swarm, end-to-end SHA-1
// verification, and real (bit-flip) corruption detection.
#include <gtest/gtest.h>

#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;

struct Harness {
  explicit Harness(std::uint32_t pieces = 4, std::uint64_t seed = 1)
      : sim(seed),
        meta(wire::make_synthetic_metainfo("http://t/a", "dp-test",
                                           std::uint64_t{pieces} * 256 *
                                               1024)),
        swarm(sim, meta) {}

  PeerId add(PeerConfig cfg) {
    const PeerId id = swarm.add_peer(std::move(cfg));
    swarm.start_peer(id);
    return id;
  }

  PeerId add_seed(bool corrupt = false, double up = 50e3) {
    PeerConfig cfg;
    cfg.start_complete = true;
    cfg.upload_capacity = up;
    cfg.sends_corrupt_data = corrupt;
    return add(std::move(cfg));
  }

  sim::Simulation sim;
  wire::Metainfo meta;
  swarm::Swarm swarm;
};

TEST(DataPlane, TransferredContentVerifiesAgainstMetainfo) {
  Harness h;
  h.add_seed();
  PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const PeerId l = h.add(std::move(cfg));
  h.sim.run_until(2000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  ASSERT_TRUE(p->is_seed());
  const peer::ContentStore* store = p->content_store();
  ASSERT_NE(store, nullptr);
  for (wire::PieceIndex piece = 0; piece < 4; ++piece) {
    EXPECT_TRUE(store->verify_piece(piece)) << "piece " << piece;
  }
  EXPECT_EQ(store->stored_bytes(), h.meta.length);
}

TEST(DataPlane, DownloadedBytesMatchSyntheticContent) {
  Harness h;
  h.add_seed();
  PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const PeerId l = h.add(std::move(cfg));
  h.sim.run_until(2000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  ASSERT_TRUE(p->is_seed());
  // Byte-exact equality with the canonical content, block by block.
  const auto geo = h.meta.geometry();
  for (wire::PieceIndex piece = 0; piece < geo.num_pieces(); ++piece) {
    const auto expect = wire::synthetic_piece_bytes(h.meta, piece);
    for (wire::BlockIndex b = 0; b < geo.blocks_in_piece(piece); ++b) {
      const auto got = p->read_block({piece, b});
      const std::size_t off = geo.block_offset({piece, b});
      ASSERT_TRUE(std::equal(got.begin(), got.end(), expect.begin() + off))
          << "piece " << piece << " block " << b;
    }
  }
}

TEST(DataPlane, BitFlipCorruptionDetectedBySha1) {
  Harness h;
  h.add_seed(/*corrupt=*/true);  // flips one bit per block
  PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const PeerId l = h.add(std::move(cfg));
  h.sim.run_until(1000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  EXPECT_EQ(p->have().count(), 0u);       // nothing passes verification
  EXPECT_GT(p->corrupted_pieces(), 0u);   // failures were detected
}

TEST(DataPlane, HonestSeedWinsDespitePolluter) {
  Harness h(4, 7);
  h.add_seed(/*corrupt=*/false);
  h.add_seed(/*corrupt=*/true);
  PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const PeerId l = h.add(std::move(cfg));
  h.sim.run_until(10000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  ASSERT_TRUE(p->is_seed());
  for (wire::PieceIndex piece = 0; piece < 4; ++piece) {
    EXPECT_TRUE(p->content_store()->verify_piece(piece));
  }
}

TEST(DataPlane, WarmStartBytesAreValid) {
  Harness h;
  h.add_seed();
  PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  cfg.initial_pieces = {true, false, true, false};
  const PeerId l = h.add(std::move(cfg));
  const peer::Peer* p = h.swarm.find_peer(l);
  EXPECT_TRUE(p->content_store()->verify_piece(0));
  EXPECT_TRUE(p->content_store()->verify_piece(2));
  EXPECT_FALSE(p->content_store()->has_piece_bytes(1));
  h.sim.run_until(2000.0);
  EXPECT_TRUE(p->is_seed());
  EXPECT_TRUE(p->content_store()->verify_piece(1));
}

TEST(DataPlane, MultiHopPropagationStaysValid) {
  // Seed -> A -> B: B receives pieces relayed through A; every hop
  // re-serves only verified bytes.
  Harness h(4, 11);
  h.add_seed(false, 20e3);
  PeerConfig a_cfg;
  a_cfg.upload_capacity = 100e3;
  h.add(std::move(a_cfg));
  PeerConfig b_cfg;
  b_cfg.upload_capacity = 100e3;
  const PeerId b = h.add(std::move(b_cfg));
  h.sim.run_until(10000.0);
  const peer::Peer* pb = h.swarm.find_peer(b);
  ASSERT_TRUE(pb->is_seed());
  for (wire::PieceIndex piece = 0; piece < 4; ++piece) {
    EXPECT_TRUE(pb->content_store()->verify_piece(piece));
  }
}

TEST(ContentStoreUnit, PutReadRoundTrip) {
  const auto meta =
      wire::make_synthetic_metainfo("t", "unit", 300 * 1024, 256 * 1024);
  peer::ContentStore store(meta);
  const auto geo = meta.geometry();
  // Assemble piece 1 (the short piece: 44 KiB) from blocks.
  const auto canonical = wire::synthetic_piece_bytes(meta, 1);
  for (wire::BlockIndex b = 0; b < geo.blocks_in_piece(1); ++b) {
    const std::size_t off = geo.block_offset({1, b});
    store.put_block({1, b},
                    std::span<const std::uint8_t>(
                        canonical.data() + off, geo.block_bytes({1, b})));
  }
  EXPECT_TRUE(store.verify_piece(1));
  EXPECT_EQ(store.read_block({1, 0}).size(), 16u * 1024);
  store.drop_piece(1);
  EXPECT_FALSE(store.has_piece_bytes(1));
  EXPECT_FALSE(store.verify_piece(1));
}

TEST(ContentStoreUnit, CorruptedByteFailsVerification) {
  const auto meta =
      wire::make_synthetic_metainfo("t", "unit2", 256 * 1024);
  peer::ContentStore store(meta);
  auto bytes = wire::synthetic_piece_bytes(meta, 0);
  bytes[12345] ^= 0x01;
  store.put_piece(0, std::move(bytes));
  EXPECT_FALSE(store.verify_piece(0));
}

}  // namespace
}  // namespace swarmlab
