// Failure-injection tests: data corruption (polluters), snubbing, and
// churn under adversity.
#include <gtest/gtest.h>

#include "core/choker.h"
#include "instrument/local_log.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;

struct Harness {
  explicit Harness(std::uint32_t pieces = 8, std::uint64_t seed = 1)
      : sim(seed),
        geo(std::uint64_t{pieces} * 256 * 1024, 256 * 1024, 16 * 1024),
        swarm(sim, geo) {}

  PeerId add(PeerConfig cfg, peer::PeerObserver* obs = nullptr) {
    const PeerId id = swarm.add_peer(std::move(cfg), obs);
    swarm.start_peer(id);
    return id;
  }

  PeerId add_seed(double up = 50e3, bool corrupt = false) {
    PeerConfig cfg;
    cfg.start_complete = true;
    cfg.upload_capacity = up;
    cfg.sends_corrupt_data = corrupt;
    return add(std::move(cfg));
  }

  PeerId add_leecher(double up = 50e3, peer::PeerObserver* obs = nullptr) {
    PeerConfig cfg;
    cfg.upload_capacity = up;
    return add(std::move(cfg), obs);
  }

  sim::Simulation sim;
  wire::ContentGeometry geo;
  swarm::Swarm swarm;
};

/// Observer that counts verification failures.
struct FailureCounter : peer::PeerObserver {
  int failures = 0;
  void on_piece_failed(sim::SimTime, wire::PieceIndex) override {
    ++failures;
  }
};

TEST(Resilience, PureCorruptSourceNeverYieldsAPiece) {
  Harness h;
  h.add_seed(50e3, /*corrupt=*/true);  // the only source is a polluter
  FailureCounter counter;
  const PeerId l = h.add_leecher(50e3, &counter);
  h.sim.run_until(2000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  EXPECT_EQ(p->have().count(), 0u);
  EXPECT_GT(p->corrupted_pieces(), 0u);
  EXPECT_GT(counter.failures, 0);
}

TEST(Resilience, HonestSeedBeatsPolluter) {
  Harness h;
  h.add_seed(50e3, /*corrupt=*/false);
  h.add_seed(50e3, /*corrupt=*/true);
  const PeerId l = h.add_leecher();
  h.sim.run_until(8000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  // Banning the polluter after the first bad piece lets the download
  // finish from the honest seed.
  EXPECT_TRUE(p->is_seed()) << p->have().count() << " pieces, "
                            << p->corrupted_pieces() << " corrupted";
}

TEST(Resilience, BanDisconnectsContributors) {
  Harness h;
  const PeerId polluter = h.add_seed(200e3, /*corrupt=*/true);
  const PeerId l = h.add_leecher();
  h.sim.run_until(600.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  ASSERT_GT(p->corrupted_pieces(), 0u);
  // After a failure the polluter (the only contributor) must be gone.
  EXPECT_EQ(p->connection(polluter), nullptr);
}

TEST(Resilience, VerificationOffAcceptsCorruptPieces) {
  Harness h;
  PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.sends_corrupt_data = true;
  seed_cfg.upload_capacity = 50e3;
  h.add(std::move(seed_cfg));
  PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  cfg.params.verify_pieces = false;  // a naive client
  const PeerId l = h.add(std::move(cfg));
  h.sim.run_until(3000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  EXPECT_TRUE(p->is_seed());  // "completes" with garbage
  EXPECT_EQ(p->corrupted_pieces(), 0u);
}

TEST(Resilience, NoBanRetriesFromSameSource) {
  // With banning off and only a polluter available, the peer keeps
  // re-downloading and failing — and never falsely completes.
  Harness h;
  PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.sends_corrupt_data = true;
  seed_cfg.upload_capacity = 100e3;
  h.add(std::move(seed_cfg));
  PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  cfg.params.ban_corrupt_sources = false;
  const PeerId l = h.add(std::move(cfg));
  h.sim.run_until(3000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  EXPECT_FALSE(p->is_seed());
  EXPECT_GT(p->corrupted_pieces(), 2u);
}

TEST(Resilience, SwarmSurvivesMinorityOfPolluters) {
  Harness h(8, 3);
  h.add_seed(40e3);
  for (int i = 0; i < 3; ++i) h.add_seed(40e3, /*corrupt=*/true);
  std::vector<PeerId> leechers;
  for (int i = 0; i < 6; ++i) leechers.push_back(h.add_leecher(20e3));
  h.sim.run_until(20000.0);
  int completed = 0;
  for (const PeerId id : leechers) {
    if (h.swarm.find_peer(id)->is_seed()) ++completed;
  }
  EXPECT_EQ(completed, 6);
}

// --- snubbing ---------------------------------------------------------------

TEST(Snubbing, StalledUploaderLosesRegularUnchoke) {
  // Build the candidate directly: snubbed flag gates RU selection.
  core::ProtocolParams params;
  core::LeecherChoker choker(params);
  sim::Rng rng(1);
  std::vector<core::ChokeCandidate> cs;
  core::ChokeCandidate fast_but_snubbed;
  fast_but_snubbed.key = 1;
  fast_but_snubbed.interested = true;
  fast_but_snubbed.download_rate = 1e6;
  fast_but_snubbed.snubbed = true;
  cs.push_back(fast_but_snubbed);
  for (core::PeerKey k = 2; k <= 5; ++k) {
    core::ChokeCandidate c;
    c.key = k;
    c.interested = true;
    c.download_rate = 10.0;
    cs.push_back(c);
  }
  // Run several rounds: peer 1 may win the optimistic slot sometimes but
  // must never hold a regular slot, so peers 2..4 (the next-fastest
  // non-snubbed) must always be unchoked.
  for (std::uint64_t round = 0; round < 9; ++round) {
    const auto sel = choker.select(cs, round, rng);
    int regular_non_snubbed = 0;
    for (const core::PeerKey k : sel) {
      if (k != 1) ++regular_non_snubbed;
    }
    EXPECT_GE(regular_non_snubbed, 3);
  }
}

TEST(Snubbing, DisabledByParams) {
  Harness h;
  PeerConfig cfg;
  cfg.params.anti_snubbing = false;
  cfg.upload_capacity = 50e3;
  const PeerId l = h.add(std::move(cfg));
  h.add_seed();
  h.sim.run_until(2000.0);
  EXPECT_TRUE(h.swarm.find_peer(l)->is_seed());
}

}  // namespace
}  // namespace swarmlab
