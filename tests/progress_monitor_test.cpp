// Unit tests for the ProgressMonitor liveness guard: livelock, stall,
// wall/event budgets, external cancellation, stickiness, and the
// no-trip observational guarantee on healthy runs.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "sim/progress_monitor.h"
#include "sim/simulation.h"

namespace swarmlab::sim {
namespace {

/// Copyable self-rescheduling event (a lambda capturing itself cannot
/// be): step == 0 freezes sim time, > 0 crawls it forward.
struct Reschedule {
  Simulation* sim;
  double step;
  void operator()() const { sim->schedule_in(step, *this); }
};

TEST(ProgressMonitor, HealthyRunNeverTrips) {
  Simulation sim(1);
  MonitorConfig cfg;
  cfg.check_interval = 1;  // exercise the slow path on every event
  ProgressMonitor monitor(cfg);
  sim.attach_monitor(&monitor);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(static_cast<double>(i), [&] { ++fired; });
  }
  sim.run_until(2000.0);
  EXPECT_EQ(fired, 1000);
  EXPECT_FALSE(monitor.tripped());
  EXPECT_EQ(monitor.trip(), MonitorTrip::kNone);
  EXPECT_TRUE(monitor.diagnostic().empty());
  EXPECT_EQ(monitor.events_observed(), 1000u);
  EXPECT_FALSE(sim.halted());
  EXPECT_EQ(sim.now(), 2000.0);
}

TEST(ProgressMonitor, AttachedMonitorDoesNotPerturbTrajectory) {
  // The digest of what executed must be identical with and without a
  // (never-tripping) monitor attached — the observational guarantee the
  // golden-digest tests rely on.
  const auto run = [](bool monitored) {
    Simulation sim(1);
    MonitorConfig cfg;
    cfg.check_interval = 3;
    ProgressMonitor monitor(cfg);
    if (monitored) sim.attach_monitor(&monitor);
    std::uint64_t digest = 1469598103934665603ull;
    for (int i = 0; i < 500; ++i) {
      sim.schedule_at(static_cast<double>(i % 37), [&digest, i] {
        digest = (digest ^ static_cast<std::uint64_t>(i)) *
                 1099511628211ull;
      });
    }
    sim.run_until(100.0);
    return digest ^ sim.events_executed();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ProgressMonitor, LivelockTripsAtDeterministicEventCount) {
  Simulation sim(1);
  MonitorConfig cfg;
  cfg.livelock_events = 1000;
  ProgressMonitor monitor(cfg);
  sim.attach_monitor(&monitor);
  sim.schedule_at(5.0, Reschedule{&sim, 0.0});  // freeze sim time at 5.0
  const double stopped_at = sim.run_until(50.0);
  EXPECT_TRUE(monitor.tripped());
  EXPECT_EQ(monitor.trip(), MonitorTrip::kLivelock);
  EXPECT_EQ(stopped_at, 5.0);
  EXPECT_TRUE(sim.halted());
  EXPECT_NE(monitor.diagnostic().find("livelock"), std::string::npos)
      << monitor.diagnostic();
  // Deterministic: the frozen-run counter reaches the threshold at an
  // exact event count, independent of wall clock.
  EXPECT_EQ(monitor.events_observed(), 1000u);
}

TEST(ProgressMonitor, EventBudgetTrips) {
  Simulation sim(1);
  MonitorConfig cfg;
  cfg.event_budget = 200;
  ProgressMonitor monitor(cfg);
  sim.attach_monitor(&monitor);
  sim.schedule_at(0.0, Reschedule{&sim, 0.5});  // healthy but unbounded
  sim.run_until(1e9);
  EXPECT_EQ(monitor.trip(), MonitorTrip::kEventBudget);
  EXPECT_EQ(monitor.events_observed(), 200u);
  EXPECT_NE(monitor.diagnostic().find("event budget"), std::string::npos);
}

TEST(ProgressMonitor, WallBudgetTripsOnSpinningRun) {
  Simulation sim(1);
  MonitorConfig cfg;
  cfg.wall_budget = 0.05;  // 50 ms
  cfg.check_interval = 64;
  ProgressMonitor monitor(cfg);
  sim.attach_monitor(&monitor);
  // Sim time advances (no livelock), but the run never ends on its own
  // and each event burns a little wall clock.
  struct SleepyLoop {
    Simulation* s;
    void operator()() const {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      s->schedule_in(1e-7, *this);
    }
  };
  sim.schedule_at(0.0, SleepyLoop{&sim});
  sim.run_until(1e9);
  EXPECT_EQ(monitor.trip(), MonitorTrip::kWallBudget);
  EXPECT_NE(monitor.diagnostic().find("wall-clock budget"),
            std::string::npos);
}

TEST(ProgressMonitor, StallDetectorTripsWhenSimTimeFreezesInWallClock) {
  Simulation sim(1);
  MonitorConfig cfg;
  cfg.livelock_events = 0;        // disable the event-count detector
  cfg.stall_wall_seconds = 0.05;  // 50 ms of frozen sim time
  cfg.check_interval = 16;
  ProgressMonitor monitor(cfg);
  sim.attach_monitor(&monitor);
  struct SleepyFreeze {
    Simulation* s;
    void operator()() const {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      s->schedule_in(0.0, *this);  // sim time pinned
    }
  };
  sim.schedule_at(2.0, SleepyFreeze{&sim});
  sim.run_until(10.0);
  EXPECT_EQ(monitor.trip(), MonitorTrip::kStalled);
  EXPECT_NE(monitor.diagnostic().find("stalled"), std::string::npos);
}

TEST(ProgressMonitor, RequestStopTripsAsCancelled) {
  Simulation sim(1);
  MonitorConfig cfg;
  cfg.check_interval = 8;
  ProgressMonitor monitor(cfg);
  sim.attach_monitor(&monitor);
  sim.schedule_at(0.0, Reschedule{&sim, 0.25});
  sim.schedule_at(10.0, [&monitor] { monitor.request_stop(); });
  sim.run_until(1e9);
  EXPECT_EQ(monitor.trip(), MonitorTrip::kCancelled);
  EXPECT_NE(monitor.diagnostic().find("cancelled"), std::string::npos);
}

TEST(ProgressMonitor, TripIsStickyAcrossRunUntilCalls) {
  Simulation sim(1);
  MonitorConfig cfg;
  cfg.event_budget = 50;
  ProgressMonitor monitor(cfg);
  sim.attach_monitor(&monitor);
  sim.schedule_at(1.0, Reschedule{&sim, 1.0});
  const double stop = sim.run_until(1e9);
  ASSERT_TRUE(sim.halted());
  // Re-entering the loop must return immediately without firing events.
  const std::uint64_t executed = sim.events_executed();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sim.run_until(1e9), stop);
    EXPECT_EQ(sim.events_executed(), executed);
  }
}

TEST(ProgressMonitor, ToStringCoversAllTrips) {
  EXPECT_STREQ(to_string(MonitorTrip::kNone), "none");
  EXPECT_STREQ(to_string(MonitorTrip::kWallBudget), "wall-budget");
  EXPECT_STREQ(to_string(MonitorTrip::kEventBudget), "event-budget");
  EXPECT_STREQ(to_string(MonitorTrip::kLivelock), "livelock");
  EXPECT_STREQ(to_string(MonitorTrip::kStalled), "stalled");
  EXPECT_STREQ(to_string(MonitorTrip::kCancelled), "cancelled");
}

}  // namespace
}  // namespace swarmlab::sim
