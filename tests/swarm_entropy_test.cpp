// Swarm-wide entropy index and multi-file metainfo tests.
#include <gtest/gtest.h>

#include "swarm/entropy.h"
#include "wire/messages.h"  // WireError
#include "wire/metainfo.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;

struct Harness {
  explicit Harness(std::uint32_t pieces = 8, std::uint64_t seed = 1)
      : sim(seed),
        geo(std::uint64_t{pieces} * 256 * 1024, 256 * 1024, 16 * 1024),
        swarm(sim, geo) {}

  PeerId add_with(std::vector<bool> pieces_held) {
    PeerConfig cfg;
    cfg.upload_capacity = 20e3;
    cfg.initial_pieces = std::move(pieces_held);
    const PeerId id = swarm.add_peer(std::move(cfg));
    swarm.start_peer(id);
    return id;
  }

  sim::Simulation sim;
  wire::ContentGeometry geo;
  swarm::Swarm swarm;
};

TEST(SwarmEntropy, VacuouslyIdealWithFewLeechers) {
  Harness h;
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy(h.swarm), 1.0);
  h.add_with({true, false, false, false, false, false, false, false});
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy(h.swarm), 1.0);
}

TEST(SwarmEntropy, DisjointHoldingsAreIdeal) {
  Harness h;
  h.add_with({true, false, false, false, false, false, false, false});
  h.add_with({false, true, false, false, false, false, false, false});
  // Each has a piece the other lacks: both directions interested.
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy(h.swarm), 1.0);
}

TEST(SwarmEntropy, SubsetBreaksOneDirection) {
  Harness h;
  h.add_with({true, true, false, false, false, false, false, false});
  h.add_with({true, false, false, false, false, false, false, false});
  // The superset peer is not interested in the subset peer: 1 of 2
  // ordered pairs.
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy(h.swarm), 0.5);
}

TEST(SwarmEntropy, IdenticalHoldingsAreZero) {
  Harness h;
  const std::vector<bool> held{true, true, false, false,
                               false, false, false, false};
  h.add_with(held);
  h.add_with(held);
  h.add_with(held);
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy(h.swarm), 0.0);
}

TEST(SwarmEntropy, SeedsAreExcluded) {
  Harness h;
  PeerConfig seed;
  seed.start_complete = true;
  seed.upload_capacity = 20e3;
  h.swarm.start_peer(h.swarm.add_peer(std::move(seed)));
  const std::vector<bool> held{true, false, false, false,
                               false, false, false, false};
  h.add_with(held);
  h.add_with(held);
  // Two identical leechers: entropy 0 regardless of the seed.
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy(h.swarm), 0.0);
}

TEST(SwarmEntropySampler, RecordsSeries) {
  Harness h;
  h.add_with({true, false, false, false, false, false, false, false});
  h.add_with({false, true, false, false, false, false, false, false});
  swarm::SwarmEntropySampler sampler(h.sim, h.swarm, 10.0);
  h.sim.run_until(35.0);
  sampler.stop();
  EXPECT_GE(sampler.entropy().size(), 3u);
  // Disjoint holdings at t=0 = ideal entropy; after they trade their
  // single pieces the holdings are identical and entropy collapses.
  EXPECT_DOUBLE_EQ(sampler.entropy().samples().front().value, 1.0);
  EXPECT_DOUBLE_EQ(sampler.entropy().samples().back().value, 0.0);
}

// --- multi-file metainfo -----------------------------------------------------

TEST(MultiFileMetainfo, RoundTrip) {
  wire::Metainfo meta;
  meta.announce = "http://tracker/announce";
  meta.name = "album";
  meta.piece_length = 256 * 1024;
  meta.files = {{"disc1/track01.flac", 300 * 1024},
                {"disc1/track02.flac", 200 * 1024},
                {"cover.jpg", 24 * 1024}};
  meta.length = 524 * 1024;
  meta.piece_hashes.resize(meta.geometry().num_pieces());
  const std::string encoded = wire::encode_metainfo(meta);
  const wire::Metainfo decoded = wire::decode_metainfo(encoded);
  EXPECT_EQ(decoded, meta);
  EXPECT_EQ(decoded.files.size(), 3u);
  EXPECT_EQ(decoded.files[0].path, "disc1/track01.flac");
  EXPECT_EQ(decoded.length, 524u * 1024);
}

TEST(MultiFileMetainfo, TotalLengthIsSumOfFiles) {
  wire::Metainfo meta;
  meta.announce = "t";
  meta.name = "n";
  meta.piece_length = 256 * 1024;
  meta.files = {{"a", 100 * 1024}, {"b", 156 * 1024}};
  meta.length = 256 * 1024;
  meta.piece_hashes.resize(1);
  const wire::Metainfo decoded =
      wire::decode_metainfo(wire::encode_metainfo(meta));
  EXPECT_EQ(decoded.length, 256u * 1024);
  EXPECT_EQ(decoded.geometry().num_pieces(), 1u);
}

TEST(MultiFileMetainfo, InfoHashDiffersFromSingleFile) {
  wire::Metainfo single = wire::make_synthetic_metainfo(
      "t", "n", 256 * 1024);
  wire::Metainfo multi = single;
  multi.files = {{"n", 256 * 1024}};
  EXPECT_NE(wire::info_hash(single), wire::info_hash(multi));
}

TEST(MultiFileMetainfo, EmptyPathRejected) {
  // Hand-craft a files list with an empty path list.
  const std::string bad =
      "d8:announce1:t4:infod5:filesld6:lengthi100e4:pathleee4:name1:n"
      "12:piece lengthi262144e6:pieces20:aaaaaaaaaaaaaaaaaaaaee";
  EXPECT_THROW(wire::decode_metainfo(bad), wire::WireError);
}

}  // namespace
}  // namespace swarmlab
