// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace swarmlab::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

// Generation-check regression: ids are slot handles, and a slot freed by
// cancel or fire is reused by later schedules. A stale id held across
// that reuse must never cancel the slot's next tenant.
TEST(EventQueue, StaleIdCannotCancelSlotsNextTenant) {
  EventQueue q;
  const EventId first = q.schedule(1.0, [] {});
  ASSERT_TRUE(q.cancel(first));
  // Drain any pool so the next schedule reuses first's slot.
  bool fired = false;
  const EventId second = q.schedule(2.0, [&] { fired = true; });
  EXPECT_EQ(second & 0xffffffffu, first & 0xffffffffu);  // same slot...
  EXPECT_NE(second, first);                              // ...new generation
  EXPECT_FALSE(q.cancel(first));  // stale id bounces off
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StaleIdSurvivesManyReuses) {
  EventQueue q;
  const EventId original = q.schedule(1.0, [] {});
  q.pop().fn();  // fire it; slot retires
  for (int round = 0; round < 100; ++round) {
    const EventId tenant = q.schedule(1.0, [] {});
    EXPECT_FALSE(q.cancel(original)) << "round " << round;
    ASSERT_TRUE(q.cancel(tenant));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CountersTrackScheduledCancelledAndPeak) {
  EventQueue q;
  EXPECT_EQ(q.scheduled_count(), 0u);
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.schedule(3.0, [] {});
  EXPECT_EQ(q.scheduled_count(), 3u);
  EXPECT_EQ(q.peak_pending(), 3u);
  q.cancel(a);
  EXPECT_EQ(q.cancelled_count(), 1u);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop();
  EXPECT_EQ(q.peak_pending(), 3u);  // high-water mark survives drain
}

// Heavy churn exercises the heap-compaction path (dead entries
// outnumbering live ones) without disturbing fire order.
TEST(EventQueue, FireOrderSurvivesMassCancellation) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int i = 0; i < 500; ++i) {
    // Interleave survivors with events cancelled immediately after.
    q.schedule(10.0, [&order, i] { order.push_back(i); });
    for (int j = 0; j < 5; ++j) {
      doomed.push_back(q.schedule(5.0, [] { FAIL(); }));
    }
    for (const EventId id : doomed) q.cancel(id);
    doomed.clear();
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim(1);
  double seen = -1.0;
  sim.schedule_in(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim(1);
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);  // clock reports the deadline
  sim.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventAtDeadlineStillRuns) {
  Simulation sim(1);
  bool fired = false;
  sim.schedule_in(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim(1);
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 3) sim.schedule_in(1.0, tick);
  };
  sim.schedule_in(1.0, tick);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim(1);
  int fired = 0;
  sim.schedule_in(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // The remaining event still fires on the next run.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CountsExecutedEvents) {
  Simulation sim(1);
  for (int i = 0; i < 7; ++i) sim.schedule_in(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(7);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.index(4)];
  for (const int count : seen) EXPECT_GT(count, 150);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ExponentialHasRoughlyCorrectMean) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = rng.sample_indices(20, 10);
    ASSERT_EQ(idx.size(), 10u);
    std::sort(idx.begin(), idx.end());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      EXPECT_LT(idx[i], 20u);
      if (i > 0) {
        EXPECT_NE(idx[i], idx[i - 1]);
      }
    }
  }
}

TEST(Rng, SampleAllIndices) {
  Rng rng(7);
  auto idx = rng.sample_indices(5, 5);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, NormalRespectsFloor) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal(0.0, 10.0, -1.0), -1.0);
  }
}

}  // namespace
}  // namespace swarmlab::sim
