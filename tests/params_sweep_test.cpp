// Configuration-space sweeps: the protocol must remain live and correct
// across the tunable ranges (parameterized gtest property suites).
#include <gtest/gtest.h>

#include <tuple>

#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;

/// Runs a 1-seed/3-leecher swarm with the given params on every peer and
/// requires full replication.
void expect_full_replication(const core::ProtocolParams& params,
                             std::uint32_t pieces = 8,
                             std::uint64_t seed = 3,
                             std::uint32_t piece_size = 256 * 1024,
                             std::uint32_t block_size = 16 * 1024) {
  sim::Simulation sim(seed);
  const wire::ContentGeometry geo(std::uint64_t{pieces} * piece_size,
                                  piece_size, block_size);
  swarm::Swarm sw(sim, geo);
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 40e3;
  s.params = params;
  sw.start_peer(sw.add_peer(std::move(s)));
  std::vector<PeerId> leechers;
  for (int i = 0; i < 3; ++i) {
    PeerConfig l;
    l.upload_capacity = 30e3;
    l.params = params;
    leechers.push_back(sw.add_peer(std::move(l)));
    sw.start_peer(leechers.back());
  }
  sim.run_until(60000.0);
  for (const PeerId id : leechers) {
    ASSERT_TRUE(sw.find_peer(id)->is_seed())
        << sw.find_peer(id)->have().count() << "/" << pieces;
  }
}

class PipelineDepthSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PipelineDepthSweep, CompletesAtAnyDepth) {
  core::ProtocolParams params;
  params.pipeline_depth = GetParam();
  expect_full_replication(params);
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineDepthSweep,
                         ::testing::Values(1u, 2u, 5u, 16u, 64u));

class RandomFirstSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomFirstSweep, CompletesAtAnyThreshold) {
  core::ProtocolParams params;
  params.random_first_threshold = GetParam();
  expect_full_replication(params);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, RandomFirstSweep,
                         ::testing::Values(0u, 1u, 4u, 8u, 1000u));

class ChokeIntervalSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChokeIntervalSweep, CompletesAtAnyInterval) {
  core::ProtocolParams params;
  params.choke_interval = GetParam();
  expect_full_replication(params);
}

INSTANTIATE_TEST_SUITE_P(Intervals, ChokeIntervalSweep,
                         ::testing::Values(1.0, 5.0, 10.0, 60.0));

class ActiveSetSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ActiveSetSweep, CompletesAtAnySize) {
  core::ProtocolParams params;
  params.active_set_size = GetParam();
  params.regular_unchoke_slots = GetParam() > 1 ? GetParam() - 1 : 1;
  expect_full_replication(params);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ActiveSetSweep,
                         ::testing::Values(1u, 2u, 4u, 10u));

class GeometrySweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {};

TEST_P(GeometrySweep, CompletesAtAnyGeometry) {
  const auto [pieces, piece_size, block_size] = GetParam();
  expect_full_replication(core::ProtocolParams{}, pieces, 3, piece_size,
                          block_size);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(
        std::make_tuple(1u, 256u * 1024, 16u * 1024),    // single piece
        std::make_tuple(4u, 64u * 1024, 16u * 1024),     // small pieces
        std::make_tuple(16u, 256u * 1024, 256u * 1024),  // 1 block/piece
        std::make_tuple(8u, 1024u * 1024, 16u * 1024),   // 64 blocks/piece
        std::make_tuple(32u, 32u * 1024, 8u * 1024)));   // tiny blocks

class PickerCompletionSweep
    : public ::testing::TestWithParam<core::PickerKind> {};

TEST_P(PickerCompletionSweep, EveryPickerCompletes) {
  core::ProtocolParams params;
  params.picker = GetParam();
  expect_full_replication(params);
}

INSTANTIATE_TEST_SUITE_P(Pickers, PickerCompletionSweep,
                         ::testing::Values(core::PickerKind::kRarestFirst,
                                           core::PickerKind::kRandom,
                                           core::PickerKind::kSequential,
                                           core::PickerKind::kGlobalRarest));

class SeedChokerCompletionSweep
    : public ::testing::TestWithParam<core::SeedChokerKind> {};

TEST_P(SeedChokerCompletionSweep, BothSeedAlgorithmsServe) {
  core::ProtocolParams params;
  params.seed_choker = GetParam();
  expect_full_replication(params);
}

INSTANTIATE_TEST_SUITE_P(Chokers, SeedChokerCompletionSweep,
                         ::testing::Values(core::SeedChokerKind::kNewSeed,
                                           core::SeedChokerKind::kOldSeed));

TEST(ParamsSweep, TftSwarmWithHonestPeersCompletes) {
  core::ProtocolParams params;
  params.leecher_choker = core::LeecherChokerKind::kTitForTat;
  expect_full_replication(params);
}

TEST(ParamsSweep, LatencyExtremes) {
  // Control latency from zero to a fat half-second RTT.
  for (const double latency : {0.0, 0.25, 0.5}) {
    sim::Simulation sim(9);
    const wire::ContentGeometry geo(4 * 256 * 1024);
    swarm::Swarm sw(sim, geo, latency);
    PeerConfig s;
    s.start_complete = true;
    s.upload_capacity = 40e3;
    sw.start_peer(sw.add_peer(std::move(s)));
    PeerConfig l;
    l.upload_capacity = 30e3;
    const PeerId lid = sw.add_peer(std::move(l));
    sw.start_peer(lid);
    sim.run_until(10000.0);
    EXPECT_TRUE(sw.find_peer(lid)->is_seed()) << "latency=" << latency;
  }
}

}  // namespace
}  // namespace swarmlab
