// Unit tests for the statistics kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/cdf.h"
#include "stats/correlation.h"
#include "stats/gini.h"
#include "stats/histogram.h"
#include "stats/percentile.h"
#include "stats/rate_estimator.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace swarmlab::stats {
namespace {

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MeanAndVariance) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 100.0), 42.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Cdf, AtAndQuantile) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Cdf, IncrementalAdd) {
  Cdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
}

TEST(Cdf, LogSpacedPointsMonotone) {
  Cdf cdf({0.1, 1.0, 10.0, 100.0});
  const auto pts = cdf.log_spaced_points(0.01, 1000.0, 20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Cdf, DescribeQuantiles) {
  Cdf cdf({1.0, 2.0, 3.0});
  EXPECT_NE(describe_quantiles(cdf).find("p50"), std::string::npos);
  EXPECT_EQ(describe_quantiles(Cdf{}), "(empty)");
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 6.0);
}

TEST(TimeSeries, ValueAtUsesLastSample) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(2.0, 20.0);
  ts.add(3.0, 30.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.5, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(2.5), 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(99.0), 30.0);
}

TEST(TimeSeries, DownsampleKeepsEndpoints) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.add(i, i * 2.0);
  const auto ds = ts.downsample(10);
  ASSERT_EQ(ds.size(), 10u);
  EXPECT_DOUBLE_EQ(ds.front().time, 0.0);
  EXPECT_DOUBLE_EQ(ds.back().time, 99.0);
}

TEST(TimeSeries, DownsampleSmallSeriesReturnsAll) {
  TimeSeries ts;
  ts.add(1.0, 1.0);
  ts.add(2.0, 2.0);
  EXPECT_EQ(ts.downsample(10).size(), 2u);
}

TEST(TimeSeries, MinMaxValues) {
  TimeSeries ts;
  ts.add(0.0, 5.0);
  ts.add(1.0, -2.0);
  ts.add(2.0, 7.0);
  EXPECT_DOUBLE_EQ(ts.min_value(), -2.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 7.0);
}

TEST(RateEstimator, FreshConnectionNotOvercredited) {
  RateEstimator r(20.0);
  r.add(100.0, 1000);
  r.add(101.0, 1000);
  // 2000 bytes over ~1 second of history, not over the full window.
  EXPECT_NEAR(r.rate(101.0), 2000.0, 10.0);
}

TEST(RateEstimator, SteadyRateMatches) {
  RateEstimator r(20.0);
  for (int t = 0; t <= 100; ++t) r.add(t, 500);
  EXPECT_NEAR(r.rate(100.0), 500.0, 50.0);
}

TEST(RateEstimator, OldEventsExpire) {
  RateEstimator r(20.0);
  r.add(0.0, 1'000'000);
  EXPECT_DOUBLE_EQ(r.rate(100.0), 0.0);
}

TEST(RateEstimator, TotalsPersistAcrossReset) {
  RateEstimator r(20.0);
  r.add(0.0, 100);
  r.add(1.0, 200);
  r.reset_window();
  EXPECT_EQ(r.total_bytes(), 300u);
  EXPECT_DOUBLE_EQ(r.rate(2.0), 0.0);
}

TEST(Correlation, PerfectPositive) {
  EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {2, 4, 6}), 1.0);
  EXPECT_DOUBLE_EQ(spearman({1, 2, 3}, {10, 20, 30}), 1.0);
}

TEST(Correlation, PerfectNegative) {
  EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {6, 4, 2}), -1.0);
  EXPECT_DOUBLE_EQ(spearman({1, 2, 3}, {3, 2, 1}), -1.0);
}

TEST(Correlation, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(spearman({2, 2, 2}, {1, 2, 3}), 0.0);
}

TEST(Correlation, TooFewSamplesIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  // y = x^3 is monotone: Spearman 1, Pearson < 1.
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(std::pow(i, 3));
  }
  EXPECT_DOUBLE_EQ(spearman(xs, ys), 1.0);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> xs{1, 2, 2, 3};
  const std::vector<double> ys{1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(spearman(xs, ys), 1.0);
}


TEST(Gini, EqualSharesAreZero) {
  EXPECT_DOUBLE_EQ(gini({5, 5, 5, 5}), 0.0);
}

TEST(Gini, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  EXPECT_DOUBLE_EQ(gini({7}), 0.0);
  EXPECT_DOUBLE_EQ(gini({0, 0, 0}), 0.0);
}

TEST(Gini, MonopolyApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  EXPECT_NEAR(gini(v), 0.99, 0.011);
}

TEST(Gini, OrderingInvariant) {
  EXPECT_DOUBLE_EQ(gini({1, 2, 3, 4}), gini({4, 2, 1, 3}));
}

TEST(Gini, KnownValue) {
  // {1, 3}: G = |1-3| / (2 * 2 * 2) * 2 = 0.25.
  EXPECT_DOUBLE_EQ(gini({1.0, 3.0}), 0.25);
}

}  // namespace
}  // namespace swarmlab::stats
