// MessageStream: incremental peer-wire decoding across arbitrary chunk
// boundaries.
#include <gtest/gtest.h>

#include <random>

#include "wire/message_stream.h"

namespace swarmlab::wire {
namespace {

constexpr std::uint32_t kPieces = 12;

std::vector<std::uint8_t> session_bytes(Handshake& hs_out) {
  hs_out.info_hash = Sha1::hash("stream test torrent");
  std::vector<std::uint8_t> bytes = encode_handshake(hs_out);
  BitfieldMsg bf;
  bf.bits.assign(kPieces, false);
  bf.bits[3] = true;
  for (const Message& m :
       {Message{bf}, Message{InterestedMsg{}}, Message{UnchokeMsg{}},
        Message{RequestMsg{3, 0, 16384}},
        Message{PieceMsg{3, 0, std::vector<std::uint8_t>(100, 9)}},
        Message{KeepAliveMsg{}}, Message{HaveMsg{5}}}) {
    const auto enc = encode_message(m, kPieces);
    bytes.insert(bytes.end(), enc.begin(), enc.end());
  }
  return bytes;
}

TEST(MessageStream, DecodesWholeSessionAtOnce) {
  Handshake hs;
  const auto bytes = session_bytes(hs);
  MessageStream stream(kPieces);
  const auto msgs = stream.feed(bytes);
  ASSERT_TRUE(stream.handshake().has_value());
  EXPECT_EQ(*stream.handshake(), hs);
  ASSERT_EQ(msgs.size(), 7u);
  EXPECT_TRUE(std::holds_alternative<BitfieldMsg>(msgs[0]));
  EXPECT_TRUE(std::holds_alternative<HaveMsg>(msgs[6]));
  EXPECT_EQ(stream.buffered_bytes(), 0u);
  EXPECT_EQ(stream.messages_decoded(), 7u);
}

TEST(MessageStream, ByteAtATime) {
  Handshake hs;
  const auto bytes = session_bytes(hs);
  MessageStream stream(kPieces);
  std::size_t total = 0;
  for (const std::uint8_t b : bytes) {
    total += stream.feed(std::span<const std::uint8_t>(&b, 1)).size();
  }
  EXPECT_EQ(total, 7u);
  EXPECT_TRUE(stream.handshake().has_value());
  EXPECT_EQ(stream.buffered_bytes(), 0u);
}

TEST(MessageStream, RandomChunking) {
  Handshake hs;
  const auto bytes = session_bytes(hs);
  for (const std::size_t chunk : {2u, 3u, 7u, 13u, 64u, 1000u}) {
    MessageStream stream(kPieces);
    std::size_t total = 0;
    for (std::size_t at = 0; at < bytes.size(); at += chunk) {
      const std::size_t n = std::min(chunk, bytes.size() - at);
      total += stream
                   .feed(std::span<const std::uint8_t>(bytes.data() + at, n))
                   .size();
    }
    EXPECT_EQ(total, 7u) << "chunk=" << chunk;
  }
}

TEST(MessageStream, NoHandshakeMode) {
  MessageStream stream(kPieces, /*expect_handshake=*/false);
  const auto enc = encode_message(Message{HaveMsg{1}}, kPieces);
  const auto msgs = stream.feed(enc);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_FALSE(stream.handshake().has_value());
}

TEST(MessageStream, PartialFrameIsBuffered) {
  MessageStream stream(kPieces, /*expect_handshake=*/false);
  const auto enc = encode_message(Message{RequestMsg{1, 0, 16384}}, kPieces);
  const std::size_t half = enc.size() / 2;
  EXPECT_TRUE(
      stream.feed(std::span<const std::uint8_t>(enc.data(), half)).empty());
  EXPECT_EQ(stream.buffered_bytes(), half);
  const auto rest = stream.feed(std::span<const std::uint8_t>(
      enc.data() + half, enc.size() - half));
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(stream.buffered_bytes(), 0u);
}

TEST(MessageStream, MalformedInputPoisons) {
  MessageStream stream(kPieces, /*expect_handshake=*/false);
  const std::vector<std::uint8_t> bad{0, 0, 0, 1, 99};  // unknown id
  EXPECT_THROW(stream.feed(bad), WireError);
  EXPECT_TRUE(stream.poisoned());
  const std::vector<std::uint8_t> good =
      encode_message(Message{KeepAliveMsg{}});
  EXPECT_THROW(stream.feed(good), WireError);
}

TEST(MessageStream, BadHandshakePoisons) {
  MessageStream stream(kPieces);
  std::vector<std::uint8_t> bytes(Handshake::kEncodedSize, 0);
  EXPECT_THROW(stream.feed(bytes), WireError);
  EXPECT_TRUE(stream.poisoned());
}

TEST(MessageStream, RandomGarbageNeverCrashes) {
  // Fuzz-ish property: arbitrary bytes either decode or throw WireError;
  // they never crash or loop.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    MessageStream stream(kPieces, /*expect_handshake=*/false);
    std::vector<std::uint8_t> junk(1 + rng() % 200);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    try {
      (void)stream.feed(junk);
    } catch (const WireError&) {
      // acceptable
    }
  }
}

}  // namespace
}  // namespace swarmlab::wire
