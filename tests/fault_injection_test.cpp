// Fault-injection subsystem tests: FaultPlan gating, the acceptance
// storm (initial-seed death + message loss + tracker outage), announce
// retry across tracker outages, and the headline determinism guarantee —
// a faulted sweep is byte-identical for 1 worker and 8 workers.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "runner/batch_runner.h"
#include "sim/rng.h"
#include "swarm/scenario.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using runner::BatchJob;
using runner::BatchOptions;
using runner::BatchRunner;
using runner::RunResult;

TEST(FaultPlan, AnyReflectsEveryKnob) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.any());

  plan.initial_seed_death_time = 0.0;  // t=0 is a valid death time
  EXPECT_TRUE(plan.any());
  plan = {};
  plan.peer_crash_rate = 0.001;
  EXPECT_TRUE(plan.any());
  plan = {};
  plan.message_loss_rate = 0.01;
  EXPECT_TRUE(plan.any());
  plan = {};
  plan.message_delay_jitter = 0.1;
  EXPECT_TRUE(plan.any());
  plan = {};
  plan.flow_kill_rate = 0.001;
  EXPECT_TRUE(plan.any());
  plan = {};
  plan.tracker_outages.push_back({100.0, 0.0});  // zero-length: inert
  EXPECT_FALSE(plan.any());
  plan.tracker_outages.push_back({100.0, 50.0});
  EXPECT_TRUE(plan.any());
}

TEST(FaultInjection, AllZeroPlanAddsNoFaultsKey) {
  BatchJob job;
  job.id = 1;
  job.config.num_pieces = 16;
  job.config.initial_seeds = 1;
  job.config.initial_leechers = 4;
  job.config.arrival_rate = 0.0;
  job.config.duration = 8000.0;
  job.seed = 11;
  const RunResult res = runner::run_scenario_job(job, 100.0);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.metrics.find("faults"), nullptr);
}

// The ISSUE acceptance scenario: initial seed dies, 5% of control
// messages vanish, and the tracker blacks out for a window — the run
// must either complete or report stalled cleanly, and every ghost seed
// must be evicted from every surviving peer's set within the silence
// timeout.
TEST(FaultInjection, StormCompletesOrStallsCleanlyAndEvictsGhosts) {
  swarm::ScenarioConfig cfg;
  cfg.num_pieces = 16;
  cfg.initial_seeds = 2;
  cfg.initial_leechers = 10;
  cfg.arrival_rate = 0.02;
  cfg.duration = 12000.0;
  cfg.faults.initial_seed_death_time = 300.0;
  cfg.faults.message_loss_rate = 0.05;
  cfg.faults.tracker_outages.push_back({400.0, 600.0});

  instrument::LocalPeerLog log(cfg.num_pieces);
  swarm::ScenarioRunner runner(cfg, 4242, &log);
  fault::FaultInjector injector(runner, 4242);
  const double end = runner.run_until_local_complete(2000.0);

  EXPECT_EQ(injector.stats().seed_deaths, 2u);
  EXPECT_EQ(injector.stats().outages, 1u);
  EXPECT_GT(injector.stats().messages_dropped, 0u);
  EXPECT_GT(runner.swarm().tracker().stats().failed, 0u);

  // Either outcome is acceptable; both must be clean. The run always
  // outlives death + silence_timeout, so ghosts must be gone.
  const double evict_deadline =
      cfg.faults.initial_seed_death_time +
      runner.config().local_params.silence_timeout +
      2.0 * runner.config().local_params.liveness_check_interval;
  ASSERT_GT(end, evict_deadline);
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (!p->active()) continue;
    for (const peer::PeerId dead : runner.initial_seed_ids()) {
      EXPECT_EQ(p->connection(dead), nullptr)
          << "peer " << id << " still holds ghost seed " << dead;
    }
  }
}

TEST(FaultInjection, AnnounceRetryRidesOutTrackerOutage) {
  // A peer that starts mid-outage gets a failed Started announce and an
  // empty peer set; exponential-backoff retries (base 15 s) connect it
  // once the tracker returns.
  sim::Simulation sim(9);
  const wire::ContentGeometry geo(8 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  peer::PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 30e3;
  sw.start_peer(sw.add_peer(std::move(s)));

  sim.schedule_at(50.0, [&] { sw.tracker().set_online(false); });
  peer::PeerId late = peer::kNoPeer;
  sim.schedule_at(60.0, [&] {
    peer::PeerConfig l;
    l.upload_capacity = 30e3;
    late = sw.add_peer(std::move(l));
    sw.start_peer(late);
  });
  sim.schedule_at(61.0, [&] {
    EXPECT_GE(sw.find_peer(late)->announce_failures(), 1u);
    EXPECT_EQ(sw.find_peer(late)->peer_set_size(), 0u);
  });
  sim.schedule_at(200.0, [&] { sw.tracker().set_online(true); });

  sim.run_until(6000.0);
  ASSERT_NE(late, peer::kNoPeer);
  EXPECT_GE(sw.find_peer(late)->announce_failures(), 1u);
  EXPECT_GT(sw.tracker().stats().failed, 0u);
  // Recovery: the late peer found the seed and finished the download.
  EXPECT_TRUE(sw.find_peer(late)->is_seed());
}

// --- the determinism guarantee ----------------------------------------------

struct SweepOutput {
  std::string text;
  std::string report_core;
};

SweepOutput run_faulted_sweep(int workers) {
  swarm::ScaleLimits limits;
  limits.max_peers = 24;
  limits.max_pieces = 16;
  limits.min_pieces = 16;
  limits.duration = 6000.0;

  // Two torrents x {crash+loss, seed death+outage, flow kills}: every
  // fault path draws from its per-job forked stream.
  std::vector<fault::FaultPlan> plans(3);
  plans[0].peer_crash_rate = 1.0 / 400.0;
  plans[0].message_loss_rate = 0.05;
  plans[0].message_delay_jitter = 0.2;
  plans[1].initial_seed_death_time = 400.0;
  plans[1].tracker_outages.push_back({200.0, 500.0});
  plans[2].flow_kill_rate = 1.0 / 60.0;

  std::vector<BatchJob> jobs;
  int id = 0;
  for (const int torrent : {3, 5}) {
    for (const auto& plan : plans) {
      BatchJob job;
      job.id = ++id;
      job.config = swarm::scenario_from_table1(torrent, limits);
      job.config.faults = plan;
      job.name = "faulted-" + std::to_string(id);
      job.seed = sim::fork_seed(20061025, static_cast<std::uint64_t>(id));
      jobs.push_back(std::move(job));
    }
  }

  BatchOptions opts;
  opts.jobs = workers;
  opts.master_seed = 20061025;
  BatchRunner batch(opts);
  SweepOutput out;
  const auto results = batch.run(
      jobs,
      [](const BatchJob& job) {
        return runner::run_scenario_job(
            job, 200.0,
            [&job](const swarm::ScenarioRunner&,
                   const instrument::LocalPeerLog&, RunResult& res) {
              char row[96];
              std::snprintf(row, sizeof row, "%d done=%.2f events=%llu\n",
                            job.id, res.local_completion,
                            static_cast<unsigned long long>(
                                res.events_executed));
              res.text = row;
            });
      },
      [&](const RunResult& r) { out.text += r.text; });
  const auto report = runner::make_report("fault_injection_test", opts,
                                          results, batch.wall_seconds());
  out.report_core = dump(runner::deterministic_view(report), 2);
  return out;
}

TEST(FaultDeterminism, FaultedSweepIsIdenticalAcrossWorkerCounts) {
  const SweepOutput serial = run_faulted_sweep(1);
  const SweepOutput parallel = run_faulted_sweep(8);
  EXPECT_EQ(serial.text, parallel.text);
  EXPECT_EQ(serial.report_core, parallel.report_core);
  // Sanity: the faulted runs actually injected faults.
  EXPECT_NE(serial.report_core.find("\"faults\""), std::string::npos);
  EXPECT_NE(serial.report_core.find("\"seed_deaths\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace swarmlab
