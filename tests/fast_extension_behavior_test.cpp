// Fast Extension (BEP 6) peer behaviour: have_all/have_none
// announcements and explicit request rejection.
#include <gtest/gtest.h>

#include "instrument/local_log.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;

struct Harness {
  explicit Harness(std::uint32_t pieces = 8, std::uint64_t seed = 1)
      : sim(seed),
        geo(std::uint64_t{pieces} * 256 * 1024, 256 * 1024, 16 * 1024),
        swarm(sim, geo) {}

  PeerId add(PeerConfig cfg, peer::PeerObserver* obs = nullptr) {
    cfg.params.fast_extension = true;
    const PeerId id = swarm.add_peer(std::move(cfg), obs);
    swarm.start_peer(id);
    return id;
  }

  sim::Simulation sim;
  wire::ContentGeometry geo;
  swarm::Swarm swarm;
};

TEST(FastBehavior, SeedAnnouncesWithHaveAll) {
  Harness h;
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 50e3;
  h.add(std::move(s));
  instrument::LocalPeerLog log(8);
  PeerConfig l;
  l.upload_capacity = 50e3;
  const PeerId lid = h.add(std::move(l), &log);
  h.sim.run_until(5.0);
  EXPECT_GE(log.message_counters().received.at("have_all"), 1u);
  EXPECT_EQ(log.message_counters().received.count("bitfield"), 0u);
  // The have_all produced a complete remote view.
  const peer::Connection* conn =
      h.swarm.find_peer(lid)->connection(1);
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->remote_have.complete());
}

TEST(FastBehavior, EmptyPeerAnnouncesWithHaveNone) {
  Harness h;
  instrument::LocalPeerLog log(8);
  PeerConfig a;
  a.upload_capacity = 50e3;
  h.add(std::move(a), &log);
  PeerConfig b;
  b.upload_capacity = 50e3;
  h.add(std::move(b));
  h.sim.run_until(5.0);
  EXPECT_GE(log.message_counters().received.at("have_none"), 1u);
}

TEST(FastBehavior, ChokedRequestIsRejectedExplicitly) {
  Harness h;
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 50e3;
  const PeerId sid = h.add(std::move(s));
  instrument::LocalPeerLog log(8);
  PeerConfig l;
  l.upload_capacity = 50e3;
  const PeerId lid = h.add(std::move(l), &log);
  h.sim.run_until(1.0);  // connected, not yet unchoked
  peer::Peer* seed = h.swarm.find_peer(sid);
  ASSERT_TRUE(seed->connection(lid)->am_choking);
  // A (stale) request while choked draws a reject, not silence.
  seed->handle_message(lid, wire::RequestMsg{0, 0, 16384});
  h.sim.run_until(2.0);
  EXPECT_GE(log.message_counters().received.at("reject_request"), 1u);
}

TEST(FastBehavior, RejectReleasesTheBlockForOtherPeers) {
  Harness h;
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 5e3;  // slow: requests outstanding for a while
  const PeerId sid = h.add(std::move(s));
  PeerConfig l;
  l.upload_capacity = 50e3;
  const PeerId lid = h.add(std::move(l));
  h.sim.run_until(30.0);  // unchoked, pipeline full
  peer::Peer* leecher = h.swarm.find_peer(lid);
  const peer::Connection* conn = leecher->connection(sid);
  ASSERT_NE(conn, nullptr);
  ASSERT_FALSE(conn->outstanding.empty());
  const wire::BlockRef pending = conn->outstanding.front();
  const std::size_t before = conn->outstanding.size();
  leecher->handle_message(
      sid, wire::RejectRequestMsg{pending.piece,
                                  pending.block * h.geo.block_size(),
                                  h.geo.block_bytes(pending)});
  // The slot was freed and immediately refilled (with one source the
  // same block is legitimately re-requested — the point is that the
  // pipeline never leaks a slot and never duplicates an entry).
  EXPECT_EQ(conn->outstanding.size(), before);
  std::size_t copies = 0;
  for (const auto& b : conn->outstanding) {
    if (b == pending) ++copies;
  }
  EXPECT_LE(copies, 1u);
}

TEST(FastBehavior, SuggestAndAllowedFastAreTolerated) {
  Harness h;
  PeerConfig a;
  a.upload_capacity = 50e3;
  const PeerId aid = h.add(std::move(a));
  PeerConfig b;
  b.upload_capacity = 50e3;
  const PeerId bid = h.add(std::move(b));
  h.sim.run_until(1.0);
  peer::Peer* pa = h.swarm.find_peer(aid);
  pa->handle_message(bid, wire::SuggestPieceMsg{3});
  pa->handle_message(bid, wire::AllowedFastMsg{2});
  h.sim.run_until(10.0);
  EXPECT_TRUE(pa->active());
}

TEST(FastBehavior, SwarmCompletesWithFastExtension) {
  Harness h;
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 40e3;
  h.add(std::move(s));
  std::vector<PeerId> leechers;
  for (int i = 0; i < 4; ++i) {
    PeerConfig l;
    l.upload_capacity = 25e3;
    leechers.push_back(h.add(std::move(l)));
  }
  h.sim.run_until(10000.0);
  for (const PeerId id : leechers) {
    EXPECT_TRUE(h.swarm.find_peer(id)->is_seed());
  }
}

}  // namespace
}  // namespace swarmlab
