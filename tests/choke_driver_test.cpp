// ChokeDriver in isolation: choke rounds over a MockFabric connection
// table, without a Swarm or the fluid network.
#include <gtest/gtest.h>

#include "mock_fabric.h"
#include "peer/peer.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;
using test::MockFabric;

struct Harness {
  explicit Harness(PeerConfig cfg = {}) : Harness(4, std::move(cfg)) {}
  Harness(std::uint32_t pieces, PeerConfig cfg)
      : geo(std::uint64_t{pieces} * 64 * 1024, 64 * 1024, 16 * 1024),
        fabric(sim, geo),
        peer(fabric, geo,
             [&] {
               cfg.id = 1;
               cfg.start_complete = true;  // a seed has something to serve
               return cfg;
             }()) {
    peer.start();
  }

  /// Connects `remote` and has it declare interest.
  void add_interested(PeerId remote) {
    peer.on_connected(remote, false);
    wire::BitfieldMsg none;
    none.bits.assign(geo.num_pieces(), false);
    peer.handle_message(remote, none);
    peer.handle_message(remote, wire::InterestedMsg{});
  }

  /// Runs past the first (phase-randomized) choke round.
  void run_one_round() { sim.run_until(sim.now() + 10.0 + 1e-6); }

  sim::Simulation sim{1};
  wire::ContentGeometry geo;
  MockFabric fabric;
  peer::Peer peer;
};

TEST(ChokeDriver, InterestedPeersGetUnchokedWithinOneRound) {
  Harness h;
  h.add_interested(7);
  h.add_interested(8);
  h.run_one_round();
  EXPECT_EQ(h.fabric.count_sent<wire::UnchokeMsg>(7), 1u);
  EXPECT_EQ(h.fabric.count_sent<wire::UnchokeMsg>(8), 1u);
  EXPECT_FALSE(h.peer.connection(7)->am_choking);
}

TEST(ChokeDriver, UninterestedPeerStaysChoked) {
  Harness h;
  h.peer.on_connected(7, false);
  wire::BitfieldMsg none;
  none.bits.assign(h.geo.num_pieces(), false);
  h.peer.handle_message(7, none);
  h.run_one_round();
  EXPECT_EQ(h.fabric.count_sent<wire::UnchokeMsg>(7), 0u);
  EXPECT_TRUE(h.peer.connection(7)->am_choking);
}

TEST(ChokeDriver, FreeRiderNeverUnchokesAnyone) {
  PeerConfig cfg;
  cfg.free_rider = true;
  Harness h(std::move(cfg));
  h.add_interested(7);
  h.run_one_round();
  h.run_one_round();
  EXPECT_EQ(h.fabric.count_sent<wire::UnchokeMsg>(7), 0u);
}

TEST(ChokeDriver, ActiveSetIsBounded) {
  Harness h;
  for (PeerId r = 10; r < 30; ++r) h.add_interested(r);
  h.run_one_round();
  std::size_t unchoked = 0;
  for (PeerId r = 10; r < 30; ++r) {
    if (!h.peer.connection(r)->am_choking) ++unchoked;
  }
  EXPECT_GT(unchoked, 0u);
  EXPECT_LE(unchoked, h.peer.config().params.active_set_size);
}

TEST(ChokeDriver, ChokeWithFastExtensionRejectsQueuedRequests) {
  PeerConfig cfg;
  cfg.params.fast_extension = true;
  Harness h(std::move(cfg));
  h.add_interested(7);
  h.run_one_round();
  ASSERT_FALSE(h.peer.connection(7)->am_choking);
  // Wedge the upload slot so a second request stays queued, then force a
  // choke by flooding with 20 better peers and running more rounds.
  h.fabric.fail_send_block = false;
  h.peer.handle_message(7, wire::RequestMsg{0, 0, 16 * 1024});
  h.peer.handle_message(7, wire::RequestMsg{0, 16 * 1024, 16 * 1024});
  ASSERT_EQ(h.peer.connection(7)->upload_queue.size(), 1u);
  for (PeerId r = 10; r < 30; ++r) h.add_interested(r);
  for (int i = 0; i < 12 && !h.peer.connection(7)->am_choking; ++i) {
    h.run_one_round();
  }
  ASSERT_TRUE(h.peer.connection(7)->am_choking);
  // The queued (unserved) request was rejected explicitly on choke.
  EXPECT_GE(h.fabric.count_sent<wire::RejectRequestMsg>(7), 1u);
  EXPECT_GE(h.fabric.count_sent<wire::ChokeMsg>(7), 1u);
  EXPECT_TRUE(h.peer.connection(7)->upload_queue.empty());
}

}  // namespace
}  // namespace swarmlab
