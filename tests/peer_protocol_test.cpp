// Peer state-machine behavior, observed through real (small) swarms.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "instrument/local_log.h"
#include "mock_network.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;

struct Harness {
  explicit Harness(std::uint32_t pieces = 8, std::uint64_t seed = 1)
      : sim(seed),
        geo(std::uint64_t{pieces} * 256 * 1024, 256 * 1024, 16 * 1024),
        swarm(sim, geo) {}

  PeerId add_seed(double up = 50e3) {
    PeerConfig cfg;
    cfg.start_complete = true;
    cfg.upload_capacity = up;
    const PeerId id = swarm.add_peer(cfg);
    swarm.start_peer(id);
    return id;
  }

  PeerId add_leecher(double up = 50e3, peer::PeerObserver* obs = nullptr,
                     bool free_rider = false) {
    PeerConfig cfg;
    cfg.upload_capacity = up;
    cfg.free_rider = free_rider;
    const PeerId id = swarm.add_peer(cfg, obs);
    swarm.start_peer(id);
    return id;
  }

  sim::Simulation sim;
  wire::ContentGeometry geo;
  swarm::Swarm swarm;
};

TEST(PeerProtocol, SeedToLeecherTransferCompletes) {
  Harness h;
  h.add_seed();
  const PeerId leecher = h.add_leecher();
  h.sim.run_until(2000.0);
  const peer::Peer* p = h.swarm.find_peer(leecher);
  EXPECT_TRUE(p->is_seed());
  EXPECT_EQ(p->total_downloaded(), h.geo.total_bytes());
}

TEST(PeerProtocol, ConnectionsAreSymmetric) {
  Harness h;
  const PeerId a = h.add_seed();
  const PeerId b = h.add_leecher();
  h.sim.run_until(5.0);
  EXPECT_NE(h.swarm.find_peer(a)->connection(b), nullptr);
  EXPECT_NE(h.swarm.find_peer(b)->connection(a), nullptr);
}

TEST(PeerProtocol, BitfieldExchangedOnConnect) {
  Harness h;
  const PeerId s = h.add_seed();
  const PeerId l = h.add_leecher();
  h.sim.run_until(5.0);
  const peer::Connection* conn = h.swarm.find_peer(l)->connection(s);
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->remote_have.complete());
  // The leecher is interested in the seed; the reverse cannot hold.
  EXPECT_TRUE(conn->am_interested);
  const peer::Connection* rev = h.swarm.find_peer(s)->connection(l);
  ASSERT_NE(rev, nullptr);
  EXPECT_FALSE(rev->am_interested);
  EXPECT_TRUE(rev->peer_interested);
}

TEST(PeerProtocol, SeedUnchokesInterestedLeecherWithinOneRound) {
  Harness h;
  const PeerId s = h.add_seed();
  const PeerId l = h.add_leecher();
  h.sim.run_until(25.0);  // two choke rounds
  const peer::Connection* conn = h.swarm.find_peer(s)->connection(l);
  ASSERT_NE(conn, nullptr);
  EXPECT_FALSE(conn->am_choking);
  EXPECT_GE(conn->last_unchoke_time, 0.0);
}

TEST(PeerProtocol, AvailabilityTracksPeerSet) {
  Harness h;
  const PeerId s = h.add_seed();
  const PeerId l = h.add_leecher();
  h.sim.run_until(5.0);
  // The leecher sees one copy of every piece (the seed's).
  const auto& avail = h.swarm.find_peer(l)->availability();
  EXPECT_EQ(avail.min_copies(), 1u);
  EXPECT_EQ(avail.max_copies(), 1u);
  // The seed sees zero copies (the leecher has nothing yet).
  EXPECT_EQ(h.swarm.find_peer(s)->availability().max_copies(), 0u);
}

TEST(PeerProtocol, HaveBroadcastUpdatesAvailability) {
  Harness h;
  h.add_seed();
  const PeerId l1 = h.add_leecher();
  const PeerId l2 = h.add_leecher();
  h.sim.run_until(400.0);
  // Once l1 completes pieces, l2's availability for those pieces is >= 1
  // even though l2 may not have downloaded them from l1.
  const peer::Peer* p1 = h.swarm.find_peer(l1);
  const peer::Peer* p2 = h.swarm.find_peer(l2);
  if (p1->have().count() > 0 && p2->connection(l1) != nullptr) {
    const auto& bits = p2->connection(l1)->remote_have;
    EXPECT_EQ(bits.count(), p1->have().count());
  }
}

TEST(PeerProtocol, StrictPriorityFinishesPiecesInOrderFromSingleSource) {
  // With one connection, strict priority means all blocks of a piece
  // arrive before any block of the next piece.
  Harness h(4);
  h.add_seed();
  instrument::LocalPeerLog log(4);
  h.add_leecher(50e3, &log);
  h.sim.run_until(3000.0);
  std::set<wire::PieceIndex> completed;
  wire::PieceIndex current = ~0u;
  for (const auto& e : log.block_events()) {
    if (e.block.piece != current) {
      EXPECT_FALSE(completed.contains(e.block.piece))
          << "piece " << e.block.piece << " interleaved";
      if (current != ~0u) completed.insert(current);
      current = e.block.piece;
    }
  }
}

TEST(PeerProtocol, FreeRiderNeverUploadsButCompletes) {
  Harness h;
  h.add_seed();
  const PeerId fr = h.add_leecher(50e3, nullptr, /*free_rider=*/true);
  const PeerId honest = h.add_leecher();
  h.sim.run_until(4000.0);
  EXPECT_EQ(h.swarm.find_peer(fr)->total_uploaded(), 0u);
  EXPECT_TRUE(h.swarm.find_peer(fr)->is_seed());  // seeds still serve it
  EXPECT_TRUE(h.swarm.find_peer(honest)->is_seed());
}

TEST(PeerProtocol, NewSeedDisconnectsFromSeeds) {
  Harness h;
  const PeerId s = h.add_seed();
  const PeerId l = h.add_leecher();
  h.sim.run_until(3000.0);
  ASSERT_TRUE(h.swarm.find_peer(l)->is_seed());
  // Paper §IV-A.2.b: a new seed closes its connections to all seeds.
  EXPECT_EQ(h.swarm.find_peer(l)->connection(s), nullptr);
  EXPECT_EQ(h.swarm.find_peer(s)->connection(l), nullptr);
}

TEST(PeerProtocol, StoppedPeerLeavesCleanly) {
  Harness h;
  const PeerId s = h.add_seed();
  const PeerId l = h.add_leecher();
  h.sim.run_until(10.0);  // connected, well before the download finishes
  ASSERT_NE(h.swarm.find_peer(s)->connection(l), nullptr);
  h.swarm.stop_peer(l);
  EXPECT_EQ(h.swarm.find_peer(s)->connection(l), nullptr);
  EXPECT_FALSE(h.swarm.find_peer(l)->active());
  EXPECT_EQ(h.swarm.tracker().num_members(), 1u);
  // The survivor keeps running without incident.
  h.sim.run_until(100.0);
}

TEST(PeerProtocol, MidTransferDepartureDoesNotStall) {
  Harness h(8);
  const PeerId s1 = h.add_seed(30e3);
  h.add_seed(30e3);
  const PeerId l = h.add_leecher();
  // Kill one seed mid-download; the leecher must still finish from the
  // other (outstanding requests to the dead seed are re-issued).
  h.sim.schedule_at(60.0, [&] { h.swarm.stop_peer(s1); });
  h.sim.run_until(4000.0);
  EXPECT_TRUE(h.swarm.find_peer(l)->is_seed());
}

TEST(PeerProtocol, PeerSetRespectsMaximum) {
  Harness h(4);
  peer::PeerConfig cfg;
  cfg.start_complete = true;
  cfg.params.max_peer_set = 5;
  const PeerId constrained = h.swarm.add_peer(cfg);
  h.swarm.start_peer(constrained);
  for (int i = 0; i < 12; ++i) h.add_leecher();
  h.sim.run_until(100.0);
  EXPECT_LE(h.swarm.find_peer(constrained)->peer_set_size(), 5u);
}

TEST(PeerProtocol, InitiatedConnectionsRespectCap) {
  Harness h(4);
  peer::PeerConfig cfg;
  cfg.params.max_initiated = 3;
  cfg.params.max_peer_set = 40;
  for (int i = 0; i < 12; ++i) h.add_leecher();
  const PeerId capped = h.swarm.add_peer(cfg);
  h.swarm.start_peer(capped);
  h.sim.run_until(30.0);
  EXPECT_LE(h.swarm.find_peer(capped)->initiated_connections(), 3u);
  // Incoming connections may exceed the initiated cap.
}

TEST(PeerProtocol, EndGameProducesBoundedDuplicates) {
  Harness h(8);
  h.add_seed();
  h.add_seed();
  instrument::LocalPeerLog log(8);
  h.add_leecher(50e3, &log);
  h.sim.run_until(4000.0);
  const std::size_t total_blocks = 8 * 16;
  EXPECT_GE(log.block_events().size(), total_blocks);
  EXPECT_LE(log.block_events().size(), total_blocks + 32);
}

TEST(PeerProtocol, DownloadedBytesMatchContentSize) {
  Harness h(8);
  h.add_seed();
  instrument::LocalPeerLog log(8);
  const PeerId l = h.add_leecher(50e3, &log);
  h.sim.run_until(4000.0);
  const peer::Peer* p = h.swarm.find_peer(l);
  ASSERT_TRUE(p->is_seed());
  // A single source means no end-game duplicates: exact byte count.
  EXPECT_EQ(p->total_downloaded(), h.geo.total_bytes());
}

TEST(PeerProtocol, ObserverSeesSymmetricMessageFlow) {
  Harness h(4);
  h.add_seed();
  instrument::LocalPeerLog log(4);
  h.add_leecher(50e3, &log);
  h.sim.run_until(2000.0);
  const auto& mc = log.message_counters();
  EXPECT_GT(mc.sent.at("request"), 0u);
  EXPECT_GT(mc.received.at("piece"), 0u);
  EXPECT_GT(mc.sent.at("interested"), 0u);
  EXPECT_GT(mc.received.at("unchoke"), 0u);
  EXPECT_EQ(mc.sent.at("request"), mc.received.at("piece"));
}

TEST(PeerProtocol, SuperSeedingRevealsGradually) {
  Harness h(8);
  peer::PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.params.super_seeding = true;
  seed_cfg.upload_capacity = 50e3;
  const PeerId ss = h.swarm.add_peer(seed_cfg);
  h.swarm.start_peer(ss);
  const PeerId l1 = h.add_leecher();
  const PeerId l2 = h.add_leecher();
  h.sim.run_until(20.0);
  // Early on, each leecher sees at most a couple of revealed pieces, not
  // the full bitfield.
  const peer::Connection* c1 = h.swarm.find_peer(l1)->connection(ss);
  ASSERT_NE(c1, nullptr);
  EXPECT_LT(c1->remote_have.count(), 8u);
  // Propagation still completes: both leechers finish eventually.
  h.sim.run_until(8000.0);
  EXPECT_TRUE(h.swarm.find_peer(l1)->is_seed());
  EXPECT_TRUE(h.swarm.find_peer(l2)->is_seed());
}

TEST(PeerProtocol, TorrentAliveReflectsGlobalCoverage) {
  Harness h(4);
  const PeerId s = h.add_seed();
  EXPECT_TRUE(h.swarm.torrent_alive());
  h.swarm.stop_peer(s);
  EXPECT_FALSE(h.swarm.torrent_alive());
}

TEST(PeerProtocol, GlobalAvailabilityTracksCompletions) {
  Harness h(4);
  h.add_seed();
  const PeerId l = h.add_leecher();
  h.sim.run_until(2000.0);
  ASSERT_TRUE(h.swarm.find_peer(l)->is_seed());
  for (wire::PieceIndex p = 0; p < 4; ++p) {
    EXPECT_EQ(h.swarm.global_availability().copies(p), 2u);
  }
}

// --- the net::Network seam -------------------------------------------------

/// Records every message the observed peer receives, in arrival order.
struct MessageOrderLog : peer::PeerObserver {
  void on_message_received(sim::SimTime, PeerId,
                           const wire::Message& msg) override {
    names.push_back(wire::message_name(msg));
  }
  std::vector<std::string> names;

  std::ptrdiff_t first(const std::string& name) const {
    const auto it = std::find(names.begin(), names.end(), name);
    return it == names.end() ? -1 : it - names.begin();
  }
};

// A Swarm runs unchanged on an injected MockNetwork (constant control
// latency, constant flow time), and the control-message ordering the
// protocol guarantees — BITFIELD before UNCHOKE before the first block —
// holds independently of the fluid model's rate arithmetic.
TEST(PeerProtocol, ControlOrderingHoldsOnMockNetwork) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(4 * 256 * 1024, 256 * 1024, 16 * 1024);
  auto owned = std::make_unique<test::MockNetwork>(sim, 0.05,
                                                   /*flow_time=*/0.25);
  test::MockNetwork* mock = owned.get();
  swarm::Swarm swarm(sim, geo, 0.05, std::move(owned));
  // The swarm's network seam is exactly the injected backend.
  ASSERT_EQ(&swarm.network(), mock);

  PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  const PeerId s = swarm.add_peer(seed_cfg);
  swarm.start_peer(s);
  MessageOrderLog log;
  const PeerId l = swarm.add_peer(PeerConfig{}, &log);
  swarm.start_peer(l);
  sim.run_until(200.0);

  EXPECT_TRUE(swarm.find_peer(l)->is_seed());
  EXPECT_GT(mock->flows_started(), 0u);
  EXPECT_GT(mock->controls_sent(), 0u);
  const auto bitfield = log.first("bitfield");
  const auto unchoke = log.first("unchoke");
  const auto block = log.first("piece");
  ASSERT_NE(bitfield, -1);
  ASSERT_NE(unchoke, -1);
  ASSERT_NE(block, -1);
  EXPECT_LT(bitfield, unchoke);
  EXPECT_LT(unchoke, block);
}

}  // namespace
}  // namespace swarmlab
