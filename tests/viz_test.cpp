// SVG chart rendering tests.
#include <gtest/gtest.h>

#include <string>

#include "viz/svg_plot.h"

namespace swarmlab::viz {
namespace {

std::size_t count(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

Series ramp(const std::string& label, int n, double slope) {
  Series s;
  s.label = label;
  for (int i = 0; i < n; ++i) {
    s.points.emplace_back(i, i * slope);
  }
  return s;
}

TEST(SvgPlot, LineChartStructure) {
  PlotOptions opt;
  opt.title = "test chart";
  opt.x_label = "x";
  opt.y_label = "y";
  const std::string svg =
      render_line_chart({ramp("a", 10, 1.0), ramp("b", 10, 2.0)}, opt);
  EXPECT_EQ(svg.find("<svg "), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count(svg, "<polyline"), 2u);
  EXPECT_NE(svg.find("test chart"), std::string::npos);
  EXPECT_EQ(count(svg, "text-anchor=\"middle\""), 2u + 5u + 1u);
  // Legend entries for both series.
  EXPECT_NE(svg.find(">a</text>"), std::string::npos);
  EXPECT_NE(svg.find(">b</text>"), std::string::npos);
}

TEST(SvgPlot, ScatterUsesCircles) {
  const std::string svg = render_scatter({ramp("pts", 7, 1.0)}, {});
  EXPECT_EQ(count(svg, "<circle"), 7u);
  EXPECT_EQ(count(svg, "<polyline"), 0u);
}

TEST(SvgPlot, EmptySeriesStillValid) {
  const std::string svg = render_line_chart({}, {});
  EXPECT_EQ(svg.find("<svg "), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgPlot, ConstantSeriesDoesNotDivideByZero) {
  Series flat;
  flat.label = "flat";
  for (int i = 0; i < 5; ++i) flat.points.emplace_back(i, 42.0);
  const std::string svg = render_line_chart({flat}, {});
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(SvgPlot, LogAxisSkipsNonPositiveX) {
  Series s;
  s.points.emplace_back(0.0, 1.0);   // dropped on a log axis
  s.points.emplace_back(0.1, 2.0);
  s.points.emplace_back(10.0, 3.0);
  PlotOptions opt;
  opt.log_x = true;
  const std::string svg = render_scatter({s}, opt);
  EXPECT_EQ(count(svg, "<circle"), 2u);
}

TEST(SvgPlot, TitleIsEscaped) {
  PlotOptions opt;
  opt.title = "a < b & c";
  const std::string svg = render_line_chart({ramp("s", 3, 1.0)}, opt);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b & c"), std::string::npos);
}

TEST(SvgPlot, FromTimeSeriesDownsamples) {
  stats::TimeSeries ts;
  for (int i = 0; i < 1000; ++i) ts.add(i, i * 1.0);
  const Series s = from_time_series(ts, "big", 50);
  EXPECT_EQ(s.points.size(), 50u);
  EXPECT_DOUBLE_EQ(s.points.front().first, 0.0);
  EXPECT_DOUBLE_EQ(s.points.back().first, 999.0);
}

TEST(SvgPlot, FromCdfBuildsStepFunction) {
  stats::Cdf cdf({1.0, 2.0, 4.0});
  const Series s = from_cdf(cdf, "cdf");
  ASSERT_EQ(s.points.size(), 6u);  // two points per sample
  EXPECT_DOUBLE_EQ(s.points[0].first, 1.0);
  EXPECT_DOUBLE_EQ(s.points[0].second, 0.0);
  EXPECT_DOUBLE_EQ(s.points[1].second, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.points.back().first, 4.0);
  EXPECT_DOUBLE_EQ(s.points.back().second, 1.0);
}

TEST(SvgPlot, CoordinatesStayInsideCanvas) {
  PlotOptions opt;
  opt.width = 300;
  opt.height = 200;
  const std::string svg = render_scatter({ramp("s", 20, 5.0)}, opt);
  // Every circle coordinate must lie within the viewBox.
  std::size_t at = 0;
  while ((at = svg.find("<circle cx=\"", at)) != std::string::npos) {
    at += 12;
    const double cx = std::stod(svg.substr(at));
    const std::size_t cy_at = svg.find("cy=\"", at) + 4;
    const double cy = std::stod(svg.substr(cy_at));
    EXPECT_GE(cx, 0.0);
    EXPECT_LE(cx, 300.0);
    EXPECT_GE(cy, 0.0);
    EXPECT_LE(cy, 200.0);
  }
}

}  // namespace
}  // namespace swarmlab::viz
