// Peer-wire message codec: round trips, framing, and malformed frames.
#include <gtest/gtest.h>

#include "wire/messages.h"

namespace swarmlab::wire {
namespace {

constexpr std::uint32_t kPieces = 37;  // odd count exercises spare bits

Message round_trip(const Message& msg, std::uint32_t num_pieces = kPieces) {
  const auto bytes = encode_message(msg, num_pieces);
  std::size_t consumed = 0;
  const auto decoded = decode_message(bytes, num_pieces, consumed);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, bytes.size());
  return *decoded;
}

TEST(Messages, KeepAliveRoundTrip) {
  const auto bytes = encode_message(Message{KeepAliveMsg{}});
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0, 0, 0, 0}));
  EXPECT_TRUE(std::holds_alternative<KeepAliveMsg>(
      round_trip(Message{KeepAliveMsg{}})));
}

TEST(Messages, FlagMessagesRoundTrip) {
  EXPECT_TRUE(std::holds_alternative<ChokeMsg>(round_trip(ChokeMsg{})));
  EXPECT_TRUE(std::holds_alternative<UnchokeMsg>(round_trip(UnchokeMsg{})));
  EXPECT_TRUE(
      std::holds_alternative<InterestedMsg>(round_trip(InterestedMsg{})));
  EXPECT_TRUE(std::holds_alternative<NotInterestedMsg>(
      round_trip(NotInterestedMsg{})));
}

TEST(Messages, FlagMessageWireFormat) {
  const auto bytes = encode_message(Message{UnchokeMsg{}});
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0, 0, 0, 1, 1}));
}

TEST(Messages, HaveRoundTrip) {
  const auto m = std::get<HaveMsg>(round_trip(HaveMsg{31}));
  EXPECT_EQ(m.piece, 31u);
}

TEST(Messages, HaveOutOfRangeRejected) {
  const auto bytes = encode_message(Message{HaveMsg{kPieces}});
  std::size_t consumed = 0;
  EXPECT_THROW(decode_message(bytes, kPieces, consumed), WireError);
}

TEST(Messages, BitfieldRoundTrip) {
  BitfieldMsg msg;
  msg.bits.assign(kPieces, false);
  msg.bits[0] = msg.bits[7] = msg.bits[8] = msg.bits[36] = true;
  const auto m = std::get<BitfieldMsg>(round_trip(Message{msg}));
  EXPECT_EQ(m.bits, msg.bits);
}

TEST(Messages, BitfieldPacksHighBitFirst) {
  BitfieldMsg msg;
  msg.bits.assign(8, false);
  msg.bits[0] = true;
  const auto bytes = encode_message(Message{msg}, 8);
  // frame: len=2, id=5, payload 0b10000000
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0, 0, 0, 2, 5, 0x80}));
}

TEST(Messages, BitfieldSizeMismatchThrowsOnEncode) {
  BitfieldMsg msg;
  msg.bits.assign(10, true);
  EXPECT_THROW(encode_message(Message{msg}, 8), WireError);
  EXPECT_THROW(encode_message(Message{msg}, 0), WireError);
}

TEST(Messages, BitfieldNonzeroSpareBitsRejected) {
  // 3 pieces -> 1 byte; set an illegal 4th bit.
  const std::vector<std::uint8_t> frame{0, 0, 0, 2, 5, 0b00010000};
  std::size_t consumed = 0;
  EXPECT_THROW(decode_message(frame, 3, consumed), WireError);
}

TEST(Messages, RequestRoundTrip) {
  const auto m = std::get<RequestMsg>(
      round_trip(RequestMsg{5, 16384, 16384}));
  EXPECT_EQ(m.piece, 5u);
  EXPECT_EQ(m.begin, 16384u);
  EXPECT_EQ(m.length, 16384u);
}

TEST(Messages, PieceRoundTripWithData) {
  PieceMsg msg;
  msg.piece = 9;
  msg.begin = 32768;
  msg.data = {1, 2, 3, 4, 5};
  const auto m = std::get<PieceMsg>(round_trip(Message{msg}));
  EXPECT_EQ(m.piece, 9u);
  EXPECT_EQ(m.begin, 32768u);
  EXPECT_EQ(m.data, msg.data);
}

TEST(Messages, CancelRoundTrip) {
  const auto m =
      std::get<CancelMsg>(round_trip(CancelMsg{2, 0, 16384}));
  EXPECT_EQ(m.piece, 2u);
  EXPECT_EQ(m.length, 16384u);
}

TEST(Messages, IncompleteFrameReturnsNullopt) {
  const auto bytes = encode_message(Message{RequestMsg{1, 2, 3}});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::size_t consumed = 99;
    const auto partial = decode_message(
        std::span<const std::uint8_t>(bytes.data(), cut), kPieces, consumed);
    EXPECT_FALSE(partial.has_value()) << "cut=" << cut;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Messages, BackToBackFramesDecodeSequentially) {
  auto bytes = encode_message(Message{HaveMsg{1}});
  const auto second = encode_message(Message{InterestedMsg{}});
  bytes.insert(bytes.end(), second.begin(), second.end());
  std::size_t consumed = 0;
  auto msg1 = decode_message(bytes, kPieces, consumed);
  ASSERT_TRUE(msg1.has_value());
  EXPECT_TRUE(std::holds_alternative<HaveMsg>(*msg1));
  const std::span<const std::uint8_t> rest(bytes.data() + consumed,
                                           bytes.size() - consumed);
  std::size_t consumed2 = 0;
  auto msg2 = decode_message(rest, kPieces, consumed2);
  ASSERT_TRUE(msg2.has_value());
  EXPECT_TRUE(std::holds_alternative<InterestedMsg>(*msg2));
}

TEST(Messages, BadPayloadLengthsRejected) {
  // have with 3-byte payload
  const std::vector<std::uint8_t> bad_have{0, 0, 0, 4, 4, 0, 0, 1};
  std::size_t consumed = 0;
  EXPECT_THROW(decode_message(bad_have, kPieces, consumed), WireError);
  // choke with payload
  const std::vector<std::uint8_t> bad_choke{0, 0, 0, 2, 0, 9};
  EXPECT_THROW(decode_message(bad_choke, kPieces, consumed), WireError);
}

TEST(Messages, UnknownIdRejected) {
  const std::vector<std::uint8_t> frame{0, 0, 0, 1, 99};
  std::size_t consumed = 0;
  EXPECT_THROW(decode_message(frame, kPieces, consumed), WireError);
}

TEST(Messages, OversizedFrameRejected) {
  const std::vector<std::uint8_t> frame{0xFF, 0xFF, 0xFF, 0xFF};
  std::size_t consumed = 0;
  EXPECT_THROW(decode_message(frame, kPieces, consumed), WireError);
}

TEST(Messages, MessageNames) {
  EXPECT_STREQ(message_name(Message{KeepAliveMsg{}}), "keep_alive");
  EXPECT_STREQ(message_name(Message{HaveMsg{}}), "have");
  EXPECT_STREQ(message_name(Message{PieceMsg{}}), "piece");
  EXPECT_STREQ(message_id_name(MessageId::kCancel), "cancel");
  EXPECT_STREQ(message_id_name(MessageId::kBitfield), "bitfield");
}

TEST(Handshake, RoundTrip) {
  Handshake hs;
  hs.reserved[7] = 0x01;
  hs.info_hash = Sha1::hash("some torrent");
  for (std::size_t i = 0; i < hs.peer_id.size(); ++i) {
    hs.peer_id[i] = static_cast<std::uint8_t>('A' + i);
  }
  const auto bytes = encode_handshake(hs);
  ASSERT_EQ(bytes.size(), Handshake::kEncodedSize);
  EXPECT_EQ(decode_handshake(bytes), hs);
}

TEST(Handshake, BadProtocolStringRejected) {
  Handshake hs;
  auto bytes = encode_handshake(hs);
  bytes[1] = 'X';
  EXPECT_THROW(decode_handshake(bytes), WireError);
  bytes[1] = 'B';
  bytes[0] = 18;
  EXPECT_THROW(decode_handshake(bytes), WireError);
}

TEST(Handshake, ShortInputRejected) {
  const std::vector<std::uint8_t> short_input(10, 0);
  EXPECT_THROW(decode_handshake(short_input), WireError);
}

}  // namespace
}  // namespace swarmlab::wire
