// Smoke-runs every Table-I scenario at tiny scale: all 26 must run to
// completion without violating basic invariants, and the local peer must
// finish everywhere a seed exists.
#include <gtest/gtest.h>

#include "instrument/analyzers.h"
#include "instrument/local_log.h"
#include "swarm/scenario.h"

namespace swarmlab {
namespace {

class CatalogSmokeTest : public ::testing::TestWithParam<int> {};

TEST_P(CatalogSmokeTest, RunsCleanly) {
  const int id = GetParam();
  swarm::ScaleLimits limits;
  limits.max_peers = 30;
  limits.min_leechers = 2;
  limits.max_pieces = 16;
  limits.min_pieces = 8;
  limits.duration = 20000.0;
  auto cfg = swarm::scenario_from_table1(id, limits);
  instrument::LocalPeerLog log(cfg.num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), 100 + id, &log);
  const double end = runner.run_until_local_complete(200.0);
  log.finalize(end);

  if (id == 1) {
    // Zero seeds and dead pieces: completion is impossible by design.
    EXPECT_FALSE(runner.local_peer().is_seed());
  } else {
    EXPECT_TRUE(runner.local_peer().is_seed())
        << "torrent " << id << ": " << runner.local_peer().have().count()
        << " pieces";
  }

  // Entropy ratios are well-formed whatever the torrent.
  const auto entropy = instrument::analyze_entropy(log);
  for (const double r : entropy.local_interest_ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
  for (const double r : entropy.remote_interest_ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
  // Accounting sanity: the local peer downloaded at least its pieces.
  const auto geo = runner.swarm().geometry();
  EXPECT_GE(runner.local_peer().total_downloaded(),
            std::uint64_t{runner.local_peer().have().count()} *
                geo.block_size());
}

INSTANTIATE_TEST_SUITE_P(AllTorrents, CatalogSmokeTest,
                         ::testing::Range(1, 27));

}  // namespace
}  // namespace swarmlab
