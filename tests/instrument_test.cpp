// Instrumentation tests: the LocalPeerLog interval accounting and the
// figure analyzers, driven directly (no swarm needed).
#include <gtest/gtest.h>

#include "instrument/analyzers.h"
#include "instrument/local_log.h"

namespace swarmlab::instrument {
namespace {

constexpr std::uint32_t kPieces = 10;

wire::Message bitfield_with(std::uint32_t count) {
  wire::BitfieldMsg msg;
  msg.bits.assign(kPieces, false);
  for (std::uint32_t i = 0; i < count; ++i) msg.bits[i] = true;
  return msg;
}

TEST(LocalPeerLog, AccruesPeerSetTime) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(10.0, 1);
  log.on_peer_left(25.0, 1);
  log.finalize(100.0);
  const auto& r = log.records().at(1);
  EXPECT_DOUBLE_EQ(r.time_in_set, 15.0);
  EXPECT_DOUBLE_EQ(r.time_in_set_leecher, 15.0);
}

TEST(LocalPeerLog, RejoinAccumulates) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_peer_left(10.0, 1);
  log.on_peer_joined(50.0, 1);
  log.on_peer_left(70.0, 1);
  log.finalize(100.0);
  EXPECT_DOUBLE_EQ(log.records().at(1).time_in_set, 30.0);
}

TEST(LocalPeerLog, InterestIntervalsGated) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_message_received(0.0, 1, bitfield_with(3));  // a leecher
  log.on_interest_change(10.0, 1, true);
  log.on_remote_interest_change(20.0, 1, true);
  log.on_interest_change(30.0, 1, false);
  log.on_peer_left(50.0, 1);
  log.finalize(100.0);
  const auto& r = log.records().at(1);
  EXPECT_DOUBLE_EQ(r.local_interested_leecher, 20.0);   // a: 10..30
  EXPECT_DOUBLE_EQ(r.remote_interested_leecher, 30.0);  // c: 20..50
  EXPECT_DOUBLE_EQ(r.time_in_set_leecher, 50.0);        // b
}

TEST(LocalPeerLog, SeedTransitionSplitsBuckets) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_message_received(0.0, 1, bitfield_with(2));
  log.on_remote_interest_change(0.0, 1, true);
  log.on_became_seed(40.0);
  log.finalize(100.0);
  const auto& r = log.records().at(1);
  EXPECT_DOUBLE_EQ(r.time_in_set_leecher, 40.0);
  EXPECT_DOUBLE_EQ(r.remote_interested_leecher, 40.0);
  EXPECT_DOUBLE_EQ(r.time_in_set_seed, 60.0);
  EXPECT_DOUBLE_EQ(r.remote_interested_seed, 60.0);
}

TEST(LocalPeerLog, RemoteSeedExcludedFromLeecherBuckets) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_message_received(5.0, 1, bitfield_with(kPieces));  // a seed
  log.on_interest_change(5.0, 1, true);
  log.on_peer_left(50.0, 1);
  log.finalize(100.0);
  const auto& r = log.records().at(1);
  // Only the 5 s before the bitfield counts as leecher-leecher time.
  EXPECT_DOUBLE_EQ(r.time_in_set_leecher, 5.0);
  EXPECT_DOUBLE_EQ(r.local_interested_leecher, 0.0);
  EXPECT_TRUE(r.ever_remote_seed);
  EXPECT_DOUBLE_EQ(r.time_in_set, 50.0);
}

TEST(LocalPeerLog, RemoteBecomesSeedViaHaves) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_message_received(0.0, 1, bitfield_with(kPieces - 1));
  EXPECT_FALSE(log.records().at(1).remote_is_seed);
  log.on_message_received(20.0, 1, wire::Message{wire::HaveMsg{9}});
  EXPECT_TRUE(log.records().at(1).remote_is_seed);
  log.on_peer_left(50.0, 1);
  log.finalize(100.0);
  EXPECT_DOUBLE_EQ(log.records().at(1).time_in_set_leecher, 20.0);
}

TEST(LocalPeerLog, UnchokeCountsSplitByState) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_local_choke_change(1.0, 1, true);
  log.on_local_choke_change(2.0, 1, false);
  log.on_local_choke_change(3.0, 1, true);
  log.on_became_seed(10.0);
  log.on_local_choke_change(11.0, 1, true);
  log.finalize(20.0);
  EXPECT_EQ(log.records().at(1).unchokes_leecher, 2u);
  EXPECT_EQ(log.records().at(1).unchokes_seed, 1u);
}

TEST(LocalPeerLog, BytesSplitByStateAndRemoteRole) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_message_received(0.0, 1, bitfield_with(2));
  log.on_block_received(1.0, 1, {0, 0}, 100);  // from a leecher
  log.on_message_received(2.0, 1, bitfield_with(kPieces));
  log.on_block_received(3.0, 1, {1, 0}, 200);  // now a seed
  log.on_block_uploaded(4.0, 1, {0, 0}, 300);  // we are a leecher
  log.on_became_seed(5.0);
  log.on_block_uploaded(6.0, 1, {0, 1}, 400);  // we are a seed
  log.finalize(10.0);
  const auto& r = log.records().at(1);
  EXPECT_EQ(r.down_bytes_from_leecher, 100u);
  EXPECT_EQ(r.down_bytes_from_seed, 200u);
  EXPECT_EQ(r.up_bytes_leecher, 300u);
  EXPECT_EQ(r.up_bytes_seed, 400u);
}

TEST(LocalPeerLog, EventLogsOrdered) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_piece_complete(5.0, 3);
  log.on_piece_complete(9.0, 1);
  log.on_end_game(12.0);
  EXPECT_EQ(log.piece_events().size(), 2u);
  EXPECT_EQ(log.piece_events()[0].piece, 3u);
  EXPECT_DOUBLE_EQ(log.end_game_time(), 12.0);
}

// --- analyzers --------------------------------------------------------------

LocalPeerLog make_log_with_two_leechers() {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  // Peer 1: interested 80 of 100 s.
  log.on_peer_joined(0.0, 1);
  log.on_message_received(0.0, 1, bitfield_with(2));
  log.on_interest_change(0.0, 1, true);
  log.on_interest_change(80.0, 1, false);
  log.on_remote_interest_change(0.0, 1, true);
  // Peer 2: never interesting.
  log.on_peer_joined(0.0, 2);
  log.on_message_received(0.0, 2, bitfield_with(1));
  // Peer 3: too brief (under the 10 s filter).
  log.on_peer_joined(0.0, 3);
  log.on_peer_left(4.0, 3);
  log.finalize(100.0);
  return log;
}

TEST(Analyzers, EntropyRatiosAndFilter) {
  const LocalPeerLog log = make_log_with_two_leechers();
  const auto result = analyze_entropy(log);
  ASSERT_EQ(result.local_interest_ratios.size(), 2u);  // peer 3 filtered
  EXPECT_NEAR(result.median_local, (0.8 + 0.0) / 2.0, 1e-9);
  EXPECT_NEAR(result.p80_local, 0.8, 0.35);
  ASSERT_EQ(result.remote_interest_ratios.size(), 2u);
}

TEST(Analyzers, PieceInterarrivalSplitsFirstAndLast) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  for (int i = 1; i <= 10; ++i) {
    log.on_piece_complete(i * 10.0, static_cast<wire::PieceIndex>(i - 1));
  }
  const auto result = analyze_piece_interarrival(log, /*k=*/3);
  EXPECT_EQ(result.all.count(), 10u);
  EXPECT_EQ(result.first_k.count(), 3u);
  EXPECT_EQ(result.last_k.count(), 3u);
  EXPECT_DOUBLE_EQ(result.all.max(), 10.0);  // uniform gaps
}

TEST(Analyzers, InterarrivalDetectsSlowStart) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  // First three pieces slow (gap 50), the rest fast (gap 5).
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    t += (i < 3) ? 50.0 : 5.0;
    log.on_piece_complete(t, static_cast<wire::PieceIndex>(i));
  }
  const auto result = analyze_piece_interarrival(log, /*k=*/3);
  EXPECT_GT(result.first_k.quantile(0.5), result.last_k.quantile(0.5));
}

TEST(Analyzers, LeecherFairnessFractions) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  // 12 peers: peer i uploads i kB to us and receives i kB (leecher state).
  for (peer::PeerId id = 1; id <= 12; ++id) {
    log.on_peer_joined(0.0, id);
    log.on_message_received(0.0, id, bitfield_with(2));
    log.on_block_uploaded(1.0, id, {0, 0}, id * 1000);
    log.on_block_received(1.0, id, {1, 0}, id * 1000);
  }
  log.finalize(10.0);
  const auto sets = analyze_leecher_fairness(log, 5, 6);
  ASSERT_EQ(sets.upload_fraction.size(), 6u);
  // Top set holds peers 12..8: (12+11+10+9+8)/78.
  EXPECT_NEAR(sets.upload_fraction[0], 50.0 / 78.0, 1e-9);
  EXPECT_NEAR(sets.download_fraction[0], 50.0 / 78.0, 1e-9);
  // Fractions sum to 1 over all sets (12 peers fit in 3 sets).
  double sum = 0.0;
  for (const double f : sets.upload_fraction) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Analyzers, LeecherFairnessExcludesSeedDownloads) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_message_received(0.0, 1, bitfield_with(kPieces));  // a seed
  log.on_block_received(1.0, 1, {0, 0}, 5000);
  log.on_peer_joined(0.0, 2);
  log.on_message_received(0.0, 2, bitfield_with(2));
  log.on_block_received(1.0, 2, {1, 0}, 1000);
  log.finalize(10.0);
  const auto sets = analyze_leecher_fairness(log);
  EXPECT_EQ(sets.total_downloaded_from_leechers, 1000u);
}

TEST(Analyzers, SeedFairnessUsesSeedStateBytes) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  for (peer::PeerId id = 1; id <= 6; ++id) log.on_peer_joined(0.0, id);
  log.on_block_uploaded(1.0, 1, {0, 0}, 999);  // leecher state: ignored
  log.on_became_seed(2.0);
  for (peer::PeerId id = 1; id <= 6; ++id) {
    log.on_block_uploaded(3.0, id, {0, 0}, 1000);  // equal seed service
  }
  log.finalize(10.0);
  const auto sets = analyze_seed_fairness(log, 5, 6);
  EXPECT_EQ(sets.total_uploaded, 6000u);
  EXPECT_NEAR(sets.upload_fraction[0], 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(sets.upload_fraction[1], 1.0 / 6.0, 1e-9);
}

TEST(Analyzers, UnchokeCorrelationSeparatesStates) {
  LocalPeerLog log(kPieces);
  log.on_start(0.0);
  log.on_became_seed(100.0);
  // In seed state: unchokes proportional to interested time.
  for (peer::PeerId id = 1; id <= 8; ++id) {
    log.on_peer_joined(100.0, id);
    log.on_remote_interest_change(100.0, id, true);
    for (peer::PeerId k = 0; k < id; ++k) {
      log.on_local_choke_change(101.0, id, true);
      log.on_local_choke_change(101.5, id, false);
    }
    log.on_peer_left(100.0 + id * 10.0, id);
  }
  log.finalize(300.0);
  const auto ss = analyze_unchoke_correlation_seed(log);
  ASSERT_EQ(ss.unchokes.size(), 8u);
  EXPECT_GT(ss.spearman, 0.95);
}

}  // namespace
}  // namespace swarmlab::instrument
