// Tests for the parallel batch scenario runner and its JSON report
// machinery: writer/parser round-trips and escaping edge cases, ordered
// result merging, error propagation, and the headline determinism
// guarantee — a 26-scenario Table-I sweep produces byte-identical
// aggregated results for 1 worker and 8 workers.
#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runner/batch_runner.h"
#include "runner/json.h"
#include "sim/rng.h"
#include "swarm/scenario.h"

namespace swarmlab {
namespace {

using runner::BatchJob;
using runner::BatchOptions;
using runner::BatchRunner;
using runner::JobStatus;
using runner::RunResult;
using runner::failure_summary;
namespace json = runner::json;

// --- JSON writer -------------------------------------------------------------

TEST(JsonWriter, Scalars) {
  EXPECT_EQ(json::dump(json::Value()), "null");
  EXPECT_EQ(json::dump(json::Value(true)), "true");
  EXPECT_EQ(json::dump(json::Value(false)), "false");
  EXPECT_EQ(json::dump(json::Value(0)), "0");
  EXPECT_EQ(json::dump(json::Value(-42)), "-42");
  EXPECT_EQ(json::dump(json::Value(18446744073709551615ull)),
            "18446744073709551615");
  EXPECT_EQ(json::dump(json::Value(1.5)), "1.5");
  EXPECT_EQ(json::dump(json::Value("hi")), "\"hi\"");
}

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  const std::string nasty = std::string("a\"b\\c\n\t\r\b\f") + '\x01' + "z";
  const std::string out = json::dump(json::Value(nasty));
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\r\\b\\f\\u0001z\"");
}

TEST(JsonWriter, Utf8PassesThrough) {
  const std::string s = "caf\xc3\xa9";  // café in UTF-8
  EXPECT_EQ(json::dump(json::Value(s)), "\"caf\xc3\xa9\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(json::dump(json::Value(std::nan(""))), "null");
  EXPECT_EQ(json::dump(json::Value(1.0 / 0.0)), "null");
}

TEST(JsonWriter, ObjectsKeepInsertionOrder) {
  auto v = json::Value::object();
  v["zebra"] = 1;
  v["alpha"] = 2;
  v["zebra"] = 3;  // update in place, order preserved
  EXPECT_EQ(json::dump(v), "{\"zebra\":3,\"alpha\":2}");
}

TEST(JsonWriter, PrettyPrinting) {
  auto v = json::Value::object();
  v["a"] = 1;
  auto arr = json::Value::array();
  arr.push_back(2);
  v["b"] = std::move(arr);
  EXPECT_EQ(json::dump(v, 2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
  EXPECT_EQ(json::dump(json::Value::object(), 2), "{}");
  EXPECT_EQ(json::dump(json::Value::array(), 2), "[]");
}

TEST(JsonWriter, DoubleRoundTripsExactly) {
  for (const double d : {0.1, 1.0 / 3.0, 1e-300, 1e300, 12345.6789,
                         -0.000123}) {
    json::Value parsed;
    ASSERT_TRUE(json::parse(json::dump(json::Value(d)), &parsed));
    EXPECT_EQ(parsed.as_double(), d);
  }
}

// --- JSON parser -------------------------------------------------------------

TEST(JsonParser, RoundTripsNestedStructures) {
  auto v = json::Value::object();
  v["name"] = "sweep";
  v["count"] = 26;
  v["ratio"] = 0.375;
  v["flag"] = true;
  v["missing"] = json::Value();
  auto arr = json::Value::array();
  for (int i = 0; i < 3; ++i) {
    auto entry = json::Value::object();
    entry["id"] = i;
    entry["text"] = "row \"quoted\" \\ end\n";
    arr.push_back(std::move(entry));
  }
  v["rows"] = std::move(arr);

  for (const int indent : {-1, 0, 2, 4}) {
    json::Value parsed;
    std::string error;
    ASSERT_TRUE(json::parse(json::dump(v, indent), &parsed, &error))
        << error;
    EXPECT_TRUE(parsed == v) << "indent=" << indent;
    // Byte-stability: dump(parse(dump(x))) == dump(x).
    EXPECT_EQ(json::dump(parsed, indent), json::dump(v, indent));
  }
}

TEST(JsonParser, UnicodeEscapes) {
  json::Value v;
  ASSERT_TRUE(json::parse("\"\\u0041\\u00e9\\u20ac\"", &v));
  EXPECT_EQ(v.as_string(), "A\xc3\xa9\xe2\x82\xac");  // A é €
}

TEST(JsonParser, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",       "[1,",      "{\"a\":}",  "tru",
      "01x",        "-",       "\"\x01\"", "\"unterminated",
      "{\"a\":1,}", "[1] []",  "{'a':1}",  "\"\\q\"",   "\"\\u12g4\"",
  };
  for (const char* text : bad) {
    json::Value v;
    std::string error;
    EXPECT_FALSE(json::parse(text, &v, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonParser, RejectsTrailingGarbageAfterTopLevelValue) {
  // Regression: a complete value followed by junk must fail, never
  // silently return the prefix.
  const char* bad[] = {
      "{}x",      "{} {}",   "[1]2",       "1 2",
      "null!",    "true,",   "\"a\"b",     "{\"a\":1}\xe2\x82\xac",
  };
  for (const char* text : bad) {
    json::Value v;
    std::string error;
    EXPECT_FALSE(json::parse(text, &v, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  // Trailing whitespace (including newlines) is NOT garbage.
  json::Value v;
  ASSERT_TRUE(json::parse("{\"a\": 1}  \n\t ", &v));
  EXPECT_EQ(v.find("a")->as_int64(), 1);
}

TEST(JsonParser, RejectsSloppyNumberGrammar) {
  // RFC 8259: int = "0" / [1-9] DIGIT*; frac and exp need >= 1 digit.
  const char* bad[] = {
      "01", "0123", "-01", "00", "1.", "-1.", ".5", "-.5", "1.e5",
      "1e",  "1e+",  "+1",  "[01]", "{\"a\":00}",
  };
  for (const char* text : bad) {
    json::Value v;
    std::string error;
    EXPECT_FALSE(json::parse(text, &v, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  // The strict forms these sloppy spellings shadow stay accepted.
  const char* good[] = {"0", "-0", "10", "0.5", "1.0e5", "0e0"};
  for (const char* text : good) {
    json::Value v;
    std::string error;
    EXPECT_TRUE(json::parse(text, &v, &error)) << text << ": " << error;
  }
}

TEST(JsonWriter, RoundTripRejectsAppendedGarbage) {
  // Writer output is exactly one value: round-trip parses, but the same
  // bytes with anything appended must not.
  json::Value v = json::Value::object();
  v["pi"] = 3.25;
  v["n"] = -7;
  auto arr = json::Value::array();
  arr.push_back(true);
  arr.push_back(json::Value());
  v["flags"] = std::move(arr);
  const std::string text = json::dump(v);
  json::Value parsed;
  ASSERT_TRUE(json::parse(text, &parsed));
  EXPECT_TRUE(parsed == v);
  for (const char* suffix : {"x", "{}", "0", " null"}) {
    json::Value junk;
    std::string error;
    EXPECT_FALSE(json::parse(text + suffix, &junk, &error)) << suffix;
  }
}

TEST(JsonParser, ParsesNumbersIntoNarrowestKind) {
  json::Value v;
  ASSERT_TRUE(json::parse("[-3, 7, 18446744073709551615, 2.5, 1e3]", &v));
  EXPECT_EQ(v.at(0).as_int64(), -3);
  EXPECT_EQ(v.at(1).as_int64(), 7);
  EXPECT_EQ(v.at(2).as_uint64(), 18446744073709551615ull);
  EXPECT_EQ(v.at(3).as_double(), 2.5);
  EXPECT_EQ(v.at(4).as_double(), 1000.0);
}

// --- seed forking ------------------------------------------------------------

TEST(ForkSeed, DeterministicAndWellSpread) {
  EXPECT_EQ(sim::fork_seed(1, 0), sim::fork_seed(1, 0));
  std::vector<std::uint64_t> seen;
  for (std::uint64_t master = 0; master < 4; ++master) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      seen.push_back(sim::fork_seed(master, stream));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "fork_seed collision across adjacent masters/streams";
}

// --- BatchRunner mechanics ---------------------------------------------------

std::vector<BatchJob> fake_jobs(int n) {
  std::vector<BatchJob> jobs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    jobs[static_cast<std::size_t>(i)].id = i;
    jobs[static_cast<std::size_t>(i)].seed = sim::fork_seed(7, i);
  }
  return jobs;
}

TEST(BatchRunner, MergesResultsInSubmissionOrder) {
  for (const int workers : {1, 2, 8}) {
    BatchOptions opts;
    opts.jobs = workers;
    BatchRunner batch(opts);
    std::vector<int> emitted;
    const auto results = batch.run(
        fake_jobs(20),
        [](const BatchJob& job) {
          // Early jobs sleep longest so completion order inverts
          // submission order under parallelism.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(job.id < 5 ? 20 - job.id : 0));
          RunResult r;
          r.id = job.id;
          r.seed = job.seed;
          return r;
        },
        [&](const RunResult& r) { emitted.push_back(r.id); });
    ASSERT_EQ(results.size(), 20u) << "workers=" << workers;
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(emitted[static_cast<std::size_t>(i)], i);
      EXPECT_EQ(results[static_cast<std::size_t>(i)].id, i);
    }
  }
}

TEST(BatchRunner, ContainsJobFailures) {
  // A throwing job no longer aborts the sweep: its result carries
  // status=failed and the error text, every other job still runs, and
  // failure_summary() gives callers the nonzero-exit signal.
  BatchOptions opts;
  opts.jobs = 4;
  BatchRunner batch(opts);
  const auto results = batch.run(fake_jobs(8),
                                 [](const BatchJob& job) -> RunResult {
                                   if (job.id == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                   RunResult r;
                                   r.id = job.id;
                                   return r;
                                 });
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) {
    if (r.id == 5) {
      EXPECT_EQ(r.status, JobStatus::kFailed);
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.error, "boom");
    } else {
      EXPECT_TRUE(r.ok());
      EXPECT_TRUE(r.error.empty());
    }
  }
  const std::string summary = failure_summary(results);
  EXPECT_NE(summary.find("1 of 8 jobs did not complete"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("boom"), std::string::npos) << summary;
  EXPECT_TRUE(failure_summary({}).empty());
}

TEST(BatchRunner, ReportSeparatesDeterministicFromWallClock) {
  BatchOptions opts;
  opts.jobs = 3;
  opts.master_seed = 99;
  BatchRunner batch(opts);
  const auto results = batch.run(fake_jobs(3), [](const BatchJob& job) {
    RunResult r;
    r.id = job.id;
    r.seed = job.seed;
    r.setup_seconds = 0.25;  // pretend wall clock
    r.metrics["k"] = job.id * 2;
    return r;
  });
  const auto report =
      runner::make_report("test_tool", opts, results, batch.wall_seconds());
  EXPECT_NE(report.find("host"), nullptr);
  EXPECT_NE(report.find("wall_seconds"), nullptr);
  ASSERT_NE(report.find("results"), nullptr);
  EXPECT_NE(report.find("results")->at(0).find("wall"), nullptr);

  const auto core = runner::deterministic_view(report);
  EXPECT_EQ(core.find("host"), nullptr);
  EXPECT_EQ(core.find("jobs"), nullptr);
  EXPECT_EQ(core.find("wall_seconds"), nullptr);
  ASSERT_NE(core.find("results"), nullptr);
  ASSERT_EQ(core.find("results")->size(), 3u);
  EXPECT_EQ(core.find("results")->at(0).find("wall"), nullptr);
  EXPECT_EQ(core.find("schema")->as_string(), runner::kReportSchema);
}

TEST(BatchRunner, WriteReportRoundTrips) {
  auto report = json::Value::object();
  report["schema"] = runner::kReportSchema;
  report["value"] = 0.1;
  const std::string path =
      testing::TempDir() + "/swarmlab_batch_report_test.json";
  std::string error;
  ASSERT_TRUE(runner::write_report(path, report, &error)) << error;
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  json::Value parsed;
  ASSERT_TRUE(json::parse(buf.str(), &parsed, &error)) << error;
  EXPECT_TRUE(parsed == report);
  std::remove(path.c_str());

  EXPECT_FALSE(
      runner::write_report("/nonexistent-dir/x.json", report, &error));
  EXPECT_FALSE(error.empty());
}

// --- the determinism guarantee ----------------------------------------------

swarm::ScaleLimits tiny_limits() {
  swarm::ScaleLimits limits;
  limits.max_peers = 24;
  limits.max_pieces = 16;
  limits.min_pieces = 16;
  limits.duration = 6000.0;
  return limits;
}

struct SweepOutput {
  std::string text;         // concatenated per-scenario rows
  std::string report_core;  // dump of the deterministic report view
  double wall_seconds = 0.0;
};

SweepOutput run_sweep(int workers) {
  BatchOptions opts;
  opts.jobs = workers;
  opts.master_seed = 20061025;
  BatchRunner batch(opts);
  SweepOutput out;
  const auto results = batch.run(
      runner::table1_jobs(opts.master_seed, tiny_limits()),
      [](const BatchJob& job) {
        return runner::run_scenario_job(
            job, 200.0,
            [&job](const swarm::ScenarioRunner& sr,
                   const instrument::LocalPeerLog& log, RunResult& res) {
              char row[96];
              std::snprintf(row, sizeof row, "%d done=%.2f peers=%zu\n",
                            job.id, res.local_completion,
                            log.records().size());
              res.text = row;
              res.metrics["peers_seen"] = static_cast<unsigned long long>(
                  log.records().size());
              res.metrics["events"] = sr.simulation().events_executed();
            });
      },
      [&](const RunResult& r) { out.text += r.text; });
  const auto report = runner::make_report("runner_batch_test", opts, results,
                                          batch.wall_seconds());
  out.report_core = dump(runner::deterministic_view(report), 2);
  out.wall_seconds = batch.wall_seconds();
  return out;
}

TEST(BatchDeterminism, TwentySixScenarioSweepIsIdenticalAcrossWorkerCounts) {
  const SweepOutput serial = run_sweep(1);
  const SweepOutput parallel = run_sweep(8);
  // Byte-identical per-scenario rows and aggregated deterministic report.
  EXPECT_EQ(serial.text, parallel.text);
  EXPECT_EQ(serial.report_core, parallel.report_core);
  // Sanity: the sweep actually simulated something.
  EXPECT_NE(serial.text.find("1 done="), std::string::npos);
  EXPECT_GE(serial.report_core.size(), 1000u);

  if (std::thread::hardware_concurrency() >= 4) {
    const double speedup = serial.wall_seconds / parallel.wall_seconds;
    std::printf("[ sweep    ] 26 scenarios: 1 worker %.2fs, 8 workers "
                "%.2fs (%.2fx)\n",
                serial.wall_seconds, parallel.wall_seconds, speedup);
    // Conservative bound: even a loaded 4-core runner parallelizes an
    // embarrassingly parallel sweep well past this.
    EXPECT_GT(speedup, 1.3);
  }
}

// --- golden trajectory digest ---------------------------------------------

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a_bytes(h, &v, sizeof v);
}

std::uint64_t fnv1a_double(std::uint64_t h, double v) {
  return fnv1a_u64(h, std::bit_cast<std::uint64_t>(v));
}

/// Digests every deterministic field of a result sequence. Wall-clock
/// fields are deliberately excluded.
std::uint64_t digest_results(const std::vector<RunResult>& results) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const RunResult& r : results) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(r.id));
    h = fnv1a_bytes(h, r.name.data(), r.name.size());
    h = fnv1a_u64(h, r.seed);
    h = fnv1a_double(h, r.end_time);
    h = fnv1a_double(h, r.local_completion);
    h = fnv1a_u64(h, r.completed ? 1 : 0);
    h = fnv1a_u64(h, r.events_executed);
    h = fnv1a_u64(h, r.events_scheduled);
    h = fnv1a_u64(h, r.events_cancelled);
    h = fnv1a_u64(h, r.peak_pending);
    h = fnv1a_bytes(h, r.text.data(), r.text.size());
  }
  return h;
}

std::vector<RunResult> run_golden_jobs(int workers) {
  // Table-I torrent 3 at test scale, under four independent seeds.
  const swarm::ScenarioConfig cfg =
      swarm::scenario_from_table1(3, tiny_limits());
  std::vector<BatchJob> jobs;
  for (int i = 1; i <= 4; ++i) {
    BatchJob job;
    job.id = i;
    job.name = "golden-" + std::to_string(i);
    job.config = cfg;
    job.seed = sim::fork_seed(20061025, static_cast<std::uint64_t>(i));
    jobs.push_back(std::move(job));
  }
  BatchOptions opts;
  opts.jobs = workers;
  opts.master_seed = 20061025;
  BatchRunner batch(opts);
  return batch.run(jobs, [](const BatchJob& job) {
    return runner::run_scenario_job(job, 200.0);
  });
}

// Pins the simulated trajectory of four fixed (scenario, seed) pairs to a
// constant. Every layer feeds this digest — RNG draw sequence, event
// fire order, picker candidate order, fluid-network rate updates — so an
// accidental behavior change anywhere in the hot path fails here, at any
// worker count. Update the constant ONLY for a change that intentionally
// alters the trajectory, and call it out in the commit message.
TEST(BatchDeterminism, GoldenTrajectoryDigestStableAcrossWorkerCounts) {
  constexpr std::uint64_t kGoldenDigest = 0xb11876bebeb36d35ull;
  const std::uint64_t serial = digest_results(run_golden_jobs(1));
  const std::uint64_t parallel = digest_results(run_golden_jobs(8));
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, kGoldenDigest)
      << "trajectory digest changed: 0x" << std::hex << serial;
}

std::vector<RunResult> run_faulted_golden_jobs(int workers) {
  // Same Table-I torrent, but under a compound fault plan (message loss
  // + delay jitter, random crashes, flow kills, one tracker outage), so
  // the digest also pins the fault-injection RNG stream, the liveness
  // timers, and the retry/backoff machinery.
  swarm::ScenarioConfig cfg = swarm::scenario_from_table1(3, tiny_limits());
  cfg.faults.message_loss_rate = 0.05;
  cfg.faults.message_delay_jitter = 0.25;
  cfg.faults.peer_crash_rate = 1.0 / 400.0;
  cfg.faults.flow_kill_rate = 1.0 / 200.0;
  cfg.faults.tracker_outages.push_back({40.0, 30.0});
  std::vector<BatchJob> jobs;
  for (int i = 1; i <= 4; ++i) {
    BatchJob job;
    job.id = i;
    job.name = "golden-faulted-" + std::to_string(i);
    job.config = cfg;
    job.seed = sim::fork_seed(20061025, 100 + static_cast<std::uint64_t>(i));
    jobs.push_back(std::move(job));
  }
  BatchOptions opts;
  opts.jobs = workers;
  opts.master_seed = 20061025;
  BatchRunner batch(opts);
  return batch.run(jobs, [](const BatchJob& job) {
    return runner::run_scenario_job(job, 200.0);
  });
}

// Same contract as the fault-free digest above, but on the fault path:
// replay identity must hold when the fault injector is drawing from its
// forked RNG stream and peers exercise retries, ghost eviction, and
// request timeouts. Update the constant ONLY for an intentional
// trajectory change, and call it out in the commit message.
TEST(BatchDeterminism, FaultedGoldenTrajectoryDigestStable) {
  constexpr std::uint64_t kFaultedGoldenDigest = 0xbaa33ec6ee7d33b2ull;
  const std::uint64_t serial = digest_results(run_faulted_golden_jobs(1));
  const std::uint64_t parallel = digest_results(run_faulted_golden_jobs(8));
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, kFaultedGoldenDigest)
      << "faulted trajectory digest changed: 0x" << std::hex << serial;
}

TEST(BatchDeterminism, SimulationIndependentOfHostThread) {
  // The same (config, seed) job run from an ad-hoc thread and from the
  // main thread must agree event for event.
  BatchJob job;
  job.id = 3;
  job.config = swarm::scenario_from_table1(3, tiny_limits());
  job.seed = sim::fork_seed(42, 3);
  const RunResult main_thread = runner::run_scenario_job(job, 200.0);
  RunResult other_thread;
  std::thread([&] { other_thread = runner::run_scenario_job(job, 200.0); })
      .join();
  EXPECT_EQ(main_thread.end_time, other_thread.end_time);
  EXPECT_EQ(main_thread.local_completion, other_thread.local_completion);
  EXPECT_EQ(main_thread.events_executed, other_thread.events_executed);
}

}  // namespace
}  // namespace swarmlab
