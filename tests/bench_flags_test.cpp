// Regression tests for the shared bench flag parser (bench_util.h):
// the --observe/--trace observation flags, their error paths (bad
// scope, bad format, duplicates -> shared usage message, exit 2), and
// the ObservationPlan each combination produces.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.h"

namespace swarmlab::bench {
namespace {

using Scope = swarm::ObservationPlan::Scope;
using TraceFormat = swarm::ObservationPlan::TraceFormat;

/// argv builder (argv[0] = tool name; strings stay alive in `store`).
struct Argv {
  explicit Argv(std::vector<std::string> args) : store(std::move(args)) {
    store.insert(store.begin(), "bench_test");
    for (auto& s : store) ptrs.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> store;
  std::vector<char*> ptrs;
};

BenchOptions parse(std::vector<std::string> args) {
  Argv a(std::move(args));
  return parse_bench_options(a.argc(), a.argv());
}

TEST(BenchFlags, DefaultsAreLocalAndUntraced) {
  const BenchOptions opts = parse({});
  EXPECT_EQ(opts.observe_scope, Scope::kLocal);
  EXPECT_EQ(opts.trace_format, TraceFormat::kNone);
  const auto plan = observation_plan("tool", opts, 3);
  EXPECT_FALSE(plan.swarm_scope());
  EXPECT_TRUE(plan.trace_path.empty());
}

TEST(BenchFlags, ObserveScopes) {
  EXPECT_EQ(parse({"--observe", "local"}).observe_scope, Scope::kLocal);
  EXPECT_EQ(parse({"--observe", "all"}).observe_scope, Scope::kAll);
  const BenchOptions sampled = parse({"--observe", "sampled-12"});
  EXPECT_EQ(sampled.observe_scope, Scope::kSampled);
  EXPECT_EQ(sampled.observe_k, 12u);
}

TEST(BenchFlags, TraceFormats) {
  EXPECT_EQ(parse({"--trace"}).trace_format, TraceFormat::kJsonl);
  EXPECT_EQ(parse({"--trace=jsonl"}).trace_format, TraceFormat::kJsonl);
  EXPECT_EQ(parse({"--trace=csv"}).trace_format, TraceFormat::kCsv);
}

TEST(BenchFlags, PlanCarriesPerJobTracePath) {
  const auto jsonl =
      observation_plan("bench_x", parse({"--trace", "--observe", "all"}), 7);
  EXPECT_EQ(jsonl.trace_path, "bench_x.job7.trace.jsonl");
  EXPECT_EQ(jsonl.scope, Scope::kAll);
  const auto csv = observation_plan("bench_x", parse({"--trace=csv"}), 2);
  EXPECT_EQ(csv.trace_path, "bench_x.job2.trace.csv");
}

using BenchFlagsDeath = ::testing::Test;

TEST(BenchFlagsDeath, BadObserveScopeExitsWithUsage) {
  EXPECT_EXIT(parse({"--observe", "everything"}),
              ::testing::ExitedWithCode(2), "usage:");
  EXPECT_EXIT(parse({"--observe", "sampled-"}),
              ::testing::ExitedWithCode(2), "usage:");
  EXPECT_EXIT(parse({"--observe", "sampled-0"}),
              ::testing::ExitedWithCode(2), "usage:");
  EXPECT_EXIT(parse({"--observe", "sampled-x"}),
              ::testing::ExitedWithCode(2), "usage:");
  EXPECT_EXIT(parse({"--observe"}), ::testing::ExitedWithCode(2),
              "usage:");
}

TEST(BenchFlagsDeath, BadTraceFormatExitsWithUsage) {
  EXPECT_EXIT(parse({"--trace=xml"}), ::testing::ExitedWithCode(2),
              "usage:");
  EXPECT_EXIT(parse({"--trace="}), ::testing::ExitedWithCode(2), "usage:");
}

TEST(BenchFlagsDeath, DuplicateFlagsExitWithUsage) {
  EXPECT_EXIT(parse({"--observe", "all", "--observe", "local"}),
              ::testing::ExitedWithCode(2), "usage:");
  EXPECT_EXIT(parse({"--trace", "--trace=csv"}),
              ::testing::ExitedWithCode(2), "usage:");
}

TEST(BenchFlagsDeath, UnknownArgumentStillExitsWithUsage) {
  EXPECT_EXIT(parse({"--frobnicate"}), ::testing::ExitedWithCode(2),
              "usage:");
}

}  // namespace
}  // namespace swarmlab::bench
