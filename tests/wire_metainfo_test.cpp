// Content geometry and .torrent metainfo tests.
#include <gtest/gtest.h>

#include "wire/geometry.h"
#include "wire/messages.h"  // WireError
#include "wire/metainfo.h"

namespace swarmlab::wire {
namespace {

TEST(Geometry, EvenSplit) {
  const ContentGeometry geo(1024 * 1024, 256 * 1024, 16 * 1024);
  EXPECT_EQ(geo.num_pieces(), 4u);
  EXPECT_EQ(geo.piece_bytes(3), 256u * 1024);
  EXPECT_EQ(geo.blocks_in_piece(0), 16u);
  EXPECT_EQ(geo.total_blocks(), 64u);
}

TEST(Geometry, ShortLastPiece) {
  // 1 MiB + 100 KiB: 5 pieces, last one short.
  const ContentGeometry geo(1024 * 1024 + 100 * 1024, 256 * 1024, 16 * 1024);
  EXPECT_EQ(geo.num_pieces(), 5u);
  EXPECT_EQ(geo.piece_bytes(4), 100u * 1024);
  EXPECT_EQ(geo.blocks_in_piece(4), 7u);  // 100 KiB / 16 KiB = 6.25
}

TEST(Geometry, ShortLastBlock) {
  // last piece 100 KiB: 6 full blocks + one 4 KiB block.
  const ContentGeometry geo(1024 * 1024 + 100 * 1024, 256 * 1024, 16 * 1024);
  EXPECT_EQ(geo.block_bytes({4, 5}), 16u * 1024);
  EXPECT_EQ(geo.block_bytes({4, 6}), 4u * 1024);
  EXPECT_EQ(geo.total_blocks(), 4u * 16 + 7);
}

TEST(Geometry, BlockOffsets) {
  const ContentGeometry geo(1024 * 1024, 256 * 1024, 16 * 1024);
  EXPECT_EQ(geo.block_offset({0, 0}), 0u);
  EXPECT_EQ(geo.block_offset({0, 3}), 3u * 16 * 1024);
  EXPECT_EQ(geo.block_at_offset(3u * 16 * 1024), 3u);
}

TEST(Geometry, SinglePieceContent) {
  const ContentGeometry geo(10 * 1024, 256 * 1024, 16 * 1024);
  EXPECT_EQ(geo.num_pieces(), 1u);
  EXPECT_EQ(geo.piece_bytes(0), 10u * 1024);
  EXPECT_EQ(geo.blocks_in_piece(0), 1u);
  EXPECT_EQ(geo.block_bytes({0, 0}), 10u * 1024);
}

TEST(Metainfo, SyntheticHashesVerify) {
  const Metainfo meta = make_synthetic_metainfo(
      "http://tracker.example/announce", "content", 600 * 1024, 256 * 1024);
  ASSERT_EQ(meta.piece_hashes.size(), 3u);
  for (PieceIndex p = 0; p < 3; ++p) {
    const auto bytes = synthetic_piece_bytes(meta, p);
    EXPECT_EQ(Sha1::hash(std::span<const std::uint8_t>(bytes)).hex(),
              meta.piece_hashes[p].hex());
  }
}

TEST(Metainfo, SyntheticPiecesDiffer) {
  const Metainfo meta =
      make_synthetic_metainfo("t", "content", 512 * 1024, 256 * 1024);
  EXPECT_NE(meta.piece_hashes[0], meta.piece_hashes[1]);
  const Metainfo other =
      make_synthetic_metainfo("t", "other-name", 512 * 1024, 256 * 1024);
  EXPECT_NE(meta.piece_hashes[0], other.piece_hashes[0]);
}

TEST(Metainfo, EncodeDecodeRoundTrip) {
  const Metainfo meta = make_synthetic_metainfo(
      "http://tracker.example/announce", "movie.mkv", 1000 * 1000);
  const std::string torrent = encode_metainfo(meta);
  EXPECT_EQ(decode_metainfo(torrent), meta);
}

TEST(Metainfo, InfoHashStableAndSensitive) {
  const Metainfo a = make_synthetic_metainfo("t", "n", 512 * 1024);
  Metainfo b = a;
  EXPECT_EQ(info_hash(a), info_hash(b));
  b.name = "other";
  EXPECT_NE(info_hash(a), info_hash(b));
  // announce is outside the info dict: same identity.
  Metainfo c = a;
  c.announce = "http://other/announce";
  EXPECT_EQ(info_hash(a), info_hash(c));
}

TEST(Metainfo, RejectsMalformed) {
  EXPECT_THROW(decode_metainfo("garbage"), BencodeError);
  EXPECT_THROW(decode_metainfo("de"), BencodeError);
  // Piece-hash string length not a multiple of 20.
  const std::string bad =
      "d8:announce1:t4:infod6:lengthi1024e4:name1:n12:piece "
      "lengthi512e6:pieces3:abcee";
  EXPECT_THROW(decode_metainfo(bad), WireError);
}

TEST(Metainfo, RejectsHashCountMismatch) {
  Metainfo meta = make_synthetic_metainfo("t", "n", 512 * 1024);  // 2 pieces
  meta.piece_hashes.pop_back();
  EXPECT_THROW(decode_metainfo(encode_metainfo(meta)), WireError);
}

TEST(Metainfo, GeometryMatchesFields) {
  const Metainfo meta = make_synthetic_metainfo("t", "n", 700 * 1024);
  EXPECT_EQ(meta.geometry().num_pieces(), 3u);
  EXPECT_EQ(meta.geometry().total_bytes(), 700u * 1024);
}

}  // namespace
}  // namespace swarmlab::wire
