// Bencode round trips and malformed-input rejection.
#include <gtest/gtest.h>

#include "wire/bencode.h"

namespace swarmlab::wire {
namespace {

TEST(Bencode, EncodeInteger) {
  EXPECT_EQ(bencode(BValue(42)), "i42e");
  EXPECT_EQ(bencode(BValue(-7)), "i-7e");
  EXPECT_EQ(bencode(BValue(0)), "i0e");
}

TEST(Bencode, EncodeString) {
  EXPECT_EQ(bencode(BValue("spam")), "4:spam");
  EXPECT_EQ(bencode(BValue("")), "0:");
}

TEST(Bencode, EncodeList) {
  BValue::List list;
  list.emplace_back("spam");
  list.emplace_back(42);
  EXPECT_EQ(bencode(BValue(list)), "l4:spami42ee");
}

TEST(Bencode, EncodeDictSortsKeys) {
  BValue::Dict dict;
  dict.emplace("zebra", BValue(1));
  dict.emplace("apple", BValue(2));
  EXPECT_EQ(bencode(BValue(dict)), "d5:applei2e5:zebrai1ee");
}

TEST(Bencode, DecodeInteger) {
  EXPECT_EQ(bdecode("i42e").as_int(), 42);
  EXPECT_EQ(bdecode("i-42e").as_int(), -42);
  EXPECT_EQ(bdecode("i0e").as_int(), 0);
}

TEST(Bencode, DecodeString) {
  EXPECT_EQ(bdecode("4:spam").as_string(), "spam");
  EXPECT_EQ(bdecode("0:").as_string(), "");
}

TEST(Bencode, DecodeStringWithBinaryBytes) {
  const std::string data = std::string("3:") + '\x00' + '\xff' + 'a';
  EXPECT_EQ(bdecode(data).as_string().size(), 3u);
}

TEST(Bencode, DecodeNestedCompact) {
  const BValue v = bdecode("d4:listli1ei2ee3:str3:abce");
  EXPECT_EQ(v.at("list").as_list().size(), 2u);
  EXPECT_EQ(v.at("list").as_list()[1].as_int(), 2);
  EXPECT_EQ(v.at("str").as_string(), "abc");
}

TEST(Bencode, RoundTripComplexValue) {
  BValue::Dict info;
  info.emplace("length", BValue(123456789));
  info.emplace("name", BValue("content.bin"));
  BValue::List tiers;
  tiers.emplace_back("http://tracker/announce");
  BValue::Dict root;
  root.emplace("announce-list", BValue(tiers));
  root.emplace("info", BValue(info));
  const BValue original{root};
  EXPECT_EQ(bdecode(bencode(original)), original);
}

TEST(Bencode, FindReturnsNullForMissingKey) {
  const BValue v = bdecode("d1:ai1ee");
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_THROW((void)v.at("b"), BencodeError);
}

TEST(Bencode, TypeMismatchThrows) {
  EXPECT_THROW((void)bdecode("i1e").as_string(), BencodeError);
  EXPECT_THROW((void)bdecode("1:a").as_int(), BencodeError);
  EXPECT_THROW((void)bdecode("le").as_dict(), BencodeError);
  EXPECT_THROW((void)bdecode("de").as_list(), BencodeError);
}

TEST(Bencode, RejectsTruncatedInput) {
  EXPECT_THROW(bdecode("i42"), BencodeError);
  EXPECT_THROW(bdecode("4:spa"), BencodeError);
  EXPECT_THROW(bdecode("l"), BencodeError);
  EXPECT_THROW(bdecode("d3:key"), BencodeError);
  EXPECT_THROW(bdecode(""), BencodeError);
}

TEST(Bencode, RejectsTrailingBytes) {
  EXPECT_THROW(bdecode("i42ei43e"), BencodeError);
}

TEST(Bencode, PrefixDecodeAllowsTrailingBytes) {
  std::size_t pos = 0;
  EXPECT_EQ(bdecode_prefix("i42ei43e", pos).as_int(), 42);
  EXPECT_EQ(pos, 4u);
  EXPECT_EQ(bdecode_prefix("i42ei43e", pos).as_int(), 43);
  EXPECT_EQ(pos, 8u);
}

TEST(Bencode, RejectsNonCanonicalIntegers) {
  EXPECT_THROW(bdecode("i042e"), BencodeError);
  EXPECT_THROW(bdecode("i-0e"), BencodeError);
  EXPECT_THROW(bdecode("i--1e"), BencodeError);
  EXPECT_THROW(bdecode("ie"), BencodeError);
  EXPECT_THROW(bdecode("i1xe"), BencodeError);
}

TEST(Bencode, RejectsNonCanonicalStringLength) {
  EXPECT_THROW(bdecode("04:spam"), BencodeError);
}

TEST(Bencode, RejectsHugeStringLength) {
  EXPECT_THROW(bdecode("999999999999:x"), BencodeError);
}

TEST(Bencode, RejectsIntegerOverflow) {
  EXPECT_THROW(bdecode("i99999999999999999999e"), BencodeError);
}

TEST(Bencode, RejectsUnsortedDictKeys) {
  EXPECT_THROW(bdecode("d1:bi1e1:ai2ee"), BencodeError);
}

TEST(Bencode, RejectsDuplicateDictKeys) {
  EXPECT_THROW(bdecode("d1:ai1e1:ai2ee"), BencodeError);
}

TEST(Bencode, RejectsNonStringDictKey) {
  EXPECT_THROW(bdecode("di1ei2ee"), BencodeError);
}

TEST(Bencode, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "l";
  for (int i = 0; i < 100; ++i) deep += "e";
  EXPECT_THROW(bdecode(deep), BencodeError);
}

TEST(Bencode, EmptyContainers) {
  EXPECT_EQ(bdecode("le").as_list().size(), 0u);
  EXPECT_EQ(bdecode("de").as_dict().size(), 0u);
  EXPECT_EQ(bencode(BValue(BValue::List{})), "le");
  EXPECT_EQ(bencode(BValue(BValue::Dict{})), "de");
}

}  // namespace
}  // namespace swarmlab::wire
