// Tracker HTTP codec tests (BEP 3 announce, BEP 23 compact peers).
#include <gtest/gtest.h>

#include "wire/messages.h"  // WireError
#include "wire/tracker_codec.h"

namespace swarmlab::wire {
namespace {

TEST(PercentEncode, UnreservedPassThrough) {
  EXPECT_EQ(percent_encode("AZaz09-._~"), "AZaz09-._~");
}

TEST(PercentEncode, EncodesEverythingElse) {
  EXPECT_EQ(percent_encode(" "), "%20");
  EXPECT_EQ(percent_encode("/"), "%2F");
  const char binary[] = {'\x00', '\xff', '\x10'};
  EXPECT_EQ(percent_encode(std::string_view(binary, 3)), "%00%FF%10");
}

TEST(AnnounceUrl, ContainsAllParameters) {
  AnnounceRequest req;
  req.info_hash = Sha1::hash("some torrent");
  req.peer_id.fill('A');
  req.port = 6881;
  req.uploaded = 100;
  req.downloaded = 200;
  req.left = 300;
  req.event = TrackerEvent::kStarted;
  const std::string url =
      build_announce_url("http://tracker.example/announce", req);
  EXPECT_EQ(url.find("http://tracker.example/announce?info_hash="), 0u);
  EXPECT_NE(url.find("&peer_id=AAAAAAAAAAAAAAAAAAAA"), std::string::npos);
  EXPECT_NE(url.find("&port=6881"), std::string::npos);
  EXPECT_NE(url.find("&uploaded=100"), std::string::npos);
  EXPECT_NE(url.find("&downloaded=200"), std::string::npos);
  EXPECT_NE(url.find("&left=300"), std::string::npos);
  EXPECT_NE(url.find("&numwant=50"), std::string::npos);
  EXPECT_NE(url.find("&compact=1"), std::string::npos);
  EXPECT_NE(url.find("&event=started"), std::string::npos);
}

TEST(AnnounceUrl, NoEventParamWhenNone) {
  AnnounceRequest req;
  req.event = TrackerEvent::kNone;
  const std::string url = build_announce_url("http://t/a", req);
  EXPECT_EQ(url.find("&event="), std::string::npos);
}

AnnounceResponse sample_response() {
  AnnounceResponse resp;
  resp.interval = 1800;
  resp.complete = 3;
  resp.incomplete = 17;
  resp.peers.push_back({0xC0A80001u, 6881, std::nullopt});   // 192.168.0.1
  resp.peers.push_back({0x0A000001u, 51413, std::nullopt});  // 10.0.0.1
  return resp;
}

TEST(AnnounceResponse, CompactRoundTrip) {
  const AnnounceResponse resp = sample_response();
  const std::string encoded = encode_announce_response(resp, true);
  EXPECT_EQ(decode_announce_response(encoded), resp);
}

TEST(AnnounceResponse, DictRoundTrip) {
  AnnounceResponse resp = sample_response();
  resp.peers[0].peer_id = "M4-0-2--aaaaaaaaaaaa";
  const std::string encoded = encode_announce_response(resp, false);
  const AnnounceResponse decoded = decode_announce_response(encoded);
  EXPECT_EQ(decoded, resp);
  EXPECT_EQ(decoded.peers[0].peer_id, "M4-0-2--aaaaaaaaaaaa");
}

TEST(AnnounceResponse, CompactEncodingIsSixBytesPerPeer) {
  const std::string encoded =
      encode_announce_response(sample_response(), true);
  const BValue root = bdecode(encoded);
  EXPECT_EQ(root.at("peers").as_string().size(), 12u);
}

TEST(AnnounceResponse, FailureReasonShortCircuits) {
  AnnounceResponse resp;
  resp.failure_reason = "torrent not registered";
  const std::string encoded = encode_announce_response(resp, true);
  const AnnounceResponse decoded = decode_announce_response(encoded);
  ASSERT_TRUE(decoded.failure_reason.has_value());
  EXPECT_EQ(*decoded.failure_reason, "torrent not registered");
}

TEST(AnnounceResponse, MalformedCompactPeersRejected) {
  BValue::Dict root;
  root.emplace("interval", BValue(1800));
  root.emplace("peers", BValue(std::string("12345")));  // not 6-aligned
  EXPECT_THROW(decode_announce_response(bencode(BValue(root))), WireError);
}

TEST(AnnounceResponse, MalformedIpRejected) {
  BValue::Dict entry;
  entry.emplace("ip", BValue("999.1.1.1"));
  entry.emplace("port", BValue(1));
  BValue::List peers;
  peers.emplace_back(entry);
  BValue::Dict root;
  root.emplace("interval", BValue(1800));
  root.emplace("peers", BValue(peers));
  EXPECT_THROW(decode_announce_response(bencode(BValue(root))), WireError);

  entry["ip"] = BValue("1.2.3");
  peers.clear();
  peers.emplace_back(entry);
  root["peers"] = BValue(peers);
  EXPECT_THROW(decode_announce_response(bencode(BValue(root))), WireError);
}

TEST(AnnounceResponse, MissingIntervalRejected) {
  EXPECT_THROW(decode_announce_response("de"), BencodeError);
}

TEST(AnnounceResponse, PortBoundariesSurvive) {
  AnnounceResponse resp;
  resp.interval = 60;
  resp.peers.push_back({0xFFFFFFFFu, 65535, std::nullopt});
  resp.peers.push_back({0u, 1, std::nullopt});
  EXPECT_EQ(decode_announce_response(encode_announce_response(resp, true)),
            resp);
}

}  // namespace
}  // namespace swarmlab::wire
