// Resilience-layer tests for the BatchRunner: failure containment with
// per-result statuses, deterministic hostile-job handling across worker
// counts, checkpoint/resume byte-identity (interrupted sweeps and
// hostile-then-clean reruns), checkpoint robustness (torn lines, stale
// headers), deterministic retries, and the checkpoint entry round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "swarmlab/swarmlab.h"

namespace swarmlab {
namespace {

using runner::BatchJob;
using runner::BatchOptions;
using runner::BatchRunner;
using runner::HostileSpec;
using runner::JobContext;
using runner::JobStatus;
using runner::RunResult;

swarm::ScaleLimits tiny_limits() {
  swarm::ScaleLimits limits;
  limits.max_peers = 24;
  limits.max_pieces = 16;
  limits.min_pieces = 16;
  limits.duration = 6000.0;
  return limits;
}

constexpr std::uint64_t kMasterSeed = 20061025;

std::vector<BatchJob> tiny_jobs() {
  return runner::table1_jobs(kMasterSeed, tiny_limits());
}

/// Batch options for the tiny sweep. The livelock threshold is lowered
/// so an induced wedge trips in milliseconds — still at a deterministic
/// event count, so reports stay identical for any worker count.
BatchOptions tiny_opts(int workers) {
  BatchOptions opts;
  opts.jobs = workers;
  opts.master_seed = kMasterSeed;
  opts.monitor.livelock_events = 50'000;
  return opts;
}

runner::JobFnCtx tiny_job_fn() {
  return [](const BatchJob& job, const JobContext& ctx) {
    return runner::run_scenario_job(
        job, ctx, 200.0,
        [&job](const swarm::ScenarioRunner&,
               const instrument::LocalPeerLog& log, RunResult& res) {
          char row[96];
          std::snprintf(row, sizeof row, "%d done=%.2f peers=%zu\n", job.id,
                        res.local_completion, log.records().size());
          res.text = row;
          res.metrics["peers_seen"] =
              static_cast<unsigned long long>(log.records().size());
        });
  };
}

struct SweepOutput {
  std::string text;         // concatenated streamed rows
  std::string report_core;  // dump of the deterministic report view
  std::vector<RunResult> results;
  std::size_t resumed = 0;
};

SweepOutput run_tiny_sweep(BatchOptions opts, std::vector<BatchJob> jobs) {
  BatchRunner batch(opts);
  SweepOutput out;
  out.results = batch.run(jobs, tiny_job_fn(),
                          [&](const RunResult& r) { out.text += r.text; });
  const auto report = runner::make_report("runner_resilience_test", opts,
                                          out.results, batch.wall_seconds());
  out.report_core = dump(runner::deterministic_view(report), 2);
  out.resumed = batch.resumed_jobs();
  return out;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

// --- failure containment -----------------------------------------------------

TEST(ResilienceSweep, HostileJobsAreContainedWithCorrectStatuses) {
  auto jobs = tiny_jobs();
  jobs[6].hostile.mode = HostileSpec::Mode::kWedge;   // id 7
  jobs[12].hostile.mode = HostileSpec::Mode::kThrow;  // id 13

  const SweepOutput out = run_tiny_sweep(tiny_opts(1), jobs);
  ASSERT_EQ(out.results.size(), 26u);
  int failed = 0;
  for (const auto& r : out.results) {
    if (r.id == 7) {
      EXPECT_EQ(r.status, JobStatus::kWedged);
      EXPECT_NE(r.error.find("livelock"), std::string::npos) << r.error;
      ++failed;
    } else if (r.id == 13) {
      EXPECT_EQ(r.status, JobStatus::kFailed);
      EXPECT_NE(r.error.find("induced crash"), std::string::npos) << r.error;
      ++failed;
    } else {
      EXPECT_TRUE(r.ok()) << "job " << r.id << ": " << r.error;
    }
  }
  EXPECT_EQ(failed, 2);

  const std::string summary = runner::failure_summary(out.results);
  EXPECT_NE(summary.find("2 of 26 jobs did not complete"),
            std::string::npos)
      << summary;

  // Report-level failure count and per-entry status land in the report.
  ASSERT_NE(out.report_core.find("\"failed\": 2"), std::string::npos);
  EXPECT_NE(out.report_core.find("\"status\": \"wedged\""),
            std::string::npos);
  EXPECT_NE(out.report_core.find("\"status\": \"failed\""),
            std::string::npos);
}

TEST(ResilienceSweep, HostileSweepIsIdenticalAcrossWorkerCounts) {
  // Livelock trips at a deterministic event count, and a throw is a
  // deterministic simulated event — so even a failing sweep's rows and
  // deterministic report must not depend on the worker count.
  auto jobs = tiny_jobs();
  jobs[6].hostile.mode = HostileSpec::Mode::kWedge;
  jobs[12].hostile.mode = HostileSpec::Mode::kThrow;

  const SweepOutput serial = run_tiny_sweep(tiny_opts(1), jobs);
  const SweepOutput parallel = run_tiny_sweep(tiny_opts(8), jobs);
  EXPECT_EQ(serial.text, parallel.text);
  EXPECT_EQ(serial.report_core, parallel.report_core);
}

// --- checkpoint / resume -----------------------------------------------------

TEST(ResilienceSweep, InterruptedThenResumedSweepIsByteIdentical) {
  // Emulate a kill after K of 26 scenarios by checkpointing a K-job
  // prefix batch, then resuming the full batch from the same file. The
  // merged output must match an uninterrupted sweep byte for byte — at
  // one worker and at eight.
  const auto all = tiny_jobs();
  constexpr std::size_t kFinishedBeforeKill = 9;

  for (const int workers : {1, 8}) {
    SCOPED_TRACE(testing::Message() << "workers=" << workers);
    const SweepOutput uninterrupted = run_tiny_sweep(tiny_opts(workers), all);

    const std::string ckpt = temp_path("resilience_resume.jsonl");
    std::remove(ckpt.c_str());

    BatchOptions opts = tiny_opts(workers);
    opts.checkpoint_path = ckpt;
    const std::vector<BatchJob> prefix(all.begin(),
                                       all.begin() + kFinishedBeforeKill);
    (void)run_tiny_sweep(opts, prefix);  // "killed" after K scenarios

    const SweepOutput resumed = run_tiny_sweep(opts, all);
    EXPECT_EQ(resumed.resumed, kFinishedBeforeKill);
    EXPECT_EQ(resumed.text, uninterrupted.text);
    EXPECT_EQ(resumed.report_core, uninterrupted.report_core);
    std::remove(ckpt.c_str());
  }
}

TEST(ResilienceSweep, HostileThenCleanResumeMatchesCleanSweep) {
  // First pass: two jobs misbehave, 24 complete and are checkpointed.
  // Second pass without hostility reuses the 24 and re-runs only the
  // two failures — ending byte-identical to a sweep that never failed.
  const auto clean_jobs = tiny_jobs();
  const SweepOutput clean = run_tiny_sweep(tiny_opts(1), clean_jobs);

  const std::string ckpt = temp_path("resilience_hostile_resume.jsonl");
  std::remove(ckpt.c_str());

  auto hostile_jobs = clean_jobs;
  hostile_jobs[6].hostile.mode = HostileSpec::Mode::kWedge;
  hostile_jobs[12].hostile.mode = HostileSpec::Mode::kThrow;
  BatchOptions opts = tiny_opts(1);
  opts.checkpoint_path = ckpt;
  const SweepOutput first = run_tiny_sweep(opts, hostile_jobs);
  EXPECT_FALSE(runner::failure_summary(first.results).empty());

  const SweepOutput second = run_tiny_sweep(opts, clean_jobs);
  EXPECT_EQ(second.resumed, 24u);
  EXPECT_TRUE(runner::failure_summary(second.results).empty());
  EXPECT_EQ(second.text, clean.text);
  EXPECT_EQ(second.report_core, clean.report_core);
  std::remove(ckpt.c_str());
}

TEST(ResilienceSweep, TornCheckpointTailLineIsIgnored) {
  // A kill can land mid-append; the torn final line must be skipped
  // while every complete line before it is still reused.
  const auto all = tiny_jobs();
  const std::string ckpt = temp_path("resilience_torn.jsonl");
  std::remove(ckpt.c_str());

  BatchOptions opts = tiny_opts(1);
  opts.checkpoint_path = ckpt;
  const std::vector<BatchJob> prefix(all.begin(), all.begin() + 5);
  (void)run_tiny_sweep(opts, prefix);

  {
    // Chop the file mid-way through its final line.
    std::ifstream in(ckpt);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string contents = buf.str();
    ASSERT_GT(contents.size(), 40u);
    contents.resize(contents.size() - 25);
    std::ofstream out(ckpt, std::ios::trunc);
    out << contents;
  }

  const SweepOutput uninterrupted = run_tiny_sweep(tiny_opts(1), all);
  const SweepOutput resumed = run_tiny_sweep(opts, all);
  EXPECT_EQ(resumed.resumed, 4u);  // 5 checkpointed, last line torn
  EXPECT_EQ(resumed.text, uninterrupted.text);
  EXPECT_EQ(resumed.report_core, uninterrupted.report_core);
  std::remove(ckpt.c_str());
}

TEST(ResilienceSweep, CheckpointFromDifferentSweepIsNotReused) {
  // Same job list, different master seed in the header: the stale file
  // must be discarded wholesale (and rewritten), not merged.
  const auto all = tiny_jobs();
  const std::string ckpt = temp_path("resilience_stale.jsonl");
  std::remove(ckpt.c_str());

  BatchOptions other = tiny_opts(1);
  other.master_seed = kMasterSeed + 1;
  other.checkpoint_path = ckpt;
  const std::vector<BatchJob> prefix(all.begin(), all.begin() + 3);
  {
    BatchRunner batch(other);
    (void)batch.run(prefix, tiny_job_fn());
  }

  BatchOptions opts = tiny_opts(1);
  opts.checkpoint_path = ckpt;
  BatchRunner batch(opts);
  (void)batch.run(prefix, tiny_job_fn());
  EXPECT_EQ(batch.resumed_jobs(), 0u);

  // The file now belongs to the current sweep: a rerun reuses it.
  BatchRunner again(opts);
  (void)again.run(prefix, tiny_job_fn());
  EXPECT_EQ(again.resumed_jobs(), 3u);
  std::remove(ckpt.c_str());
}

// --- retries -----------------------------------------------------------------

TEST(ResilienceSweep, RetryRerunsFailedJobOnOriginalSeed) {
  // Hostility limited to attempt 1 + one retry: the job fails once,
  // reruns on the SAME seed, succeeds, and records attempts=2 — with
  // rows and trajectory identical to a sweep that never failed.
  const auto clean = run_tiny_sweep(tiny_opts(1), tiny_jobs());

  auto jobs = tiny_jobs();
  jobs[12].hostile.mode = HostileSpec::Mode::kThrow;  // id 13
  jobs[12].hostile.attempts = 1;
  BatchOptions opts = tiny_opts(1);
  opts.retries = 1;
  const SweepOutput out = run_tiny_sweep(opts, jobs);

  EXPECT_TRUE(runner::failure_summary(out.results).empty());
  EXPECT_EQ(out.results[12].attempts, 2);
  EXPECT_EQ(out.results[12].status, JobStatus::kCompleted);
  EXPECT_EQ(out.text, clean.text);
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    EXPECT_EQ(out.results[i].end_time, clean.results[i].end_time);
    EXPECT_EQ(out.results[i].events_executed,
              clean.results[i].events_executed);
  }
}

TEST(ResilienceSweep, DeterministicFailureStillFailsAfterRetries) {
  auto jobs = tiny_jobs();
  jobs[12].hostile.mode = HostileSpec::Mode::kThrow;  // every attempt
  BatchOptions opts = tiny_opts(1);
  opts.retries = 2;
  const SweepOutput out = run_tiny_sweep(opts, jobs);
  EXPECT_EQ(out.results[12].status, JobStatus::kFailed);
  EXPECT_EQ(out.results[12].attempts, 3);
}

// --- checkpoint entry round-trip ---------------------------------------------

TEST(ResultEntry, RoundTripsThroughJson) {
  RunResult r;
  r.id = 42;
  r.name = "roundtrip";
  r.seed = 0xdeadbeefcafef00dull;
  r.backend = "packet";
  r.status = JobStatus::kWedged;
  r.attempts = 3;
  r.error = "livelock: frozen";
  r.end_time = 1234.5;
  r.local_completion = -1.0;
  r.completed = false;
  r.events_executed = 777;
  r.events_scheduled = 999;
  r.events_cancelled = 11;
  r.peak_pending = 222;
  r.metrics = runner::json::Value::object();
  r.metrics["k"] = 7;
  r.text = "42 done=-1.00\n";
  r.setup_seconds = 0.125;
  r.sim_seconds = 2.5;
  r.analyze_seconds = 0.0625;

  const auto entry = runner::result_entry(r, /*include_text=*/true);
  RunResult back;
  ASSERT_TRUE(runner::result_from_entry(entry, &back));
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.backend, r.backend);
  EXPECT_EQ(back.status, r.status);
  EXPECT_EQ(back.attempts, r.attempts);
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.end_time, r.end_time);
  EXPECT_EQ(back.local_completion, r.local_completion);
  EXPECT_EQ(back.completed, r.completed);
  EXPECT_EQ(back.events_executed, r.events_executed);
  EXPECT_EQ(back.events_scheduled, r.events_scheduled);
  EXPECT_EQ(back.events_cancelled, r.events_cancelled);
  EXPECT_EQ(back.peak_pending, r.peak_pending);
  EXPECT_TRUE(back.metrics == r.metrics);
  EXPECT_EQ(back.text, r.text);
  EXPECT_EQ(back.setup_seconds, r.setup_seconds);
  EXPECT_EQ(back.sim_seconds, r.sim_seconds);
  EXPECT_EQ(back.analyze_seconds, r.analyze_seconds);

  // Report entries (no text) are deliberately NOT resumable.
  RunResult incomplete;
  EXPECT_FALSE(runner::result_from_entry(
      runner::result_entry(r, /*include_text=*/false), &incomplete));
  EXPECT_FALSE(runner::result_from_entry(runner::json::Value(), &incomplete));
}

}  // namespace
}  // namespace swarmlab
