// Piece-selection strategy tests (paper §II-C.1).
#include <gtest/gtest.h>

#include <set>

#include "core/piece_picker.h"
#include "sim/rng.h"

namespace swarmlab::core {
namespace {

struct PickerHarness {
  explicit PickerHarness(std::uint32_t pieces)
      : local(pieces), remote(pieces), availability(pieces) {}

  std::optional<PieceIndex> pick(PiecePicker& picker, sim::Rng& rng,
                                 std::uint32_t completed) {
    const std::function<bool(PieceIndex)> startable =
        [this](PieceIndex p) { return !blocked.contains(p); };
    const PickContext ctx{local, remote, availability, startable, completed};
    return picker.pick(ctx, rng);
  }

  Bitfield local;
  Bitfield remote;
  AvailabilityMap availability;
  std::set<PieceIndex> blocked;
};

TEST(RarestFirstPicker, PicksTheRarestEligiblePiece) {
  PickerHarness h(5);
  h.remote = Bitfield::full(5);
  // copies: piece 0 -> 3, 1 -> 2, 2 -> 1, 3 -> 2, 4 -> 3
  for (int i = 0; i < 3; ++i) h.availability.add_have(0);
  for (int i = 0; i < 2; ++i) h.availability.add_have(1);
  h.availability.add_have(2);
  for (int i = 0; i < 2; ++i) h.availability.add_have(3);
  for (int i = 0; i < 3; ++i) h.availability.add_have(4);

  RarestFirstPicker picker(/*random_first_threshold=*/0);
  sim::Rng rng(1);
  EXPECT_EQ(h.pick(picker, rng, /*completed=*/4), 2u);
}

TEST(RarestFirstPicker, BreaksTiesRandomlyWithinRarestSet) {
  PickerHarness h(6);
  h.remote = Bitfield::full(6);
  h.availability.add_have(0);  // piece 0 has 1 copy; all others 0 copies
  RarestFirstPicker picker(0);
  sim::Rng rng(7);
  std::set<PieceIndex> seen;
  for (int i = 0; i < 200; ++i) {
    const auto p = h.pick(picker, rng, 4);
    ASSERT_TRUE(p.has_value());
    EXPECT_NE(*p, 0u);  // never the more-replicated piece
    seen.insert(*p);
  }
  EXPECT_EQ(seen.size(), 5u);  // every 0-copy piece gets picked eventually
}

TEST(RarestFirstPicker, RandomFirstPolicyBeforeThreshold) {
  PickerHarness h(8);
  h.remote = Bitfield::full(8);
  // Piece 7 is the clear rarest (0 copies), all others have 5.
  for (PieceIndex p = 0; p < 7; ++p) {
    for (int i = 0; i < 5; ++i) h.availability.add_have(p);
  }
  RarestFirstPicker picker(/*random_first_threshold=*/4);
  sim::Rng rng(3);
  // With fewer than 4 completed pieces the choice is uniform: over many
  // trials, non-rarest pieces must get picked most of the time.
  int rarest_picks = 0;
  for (int i = 0; i < 300; ++i) {
    const auto p = h.pick(picker, rng, /*completed=*/0);
    ASSERT_TRUE(p.has_value());
    if (*p == 7) ++rarest_picks;
  }
  EXPECT_LT(rarest_picks, 100);  // uniform would give ~37
  // At the threshold, the picker must switch to rarest first.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(h.pick(picker, rng, /*completed=*/4), 7u);
  }
}

TEST(RarestFirstPicker, SkipsOwnedAndBlockedAndAbsentPieces) {
  PickerHarness h(4);
  h.remote.set(0);
  h.remote.set(1);
  h.remote.set(2);  // remote lacks 3
  h.local.set(0);   // we own 0
  h.blocked.insert(1);  // 1 is in flight
  RarestFirstPicker picker(0);
  sim::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(h.pick(picker, rng, 4), 2u);
  }
}

TEST(RarestFirstPicker, ReturnsNulloptWhenNothingEligible) {
  PickerHarness h(3);
  RarestFirstPicker picker(0);
  sim::Rng rng(1);
  EXPECT_EQ(h.pick(picker, rng, 4), std::nullopt);  // remote has nothing
  h.remote.set(1);
  h.local.set(1);
  EXPECT_EQ(h.pick(picker, rng, 4), std::nullopt);  // we own it
  h.remote.set(2);
  h.blocked.insert(2);
  EXPECT_EQ(h.pick(picker, rng, 4), std::nullopt);  // in flight
}

TEST(RandomPicker, UniformOverEligible) {
  PickerHarness h(10);
  h.remote = Bitfield::full(10);
  h.availability.add_have(0);  // rarity must NOT matter
  RandomPicker picker;
  sim::Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 5000; ++i) {
    const auto p = h.pick(picker, rng, 4);
    ASSERT_TRUE(p.has_value());
    ++counts[*p];
  }
  for (const int c : counts) EXPECT_GT(c, 300);  // ~500 expected each
}

TEST(SequentialPicker, LowestIndexFirst) {
  PickerHarness h(5);
  h.remote = Bitfield::full(5);
  h.local.set(0);
  SequentialPicker picker;
  sim::Rng rng(1);
  EXPECT_EQ(h.pick(picker, rng, 4), 1u);
  h.blocked.insert(1);
  EXPECT_EQ(h.pick(picker, rng, 4), 2u);
}

TEST(PickerFactory, MakesEveryKind) {
  ProtocolParams params;
  EXPECT_NE(make_picker(PickerKind::kRarestFirst, params), nullptr);
  EXPECT_NE(make_picker(PickerKind::kRandom, params), nullptr);
  EXPECT_NE(make_picker(PickerKind::kSequential, params), nullptr);
  EXPECT_NE(make_picker(PickerKind::kGlobalRarest, params), nullptr);
}

TEST(GlobalRarestPicker, UsesSuppliedAvailabilityWithoutWarmup) {
  PickerHarness h(4);
  h.remote = Bitfield::full(4);
  h.availability.add_have(0);
  h.availability.add_have(1);
  h.availability.add_have(2);  // piece 3 rarest
  ProtocolParams params;
  auto picker = make_picker(PickerKind::kGlobalRarest, params);
  sim::Rng rng(5);
  // completed=0: no random-first phase for the oracle.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(h.pick(*picker, rng, /*completed=*/0), 3u);
  }
}

// Draw identity: the word-parallel pickers must consume the shared Rng
// exactly like a per-bit scalar scan — same candidate order, same number
// of draws, same result — or a seeded simulation's trajectory would
// diverge from the pre-packed implementation.
class PickerDrawIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(PickerDrawIdentityTest, RarestFirstMatchesScalarReference) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 5);
  constexpr std::uint32_t kPieces = 200;  // straddles word boundaries
  PickerHarness h(kPieces);
  for (PieceIndex p = 0; p < kPieces; ++p) {
    if (rng.chance(0.25)) h.local.set(p);
    if (rng.chance(0.7)) h.remote.set(p);
    if (rng.chance(0.15)) h.blocked.insert(p);
    const auto copies = rng.index(4);
    for (std::size_t i = 0; i < copies; ++i) h.availability.add_have(p);
  }
  RarestFirstPicker picker(/*random_first_threshold=*/0);

  for (int trial = 0; trial < 100; ++trial) {
    // Scalar reference: ascending scan, collect the rarest tie set, one
    // uniform draw over it. Run on a fork of the picker's Rng state so
    // both see identical draws.
    sim::Rng picker_rng(static_cast<std::uint64_t>(GetParam()) * 7919 +
                        static_cast<std::uint64_t>(trial));
    sim::Rng ref_rng = picker_rng;
    std::vector<PieceIndex> rarest;
    std::uint32_t best = ~0u;
    for (PieceIndex p = 0; p < kPieces; ++p) {
      if (!h.remote.has(p) || h.local.has(p) || h.blocked.contains(p)) {
        continue;
      }
      const std::uint32_t c = h.availability.copies(p);
      if (c > best) continue;
      if (c < best) {
        best = c;
        rarest.clear();
      }
      rarest.push_back(p);
    }
    std::optional<PieceIndex> expected;
    if (!rarest.empty()) expected = rarest[ref_rng.index(rarest.size())];

    const auto got = h.pick(picker, picker_rng, /*completed=*/4);
    ASSERT_EQ(got, expected) << "trial " << trial;
    // Same number of Rng draws consumed: the next draw must agree.
    EXPECT_EQ(picker_rng.index(1u << 20), ref_rng.index(1u << 20));
  }
}

TEST_P(PickerDrawIdentityTest, RandomPickerMatchesScalarReference) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 263 + 11);
  constexpr std::uint32_t kPieces = 130;
  PickerHarness h(kPieces);
  for (PieceIndex p = 0; p < kPieces; ++p) {
    if (rng.chance(0.3)) h.local.set(p);
    if (rng.chance(0.6)) h.remote.set(p);
    if (rng.chance(0.1)) h.blocked.insert(p);
  }
  RandomPicker picker;
  for (int trial = 0; trial < 100; ++trial) {
    sim::Rng picker_rng(static_cast<std::uint64_t>(trial) + 17);
    sim::Rng ref_rng = picker_rng;
    std::vector<PieceIndex> eligible;
    for (PieceIndex p = 0; p < kPieces; ++p) {
      if (h.remote.has(p) && !h.local.has(p) && !h.blocked.contains(p)) {
        eligible.push_back(p);
      }
    }
    std::optional<PieceIndex> expected;
    if (!eligible.empty()) expected = eligible[ref_rng.index(eligible.size())];
    const auto got = h.pick(picker, picker_rng, /*completed=*/4);
    ASSERT_EQ(got, expected) << "trial " << trial;
    EXPECT_EQ(picker_rng.index(1u << 20), ref_rng.index(1u << 20));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PickerDrawIdentityTest,
                         ::testing::Range(1, 9));

// Property: whatever the availability and possession pattern, a picker
// never returns an owned, blocked, or remotely-absent piece.
class PickerPropertyTest
    : public ::testing::TestWithParam<std::tuple<PickerKind, int>> {};

TEST_P(PickerPropertyTest, NeverPicksIneligiblePiece) {
  const auto [kind, seed] = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(seed));
  constexpr std::uint32_t kPieces = 32;
  PickerHarness h(kPieces);
  for (PieceIndex p = 0; p < kPieces; ++p) {
    if (rng.chance(0.3)) h.local.set(p);
    if (rng.chance(0.6)) h.remote.set(p);
    if (rng.chance(0.2)) h.blocked.insert(p);
    const auto copies = rng.index(5);
    for (std::size_t i = 0; i < copies; ++i) h.availability.add_have(p);
  }
  ProtocolParams params;
  auto picker = make_picker(kind, params);
  for (std::uint32_t completed = 0; completed < 8; ++completed) {
    for (int trial = 0; trial < 50; ++trial) {
      const auto p = h.pick(*picker, rng, completed);
      if (!p.has_value()) continue;
      EXPECT_FALSE(h.local.has(*p));
      EXPECT_TRUE(h.remote.has(*p));
      EXPECT_FALSE(h.blocked.contains(*p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPickers, PickerPropertyTest,
    ::testing::Combine(::testing::Values(PickerKind::kRarestFirst,
                                         PickerKind::kRandom,
                                         PickerKind::kSequential,
                                         PickerKind::kGlobalRarest),
                       ::testing::Range(1, 6)));

}  // namespace
}  // namespace swarmlab::core
