// Tracker policy and scenario-catalog tests.
#include <gtest/gtest.h>

#include <set>

#include "sim/rng.h"
#include "swarm/scenario.h"
#include "swarm/tracker.h"

namespace swarmlab::swarm {
namespace {

using peer::AnnounceEvent;

TEST(Tracker, StartedRegistersPeer) {
  Tracker t;
  sim::Rng rng(1);
  t.announce(1, AnnounceEvent::kStarted, false, rng);
  EXPECT_EQ(t.num_members(), 1u);
  EXPECT_EQ(t.num_leechers(), 1u);
  EXPECT_EQ(t.num_seeds(), 0u);
}

TEST(Tracker, CompletedFlipsToSeed) {
  Tracker t;
  sim::Rng rng(1);
  t.announce(1, AnnounceEvent::kStarted, false, rng);
  t.announce(1, AnnounceEvent::kCompleted, true, rng);
  EXPECT_EQ(t.num_seeds(), 1u);
  EXPECT_EQ(t.num_leechers(), 0u);
}

TEST(Tracker, StoppedUnregisters) {
  Tracker t;
  sim::Rng rng(1);
  t.announce(1, AnnounceEvent::kStarted, false, rng);
  t.announce(1, AnnounceEvent::kStopped, false, rng);
  EXPECT_EQ(t.num_members(), 0u);
  EXPECT_EQ(t.stats().stopped, 1u);
}

TEST(Tracker, NeverReturnsTheAnnouncer) {
  Tracker t;
  sim::Rng rng(1);
  for (peer::PeerId id = 1; id <= 10; ++id) {
    t.announce(id, AnnounceEvent::kStarted, false, rng);
  }
  for (int trial = 0; trial < 20; ++trial) {
    const auto result = t.announce(5, AnnounceEvent::kRegular, false, rng);
    for (const peer::PeerId id : result.peers) EXPECT_NE(id, 5u);
  }
}

TEST(Tracker, ReturnsAtMostConfiguredPeers) {
  Tracker t(/*peers_per_announce=*/50);
  sim::Rng rng(1);
  for (peer::PeerId id = 1; id <= 200; ++id) {
    t.announce(id, AnnounceEvent::kStarted, false, rng);
  }
  const auto result = t.announce(1, AnnounceEvent::kRegular, false, rng);
  EXPECT_EQ(result.peers.size(), 50u);
  std::set<peer::PeerId> unique(result.peers.begin(), result.peers.end());
  EXPECT_EQ(unique.size(), 50u);  // no duplicates
}

TEST(Tracker, SmallTorrentReturnsEveryoneElse) {
  Tracker t;
  sim::Rng rng(1);
  for (peer::PeerId id = 1; id <= 4; ++id) {
    t.announce(id, AnnounceEvent::kStarted, false, rng);
  }
  EXPECT_EQ(t.announce(2, AnnounceEvent::kRegular, false, rng).peers.size(),
            3u);
}

TEST(Tracker, RandomSubsetVariesAcrossAnnounces) {
  Tracker t(/*peers_per_announce=*/5);
  sim::Rng rng(1);
  for (peer::PeerId id = 1; id <= 100; ++id) {
    t.announce(id, AnnounceEvent::kStarted, false, rng);
  }
  std::set<std::vector<peer::PeerId>> distinct;
  for (int i = 0; i < 10; ++i) {
    auto peers = t.announce(1, AnnounceEvent::kRegular, false, rng).peers;
    std::sort(peers.begin(), peers.end());
    distinct.insert(peers);
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Tracker, StatsCountEvents) {
  Tracker t;
  sim::Rng rng(1);
  t.announce(1, AnnounceEvent::kStarted, false, rng);
  t.announce(1, AnnounceEvent::kRegular, false, rng);
  t.announce(1, AnnounceEvent::kCompleted, true, rng);
  t.announce(1, AnnounceEvent::kStopped, true, rng);
  EXPECT_EQ(t.stats().announces, 4u);
  EXPECT_EQ(t.stats().started, 1u);
  EXPECT_EQ(t.stats().completed, 1u);
  EXPECT_EQ(t.stats().stopped, 1u);
}

TEST(Tracker, OfflineAnnouncesFailAndAreCounted) {
  Tracker t;
  sim::Rng rng(1);
  t.announce(1, AnnounceEvent::kStarted, false, rng);
  t.set_online(false);
  const auto result = t.announce(2, AnnounceEvent::kStarted, false, rng);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.peers.empty());
  EXPECT_EQ(t.num_members(), 1u);  // the failed announce registered nothing
  EXPECT_EQ(t.stats().failed, 1u);
  t.set_online(true);
  EXPECT_TRUE(t.announce(2, AnnounceEvent::kStarted, false, rng).ok);
  EXPECT_EQ(t.num_members(), 2u);
}

TEST(Tracker, MemberExpiryEvictsSilentPeers) {
  // Crashed peers never send Stopped; the tracker forgets them once they
  // miss their re-announce by the expiry margin.
  Tracker t;
  sim::Rng rng(1);
  t.set_member_expiry(4500.0);
  t.announce(1, AnnounceEvent::kStarted, false, rng, /*now=*/0.0);
  t.announce(2, AnnounceEvent::kStarted, false, rng, /*now=*/0.0);
  t.announce(3, AnnounceEvent::kStarted, false, rng, /*now=*/0.0);
  // Peer 1 keeps announcing; 2 and 3 went silent (crashed).
  t.announce(1, AnnounceEvent::kRegular, false, rng, /*now=*/1800.0);
  EXPECT_EQ(t.num_members(), 3u);  // nobody is overdue yet
  t.announce(1, AnnounceEvent::kRegular, false, rng, /*now=*/5000.0);
  EXPECT_EQ(t.num_members(), 1u);
  EXPECT_EQ(t.stats().expired, 2u);
}

TEST(Tracker, ExpiryDisabledByDefault) {
  Tracker t;
  sim::Rng rng(1);
  t.announce(1, AnnounceEvent::kStarted, false, rng, /*now=*/0.0);
  t.announce(2, AnnounceEvent::kRegular, false, rng, /*now=*/1e9);
  EXPECT_EQ(t.num_members(), 2u);
  EXPECT_EQ(t.stats().expired, 0u);
}

// --- Table-I catalog ----------------------------------------------------------

TEST(Table1, HasTwentySixTorrents) {
  const auto& table = table1_torrents();
  ASSERT_EQ(table.size(), 26u);
  EXPECT_EQ(table[0].seeds, 0u);     // torrent 1: no seed
  EXPECT_EQ(table[0].leechers, 66u);
  EXPECT_EQ(table[7].leechers, 861u);  // torrent 8 (transient exemplar)
  EXPECT_EQ(table[7].size_mb, 3000u);
  EXPECT_EQ(table[25].seeds, 12612u);
}

TEST(Table1, ScalingPreservesRatioOrdering) {
  ScaleLimits limits;
  for (int id = 1; id <= 26; ++id) {
    const auto cfg = scenario_from_table1(id, limits);
    const auto& spec = table1_torrents()[static_cast<std::size_t>(id - 1)];
    EXPECT_LE(cfg.initial_seeds + cfg.initial_leechers,
              limits.max_peers + 2)
        << "torrent " << id;
    if (spec.seeds == 0) {
      EXPECT_EQ(cfg.initial_seeds, 0u);
    } else {
      EXPECT_GE(cfg.initial_seeds, 1u);
    }
    EXPECT_GE(cfg.num_pieces, limits.min_pieces);
    EXPECT_LE(cfg.num_pieces, limits.max_pieces);
  }
}

TEST(Table1, TransientTorrentsAreColdStarts) {
  for (const int id : {2, 4, 5, 6, 8, 9}) {
    EXPECT_FALSE(scenario_from_table1(id).leechers_warm) << id;
  }
  for (const int id : {3, 7, 10, 13, 22}) {
    EXPECT_TRUE(scenario_from_table1(id).leechers_warm) << id;
  }
}

TEST(Table1, TorrentOneHasDeadPieces) {
  const auto cfg = scenario_from_table1(1);
  EXPECT_EQ(cfg.initial_seeds, 0u);
  EXPECT_GT(cfg.dead_piece_fraction, 0.0);
}

TEST(CapacityClasses, FractionsSumToOne) {
  double sum = 0.0;
  for (const auto& c : default_capacity_classes()) sum += c.fraction;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --- ScenarioRunner ------------------------------------------------------------

TEST(ScenarioRunner, SpawnsConfiguredPopulation) {
  ScenarioConfig cfg;
  cfg.num_pieces = 8;
  cfg.initial_seeds = 2;
  cfg.initial_leechers = 5;
  cfg.duration = 10.0;
  ScenarioRunner runner(cfg, 1);
  // 2 seeds + 5 leechers + local peer.
  EXPECT_EQ(runner.swarm().active_peers(), 8u);
  EXPECT_EQ(runner.swarm().tracker().num_seeds(), 2u);
}

TEST(ScenarioRunner, WarmLeechersHoldPartialContent) {
  ScenarioConfig cfg;
  cfg.num_pieces = 32;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 10;
  cfg.leechers_warm = true;
  cfg.warm_min = 0.3;
  cfg.warm_max = 0.7;
  cfg.duration = 1.0;
  ScenarioRunner runner(cfg, 3);
  int partial = 0;
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (id == runner.local_peer_id() || p->config().start_complete) continue;
    const auto count = p->have().count();
    EXPECT_GE(count, 32u * 3 / 10 - 4);
    EXPECT_LE(count, 32u * 7 / 10 + 4);
    if (count > 0) ++partial;
  }
  EXPECT_EQ(partial, 10);
}

TEST(ScenarioRunner, DeadPiecesAbsentEverywhere) {
  ScenarioConfig cfg;
  cfg.num_pieces = 20;
  cfg.initial_seeds = 0;
  cfg.initial_leechers = 8;
  cfg.leechers_warm = true;
  cfg.dead_piece_fraction = 0.25;
  cfg.duration = 1.0;
  ScenarioRunner runner(cfg, 5);
  std::uint32_t covered = 0;
  for (wire::PieceIndex p = 0; p < 20; ++p) {
    if (runner.swarm().global_availability().copies(p) > 0) ++covered;
  }
  EXPECT_LE(covered, 15u);  // at least 5 dead pieces
  EXPECT_FALSE(runner.swarm().torrent_alive());
}

TEST(ScenarioRunner, ArrivalsGrowPopulation) {
  ScenarioConfig cfg;
  cfg.num_pieces = 8;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 2;
  cfg.arrival_rate = 0.5;  // one every 2 s
  cfg.max_population = 50;
  cfg.seed_linger_mean = 0.0;
  cfg.duration = 60.0;
  ScenarioRunner runner(cfg, 7);
  runner.run();
  EXPECT_GT(runner.swarm().active_peers(), 10u);
  EXPECT_LE(runner.swarm().active_peers(), 50u);
}

TEST(ScenarioRunner, FinishedRemotePeersDepart) {
  ScenarioConfig cfg;
  cfg.num_pieces = 8;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 4;
  cfg.seed_linger_mean = 50.0;
  cfg.duration = 8000.0;
  ScenarioRunner runner(cfg, 7);
  runner.run();
  // Everyone finished long ago; lingering seeds (except the initial seed
  // and the local peer) must have left.
  EXPECT_LE(runner.swarm().active_peers(), 2u);
}

TEST(ScenarioRunner, FreeRiderFractionApplied) {
  ScenarioConfig cfg;
  cfg.num_pieces = 8;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 40;
  cfg.free_rider_fraction = 1.0;
  cfg.duration = 1.0;
  ScenarioRunner runner(cfg, 9);
  int free_riders = 0;
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (id == runner.local_peer_id() || p->config().start_complete) continue;
    if (p->config().free_rider) ++free_riders;
  }
  EXPECT_EQ(free_riders, 40);
}

TEST(ScenarioRunner, LocalJoinTimeHonored) {
  ScenarioConfig cfg;
  cfg.num_pieces = 8;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 2;
  cfg.local_join_time = 100.0;
  cfg.duration = 500.0;
  ScenarioRunner runner(cfg, 11);
  runner.simulation().run_until(50.0);
  EXPECT_FALSE(runner.local_peer().active());
  runner.simulation().run_until(150.0);
  EXPECT_TRUE(runner.local_peer().active());
  EXPECT_DOUBLE_EQ(runner.local_peer().start_time(), 100.0);
}

}  // namespace
}  // namespace swarmlab::swarm
