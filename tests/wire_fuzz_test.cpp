// Property/fuzz tests for the wire codecs: random well-formed values
// round-trip; random bytes never crash.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "sim/rng.h"
#include "wire/bencode.h"
#include "wire/message_stream.h"
#include "wire/messages.h"
#include "wire/tracker_codec.h"

namespace swarmlab::wire {
namespace {

/// Generates a random bencode value of bounded depth.
BValue random_bvalue(sim::Rng& rng, int depth) {
  const auto kind = depth <= 0 ? rng.index(2) : rng.index(4);
  switch (kind) {
    case 0:
      return BValue(static_cast<std::int64_t>(
          rng.uniform_int(0, 1u << 30)) -
          (rng.chance(0.5) ? (1 << 29) : 0));
    case 1: {
      std::string s;
      const auto len = rng.index(20);
      for (std::size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
      }
      return BValue(std::move(s));
    }
    case 2: {
      BValue::List list;
      const auto n = rng.index(4);
      for (std::size_t i = 0; i < n; ++i) {
        list.push_back(random_bvalue(rng, depth - 1));
      }
      return BValue(std::move(list));
    }
    default: {
      BValue::Dict dict;
      const auto n = rng.index(4);
      for (std::size_t i = 0; i < n; ++i) {
        dict.emplace("k" + std::to_string(rng.uniform_int(0, 1000)),
                     random_bvalue(rng, depth - 1));
      }
      return BValue(std::move(dict));
    }
  }
}

class BencodeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BencodeFuzz, RandomValuesRoundTrip) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const BValue value = random_bvalue(rng, 4);
    const std::string encoded = bencode(value);
    EXPECT_EQ(bdecode(encoded), value);
    // Canonical form: re-encoding the decoded value is stable.
    EXPECT_EQ(bencode(bdecode(encoded)), encoded);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BencodeFuzz, ::testing::Range(1, 6));

class BencodeGarbageFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BencodeGarbageFuzz, RandomBytesNeverCrash) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    std::string junk(1 + rng() % 64, '\0');
    for (auto& c : junk) c = static_cast<char>(rng());
    try {
      (void)bdecode(junk);
    } catch (const BencodeError&) {
      // expected for nearly all inputs
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BencodeGarbageFuzz, ::testing::Range(1, 4));

class BencodeMutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BencodeMutationFuzz, MutatedValidInputNeverCrashes) {
  // Start from valid encodings and flip bytes: the decoder must either
  // parse or throw, never crash/hang.
  sim::Rng vrng(7);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    std::string encoded = bencode(random_bvalue(vrng, 3));
    const std::size_t flips = 1 + rng() % 3;
    for (std::size_t f = 0; f < flips && !encoded.empty(); ++f) {
      encoded[rng() % encoded.size()] = static_cast<char>(rng());
    }
    try {
      (void)bdecode(encoded);
    } catch (const BencodeError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BencodeMutationFuzz, ::testing::Range(1, 4));

TEST(MessageFuzz, MutatedFramesNeverCrashStream) {
  std::mt19937_64 rng(99);
  constexpr std::uint32_t kPieces = 16;
  for (int trial = 0; trial < 300; ++trial) {
    // A valid little session...
    std::vector<std::uint8_t> bytes;
    for (const Message& m :
         {Message{HaveMsg{3}}, Message{RequestMsg{1, 0, 16384}},
          Message{InterestedMsg{}}}) {
      const auto enc = encode_message(m, kPieces);
      bytes.insert(bytes.end(), enc.begin(), enc.end());
    }
    // ...with a few corrupted bytes.
    for (int f = 0; f < 2; ++f) {
      bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
    }
    MessageStream stream(kPieces, /*expect_handshake=*/false);
    try {
      (void)stream.feed(bytes);
    } catch (const WireError&) {
    }
  }
}

TEST(TrackerFuzz, GarbageResponsesNeverCrash) {
  std::mt19937_64 rng(4242);
  for (int i = 0; i < 300; ++i) {
    std::string junk(1 + rng() % 80, '\0');
    for (auto& c : junk) c = static_cast<char>(rng());
    try {
      (void)decode_announce_response(junk);
    } catch (const BencodeError&) {
    } catch (const WireError&) {
    }
  }
}

}  // namespace
}  // namespace swarmlab::wire
