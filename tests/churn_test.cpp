// Churn and torrent-death scenarios: the protocol must degrade and
// recover gracefully, never crash or deadlock.
#include <gtest/gtest.h>

#include "core/choker.h"
#include "swarm/scenario.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;

TEST(Churn, SeedDeathMidTransientStallsButNeverCrashes) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(16 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 40e3;
  const PeerId seed = sw.add_peer(std::move(s));
  sw.start_peer(seed);
  std::vector<PeerId> leechers;
  for (int i = 0; i < 4; ++i) {
    PeerConfig l;
    l.upload_capacity = 20e3;
    leechers.push_back(sw.add_peer(std::move(l)));
    sw.start_peer(leechers.back());
  }
  // Kill the only seed mid-transient: a few pieces are out (the seed has
  // pushed ~40 kB/s * 160 s = 6 MiB of the 4 MiB content), but not all.
  sim.schedule_at(160.0, [&] { sw.stop_peer(seed); });
  sim.run_until(5000.0);
  EXPECT_FALSE(sw.torrent_alive());
  std::uint32_t best = 0;
  for (const PeerId id : leechers) {
    const peer::Peer* p = sw.find_peer(id);
    EXPECT_TRUE(p->active());
    EXPECT_FALSE(p->is_seed());  // not all pieces ever existed
    best = std::max(best, p->have().count());
  }
  // Peers replicated what was available before the death.
  EXPECT_GT(best, 0u);
}

TEST(Churn, SeedReturnRevivesTheTorrent) {
  sim::Simulation sim(2);
  const wire::ContentGeometry geo(8 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 30e3;
  const PeerId seed1 = sw.add_peer(PeerConfig(s));
  sw.start_peer(seed1);
  PeerConfig l;
  l.upload_capacity = 30e3;
  const PeerId leecher = sw.add_peer(std::move(l));
  sw.start_peer(leecher);
  sim.schedule_at(20.0, [&] { sw.stop_peer(seed1); });
  // A fresh seed joins later.
  sim.schedule_at(200.0, [&] {
    const PeerId seed2 = sw.add_peer(PeerConfig(s));
    sw.start_peer(seed2);
  });
  sim.run_until(8000.0);
  EXPECT_TRUE(sw.find_peer(leecher)->is_seed());
}

TEST(Churn, HeavyAbortChurnStaysConsistent) {
  swarm::ScenarioConfig cfg;
  cfg.num_pieces = 16;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = 20;
  cfg.leecher_abort_rate = 1.0 / 300.0;  // most abort before completion
  cfg.arrival_rate = 0.1;
  cfg.seed_linger_mean = 100.0;
  cfg.duration = 4000.0;
  swarm::ScenarioRunner runner(cfg, 5);
  runner.run();
  // The local peer (never aborted, persistent seed present) completes.
  EXPECT_TRUE(runner.local_peer().is_seed());
  // Departed peers hold no connections anywhere.
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (p->active()) continue;
    EXPECT_EQ(p->peer_set_size(), 0u) << "peer " << id;
  }
}

TEST(Churn, RapidJoinLeaveNoise) {
  // The paper filters "peers that join and leave the peer set
  // frequently" (§IV-A.1); the protocol itself must tolerate them.
  sim::Simulation sim(7);
  const wire::ContentGeometry geo(8 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 30e3;
  sw.start_peer(sw.add_peer(std::move(s)));
  PeerConfig l;
  l.upload_capacity = 30e3;
  const PeerId stable = sw.add_peer(std::move(l));
  sw.start_peer(stable);
  // A stream of flappers, each alive for 3 seconds.
  for (int i = 0; i < 40; ++i) {
    sim.schedule_at(10.0 + i * 5.0, [&sw] {
      PeerConfig f;
      f.upload_capacity = 10e3;
      const PeerId id = sw.add_peer(std::move(f));
      sw.start_peer(id);
      sw.simulation().schedule_in(3.0, [&sw, id] { sw.stop_peer(id); });
    });
  }
  sim.run_until(4000.0);
  EXPECT_TRUE(sw.find_peer(stable)->is_seed());
}

TEST(Churn, AbruptCrashLeavesGhostUntilSilenceEviction) {
  // crash_peer delivers no disconnect callbacks: survivors keep a ghost
  // Connection until their own silence timeout fires.
  sim::Simulation sim(3);
  const wire::ContentGeometry geo(8 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  core::ProtocolParams live;
  live.liveness_timers = true;
  PeerConfig s;
  s.params = live;
  s.start_complete = true;
  s.upload_capacity = 30e3;
  const PeerId seed = sw.add_peer(std::move(s));
  sw.start_peer(seed);
  PeerConfig l;
  l.params = live;
  l.upload_capacity = 30e3;
  const PeerId survivor = sw.add_peer(PeerConfig(l));
  sw.start_peer(survivor);
  const PeerId victim = sw.add_peer(std::move(l));
  sw.start_peer(victim);

  sim.schedule_at(50.0, [&] { ASSERT_TRUE(sw.crash_peer(victim)); });
  sim.schedule_at(51.0, [&] {
    // No disconnect was delivered: the ghost entry is still there.
    EXPECT_NE(sw.find_peer(survivor)->connection(victim), nullptr);
    EXPECT_FALSE(sw.find_peer(victim)->active());
  });
  // Run past silence_timeout plus check-tick granularity: evicted.
  sim.run_until(50.0 + live.silence_timeout +
                2.0 * live.liveness_check_interval);
  EXPECT_EQ(sw.find_peer(survivor)->connection(victim), nullptr);
  EXPECT_EQ(sw.find_peer(seed)->connection(victim), nullptr);
  EXPECT_GE(sw.find_peer(survivor)->ghosts_evicted() +
                sw.find_peer(seed)->ghosts_evicted(),
            1u);
}

TEST(Churn, RequestTimeoutReturnsBlocksBeforeGhostEviction) {
  // Outstanding requests to a crashed peer come back to the picker after
  // request_timeout (60 s) — well before the ghost itself is evicted at
  // silence_timeout (240 s) — so the download reroutes and completes.
  sim::Simulation sim(4);
  const wire::ContentGeometry geo(16 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  core::ProtocolParams live;
  live.liveness_timers = true;
  PeerConfig s;
  s.params = live;
  s.start_complete = true;
  s.upload_capacity = 10e3;  // slow: the transfer outlives the crash
  const PeerId seed1 = sw.add_peer(PeerConfig(s));
  sw.start_peer(seed1);
  const PeerId seed2 = sw.add_peer(std::move(s));
  sw.start_peer(seed2);
  PeerConfig l;
  l.params = live;
  l.upload_capacity = 10e3;
  const PeerId leecher = sw.add_peer(std::move(l));
  sw.start_peer(leecher);

  sim.schedule_at(30.0, [&] { ASSERT_TRUE(sw.crash_peer(seed1)); });
  // request_timeout after the crash: requests freed, ghost still present.
  sim.schedule_at(30.0 + live.request_timeout +
                      2.0 * live.liveness_check_interval,
                  [&] {
                    const peer::Peer* p = sw.find_peer(leecher);
                    const peer::Connection* c = p->connection(seed1);
                    ASSERT_NE(c, nullptr);
                    EXPECT_TRUE(c->outstanding.empty());
                    EXPECT_GE(p->timed_out_requests(), 1u);
                  });
  // silence_timeout after the crash: ghost gone.
  sim.schedule_at(30.0 + live.silence_timeout +
                      2.0 * live.liveness_check_interval,
                  [&] {
                    EXPECT_EQ(sw.find_peer(leecher)->connection(seed1),
                              nullptr);
                  });
  sim.run_until(8000.0);
  EXPECT_TRUE(sw.find_peer(leecher)->is_seed());
}

TEST(Churn, GhostsPersistWhenLivenessTimersAreOff) {
  // Documents the default: with liveness_timers=false (the byte-identity
  // default for fault-free runs) nothing ever evicts a crashed peer.
  sim::Simulation sim(5);
  const wire::ContentGeometry geo(8 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 30e3;
  const PeerId seed = sw.add_peer(std::move(s));
  sw.start_peer(seed);
  PeerConfig l;
  l.upload_capacity = 30e3;
  const PeerId survivor = sw.add_peer(PeerConfig(l));
  sw.start_peer(survivor);
  const PeerId victim = sw.add_peer(std::move(l));
  sw.start_peer(victim);
  sim.schedule_at(50.0, [&] { ASSERT_TRUE(sw.crash_peer(victim)); });
  sim.run_until(3000.0);
  EXPECT_NE(sw.find_peer(survivor)->connection(victim), nullptr);
  EXPECT_EQ(sw.find_peer(survivor)->ghosts_evicted(), 0u);
}

TEST(OptimisticBias, NewPeersWinTheOptimisticDrawMoreOften) {
  core::ProtocolParams params;
  params.optimistic_new_peer_weight = 3;
  core::LeecherChoker choker(params);
  sim::Rng rng(11);
  // 10 old + 10 new peers, all interested, all zero-rate; count OU picks.
  int new_picks = 0, old_picks = 0;
  for (std::uint64_t round = 0; round < 3000; round += 3) {
    std::vector<core::ChokeCandidate> cs;
    for (core::PeerKey k = 1; k <= 20; ++k) {
      core::ChokeCandidate c;
      c.key = k;
      c.interested = true;
      c.newly_connected = k > 10;
      cs.push_back(c);
    }
    choker.select(cs, round, rng);  // rotation round: re-draws the OU
    const auto ou = choker.optimistic_peer();
    ASSERT_TRUE(ou.has_value());
    if (*ou > 10) {
      ++new_picks;
    } else {
      ++old_picks;
    }
  }
  // Expected 3:1; allow generous noise.
  EXPECT_GT(new_picks, old_picks * 2);
}

}  // namespace
}  // namespace swarmlab
