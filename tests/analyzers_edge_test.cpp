// Analyzer edge cases and net-model stress properties.
#include <gtest/gtest.h>

#include "instrument/analyzers.h"
#include "net/fluid_network.h"
#include "sim/simulation.h"

namespace swarmlab {
namespace {

TEST(AnalyzersEdge, EmptyLogYieldsEmptyResults) {
  instrument::LocalPeerLog log(8);
  log.finalize(100.0);
  const auto entropy = instrument::analyze_entropy(log);
  EXPECT_TRUE(entropy.local_interest_ratios.empty());
  EXPECT_DOUBLE_EQ(entropy.median_local, 0.0);
  const auto inter = instrument::analyze_piece_interarrival(log);
  EXPECT_TRUE(inter.all.empty());
  const auto sets = instrument::analyze_leecher_fairness(log);
  EXPECT_EQ(sets.total_uploaded, 0u);
  for (const double f : sets.upload_fraction) EXPECT_DOUBLE_EQ(f, 0.0);
  const auto corr = instrument::analyze_unchoke_correlation_leecher(log);
  EXPECT_TRUE(corr.unchokes.empty());
  EXPECT_DOUBLE_EQ(corr.spearman, 0.0);
}

TEST(AnalyzersEdge, InterarrivalWindowLargerThanSamples) {
  instrument::LocalPeerLog log(8);
  log.on_start(0.0);
  log.on_piece_complete(5.0, 0);
  log.on_piece_complete(9.0, 1);
  const auto result = instrument::analyze_piece_interarrival(log, 100);
  EXPECT_EQ(result.all.count(), 2u);
  EXPECT_EQ(result.first_k.count(), 2u);
  EXPECT_EQ(result.last_k.count(), 2u);
  EXPECT_DOUBLE_EQ(result.all.min(), 4.0);
  EXPECT_DOUBLE_EQ(result.all.max(), 5.0);
}

TEST(AnalyzersEdge, ContributionSetsBeyondPeerCount) {
  instrument::LocalPeerLog log(8);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_block_uploaded(1.0, 1, {0, 0}, 1000);
  log.finalize(10.0);
  // 6 sets of 5 requested but only one peer exists.
  const auto sets = instrument::analyze_leecher_fairness(log, 5, 6);
  ASSERT_EQ(sets.upload_fraction.size(), 6u);
  EXPECT_DOUBLE_EQ(sets.upload_fraction[0], 1.0);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(sets.upload_fraction[i], 0.0);
  }
}

TEST(AnalyzersEdge, SeedFairnessIgnoresLeecherBytes) {
  instrument::LocalPeerLog log(8);
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_block_uploaded(1.0, 1, {0, 0}, 12345);  // local still a leecher
  log.finalize(10.0);
  const auto sets = instrument::analyze_seed_fairness(log);
  EXPECT_EQ(sets.total_uploaded, 0u);
}

// --- fluid network stress -----------------------------------------------------

TEST(FluidStress, RandomChurnNeverViolatesCapacities) {
  sim::Simulation sim(17);
  net::FluidNetwork net(sim, 0.01);
  constexpr int kNodes = 12;
  std::vector<net::NodeId> nodes;
  std::vector<double> up(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    up[i] = sim.rng().uniform(1e3, 1e5);
    nodes.push_back(net.add_node(up[i], sim.rng().uniform(1e4, 1e6)));
  }
  struct LiveFlow {
    net::FlowId id;
    std::size_t sender;
  };
  std::vector<LiveFlow> live;
  int completed = 0;
  // 300 random operations: start, cancel, advance.
  for (int step = 0; step < 300; ++step) {
    const auto op = sim.rng().index(3);
    if (op == 0) {
      const auto a = sim.rng().index(kNodes);
      auto b = sim.rng().index(kNodes);
      if (a == b) b = (b + 1) % kNodes;
      live.push_back({net.start_flow(nodes[a], nodes[b],
                                     sim.rng().uniform_int(1000, 100000),
                                     [&] { ++completed; }),
                      a});
    } else if (op == 1 && !live.empty()) {
      const auto i = sim.rng().index(live.size());
      net.cancel_flow(live[i].id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      sim.run_until(sim.now() + sim.rng().uniform(0.01, 1.0));
    }
    // Invariant: per-sender aggregate rate never exceeds its capacity
    // (flow_rate() is 0 for flows that finished meanwhile).
    std::vector<double> sender_rate(kNodes, 0.0);
    for (const LiveFlow& f : live) {
      sender_rate[f.sender] += net.flow_rate(f.id);
    }
    for (int n = 0; n < kNodes; ++n) {
      EXPECT_LE(sender_rate[n], up[n] * (1.0 + 1e-9))
          << "step " << step << " node " << n;
    }
  }
  sim.run();
  EXPECT_GT(completed, 0);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FluidStress, ManyToOneFansInWithoutLoss) {
  sim::Simulation sim(3);
  net::FluidNetwork net(sim, 0.01);
  const net::NodeId sink = net.add_node(1e6, 5e4);  // download-capped
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    const net::NodeId src = net.add_node(1e5, 1e6);
    net.start_flow(src, sink, 10000, [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 20);
  // 200 kB over a 50 kB/s sink cannot finish faster than 4 s.
  EXPECT_GE(sim.now(), 4.0 - 1e-6);
}

}  // namespace
}  // namespace swarmlab
