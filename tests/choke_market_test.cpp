// ChokeMarketLog, RandomRotationChoker, and RateSampler tests.
#include <gtest/gtest.h>

#include "core/choker.h"
#include "instrument/choke_market.h"
#include "instrument/samplers.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

TEST(ChokeMarketLog, TenureCountsConsecutiveRounds) {
  instrument::ChokeMarketLog log;
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_peer_joined(0.0, 2);
  // Peer 1 unchoked for 3 rounds, then dropped; peer 2 for 1 round.
  log.on_choke_round(10.0, false, {1});
  log.on_choke_round(20.0, false, {1, 2});
  log.on_choke_round(30.0, false, {1});
  log.on_choke_round(40.0, false, {});
  const auto stats = log.finalize(50.0);
  EXPECT_EQ(stats.rounds, 4u);
  EXPECT_EQ(stats.slot_rounds, 4u);
  ASSERT_EQ(stats.tenures.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.max_tenure, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_tenure, 2.0);
}

TEST(ChokeMarketLog, OpenTenureClosedAtFinalize) {
  instrument::ChokeMarketLog log;
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_choke_round(10.0, false, {1});
  log.on_choke_round(20.0, false, {1});
  const auto stats = log.finalize(30.0);
  ASSERT_EQ(stats.tenures.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.tenures[0], 2.0);
}

TEST(ChokeMarketLog, MutualityTracksRemoteUnchokes) {
  instrument::ChokeMarketLog log;
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_peer_joined(0.0, 2);
  log.on_remote_choke_change(5.0, 1, true);  // peer 1 unchokes us
  log.on_choke_round(10.0, false, {1, 2});   // we unchoke both
  const auto stats = log.finalize(20.0);
  EXPECT_EQ(stats.slot_rounds, 2u);
  EXPECT_DOUBLE_EQ(stats.mutuality, 0.5);  // only peer 1 was mutual
  // Null model: peer 1 unchoked us for 15 of its 20 s in set, peer 2
  // never -> (15 + 0) / (20 + 20).
  EXPECT_NEAR(stats.null_mutuality, 15.0 / 40.0, 1e-9);
}

TEST(ChokeMarketLog, SeedStateRoundsExcluded) {
  instrument::ChokeMarketLog log;
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_choke_round(10.0, true, {1});  // seed state: ignored
  log.on_became_seed(15.0);
  log.on_choke_round(20.0, true, {1});
  const auto stats = log.finalize(30.0);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.slot_rounds, 0u);
}

TEST(ChokeMarketLog, PeerDepartureClosesTenure) {
  instrument::ChokeMarketLog log;
  log.on_start(0.0);
  log.on_peer_joined(0.0, 1);
  log.on_choke_round(10.0, false, {1});
  log.on_peer_left(15.0, 1);
  const auto stats = log.finalize(30.0);
  ASSERT_EQ(stats.tenures.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.tenures[0], 1.0);
}

TEST(RandomRotationChoker, DrawsOnlyInterestedUpToSlots) {
  core::ProtocolParams params;
  core::RandomRotationChoker choker(params);
  sim::Rng rng(3);
  std::vector<core::ChokeCandidate> cs;
  for (core::PeerKey k = 1; k <= 10; ++k) {
    core::ChokeCandidate c;
    c.key = k;
    c.interested = k % 2 == 0;  // 5 interested
    cs.push_back(c);
  }
  for (std::uint64_t round = 0; round < 20; ++round) {
    const auto sel = choker.select(cs, round, rng);
    EXPECT_LE(sel.size(), params.active_set_size);
    for (const core::PeerKey k : sel) EXPECT_EQ(k % 2, 0u);
  }
}

TEST(RandomRotationChoker, RotatesAcrossRounds) {
  core::ProtocolParams params;
  core::RandomRotationChoker choker(params);
  sim::Rng rng(3);
  std::vector<core::ChokeCandidate> cs;
  for (core::PeerKey k = 1; k <= 20; ++k) {
    core::ChokeCandidate c;
    c.key = k;
    c.interested = true;
    cs.push_back(c);
  }
  std::set<core::PeerKey> seen;
  for (std::uint64_t round = 0; round < 40; ++round) {
    for (const core::PeerKey k : choker.select(cs, round, rng)) {
      seen.insert(k);
    }
  }
  EXPECT_GT(seen.size(), 15u);  // nearly everyone gets a turn
}

TEST(RandomRotationChoker, FactorySelectsIt) {
  core::ProtocolParams params;
  params.leecher_choker = core::LeecherChokerKind::kRandomRotation;
  EXPECT_NE(dynamic_cast<core::RandomRotationChoker*>(
                core::make_leecher_choker(params).get()),
            nullptr);
}

TEST(RateSampler, TracksTransferRates) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(8 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  peer::PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 20e3;
  sw.start_peer(sw.add_peer(std::move(s)));
  peer::PeerConfig l;
  l.upload_capacity = 20e3;
  const peer::PeerId lid = sw.add_peer(std::move(l));
  sw.start_peer(lid);
  instrument::RateSampler sampler(sim, *sw.find_peer(lid), 10.0);
  sim.run_until(60.0);
  // Mid-download the leecher pulls roughly the seed's capacity.
  ASSERT_FALSE(sampler.download_rate().empty());
  EXPECT_GT(sampler.download_rate().max_value(), 10e3);
  // The leecher uploads nothing (the seed wants nothing).
  EXPECT_NEAR(sampler.upload_rate().max_value(), 0.0, 1.0);
  sampler.stop();
}

TEST(RateSampler, UnchokedCountBounded) {
  sim::Simulation sim(2);
  const wire::ContentGeometry geo(8 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  peer::PeerConfig s;
  s.start_complete = true;
  s.upload_capacity = 10e3;
  const peer::PeerId sid = sw.add_peer(std::move(s));
  sw.start_peer(sid);
  for (int i = 0; i < 8; ++i) {
    peer::PeerConfig l;
    l.upload_capacity = 10e3;
    sw.start_peer(sw.add_peer(std::move(l)));
  }
  instrument::RateSampler sampler(sim, *sw.find_peer(sid), 5.0);
  sim.run_until(120.0);
  ASSERT_FALSE(sampler.unchoked_peers().empty());
  EXPECT_LE(sampler.unchoked_peers().max_value(), 4.0);
  EXPECT_GT(sampler.unchoked_peers().max_value(), 0.0);
}

}  // namespace
}  // namespace swarmlab
