// Choke-algorithm tests (paper §II-C.2): leecher state, both seed-state
// variants, and the tit-for-tat baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/choker.h"
#include "sim/rng.h"

namespace swarmlab::core {
namespace {

ChokeCandidate candidate(PeerKey key, bool interested, double down_rate,
                         double up_rate = 0.0) {
  ChokeCandidate c;
  c.key = key;
  c.interested = interested;
  c.download_rate = down_rate;
  c.upload_rate = up_rate;
  return c;
}

bool contains(const std::vector<PeerKey>& v, PeerKey k) {
  return std::find(v.begin(), v.end(), k) != v.end();
}

TEST(LeecherChoker, UnchokesThreeFastestInterestedPlusOptimistic) {
  ProtocolParams params;
  LeecherChoker choker(params);
  sim::Rng rng(1);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 10; ++k) {
    cs.push_back(candidate(k, true, static_cast<double>(k) * 100));
  }
  const auto unchoked = choker.select(cs, 0, rng);
  ASSERT_EQ(unchoked.size(), 4u);  // 3 RU + 1 OU
  EXPECT_TRUE(contains(unchoked, 10));
  EXPECT_TRUE(contains(unchoked, 9));
  EXPECT_TRUE(contains(unchoked, 8));
}

TEST(LeecherChoker, IgnoresUninterestedPeers) {
  ProtocolParams params;
  LeecherChoker choker(params);
  sim::Rng rng(1);
  std::vector<ChokeCandidate> cs;
  cs.push_back(candidate(1, false, 1e9));  // fastest but not interested
  cs.push_back(candidate(2, true, 100));
  cs.push_back(candidate(3, true, 50));
  const auto unchoked = choker.select(cs, 0, rng);
  EXPECT_FALSE(contains(unchoked, 1));
  EXPECT_TRUE(contains(unchoked, 2));
  EXPECT_TRUE(contains(unchoked, 3));
}

TEST(LeecherChoker, AtMostFourUnchoked) {
  ProtocolParams params;
  LeecherChoker choker(params);
  sim::Rng rng(1);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 40; ++k) cs.push_back(candidate(k, true, k));
  for (std::uint64_t round = 0; round < 12; ++round) {
    EXPECT_LE(choker.select(cs, round, rng).size(), 4u);
  }
}

TEST(LeecherChoker, OptimisticRotatesEveryThreeRounds) {
  ProtocolParams params;
  LeecherChoker choker(params);
  sim::Rng rng(5);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 30; ++k) {
    // All equal rates: RU picks the first three consistently; the OU is
    // the only varying slot.
    cs.push_back(candidate(k, true, 0.0));
  }
  std::optional<PeerKey> ou_in_block;
  std::set<PeerKey> distinct_ous;
  for (std::uint64_t round = 0; round < 30; ++round) {
    choker.select(cs, round, rng);
    const auto ou = choker.optimistic_peer();
    ASSERT_TRUE(ou.has_value());
    if (round % 3 == 0) {
      ou_in_block = ou;
      distinct_ous.insert(*ou);
    } else {
      // Within a 30-second block the OU must be stable.
      EXPECT_EQ(ou, ou_in_block);
    }
  }
  EXPECT_GT(distinct_ous.size(), 3u);  // rotation actually explores
}

TEST(LeecherChoker, ReplacesDepartedOptimistic) {
  ProtocolParams params;
  LeecherChoker choker(params);
  sim::Rng rng(5);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 8; ++k) cs.push_back(candidate(k, true, 0.0));
  choker.select(cs, 0, rng);
  const auto ou = choker.optimistic_peer();
  ASSERT_TRUE(ou.has_value());
  // The OU leaves the torrent; round 1 is not a rotation round but the
  // choker must still replace it.
  std::vector<ChokeCandidate> without;
  for (const auto& c : cs) {
    if (c.key != *ou) without.push_back(c);
  }
  choker.select(without, 1, rng);
  const auto replacement = choker.optimistic_peer();
  ASSERT_TRUE(replacement.has_value());
  EXPECT_NE(*replacement, *ou);
}

TEST(LeecherChoker, NoInterestedPeersMeansNoUnchoke) {
  ProtocolParams params;
  LeecherChoker choker(params);
  sim::Rng rng(1);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 5; ++k) cs.push_back(candidate(k, false, k));
  EXPECT_TRUE(choker.select(cs, 0, rng).empty());
}

// --- new seed-state algorithm (SKU/SRU) -----------------------------------

TEST(NewSeedChoker, FillsFourSlotsFromInterested) {
  ProtocolParams params;
  NewSeedChoker choker(params);
  sim::Rng rng(2);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 10; ++k) cs.push_back(candidate(k, true, 0.0));
  EXPECT_EQ(choker.select(cs, 0, rng).size(), 4u);
}

TEST(NewSeedChoker, KeepsMostRecentlyUnchokedPeers) {
  ProtocolParams params;
  NewSeedChoker choker(params);
  sim::Rng rng(2);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 6; ++k) {
    ChokeCandidate c = candidate(k, true, 0.0);
    c.unchoked = k <= 4;
    c.last_unchoke_time = static_cast<double>(k) * 10.0;  // 4 most recent
    cs.push_back(c);
  }
  // Round 2 (phase 2 of the cycle): keep the 4 most recently unchoked.
  const auto kept = choker.select(cs, 2, rng);
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_TRUE(contains(kept, 1));
  EXPECT_TRUE(contains(kept, 2));
  EXPECT_TRUE(contains(kept, 3));
  EXPECT_TRUE(contains(kept, 4));
}

TEST(NewSeedChoker, SruRoundDropsOldestAndAddsRandom) {
  ProtocolParams params;
  NewSeedChoker choker(params);
  sim::Rng rng(2);
  std::vector<ChokeCandidate> cs;
  // Peers 1-4 unchoked with 1 the oldest; 5-8 choked and interested.
  for (PeerKey k = 1; k <= 8; ++k) {
    ChokeCandidate c = candidate(k, true, 0.0);
    c.unchoked = k <= 4;
    c.last_unchoke_time = k <= 4 ? static_cast<double>(k) : -1.0;
    cs.push_back(c);
  }
  // Round 0 is an SRU round: keep the 3 most recent (2,3,4), drop the
  // oldest (1), unchoke one random choked peer.
  const auto sel = choker.select(cs, 0, rng);
  ASSERT_EQ(sel.size(), 4u);
  EXPECT_FALSE(contains(sel, 1));
  EXPECT_TRUE(contains(sel, 2));
  EXPECT_TRUE(contains(sel, 3));
  EXPECT_TRUE(contains(sel, 4));
  EXPECT_TRUE(sel[3] >= 5 && sel[3] <= 8);
}

TEST(NewSeedChoker, IgnoresRatesEntirely) {
  ProtocolParams params;
  NewSeedChoker choker(params);
  sim::Rng rng(2);
  std::vector<ChokeCandidate> cs;
  ChokeCandidate fast = candidate(1, true, 1e9, 1e9);  // huge rates
  ChokeCandidate slow = candidate(2, true, 0.0, 0.0);
  slow.unchoked = true;
  slow.last_unchoke_time = 100.0;
  cs.push_back(fast);
  cs.push_back(slow);
  // Phase 2 (keep round): the unchoked slow peer is kept; rates never
  // enter the ordering.
  const auto sel = choker.select(cs, 2, rng);
  EXPECT_TRUE(contains(sel, 2));
}

TEST(NewSeedChoker, RotationServesEveryoneOverTime) {
  // The core fairness property (paper §IV-B.3): over a long horizon every
  // interested peer gets unchoked a similar number of times.
  ProtocolParams params;
  NewSeedChoker choker(params);
  sim::Rng rng(9);
  constexpr int kPeers = 12;
  std::map<PeerKey, double> last_unchoke;
  std::map<PeerKey, bool> unchoked;
  std::map<PeerKey, int> unchoke_events;
  for (PeerKey k = 1; k <= kPeers; ++k) {
    last_unchoke[k] = -1.0;
    unchoked[k] = false;
  }
  for (std::uint64_t round = 0; round < 600; ++round) {
    const double t = static_cast<double>(round) * 10.0;
    std::vector<ChokeCandidate> cs;
    for (PeerKey k = 1; k <= kPeers; ++k) {
      ChokeCandidate c = candidate(k, true, 0.0);
      c.unchoked = unchoked[k];
      c.last_unchoke_time = last_unchoke[k];
      cs.push_back(c);
    }
    const auto sel = choker.select(cs, round, rng);
    EXPECT_LE(sel.size(), 4u);
    for (PeerKey k = 1; k <= kPeers; ++k) {
      const bool now = contains(sel, k);
      if (now && !unchoked[k]) {
        last_unchoke[k] = t;
        ++unchoke_events[k];
      }
      unchoked[k] = now;
    }
  }
  int min_events = 1 << 30, max_events = 0;
  for (PeerKey k = 1; k <= kPeers; ++k) {
    min_events = std::min(min_events, unchoke_events[k]);
    max_events = std::max(max_events, unchoke_events[k]);
  }
  EXPECT_GT(min_events, 0);
  // Equal service: spread bounded (no peer starves, none monopolizes).
  EXPECT_LE(max_events, min_events * 3);
}

// --- old seed-state algorithm -------------------------------------------------

TEST(OldSeedChoker, FavorsFastestUploads) {
  ProtocolParams params;
  OldSeedChoker choker(params);
  sim::Rng rng(3);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 10; ++k) {
    cs.push_back(candidate(k, true, 0.0, static_cast<double>(k) * 10));
  }
  const auto sel = choker.select(cs, 0, rng);
  EXPECT_TRUE(contains(sel, 10));
  EXPECT_TRUE(contains(sel, 9));
  EXPECT_TRUE(contains(sel, 8));
}

TEST(OldSeedChoker, FastPeerCanMonopolize) {
  // The unfairness the new algorithm fixes: a fast downloader keeps its
  // regular-unchoke slot round after round.
  ProtocolParams params;
  OldSeedChoker choker(params);
  sim::Rng rng(3);
  std::vector<ChokeCandidate> cs;
  cs.push_back(candidate(1, true, 0.0, 1e6));  // the fast free rider
  for (PeerKey k = 2; k <= 20; ++k) cs.push_back(candidate(k, true, 0.0, 10));
  for (std::uint64_t round = 0; round < 30; ++round) {
    EXPECT_TRUE(contains(choker.select(cs, round, rng), 1));
  }
}

// --- tit-for-tat baseline ----------------------------------------------------

TEST(TitForTatChoker, BlocksPeersOverDeficit) {
  ProtocolParams params;
  params.tft_deficit_threshold = 1000;
  TitForTatChoker choker(params);
  sim::Rng rng(4);
  std::vector<ChokeCandidate> cs;
  ChokeCandidate ok = candidate(1, true, 50.0);
  ok.uploaded_to = 500;
  ok.downloaded_from = 0;  // deficit 500 <= 1000
  ChokeCandidate over = candidate(2, true, 500.0);
  over.uploaded_to = 5000;
  over.downloaded_from = 100;  // deficit 4900 > 1000
  cs.push_back(ok);
  cs.push_back(over);
  const auto sel = choker.select(cs, 0, rng);
  EXPECT_TRUE(contains(sel, 1));
  EXPECT_FALSE(contains(sel, 2));
}

TEST(TitForTatChoker, StrandsExcessCapacity) {
  // The paper's core critique (§IV-B.1): when every interested peer is
  // over the deficit threshold, slots stay idle even though capacity
  // exists.
  ProtocolParams params;
  params.tft_deficit_threshold = 100;
  TitForTatChoker choker(params);
  sim::Rng rng(4);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 6; ++k) {
    ChokeCandidate c = candidate(k, true, 10.0);
    c.uploaded_to = 10'000;  // all free riders / slow reciprocators
    c.downloaded_from = 0;
    cs.push_back(c);
  }
  EXPECT_TRUE(choker.select(cs, 0, rng).empty());
}

TEST(TitForTatChoker, ReciprocatingPeersServedUpToSlotLimit) {
  ProtocolParams params;
  TitForTatChoker choker(params);
  sim::Rng rng(4);
  std::vector<ChokeCandidate> cs;
  for (PeerKey k = 1; k <= 10; ++k) {
    ChokeCandidate c = candidate(k, true, static_cast<double>(k));
    c.uploaded_to = 100;
    c.downloaded_from = 100;  // balanced
    cs.push_back(c);
  }
  EXPECT_EQ(choker.select(cs, 0, rng).size(), 4u);
}

// --- factories -----------------------------------------------------------------

TEST(ChokerFactory, RespectsParams) {
  ProtocolParams params;
  params.leecher_choker = LeecherChokerKind::kTitForTat;
  params.seed_choker = SeedChokerKind::kOldSeed;
  EXPECT_NE(dynamic_cast<TitForTatChoker*>(
                make_leecher_choker(params).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<OldSeedChoker*>(make_seed_choker(params).get()),
            nullptr);
  params.leecher_choker = LeecherChokerKind::kChoke;
  params.seed_choker = SeedChokerKind::kNewSeed;
  EXPECT_NE(dynamic_cast<LeecherChoker*>(
                make_leecher_choker(params).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<NewSeedChoker*>(make_seed_choker(params).get()),
            nullptr);
}

// Property: every choker returns at most active_set_size peers, all of
// them interested candidates, with no duplicates.
class ChokerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChokerPropertyTest, SelectionAlwaysValid) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  ProtocolParams params;
  LeecherChoker leecher(params);
  NewSeedChoker new_seed(params);
  OldSeedChoker old_seed(params);
  TitForTatChoker tft(params);
  Choker* chokers[] = {&leecher, &new_seed, &old_seed, &tft};

  for (std::uint64_t round = 0; round < 40; ++round) {
    std::vector<ChokeCandidate> cs;
    const std::size_t n = rng.index(30);
    for (std::size_t i = 0; i < n; ++i) {
      ChokeCandidate c;
      c.key = i + 1;
      c.interested = rng.chance(0.6);
      c.unchoked = rng.chance(0.3);
      c.download_rate = rng.uniform(0, 1000);
      c.upload_rate = rng.uniform(0, 1000);
      c.last_unchoke_time = rng.chance(0.5) ? rng.uniform(0, 100) : -1.0;
      c.uploaded_to = rng.uniform_int(0, 1 << 20);
      c.downloaded_from = rng.uniform_int(0, 1 << 20);
      cs.push_back(c);
    }
    for (Choker* choker : chokers) {
      const auto sel = choker->select(cs, round, rng);
      EXPECT_LE(sel.size(), params.active_set_size);
      std::set<PeerKey> unique(sel.begin(), sel.end());
      EXPECT_EQ(unique.size(), sel.size());
      for (const PeerKey k : sel) {
        const auto it = std::find_if(
            cs.begin(), cs.end(),
            [k](const ChokeCandidate& c) { return c.key == k; });
        ASSERT_NE(it, cs.end());
        EXPECT_TRUE(it->interested);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChokerPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace swarmlab::core
