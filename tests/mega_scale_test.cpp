// Mega-swarm scale tier: the correctness side of the O(active) hot
// paths.
//
//  * InterestLedger vs brute force — the incremental pair-interest
//    ledger must produce the exact swarm_entropy value through
//    arbitrary churn (joins, warm starts, completions, departures).
//  * Rng::sample_indices — the sparse (hash-map) partial Fisher-Yates
//    used for large n must emit the same indices AND consume the same
//    engine draws as the dense strategy (replay identity).
//  * Tracker — Fenwick-sampled announces against a plain-set reference
//    under a randomized announce/expiry storm.
//  * Scenario catalog — entries frozen, parity with the historical
//    inline constructions, builder scaling, validation plumbed through
//    the batch runner as status: failed.
//  * SwarmProbe detail cap — counting stays global, logs stay O(cap).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "instrument/metrics.h"
#include "instrument/swarm_probe.h"
#include "runner/batch_runner.h"
#include "sim/rng.h"
#include "swarm/entropy.h"
#include "swarm/interest_ledger.h"
#include "swarm/scenario_catalog.h"
#include "swarm/swarm.h"

namespace swarmlab {
namespace {

// --- ledger vs brute force -------------------------------------------------

/// The historical O(leechers^2 x pieces) evaluation, kept here as the
/// oracle the ledger must match exactly.
double brute_force_entropy(const swarm::Swarm& s) {
  std::vector<const core::Bitfield*> leechers;
  for (const peer::PeerId id : s.active_peer_ids()) {
    const peer::Peer* p = s.find_peer(id);
    if (p == nullptr || !p->active() || p->is_seed()) continue;
    leechers.push_back(&p->have());
  }
  if (leechers.size() < 2) return 1.0;
  std::uint64_t interested = 0;
  std::uint64_t pairs = 0;
  for (std::size_t a = 0; a < leechers.size(); ++a) {
    for (std::size_t b = 0; b < leechers.size(); ++b) {
      if (a == b) continue;
      ++pairs;
      if (leechers[a]->interested_in(*leechers[b])) ++interested;
    }
  }
  return static_cast<double>(interested) / static_cast<double>(pairs);
}

swarm::ScenarioConfig churny_scenario(std::uint32_t leechers) {
  swarm::ScenarioConfig cfg;
  cfg.name = "ledger-equivalence";
  cfg.num_pieces = 24;
  cfg.piece_size = 64 * 1024;
  cfg.block_size = 16 * 1024;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = leechers;
  cfg.leechers_warm = true;  // randomized initial holdings
  cfg.warm_min = 0.0;
  cfg.warm_max = 0.9;
  cfg.arrival_rate = 0.05;        // joins mid-run
  cfg.seed_linger_mean = 150.0;   // completions turn into departures
  cfg.leecher_abort_rate = 1.0 / 4000.0;  // leechers leave mid-download
  cfg.duration = 6000.0;
  return cfg;
}

TEST(InterestLedger, MatchesBruteForceThroughChurn) {
  for (const std::uint64_t seed : {11u, 42u, 20061025u}) {
    swarm::ScenarioRunner runner(churny_scenario(12), seed);
    runner.swarm().enable_interest_ledger();
    ASSERT_NE(runner.swarm().interest_ledger(), nullptr);
    // swarm_entropy now reads the ledger; the brute force is our oracle.
    EXPECT_DOUBLE_EQ(swarm::swarm_entropy(runner.swarm()),
                     brute_force_entropy(runner.swarm()))
        << "seed " << seed << " at t=0";
    for (double t = 400.0; t <= 6000.0; t += 400.0) {
      runner.simulation().run_until(t);
      EXPECT_DOUBLE_EQ(swarm::swarm_entropy(runner.swarm()),
                       brute_force_entropy(runner.swarm()))
          << "seed " << seed << " at t=" << t;
    }
  }
}

TEST(InterestLedger, EnablingMidRunEnrollsCurrentLeechers) {
  swarm::ScenarioRunner runner(churny_scenario(8), 7);
  runner.simulation().run_until(1500.0);
  runner.swarm().enable_interest_ledger();
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy(runner.swarm()),
                   brute_force_entropy(runner.swarm()));
  runner.simulation().run_until(3000.0);
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy(runner.swarm()),
                   brute_force_entropy(runner.swarm()));
}

TEST(SwarmEntropySampled, FullSampleIsExact) {
  swarm::ScenarioRunner runner(churny_scenario(10), 3);
  runner.simulation().run_until(800.0);
  sim::Rng rng(99);
  // sample_k >= active leechers (and the k = 0 "unlimited" spelling)
  // degenerate to the exact value.
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy_sampled(runner.swarm(), 10000, rng),
                   brute_force_entropy(runner.swarm()));
  EXPECT_DOUBLE_EQ(swarm::swarm_entropy_sampled(runner.swarm(), 0, rng),
                   brute_force_entropy(runner.swarm()));
}

TEST(SwarmEntropySampled, DeterministicAndBounded) {
  swarm::ScenarioRunner runner(churny_scenario(16), 5);
  runner.simulation().run_until(1200.0);
  sim::Rng a(123);
  sim::Rng b(123);
  const double ea = swarm::swarm_entropy_sampled(runner.swarm(), 5, a);
  const double eb = swarm::swarm_entropy_sampled(runner.swarm(), 5, b);
  EXPECT_DOUBLE_EQ(ea, eb);  // same private stream, same estimate
  EXPECT_GE(ea, 0.0);
  EXPECT_LE(ea, 1.0);
}

// --- sparse sample_indices draw identity -----------------------------------

/// The dense partial Fisher-Yates (the historical implementation),
/// reproduced as the oracle: the sparse strategy must emit identical
/// indices for an identically seeded engine.
std::vector<std::size_t> dense_sample(sim::Rng& rng, std::size_t n,
                                      std::size_t k) {
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.index(n - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

TEST(RngSampleIndices, SparseStrategyMatchesDenseDrawForDraw) {
  // Pairs straddling the strategy switch (n <= 4k + 64 stays dense):
  // identical seeds must yield identical samples AND leave the engines
  // in the same state (checked by drawing one more value).
  const struct {
    std::size_t n, k;
  } cases[] = {{10, 3},     {100, 10},   {500, 4},   {5000, 50},
               {100000, 3}, {100000, 64}, {65, 0},   {4096, 1}};
  for (const auto& c : cases) {
    sim::Rng actual(777);
    sim::Rng oracle(777);
    const auto got = actual.sample_indices(c.n, c.k);
    const auto want = dense_sample(oracle, c.n, c.k);
    EXPECT_EQ(got, want) << "n=" << c.n << " k=" << c.k;
    EXPECT_EQ(actual.uniform_int(0, 1u << 30), oracle.uniform_int(0, 1u << 30))
        << "engine state diverged at n=" << c.n << " k=" << c.k;
  }
}

TEST(RngSampleIndices, SampleIsUniqueAndInRange) {
  sim::Rng rng(5);
  const auto sample = rng.sample_indices(1000000, 100);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const std::size_t v : sample) EXPECT_LT(v, 1000000u);
}

// --- tracker under an announce storm ---------------------------------------

TEST(TrackerScale, MatchesSetReferenceUnderAnnounceStorm) {
  swarm::Tracker tracker(/*peers_per_announce=*/20);
  tracker.set_member_expiry(500.0);
  sim::Rng rng(2024);
  std::set<peer::PeerId> reference;          // present members
  std::map<peer::PeerId, double> last_seen;  // their last announce
  double now = 0.0;
  for (int step = 0; step < 4000; ++step) {
    now += rng.uniform(0.0, 10.0);
    const auto who = static_cast<peer::PeerId>(rng.uniform_int(1, 600));
    // Mirror the tracker's own expiry rule on the reference first.
    for (auto it = last_seen.begin(); it != last_seen.end();) {
      if (it->first != who && now - it->second > 500.0) {
        reference.erase(it->first);
        it = last_seen.erase(it);
      } else {
        ++it;
      }
    }
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.15 && reference.count(who) != 0) {
      tracker.announce(who, peer::AnnounceEvent::kStopped, false,
                       rng, now);
      reference.erase(who);
      last_seen.erase(who);
      continue;
    }
    const auto event = reference.count(who) != 0
                           ? peer::AnnounceEvent::kRegular
                           : peer::AnnounceEvent::kStarted;
    const auto result =
        tracker.announce(who, event, /*is_seed=*/roll > 0.8, rng, now);
    reference.insert(who);
    last_seen[who] = now;
    ASSERT_EQ(tracker.num_members(), reference.size()) << "step " << step;
    // The sample: right size, unique, never the announcer, all members.
    const std::size_t expect =
        std::min<std::size_t>(20, reference.size() - 1);
    ASSERT_EQ(result.peers.size(), expect) << "step " << step;
    std::set<peer::PeerId> seen;
    for (const peer::PeerId p : result.peers) {
      EXPECT_NE(p, who);
      EXPECT_TRUE(seen.insert(p).second) << "duplicate peer in sample";
      EXPECT_EQ(reference.count(p), 1u) << "sampled a non-member";
    }
  }
}

// --- catalog parity and the builder ----------------------------------------

TEST(ScenarioCatalog, Table1EntriesMatchHistoricalConstruction) {
  for (int id = 1; id <= 26; ++id) {
    const auto want =
        swarm::scenario_from_table1(id, swarm::sweep_scale_limits());
    const auto* entry = swarm::find_scenario(want.name);
    ASSERT_NE(entry, nullptr) << want.name;
    const auto& got = entry->config;
    EXPECT_EQ(got.initial_seeds, want.initial_seeds) << want.name;
    EXPECT_EQ(got.initial_leechers, want.initial_leechers) << want.name;
    EXPECT_EQ(got.num_pieces, want.num_pieces) << want.name;
    EXPECT_EQ(got.leechers_warm, want.leechers_warm) << want.name;
    EXPECT_DOUBLE_EQ(got.arrival_rate, want.arrival_rate) << want.name;
    EXPECT_DOUBLE_EQ(got.duration, want.duration) << want.name;
  }
}

TEST(ScenarioCatalog, PerfTiersAreFrozen) {
  // The perf gate compares BENCH_perf.json numbers across commits; these
  // parameters moving would silently invalidate the baseline.
  const auto small = swarm::catalog_scenario("perf_small");
  EXPECT_EQ(small.initial_leechers, 48u);
  EXPECT_EQ(small.num_pieces, 128u);
  EXPECT_EQ(small.piece_size, 64u * 1024);
  const auto huge = swarm::catalog_scenario("perf_huge");
  EXPECT_EQ(huge.initial_leechers, 2000u);
  EXPECT_EQ(huge.max_population, 2400u);
  const auto pkt = swarm::catalog_scenario("pkt_huge");
  EXPECT_EQ(pkt.initial_leechers, 2048u);
  EXPECT_EQ(pkt.network_backend, "packet");
  EXPECT_EQ(pkt.block_size, 256u * 1024);
  // Every entry must be runnable as-is.
  for (const auto& entry : swarm::scenario_catalog()) {
    EXPECT_EQ(swarm::validate_scenario(entry.config), "") << entry.name;
    EXPECT_EQ(entry.name, entry.config.name);
  }
}

TEST(ScenarioCatalog, UnknownNamesFailLoudly) {
  EXPECT_EQ(swarm::find_scenario("no-such-scenario"), nullptr);
  EXPECT_THROW(swarm::catalog_scenario("no-such-scenario"),
               std::invalid_argument);
}

TEST(ScenarioBuilder, ScaleMultipliesThePopulationAxis) {
  const auto base = swarm::catalog_scenario("mega-flash");
  const auto ten = swarm::ScenarioBuilder::from_catalog("mega-flash")
                       .scale(10.0)
                       .name("mega-flash-10k")
                       .build();
  EXPECT_EQ(ten.initial_leechers, base.initial_leechers * 10);
  EXPECT_EQ(ten.initial_seeds, base.initial_seeds * 10);
  EXPECT_EQ(ten.max_population, base.max_population * 10);
  EXPECT_DOUBLE_EQ(ten.arrival_rate, base.arrival_rate * 10.0);
  // The non-population axes stay put.
  EXPECT_EQ(ten.num_pieces, base.num_pieces);
  EXPECT_DOUBLE_EQ(ten.duration, base.duration);
  EXPECT_EQ(ten.name, "mega-flash-10k");

  // Scaling down never erases a role that existed.
  const auto tiny = swarm::ScenarioBuilder(base).scale(0.001).build();
  EXPECT_GE(tiny.initial_seeds, 1u);
  EXPECT_GE(tiny.initial_leechers, 1u);

  EXPECT_THROW(swarm::ScenarioBuilder(base).scale(0.0),
               std::invalid_argument);
  EXPECT_THROW(swarm::ScenarioBuilder(base).scale(-2.0),
               std::invalid_argument);
}

TEST(ScenarioValidation, BuilderRejectsImpossibleGeometry) {
  swarm::ScenarioBuilder builder;
  builder.content(16, 16 * 1024, 64 * 1024);  // block > piece
  EXPECT_THROW((void)builder.build(), std::invalid_argument);
  builder.content(16, 256 * 1024, 16 * 1024);
  builder.warm(0.8, 0.2);  // empty warm range
  EXPECT_THROW((void)builder.build(), std::invalid_argument);
  builder.warm(0.2, 0.8);
  EXPECT_EQ(swarm::validate_scenario(builder.build()), "");
}

TEST(ScenarioValidation, InvalidConfigBecomesFailedJobStatus) {
  // The batch runner must map the constructor throw to a per-job failed
  // status (and a report row), not a crashed sweep.
  runner::BatchJob job;
  job.id = 1;
  job.name = "bad-geometry";
  job.config.name = "bad-geometry";
  job.config.block_size = 1024 * 1024;  // exceeds the 256 KiB piece
  job.seed = 1;
  runner::BatchRunner batch(runner::BatchOptions{});
  const auto results = batch.run(
      {job}, [](const runner::BatchJob& j, const runner::JobContext& ctx) {
        return runner::run_scenario_job(j, ctx, 100.0);
      });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, runner::JobStatus::kFailed);
  EXPECT_NE(results[0].error.find("block_size"), std::string::npos)
      << results[0].error;
  EXPECT_NE(results[0].error.find("bad-geometry"), std::string::npos)
      << results[0].error;
}

// --- SwarmProbe detail cap --------------------------------------------------

TEST(SwarmProbeDetailCap, CountsAllPeersButCapsLogs) {
  instrument::MetricsRegistry registry;
  instrument::SwarmProbe::Options opts;
  opts.detail_peer_cap = 2;
  instrument::SwarmProbe probe(registry, 8, opts);
  for (peer::PeerId id = 1; id <= 5; ++id) {
    probe.on_start(id, 1.0 * id);
  }
  EXPECT_EQ(probe.tracked_peers(), 5u);
  // First two tracked peers carry full logs; the rest count only.
  EXPECT_NE(probe.peer_log(1), nullptr);
  EXPECT_NE(probe.peer_log(2), nullptr);
  EXPECT_EQ(probe.peer_log(3), nullptr);
  EXPECT_EQ(probe.peer_log(5), nullptr);
  const instrument::MetricId starts = registry.find("peers_started");
  ASSERT_NE(starts, instrument::kNoMetric);
  EXPECT_DOUBLE_EQ(registry.value(starts), 5.0);
}

TEST(SwarmProbeDetailCap, ZeroMeansUnlimited) {
  instrument::MetricsRegistry registry;
  instrument::SwarmProbe probe(registry, 8);
  for (peer::PeerId id = 1; id <= 4; ++id) probe.on_start(id, 1.0);
  for (peer::PeerId id = 1; id <= 4; ++id) {
    EXPECT_NE(probe.peer_log(id), nullptr) << id;
  }
}

}  // namespace
}  // namespace swarmlab
