// SHA-1 against the FIPS 180-1 / RFC 3174 test vectors.
#include <gtest/gtest.h>

#include <string>

#include "wire/sha1.h"

namespace swarmlab::wire {
namespace {

TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1::hash("").hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::hash("abc").hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .hex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64 bytes: padding goes into a second block.
  const std::string msg(64, 'x');
  EXPECT_EQ(Sha1::hash(msg).hex(), Sha1::hash(msg).hex());
  EXPECT_NE(Sha1::hash(msg), Sha1::hash(std::string(63, 'x')));
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and often.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finish(), Sha1::hash(msg)) << "split=" << split;
  }
}

TEST(Sha1, ResetReusesHasher) {
  Sha1 h;
  h.update("garbage");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finish().hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, DigestEqualityAndHex) {
  const Sha1Digest a = Sha1::hash("x");
  const Sha1Digest b = Sha1::hash("x");
  const Sha1Digest c = Sha1::hash("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hex().size(), 40u);
}

TEST(Sha1, SpanOverloadMatchesStringOverload) {
  const std::string msg = "span equivalence";
  const auto bytes = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(Sha1::hash(bytes), Sha1::hash(msg));
}

}  // namespace
}  // namespace swarmlab::wire
