// TraceWriter and ObserverList tests.
#include <gtest/gtest.h>

#include <sstream>

#include "instrument/local_log.h"
#include "instrument/trace.h"
#include "swarm/swarm.h"

namespace swarmlab::instrument {
namespace {

TEST(TraceWriter, RecordsEventsInOrder) {
  TraceWriter trace;
  trace.on_start(0.0);
  trace.on_peer_joined(1.0, 7);
  trace.on_message_sent(2.0, 7, wire::Message{wire::InterestedMsg{}});
  trace.on_block_received(3.0, 7, {4, 2}, 16384);
  trace.on_piece_complete(4.0, 4);
  trace.on_became_seed(5.0);
  const auto& ev = trace.events();
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_EQ(ev[0].kind, "start");
  EXPECT_EQ(ev[1].kind, "peer_joined");
  EXPECT_EQ(ev[1].remote, 7u);
  EXPECT_EQ(ev[2].detail, "interested");
  EXPECT_EQ(ev[3].detail, "4/2:16384");
  EXPECT_EQ(ev[4].detail, "4");
  EXPECT_EQ(ev[5].kind, "became_seed");
}

TEST(TraceWriter, ChokeRoundDetail) {
  TraceWriter trace;
  trace.on_choke_round(10.0, true, {3, 1, 4});
  EXPECT_EQ(trace.events()[0].detail, "seed:3 1 4");
  trace.on_choke_round(20.0, false, {});
  EXPECT_EQ(trace.events()[1].detail, "leecher:");
}

TEST(TraceWriter, CapDropsExcess) {
  TraceWriter trace(/*max_events=*/2);
  trace.on_start(0.0);
  trace.on_end_game(1.0);
  trace.on_became_seed(2.0);
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);
}

TEST(TraceWriter, CsvOutput) {
  TraceWriter trace;
  trace.on_piece_complete(1.5, 9);
  std::ostringstream out;
  trace.write_csv(out);
  EXPECT_EQ(out.str(), "time,kind,remote,detail\n1.5,piece_done,0,9\n");
}

TEST(ObserverList, FansOutToAll) {
  LocalPeerLog log(8);
  TraceWriter trace;
  ObserverList list;
  list.add(&log);
  list.add(&trace);
  list.on_start(0.0);
  list.on_peer_joined(1.0, 3);
  list.on_piece_complete(2.0, 5);
  list.on_became_seed(3.0);
  EXPECT_EQ(log.piece_events().size(), 1u);
  EXPECT_TRUE(log.local_is_seed());
  EXPECT_EQ(trace.events().size(), 4u);
}

TEST(ObserverList, WorksAsPeerObserverInASwarm) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(4 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  peer::PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.upload_capacity = 50e3;
  sw.start_peer(sw.add_peer(std::move(seed_cfg)));

  LocalPeerLog log(4);
  TraceWriter trace;
  ObserverList list;
  list.add(&log);
  list.add(&trace);
  peer::PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const peer::PeerId l = sw.add_peer(std::move(cfg), &list);
  sw.start_peer(l);
  sim.run_until(2000.0);
  EXPECT_TRUE(sw.find_peer(l)->is_seed());
  EXPECT_EQ(log.piece_events().size(), 4u);
  // The trace saw the same completions plus the message flow around them.
  std::size_t piece_rows = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == "piece_done") ++piece_rows;
  }
  EXPECT_EQ(piece_rows, 4u);
  EXPECT_GT(trace.events().size(), 20u);
}

}  // namespace
}  // namespace swarmlab::instrument
