// TraceWriter and ObserverList tests.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "instrument/local_log.h"
#include "instrument/trace.h"
#include "swarm/swarm.h"

namespace swarmlab::instrument {
namespace {

TEST(TraceWriter, RecordsEventsInOrder) {
  TraceWriter trace;
  trace.on_start(0.0);
  trace.on_peer_joined(1.0, 7);
  trace.on_message_sent(2.0, 7, wire::Message{wire::InterestedMsg{}});
  trace.on_block_received(3.0, 7, {4, 2}, 16384);
  trace.on_piece_complete(4.0, 4);
  trace.on_became_seed(5.0);
  const auto& ev = trace.events();
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_EQ(ev[0].kind, "start");
  EXPECT_EQ(ev[1].kind, "peer_joined");
  EXPECT_EQ(ev[1].remote, 7u);
  EXPECT_EQ(ev[2].detail, "interested");
  EXPECT_EQ(ev[3].detail, "4/2:16384");
  EXPECT_EQ(ev[4].detail, "4");
  EXPECT_EQ(ev[5].kind, "became_seed");
}

TEST(TraceWriter, ChokeRoundDetail) {
  TraceWriter trace;
  trace.on_choke_round(10.0, true, {3, 1, 4});
  EXPECT_EQ(trace.events()[0].detail, "seed:3 1 4");
  trace.on_choke_round(20.0, false, {});
  EXPECT_EQ(trace.events()[1].detail, "leecher:");
}

TEST(TraceWriter, CapDropsExcess) {
  TraceWriter trace(/*max_events=*/2);
  trace.on_start(0.0);
  trace.on_end_game(1.0);
  trace.on_became_seed(2.0);
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);
}

TEST(TraceWriter, CsvOutput) {
  TraceWriter trace;
  trace.on_piece_complete(1.5, 9);
  std::ostringstream out;
  trace.write_csv(out);
  EXPECT_EQ(out.str(), "time,kind,remote,detail\n1.5,piece_done,0,9\n");
}

/// Minimal RFC 4180 reader for the round-trip test: splits one CSV
/// stream into rows of fields, honoring quoted fields and doubled
/// quotes.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      field += c;
    }
  }
  return rows;
}

TEST(TraceWriter, CsvEscapingRoundTrips) {
  TraceWriter trace;
  trace.annotate(1.0, "plain", 3, "no escaping needed");
  trace.annotate(2.0, "kind,with,commas", 4, "detail,with,commas");
  trace.annotate(3.0, "quote\"kind", 5, "say \"hi\" twice \"\"");
  trace.annotate(4.0, "newline", 6, "line1\nline2");
  trace.annotate(5.0, "cr", 7, "a\rb");
  std::ostringstream out;
  trace.write_csv(out);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 6u);  // header + 5 events
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"time", "kind", "remote", "detail"}));
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    const auto& ev = trace.events()[i];
    const auto& row = rows[i + 1];
    ASSERT_EQ(row.size(), 4u) << "row " << i;
    EXPECT_EQ(row[1], ev.kind);
    EXPECT_EQ(row[2], std::to_string(ev.remote));
    EXPECT_EQ(row[3], ev.detail);
  }
}

TEST(TraceWriter, PlainFieldsStayUnquoted) {
  // The historical format: no quoting unless a field needs it, so
  // existing downstream parsers keep working on clean traces.
  TraceWriter trace;
  trace.on_piece_complete(1.5, 9);
  trace.on_choke_round(2.0, true, {3, 1});
  std::ostringstream out;
  trace.write_csv(out);
  EXPECT_EQ(out.str(),
            "time,kind,remote,detail\n"
            "1.5,piece_done,0,9\n"
            "2,choke_round,0,seed:3 1\n");
}

TEST(TraceWriter, TruncationEmitsSentinelRow) {
  TraceWriter trace(/*max_events=*/1);
  trace.on_start(0.0);
  trace.on_end_game(10.0);
  trace.on_became_seed(20.0);
  std::ostringstream out;
  trace.write_csv(out);
  // The sentinel carries the newest (dropped) event time and the count.
  EXPECT_EQ(out.str(),
            "time,kind,remote,detail\n"
            "0,start,0,\n"
            "20,trace_truncated,0,dropped=2\n");
}

TEST(TraceWriter, JsonlExportCarriesSchemaAndTrailer) {
  TraceWriter trace(/*max_events=*/2);
  trace.on_peer_joined(1.5, 7);
  trace.annotate(2.0, "weird\"kind", 8, "tab\there \"quoted\"");
  trace.on_became_seed(3.0);  // dropped by the cap
  std::ostringstream out;
  trace.write_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"schema\":\"swarmlab.trace/1\"}\n"
            "{\"t\":1.5,\"kind\":\"peer_joined\",\"remote\":7,"
            "\"detail\":\"\"}\n"
            "{\"t\":2,\"kind\":\"weird\\\"kind\",\"remote\":8,"
            "\"detail\":\"tab\\there \\\"quoted\\\"\"}\n"
            "{\"events\":2,\"dropped\":1}\n");
}

TEST(ObserverList, FansOutToAll) {
  LocalPeerLog log(8);
  TraceWriter trace;
  ObserverList list;
  list.add(&log);
  list.add(&trace);
  list.on_start(0.0);
  list.on_peer_joined(1.0, 3);
  list.on_piece_complete(2.0, 5);
  list.on_became_seed(3.0);
  EXPECT_EQ(log.piece_events().size(), 1u);
  EXPECT_TRUE(log.local_is_seed());
  EXPECT_EQ(trace.events().size(), 4u);
}

TEST(ObserverList, WorksAsPeerObserverInASwarm) {
  sim::Simulation sim(1);
  const wire::ContentGeometry geo(4 * 256 * 1024);
  swarm::Swarm sw(sim, geo);
  peer::PeerConfig seed_cfg;
  seed_cfg.start_complete = true;
  seed_cfg.upload_capacity = 50e3;
  sw.start_peer(sw.add_peer(std::move(seed_cfg)));

  LocalPeerLog log(4);
  TraceWriter trace;
  ObserverList list;
  list.add(&log);
  list.add(&trace);
  peer::PeerConfig cfg;
  cfg.upload_capacity = 50e3;
  const peer::PeerId l = sw.add_peer(std::move(cfg), &list);
  sw.start_peer(l);
  sim.run_until(2000.0);
  EXPECT_TRUE(sw.find_peer(l)->is_seed());
  EXPECT_EQ(log.piece_events().size(), 4u);
  // The trace saw the same completions plus the message flow around them.
  std::size_t piece_rows = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == "piece_done") ++piece_rows;
  }
  EXPECT_EQ(piece_rows, 4u);
  EXPECT_GT(trace.events().size(), 20u);
}

}  // namespace
}  // namespace swarmlab::instrument
