// net::Network seam contract, applied to every real backend.
//
// These tests pin the behaviors the rest of the system leans on —
// fault::FaultInjector holds FlowIds across arbitrary interleavings,
// upload_servicer.cpp checks has_flow on stored ids, Swarm relies on
// send_control ordering — so any backend that passes here can be swapped
// in behind the seam without touching swarm/fault code. They assert
// *contract* properties (completion happens, stale ids stay inert,
// ordering holds), not model-specific timings; model timing is covered
// by net_test.cpp (fluid) and the PacketNetwork tests below.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/backend.h"
#include "net/network.h"
#include "net/packet_network.h"
#include "net/types.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace swarmlab::net {
namespace {

class NetworkContract : public ::testing::TestWithParam<const char*> {
 protected:
  NetworkContract()
      : sim_(1), net_(make_network(GetParam(), sim_, /*control_latency=*/0.05)) {}

  sim::Simulation sim_;
  std::unique_ptr<Network> net_;
};

TEST_P(NetworkContract, FlowCompletesAndRetires) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  const FlowId f = net_->start_flow(a, b, 1000, [&] { done = sim_.now(); });
  EXPECT_TRUE(net_->has_flow(f));
  EXPECT_EQ(net_->active_flows(), 1u);
  sim_.run();
  // 1000 B through a 100 B/s uplink: >= 10 s in any backend (plus any
  // model-specific propagation), and the flow is gone afterwards.
  EXPECT_GE(done, 10.0 - 0.01);
  EXPECT_LE(done, 10.5);
  EXPECT_FALSE(net_->has_flow(f));
  EXPECT_EQ(net_->active_flows(), 0u);
}

TEST_P(NetworkContract, CancelNeverFiresCallback) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  bool fired = false;
  const FlowId f = net_->start_flow(a, b, 1000, [&] { fired = true; });
  sim_.schedule_in(5.0, [&] { EXPECT_TRUE(net_->cancel_flow(f)); });
  sim_.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(net_->has_flow(f));
  EXPECT_EQ(net_->active_flows(), 0u);
}

TEST_P(NetworkContract, StaleFlowIdCannotTouchSlotsNextTenant) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  const FlowId first = net_->start_flow(a, b, 1000, [] {});
  ASSERT_TRUE(net_->cancel_flow(first));
  // The slot is recycled; the new tenant's id must differ even though it
  // occupies the same slot.
  const FlowId second = net_->start_flow(a, b, 1000, [] {});
  EXPECT_NE(second, first);
  EXPECT_FALSE(net_->has_flow(first));
  EXPECT_TRUE(net_->has_flow(second));
  EXPECT_EQ(net_->flow_rate(first), 0.0);
  // A stale cancel is a no-op: it reports failure and leaves the new
  // tenant running (this is what fault injection relies on under churn).
  EXPECT_FALSE(net_->cancel_flow(first));
  EXPECT_TRUE(net_->has_flow(second));
  EXPECT_EQ(net_->active_flows(), 1u);
}

TEST_P(NetworkContract, StalledFlowResumesWhenCapacityReturns) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  net_->start_flow(a, b, 1000, [&] { done = sim_.now(); });
  // 200 B transfer by t=2; parked for 8 s; the remaining 800 B flow at
  // 100 B/s once capacity returns: completion at ~18 s. The tolerance
  // absorbs model-specific propagation/serialization offsets.
  sim_.schedule_in(2.0, [&] { net_->set_node_capacity(a, 0.0, kUnlimited); });
  sim_.schedule_in(10.0, [&] {
    net_->set_node_capacity(a, 100.0, kUnlimited);
  });
  sim_.run();
  ASSERT_GE(done, 0.0) << "flow never resumed after capacity returned";
  EXPECT_NEAR(done, 18.0, 0.2);
}

TEST_P(NetworkContract, ActiveFlowIdsEnumerateInCreationOrder) {
  const NodeId a = net_->add_node(kUnlimited, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  const NodeId c = net_->add_node(100.0, 100.0);
  std::vector<FlowId> created;
  created.push_back(net_->start_flow(c, a, 50000, [] {}));
  created.push_back(net_->start_flow(c, b, 50000, [] {}));
  created.push_back(net_->start_flow(a, c, 50000, [] {}));
  EXPECT_EQ(net_->active_flow_ids(), created);
  // Cancelling in the middle preserves the relative order of survivors,
  // and a replacement flow enumerates last even if it reuses the slot.
  net_->cancel_flow(created[1]);
  created.erase(created.begin() + 1);
  created.push_back(net_->start_flow(b, c, 50000, [] {}));
  EXPECT_EQ(net_->active_flow_ids(), created);
}

TEST_P(NetworkContract, ControlExtraDelayOrdersAfterPlainControl) {
  std::vector<int> order;
  net_->send_control([&] { order.push_back(1); }, /*extra_delay=*/0.5);
  net_->send_control([&] { order.push_back(2); });
  net_->send_control([&] { order.push_back(3); });
  sim_.run();
  // Plain controls arrive after control_latency in send order; the
  // delayed one lands strictly later despite being sent first.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 1);
}

TEST_P(NetworkContract, RemoveNodeAbortsFlowsSilently) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  bool fired = false;
  const FlowId f = net_->start_flow(a, b, 100000, [&] { fired = true; });
  sim_.schedule_in(1.0, [&] { net_->remove_node(a); });
  sim_.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(net_->has_node(a));
  EXPECT_TRUE(net_->has_node(b));
  EXPECT_FALSE(net_->has_flow(f));
  EXPECT_EQ(net_->active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, NetworkContract,
                         ::testing::Values("fluid", "packet"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// --- backend registry (make_network) ----------------------------------------

TEST(NetworkBackendRegistry, ListsBothBuiltinsSorted) {
  const std::vector<std::string> names = network_backends();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "fluid");
  EXPECT_EQ(names[1], "packet");
}

TEST(NetworkBackendRegistry, UnknownNameFailsListingRegisteredBackends) {
  sim::Simulation sim(1);
  try {
    make_network("carrier-pigeon", sim, 0.05);
    FAIL() << "make_network accepted an unknown backend name";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("carrier-pigeon"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fluid"), std::string::npos) << msg;
    EXPECT_NE(msg.find("packet"), std::string::npos) << msg;
  }
}

TEST(NetworkBackendRegistry, DuplicateRegistrationIsRejected) {
  // The built-in entry stays; a second registration under the same name
  // reports failure instead of silently replacing it.
  EXPECT_FALSE(register_network_backend(
      "fluid", [](sim::Simulation&, double) -> std::unique_ptr<Network> {
        return nullptr;
      }));
  sim::Simulation sim(1);
  EXPECT_NE(make_network("fluid", sim, 0.05), nullptr);
}

// --- PacketNetwork model-specific timing -------------------------------------

struct PacketHarness {
  PacketHarness() : sim(1), net(sim, /*control_latency=*/0.05) {}
  sim::Simulation sim;
  PacketNetwork net;
};

TEST(PacketNetwork, SingleSegmentFlowTimesUplinkPlusPropagation) {
  PacketHarness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  h.net.start_flow(a, b, 1000, [&] { done = h.sim.now(); });
  h.sim.run();
  // One 1000 B segment: 10 s serialization + 0.05 s propagation; the
  // unlimited downlink serves it instantly.
  EXPECT_NEAR(done, 10.05, 0.01);
}

TEST(PacketNetwork, SegmentsPipelineAcrossThePropagationDelay) {
  PacketHarness h;
  const NodeId a = h.net.add_node(4096.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  // 3 full segments at 1 segment/s: the last leaves the uplink at t=3 and
  // lands 0.05 later — earlier segments propagate while later ones
  // serialize (store-and-forward, not 3 * (1 + 0.05)).
  h.net.start_flow(a, b, 3 * 4096, [&] { done = h.sim.now(); });
  h.sim.run();
  EXPECT_NEAR(done, 3.05, 0.01);
}

TEST(PacketNetwork, RoundRobinSharesTheUplinkBySegments) {
  PacketHarness h;
  const NodeId a = h.net.add_node(4096.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId c = h.net.add_node(kUnlimited, kUnlimited);
  double b_done = -1.0, c_done = -1.0;
  // Two 2-segment flows interleave on a's uplink: b0 c0 b1 c1, one
  // second per segment. b's last segment exits at t=3, c's at t=4.
  h.net.start_flow(a, b, 2 * 4096, [&] { b_done = h.sim.now(); });
  h.net.start_flow(a, c, 2 * 4096, [&] { c_done = h.sim.now(); });
  h.sim.run();
  EXPECT_NEAR(b_done, 3.05, 0.01);
  EXPECT_NEAR(c_done, 4.05, 0.01);
}

TEST(PacketNetwork, DownlinkSerializesCompetingArrivals) {
  PacketHarness h;
  const NodeId a = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId r = h.net.add_node(kUnlimited, 4096.0);
  double first = -1.0, second = -1.0;
  // Both segments arrive at r at ~0.05; r's downlink serves them one at
  // a time (1 s each), in arrival order.
  h.net.start_flow(a, r, 4096, [&] { first = h.sim.now(); });
  h.net.start_flow(b, r, 4096, [&] { second = h.sim.now(); });
  h.sim.run();
  EXPECT_NEAR(first, 1.05, 0.01);
  EXPECT_NEAR(second, 2.05, 0.01);
}

TEST(PacketNetwork, CancelMidFlightDropsPropagatingSegments) {
  PacketHarness h;
  const NodeId a = h.net.add_node(4096.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, 4096.0);
  bool fired = false;
  const FlowId f =
      h.net.start_flow(a, b, 4 * 4096, [&] { fired = true; });
  // Cancel while segment 2 is on the wire and segment 1 is in downlink
  // service; neither may complete the flow or wedge b's downlink.
  h.sim.schedule_in(2.02, [&] { EXPECT_TRUE(h.net.cancel_flow(f)); });
  double late_done = -1.0;
  h.sim.schedule_in(3.0, [&] {
    h.net.start_flow(a, b, 4096, [&] { late_done = h.sim.now(); });
  });
  h.sim.run();
  EXPECT_FALSE(fired);
  // The follow-up flow proves both links drained cleanly: 1 s uplink
  // from t=3, propagation, 1 s downlink.
  EXPECT_NEAR(late_done, 5.05, 0.01);
}

TEST(PacketNetwork, CapacityChangeRescalesInServiceSegment) {
  PacketHarness h;
  const NodeId a = h.net.add_node(4096.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  h.net.start_flow(a, b, 4096, [&] { done = h.sim.now(); });
  // Half the segment (2048 B) is out by t=0.5; the rest serializes at a
  // quarter speed: 0.5 + 2048/1024 = 2.5, plus propagation.
  h.sim.schedule_in(0.5, [&] {
    h.net.set_node_capacity(a, 1024.0, kUnlimited);
  });
  h.sim.run();
  EXPECT_NEAR(done, 2.55, 0.01);
}

// --- Train coalescing: timing identity vs single-segment execution ----------
//
// max_train <= 1 turns coalescing off, leaving the original one-event-
// per-segment execution. The coalesced path must be *float-exact*
// identical — trains compute the same `t += spacing` chains the single-
// segment path walks — so these compare completion times with EXPECT_EQ,
// not a tolerance.

/// Two PacketNetworks, one with coalescing off and one with it on,
/// driven through identical scripts.
struct TrainPair {
  TrainPair()
      : sim1(1),
        simk(1),
        net1(sim1, 0.05, PacketNetwork::kDefaultSegmentBytes, /*max_train=*/1),
        netk(simk, 0.05, PacketNetwork::kDefaultSegmentBytes,
             PacketNetwork::kDefaultMaxTrain) {}
  sim::Simulation sim1;
  sim::Simulation simk;
  PacketNetwork net1;
  PacketNetwork netk;
};

TEST(PacketNetworkTrains, UncontestedFlowMatchesSingleSegmentExactly) {
  TrainPair p;
  double done1 = -1.0, donek = -1.0;
  for (auto* side : {&p.net1, &p.netk}) {
    const NodeId a = side->add_node(4096.0, kUnlimited);
    const NodeId b = side->add_node(kUnlimited, kUnlimited);
    auto& done = side == &p.net1 ? done1 : donek;
    auto& sim = side == &p.net1 ? p.sim1 : p.simk;
    // 48 segments on an uncontested uplink: prime train territory.
    side->start_flow(a, b, 48 * 4096, [&done, &sim] { done = sim.now(); });
  }
  p.sim1.run();
  p.simk.run();
  EXPECT_EQ(done1, donek);
  EXPECT_GT(donek, 0.0);
  // The coalesced side actually coalesced; the reference side cannot.
  EXPECT_EQ(p.net1.train_segments(), 0u);
  EXPECT_GT(p.netk.train_segments(), 0u);
  // And it did so with strictly fewer events.
  EXPECT_LT(p.simk.events_executed(), p.sim1.events_executed());
}

TEST(PacketNetworkTrains, CancelMidTrainLeavesBothLinksClean) {
  TrainPair p;
  for (auto side : {0, 1}) {
    auto& sim = side == 0 ? p.sim1 : p.simk;
    auto& net = side == 0 ? p.net1 : p.netk;
    const NodeId a = net.add_node(4096.0, kUnlimited);
    const NodeId b = net.add_node(kUnlimited, 4096.0);
    bool fired = false;
    const FlowId f = net.start_flow(a, b, 32 * 4096, [&fired] { fired = true; });
    // Cancel while a train is in flight (several segments queued/wired).
    sim.schedule_in(5.5, [&net, f] { EXPECT_TRUE(net.cancel_flow(f)); });
    double late = -1.0;
    sim.schedule_in(8.0, [&net, &sim, &late, a, b] {
      net.start_flow(a, b, 4096, [&late, &sim] { late = sim.now(); });
    });
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(net.active_flows(), 0u);
    // Both links drained: 1 s uplink from t=8, 0.05 propagation, 1 s
    // downlink service.
    EXPECT_NEAR(late, 10.05, 0.01);
  }
}

TEST(PacketNetworkTrains, CapacityChangeMidTrainMatchesSingleSegment) {
  TrainPair p;
  double done1 = -1.0, donek = -1.0;
  for (auto side : {0, 1}) {
    auto& sim = side == 0 ? p.sim1 : p.simk;
    auto& net = side == 0 ? p.net1 : p.netk;
    auto& done = side == 0 ? done1 : donek;
    const NodeId a = net.add_node(4096.0, kUnlimited);
    const NodeId b = net.add_node(kUnlimited, kUnlimited);
    net.start_flow(a, b, 40 * 4096, [&done, &sim] { done = sim.now(); });
    // Halve the uplink mid-train, park it entirely, then restore: the
    // coalesced side must settle its train partially and rebuild the
    // exact single-segment schedule at each step.
    sim.schedule_in(3.25, [&net, a] { net.set_node_capacity(a, 2048.0, kUnlimited); });
    sim.schedule_in(7.0, [&net, a] { net.set_node_capacity(a, 0.0, kUnlimited); });
    sim.schedule_in(12.0, [&net, a] { net.set_node_capacity(a, 4096.0, kUnlimited); });
    sim.run();
  }
  ASSERT_GE(done1, 0.0);
  EXPECT_EQ(done1, donek);
}

TEST(PacketNetworkTrains, RandomizedScriptIsTimingIdentical) {
  // A mixed battery: contended uplinks (trains break and reform), cancels
  // and capacity changes at arbitrary times. Every flow's completion time
  // must be float-identical across the two execution strategies.
  struct Op {
    double at;
    int kind;  // 0 = start_flow, 1 = cancel (an earlier op's flow), 2 = capacity
    std::size_t src, dst;    // node indices (kind 0/2)
    std::size_t target;      // earlier op index whose flow to cancel (kind 1)
    std::uint64_t bytes;     // kind 0
    double up;               // kind 2; 0 parks the uplink
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::Rng rng(seed);
    // Generate one script, then apply it verbatim to both sides.
    std::vector<Op> script;
    for (std::size_t i = 0; i < 60; ++i) {
      Op op;
      op.at = rng.uniform(0.0, 20.0);
      const double d = rng.uniform(0.0, 1.0);
      op.kind = d < 0.6 ? 0 : (d < 0.8 && i > 0 ? 1 : 2);
      op.src = static_cast<std::size_t>(rng.uniform(0.0, 4.0)) % 4;
      op.dst =
          (op.src + 1 + static_cast<std::size_t>(rng.uniform(0.0, 3.0)) % 3) % 4;
      op.target = i > 0 ? static_cast<std::size_t>(
                              rng.uniform(0.0, static_cast<double>(i))) %
                              i
                        : 0;
      op.bytes = (1 + static_cast<std::uint64_t>(rng.uniform(0.0, 40.0))) * 4096;
      op.up = rng.uniform(0.0, 1.0) < 0.25
                  ? 0.0
                  : 4096.0 * (1.0 + rng.uniform(0.0, 3.0));
      script.push_back(op);
    }
    std::vector<double> done1, donek;
    for (int side = 0; side < 2; ++side) {
      sim::Simulation sim(1);
      PacketNetwork net(sim, 0.05, PacketNetwork::kDefaultSegmentBytes,
                        side == 0 ? 1 : PacketNetwork::kDefaultMaxTrain);
      std::vector<NodeId> nodes;
      for (int n = 0; n < 4; ++n) nodes.push_back(net.add_node(4096.0, 8192.0));
      auto& done = side == 0 ? done1 : donek;
      done.assign(script.size(), -1.0);
      std::vector<FlowId> flows(script.size(), 0);
      for (std::size_t i = 0; i < script.size(); ++i) {
        const Op op = script[i];
        sim.schedule_at(op.at, [&net, &sim, &done, &flows, &nodes, op, i] {
          if (op.kind == 0) {
            flows[i] = net.start_flow(nodes[op.src], nodes[op.dst], op.bytes,
                                      [&done, &sim, i] { done[i] = sim.now(); });
          } else if (op.kind == 1) {
            // Cancelling a finished/cancelled flow is a no-op on both
            // sides (identical history => identical outcome).
            if (flows[op.target] != 0) net.cancel_flow(flows[op.target]);
          } else {
            net.set_node_capacity(nodes[op.src], op.up, 8192.0);
          }
        });
      }
      sim.run();
    }
    EXPECT_EQ(done1, donek) << "seed " << seed;
  }
}

}  // namespace
}  // namespace swarmlab::net
