// net::Network seam contract, applied to every real backend.
//
// These tests pin the behaviors the rest of the system leans on —
// fault::FaultInjector holds FlowIds across arbitrary interleavings,
// upload_servicer.cpp checks has_flow on stored ids, Swarm relies on
// send_control ordering — so any backend that passes here can be swapped
// in behind the seam without touching swarm/fault code. They assert
// *contract* properties (completion happens, stale ids stay inert,
// ordering holds), not model-specific timings; model timing is covered
// by net_test.cpp (fluid) and the PacketNetwork tests below.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/backend.h"
#include "net/network.h"
#include "net/packet_network.h"
#include "net/types.h"
#include "sim/simulation.h"

namespace swarmlab::net {
namespace {

class NetworkContract : public ::testing::TestWithParam<const char*> {
 protected:
  NetworkContract()
      : sim_(1), net_(make_network(GetParam(), sim_, /*control_latency=*/0.05)) {}

  sim::Simulation sim_;
  std::unique_ptr<Network> net_;
};

TEST_P(NetworkContract, FlowCompletesAndRetires) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  const FlowId f = net_->start_flow(a, b, 1000, [&] { done = sim_.now(); });
  EXPECT_TRUE(net_->has_flow(f));
  EXPECT_EQ(net_->active_flows(), 1u);
  sim_.run();
  // 1000 B through a 100 B/s uplink: >= 10 s in any backend (plus any
  // model-specific propagation), and the flow is gone afterwards.
  EXPECT_GE(done, 10.0 - 0.01);
  EXPECT_LE(done, 10.5);
  EXPECT_FALSE(net_->has_flow(f));
  EXPECT_EQ(net_->active_flows(), 0u);
}

TEST_P(NetworkContract, CancelNeverFiresCallback) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  bool fired = false;
  const FlowId f = net_->start_flow(a, b, 1000, [&] { fired = true; });
  sim_.schedule_in(5.0, [&] { EXPECT_TRUE(net_->cancel_flow(f)); });
  sim_.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(net_->has_flow(f));
  EXPECT_EQ(net_->active_flows(), 0u);
}

TEST_P(NetworkContract, StaleFlowIdCannotTouchSlotsNextTenant) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  const FlowId first = net_->start_flow(a, b, 1000, [] {});
  ASSERT_TRUE(net_->cancel_flow(first));
  // The slot is recycled; the new tenant's id must differ even though it
  // occupies the same slot.
  const FlowId second = net_->start_flow(a, b, 1000, [] {});
  EXPECT_NE(second, first);
  EXPECT_FALSE(net_->has_flow(first));
  EXPECT_TRUE(net_->has_flow(second));
  EXPECT_EQ(net_->flow_rate(first), 0.0);
  // A stale cancel is a no-op: it reports failure and leaves the new
  // tenant running (this is what fault injection relies on under churn).
  EXPECT_FALSE(net_->cancel_flow(first));
  EXPECT_TRUE(net_->has_flow(second));
  EXPECT_EQ(net_->active_flows(), 1u);
}

TEST_P(NetworkContract, StalledFlowResumesWhenCapacityReturns) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  net_->start_flow(a, b, 1000, [&] { done = sim_.now(); });
  // 200 B transfer by t=2; parked for 8 s; the remaining 800 B flow at
  // 100 B/s once capacity returns: completion at ~18 s. The tolerance
  // absorbs model-specific propagation/serialization offsets.
  sim_.schedule_in(2.0, [&] { net_->set_node_capacity(a, 0.0, kUnlimited); });
  sim_.schedule_in(10.0, [&] {
    net_->set_node_capacity(a, 100.0, kUnlimited);
  });
  sim_.run();
  ASSERT_GE(done, 0.0) << "flow never resumed after capacity returned";
  EXPECT_NEAR(done, 18.0, 0.2);
}

TEST_P(NetworkContract, ActiveFlowIdsEnumerateInCreationOrder) {
  const NodeId a = net_->add_node(kUnlimited, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  const NodeId c = net_->add_node(100.0, 100.0);
  std::vector<FlowId> created;
  created.push_back(net_->start_flow(c, a, 50000, [] {}));
  created.push_back(net_->start_flow(c, b, 50000, [] {}));
  created.push_back(net_->start_flow(a, c, 50000, [] {}));
  EXPECT_EQ(net_->active_flow_ids(), created);
  // Cancelling in the middle preserves the relative order of survivors,
  // and a replacement flow enumerates last even if it reuses the slot.
  net_->cancel_flow(created[1]);
  created.erase(created.begin() + 1);
  created.push_back(net_->start_flow(b, c, 50000, [] {}));
  EXPECT_EQ(net_->active_flow_ids(), created);
}

TEST_P(NetworkContract, ControlExtraDelayOrdersAfterPlainControl) {
  std::vector<int> order;
  net_->send_control([&] { order.push_back(1); }, /*extra_delay=*/0.5);
  net_->send_control([&] { order.push_back(2); });
  net_->send_control([&] { order.push_back(3); });
  sim_.run();
  // Plain controls arrive after control_latency in send order; the
  // delayed one lands strictly later despite being sent first.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 1);
}

TEST_P(NetworkContract, RemoveNodeAbortsFlowsSilently) {
  const NodeId a = net_->add_node(100.0, kUnlimited);
  const NodeId b = net_->add_node(kUnlimited, kUnlimited);
  bool fired = false;
  const FlowId f = net_->start_flow(a, b, 100000, [&] { fired = true; });
  sim_.schedule_in(1.0, [&] { net_->remove_node(a); });
  sim_.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(net_->has_node(a));
  EXPECT_TRUE(net_->has_node(b));
  EXPECT_FALSE(net_->has_flow(f));
  EXPECT_EQ(net_->active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, NetworkContract,
                         ::testing::Values("fluid", "packet"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// --- backend registry (make_network) ----------------------------------------

TEST(NetworkBackendRegistry, ListsBothBuiltinsSorted) {
  const std::vector<std::string> names = network_backends();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "fluid");
  EXPECT_EQ(names[1], "packet");
}

TEST(NetworkBackendRegistry, UnknownNameFailsListingRegisteredBackends) {
  sim::Simulation sim(1);
  try {
    make_network("carrier-pigeon", sim, 0.05);
    FAIL() << "make_network accepted an unknown backend name";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("carrier-pigeon"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fluid"), std::string::npos) << msg;
    EXPECT_NE(msg.find("packet"), std::string::npos) << msg;
  }
}

TEST(NetworkBackendRegistry, DuplicateRegistrationIsRejected) {
  // The built-in entry stays; a second registration under the same name
  // reports failure instead of silently replacing it.
  EXPECT_FALSE(register_network_backend(
      "fluid", [](sim::Simulation&, double) -> std::unique_ptr<Network> {
        return nullptr;
      }));
  sim::Simulation sim(1);
  EXPECT_NE(make_network("fluid", sim, 0.05), nullptr);
}

// --- PacketNetwork model-specific timing -------------------------------------

struct PacketHarness {
  PacketHarness() : sim(1), net(sim, /*control_latency=*/0.05) {}
  sim::Simulation sim;
  PacketNetwork net;
};

TEST(PacketNetwork, SingleSegmentFlowTimesUplinkPlusPropagation) {
  PacketHarness h;
  const NodeId a = h.net.add_node(100.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  h.net.start_flow(a, b, 1000, [&] { done = h.sim.now(); });
  h.sim.run();
  // One 1000 B segment: 10 s serialization + 0.05 s propagation; the
  // unlimited downlink serves it instantly.
  EXPECT_NEAR(done, 10.05, 0.01);
}

TEST(PacketNetwork, SegmentsPipelineAcrossThePropagationDelay) {
  PacketHarness h;
  const NodeId a = h.net.add_node(4096.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  // 3 full segments at 1 segment/s: the last leaves the uplink at t=3 and
  // lands 0.05 later — earlier segments propagate while later ones
  // serialize (store-and-forward, not 3 * (1 + 0.05)).
  h.net.start_flow(a, b, 3 * 4096, [&] { done = h.sim.now(); });
  h.sim.run();
  EXPECT_NEAR(done, 3.05, 0.01);
}

TEST(PacketNetwork, RoundRobinSharesTheUplinkBySegments) {
  PacketHarness h;
  const NodeId a = h.net.add_node(4096.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId c = h.net.add_node(kUnlimited, kUnlimited);
  double b_done = -1.0, c_done = -1.0;
  // Two 2-segment flows interleave on a's uplink: b0 c0 b1 c1, one
  // second per segment. b's last segment exits at t=3, c's at t=4.
  h.net.start_flow(a, b, 2 * 4096, [&] { b_done = h.sim.now(); });
  h.net.start_flow(a, c, 2 * 4096, [&] { c_done = h.sim.now(); });
  h.sim.run();
  EXPECT_NEAR(b_done, 3.05, 0.01);
  EXPECT_NEAR(c_done, 4.05, 0.01);
}

TEST(PacketNetwork, DownlinkSerializesCompetingArrivals) {
  PacketHarness h;
  const NodeId a = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  const NodeId r = h.net.add_node(kUnlimited, 4096.0);
  double first = -1.0, second = -1.0;
  // Both segments arrive at r at ~0.05; r's downlink serves them one at
  // a time (1 s each), in arrival order.
  h.net.start_flow(a, r, 4096, [&] { first = h.sim.now(); });
  h.net.start_flow(b, r, 4096, [&] { second = h.sim.now(); });
  h.sim.run();
  EXPECT_NEAR(first, 1.05, 0.01);
  EXPECT_NEAR(second, 2.05, 0.01);
}

TEST(PacketNetwork, CancelMidFlightDropsPropagatingSegments) {
  PacketHarness h;
  const NodeId a = h.net.add_node(4096.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, 4096.0);
  bool fired = false;
  const FlowId f =
      h.net.start_flow(a, b, 4 * 4096, [&] { fired = true; });
  // Cancel while segment 2 is on the wire and segment 1 is in downlink
  // service; neither may complete the flow or wedge b's downlink.
  h.sim.schedule_in(2.02, [&] { EXPECT_TRUE(h.net.cancel_flow(f)); });
  double late_done = -1.0;
  h.sim.schedule_in(3.0, [&] {
    h.net.start_flow(a, b, 4096, [&] { late_done = h.sim.now(); });
  });
  h.sim.run();
  EXPECT_FALSE(fired);
  // The follow-up flow proves both links drained cleanly: 1 s uplink
  // from t=3, propagation, 1 s downlink.
  EXPECT_NEAR(late_done, 5.05, 0.01);
}

TEST(PacketNetwork, CapacityChangeRescalesInServiceSegment) {
  PacketHarness h;
  const NodeId a = h.net.add_node(4096.0, kUnlimited);
  const NodeId b = h.net.add_node(kUnlimited, kUnlimited);
  double done = -1.0;
  h.net.start_flow(a, b, 4096, [&] { done = h.sim.now(); });
  // Half the segment (2048 B) is out by t=0.5; the rest serializes at a
  // quarter speed: 0.5 + 2048/1024 = 2.5, plus propagation.
  h.sim.schedule_in(0.5, [&] {
    h.net.set_node_capacity(a, 1024.0, kUnlimited);
  });
  h.sim.run();
  EXPECT_NEAR(done, 2.55, 0.01);
}

}  // namespace
}  // namespace swarmlab::net
