// InterestTracker in isolation: bitfield/HAVE bookkeeping and
// Interested/NotInterested signalling, driven through a MockFabric.
#include <gtest/gtest.h>

#include "mock_fabric.h"
#include "peer/peer.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;
using test::MockFabric;

constexpr PeerId kRemote = 7;

struct Harness {
  explicit Harness(std::uint32_t pieces = 4,
                   std::vector<bool> initial = {})
      : geo(std::uint64_t{pieces} * 64 * 1024, 64 * 1024, 16 * 1024),
        fabric(sim, geo),
        peer(fabric, geo,
             [&] {
               PeerConfig cfg;
               cfg.id = 1;
               cfg.initial_pieces = std::move(initial);
               return cfg;
             }()) {
    peer.start();
    peer.on_connected(kRemote, false);
  }

  sim::Simulation sim{1};
  wire::ContentGeometry geo;
  MockFabric fabric;
  peer::Peer peer;
};

TEST(InterestTracker, BitfieldWithNeededPiecesTriggersInterested) {
  Harness h;
  wire::BitfieldMsg msg;
  msg.bits = {true, false, false, false};
  h.peer.handle_message(kRemote, msg);
  EXPECT_EQ(h.fabric.count_sent<wire::InterestedMsg>(kRemote), 1u);
  EXPECT_TRUE(h.peer.connection(kRemote)->am_interested);
  EXPECT_EQ(h.peer.connection(kRemote)->missing_count, 1u);
}

TEST(InterestTracker, EmptyBitfieldLeavesUsUninterested) {
  Harness h;
  wire::BitfieldMsg msg;
  msg.bits.assign(4, false);
  h.peer.handle_message(kRemote, msg);
  EXPECT_EQ(h.fabric.count_sent<wire::InterestedMsg>(kRemote), 0u);
  EXPECT_FALSE(h.peer.connection(kRemote)->am_interested);
}

TEST(InterestTracker, HaveForOwnedPieceDoesNotRaiseInterest) {
  Harness h(4, {true, false, false, false});
  wire::BitfieldMsg none;
  none.bits.assign(4, false);
  h.peer.handle_message(kRemote, none);
  h.peer.handle_message(kRemote, wire::HaveMsg{0});  // we own piece 0
  EXPECT_EQ(h.fabric.count_sent<wire::InterestedMsg>(kRemote), 0u);
  h.peer.handle_message(kRemote, wire::HaveMsg{2});  // we miss piece 2
  EXPECT_EQ(h.fabric.count_sent<wire::InterestedMsg>(kRemote), 1u);
}

TEST(InterestTracker, AvailabilityTracksRemoteKnowledge) {
  Harness h;
  wire::BitfieldMsg msg;
  msg.bits = {true, true, false, false};
  h.peer.handle_message(kRemote, msg);
  EXPECT_EQ(h.peer.availability().copies(0), 1u);
  EXPECT_EQ(h.peer.availability().copies(2), 0u);
  h.peer.handle_message(kRemote, wire::HaveMsg{2});
  EXPECT_EQ(h.peer.availability().copies(2), 1u);
  // Teardown withdraws every piece the remote contributed.
  h.peer.on_disconnected(kRemote);
  EXPECT_EQ(h.peer.availability().copies(0), 0u);
  EXPECT_EQ(h.peer.availability().copies(2), 0u);
}

TEST(InterestTracker, LocalCompletionWithdrawsInterest) {
  Harness h(4, {true, true, true, false});  // we miss only piece 3
  wire::BitfieldMsg msg;
  msg.bits = {false, false, false, true};  // remote has exactly piece 3
  h.peer.handle_message(kRemote, msg);
  EXPECT_TRUE(h.peer.connection(kRemote)->am_interested);
  // Complete piece 3 locally (remote unchoked us, one piece = 4 blocks).
  h.peer.handle_message(kRemote, wire::UnchokeMsg{});
  for (const auto& r : h.fabric.sent_to<wire::RequestMsg>(kRemote)) {
    h.peer.handle_message(kRemote, wire::PieceMsg{r.piece, r.begin, {}});
  }
  EXPECT_TRUE(h.peer.is_seed());
  EXPECT_EQ(h.fabric.count_sent<wire::NotInterestedMsg>(kRemote), 1u);
}

TEST(InterestTracker, SeedDropsConnectionToCompleteRemote) {
  Harness h(4, {true, true, true, true});  // local peer starts as seed
  wire::BitfieldMsg full;
  full.bits.assign(4, true);
  h.peer.handle_message(kRemote, full);
  // Seeds do not keep connections to seeds.
  ASSERT_EQ(h.fabric.disconnects.size(), 1u);
  EXPECT_EQ(h.fabric.disconnects[0].second, kRemote);
}

}  // namespace
}  // namespace swarmlab
