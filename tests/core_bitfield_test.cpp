// Bitfield and availability-map unit + property tests.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/availability.h"
#include "core/bitfield.h"
#include "sim/rng.h"

namespace swarmlab::core {
namespace {

TEST(Bitfield, StartsEmpty) {
  const Bitfield b(10);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.complete());
}

TEST(Bitfield, SetAndClearTrackCount) {
  Bitfield b(5);
  EXPECT_TRUE(b.set(2));
  EXPECT_FALSE(b.set(2));  // already set
  EXPECT_EQ(b.count(), 1u);
  EXPECT_TRUE(b.has(2));
  EXPECT_TRUE(b.clear(2));
  EXPECT_FALSE(b.clear(2));
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitfield, FullIsComplete) {
  const Bitfield b = Bitfield::full(7);
  EXPECT_TRUE(b.complete());
  EXPECT_EQ(b.count(), 7u);
  for (PieceIndex p = 0; p < 7; ++p) EXPECT_TRUE(b.has(p));
}

TEST(Bitfield, InterestSemantics) {
  Bitfield a(4), b(4);
  b.set(1);
  // a lacks piece 1 that b has: a interested in b, not vice versa.
  EXPECT_TRUE(a.interested_in(b));
  EXPECT_FALSE(b.interested_in(a));
  a.set(1);
  EXPECT_FALSE(a.interested_in(b));  // now equal sets
  a.set(2);
  EXPECT_FALSE(a.interested_in(b));  // a is a superset
  EXPECT_TRUE(b.interested_in(a));
}

TEST(Bitfield, SeedNeverInterested) {
  const Bitfield seed = Bitfield::full(8);
  Bitfield leecher(8);
  leecher.set(3);
  EXPECT_FALSE(seed.interested_in(leecher));
  EXPECT_TRUE(leecher.interested_in(seed));
}

TEST(Bitfield, SetIndicesAndMissingFrom) {
  Bitfield a(6), b(6);
  a.set(0);
  a.set(4);
  b.set(4);
  b.set(5);
  EXPECT_EQ(a.set_indices(), (std::vector<PieceIndex>{0, 4}));
  EXPECT_EQ(a.missing_from(b), (std::vector<PieceIndex>{5}));
  EXPECT_EQ(b.missing_from(a), (std::vector<PieceIndex>{0}));
}

// --- packed-representation tests (word layout, trailing-zero invariant) ---

// Sizes straddling word boundaries: packed words must behave exactly like
// per-bit storage at 63/64/65 bits and friends.
class BitfieldPackedSizeTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(BitfieldPackedSizeTest, RoundTripsThroughWireBits) {
  const std::uint32_t n = GetParam();
  sim::Rng rng(n * 977 + 1);
  std::vector<bool> ref(n);
  for (std::uint32_t p = 0; p < n; ++p) ref[p] = rng.chance(0.5);
  const Bitfield b(ref);
  EXPECT_EQ(b.size(), n);
  std::uint32_t expected_count = 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    EXPECT_EQ(b.has(p), ref[p]) << "piece " << p << " of " << n;
    if (ref[p]) ++expected_count;
  }
  EXPECT_EQ(b.count(), expected_count);
  EXPECT_EQ(b.bits(), ref);
}

TEST_P(BitfieldPackedSizeTest, FullMasksTrailingWord) {
  const std::uint32_t n = GetParam();
  const Bitfield b = Bitfield::full(n);
  EXPECT_TRUE(b.complete());
  EXPECT_EQ(b.count(), n);
  // Trailing-zero invariant: no bit past size() may be set, or the
  // defaulted operator== and whole-word popcounts would be wrong.
  EXPECT_EQ(b.words().size(), Bitfield::word_count(n));
  if (n % Bitfield::kWordBits != 0) {
    const Bitfield::Word tail = b.words().back();
    EXPECT_EQ(std::popcount(tail), static_cast<int>(n % Bitfield::kWordBits));
  }
  // Clearing and re-setting the last piece round-trips through the tail
  // word without disturbing neighbors.
  Bitfield c = b;
  EXPECT_TRUE(c.clear(n - 1));
  EXPECT_FALSE(c.complete());
  EXPECT_NE(b, c);
  EXPECT_TRUE(c.set(n - 1));
  EXPECT_EQ(b, c);
}

TEST_P(BitfieldPackedSizeTest, SetAlgebraMatchesScalarReference) {
  const std::uint32_t n = GetParam();
  sim::Rng rng(n * 31 + 7);
  Bitfield a(n), b(n);
  std::vector<bool> ra(n), rb(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    if (rng.chance(0.45)) { a.set(p); ra[p] = true; }
    if (rng.chance(0.45)) { b.set(p); rb[p] = true; }
  }
  bool ref_interested = false;
  std::uint32_t ref_missing = 0;
  std::vector<PieceIndex> ref_missing_set;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (rb[p] && !ra[p]) {
      ref_interested = true;
      ++ref_missing;
      ref_missing_set.push_back(p);
    }
  }
  EXPECT_EQ(a.interested_in(b), ref_interested);
  EXPECT_EQ(a.count_missing_from(b), ref_missing);
  EXPECT_EQ(a.missing_from(b), ref_missing_set);
}

INSTANTIATE_TEST_SUITE_P(WordBoundarySizes, BitfieldPackedSizeTest,
                         ::testing::Values(1u, 7u, 63u, 64u, 65u, 127u, 128u,
                                           129u, 1000u));

TEST(Availability, StartsAllZero) {
  const AvailabilityMap m(8);
  EXPECT_EQ(m.min_copies(), 0u);
  EXPECT_EQ(m.max_copies(), 0u);
  EXPECT_DOUBLE_EQ(m.mean_copies(), 0.0);
  EXPECT_EQ(m.rarest_set_size(), 8u);
}

TEST(Availability, AddPeerCountsPieces) {
  AvailabilityMap m(4);
  Bitfield have(4);
  have.set(1);
  have.set(3);
  m.add_peer(have);
  EXPECT_EQ(m.copies(0), 0u);
  EXPECT_EQ(m.copies(1), 1u);
  EXPECT_EQ(m.copies(3), 1u);
  EXPECT_EQ(m.min_copies(), 0u);
  EXPECT_EQ(m.max_copies(), 1u);
  EXPECT_DOUBLE_EQ(m.mean_copies(), 0.5);
}

TEST(Availability, RemovePeerRestoresCounts) {
  AvailabilityMap m(4);
  Bitfield have(4);
  have.set(0);
  m.add_peer(have);
  m.remove_peer(have);
  for (PieceIndex p = 0; p < 4; ++p) EXPECT_EQ(m.copies(p), 0u);
  EXPECT_EQ(m.rarest_set_size(), 4u);
}

TEST(Availability, HaveIncrements) {
  AvailabilityMap m(4);
  m.add_have(2);
  m.add_have(2);
  EXPECT_EQ(m.copies(2), 2u);
  EXPECT_EQ(m.max_copies(), 2u);
}

TEST(Availability, RarestSetIdentifiesMinimum) {
  AvailabilityMap m(4);
  m.add_have(0);
  m.add_have(0);
  m.add_have(1);
  m.add_have(2);
  // counts: 2,1,1,0 -> rarest = {3}
  EXPECT_EQ(m.min_copies(), 0u);
  EXPECT_EQ(m.rarest_set(), (std::vector<PieceIndex>{3}));
  EXPECT_EQ(m.rarest_set_size(), 1u);
  m.add_have(3);
  // counts: 2,1,1,1 -> rarest = {1,2,3}
  EXPECT_EQ(m.rarest_set(), (std::vector<PieceIndex>{1, 2, 3}));
  EXPECT_EQ(m.rarest_set_size(), 3u);
}

TEST(Availability, SeedAddRaisesFloor) {
  AvailabilityMap m(3);
  m.add_peer(Bitfield::full(3));
  EXPECT_EQ(m.min_copies(), 1u);
  EXPECT_EQ(m.rarest_set_size(), 3u);
}

// Property: after any sequence of add/remove/have operations, copy counts
// equal a straightforward recount and min/max/mean agree with it.
class AvailabilityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AvailabilityPropertyTest, ConsistentUnderRandomOperations) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  constexpr std::uint32_t kPieces = 24;
  AvailabilityMap m(kPieces);
  std::vector<std::uint32_t> reference(kPieces, 0);
  std::vector<Bitfield> members;

  for (int step = 0; step < 300; ++step) {
    const auto action = rng.index(3);
    if (action == 0) {  // join
      Bitfield have(kPieces);
      for (PieceIndex p = 0; p < kPieces; ++p) {
        if (rng.chance(0.4)) have.set(p);
      }
      m.add_peer(have);
      for (const PieceIndex p : have.set_indices()) ++reference[p];
      members.push_back(have);
    } else if (action == 1 && !members.empty()) {  // leave
      const std::size_t i = rng.index(members.size());
      m.remove_peer(members[i]);
      for (const PieceIndex p : members[i].set_indices()) --reference[p];
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (action == 2 && !members.empty()) {  // HAVE
      const std::size_t i = rng.index(members.size());
      const PieceIndex p =
          static_cast<PieceIndex>(rng.index(kPieces));
      if (members[i].set(p)) {
        m.add_have(p);
        ++reference[p];
      }
    }
  }

  std::uint32_t ref_min = ~0u, ref_max = 0;
  std::uint64_t total = 0;
  for (PieceIndex p = 0; p < kPieces; ++p) {
    EXPECT_EQ(m.copies(p), reference[p]) << "piece " << p;
    ref_min = std::min(ref_min, reference[p]);
    ref_max = std::max(ref_max, reference[p]);
    total += reference[p];
  }
  EXPECT_EQ(m.min_copies(), ref_min);
  EXPECT_EQ(m.max_copies(), ref_max);
  EXPECT_DOUBLE_EQ(m.mean_copies(),
                   static_cast<double>(total) / kPieces);
  std::uint32_t rarest_count = 0;
  for (const std::uint32_t c : reference) {
    if (c == ref_min) ++rarest_count;
  }
  EXPECT_EQ(m.rarest_set_size(), rarest_count);
  EXPECT_EQ(m.rarest_set().size(), rarest_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvailabilityPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace swarmlab::core
