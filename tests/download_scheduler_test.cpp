// DownloadScheduler in isolation: one Peer on a MockFabric, the test
// plays the remote side and asserts on the recorded request traffic.
#include <gtest/gtest.h>

#include <set>

#include "mock_fabric.h"
#include "peer/peer.h"

namespace swarmlab {
namespace {

using peer::PeerConfig;
using peer::PeerId;
using test::MockFabric;

constexpr PeerId kRemote = 7;

struct Harness {
  explicit Harness(std::uint32_t pieces = 4, PeerConfig cfg = {})
      : geo(std::uint64_t{pieces} * 64 * 1024, 64 * 1024, 16 * 1024),
        fabric(sim, geo),
        local([&] {
          cfg.id = 1;
          return cfg;
        }()),
        peer(fabric, geo, local) {
    peer.start();
  }

  /// Connects kRemote as a seed and unchokes us; returns after the peer
  /// has pipelined its first requests.
  void connect_seed_and_unchoke() {
    peer.on_connected(kRemote, /*initiated_by_us=*/false);
    wire::BitfieldMsg full;
    full.bits.assign(geo.num_pieces(), true);
    peer.handle_message(kRemote, full);
    peer.handle_message(kRemote, wire::UnchokeMsg{});
  }

  /// Serves one outstanding request back as a block.
  void serve(const wire::RequestMsg& req) {
    peer.handle_message(kRemote, wire::PieceMsg{req.piece, req.begin, {}});
  }

  sim::Simulation sim{1};
  wire::ContentGeometry geo;
  MockFabric fabric;
  PeerConfig local;
  peer::Peer peer;
};

TEST(DownloadScheduler, PipelinesUpToDepthOnUnchoke) {
  Harness h;
  h.connect_seed_and_unchoke();
  const auto reqs = h.fabric.sent_to<wire::RequestMsg>(kRemote);
  EXPECT_EQ(reqs.size(), h.local.params.pipeline_depth);
  // Strict priority: the pipeline drains one piece before starting the
  // next, so all first-round requests target at most two distinct pieces
  // (a piece holds 4 blocks here, and which pieces get picked is up to
  // the rarest-first tiebreak).
  std::set<wire::PieceIndex> pieces;
  for (const auto& r : reqs) pieces.insert(r.piece);
  EXPECT_LE(pieces.size(), 2u);
}

TEST(DownloadScheduler, ChokeReturnsBlocksAndReissuesAfterUnchoke) {
  Harness h;
  h.connect_seed_and_unchoke();
  const std::size_t before = h.fabric.count_sent<wire::RequestMsg>(kRemote);
  h.peer.handle_message(kRemote, wire::ChokeMsg{});
  EXPECT_TRUE(h.peer.connection(kRemote)->outstanding.empty());
  h.peer.handle_message(kRemote, wire::UnchokeMsg{});
  // The freed blocks are re-requested: the pipeline refills to depth.
  EXPECT_EQ(h.fabric.count_sent<wire::RequestMsg>(kRemote),
            before + h.local.params.pipeline_depth);
  EXPECT_EQ(h.peer.connection(kRemote)->outstanding.size(),
            h.local.params.pipeline_depth);
}

TEST(DownloadScheduler, RejectFreesSlotAndReroutes) {
  Harness h;
  h.connect_seed_and_unchoke();
  const auto reqs = h.fabric.sent_to<wire::RequestMsg>(kRemote);
  const wire::RequestMsg victim = reqs.front();
  h.peer.handle_message(
      kRemote,
      wire::RejectRequestMsg{victim.piece, victim.begin, victim.length});
  // The slot is immediately refilled with a different block.
  EXPECT_EQ(h.peer.connection(kRemote)->outstanding.size(),
            h.local.params.pipeline_depth);
  const auto after = h.fabric.sent_to<wire::RequestMsg>(kRemote);
  EXPECT_EQ(after.size(), reqs.size() + 1);
}

TEST(DownloadScheduler, CompletedPieceIsBroadcastAndCounted) {
  Harness h;
  h.connect_seed_and_unchoke();
  // Serve every request until the download completes.
  std::size_t served = 0;
  while (!h.peer.is_seed() && served < 1000) {
    const auto reqs = h.fabric.sent_to<wire::RequestMsg>(kRemote);
    ASSERT_LT(served, reqs.size()) << "pipeline stalled";
    h.serve(reqs[served++]);
  }
  EXPECT_TRUE(h.peer.is_seed());
  EXPECT_EQ(h.fabric.broadcast_haves.size(), h.geo.num_pieces());
  EXPECT_EQ(h.peer.total_downloaded(), h.geo.total_bytes());
  // A fresh seed announces Completed after its Started.
  ASSERT_EQ(h.fabric.announces.size(), 2u);
  EXPECT_EQ(h.fabric.announces[1], peer::AnnounceEvent::kCompleted);
}

TEST(DownloadScheduler, EndGameDuplicatesAndCancelsStragglers) {
  PeerConfig cfg;
  cfg.params.end_game = true;
  Harness h(/*pieces=*/1, cfg);
  h.connect_seed_and_unchoke();
  // One piece of 4 blocks: everything is requested at kRemote, so a
  // second seed joining enters end game and duplicates the stragglers.
  const PeerId second = 9;
  h.peer.on_connected(second, false);
  h.peer.handle_message(second, wire::HaveAllMsg{});
  h.peer.handle_message(second, wire::UnchokeMsg{});
  EXPECT_TRUE(h.peer.in_end_game());
  EXPECT_GT(h.fabric.count_sent<wire::RequestMsg>(second), 0u);
  // First arrival of a duplicated block cancels the other copy.
  const auto reqs = h.fabric.sent_to<wire::RequestMsg>(kRemote);
  h.serve(reqs.front());
  EXPECT_GE(h.fabric.count_sent<wire::CancelMsg>(second), 1u);
}

TEST(DownloadScheduler, CorruptSingleSourcePieceIsDiscardedAndBanned) {
  PeerConfig cfg;
  cfg.params.verify_pieces = true;
  cfg.params.ban_corrupt_sources = true;
  Harness h(/*pieces=*/1, cfg);
  h.connect_seed_and_unchoke();
  // Serve all 4 blocks with the corrupt marker (non-empty payload on the
  // markerless control plane).
  std::size_t served = 0;
  while (h.peer.corrupted_pieces() == 0 && served < 100) {
    const auto reqs = h.fabric.sent_to<wire::RequestMsg>(kRemote);
    ASSERT_LT(served, reqs.size());
    const auto& r = reqs[served++];
    h.peer.handle_message(kRemote, wire::PieceMsg{r.piece, r.begin, {0xFF}});
  }
  EXPECT_EQ(h.peer.corrupted_pieces(), 1u);
  EXPECT_FALSE(h.peer.is_seed());
  // Single-source failure proves the sender corrupt: banned + dropped.
  ASSERT_FALSE(h.fabric.disconnects.empty());
  EXPECT_EQ(h.fabric.disconnects.front().second, kRemote);
  h.peer.on_disconnected(kRemote);
  EXPECT_FALSE(h.peer.accepts_connection(kRemote));
}

}  // namespace
}  // namespace swarmlab
