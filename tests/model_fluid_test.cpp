// Qiu-Srikant fluid model tests.
#include <gtest/gtest.h>

#include "model/fluid_model.h"

namespace swarmlab::model {
namespace {

TEST(FluidModel, PopulationsStayNonNegative) {
  FluidParams p;
  p.lambda = 0.0;  // no arrivals: populations must decay to zero
  p.gamma = 0.1;
  // Drain time constant ~1/mu = 1000 s; give it many multiples.
  const auto traj = integrate(p, 50.0, 10.0, 20000.0);
  for (const FluidState& s : traj) {
    EXPECT_GE(s.leechers, 0.0);
    EXPECT_GE(s.seeds, 0.0);
  }
  EXPECT_NEAR(traj.back().leechers, 0.0, 0.5);
  EXPECT_NEAR(traj.back().seeds, 0.0, 0.5);
}

TEST(FluidModel, ConvergesToEquilibrium) {
  FluidParams p;
  p.lambda = 0.05;
  p.mu = 0.001;
  p.c = 0.01;     // download not the bottleneck
  p.gamma = 0.002;
  p.theta = 0.0;
  const FluidEquilibrium eq = equilibrium(p);
  const auto traj = integrate(p, 0.0, 1.0, 60000.0, 100.0);
  EXPECT_NEAR(traj.back().leechers, eq.leechers, eq.leechers * 0.1 + 1);
  EXPECT_NEAR(traj.back().seeds, eq.seeds, eq.seeds * 0.1 + 1);
}

TEST(FluidModel, EquilibriumSeedsFollowLittlesLaw) {
  FluidParams p;
  p.lambda = 0.2;
  p.gamma = 0.01;
  const FluidEquilibrium eq = equilibrium(p);
  EXPECT_DOUBLE_EQ(eq.seeds, p.lambda / p.gamma);
}

TEST(FluidModel, DownloadConstraintDetected) {
  FluidParams p;
  p.mu = 0.01;    // abundant upload
  p.c = 0.0005;   // scarce download
  p.gamma = 0.01;
  EXPECT_TRUE(equilibrium(p).download_constrained);
  EXPECT_DOUBLE_EQ(equilibrium(p).download_time, 1.0 / p.c);
}

TEST(FluidModel, UploadConstraintDetected) {
  FluidParams p;
  p.mu = 0.0005;  // scarce upload
  p.c = 0.1;
  p.gamma = 1e9;  // seeds vanish instantly: leechers carry everything
  const FluidEquilibrium eq = equilibrium(p);
  EXPECT_FALSE(eq.download_constrained);
  EXPECT_NEAR(eq.download_time, 1.0 / p.mu, 2.0);
}

TEST(FluidModel, SeedsExtendCapacity) {
  // Longer seed linger (smaller gamma) must shorten download time when
  // upload-constrained.
  FluidParams slow_leave;
  slow_leave.mu = 0.001;
  slow_leave.c = 1.0;
  slow_leave.gamma = 0.002;
  FluidParams fast_leave = slow_leave;
  fast_leave.gamma = 0.02;
  EXPECT_LT(equilibrium(slow_leave).download_time,
            equilibrium(fast_leave).download_time);
}

TEST(FluidModel, ServiceRampsWithGrowingPopulation) {
  // Capacity grows with the population (the self-scaling property the
  // analytical studies formalize): starting empty with steady arrivals,
  // the completion flux — seen as seed production — accelerates while
  // the leecher population is still ramping toward equilibrium.
  FluidParams p;
  p.lambda = 0.05;
  p.mu = 0.001;
  p.c = 0.01;
  p.gamma = 0.0001;  // seeds persist during the ramp
  const auto traj = integrate(p, 0.0, 1.0, 3000.0, 100.0);
  const double d1 = traj[10].seeds - traj[5].seeds;    // t in [500, 1000]
  const double d2 = traj[25].seeds - traj[20].seeds;   // t in [2000, 2500]
  EXPECT_GT(d2, d1);
}

TEST(FluidModel, SamplingHonorsHorizonAndSpacing) {
  FluidParams p;
  const auto traj = integrate(p, 10.0, 1.0, 1000.0, 50.0);
  ASSERT_GE(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj.front().t, 0.0);
  EXPECT_NEAR(traj.back().t, 1000.0, 1e-6);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GT(traj[i].t, traj[i - 1].t);
  }
}

}  // namespace
}  // namespace swarmlab::model
