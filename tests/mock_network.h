// MockNetwork: a trivially-timed net::Network for protocol-level tests.
//
// Control messages arrive after exactly `control_latency`; every flow
// completes after exactly `flow_time`, independent of size, capacity,
// and cross-traffic. That removes the fluid model's rate coupling from
// a test's timeline, so assertions about *message ordering* hold by
// construction and cannot be disturbed by bandwidth arithmetic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"
#include "sim/simulation.h"

namespace swarmlab::test {

class MockNetwork final : public net::Network {
 public:
  MockNetwork(sim::Simulation& sim, double control_latency,
              double flow_time = 0.5)
      : sim_(sim), control_latency_(control_latency), flow_time_(flow_time) {}

  net::NodeId add_node(double up, double /*down*/) override {
    const net::NodeId id = next_node_++;
    nodes_[id] = up;
    return id;
  }

  void remove_node(net::NodeId node) override {
    nodes_.erase(node);
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.from == node || it->second.to == node) {
        it = flows_.erase(it);  // silently aborted, no callback
      } else {
        ++it;
      }
    }
  }

  void set_node_capacity(net::NodeId node, double up,
                         double /*down*/) override {
    nodes_[node] = up;
  }

  [[nodiscard]] bool has_node(net::NodeId node) const override {
    return nodes_.contains(node);
  }

  [[nodiscard]] bool has_flow(net::FlowId flow) const override {
    return flows_.contains(flow);
  }

  [[nodiscard]] std::vector<net::FlowId> active_flow_ids() const override {
    std::vector<net::FlowId> out;
    out.reserve(flows_.size());
    for (const auto& [id, f] : flows_) out.push_back(id);
    return out;
  }

  net::FlowId start_flow(net::NodeId from, net::NodeId to,
                         std::uint64_t bytes,
                         std::function<void()> on_complete) override {
    const net::FlowId id = next_flow_++;
    flows_.emplace(id, Flow{from, to, bytes});
    ++flows_started_;
    sim_.schedule_in(flow_time_, [this, id, cb = std::move(on_complete)] {
      if (flows_.erase(id) != 0) cb();
    });
    return id;
  }

  bool cancel_flow(net::FlowId flow) override {
    ++flows_cancelled_;
    return flows_.erase(flow) != 0;
  }

  [[nodiscard]] double flow_rate(net::FlowId flow) const override {
    const auto it = flows_.find(flow);
    return it == flows_.end()
               ? 0.0
               : static_cast<double>(it->second.bytes) / flow_time_;
  }

  void send_control(std::function<void()> deliver,
                    double extra_delay = 0.0) override {
    ++controls_sent_;
    sim_.schedule_in(control_latency_ + extra_delay, std::move(deliver));
  }

  [[nodiscard]] double control_latency() const override {
    return control_latency_;
  }

  [[nodiscard]] std::size_t active_flows() const override {
    return flows_.size();
  }

  [[nodiscard]] double node_up(net::NodeId node) const override {
    const auto it = nodes_.find(node);
    return it == nodes_.end() ? 0.0 : it->second;
  }

  // --- test instrumentation ---------------------------------------------
  [[nodiscard]] std::uint64_t controls_sent() const { return controls_sent_; }
  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::uint64_t flows_cancelled() const {
    return flows_cancelled_;
  }

 private:
  struct Flow {
    net::NodeId from = 0;
    net::NodeId to = 0;
    std::uint64_t bytes = 0;
  };

  sim::Simulation& sim_;
  double control_latency_;
  double flow_time_;

  net::NodeId next_node_ = 0;
  net::FlowId next_flow_ = 1;  // 0 is the "no flow" sentinel
  std::map<net::NodeId, double> nodes_;
  std::map<net::FlowId, Flow> flows_;

  std::uint64_t controls_sent_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_cancelled_ = 0;
};

}  // namespace swarmlab::test
