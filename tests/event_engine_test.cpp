// Event-engine equivalence: the two-tier EventQueue (calendar wheel +
// binary heap, PR 8) must pop in byte-identical (time, seq) order to a
// reference single-tier model under tie-heavy randomized workloads, and
// the fast-path channel must share that order with closure events.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace swarmlab::sim {
namespace {

/// Reference model: a plain sorted list keyed by (time, insertion seq).
/// Deliberately naive — correctness oracle, not a performance peer.
class ReferenceQueue {
 public:
  std::uint64_t add(double time) {
    items_.push_back({time, next_seq_++, next_token_});
    return next_token_++;
  }

  bool cancel(std::uint64_t token) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->token == token) {
        items_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// Pops the (time, seq) minimum and returns its token.
  std::uint64_t pop() {
    auto best = items_.begin();
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->time < best->time ||
          (it->time == best->time && it->seq < best->seq)) {
        best = it;
      }
    }
    const std::uint64_t token = best->token;
    items_.erase(best);
    return token;
  }

 private:
  struct Item {
    double time;
    std::uint64_t seq;
    std::uint64_t token;
  };
  std::vector<Item> items_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_token_ = 1;
};

/// Drives EventQueue and ReferenceQueue through one interleaved
/// schedule/cancel/pop script and asserts identical pop order. Times are
/// drawn from a tiny set of quantized values so equal-time ties are the
/// norm, and span both the wheel window (< 4 s ahead) and the heap band.
void run_equivalence_script(std::uint64_t seed, int ops) {
  Rng rng(seed);
  EventQueue queue;
  ReferenceQueue ref;
  // token (reference) <-> id (queue) for the same logical event; the
  // fired closure records which token ran.
  std::vector<std::uint64_t> popped_tokens;
  std::vector<std::pair<std::uint64_t, EventId>> live;  // token -> id

  double now = 0.0;
  for (int op = 0; op < ops; ++op) {
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.55 || queue.empty()) {
      // Schedule at a coarsely quantized future time: ~16 distinct
      // offsets, some beyond the 4 s wheel horizon, so collisions are
      // constant and both tiers participate.
      const double offset =
          std::floor(rng.uniform(0.0, 1.0) * 16.0) * 0.75;  // 0 .. 11.25 s
      const double at = now + offset;
      const std::uint64_t token = ref.add(at);
      const EventId id = queue.schedule(at, [token, &popped_tokens] {
        popped_tokens.push_back(token);
      });
      live.emplace_back(token, id);
    } else if (dice < 0.70 && !live.empty()) {
      // Cancel a random live event in both models.
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform(0.0, 1.0) * live.size()) %
          live.size();
      const auto [token, id] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_TRUE(queue.cancel(id));
      EXPECT_TRUE(ref.cancel(token));
    } else {
      // Pop one event from both; order must agree exactly.
      ASSERT_FALSE(queue.empty());
      const double t = queue.next_time();
      EXPECT_GE(t, now);
      now = t;
      auto fired = queue.pop();
      EXPECT_EQ(fired.time, t);
      ASSERT_EQ(fired.channel, 0);
      fired.fn();
      ASSERT_FALSE(popped_tokens.empty());
      const std::uint64_t expect = ref.pop();
      EXPECT_EQ(popped_tokens.back(), expect)
          << "divergence at op " << op << " seed " << seed;
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const auto& p) {
                                  return p.first == popped_tokens.back();
                                }),
                 live.end());
    }
  }
  // Drain: the full remaining order must match too.
  while (!queue.empty()) {
    auto fired = queue.pop();
    fired.fn();
    EXPECT_EQ(popped_tokens.back(), ref.pop());
  }
  EXPECT_TRUE(ref.empty());
}

TEST(EventEngineEquivalence, TieHeavyRandomizedPopOrderMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_equivalence_script(seed, 4000);
  }
}

TEST(EventEngineEquivalence, MassCancelCompactsAndPreservesOrder) {
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventId> cancel_me;
  // 3000 events in the wheel band; cancel 2/3 so the dead:live ratio
  // crosses the compaction trigger.
  std::vector<EventId> ids;
  for (int i = 0; i < 3000; ++i) {
    const double at = (i % 37) * 0.1;
    ids.push_back(queue.schedule(at, [i, &order] { order.push_back(i); }));
  }
  for (int i = 0; i < 3000; ++i) {
    if (i % 3 != 0) EXPECT_TRUE(queue.cancel(ids[static_cast<std::size_t>(i)]));
  }
  EXPECT_GE(queue.compactions_count(), 1u);
  double last = -1.0;
  int popped = 0;
  while (!queue.empty()) {
    const double t = queue.next_time();
    EXPECT_GE(t, last);
    last = t;
    auto fired = queue.pop();
    fired.fn();
    ++popped;
  }
  EXPECT_EQ(popped, 1000);
  // Survivors fire in (time, seq) order: within one time bucket value,
  // ascending schedule order (i % 37 equal => ascending i).
  for (std::size_t i = 1; i < order.size(); ++i) {
    const int a = order[i - 1];
    const int b = order[i];
    if (a % 37 == b % 37) EXPECT_LT(a, b);
  }
}

struct FastRecorder {
  std::vector<std::uint64_t> seen;
  static void fire(void* ctx, const FastPayload& p) {
    static_cast<FastRecorder*>(ctx)->seen.push_back(p.a);
  }
};

TEST(EventEngineFastPath, SharesFireOrderWithClosures) {
  Simulation sim(42);
  FastRecorder rec;
  const std::uint16_t ch = sim.add_fast_channel(&FastRecorder::fire, &rec);
  std::vector<std::uint64_t> merged;  // records both flavours in order
  // Alternate closure/fast at identical times: fire order must be exact
  // schedule order (shared time, same seq counter).
  for (std::uint64_t i = 0; i < 200; ++i) {
    const double at = static_cast<double>(i % 10);
    if (i % 2 == 0) {
      sim.schedule_at(at, [i, &merged] { merged.push_back(i); });
    } else {
      sim.schedule_fast_at(at, ch, {i, 0});
    }
  }
  sim.run();
  // Rebuild the merged order from the fast recorder + closure log.
  EXPECT_EQ(sim.events_executed(), 200u);
  EXPECT_EQ(sim.events_fastpath(), 100u);
  EXPECT_EQ(rec.seen.size(), 100u);
  // Within one time value, schedule order is ascending i; fast events
  // are the odd i. Check the fast stream is sorted by (time, i).
  for (std::size_t i = 1; i < rec.seen.size(); ++i) {
    const std::uint64_t a = rec.seen[i - 1];
    const std::uint64_t b = rec.seen[i];
    if (a % 10 == b % 10) EXPECT_LT(a, b);
  }
}

TEST(EventEngineFastPath, CancelFastEventNeverFires) {
  Simulation sim(7);
  FastRecorder rec;
  const std::uint16_t ch = sim.add_fast_channel(&FastRecorder::fire, &rec);
  const EventId keep = sim.schedule_fast_in(1.0, ch, {1, 0});
  const EventId gone = sim.schedule_fast_in(1.0, ch, {2, 0});
  EXPECT_TRUE(sim.cancel(gone));
  EXPECT_FALSE(sim.cancel(gone));  // stale id
  (void)keep;
  sim.run();
  ASSERT_EQ(rec.seen.size(), 1u);
  EXPECT_EQ(rec.seen[0], 1u);
  EXPECT_EQ(sim.events_cancelled(), 1u);
}

TEST(EventEngineFastPath, PopUntilRespectsDeadlineBoundary) {
  Simulation sim(7);
  int fired = 0;
  sim.schedule_at(1.0, [&fired] { ++fired; });
  sim.schedule_at(2.0, [&fired] { ++fired; });
  sim.schedule_at(2.0 + 1e-9, [&fired] { ++fired; });
  // Events exactly at the deadline run; later ones wait.
  EXPECT_EQ(sim.run_until(2.0), 2.0);
  EXPECT_EQ(fired, 2);
  sim.run();
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace swarmlab::sim
