// Example: the wire-level toolkit — build a .torrent, parse it back,
// verify synthetic piece data against the embedded SHA-1 hashes, and walk
// a captured peer-wire byte stream with the incremental frame decoder.
//
// This exercises the swarmlab_wire library as a standalone protocol
// codec, independent of the simulator.
//
// Usage: torrent_file_tools [size_mb=4]
#include <cstdio>
#include <cstdlib>

#include "swarmlab/swarmlab.h"

int main(int argc, char** argv) {
  using namespace swarmlab::wire;
  const std::uint64_t size_mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                         : 4;

  // 1. Build a metainfo for synthetic content and bencode it.
  const Metainfo meta = make_synthetic_metainfo(
      "http://tracker.example/announce", "example-content.bin",
      size_mb * 1024 * 1024);
  const std::string torrent = encode_metainfo(meta);
  std::printf(".torrent built: %zu bytes, %zu pieces of %u KiB\n",
              torrent.size(), meta.piece_hashes.size(),
              meta.piece_length / 1024);
  std::printf("info hash: %s\n", info_hash(meta).hex().c_str());

  // 2. Parse it back and verify the round trip.
  const Metainfo parsed = decode_metainfo(torrent);
  std::printf("round trip: %s\n",
              parsed == meta ? "identical" : "MISMATCH");

  // 3. Verify every piece of the synthetic content against its hash —
  //    what a client does before serving a downloaded piece onward.
  std::size_t ok = 0;
  for (PieceIndex p = 0; p < parsed.geometry().num_pieces(); ++p) {
    const auto bytes = synthetic_piece_bytes(parsed, p);
    if (Sha1::hash(std::span<const std::uint8_t>(bytes)) ==
        parsed.piece_hashes[p]) {
      ++ok;
    }
  }
  std::printf("piece verification: %zu/%u hashes match\n", ok,
              parsed.geometry().num_pieces());

  // 4. Encode a small peer-wire session and decode it back frame by
  //    frame, as a stream consumer would.
  std::vector<std::uint8_t> stream;
  const std::uint32_t pieces = parsed.geometry().num_pieces();
  BitfieldMsg bf;
  bf.bits.assign(pieces, false);
  bf.bits[0] = true;
  const Message session[] = {
      Message{bf},
      Message{InterestedMsg{}},
      Message{UnchokeMsg{}},
      Message{RequestMsg{0, 0, 16384}},
      Message{PieceMsg{0, 0, std::vector<std::uint8_t>(16384, 7)}},
      Message{HaveMsg{0}},
      Message{KeepAliveMsg{}},
  };
  for (const Message& m : session) {
    const auto bytes = encode_message(m, pieces);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  std::printf("\nwire stream: %zu bytes, decoding frame by frame:\n",
              stream.size());
  std::size_t at = 0;
  while (at < stream.size()) {
    std::size_t consumed = 0;
    const auto msg = decode_message(
        std::span<const std::uint8_t>(stream.data() + at,
                                      stream.size() - at),
        pieces, consumed);
    if (!msg.has_value()) break;  // incomplete tail (none here)
    std::printf("  offset %5zu: %-14s (%zu bytes)\n", at,
                message_name(*msg), consumed);
    at += consumed;
  }
  std::printf("stream fully consumed: %s\n",
              at == stream.size() ? "yes" : "NO");
  return 0;
}
