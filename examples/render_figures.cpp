// Example: regenerate the paper's figures as SVG images.
//
// Runs the deep-dive scenarios (torrents 7, 8 and 10, scaled) with the
// full instrumentation and writes one SVG per reproduced figure:
//
//   fig02_replication_transient.svg   fig03_rarest_transient.svg
//   fig04_replication_steady.svg      fig05_peer_set.svg
//   fig06_rarest_steady.svg           fig07_piece_interarrival.svg
//   fig08_block_interarrival.svg      fig10_unchoke_correlation.svg
//
// Usage: render_figures [output_dir=figures] [rng=20061025]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "swarmlab/swarmlab.h"
#include "viz/svg_plot.h"

namespace {

using namespace swarmlab;

void write_svg(const std::filesystem::path& dir, const std::string& name,
               const std::string& svg) {
  const auto path = dir / name;
  std::ofstream out(path);
  out << svg;
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), svg.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "figures";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20061025;
  std::filesystem::create_directories(dir);

  swarm::ScaleLimits limits;
  limits.max_peers = 200;
  limits.max_pieces = 200;

  // --- torrent 8 (transient): Figs. 2 and 3 -----------------------------
  {
    auto cfg = swarm::scenario_from_table1(8, limits);
    instrument::LocalPeerLog log(cfg.num_pieces);
    swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
    instrument::AvailabilitySampler sampler(runner.simulation(),
                                            runner.local_peer(), 20.0);
    runner.run_until_local_complete(0.0);

    write_svg(dir, "fig02_replication_transient.svg",
              viz::render_line_chart(
                  {viz::from_time_series(sampler.max_copies(), "max"),
                   viz::from_time_series(sampler.mean_copies(), "mean"),
                   viz::from_time_series(sampler.min_copies(), "min")},
                  {.title = "Fig. 2 — piece copies in the peer set "
                            "(torrent 8, transient)",
                   .x_label = "time (s)",
                   .y_label = "number of copies"}));
    write_svg(dir, "fig03_rarest_transient.svg",
              viz::render_line_chart(
                  {viz::from_time_series(sampler.rarest_set_size(),
                                         "rarest set size")},
                  {.title = "Fig. 3 — number of rarest pieces "
                            "(torrent 8, transient)",
                   .x_label = "time (s)",
                   .y_label = "# rarest pieces"}));
  }

  // --- torrent 7 (steady): Figs. 4, 5, 6 and 10 --------------------------
  {
    auto cfg = swarm::scenario_from_table1(7, limits);
    instrument::LocalPeerLog log(cfg.num_pieces);
    swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
    instrument::AvailabilitySampler sampler(runner.simulation(),
                                            runner.local_peer(), 15.0);
    const double end = runner.run_until_local_complete(6000.0);
    log.finalize(end);

    write_svg(dir, "fig04_replication_steady.svg",
              viz::render_line_chart(
                  {viz::from_time_series(sampler.max_copies(), "max"),
                   viz::from_time_series(sampler.mean_copies(), "mean"),
                   viz::from_time_series(sampler.min_copies(), "min")},
                  {.title = "Fig. 4 — piece copies in the peer set "
                            "(torrent 7, steady state)",
                   .x_label = "time (s)",
                   .y_label = "number of copies"}));
    write_svg(dir, "fig05_peer_set.svg",
              viz::render_line_chart(
                  {viz::from_time_series(sampler.peer_set_size(),
                                         "peer set size")},
                  {.title = "Fig. 5 — size of the local peer set "
                            "(torrent 7)",
                   .x_label = "time (s)",
                   .y_label = "peers"}));
    write_svg(dir, "fig06_rarest_steady.svg",
              viz::render_line_chart(
                  {viz::from_time_series(sampler.rarest_set_size(),
                                         "rarest set size")},
                  {.title = "Fig. 6 — number of rarest pieces "
                            "(torrent 7, steady state)",
                   .x_label = "time (s)",
                   .y_label = "# rarest pieces"}));

    const auto ls = instrument::analyze_unchoke_correlation_leecher(log);
    const auto ss = instrument::analyze_unchoke_correlation_seed(log);
    viz::Series ls_pts{"leecher state", {}};
    for (std::size_t i = 0; i < ls.unchokes.size(); ++i) {
      ls_pts.points.emplace_back(ls.interested_time[i], ls.unchokes[i]);
    }
    viz::Series ss_pts{"seed state", {}};
    for (std::size_t i = 0; i < ss.unchokes.size(); ++i) {
      ss_pts.points.emplace_back(ss.interested_time[i], ss.unchokes[i]);
    }
    write_svg(dir, "fig10_unchoke_correlation.svg",
              viz::render_scatter(
                  {ls_pts, ss_pts},
                  {.title = "Fig. 10 — unchokes vs interested time "
                            "(torrent 7)",
                   .x_label = "interested time (s)",
                   .y_label = "# unchokes"}));
  }

  // --- torrent 10: Figs. 7 and 8 -------------------------------------------
  {
    auto cfg = swarm::scenario_from_table1(10, limits);
    const std::size_t k =
        std::max<std::size_t>(10, cfg.num_pieces * 100 / 1393);
    instrument::LocalPeerLog log(cfg.num_pieces);
    swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
    const double end = runner.run_until_local_complete(500.0);
    log.finalize(end);

    const auto pieces = instrument::analyze_piece_interarrival(log, k);
    write_svg(dir, "fig07_piece_interarrival.svg",
              viz::render_line_chart(
                  {viz::from_cdf(pieces.all, "all pieces"),
                   viz::from_cdf(pieces.first_k, "first"),
                   viz::from_cdf(pieces.last_k, "last")},
                  {.title = "Fig. 7 — CDF of piece interarrival time "
                            "(torrent 10)",
                   .x_label = "interarrival time (s, log)",
                   .y_label = "CDF",
                   .log_x = true}));
    const auto blocks = instrument::analyze_block_interarrival(log, 100);
    write_svg(dir, "fig08_block_interarrival.svg",
              viz::render_line_chart(
                  {viz::from_cdf(blocks.all, "all blocks"),
                   viz::from_cdf(blocks.first_k, "100 first"),
                   viz::from_cdf(blocks.last_k, "100 last")},
                  {.title = "Fig. 8 — CDF of block interarrival time "
                            "(torrent 10)",
                   .x_label = "interarrival time (s, log)",
                   .y_label = "CDF",
                   .log_x = true}));
  }

  std::printf("done — figures in %s/\n", dir.string().c_str());
  return 0;
}
