// Example: a flash crowd on a fresh torrent.
//
// One initial seed publishes new content; a crowd of leechers arrives at
// once (the classic BitTorrent launch-day scenario, and the paper's
// "transient state"). The example tracks the transient phase — how long
// rare pieces exist — and shows that the service capacity ramps up
// exponentially once pieces leave the initial seed (Yang & de Veciana's
// result, which the paper builds on).
//
// With --seed-death T the initial seed crashes abruptly at T simulated
// seconds (no Stopped announce, no disconnects): if T falls inside the
// transient phase some pieces never replicate and the crowd stalls; past
// the transient the swarm finishes without it (paper §IV-A.2.a).
//
// Usage: flash_crowd [leechers=120] [pieces=96] [seed_kbs=40] [rng=1]
//                    [--seed-death T]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "swarmlab/swarmlab.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  double seed_death = -1.0;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed-death") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --seed-death needs a time in seconds\n",
                     argv[0]);
        return 2;
      }
      seed_death = std::atof(argv[++i]);
    } else {
      pos.push_back(argv[i]);
    }
  }
  const std::uint32_t leechers =
      pos.size() > 0 ? static_cast<std::uint32_t>(std::atoi(pos[0])) : 120;
  const std::uint32_t pieces =
      pos.size() > 1 ? static_cast<std::uint32_t>(std::atoi(pos[1])) : 96;
  const double seed_kbs = pos.size() > 2 ? std::atof(pos[2]) : 40.0;
  const std::uint64_t rng_seed =
      pos.size() > 3 ? std::strtoull(pos[3], nullptr, 10) : 1;

  swarm::ScenarioConfig cfg;
  cfg.name = "flash-crowd";
  cfg.num_pieces = pieces;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = leechers;
  cfg.leechers_warm = false;  // everyone starts empty: transient state
  cfg.initial_seed_upload = seed_kbs * 1024;
  cfg.seed_linger_mean = 0.0;  // finished peers stay and seed
  cfg.duration = 60000.0;
  if (seed_death >= 0.0) cfg.faults.initial_seed_death_time = seed_death;

  std::printf("flash crowd: %u leechers + local peer, %u pieces x 256 KiB, "
              "initial seed %.0f kB/s, rng=%llu\n",
              leechers, pieces, seed_kbs,
              static_cast<unsigned long long>(rng_seed));
  const double first_copy_floor =
      static_cast<double>(pieces) * cfg.piece_size / cfg.initial_seed_upload;
  std::printf("lower bound for the transient phase (one full copy at seed "
              "capacity): %.0f s\n", first_copy_floor);
  if (seed_death >= 0.0) {
    std::printf("initial seed crashes abruptly at t=%.0f s (%s the "
                "one-copy floor)\n",
                seed_death, seed_death < first_copy_floor ? "BEFORE" : "after");
  }
  std::printf("\n");

  swarm::ScenarioRunner runner(cfg, rng_seed);
  std::unique_ptr<fault::FaultInjector> injector;
  if (cfg.faults.any()) {
    injector = std::make_unique<fault::FaultInjector>(runner, rng_seed);
  }

  // Watch the swarm: transient ends when every piece has a copy besides
  // the initial seed's.
  double transient_end = -1.0;
  std::printf("%8s %10s %12s %12s %14s\n", "t (s)", "seeds", "leechers",
              "done peers", "swarm MB/s");
  std::uint64_t prev_bytes = 0;
  double prev_t = 0.0;
  std::size_t done = 0;
  for (double t = 250.0; t <= cfg.duration; t += 250.0) {
    runner.simulation().run_until(t);
    std::uint64_t bytes = 0;
    done = 0;
    for (const peer::PeerId id : runner.swarm().peer_ids()) {
      const peer::Peer* p = runner.swarm().find_peer(id);
      bytes += p->total_uploaded();
      if (p->completion_time() >= 0 && !p->config().start_complete) ++done;
    }
    if (transient_end < 0 &&
        runner.swarm().global_availability().min_copies() >= 2) {
      transient_end = t;
    }
    const double rate =
        (bytes - prev_bytes) / (t - prev_t) / (1024.0 * 1024.0);
    std::printf("%8.0f %10zu %12zu %12zu %14.3f\n", t,
                runner.swarm().tracker().num_seeds(),
                runner.swarm().tracker().num_leechers(), done, rate);
    prev_bytes = bytes;
    prev_t = t;
    if (done >= leechers + 1) break;  // crowd fully served
    // A stalled post-death swarm never progresses again; stop polling
    // once every surviving piece is fully replicated among survivors.
    if (injector != nullptr && injector->stats().seed_deaths > 0 &&
        rate == 0.0 && t - seed_death > 1000.0) {
      break;
    }
  }

  if (transient_end >= 0) {
    std::printf("\ntransient phase ended at ~%.0f s (floor %.0f s): the "
                "duration is set by the initial seed's upload capacity, not "
                "by the piece-selection strategy (paper §IV-A.2.a).\n",
                transient_end, first_copy_floor);
  } else {
    std::printf("\ntransient phase never ended: at least one piece has no "
                "copy outside the initial seed.\n");
  }
  if (injector != nullptr) {
    std::printf("faults: initial seed died at t=%.0f s; %zu of %u crowd "
                "peers %s\n",
                seed_death, done, leechers + 1,
                done >= leechers + 1 ? "finished anyway"
                                     : "finished before the swarm starved");
  }
  if (runner.local_peer().completion_time() >= 0) {
    std::printf("local peer finished at %.0f s.\n",
                runner.local_peer().completion_time());
  } else {
    std::printf("local peer never finished (stalled).\n");
  }
  return 0;
}
