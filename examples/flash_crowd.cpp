// Example: a flash crowd on a fresh torrent.
//
// One initial seed publishes new content; a crowd of leechers arrives at
// once (the classic BitTorrent launch-day scenario, and the paper's
// "transient state"). The example tracks the transient phase — how long
// rare pieces exist — and shows that the service capacity ramps up
// exponentially once pieces leave the initial seed (Yang & de Veciana's
// result, which the paper builds on).
//
// Usage: flash_crowd [leechers=120] [pieces=96] [seed_kbs=40] [rng=1]
#include <cstdio>
#include <cstdlib>

#include "swarmlab/swarmlab.h"

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint32_t leechers =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 120;
  const std::uint32_t pieces =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 96;
  const double seed_kbs = argc > 3 ? std::atof(argv[3]) : 40.0;
  const std::uint64_t rng_seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  swarm::ScenarioConfig cfg;
  cfg.name = "flash-crowd";
  cfg.num_pieces = pieces;
  cfg.initial_seeds = 1;
  cfg.initial_leechers = leechers;
  cfg.leechers_warm = false;  // everyone starts empty: transient state
  cfg.initial_seed_upload = seed_kbs * 1024;
  cfg.seed_linger_mean = 0.0;  // finished peers stay and seed
  cfg.duration = 60000.0;

  std::printf("flash crowd: %u leechers + local peer, %u pieces x 256 KiB, "
              "initial seed %.0f kB/s, rng=%llu\n",
              leechers, pieces, seed_kbs,
              static_cast<unsigned long long>(rng_seed));
  const double first_copy_floor =
      static_cast<double>(pieces) * cfg.piece_size / cfg.initial_seed_upload;
  std::printf("lower bound for the transient phase (one full copy at seed "
              "capacity): %.0f s\n\n", first_copy_floor);

  swarm::ScenarioRunner runner(cfg, rng_seed);

  // Watch the swarm: transient ends when every piece has a copy besides
  // the initial seed's.
  double transient_end = -1.0;
  std::printf("%8s %10s %12s %12s %14s\n", "t (s)", "seeds", "leechers",
              "done peers", "swarm MB/s");
  std::uint64_t prev_bytes = 0;
  double prev_t = 0.0;
  for (double t = 250.0; t <= cfg.duration; t += 250.0) {
    runner.simulation().run_until(t);
    std::uint64_t bytes = 0;
    std::size_t done = 0;
    for (const peer::PeerId id : runner.swarm().peer_ids()) {
      const peer::Peer* p = runner.swarm().find_peer(id);
      bytes += p->total_uploaded();
      if (p->completion_time() >= 0 && !p->config().start_complete) ++done;
    }
    if (transient_end < 0 &&
        runner.swarm().global_availability().min_copies() >= 2) {
      transient_end = t;
    }
    const double rate =
        (bytes - prev_bytes) / (t - prev_t) / (1024.0 * 1024.0);
    std::printf("%8.0f %10zu %12zu %12zu %14.3f\n", t,
                runner.swarm().tracker().num_seeds(),
                runner.swarm().tracker().num_leechers(), done, rate);
    prev_bytes = bytes;
    prev_t = t;
    if (done >= leechers + 1) break;  // crowd fully served
  }

  std::printf("\ntransient phase ended at ~%.0f s (floor %.0f s): the "
              "duration is set by the initial seed's upload capacity, not "
              "by the piece-selection strategy (paper §IV-A.2.a).\n",
              transient_end, first_copy_floor);
  if (runner.local_peer().completion_time() >= 0) {
    std::printf("local peer finished at %.0f s.\n",
                runner.local_peer().completion_time());
  }
  return 0;
}
