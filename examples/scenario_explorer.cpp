// Example: scenario explorer — a small command-line front end over the
// whole library. Configure a torrent from flags, run it with a fully
// instrumented local peer, print a measurement report, and optionally
// dump the raw event trace and the availability time series as CSV for
// offline analysis (the simulated equivalent of the paper's trace files).
// With --sweep it instead runs the full 26-torrent Table-I catalog
// through the parallel BatchRunner (any protocol overrides still apply),
// one line per torrent.
//
// Usage:
//   scenario_explorer [options]
//     --torrent N        Table-I torrent id 1-26 (default: custom)
//     --sweep            run all 26 Table-I torrents via the batch runner
//     --jobs N           worker threads for --sweep (default 1)
//     --json FILE        write the machine-readable batch report
//     --leechers N       initial leechers (custom scenario, default 60)
//     --seeds N          initial seeds (default 1)
//     --pieces N         content pieces of 256 KiB (default 64)
//     --warm             leechers start with partial content
//     --free-riders F    fraction in [0,1] (default 0)
//     --picker NAME      rarest|random|sequential|oracle (default rarest)
//     --seed-choke NAME  new|old (default new)
//     --rng N            RNG seed (default 1)
//     --trace FILE       write the local peer's event trace as CSV
//     --series FILE      write availability/peer-set time series as CSV
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "swarmlab/swarmlab.h"

namespace {

using namespace swarmlab;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--torrent N | --sweep | --leechers N --seeds N"
               " --pieces N [--warm]] [--jobs N] [--json FILE]"
               " [--free-riders F] [--picker NAME] [--seed-choke NAME]"
               " [--rng N] [--trace FILE] [--series FILE]\n",
               argv0);
  std::exit(2);
}

core::PickerKind parse_picker(const std::string& name, const char* argv0) {
  if (name == "rarest") return core::PickerKind::kRarestFirst;
  if (name == "random") return core::PickerKind::kRandom;
  if (name == "sequential") return core::PickerKind::kSequential;
  if (name == "oracle") return core::PickerKind::kGlobalRarest;
  usage(argv0);
}

void apply_protocol(swarm::ScenarioConfig& cfg, double free_riders,
                    core::PickerKind picker,
                    core::SeedChokerKind seed_choke) {
  cfg.free_rider_fraction = free_riders;
  for (core::ProtocolParams* p : {&cfg.remote_params, &cfg.local_params}) {
    p->picker = picker;
    p->seed_choker = seed_choke;
  }
}

void write_report_or_die(const std::string& path,
                         const runner::json::Value& report) {
  std::string error;
  if (!runner::write_report(path, report, &error)) {
    std::fprintf(stderr, "scenario_explorer: %s\n", error.c_str());
    std::exit(1);
  }
  std::printf("wrote batch report to %s\n", path.c_str());
}

/// The 26-torrent catalog through the BatchRunner: per-job seeds forked
/// from --rng, rows streamed in submission order (identical for any
/// --jobs value).
int run_sweep(std::uint64_t rng_seed, int jobs, const std::string& json_path,
              double free_riders, core::PickerKind picker,
              core::SeedChokerKind seed_choke) {
  // Same scale as the sweep benches so a full sweep stays interactive.
  swarm::ScaleLimits limits;
  limits.max_peers = 120;
  limits.max_pieces = 96;
  limits.min_pieces = 16;
  limits.duration = 30000.0;
  auto batch_jobs = runner::table1_jobs(rng_seed, limits);
  for (auto& job : batch_jobs) {
    apply_protocol(job.config, free_riders, picker, seed_choke);
  }

  std::printf("sweep: 26 Table-I torrents, %d worker(s), master rng=%llu\n",
              jobs, static_cast<unsigned long long>(rng_seed));
  std::printf("%3s %-18s | %9s %8s | %-20s\n", "ID", "name", "complete",
              "entropy", "a/b median bar");
  std::printf("------------------------------------------------------------"
              "-------\n");

  runner::BatchOptions bopts;
  bopts.jobs = jobs;
  bopts.master_seed = rng_seed;
  runner::BatchRunner batch(bopts);
  const auto results = batch.run(
      batch_jobs,
      [](const runner::BatchJob& job) {
        return runner::run_scenario_job(
            job, 1000.0,
            [&job](const swarm::ScenarioRunner&,
                   const instrument::LocalPeerLog& log,
                   runner::RunResult& res) {
              const auto entropy = instrument::analyze_entropy(log);
              res.metrics["median_local"] = entropy.median_local;
              res.metrics["median_remote"] = entropy.median_remote;
              char row[160];
              std::snprintf(row, sizeof row,
                            "%3d %-18s | %8.0fs %8.2f | %-20s\n", job.id,
                            job.name.c_str(), res.local_completion,
                            entropy.median_local,
                            std::string(static_cast<std::size_t>(
                                            std::min(20.0,
                                                     entropy.median_local *
                                                         20.0)),
                                        '#')
                                .c_str());
              res.text = row;
            });
      },
      [](const runner::RunResult& r) { std::fputs(r.text.c_str(), stdout); });
  std::printf("sweep done: %zu scenarios in %.1fs wall\n", results.size(),
              batch.wall_seconds());

  if (!json_path.empty()) {
    write_report_or_die(json_path,
                        runner::make_report("scenario_explorer", bopts,
                                            results, batch.wall_seconds()));
  }
  const std::string summary = runner::failure_summary(results);
  if (!summary.empty()) {
    std::fputs(summary.c_str(), stderr);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int torrent = 0;
  bool sweep = false;
  int jobs = 1;
  std::uint32_t leechers = 60, seeds = 1, pieces = 64;
  bool warm = false;
  double free_riders = 0.0;
  std::uint64_t rng_seed = 1;
  core::PickerKind picker = core::PickerKind::kRarestFirst;
  core::SeedChokerKind seed_choke = core::SeedChokerKind::kNewSeed;
  std::string trace_file, series_file, json_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--torrent") torrent = std::atoi(next());
    else if (arg == "--sweep") sweep = true;
    else if (arg == "--jobs") {
      jobs = std::atoi(next());
      if (jobs < 1 || jobs > 512) usage(argv[0]);
    } else if (arg == "--json") json_file = next();
    else if (arg == "--leechers")
      leechers = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--seeds")
      seeds = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--pieces")
      pieces = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--warm") warm = true;
    else if (arg == "--free-riders") free_riders = std::atof(next());
    else if (arg == "--picker") picker = parse_picker(next(), argv[0]);
    else if (arg == "--seed-choke") {
      const std::string v = next();
      seed_choke = v == "old" ? core::SeedChokerKind::kOldSeed
                              : core::SeedChokerKind::kNewSeed;
    } else if (arg == "--rng") {
      rng_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--trace") trace_file = next();
    else if (arg == "--series") series_file = next();
    else usage(argv[0]);
  }

  if (sweep) {
    return run_sweep(rng_seed, jobs, json_file, free_riders, picker,
                     seed_choke);
  }

  swarm::ScenarioConfig cfg;
  if (torrent >= 1 && torrent <= 26) {
    cfg = swarm::scenario_from_table1(torrent);
  } else {
    cfg.name = "custom";
    cfg.num_pieces = pieces;
    cfg.initial_seeds = seeds;
    cfg.initial_leechers = leechers;
    cfg.leechers_warm = warm;
  }
  apply_protocol(cfg, free_riders, picker, seed_choke);

  std::printf("scenario %s: %u seeds, %u leechers, %u pieces, "
              "free riders %.0f%%, rng=%llu\n",
              cfg.name.c_str(), cfg.initial_seeds, cfg.initial_leechers,
              cfg.num_pieces, 100 * cfg.free_rider_fraction,
              static_cast<unsigned long long>(rng_seed));

  instrument::LocalPeerLog log(cfg.num_pieces);
  instrument::TraceWriter trace(/*max_events=*/2'000'000);
  instrument::ObserverList observers;
  observers.add(&log);
  observers.add(&trace);

  const std::string scenario_name = cfg.name;
  swarm::ScenarioRunner runner(std::move(cfg), rng_seed, &observers);
  instrument::AvailabilitySampler sampler(runner.simulation(),
                                          runner.local_peer(), 20.0);
  const double end = runner.run_until_local_complete(2000.0);
  log.finalize(end);

  // --- report -----------------------------------------------------------
  const peer::Peer& local = runner.local_peer();
  std::printf("\nlocal peer: %u/%u pieces at t=%.0fs; up %.1f MiB, "
              "down %.1f MiB, %llu verification failures\n",
              local.have().count(), local.have().size(),
              local.completion_time(),
              local.total_uploaded() / 1048576.0,
              local.total_downloaded() / 1048576.0,
              static_cast<unsigned long long>(local.corrupted_pieces()));

  const auto entropy = instrument::analyze_entropy(log);
  std::printf("entropy: a/b median %.2f (p20 %.2f), c/d median %.2f over "
              "%zu remote leechers\n",
              entropy.median_local, entropy.p20_local,
              entropy.median_remote, entropy.local_interest_ratios.size());
  const auto inter = instrument::analyze_piece_interarrival(log, 20);
  if (!inter.all.empty()) {
    std::printf("piece interarrival: median %.1fs (first 20: %.1fs, "
                "last 20: %.1fs)\n",
                inter.all.quantile(0.5), inter.first_k.quantile(0.5),
                inter.last_k.quantile(0.5));
  }
  std::printf("messages: ");
  for (const auto& [name, count] : log.message_counters().received) {
    std::printf("%s:%llu ", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\ntrace: %zu events (%zu dropped past cap)\n",
              trace.events().size(), trace.dropped());

  // --- optional machine-readable report (single-run batch) ---------------
  if (!json_file.empty()) {
    runner::RunResult res;
    res.id = torrent;
    res.name = scenario_name;
    res.seed = rng_seed;
    res.end_time = end;
    res.local_completion =
        log.local_is_seed() ? local.completion_time() : -1.0;
    res.events_executed = runner.simulation().events_executed();
    res.metrics["median_local"] = entropy.median_local;
    res.metrics["median_remote"] = entropy.median_remote;
    res.metrics["uploaded_bytes"] = local.total_uploaded();
    res.metrics["downloaded_bytes"] = local.total_downloaded();
    runner::BatchOptions bopts;
    bopts.jobs = 1;
    bopts.master_seed = rng_seed;
    write_report_or_die(json_file,
                        runner::make_report("scenario_explorer", bopts,
                                            {res}, 0.0));
  }

  // --- optional CSV dumps --------------------------------------------------
  if (!trace_file.empty()) {
    std::ofstream out(trace_file);
    trace.write_csv(out);
    std::printf("wrote event trace to %s\n", trace_file.c_str());
  }
  if (!series_file.empty()) {
    std::ofstream out(series_file);
    out << "time,min_copies,mean_copies,max_copies,rarest_set,peer_set\n";
    const auto& mean = sampler.mean_copies();
    for (std::size_t i = 0; i < mean.size(); ++i) {
      const double t = mean.samples()[i].time;
      out << t << ',' << sampler.min_copies().samples()[i].value << ','
          << mean.samples()[i].value << ','
          << sampler.max_copies().samples()[i].value << ','
          << sampler.rarest_set_size().samples()[i].value << ','
          << sampler.peer_set_size().samples()[i].value << '\n';
    }
    std::printf("wrote time series to %s\n", series_file.c_str());
  }
  return 0;
}
