// Example: scenario explorer — a small command-line front end over the
// whole library. Configure a torrent from flags, run it with a fully
// instrumented local peer, print a measurement report, and optionally
// dump the raw event trace and the availability time series as CSV for
// offline analysis (the simulated equivalent of the paper's trace files).
//
// Usage:
//   scenario_explorer [options]
//     --torrent N        Table-I torrent id 1-26 (default: custom)
//     --leechers N       initial leechers (custom scenario, default 60)
//     --seeds N          initial seeds (default 1)
//     --pieces N         content pieces of 256 KiB (default 64)
//     --warm             leechers start with partial content
//     --free-riders F    fraction in [0,1] (default 0)
//     --picker NAME      rarest|random|sequential|oracle (default rarest)
//     --seed-choke NAME  new|old (default new)
//     --rng N            RNG seed (default 1)
//     --trace FILE       write the local peer's event trace as CSV
//     --series FILE      write availability/peer-set time series as CSV
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "swarmlab/swarmlab.h"

namespace {

using namespace swarmlab;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--torrent N | --leechers N --seeds N --pieces N"
               " [--warm]] [--free-riders F] [--picker NAME]"
               " [--seed-choke NAME] [--rng N] [--trace FILE]"
               " [--series FILE]\n",
               argv0);
  std::exit(2);
}

core::PickerKind parse_picker(const std::string& name, const char* argv0) {
  if (name == "rarest") return core::PickerKind::kRarestFirst;
  if (name == "random") return core::PickerKind::kRandom;
  if (name == "sequential") return core::PickerKind::kSequential;
  if (name == "oracle") return core::PickerKind::kGlobalRarest;
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  int torrent = 0;
  std::uint32_t leechers = 60, seeds = 1, pieces = 64;
  bool warm = false;
  double free_riders = 0.0;
  std::uint64_t rng_seed = 1;
  core::PickerKind picker = core::PickerKind::kRarestFirst;
  core::SeedChokerKind seed_choke = core::SeedChokerKind::kNewSeed;
  std::string trace_file, series_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--torrent") torrent = std::atoi(next());
    else if (arg == "--leechers")
      leechers = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--seeds")
      seeds = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--pieces")
      pieces = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--warm") warm = true;
    else if (arg == "--free-riders") free_riders = std::atof(next());
    else if (arg == "--picker") picker = parse_picker(next(), argv[0]);
    else if (arg == "--seed-choke") {
      const std::string v = next();
      seed_choke = v == "old" ? core::SeedChokerKind::kOldSeed
                              : core::SeedChokerKind::kNewSeed;
    } else if (arg == "--rng") {
      rng_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--trace") trace_file = next();
    else if (arg == "--series") series_file = next();
    else usage(argv[0]);
  }

  swarm::ScenarioConfig cfg;
  if (torrent >= 1 && torrent <= 26) {
    cfg = swarm::scenario_from_table1(torrent);
  } else {
    cfg.name = "custom";
    cfg.num_pieces = pieces;
    cfg.initial_seeds = seeds;
    cfg.initial_leechers = leechers;
    cfg.leechers_warm = warm;
  }
  cfg.free_rider_fraction = free_riders;
  for (core::ProtocolParams* p : {&cfg.remote_params, &cfg.local_params}) {
    p->picker = picker;
    p->seed_choker = seed_choke;
  }

  std::printf("scenario %s: %u seeds, %u leechers, %u pieces, "
              "free riders %.0f%%, rng=%llu\n",
              cfg.name.c_str(), cfg.initial_seeds, cfg.initial_leechers,
              cfg.num_pieces, 100 * cfg.free_rider_fraction,
              static_cast<unsigned long long>(rng_seed));

  instrument::LocalPeerLog log(cfg.num_pieces);
  instrument::TraceWriter trace(/*max_events=*/2'000'000);
  instrument::ObserverList observers;
  observers.add(&log);
  observers.add(&trace);

  swarm::ScenarioRunner runner(std::move(cfg), rng_seed, &observers);
  instrument::AvailabilitySampler sampler(runner.simulation(),
                                          runner.local_peer(), 20.0);
  const double end = runner.run_until_local_complete(2000.0);
  log.finalize(end);

  // --- report -----------------------------------------------------------
  const peer::Peer& local = runner.local_peer();
  std::printf("\nlocal peer: %u/%u pieces at t=%.0fs; up %.1f MiB, "
              "down %.1f MiB, %llu verification failures\n",
              local.have().count(), local.have().size(),
              local.completion_time(),
              local.total_uploaded() / 1048576.0,
              local.total_downloaded() / 1048576.0,
              static_cast<unsigned long long>(local.corrupted_pieces()));

  const auto entropy = instrument::analyze_entropy(log);
  std::printf("entropy: a/b median %.2f (p20 %.2f), c/d median %.2f over "
              "%zu remote leechers\n",
              entropy.median_local, entropy.p20_local,
              entropy.median_remote, entropy.local_interest_ratios.size());
  const auto inter = instrument::analyze_piece_interarrival(log, 20);
  if (!inter.all.empty()) {
    std::printf("piece interarrival: median %.1fs (first 20: %.1fs, "
                "last 20: %.1fs)\n",
                inter.all.quantile(0.5), inter.first_k.quantile(0.5),
                inter.last_k.quantile(0.5));
  }
  std::printf("messages: ");
  for (const auto& [name, count] : log.message_counters().received) {
    std::printf("%s:%llu ", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\ntrace: %zu events (%zu dropped past cap)\n",
              trace.events().size(), trace.dropped());

  // --- optional CSV dumps --------------------------------------------------
  if (!trace_file.empty()) {
    std::ofstream out(trace_file);
    trace.write_csv(out);
    std::printf("wrote event trace to %s\n", trace_file.c_str());
  }
  if (!series_file.empty()) {
    std::ofstream out(series_file);
    out << "time,min_copies,mean_copies,max_copies,rarest_set,peer_set\n";
    const auto& mean = sampler.mean_copies();
    for (std::size_t i = 0; i < mean.size(); ++i) {
      const double t = mean.samples()[i].time;
      out << t << ',' << sampler.min_copies().samples()[i].value << ','
          << mean.samples()[i].value << ','
          << sampler.max_copies().samples()[i].value << ','
          << sampler.rarest_set_size().samples()[i].value << ','
          << sampler.peer_set_size().samples()[i].value << '\n';
    }
    std::printf("wrote time series to %s\n", series_file.c_str());
  }
  return 0;
}
