// Quickstart: simulate an instrumented BitTorrent peer joining a torrent,
// then print the headline measurements of Legout et al. (IMC 2006) —
// entropy ratios, reciprocation, and the choke algorithm's behavior.
//
// Usage: quickstart [torrent_id=7] [seed=1]
#include <cstdio>
#include <cstdlib>

#include "swarmlab/swarmlab.h"

int main(int argc, char** argv) {
  using namespace swarmlab;

  const int torrent_id = argc > 1 ? std::atoi(argv[1]) : 7;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 1;

  // 1. Pick a scenario from the paper's Table I (scaled; see DESIGN.md §5).
  swarm::ScaleLimits limits;
  limits.max_peers = 160;
  limits.max_pieces = 160;
  swarm::ScenarioConfig cfg = swarm::scenario_from_table1(torrent_id, limits);

  std::printf("swarmlab quickstart — %s\n", cfg.name.c_str());
  std::printf("scale: %u seeds, %u leechers, %u pieces x %u KiB, seed=%llu\n",
              cfg.initial_seeds, cfg.initial_leechers, cfg.num_pieces,
              cfg.piece_size / 1024,
              static_cast<unsigned long long>(seed));

  // 2. Attach the instrumented-client log to the local peer and run until
  //    the local peer has completed and seeded for a while.
  instrument::LocalPeerLog log(cfg.num_pieces);
  swarm::ScenarioRunner runner(std::move(cfg), seed, &log);
  const double end = runner.run_until_local_complete(/*extra=*/2000.0);
  log.finalize(end);

  const peer::Peer& local = runner.local_peer();
  std::printf("\nlocal peer: %u/%u pieces, completed at t=%.0fs, "
              "up=%.1f MiB down=%.1f MiB, end_game at t=%.0fs\n",
              local.have().count(), local.have().size(),
              local.completion_time(),
              local.total_uploaded() / (1024.0 * 1024.0),
              local.total_downloaded() / (1024.0 * 1024.0),
              log.end_game_time());

  // 3. Entropy (Fig. 1): ideal piece diversity makes both medians ~1.
  const auto entropy = instrument::analyze_entropy(log);
  std::printf("\nentropy (Fig. 1):\n");
  std::printf("  local interested in remotes : p20=%.2f median=%.2f p80=%.2f"
              " (n=%zu)\n",
              entropy.p20_local, entropy.median_local, entropy.p80_local,
              entropy.local_interest_ratios.size());
  std::printf("  remotes interested in local : p20=%.2f median=%.2f p80=%.2f"
              " (n=%zu)\n",
              entropy.p20_remote, entropy.median_remote, entropy.p80_remote,
              entropy.remote_interest_ratios.size());

  // 4. Reciprocation (Fig. 9): the top-5 upload set should dominate both
  //    directions.
  const auto fair = instrument::analyze_leecher_fairness(log);
  std::printf("\nleecher-state contribution by top sets of 5 (Fig. 9):\n");
  for (std::size_t s = 0; s < fair.upload_fraction.size(); ++s) {
    std::printf("  set %zu: upload %.2f  download %.2f\n", s,
                fair.upload_fraction[s], fair.download_fraction[s]);
  }

  // 5. Choke-algorithm behavior (Fig. 10): in seed state the number of
  //    unchokes tracks the interested time; in leecher state it does not.
  const auto ls = instrument::analyze_unchoke_correlation_leecher(log);
  const auto ss = instrument::analyze_unchoke_correlation_seed(log);
  std::printf("\nunchokes vs interested time (Fig. 10): "
              "leecher spearman=%.2f, seed spearman=%.2f\n",
              ls.spearman, ss.spearman);

  std::printf("\ntracker view: %zu seeds / %zu leechers, %llu announces\n",
              runner.swarm().tracker().num_seeds(),
              runner.swarm().tracker().num_leechers(),
              static_cast<unsigned long long>(
                  runner.swarm().tracker().stats().announces));
  return 0;
}
