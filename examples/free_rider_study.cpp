// Example: free riders vs the choke algorithm (paper §IV-B).
//
// The paper's two fairness criteria deliberately do NOT starve free
// riders: "leechers are allowed to use the excess capacity, but not at
// the expense of leechers with a higher level of contribution". This
// example demonstrates both halves:
//
//   regime A (flash crowd)  — the swarm has excess capacity once the
//     initial seed has pushed the first copy; free riders finish almost
//     as fast as honest peers, using capacity nobody else wants. That is
//     by design, not a flaw.
//   regime B (steady state) — capacity is contended; honest peers earn
//     regular-unchoke slots through reciprocation while free riders live
//     off optimistic unchokes and equal-service seeds, and download
//     measurably slower.
//
// Usage: free_rider_study [rng=1]
#include <cstdio>
#include <cstdlib>

#include "swarmlab/swarmlab.h"

namespace {

struct ClassRates {
  double honest_rate = 0.0;  // mean download rate, kB/s
  double fr_rate = 0.0;
  int honest_n = 0;
  int fr_n = 0;

  [[nodiscard]] double penalty() const {
    return (honest_n > 0 && fr_n > 0 && fr_rate > 0)
               ? honest_rate / fr_rate
               : 0.0;
  }
};

ClassRates measure(swarmlab::swarm::ScenarioRunner& runner) {
  using namespace swarmlab;
  ClassRates out;
  double h_sum = 0, f_sum = 0;
  for (const peer::PeerId id : runner.swarm().peer_ids()) {
    const peer::Peer* p = runner.swarm().find_peer(id);
    if (p->config().start_complete || id == runner.local_peer_id()) continue;
    if (p->completion_time() < 0) continue;
    const double dt = p->completion_time() - p->start_time();
    if (dt <= 0 || p->total_downloaded() == 0) continue;
    const double rate = p->total_downloaded() / dt / 1024.0;
    if (p->config().free_rider) {
      f_sum += rate;
      ++out.fr_n;
    } else {
      h_sum += rate;
      ++out.honest_n;
    }
  }
  out.honest_rate = out.honest_n > 0 ? h_sum / out.honest_n : 0;
  out.fr_rate = out.fr_n > 0 ? f_sum / out.fr_n : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmlab;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  std::printf("free riders vs the choke algorithm (rng=%llu)\n\n",
              static_cast<unsigned long long>(seed));

  // Regime A: flash crowd — excess capacity after the transient.
  {
    swarm::ScenarioConfig cfg;
    cfg.name = "fr-flash-crowd";
    cfg.num_pieces = 48;
    cfg.initial_seeds = 2;
    cfg.initial_leechers = 60;
    cfg.leechers_warm = false;
    cfg.free_rider_fraction = 0.25;
    cfg.seed_linger_mean = 0.0;
    cfg.duration = 30000.0;
    swarm::ScenarioRunner runner(cfg, seed);
    runner.run();
    const ClassRates r = measure(runner);
    std::printf("regime A — flash crowd (excess capacity):\n");
    std::printf("  honest      n=%3d  mean dl rate %6.1f kB/s\n",
                r.honest_n, r.honest_rate);
    std::printf("  free riders n=%3d  mean dl rate %6.1f kB/s  "
                "(penalty %.2fx)\n", r.fr_n, r.fr_rate, r.penalty());
    std::printf("  -> free riders ride the excess capacity; the paper's "
                "fairness criteria allow exactly this.\n\n");
  }

  // Regime B: steady state with sustained arrivals — contended capacity.
  {
    swarm::ScenarioConfig cfg;
    cfg.name = "fr-steady-state";
    cfg.num_pieces = 64;
    cfg.initial_seeds = 1;
    cfg.initial_leechers = 80;
    cfg.leechers_warm = true;
    cfg.free_rider_fraction = 0.25;
    cfg.seed_linger_mean = 400.0;
    cfg.arrival_rate = 0.03;
    cfg.duration = 25000.0;
    swarm::ScenarioRunner runner(cfg, seed);
    runner.run();
    const ClassRates r = measure(runner);
    std::printf("regime B — steady state (contended capacity):\n");
    std::printf("  honest      n=%3d  mean dl rate %6.1f kB/s\n",
                r.honest_n, r.honest_rate);
    std::printf("  free riders n=%3d  mean dl rate %6.1f kB/s  "
                "(penalty %.2fx)\n", r.fr_n, r.fr_rate, r.penalty());
    std::printf("  -> reciprocation earns regular unchokes; free riders "
                "fall back to optimistic unchokes and the seeds' equal "
                "service, and download slower — but the torrent stays "
                "stable (paper: robust to free riders).\n");
  }
  return 0;
}
