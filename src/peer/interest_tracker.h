// InterestTracker: possession knowledge and interest management.
//
// Owns the handling of BITFIELD/HAVE, the availability bookkeeping, the
// incremental missing-count that makes interest O(1) per HAVE (the
// word-parallel recomputation over core::Bitfield happens on bitfield
// receipt via count_missing_from), and the Interested/NotInterested
// signalling toward remote peers.
#pragma once

#include "peer/peer_context.h"
#include "wire/geometry.h"
#include "wire/messages.h"

namespace swarmlab::peer {

class InterestTracker {
 public:
  InterestTracker(PeerContext& ctx, PeerModules& mods)
      : ctx_(ctx), mods_(mods) {}

  // --- message handlers -------------------------------------------------
  void handle_bitfield(Connection& conn, const wire::BitfieldMsg& msg);
  void handle_have(Connection& conn, const wire::HaveMsg& msg);

  /// Recomputes local interest in `conn` from its missing-count and
  /// signals a change to the remote.
  void update_interest(Connection& conn);

  /// A local piece completed: interest in some peers may vanish now.
  void on_local_piece_complete(wire::PieceIndex piece);

  /// Connection teardown: withdraws the remote's pieces from the local
  /// availability map.
  void on_disconnect(Connection& conn);

 private:
  PeerContext& ctx_;
  PeerModules& mods_;
};

}  // namespace swarmlab::peer
