// PeerSetManager: tracker interaction and peer-set maintenance.
//
// Owns the announce schedule (regular re-announces, retry with
// exponential backoff + jitter on tracker outage, need-more-peers
// refill), connection admission (peer-set caps, the corrupt-source ban
// list), new-connection bootstrap (bitfield / Fast-Extension HaveAll /
// super-seed reveal), and the liveness tick that evicts silent ghosts,
// sends keepalives, and drives the request-timeout and wedged-upload
// recovery hooks of the sibling modules.
#pragma once

#include <cstdint>
#include <set>

#include "peer/fabric.h"
#include "peer/peer_context.h"
#include "sim/types.h"

namespace swarmlab::peer {

class PeerSetManager {
 public:
  PeerSetManager(PeerContext& ctx, PeerModules& mods)
      : ctx_(ctx), mods_(mods) {}

  // --- lifecycle --------------------------------------------------------
  /// Joins the torrent: announces `started` and begins the re-announce
  /// schedule.
  void start();

  /// Starts the liveness tick (params.liveness_timers).
  void start_liveness();

  /// Cancels the announce, retry, and liveness timers (stop / crash).
  void cancel_timers();

  // --- connection admission ---------------------------------------------
  [[nodiscard]] bool accepts_connection(PeerId from) const;
  void on_connected(PeerId remote, bool initiated_by_us);

  /// Permanently bans a proven-corrupt peer and drops its connection.
  void ban(PeerId remote);

  /// Connections this peer initiated (bounded by params.max_initiated).
  [[nodiscard]] std::size_t initiated_connections() const;

  // --- tracker ----------------------------------------------------------
  /// Announces now; on success initiates connections toward returned
  /// candidates, on failure (outage) schedules a backoff retry.
  void announce(AnnounceEvent event);

  /// Announces for more peers when the set fell below min_peer_set
  /// (cooldown-limited).
  void maybe_refill_peer_set();

  // --- queries ----------------------------------------------------------
  /// Tracker announces that failed (outages) and were retried.
  [[nodiscard]] std::uint64_t announce_failures() const {
    return announce_failures_;
  }
  /// Ghost connections evicted by the silence timeout (liveness timers).
  [[nodiscard]] std::uint64_t ghosts_evicted() const {
    return ghosts_evicted_;
  }

 private:
  void schedule_announce();
  void schedule_announce_retry();
  void initiate_connections(const std::vector<PeerId>& candidates);
  void schedule_liveness_tick();
  void run_liveness_tick();

  PeerContext& ctx_;
  PeerModules& mods_;

  /// Peers proven to send corrupt data; never reconnected.
  std::set<PeerId> banned_;

  sim::EventId announce_event_ = 0;
  sim::EventId announce_retry_event_ = 0;
  sim::EventId liveness_event_ = 0;
  double last_refill_announce_ = -1e18;

  // Liveness / fault-survival bookkeeping.
  std::uint32_t announce_backoff_level_ = 0;
  std::uint64_t announce_failures_ = 0;
  std::uint64_t ghosts_evicted_ = 0;
};

}  // namespace swarmlab::peer
