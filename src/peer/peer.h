// The BitTorrent peer: a thin composer over the protocol modules.
//
// Every simulated peer — the instrumented local peer and every remote
// peer — runs this same implementation of the full protocol. The logic
// lives in six narrow modules (see peer_context.h): DownloadScheduler
// (request pipeline, end game, hash-failure recovery), UploadServicer
// (request queue, block sends), InterestTracker (bitfield/HAVE and
// interest signalling), ChokeDriver (choke rounds), PeerSetManager
// (tracker, admission, liveness), and SuperSeedPolicy. Peer itself only
// composes them, routes Fabric callbacks, and answers queries. Only the
// attached PeerObserver distinguishes the local peer (paper §III-A: a
// single instrumented mainline 4.0.2 client).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "peer/peer_context.h"

namespace swarmlab::peer {

/// One simulated BitTorrent peer.
class Peer {
 public:
  Peer(Fabric& fabric, const wire::ContentGeometry& geometry, PeerConfig cfg,
       PeerObserver* observer = nullptr);
  ~Peer();

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Rebinds the observation hook (nullptr detaches). Called by the
  /// swarm's ObserverHub when subscriptions change; purely a sink swap —
  /// never alters peer behaviour.
  void set_observer(PeerObserver* observer) { ctx_.observer = observer; }
  [[nodiscard]] PeerObserver* observer() const { return ctx_.observer; }

  // --- lifecycle -------------------------------------------------------

  /// Joins the torrent: announces to the tracker, opens initial
  /// connections, and starts the choke round timer.
  void start();

  /// Leaves the torrent: announces `stopped`, closes all connections,
  /// cancels timers.
  void stop();

  /// Abrupt death (fault injection): cancels this peer's own timers and
  /// nothing else — no Stopped announce, no disconnect callbacks. Every
  /// remote peer keeps a ghost Connection to us until its liveness timers
  /// notice the silence.
  void crash();

  [[nodiscard]] bool active() const { return ctx_.active(); }

  // --- fabric-driven entry points --------------------------------------

  /// Whether this peer accepts one more incoming connection.
  [[nodiscard]] bool accepts_connection(PeerId from) const;

  void on_connected(PeerId remote, bool initiated_by_us);
  void on_disconnected(PeerId remote);
  void handle_message(PeerId from, const wire::Message& msg);

  /// The block we were uploading to `to` finished transferring.
  void on_block_sent(PeerId to, wire::BlockRef block, std::uint32_t bytes);

  // --- queries ----------------------------------------------------------

  [[nodiscard]] PeerId id() const { return ctx_.cfg.id; }
  [[nodiscard]] const PeerConfig& config() const { return ctx_.cfg; }
  [[nodiscard]] const wire::ContentGeometry& geometry() const {
    return ctx_.geo;
  }
  [[nodiscard]] bool is_seed() const { return ctx_.is_seed(); }
  [[nodiscard]] const core::Bitfield& have() const { return ctx_.have; }
  [[nodiscard]] const core::AvailabilityMap& availability() const {
    return ctx_.availability;
  }
  [[nodiscard]] std::size_t peer_set_size() const { return ctx_.conns.size(); }
  /// Connections this peer initiated (bounded by params.max_initiated).
  [[nodiscard]] std::size_t initiated_connections() const;
  [[nodiscard]] const Connection* connection(PeerId remote) const {
    return ctx_.conns.find(remote);
  }
  [[nodiscard]] std::vector<PeerId> connected_peers() const;
  [[nodiscard]] bool in_end_game() const;
  /// Time the peer joined; -1 before start().
  [[nodiscard]] double start_time() const { return ctx_.start_time; }
  /// Time the download completed; -1 while still leeching.
  [[nodiscard]] double completion_time() const { return ctx_.completion_time; }
  [[nodiscard]] std::uint64_t total_uploaded() const;
  [[nodiscard]] std::uint64_t total_downloaded() const;
  /// Pieces that failed hash verification and were re-downloaded.
  [[nodiscard]] std::uint64_t corrupted_pieces() const;
  /// Non-null when the fabric runs the data plane (real content bytes).
  [[nodiscard]] const ContentStore* content_store() const {
    return ctx_.store.get();
  }
  /// Reads a block's bytes for upload (data plane only; the piece must
  /// be owned).
  [[nodiscard]] std::vector<std::uint8_t> read_block(
      wire::BlockRef block) const;
  /// Largest peer set observed while in leecher state (Table I col 5).
  [[nodiscard]] std::size_t max_peer_set_leecher() const {
    return ctx_.max_peer_set_leecher;
  }
  /// Ghost connections evicted by the silence timeout (liveness timers).
  [[nodiscard]] std::uint64_t ghosts_evicted() const;
  /// Block requests returned to the picker by the request timeout.
  [[nodiscard]] std::uint64_t timed_out_requests() const;
  /// Tracker announces that failed (outages) and were retried.
  [[nodiscard]] std::uint64_t announce_failures() const;

 private:
  PeerContext ctx_;
  PeerModules mods_;

  std::unique_ptr<DownloadScheduler> download_;
  std::unique_ptr<UploadServicer> upload_;
  std::unique_ptr<InterestTracker> interest_;
  std::unique_ptr<ChokeDriver> choke_;
  std::unique_ptr<PeerSetManager> peer_set_;
  std::unique_ptr<SuperSeedPolicy> super_seed_;  // non-null when enabled
};

}  // namespace swarmlab::peer
