// The BitTorrent peer state machine.
//
// Every simulated peer — the instrumented local peer and every remote peer
// — runs this same implementation of the full protocol: bitfield/HAVE
// bookkeeping, interest management, the rarest-first picker with random
// first / strict priority / end game policies, the choke algorithm in
// leecher and seed state, request pipelining, upload serving, and tracker
// interaction. Only the attached PeerObserver distinguishes the local
// peer (paper §III-A: a single instrumented mainline 4.0.2 client).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/availability.h"
#include "core/bitfield.h"
#include "core/choker.h"
#include "core/params.h"
#include "core/piece_picker.h"
#include "peer/connection.h"
#include "peer/content_store.h"
#include "peer/fabric.h"
#include "peer/observer.h"
#include "peer/types.h"
#include "wire/geometry.h"

namespace swarmlab::peer {

/// Static configuration of one peer.
struct PeerConfig {
  PeerId id = kNoPeer;
  core::ProtocolParams params;

  /// Access-link capacities in bytes/second (paper default for the
  /// monitored client: 20 kB/s up, unlimited down).
  double upload_capacity = 20.0 * 1024.0;
  double download_capacity = net::kUnlimited;

  /// A free rider never serves anyone (§IV-B: leechers that never upload).
  bool free_rider = false;

  /// A polluter: every block it serves is garbage (fails the receiver's
  /// piece hash check). Used for failure-injection experiments.
  bool sends_corrupt_data = false;

  /// Starts with the complete content (a seed).
  bool start_complete = false;

  /// Optional warm start: exact initial possession (overrides
  /// start_complete when non-empty). Used to model joining a torrent in
  /// steady state, where remote peers hold partial content.
  std::vector<bool> initial_pieces;
};

/// One simulated BitTorrent peer.
class Peer {
 public:
  Peer(Fabric& fabric, const wire::ContentGeometry& geometry, PeerConfig cfg,
       PeerObserver* observer = nullptr);

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  // --- lifecycle -------------------------------------------------------

  /// Joins the torrent: announces to the tracker, opens initial
  /// connections, and starts the choke round timer.
  void start();

  /// Leaves the torrent: announces `stopped`, closes all connections,
  /// cancels timers.
  void stop();

  /// Abrupt death (fault injection): cancels this peer's own timers and
  /// nothing else — no Stopped announce, no disconnect callbacks. Every
  /// remote peer keeps a ghost Connection to us until its liveness timers
  /// notice the silence.
  void crash();

  [[nodiscard]] bool active() const { return started_ && !stopped_; }

  // --- fabric-driven entry points --------------------------------------

  /// Whether this peer accepts one more incoming connection.
  [[nodiscard]] bool accepts_connection(PeerId from) const;

  void on_connected(PeerId remote, bool initiated_by_us);
  void on_disconnected(PeerId remote);
  void handle_message(PeerId from, const wire::Message& msg);

  /// The block we were uploading to `to` finished transferring.
  void on_block_sent(PeerId to, wire::BlockRef block, std::uint32_t bytes);

  // --- queries ----------------------------------------------------------

  [[nodiscard]] PeerId id() const { return cfg_.id; }
  [[nodiscard]] const PeerConfig& config() const { return cfg_; }
  [[nodiscard]] const wire::ContentGeometry& geometry() const { return geo_; }
  [[nodiscard]] bool is_seed() const { return have_.complete(); }
  [[nodiscard]] const core::Bitfield& have() const { return have_; }
  [[nodiscard]] const core::AvailabilityMap& availability() const {
    return availability_;
  }
  [[nodiscard]] std::size_t peer_set_size() const { return conns_.size(); }
  /// Connections this peer initiated (bounded by params.max_initiated).
  [[nodiscard]] std::size_t initiated_connections() const;
  [[nodiscard]] const Connection* connection(PeerId remote) const;
  [[nodiscard]] std::vector<PeerId> connected_peers() const;
  [[nodiscard]] bool in_end_game() const { return end_game_active_; }
  /// Time the peer joined; -1 before start().
  [[nodiscard]] double start_time() const { return start_time_; }
  /// Time the download completed; -1 while still leeching.
  [[nodiscard]] double completion_time() const { return completion_time_; }
  [[nodiscard]] std::uint64_t total_uploaded() const { return uploaded_; }
  [[nodiscard]] std::uint64_t total_downloaded() const { return downloaded_; }
  /// Pieces that failed hash verification and were re-downloaded.
  [[nodiscard]] std::uint64_t corrupted_pieces() const {
    return corrupted_pieces_;
  }
  /// Non-null when the fabric runs the data plane (real content bytes).
  [[nodiscard]] const ContentStore* content_store() const {
    return store_.get();
  }
  /// Reads a block's bytes for upload (data plane only; the piece must
  /// be owned).
  [[nodiscard]] std::vector<std::uint8_t> read_block(
      wire::BlockRef block) const;
  /// Largest peer set observed while in leecher state (Table I col 5).
  [[nodiscard]] std::size_t max_peer_set_leecher() const {
    return max_peer_set_leecher_;
  }
  /// Ghost connections evicted by the silence timeout (liveness timers).
  [[nodiscard]] std::uint64_t ghosts_evicted() const {
    return ghosts_evicted_;
  }
  /// Block requests returned to the picker by the request timeout.
  [[nodiscard]] std::uint64_t timed_out_requests() const {
    return timed_out_requests_;
  }
  /// Tracker announces that failed (outages) and were retried.
  [[nodiscard]] std::uint64_t announce_failures() const {
    return announce_failures_;
  }

 private:
  struct PieceProgress {
    std::vector<std::uint8_t> requested_count;  // requests in flight per block
    std::vector<bool> received;
    std::uint32_t received_blocks = 0;
    /// Some block came from a corrupting sender (hash check will fail).
    bool tainted = false;
    /// Everyone who contributed a block.
    std::set<PeerId> contributors;
    /// Exclusive-retry mode: after a multi-source verification failure
    /// the piece is re-fetched from a single peer, so a second failure
    /// proves that peer corrupt (cf. libtorrent's smart ban).
    std::optional<PeerId> exclusive_source;
  };

  // --- message handlers -------------------------------------------------
  void handle_bitfield(Connection& conn, const wire::BitfieldMsg& msg);
  void handle_have(Connection& conn, const wire::HaveMsg& msg);
  void handle_interested(Connection& conn, bool interested);
  void handle_choke(Connection& conn, bool choked);
  void handle_request(Connection& conn, const wire::RequestMsg& msg);
  void handle_cancel(Connection& conn, const wire::CancelMsg& msg);
  void handle_reject(Connection& conn, const wire::RejectRequestMsg& msg);
  void handle_block(Connection& conn, const wire::PieceMsg& msg);

  // --- download side ----------------------------------------------------
  void fill_requests(Connection& conn);
  std::optional<wire::BlockRef> next_block(Connection& conn);
  std::optional<wire::BlockRef> next_partial_block(const Connection& conn);
  std::optional<wire::BlockRef> start_new_piece(Connection& conn);
  std::optional<wire::BlockRef> next_end_game_block(Connection& conn);
  void mark_requested(wire::BlockRef block);
  void release_request(wire::BlockRef block);
  void complete_piece(wire::PieceIndex piece);
  /// Verification failure: drop all progress on `piece` (and optionally
  /// the peers that contributed to it), making it re-downloadable.
  void discard_piece(wire::PieceIndex piece);
  void become_seed();
  void update_interest(Connection& conn);

  // --- upload side ------------------------------------------------------
  void start_next_upload(Connection& conn);

  // --- choke algorithm --------------------------------------------------
  void schedule_choke_round();
  void run_choke_round();
  void apply_unchoke_set(const std::vector<PeerId>& selected);

  // --- tracker / peer set -----------------------------------------------
  void schedule_announce();
  void do_announce(AnnounceEvent event);
  void schedule_announce_retry();
  void maybe_refill_peer_set();
  void initiate_connections(const std::vector<PeerId>& candidates);

  // --- liveness timers (params.liveness_timers) -------------------------
  void schedule_liveness_tick();
  void run_liveness_tick();

  // --- super seeding (extension) ----------------------------------------
  void super_seed_reveal(Connection& conn);
  void super_seed_on_remote_have(wire::PieceIndex piece, PeerId from);

  void send(PeerId to, wire::Message msg);
  Connection* find_conn(PeerId remote);
  [[nodiscard]] double now() const;

  Fabric& fabric_;
  wire::ContentGeometry geo_;
  PeerConfig cfg_;
  PeerObserver* observer_;  // may be null

  core::Bitfield have_;
  core::AvailabilityMap availability_;
  ConnectionTable conns_;  // iterates in ascending remote id: deterministic
  std::map<wire::PieceIndex, PieceProgress> active_pieces_;

  std::unique_ptr<core::PiecePicker> picker_;
  std::unique_ptr<core::Choker> leecher_choker_;
  std::unique_ptr<core::Choker> seed_choker_;

  /// Blocks of missing pieces with no request in flight.
  std::uint64_t unrequested_blocks_ = 0;
  bool end_game_active_ = false;

  /// Data plane storage (null when the fabric has no metainfo).
  std::unique_ptr<ContentStore> store_;

  /// Peers proven to send corrupt data; never reconnected.
  std::set<PeerId> banned_;
  /// Pieces that failed verification and must be retried single-source.
  std::set<wire::PieceIndex> retry_exclusive_;

  bool started_ = false;
  bool stopped_ = false;
  double start_time_ = -1.0;
  double completion_time_ = -1.0;
  std::uint64_t uploaded_ = 0;
  std::uint64_t downloaded_ = 0;
  std::uint64_t corrupted_pieces_ = 0;
  std::size_t max_peer_set_leecher_ = 0;

  std::uint64_t choke_round_ = 0;
  sim::EventId choke_event_ = 0;
  sim::EventId announce_event_ = 0;
  sim::EventId announce_retry_event_ = 0;
  sim::EventId liveness_event_ = 0;
  double last_refill_announce_ = -1e18;

  // Liveness / fault-survival bookkeeping.
  std::uint32_t announce_backoff_level_ = 0;
  std::uint64_t announce_failures_ = 0;
  std::uint64_t ghosts_evicted_ = 0;
  std::uint64_t timed_out_requests_ = 0;

  // Super seeding: pieces revealed per connection and global reveal cursor.
  struct SuperSeedState {
    std::map<PeerId, std::set<wire::PieceIndex>> revealed;
    std::map<PeerId, std::optional<wire::PieceIndex>> pending_offer;
    std::vector<std::uint32_t> offer_count;  // times each piece was offered
    std::set<wire::PieceIndex> confirmed;    // seen HAVE from some peer
  };
  std::unique_ptr<SuperSeedState> super_seed_;  // non-null when enabled
};

}  // namespace swarmlab::peer
