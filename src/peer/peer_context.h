// Shared state and wiring of the peer protocol modules.
//
// peer::Peer is a thin composer: the protocol logic lives in six narrow
// modules (DownloadScheduler, UploadServicer, InterestTracker,
// ChokeDriver, PeerSetManager, SuperSeedPolicy). PeerContext is the
// state they all read — identity, possession, the connection table —
// plus the two helpers every module needs (clock and control-message
// send). PeerModules is the sibling directory through which modules
// call each other; Peer wires it after constructing them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/availability.h"
#include "core/bitfield.h"
#include "core/params.h"
#include "net/types.h"
#include "peer/connection.h"
#include "peer/content_store.h"
#include "peer/types.h"
#include "wire/geometry.h"
#include "wire/messages.h"

namespace swarmlab::peer {

class Fabric;
class PeerObserver;
class DownloadScheduler;
class UploadServicer;
class InterestTracker;
class ChokeDriver;
class PeerSetManager;
class SuperSeedPolicy;

/// Static configuration of one peer.
struct PeerConfig {
  PeerId id = kNoPeer;
  core::ProtocolParams params;

  /// Access-link capacities in bytes/second (paper default for the
  /// monitored client: 20 kB/s up, unlimited down).
  double upload_capacity = 20.0 * 1024.0;
  double download_capacity = net::kUnlimited;

  /// A free rider never serves anyone (§IV-B: leechers that never upload).
  bool free_rider = false;

  /// A polluter: every block it serves is garbage (fails the receiver's
  /// piece hash check). Used for failure-injection experiments.
  bool sends_corrupt_data = false;

  /// Starts with the complete content (a seed).
  bool start_complete = false;

  /// Optional warm start: exact initial possession (overrides
  /// start_complete when non-empty). Used to model joining a torrent in
  /// steady state, where remote peers hold partial content.
  std::vector<bool> initial_pieces;
};

/// The state every protocol module shares.
struct PeerContext {
  PeerContext(Fabric& fabric, const wire::ContentGeometry& geometry,
              PeerConfig config, PeerObserver* obs);

  Fabric& fabric;
  wire::ContentGeometry geo;
  PeerConfig cfg;
  PeerObserver* observer;  // may be null

  core::Bitfield have;
  core::AvailabilityMap availability;
  ConnectionTable conns;  // iterates in ascending remote id: deterministic

  /// Data plane storage (null when the fabric has no metainfo).
  std::unique_ptr<ContentStore> store;

  bool started = false;
  bool stopped = false;
  double start_time = -1.0;
  double completion_time = -1.0;
  /// Largest peer set observed while in leecher state (Table I col 5).
  std::size_t max_peer_set_leecher = 0;

  [[nodiscard]] double now() const;
  [[nodiscard]] bool active() const { return started && !stopped; }
  [[nodiscard]] bool is_seed() const { return have.complete(); }
  [[nodiscard]] Connection* find_conn(PeerId remote) {
    return conns.find(remote);
  }

  /// Stamps the connection's last-sent time, logs via the observer, and
  /// hands the message to the fabric.
  void send(PeerId to, wire::Message msg);
};

/// Sibling directory: how modules reach each other. Non-owning; Peer
/// owns the modules and fills this in after constructing them.
/// `super_seed` is null unless the extension is active.
struct PeerModules {
  DownloadScheduler* download = nullptr;
  UploadServicer* upload = nullptr;
  InterestTracker* interest = nullptr;
  ChokeDriver* choke = nullptr;
  PeerSetManager* peer_set = nullptr;
  SuperSeedPolicy* super_seed = nullptr;
};

}  // namespace swarmlab::peer
