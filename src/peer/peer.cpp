#include "peer/peer.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace swarmlab::peer {

namespace {

/// Upload requests queued behind the in-flight block are bounded; extra
/// requests are dropped (the remote re-requests after its own timeout /
/// choke cycle — in practice the pipeline depth keeps queues tiny).
constexpr std::size_t kMaxUploadQueue = 256;

/// Minimum spacing between need-more-peers tracker announces.
constexpr double kRefillCooldown = 60.0;

}  // namespace

Peer::Peer(Fabric& fabric, const wire::ContentGeometry& geometry,
           PeerConfig cfg, PeerObserver* observer)
    : fabric_(fabric),
      geo_(geometry),
      cfg_(std::move(cfg)),
      observer_(observer),
      have_(geometry.num_pieces()),
      availability_(geometry.num_pieces()),
      picker_(core::make_picker(cfg_.params.picker, cfg_.params)),
      leecher_choker_(core::make_leecher_choker(cfg_.params)),
      seed_choker_(core::make_seed_choker(cfg_.params)) {
  if (!cfg_.initial_pieces.empty()) {
    assert(cfg_.initial_pieces.size() == geo_.num_pieces());
    for (wire::PieceIndex p = 0; p < geo_.num_pieces(); ++p) {
      if (cfg_.initial_pieces[p]) have_.set(p);
    }
  } else if (cfg_.start_complete) {
    have_ = core::Bitfield::full(geo_.num_pieces());
  }
  // Count the initially unrequested blocks (those of missing pieces).
  for (wire::PieceIndex p = 0; p < geo_.num_pieces(); ++p) {
    if (!have_.has(p)) unrequested_blocks_ += geo_.blocks_in_piece(p);
  }
  if (cfg_.params.super_seeding && have_.complete()) {
    super_seed_ = std::make_unique<SuperSeedState>();
    super_seed_->offer_count.assign(geo_.num_pieces(), 0);
  }
  // Data plane: materialize the bytes backing the initial bitfield.
  if (const wire::Metainfo* meta = fabric.metainfo(); meta != nullptr) {
    store_ = std::make_unique<ContentStore>(*meta);
    if (have_.complete()) {
      store_->fill_complete();
    } else {
      for (wire::PieceIndex p = 0; p < geo_.num_pieces(); ++p) {
        if (have_.has(p)) {
          store_->put_piece(p, wire::synthetic_piece_bytes(*meta, p));
        }
      }
    }
  }
}

std::vector<std::uint8_t> Peer::read_block(wire::BlockRef block) const {
  assert(store_ != nullptr && have_.has(block.piece));
  return store_->read_block(block);
}

double Peer::now() const { return fabric_.simulation().now(); }

const Connection* Peer::connection(PeerId remote) const {
  return conns_.find(remote);
}

Connection* Peer::find_conn(PeerId remote) { return conns_.find(remote); }

std::vector<PeerId> Peer::connected_peers() const {
  std::vector<PeerId> out;
  out.reserve(conns_.size());
  for (const Connection& conn : conns_) out.push_back(conn.remote);
  return out;
}

std::size_t Peer::initiated_connections() const {
  std::size_t n = 0;
  for (const Connection& conn : conns_) {
    if (conn.initiated_by_us) ++n;
  }
  return n;
}

// --- lifecycle -----------------------------------------------------------

void Peer::start() {
  assert(!started_);
  started_ = true;
  start_time_ = now();
  if (observer_ != nullptr) observer_->on_start(start_time_);
  if (is_seed()) {
    // An initial seed is in seed state from its first instant.
    completion_time_ = start_time_;
    if (observer_ != nullptr) observer_->on_became_seed(start_time_);
  }
  do_announce(AnnounceEvent::kStarted);
  schedule_announce();
  // Desynchronize choke rounds across peers.
  const double phase =
      fabric_.simulation().rng().uniform(0.0, cfg_.params.choke_interval);
  choke_event_ =
      fabric_.simulation().schedule_in(phase, [this] { run_choke_round(); });
  if (cfg_.params.liveness_timers) schedule_liveness_tick();
}

void Peer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (choke_event_ != 0) fabric_.simulation().cancel(choke_event_);
  if (announce_event_ != 0) fabric_.simulation().cancel(announce_event_);
  if (announce_retry_event_ != 0) {
    fabric_.simulation().cancel(announce_retry_event_);
  }
  if (liveness_event_ != 0) fabric_.simulation().cancel(liveness_event_);
  choke_event_ = 0;
  announce_event_ = 0;
  announce_retry_event_ = 0;
  liveness_event_ = 0;
  do_announce(AnnounceEvent::kStopped);
  // Disconnect everything; fabric calls back into on_disconnected.
  const std::vector<PeerId> remotes = connected_peers();
  for (const PeerId r : remotes) fabric_.disconnect(cfg_.id, r);
  if (observer_ != nullptr) observer_->on_stop(now());
}

void Peer::crash() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (choke_event_ != 0) fabric_.simulation().cancel(choke_event_);
  if (announce_event_ != 0) fabric_.simulation().cancel(announce_event_);
  if (announce_retry_event_ != 0) {
    fabric_.simulation().cancel(announce_retry_event_);
  }
  if (liveness_event_ != 0) fabric_.simulation().cancel(liveness_event_);
  choke_event_ = 0;
  announce_event_ = 0;
  announce_retry_event_ = 0;
  liveness_event_ = 0;
  // Deliberately NO Stopped announce and NO disconnects: the tracker
  // keeps our entry until its member expiry, and every remote peer keeps
  // a ghost Connection until its silence timeout evicts it.
  if (observer_ != nullptr) observer_->on_stop(now());
}

// --- connections ----------------------------------------------------------

bool Peer::accepts_connection(PeerId from) const {
  return active() && !conns_.contains(from) && !banned_.contains(from) &&
         conns_.size() < cfg_.params.max_peer_set;
}

void Peer::on_connected(PeerId remote, bool initiated_by_us) {
  if (!active() || conns_.contains(remote)) return;
  Connection conn;
  conn.remote = remote;
  conn.initiated_by_us = initiated_by_us;
  conn.connected_at = now();
  conn.last_seen = now();
  conn.last_sent = now();
  conn.remote_have = core::Bitfield(geo_.num_pieces());
  Connection& inserted = conns_.insert(std::move(conn));
  if (!is_seed()) {
    max_peer_set_leecher_ = std::max(max_peer_set_leecher_, conns_.size());
  }
  if (observer_ != nullptr) observer_->on_peer_joined(now(), remote);
  if (super_seed_ != nullptr) {
    // Super seeding: advertise nothing; reveal pieces one at a time.
    super_seed_reveal(inserted);
  } else if (cfg_.params.fast_extension && have_.complete()) {
    send(remote, wire::HaveAllMsg{});
  } else if (cfg_.params.fast_extension && have_.none()) {
    send(remote, wire::HaveNoneMsg{});
  } else if (have_.count() > 0) {
    send(remote, wire::BitfieldMsg{have_.bits()});
  }
}

void Peer::on_disconnected(PeerId remote) {
  Connection* found = conns_.find(remote);
  if (found == nullptr) return;
  Connection& conn = *found;
  // Give outstanding requests back to the pool.
  for (const wire::BlockRef b : conn.outstanding) release_request(b);
  conn.outstanding.clear();
  if (conn.upload_flow != 0) {
    fabric_.network().cancel_flow(conn.upload_flow);
    conn.upload_flow = 0;
  }
  availability_.remove_peer(conn.remote_have);
  if (super_seed_ != nullptr) {
    super_seed_->revealed.erase(remote);
    super_seed_->pending_offer.erase(remote);
  }
  // Exclusive-retry pieces assigned to the departing peer revert to
  // normal (multi-source) fetching; a later failure re-arms the retry.
  for (auto& [piece, prog] : active_pieces_) {
    if (prog.exclusive_source == remote) prog.exclusive_source.reset();
  }
  conns_.erase(remote);
  if (observer_ != nullptr) observer_->on_peer_left(now(), remote);
  if (active()) maybe_refill_peer_set();
}

// --- messages --------------------------------------------------------------

void Peer::send(PeerId to, wire::Message msg) {
  if (Connection* conn = find_conn(to); conn != nullptr) {
    conn->last_sent = now();
  }
  if (observer_ != nullptr) observer_->on_message_sent(now(), to, msg);
  fabric_.send_control(cfg_.id, to, std::move(msg));
}

void Peer::handle_message(PeerId from, const wire::Message& msg) {
  if (!active()) return;
  Connection* conn = find_conn(from);
  if (conn == nullptr) return;  // stale delivery after disconnect
  conn->last_seen = now();
  if (observer_ != nullptr) observer_->on_message_received(now(), from, msg);

  if (const auto* m = std::get_if<wire::BitfieldMsg>(&msg)) {
    handle_bitfield(*conn, *m);
  } else if (const auto* m = std::get_if<wire::HaveMsg>(&msg)) {
    handle_have(*conn, *m);
  } else if (std::get_if<wire::InterestedMsg>(&msg) != nullptr) {
    handle_interested(*conn, true);
  } else if (std::get_if<wire::NotInterestedMsg>(&msg) != nullptr) {
    handle_interested(*conn, false);
  } else if (std::get_if<wire::ChokeMsg>(&msg) != nullptr) {
    handle_choke(*conn, true);
  } else if (std::get_if<wire::UnchokeMsg>(&msg) != nullptr) {
    handle_choke(*conn, false);
  } else if (const auto* m = std::get_if<wire::RequestMsg>(&msg)) {
    handle_request(*conn, *m);
  } else if (const auto* m = std::get_if<wire::CancelMsg>(&msg)) {
    handle_cancel(*conn, *m);
  } else if (const auto* m = std::get_if<wire::PieceMsg>(&msg)) {
    handle_block(*conn, *m);
  } else if (std::get_if<wire::HaveAllMsg>(&msg) != nullptr) {
    // Fast Extension: equivalent to an all-ones bitfield.
    wire::BitfieldMsg full;
    full.bits.assign(geo_.num_pieces(), true);
    handle_bitfield(*conn, full);
  } else if (std::get_if<wire::HaveNoneMsg>(&msg) != nullptr) {
    wire::BitfieldMsg none;
    none.bits.assign(geo_.num_pieces(), false);
    handle_bitfield(*conn, none);
  } else if (const auto* m = std::get_if<wire::RejectRequestMsg>(&msg)) {
    handle_reject(*conn, *m);
  }
  // KeepAliveMsg carries no payload: its receipt already refreshed
  // conn->last_seen above, which is all the liveness machinery needs
  // (see run_liveness_tick). SuggestPiece/AllowedFast: received
  // gracefully (logged via the observer) but not acted upon — the
  // simulator has no web-seed caches and models no choked fast-allowed
  // downloads.
}

void Peer::handle_reject(Connection& conn, const wire::RejectRequestMsg& msg) {
  const wire::BlockRef block{msg.piece, geo_.block_at_offset(msg.begin)};
  auto& out = conn.outstanding;
  const auto it = std::find(out.begin(), out.end(), block);
  if (it == out.end()) return;  // stale reject
  out.erase(it);
  release_request(block);
  // Re-route the freed pipeline slot immediately.
  if (conn.am_interested && !conn.peer_choking) fill_requests(conn);
}

void Peer::handle_bitfield(Connection& conn, const wire::BitfieldMsg& msg) {
  if (msg.bits.size() != geo_.num_pieces()) return;  // malformed: ignore
  // Replace any previous knowledge (a bitfield arrives once, right after
  // the handshake).
  availability_.remove_peer(conn.remote_have);
  conn.remote_have = core::Bitfield(msg.bits);
  conn.missing_count = have_.count_missing_from(conn.remote_have);
  availability_.add_peer(conn.remote_have);
  if (is_seed() && conn.remote_have.complete()) {
    // Seeds do not keep connections to seeds.
    fabric_.disconnect(cfg_.id, conn.remote);
    return;
  }
  update_interest(conn);
}

void Peer::handle_have(Connection& conn, const wire::HaveMsg& msg) {
  if (msg.piece >= geo_.num_pieces()) return;
  if (conn.remote_have.has(msg.piece)) return;
  conn.remote_have.set(msg.piece);
  if (!have_.has(msg.piece)) ++conn.missing_count;
  availability_.add_have(msg.piece);
  if (super_seed_ != nullptr) {
    super_seed_on_remote_have(msg.piece, conn.remote);
  }
  if (is_seed() && conn.remote_have.complete()) {
    fabric_.disconnect(cfg_.id, conn.remote);
    return;
  }
  update_interest(conn);
  // A new piece at this peer may unblock our pipeline.
  if (conn.am_interested && !conn.peer_choking) fill_requests(conn);
}

void Peer::handle_interested(Connection& conn, bool interested) {
  if (conn.peer_interested == interested) return;
  conn.peer_interested = interested;
  if (observer_ != nullptr) {
    observer_->on_remote_interest_change(now(), conn.remote, interested);
  }
}

void Peer::handle_choke(Connection& conn, bool choked) {
  if (conn.peer_choking == choked) return;
  conn.peer_choking = choked;
  if (observer_ != nullptr) {
    observer_->on_remote_choke_change(now(), conn.remote, !choked);
  }
  if (choked) {
    // Everything outstanding on this link is implicitly dropped by the
    // remote; return the blocks to the pool so other links can fetch
    // them.
    for (const wire::BlockRef b : conn.outstanding) release_request(b);
    conn.outstanding.clear();
  } else {
    fill_requests(conn);
  }
}

void Peer::handle_request(Connection& conn, const wire::RequestMsg& msg) {
  if (cfg_.free_rider) return;                 // never serves anyone
  if (conn.am_choking) {
    // Fast Extension: requests that will not be served are rejected
    // explicitly so the requester can re-route without waiting.
    if (cfg_.params.fast_extension) {
      send(conn.remote,
           wire::RejectRequestMsg{msg.piece, msg.begin, msg.length});
    }
    return;  // stale request
  }
  if (msg.piece >= geo_.num_pieces()) return;
  if (!have_.has(msg.piece)) return;
  if (super_seed_ != nullptr) {
    const auto it = super_seed_->revealed.find(conn.remote);
    if (it == super_seed_->revealed.end() || !it->second.contains(msg.piece)) {
      return;  // piece not offered to this peer yet
    }
  }
  if (msg.begin % geo_.block_size() != 0) return;
  const wire::BlockRef block{msg.piece, geo_.block_at_offset(msg.begin)};
  if (block.block >= geo_.blocks_in_piece(msg.piece)) return;
  if (msg.length != geo_.block_bytes(block)) return;
  if (conn.upload_queue.size() >= kMaxUploadQueue) return;
  conn.upload_queue.push_back(QueuedRequest{block, msg.length});
  if (conn.upload_flow == 0) start_next_upload(conn);
}

void Peer::handle_cancel(Connection& conn, const wire::CancelMsg& msg) {
  const wire::BlockRef block{msg.piece, geo_.block_at_offset(msg.begin)};
  auto& q = conn.upload_queue;
  q.erase(std::remove_if(q.begin(), q.end(),
                         [&](const QueuedRequest& r) {
                           return r.block == block;
                         }),
          q.end());
  // An in-flight block is not aborted (it is already in the TCP pipe).
}

void Peer::handle_block(Connection& conn, const wire::PieceMsg& msg) {
  const wire::BlockRef block{msg.piece, geo_.block_at_offset(msg.begin)};
  const std::uint32_t bytes = geo_.block_bytes(block);
  conn.download_rate.add(now(), bytes);
  conn.last_block_time = now();
  conn.last_request_timeout = -1.0;  // the link is delivering again
  downloaded_ += bytes;
  // Without the data plane, the simulator marks blocks from a corrupting
  // sender with a non-empty payload; a real client discovers corruption
  // at the piece hash check, which the data plane performs for real.
  const bool corrupt_marker = store_ == nullptr && !msg.data.empty();
  if (store_ != nullptr) {
    if (msg.data.size() != bytes) return;  // malformed frame: drop
    if (!have_.has(block.piece)) {
      store_->put_block(block, std::span<const std::uint8_t>(
                                   msg.data.data(), msg.data.size()));
    }
  }

  // Remove from this link's outstanding set (absent for a stale arrival
  // that raced a choke).
  auto& out = conn.outstanding;
  const auto it = std::find(out.begin(), out.end(), block);
  const bool was_outstanding = it != out.end();
  if (was_outstanding) out.erase(it);

  if (observer_ != nullptr) {
    observer_->on_block_received(now(), conn.remote, block, bytes);
  }

  if (have_.has(block.piece)) {
    // Piece already complete (end-game duplicate); keep pipeline moving.
    fill_requests(conn);
    return;
  }
  auto prog_it = active_pieces_.find(block.piece);
  if (prog_it == active_pieces_.end()) {
    // Stale arrival for a piece we released entirely; (re)create progress.
    PieceProgress prog;
    prog.requested_count.assign(geo_.blocks_in_piece(block.piece), 0);
    prog.received.assign(geo_.blocks_in_piece(block.piece), false);
    prog_it = active_pieces_.emplace(block.piece, std::move(prog)).first;
  }
  PieceProgress& prog = prog_it->second;
  if (prog.received[block.block]) {
    // Duplicate (end game): data discarded.
    fill_requests(conn);
    return;
  }
  if (was_outstanding) {
    assert(prog.requested_count[block.block] > 0);
    --prog.requested_count[block.block];
  } else if (prog.requested_count[block.block] == 0) {
    // The block had returned to the unrequested pool; it is now received.
    assert(unrequested_blocks_ > 0);
    --unrequested_blocks_;
  }
  prog.received[block.block] = true;
  ++prog.received_blocks;
  prog.tainted = prog.tainted || corrupt_marker;
  prog.contributors.insert(conn.remote);

  // End game: cancel this block everywhere else it is outstanding.
  if (end_game_active_) {
    for (Connection& other : conns_) {
      if (other.remote == conn.remote) continue;
      auto& oo = other.outstanding;
      const auto oit = std::find(oo.begin(), oo.end(), block);
      if (oit != oo.end()) {
        oo.erase(oit);
        auto pit = active_pieces_.find(block.piece);
        if (pit != active_pieces_.end() &&
            pit->second.requested_count[block.block] > 0) {
          --pit->second.requested_count[block.block];
        }
        send(other.remote,
             wire::CancelMsg{block.piece, geo_.block_offset(block),
                             geo_.block_bytes(block)});
      }
    }
  }

  const PeerId remote = conn.remote;
  if (prog.received_blocks == geo_.blocks_in_piece(block.piece)) {
    // May transition to seed state and disconnect `conn`; re-resolve.
    complete_piece(block.piece);
  }
  if (Connection* still = find_conn(remote); still != nullptr && active()) {
    fill_requests(*still);
  }
}

// --- download side ----------------------------------------------------------

void Peer::mark_requested(wire::BlockRef block) {
  PieceProgress& prog = active_pieces_.at(block.piece);
  if (prog.requested_count[block.block] == 0 && !prog.received[block.block]) {
    assert(unrequested_blocks_ > 0);
    --unrequested_blocks_;
  }
  ++prog.requested_count[block.block];
}

void Peer::release_request(wire::BlockRef block) {
  const auto it = active_pieces_.find(block.piece);
  if (it == active_pieces_.end()) return;  // piece completed meanwhile
  PieceProgress& prog = it->second;
  if (prog.requested_count[block.block] == 0) return;
  --prog.requested_count[block.block];
  if (prog.requested_count[block.block] == 0 && !prog.received[block.block]) {
    ++unrequested_blocks_;
  }
}

void Peer::fill_requests(Connection& conn) {
  if (!conn.am_interested || conn.peer_choking) return;
  if (cfg_.params.liveness_timers && conn.last_request_timeout >= 0.0 &&
      now() - conn.last_request_timeout < cfg_.params.request_timeout) {
    // This link just timed out: leave the returned blocks for other
    // peers instead of immediately re-pinning them to a silent link.
    return;
  }
  while (conn.outstanding.size() < cfg_.params.pipeline_depth) {
    const auto block = next_block(conn);
    if (!block.has_value()) break;
    conn.outstanding.push_back(*block);
    conn.last_request_time = now();
    send(conn.remote,
         wire::RequestMsg{block->piece, geo_.block_offset(*block),
                          geo_.block_bytes(*block)});
  }
}

std::optional<wire::BlockRef> Peer::next_block(Connection& conn) {
  // Strict priority: finish partially received pieces first so they can
  // be served onward as soon as possible (paper §II-C.1).
  if (cfg_.params.strict_priority) {
    if (const auto b = next_partial_block(conn); b.has_value()) {
      mark_requested(*b);
      return b;
    }
  }
  if (const auto b = start_new_piece(conn); b.has_value()) {
    mark_requested(*b);
    return b;
  }
  if (!cfg_.params.strict_priority) {
    if (const auto b = next_partial_block(conn); b.has_value()) {
      mark_requested(*b);
      return b;
    }
  }
  // End game mode: everything is requested; duplicate the stragglers.
  if (cfg_.params.end_game && unrequested_blocks_ == 0 && !have_.complete()) {
    if (!end_game_active_) {
      end_game_active_ = true;
      if (observer_ != nullptr) observer_->on_end_game(now());
    }
    return next_end_game_block(conn);  // not mark_requested: already counted
  }
  return std::nullopt;
}

std::optional<wire::BlockRef> Peer::next_partial_block(
    const Connection& conn) {
  for (const auto& [piece, prog] : active_pieces_) {
    if (have_.has(piece) || !conn.remote_have.has(piece)) continue;
    if (prog.exclusive_source.has_value() &&
        *prog.exclusive_source != conn.remote) {
      continue;  // single-source retry: only its assigned peer may fetch
    }
    const std::uint32_t nblocks = geo_.blocks_in_piece(piece);
    for (wire::BlockIndex b = 0; b < nblocks; ++b) {
      if (!prog.received[b] && prog.requested_count[b] == 0) {
        return wire::BlockRef{piece, b};
      }
    }
  }
  return std::nullopt;
}

std::optional<wire::BlockRef> Peer::start_new_piece(Connection& conn) {
  const std::function<bool(wire::PieceIndex)> startable =
      [this](wire::PieceIndex p) { return !active_pieces_.contains(p); };
  const core::AvailabilityMap& avail =
      cfg_.params.picker == core::PickerKind::kGlobalRarest
          ? fabric_.global_availability()
          : availability_;
  const core::PickContext ctx{have_, conn.remote_have, avail, startable,
                              have_.count()};
  const auto piece = picker_->pick(ctx, fabric_.simulation().rng());
  if (!piece.has_value()) return std::nullopt;
  PieceProgress prog;
  prog.requested_count.assign(geo_.blocks_in_piece(*piece), 0);
  prog.received.assign(geo_.blocks_in_piece(*piece), false);
  if (retry_exclusive_.contains(*piece)) {
    // Previously failed verification with multiple sources: fetch it
    // entirely from this peer so a repeat failure is attributable.
    prog.exclusive_source = conn.remote;
  }
  active_pieces_.emplace(*piece, std::move(prog));
  return wire::BlockRef{*piece, 0};
}

std::optional<wire::BlockRef> Peer::next_end_game_block(Connection& conn) {
  std::vector<wire::BlockRef> candidates;
  for (const auto& [piece, prog] : active_pieces_) {
    if (have_.has(piece) || !conn.remote_have.has(piece)) continue;
    if (prog.exclusive_source.has_value() &&
        *prog.exclusive_source != conn.remote) {
      continue;  // end-game duplication would break attribution
    }
    const std::uint32_t nblocks = geo_.blocks_in_piece(piece);
    for (wire::BlockIndex b = 0; b < nblocks; ++b) {
      const wire::BlockRef ref{piece, b};
      if (!prog.received[b] && !conn.has_outstanding(ref)) {
        candidates.push_back(ref);
      }
    }
  }
  if (candidates.empty()) return std::nullopt;
  const wire::BlockRef pick =
      candidates[fabric_.simulation().rng().index(candidates.size())];
  // Track multiplicity so releases on choke/disconnect stay balanced.
  ++active_pieces_.at(pick.piece).requested_count[pick.block];
  return pick;
}

void Peer::complete_piece(wire::PieceIndex piece) {
  // Hash verification before committing (a real client checks the piece
  // SHA-1 against the metainfo; only verified pieces may be served).
  if (cfg_.params.verify_pieces) {
    const auto it = active_pieces_.find(piece);
    const bool marker_bad =
        it != active_pieces_.end() && it->second.tainted;
    const bool hash_bad =
        store_ != nullptr && !store_->verify_piece(piece);
    if (marker_bad || hash_bad) {
      discard_piece(piece);
      return;
    }
  }
  active_pieces_.erase(piece);
  retry_exclusive_.erase(piece);
  have_.set(piece);
  if (observer_ != nullptr) observer_->on_piece_complete(now(), piece);
  fabric_.broadcast_have(cfg_.id, piece);
  // Interest in some peers may vanish now.
  for (Connection& conn : conns_) {
    if (conn.remote_have.has(piece)) {
      assert(conn.missing_count > 0);
      --conn.missing_count;
    }
    update_interest(conn);
  }
  if (have_.complete()) become_seed();
}

void Peer::discard_piece(wire::PieceIndex piece) {
  const auto it = active_pieces_.find(piece);
  if (it == active_pieces_.end()) return;
  ++corrupted_pieces_;
  if (observer_ != nullptr) observer_->on_piece_failed(now(), piece);

  // Blocks of this piece currently counted as unrequested (the rest were
  // consumed from the pool by requests/receipts and must be returned).
  const std::uint32_t nblocks = geo_.blocks_in_piece(piece);
  std::uint32_t pool_now = 0;
  for (wire::BlockIndex b = 0; b < nblocks; ++b) {
    if (it->second.requested_count[b] == 0 && !it->second.received[b]) {
      ++pool_now;
    }
  }
  const std::set<PeerId> contributors = std::move(it->second.contributors);
  active_pieces_.erase(it);
  unrequested_blocks_ += nblocks - pool_now;
  if (store_ != nullptr) store_->drop_piece(piece);

  // Withdraw every outstanding request for the piece (in-flight data may
  // still arrive; it is handled as a fresh stale arrival).
  for (Connection& conn : conns_) {
    auto& out = conn.outstanding;
    for (auto oit = out.begin(); oit != out.end();) {
      if (oit->piece == piece) {
        send(conn.remote, wire::CancelMsg{piece, geo_.block_offset(*oit),
                                          geo_.block_bytes(*oit)});
        oit = out.erase(oit);
      } else {
        ++oit;
      }
    }
  }

  // Banning policy (cf. libtorrent's smart ban): a piece that came
  // entirely from one peer and failed verification proves that peer
  // corrupt — ban it permanently. A multi-source failure proves nothing
  // about any single contributor, so the piece is flagged for
  // single-source retry, which isolates the polluter on the next pass.
  if (cfg_.params.ban_corrupt_sources && contributors.size() == 1) {
    const PeerId culprit = *contributors.begin();
    banned_.insert(culprit);
    retry_exclusive_.erase(piece);
    if (conns_.contains(culprit)) fabric_.disconnect(cfg_.id, culprit);
  } else {
    retry_exclusive_.insert(piece);
  }
}

void Peer::become_seed() {
  completion_time_ = now();
  end_game_active_ = false;
  if (observer_ != nullptr) observer_->on_became_seed(completion_time_);
  do_announce(AnnounceEvent::kCompleted);
  // A new seed closes its connections to all the seeds (paper §IV-A.2.b).
  std::vector<PeerId> seeds;
  for (const Connection& conn : conns_) {
    if (conn.remote_have.complete()) seeds.push_back(conn.remote);
  }
  for (const PeerId r : seeds) fabric_.disconnect(cfg_.id, r);
}

void Peer::update_interest(Connection& conn) {
  const bool now_interested = conn.missing_count > 0;
  if (now_interested == conn.am_interested) return;
  conn.am_interested = now_interested;
  if (now_interested) {
    send(conn.remote, wire::InterestedMsg{});
  } else {
    send(conn.remote, wire::NotInterestedMsg{});
  }
  if (observer_ != nullptr) {
    observer_->on_interest_change(now(), conn.remote, now_interested);
  }
  if (now_interested && !conn.peer_choking) fill_requests(conn);
}

// --- upload side -------------------------------------------------------------

void Peer::start_next_upload(Connection& conn) {
  while (!conn.upload_queue.empty()) {
    const QueuedRequest req = conn.upload_queue.front();
    conn.upload_queue.pop_front();
    conn.upload_flow = fabric_.send_block(cfg_.id, conn.remote, req.block);
    if (conn.upload_flow != 0) {
      conn.upload_in_flight = req.block;
      return;
    }
  }
}

void Peer::on_block_sent(PeerId to, wire::BlockRef block,
                         std::uint32_t bytes) {
  Connection* conn = find_conn(to);
  if (conn == nullptr) return;
  conn->upload_flow = 0;
  conn->upload_rate.add(now(), bytes);
  uploaded_ += bytes;
  if (observer_ != nullptr) {
    observer_->on_block_uploaded(now(), to, block, bytes);
  }
  start_next_upload(*conn);
}

// --- choke algorithm -----------------------------------------------------------

void Peer::schedule_choke_round() {
  choke_event_ = fabric_.simulation().schedule_in(
      cfg_.params.choke_interval, [this] { run_choke_round(); });
}

void Peer::run_choke_round() {
  if (!active()) return;
  const std::uint64_t round = choke_round_++;
  std::vector<core::ChokeCandidate> candidates;
  candidates.reserve(conns_.size());
  const double t = now();
  for (const Connection& conn : conns_) {
    core::ChokeCandidate c;
    c.key = conn.remote;
    c.interested = conn.peer_interested;
    c.unchoked = !conn.am_choking;
    c.download_rate = conn.download_rate.rate(t);
    c.upload_rate = conn.upload_rate.rate(t);
    c.last_unchoke_time = conn.last_unchoke_time;
    c.uploaded_to = conn.upload_rate.total_bytes();
    c.downloaded_from = conn.download_rate.total_bytes();
    c.newly_connected = (t - conn.connected_at) < cfg_.params.new_peer_age;
    if (cfg_.params.anti_snubbing && !conn.peer_choking &&
        !conn.outstanding.empty()) {
      const double last = conn.last_block_time >= 0.0
                              ? conn.last_block_time
                              : conn.last_request_time;
      c.snubbed = last >= 0.0 && (t - last) > cfg_.params.snub_timeout;
    }
    candidates.push_back(c);
  }
  std::vector<core::PeerKey> selected;
  if (!cfg_.free_rider) {
    core::Choker& choker = is_seed() ? *seed_choker_ : *leecher_choker_;
    selected = choker.select(candidates, round, fabric_.simulation().rng());
  }
  std::vector<PeerId> unchoked;
  unchoked.reserve(selected.size());
  for (const core::PeerKey k : selected) {
    unchoked.push_back(static_cast<PeerId>(k));
  }
  apply_unchoke_set(unchoked);
  if (observer_ != nullptr) {
    observer_->on_choke_round(t, is_seed(), unchoked);
  }
  schedule_choke_round();
}

void Peer::apply_unchoke_set(const std::vector<PeerId>& selected) {
  const auto keep = [&selected](PeerId r) {
    return std::find(selected.begin(), selected.end(), r) != selected.end();
  };
  for (Connection& conn : conns_) {
    const PeerId remote = conn.remote;
    if (keep(remote)) {
      if (conn.am_choking) {
        conn.am_choking = false;
        conn.last_unchoke_time = now();
        send(remote, wire::UnchokeMsg{});
        if (observer_ != nullptr) {
          observer_->on_local_choke_change(now(), remote, true);
        }
      }
    } else if (!conn.am_choking) {
      conn.am_choking = true;
      // Pending requests are dropped on choke; with the Fast Extension
      // each drop is announced with an explicit reject.
      if (cfg_.params.fast_extension) {
        for (const QueuedRequest& r : conn.upload_queue) {
          send(remote, wire::RejectRequestMsg{r.block.piece,
                                              geo_.block_offset(r.block),
                                              r.bytes});
        }
      }
      conn.upload_queue.clear();
      send(remote, wire::ChokeMsg{});
      if (observer_ != nullptr) {
        observer_->on_local_choke_change(now(), remote, false);
      }
    }
  }
}

// --- tracker / peer set --------------------------------------------------------

void Peer::schedule_announce() {
  announce_event_ = fabric_.simulation().schedule_in(
      cfg_.params.tracker_reannounce_interval, [this] {
        if (!active()) return;
        do_announce(AnnounceEvent::kRegular);
        schedule_announce();
      });
}

void Peer::do_announce(AnnounceEvent event) {
  const AnnounceResult result = fabric_.announce(cfg_.id, event);
  if (!result.ok) {
    // Tracker outage. A stopping peer gives up (as a real client's final
    // announce does); everyone else retries with exponential backoff.
    ++announce_failures_;
    if (event != AnnounceEvent::kStopped) schedule_announce_retry();
    return;
  }
  announce_backoff_level_ = 0;
  if (event == AnnounceEvent::kStopped) return;
  initiate_connections(result.peers);
}

void Peer::schedule_announce_retry() {
  if (announce_retry_event_ != 0) return;  // one pending retry at a time
  const std::uint32_t level = std::min<std::uint32_t>(
      announce_backoff_level_, 10);  // 15 s * 2^10 already beyond any cap
  double delay = cfg_.params.announce_retry_base *
                 static_cast<double>(std::uint64_t{1} << level);
  delay = std::min(delay, cfg_.params.announce_retry_max);
  // +/-25% jitter desynchronizes the retry storm when an outage ends.
  // This draw is on the main simulation Rng, which is safe for the
  // determinism contract: the failure path is unreachable unless a fault
  // plan is active.
  delay *= fabric_.simulation().rng().uniform(0.75, 1.25);
  ++announce_backoff_level_;
  announce_retry_event_ =
      fabric_.simulation().schedule_in(delay, [this] {
        announce_retry_event_ = 0;
        if (!active()) return;
        do_announce(AnnounceEvent::kRegular);
      });
}

void Peer::maybe_refill_peer_set() {
  if (conns_.size() >= cfg_.params.min_peer_set) return;
  if (now() - last_refill_announce_ < kRefillCooldown) return;
  last_refill_announce_ = now();
  do_announce(AnnounceEvent::kRegular);
}

void Peer::initiate_connections(const std::vector<PeerId>& candidates) {
  std::size_t initiated = initiated_connections();
  for (const PeerId c : candidates) {
    if (conns_.size() >= cfg_.params.max_peer_set) break;
    if (initiated >= cfg_.params.max_initiated) break;
    if (c == cfg_.id || conns_.contains(c) || banned_.contains(c)) continue;
    fabric_.connect(cfg_.id, c);
    ++initiated;  // optimistic: failed attempts free the slot via conns_
  }
}

// --- liveness timers ------------------------------------------------------------

void Peer::schedule_liveness_tick() {
  liveness_event_ = fabric_.simulation().schedule_in(
      cfg_.params.liveness_check_interval, [this] { run_liveness_tick(); });
}

void Peer::run_liveness_tick() {
  if (!active()) return;
  const double t = now();
  std::vector<PeerId> ghosts;
  bool blocks_freed = false;
  for (Connection& conn : conns_) {
    // Silence detection: a peer that crashed (or whose link is wholly
    // lossy) sends nothing — not even keepalives — and gets evicted.
    if (t - conn.last_seen > cfg_.params.silence_timeout) {
      ghosts.push_back(conn.remote);
      continue;
    }
    // Keepalive: mainline sends one after keepalive_interval of tx
    // silence so a healthy-but-quiet link never trips the remote's
    // silence timeout.
    if (t - conn.last_sent >= cfg_.params.keepalive_interval) {
      send(conn.remote, wire::KeepAliveMsg{});
    }
    // Request timeout: an unchoked link that stopped delivering returns
    // its outstanding blocks to the picker for re-request elsewhere.
    if (!conn.outstanding.empty() && !conn.peer_choking) {
      const double ref =
          std::max(conn.last_block_time, conn.last_request_time);
      if (ref >= 0.0 && t - ref > cfg_.params.request_timeout) {
        timed_out_requests_ += conn.outstanding.size();
        for (const wire::BlockRef b : conn.outstanding) release_request(b);
        conn.outstanding.clear();
        conn.last_request_timeout = t;
        blocks_freed = true;
      }
    }
    // A killed network flow fires no on_block_sent; recover the wedged
    // upload slot so serving resumes.
    if (conn.upload_flow != 0 &&
        !fabric_.network().has_flow(conn.upload_flow)) {
      conn.upload_flow = 0;
      start_next_upload(conn);
    }
  }
  for (const PeerId r : ghosts) {
    ++ghosts_evicted_;
    blocks_freed = true;  // on_disconnected released its outstanding
    fabric_.disconnect(cfg_.id, r);
  }
  if (blocks_freed) {
    // Route the returned blocks through links with pipeline room.
    for (Connection& conn : conns_) {
      if (conn.am_interested && !conn.peer_choking) fill_requests(conn);
    }
  }
  schedule_liveness_tick();
}

// --- super seeding (extension) ---------------------------------------------------

void Peer::super_seed_reveal(Connection& conn) {
  assert(super_seed_ != nullptr);
  auto& revealed = super_seed_->revealed[conn.remote];
  // Offer the piece with the fewest prior offers that this peer has not
  // been offered and has not announced, preferring unconfirmed pieces.
  std::optional<wire::PieceIndex> best;
  std::uint32_t best_score = std::numeric_limits<std::uint32_t>::max();
  for (wire::PieceIndex p = 0; p < geo_.num_pieces(); ++p) {
    if (revealed.contains(p) || conn.remote_have.has(p)) continue;
    const std::uint32_t score = super_seed_->offer_count[p] * 2 +
                                (super_seed_->confirmed.contains(p) ? 1 : 0);
    if (score < best_score) {
      best_score = score;
      best = p;
    }
  }
  if (!best.has_value()) return;
  revealed.insert(*best);
  super_seed_->pending_offer[conn.remote] = *best;
  ++super_seed_->offer_count[*best];
  send(conn.remote, wire::HaveMsg{*best});
}

void Peer::super_seed_on_remote_have(wire::PieceIndex piece, PeerId from) {
  assert(super_seed_ != nullptr);
  super_seed_->confirmed.insert(piece);
  for (auto& [remote, offer] : super_seed_->pending_offer) {
    if (!offer.has_value() || *offer != piece) continue;
    // Reveal the next piece once the offered one is confirmed replicated
    // by someone else (or by the offeree itself when it is alone).
    if (remote != from || conns_.size() <= 1) {
      offer.reset();
      if (Connection* conn = find_conn(remote); conn != nullptr) {
        super_seed_reveal(*conn);
      }
    }
  }
}

}  // namespace swarmlab::peer
