#include "peer/peer.h"

#include <cassert>
#include <utility>

#include "peer/choke_driver.h"
#include "peer/download_scheduler.h"
#include "peer/fabric.h"
#include "peer/interest_tracker.h"
#include "peer/observer.h"
#include "peer/peer_set_manager.h"
#include "peer/super_seed_policy.h"
#include "peer/upload_servicer.h"
#include "sim/simulation.h"

namespace swarmlab::peer {

Peer::Peer(Fabric& fabric, const wire::ContentGeometry& geometry,
           PeerConfig cfg, PeerObserver* observer)
    : ctx_(fabric, geometry, std::move(cfg), observer) {
  download_ = std::make_unique<DownloadScheduler>(ctx_, mods_);
  upload_ = std::make_unique<UploadServicer>(ctx_, mods_);
  interest_ = std::make_unique<InterestTracker>(ctx_, mods_);
  choke_ = std::make_unique<ChokeDriver>(ctx_, mods_);
  peer_set_ = std::make_unique<PeerSetManager>(ctx_, mods_);
  if (ctx_.cfg.params.super_seeding && ctx_.have.complete()) {
    super_seed_ = std::make_unique<SuperSeedPolicy>(ctx_, mods_);
  }
  mods_.download = download_.get();
  mods_.upload = upload_.get();
  mods_.interest = interest_.get();
  mods_.choke = choke_.get();
  mods_.peer_set = peer_set_.get();
  mods_.super_seed = super_seed_.get();
}

Peer::~Peer() = default;

std::vector<std::uint8_t> Peer::read_block(wire::BlockRef block) const {
  assert(ctx_.store != nullptr && ctx_.have.has(block.piece));
  return ctx_.store->read_block(block);
}

std::vector<PeerId> Peer::connected_peers() const {
  std::vector<PeerId> out;
  out.reserve(ctx_.conns.size());
  for (const Connection& conn : ctx_.conns) out.push_back(conn.remote);
  return out;
}

// --- delegated queries -----------------------------------------------------

std::size_t Peer::initiated_connections() const {
  return peer_set_->initiated_connections();
}
bool Peer::in_end_game() const { return download_->in_end_game(); }
std::uint64_t Peer::total_uploaded() const {
  return upload_->total_uploaded();
}
std::uint64_t Peer::total_downloaded() const {
  return download_->total_downloaded();
}
std::uint64_t Peer::corrupted_pieces() const {
  return download_->corrupted_pieces();
}
std::uint64_t Peer::ghosts_evicted() const {
  return peer_set_->ghosts_evicted();
}
std::uint64_t Peer::timed_out_requests() const {
  return download_->timed_out_requests();
}
std::uint64_t Peer::announce_failures() const {
  return peer_set_->announce_failures();
}

// --- lifecycle -------------------------------------------------------------

void Peer::start() {
  assert(!ctx_.started);
  ctx_.started = true;
  ctx_.start_time = ctx_.now();
  if (ctx_.observer != nullptr) ctx_.observer->on_start(ctx_.start_time);
  if (is_seed()) {
    // An initial seed is in seed state from its first instant.
    ctx_.completion_time = ctx_.start_time;
    if (ctx_.observer != nullptr) {
      ctx_.observer->on_became_seed(ctx_.start_time);
    }
  }
  peer_set_->start();
  choke_->start();
  if (ctx_.cfg.params.liveness_timers) peer_set_->start_liveness();
}

void Peer::stop() {
  if (!ctx_.started || ctx_.stopped) return;
  ctx_.stopped = true;
  choke_->cancel();
  peer_set_->cancel_timers();
  peer_set_->announce(AnnounceEvent::kStopped);
  // Disconnect everything; fabric calls back into on_disconnected.
  const std::vector<PeerId> remotes = connected_peers();
  for (const PeerId r : remotes) ctx_.fabric.disconnect(ctx_.cfg.id, r);
  if (ctx_.observer != nullptr) ctx_.observer->on_stop(ctx_.now());
}

void Peer::crash() {
  if (!ctx_.started || ctx_.stopped) return;
  ctx_.stopped = true;
  choke_->cancel();
  peer_set_->cancel_timers();
  // Deliberately NO Stopped announce and NO disconnects: the tracker
  // keeps our entry until its member expiry, and every remote peer keeps
  // a ghost Connection until its silence timeout evicts it.
  if (ctx_.observer != nullptr) ctx_.observer->on_stop(ctx_.now());
}

// --- connections ------------------------------------------------------------

bool Peer::accepts_connection(PeerId from) const {
  return peer_set_->accepts_connection(from);
}

void Peer::on_connected(PeerId remote, bool initiated_by_us) {
  peer_set_->on_connected(remote, initiated_by_us);
}

void Peer::on_disconnected(PeerId remote) {
  Connection* found = ctx_.conns.find(remote);
  if (found == nullptr) return;
  Connection& conn = *found;
  download_->on_disconnect(conn);
  upload_->on_disconnect(conn);
  interest_->on_disconnect(conn);
  if (super_seed_ != nullptr) super_seed_->on_disconnect(remote);
  download_->clear_exclusive_source(remote);
  ctx_.conns.erase(remote);
  if (ctx_.observer != nullptr) ctx_.observer->on_peer_left(ctx_.now(), remote);
  if (active()) peer_set_->maybe_refill_peer_set();
}

// --- messages ---------------------------------------------------------------

void Peer::handle_message(PeerId from, const wire::Message& msg) {
  if (!active()) return;
  Connection* conn = ctx_.conns.find(from);
  if (conn == nullptr) return;  // stale delivery after disconnect
  conn->last_seen = ctx_.now();
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_message_received(ctx_.now(), from, msg);
  }

  if (const auto* m = std::get_if<wire::BitfieldMsg>(&msg)) {
    interest_->handle_bitfield(*conn, *m);
  } else if (const auto* m = std::get_if<wire::HaveMsg>(&msg)) {
    interest_->handle_have(*conn, *m);
  } else if (std::get_if<wire::InterestedMsg>(&msg) != nullptr) {
    choke_->handle_interested(*conn, true);
  } else if (std::get_if<wire::NotInterestedMsg>(&msg) != nullptr) {
    choke_->handle_interested(*conn, false);
  } else if (std::get_if<wire::ChokeMsg>(&msg) != nullptr) {
    download_->handle_choke(*conn, true);
  } else if (std::get_if<wire::UnchokeMsg>(&msg) != nullptr) {
    download_->handle_choke(*conn, false);
  } else if (const auto* m = std::get_if<wire::RequestMsg>(&msg)) {
    upload_->handle_request(*conn, *m);
  } else if (const auto* m = std::get_if<wire::CancelMsg>(&msg)) {
    upload_->handle_cancel(*conn, *m);
  } else if (const auto* m = std::get_if<wire::PieceMsg>(&msg)) {
    download_->handle_block(*conn, *m);
  } else if (std::get_if<wire::HaveAllMsg>(&msg) != nullptr) {
    // Fast Extension: equivalent to an all-ones bitfield.
    wire::BitfieldMsg full;
    full.bits.assign(ctx_.geo.num_pieces(), true);
    interest_->handle_bitfield(*conn, full);
  } else if (std::get_if<wire::HaveNoneMsg>(&msg) != nullptr) {
    wire::BitfieldMsg none;
    none.bits.assign(ctx_.geo.num_pieces(), false);
    interest_->handle_bitfield(*conn, none);
  } else if (const auto* m = std::get_if<wire::RejectRequestMsg>(&msg)) {
    download_->handle_reject(*conn, *m);
  }
  // KeepAliveMsg carries no payload: its receipt already refreshed
  // conn->last_seen above, which is all the liveness machinery needs
  // (see PeerSetManager::run_liveness_tick). SuggestPiece/AllowedFast:
  // received gracefully (logged via the observer) but not acted upon —
  // the simulator has no web-seed caches and models no choked
  // fast-allowed downloads.
}

void Peer::on_block_sent(PeerId to, wire::BlockRef block,
                         std::uint32_t bytes) {
  Connection* conn = ctx_.conns.find(to);
  if (conn == nullptr) return;
  upload_->on_block_sent(*conn, block, bytes);
}

}  // namespace swarmlab::peer
