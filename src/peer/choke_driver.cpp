#include "peer/choke_driver.h"

#include <algorithm>

#include "peer/fabric.h"
#include "peer/observer.h"
#include "sim/simulation.h"

namespace swarmlab::peer {

ChokeDriver::ChokeDriver(PeerContext& ctx, PeerModules& mods)
    : ctx_(ctx),
      mods_(mods),
      leecher_choker_(core::make_leecher_choker(ctx.cfg.params)),
      seed_choker_(core::make_seed_choker(ctx.cfg.params)) {}

void ChokeDriver::handle_interested(Connection& conn, bool interested) {
  if (conn.peer_interested == interested) return;
  conn.peer_interested = interested;
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_remote_interest_change(ctx_.now(), conn.remote,
                                             interested);
  }
}

void ChokeDriver::start() {
  // Desynchronize choke rounds across peers.
  const double phase = ctx_.fabric.simulation().rng().uniform(
      0.0, ctx_.cfg.params.choke_interval);
  choke_event_ = ctx_.fabric.simulation().schedule_in(
      phase, [this] { run_choke_round(); });
}

void ChokeDriver::cancel() {
  if (choke_event_ != 0) ctx_.fabric.simulation().cancel(choke_event_);
  choke_event_ = 0;
}

void ChokeDriver::schedule_choke_round() {
  choke_event_ = ctx_.fabric.simulation().schedule_in(
      ctx_.cfg.params.choke_interval, [this] { run_choke_round(); });
}

void ChokeDriver::run_choke_round() {
  if (!ctx_.active()) return;
  const std::uint64_t round = choke_round_++;
  std::vector<core::ChokeCandidate> candidates;
  candidates.reserve(ctx_.conns.size());
  const double t = ctx_.now();
  for (const Connection& conn : ctx_.conns) {
    core::ChokeCandidate c;
    c.key = conn.remote;
    c.interested = conn.peer_interested;
    c.unchoked = !conn.am_choking;
    c.download_rate = conn.download_rate.rate(t);
    c.upload_rate = conn.upload_rate.rate(t);
    c.last_unchoke_time = conn.last_unchoke_time;
    c.uploaded_to = conn.upload_rate.total_bytes();
    c.downloaded_from = conn.download_rate.total_bytes();
    c.newly_connected =
        (t - conn.connected_at) < ctx_.cfg.params.new_peer_age;
    if (ctx_.cfg.params.anti_snubbing && !conn.peer_choking &&
        !conn.outstanding.empty()) {
      const double last = conn.last_block_time >= 0.0
                              ? conn.last_block_time
                              : conn.last_request_time;
      c.snubbed = last >= 0.0 && (t - last) > ctx_.cfg.params.snub_timeout;
    }
    candidates.push_back(c);
  }
  std::vector<core::PeerKey> selected;
  if (!ctx_.cfg.free_rider) {
    core::Choker& choker =
        ctx_.is_seed() ? *seed_choker_ : *leecher_choker_;
    selected =
        choker.select(candidates, round, ctx_.fabric.simulation().rng());
  }
  std::vector<PeerId> unchoked;
  unchoked.reserve(selected.size());
  for (const core::PeerKey k : selected) {
    unchoked.push_back(static_cast<PeerId>(k));
  }
  apply_unchoke_set(unchoked);
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_choke_round(t, ctx_.is_seed(), unchoked);
  }
  schedule_choke_round();
}

void ChokeDriver::apply_unchoke_set(const std::vector<PeerId>& selected) {
  const auto keep = [&selected](PeerId r) {
    return std::find(selected.begin(), selected.end(), r) != selected.end();
  };
  for (Connection& conn : ctx_.conns) {
    const PeerId remote = conn.remote;
    if (keep(remote)) {
      if (conn.am_choking) {
        conn.am_choking = false;
        conn.last_unchoke_time = ctx_.now();
        ctx_.send(remote, wire::UnchokeMsg{});
        if (ctx_.observer != nullptr) {
          ctx_.observer->on_local_choke_change(ctx_.now(), remote, true);
        }
      }
    } else if (!conn.am_choking) {
      conn.am_choking = true;
      // Pending requests are dropped on choke; with the Fast Extension
      // each drop is announced with an explicit reject.
      if (ctx_.cfg.params.fast_extension) {
        for (const QueuedRequest& r : conn.upload_queue) {
          ctx_.send(remote, wire::RejectRequestMsg{
                                r.block.piece, ctx_.geo.block_offset(r.block),
                                r.bytes});
        }
      }
      conn.upload_queue.clear();
      ctx_.send(remote, wire::ChokeMsg{});
      if (ctx_.observer != nullptr) {
        ctx_.observer->on_local_choke_change(ctx_.now(), remote, false);
      }
    }
  }
}

}  // namespace swarmlab::peer
