#include "peer/peer_context.h"

#include <cassert>
#include <utility>

#include "peer/fabric.h"
#include "peer/observer.h"
#include "sim/simulation.h"
#include "wire/metainfo.h"

namespace swarmlab::peer {

PeerContext::PeerContext(Fabric& fabric_in,
                         const wire::ContentGeometry& geometry,
                         PeerConfig config, PeerObserver* obs)
    : fabric(fabric_in),
      geo(geometry),
      cfg(std::move(config)),
      observer(obs),
      have(geometry.num_pieces()),
      availability(geometry.num_pieces()) {
  if (!cfg.initial_pieces.empty()) {
    assert(cfg.initial_pieces.size() == geo.num_pieces());
    for (wire::PieceIndex p = 0; p < geo.num_pieces(); ++p) {
      if (cfg.initial_pieces[p]) have.set(p);
    }
  } else if (cfg.start_complete) {
    have = core::Bitfield::full(geo.num_pieces());
  }
  // Data plane: materialize the bytes backing the initial bitfield.
  if (const wire::Metainfo* meta = fabric.metainfo(); meta != nullptr) {
    store = std::make_unique<ContentStore>(*meta);
    if (have.complete()) {
      store->fill_complete();
    } else {
      for (wire::PieceIndex p = 0; p < geo.num_pieces(); ++p) {
        if (have.has(p)) {
          store->put_piece(p, wire::synthetic_piece_bytes(*meta, p));
        }
      }
    }
  }
}

double PeerContext::now() const { return fabric.simulation().now(); }

void PeerContext::send(PeerId to, wire::Message msg) {
  if (Connection* conn = find_conn(to); conn != nullptr) {
    conn->last_sent = now();
  }
  if (observer != nullptr) observer->on_message_sent(now(), to, msg);
  fabric.send_control(cfg.id, to, std::move(msg));
}

}  // namespace swarmlab::peer
