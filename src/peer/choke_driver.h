// ChokeDriver: adapts core::Choker ticks to the connection table.
//
// Owns the 10-second choke round timer, builds the candidate snapshot
// (rates, snubbing, new-peer age) from the connection table, runs the
// leecher or seed choker, and applies the selected unchoke set —
// including the Fast-Extension rejects for requests dropped on choke.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/choker.h"
#include "peer/peer_context.h"
#include "sim/types.h"

namespace swarmlab::peer {

class ChokeDriver {
 public:
  ChokeDriver(PeerContext& ctx, PeerModules& mods);

  /// Remote interest changed (INTERESTED / NOT_INTERESTED) — feeds the
  /// next round's candidate set.
  void handle_interested(Connection& conn, bool interested);

  /// Starts the round timer with a random phase so choke rounds
  /// desynchronize across peers.
  void start();

  /// Cancels the round timer (stop / crash).
  void cancel();

 private:
  void schedule_choke_round();
  void run_choke_round();
  void apply_unchoke_set(const std::vector<PeerId>& selected);

  PeerContext& ctx_;
  PeerModules& mods_;

  std::unique_ptr<core::Choker> leecher_choker_;
  std::unique_ptr<core::Choker> seed_choker_;

  std::uint64_t choke_round_ = 0;
  sim::EventId choke_event_ = 0;
};

}  // namespace swarmlab::peer
