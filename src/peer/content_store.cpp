#include "peer/content_store.h"

#include <cassert>
#include <cstring>

#include "wire/sha1.h"

namespace swarmlab::peer {

void ContentStore::fill_complete() {
  for (wire::PieceIndex p = 0; p < geo_.num_pieces(); ++p) {
    pieces_[p] = wire::synthetic_piece_bytes(*meta_, p);
  }
}

void ContentStore::put_piece(wire::PieceIndex piece,
                             std::vector<std::uint8_t> bytes) {
  assert(bytes.size() == geo_.piece_bytes(piece));
  pieces_[piece] = std::move(bytes);
}

void ContentStore::put_block(wire::BlockRef block,
                             std::span<const std::uint8_t> data) {
  assert(data.size() == geo_.block_bytes(block));
  auto& buf = pieces_[block.piece];
  if (buf.empty()) buf.assign(geo_.piece_bytes(block.piece), 0);
  std::memcpy(buf.data() + geo_.block_offset(block), data.data(),
              data.size());
}

std::vector<std::uint8_t> ContentStore::read_block(
    wire::BlockRef block) const {
  const auto it = pieces_.find(block.piece);
  assert(it != pieces_.end());
  const std::uint32_t offset = geo_.block_offset(block);
  const std::uint32_t len = geo_.block_bytes(block);
  assert(it->second.size() >= offset + len);
  return std::vector<std::uint8_t>(it->second.begin() + offset,
                                   it->second.begin() + offset + len);
}

bool ContentStore::verify_piece(wire::PieceIndex piece) const {
  const auto it = pieces_.find(piece);
  if (it == pieces_.end()) return false;
  if (it->second.size() != geo_.piece_bytes(piece)) return false;
  return wire::Sha1::hash(std::span<const std::uint8_t>(
             it->second.data(), it->second.size())) ==
         meta_->piece_hashes[piece];
}

std::size_t ContentStore::stored_bytes() const {
  std::size_t total = 0;
  for (const auto& [piece, bytes] : pieces_) total += bytes.size();
  return total;
}

}  // namespace swarmlab::peer
