#include "peer/interest_tracker.h"

#include <cassert>

#include "peer/download_scheduler.h"
#include "peer/fabric.h"
#include "peer/observer.h"
#include "peer/super_seed_policy.h"

namespace swarmlab::peer {

void InterestTracker::handle_bitfield(Connection& conn,
                                      const wire::BitfieldMsg& msg) {
  if (msg.bits.size() != ctx_.geo.num_pieces()) return;  // malformed: ignore
  // Replace any previous knowledge (a bitfield arrives once, right after
  // the handshake).
  ctx_.availability.remove_peer(conn.remote_have);
  conn.remote_have = core::Bitfield(msg.bits);
  conn.missing_count = ctx_.have.count_missing_from(conn.remote_have);
  ctx_.availability.add_peer(conn.remote_have);
  if (ctx_.is_seed() && conn.remote_have.complete()) {
    // Seeds do not keep connections to seeds.
    ctx_.fabric.disconnect(ctx_.cfg.id, conn.remote);
    return;
  }
  update_interest(conn);
}

void InterestTracker::handle_have(Connection& conn, const wire::HaveMsg& msg) {
  if (msg.piece >= ctx_.geo.num_pieces()) return;
  if (conn.remote_have.has(msg.piece)) return;
  conn.remote_have.set(msg.piece);
  if (!ctx_.have.has(msg.piece)) ++conn.missing_count;
  ctx_.availability.add_have(msg.piece);
  if (mods_.super_seed != nullptr) {
    mods_.super_seed->on_remote_have(msg.piece, conn.remote);
  }
  if (ctx_.is_seed() && conn.remote_have.complete()) {
    ctx_.fabric.disconnect(ctx_.cfg.id, conn.remote);
    return;
  }
  update_interest(conn);
  // A new piece at this peer may unblock our pipeline.
  if (conn.am_interested && !conn.peer_choking) {
    mods_.download->fill_requests(conn);
  }
}

void InterestTracker::update_interest(Connection& conn) {
  const bool now_interested = conn.missing_count > 0;
  if (now_interested == conn.am_interested) return;
  conn.am_interested = now_interested;
  if (now_interested) {
    ctx_.send(conn.remote, wire::InterestedMsg{});
  } else {
    ctx_.send(conn.remote, wire::NotInterestedMsg{});
  }
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_interest_change(ctx_.now(), conn.remote,
                                      now_interested);
  }
  if (now_interested && !conn.peer_choking) {
    mods_.download->fill_requests(conn);
  }
}

void InterestTracker::on_local_piece_complete(wire::PieceIndex piece) {
  for (Connection& conn : ctx_.conns) {
    if (conn.remote_have.has(piece)) {
      assert(conn.missing_count > 0);
      --conn.missing_count;
    }
    update_interest(conn);
  }
}

void InterestTracker::on_disconnect(Connection& conn) {
  ctx_.availability.remove_peer(conn.remote_have);
}

}  // namespace swarmlab::peer
