// UploadServicer: the serving side of one peer.
//
// Owns the per-connection upload request queue, validation of incoming
// REQUESTs (including the Fast-Extension reject on choked links and the
// super-seeding reveal gate), the one-block-in-flight transfer slot, and
// recovery of upload slots wedged by a killed network flow.
#pragma once

#include <cstdint>

#include "peer/peer_context.h"
#include "wire/geometry.h"
#include "wire/messages.h"

namespace swarmlab::peer {

class UploadServicer {
 public:
  UploadServicer(PeerContext& ctx, PeerModules& mods)
      : ctx_(ctx), mods_(mods) {}

  // --- message handlers -------------------------------------------------
  void handle_request(Connection& conn, const wire::RequestMsg& msg);
  void handle_cancel(Connection& conn, const wire::CancelMsg& msg);

  /// The block we were uploading to `conn` finished transferring.
  void on_block_sent(Connection& conn, wire::BlockRef block,
                     std::uint32_t bytes);

  /// Connection teardown: aborts the in-flight transfer.
  void on_disconnect(Connection& conn);

  /// Liveness tick: a killed network flow fires no on_block_sent;
  /// recover the wedged upload slot so serving resumes.
  void recover_wedged_upload(Connection& conn);

  [[nodiscard]] std::uint64_t total_uploaded() const { return uploaded_; }

 private:
  void start_next_upload(Connection& conn);

  PeerContext& ctx_;
  PeerModules& mods_;

  std::uint64_t uploaded_ = 0;
};

}  // namespace swarmlab::peer
