// DownloadScheduler: the request pipeline of one peer.
//
// Owns everything about getting pieces in: per-piece block progress, the
// unrequested-block pool, the piece picker, strict-priority and end-game
// policies, request-timeout bookkeeping, and hash-failure recovery
// (discard / single-source retry / ban escalation via PeerSetManager).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "core/piece_picker.h"
#include "peer/peer_context.h"
#include "peer/types.h"
#include "wire/geometry.h"
#include "wire/messages.h"

namespace swarmlab::peer {

class DownloadScheduler {
 public:
  DownloadScheduler(PeerContext& ctx, PeerModules& mods);

  // --- message handlers -------------------------------------------------
  void handle_choke(Connection& conn, bool choked);
  void handle_reject(Connection& conn, const wire::RejectRequestMsg& msg);
  void handle_block(Connection& conn, const wire::PieceMsg& msg);

  // --- pipeline ---------------------------------------------------------
  /// Tops the connection's pipeline up to params.pipeline_depth.
  void fill_requests(Connection& conn);

  /// Routes pool blocks through every link with pipeline room (after the
  /// liveness tick returned timed-out blocks).
  void refill_all();

  // --- lifecycle hooks --------------------------------------------------
  /// Connection teardown: returns its outstanding requests to the pool.
  void on_disconnect(Connection& conn);

  /// Exclusive-retry pieces assigned to the departing peer revert to
  /// normal (multi-source) fetching; a later failure re-arms the retry.
  void clear_exclusive_source(PeerId remote);

  /// Request timeout (liveness tick): an unchoked link that stopped
  /// delivering returns its outstanding blocks to the picker. Returns
  /// true when blocks were freed.
  bool check_request_timeout(Connection& conn, double t);

  // --- queries ----------------------------------------------------------
  [[nodiscard]] bool in_end_game() const { return end_game_active_; }
  [[nodiscard]] std::uint64_t total_downloaded() const { return downloaded_; }
  [[nodiscard]] std::uint64_t corrupted_pieces() const {
    return corrupted_pieces_;
  }
  [[nodiscard]] std::uint64_t timed_out_requests() const {
    return timed_out_requests_;
  }

 private:
  struct PieceProgress {
    std::vector<std::uint8_t> requested_count;  // requests in flight per block
    std::vector<bool> received;
    std::uint32_t received_blocks = 0;
    /// Some block came from a corrupting sender (hash check will fail).
    bool tainted = false;
    /// Everyone who contributed a block.
    std::set<PeerId> contributors;
    /// Exclusive-retry mode: after a multi-source verification failure
    /// the piece is re-fetched from a single peer, so a second failure
    /// proves that peer corrupt (cf. libtorrent's smart ban).
    std::optional<PeerId> exclusive_source;
  };

  std::optional<wire::BlockRef> next_block(Connection& conn);
  std::optional<wire::BlockRef> next_partial_block(const Connection& conn);
  std::optional<wire::BlockRef> start_new_piece(Connection& conn);
  std::optional<wire::BlockRef> next_end_game_block(Connection& conn);
  void mark_requested(wire::BlockRef block);
  void release_request(wire::BlockRef block);
  void complete_piece(wire::PieceIndex piece);
  /// Verification failure: drop all progress on `piece` (and optionally
  /// the peers that contributed to it), making it re-downloadable.
  void discard_piece(wire::PieceIndex piece);
  void become_seed();

  PeerContext& ctx_;
  PeerModules& mods_;

  std::unique_ptr<core::PiecePicker> picker_;
  std::map<wire::PieceIndex, PieceProgress> active_pieces_;

  /// Blocks of missing pieces with no request in flight.
  std::uint64_t unrequested_blocks_ = 0;
  bool end_game_active_ = false;

  /// Pieces that failed verification and must be retried single-source.
  std::set<wire::PieceIndex> retry_exclusive_;

  std::uint64_t downloaded_ = 0;
  std::uint64_t corrupted_pieces_ = 0;
  std::uint64_t timed_out_requests_ = 0;
};

}  // namespace swarmlab::peer
