// SuperSeedPolicy: the initial-seed piece-revelation strategy.
//
// A super seed advertises nothing at handshake and instead reveals one
// piece per connection via a targeted HAVE, revealing the next only
// after the offered piece is confirmed replicated elsewhere. Requests
// for unrevealed pieces are refused, which steers each leecher toward
// uploading the piece it just got. Created by Peer only when
// params.super_seeding is set and the peer starts complete.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "peer/peer_context.h"

namespace swarmlab::peer {

class SuperSeedPolicy {
 public:
  SuperSeedPolicy(PeerContext& ctx, PeerModules& mods)
      : ctx_(ctx), mods_(mods) {
    offer_count_.assign(ctx.geo.num_pieces(), 0);
  }

  /// Offers the best next piece to a freshly connected (or newly
  /// confirmed) peer via a targeted HAVE.
  void reveal_next(Connection& conn);

  /// A HAVE arrived: the piece is confirmed replicated; peers whose
  /// pending offer this confirms get their next reveal.
  void on_remote_have(wire::PieceIndex piece, PeerId from);

  /// True when `remote` was offered `piece` (requests for unrevealed
  /// pieces are silently refused).
  [[nodiscard]] bool allows_request(PeerId remote, wire::PieceIndex piece) const {
    const auto it = revealed_.find(remote);
    return it != revealed_.end() && it->second.contains(piece);
  }

  /// Drops per-connection reveal state for a departing peer.
  void on_disconnect(PeerId remote) {
    revealed_.erase(remote);
    pending_offer_.erase(remote);
  }

 private:
  PeerContext& ctx_;
  PeerModules& mods_;

  std::map<PeerId, std::set<wire::PieceIndex>> revealed_;
  std::map<PeerId, std::optional<wire::PieceIndex>> pending_offer_;
  std::vector<std::uint32_t> offer_count_;  // times each piece was offered
  std::set<wire::PieceIndex> confirmed_;    // seen HAVE from some peer
};

}  // namespace swarmlab::peer
