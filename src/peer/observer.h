// Instrumentation hook: the paper's "instrumented client" (§III-C) logs
// every message, every choke-algorithm state change, the rate estimations
// and the important protocol events. A PeerObserver receives exactly that
// stream from the peer it is attached to.
#pragma once

#include <vector>

#include "peer/types.h"
#include "sim/types.h"
#include "wire/geometry.h"
#include "wire/messages.h"

namespace swarmlab::peer {

/// No-op base; the instrument library overrides what it needs.
class PeerObserver {
 public:
  virtual ~PeerObserver() = default;

  /// The peer joined the torrent.
  virtual void on_start(sim::SimTime /*t*/) {}
  /// The peer left the torrent.
  virtual void on_stop(sim::SimTime /*t*/) {}

  /// A remote peer entered / left the local peer set.
  virtual void on_peer_joined(sim::SimTime /*t*/, PeerId /*remote*/) {}
  virtual void on_peer_left(sim::SimTime /*t*/, PeerId /*remote*/) {}

  /// Full message log (both directions).
  virtual void on_message_sent(sim::SimTime /*t*/, PeerId /*to*/,
                               const wire::Message& /*msg*/) {}
  virtual void on_message_received(sim::SimTime /*t*/, PeerId /*from*/,
                                   const wire::Message& /*msg*/) {}

  /// Local interest in a remote peer changed.
  virtual void on_interest_change(sim::SimTime /*t*/, PeerId /*remote*/,
                                  bool /*interested*/) {}
  /// The remote peer's interest in the local peer changed.
  virtual void on_remote_interest_change(sim::SimTime /*t*/,
                                         PeerId /*remote*/,
                                         bool /*interested*/) {}

  /// Local peer (un)choked a remote peer. `unchoked` true = unchoke.
  virtual void on_local_choke_change(sim::SimTime /*t*/, PeerId /*remote*/,
                                     bool /*unchoked*/) {}
  /// A remote peer (un)choked the local peer.
  virtual void on_remote_choke_change(sim::SimTime /*t*/, PeerId /*remote*/,
                                      bool /*unchoked*/) {}

  /// One choke-algorithm round completed; `unchoked` is the new active
  /// selection. `seed_state` says which algorithm ran.
  virtual void on_choke_round(sim::SimTime /*t*/, bool /*seed_state*/,
                              const std::vector<PeerId>& /*unchoked*/) {}

  /// Data-plane events.
  virtual void on_block_received(sim::SimTime /*t*/, PeerId /*from*/,
                                 wire::BlockRef /*block*/,
                                 std::uint32_t /*bytes*/) {}
  virtual void on_block_uploaded(sim::SimTime /*t*/, PeerId /*to*/,
                                 wire::BlockRef /*block*/,
                                 std::uint32_t /*bytes*/) {}
  virtual void on_piece_complete(sim::SimTime /*t*/,
                                 wire::PieceIndex /*piece*/) {}

  /// A completed piece failed hash verification and was discarded.
  virtual void on_piece_failed(sim::SimTime /*t*/,
                               wire::PieceIndex /*piece*/) {}

  /// End game mode engaged (logged once).
  virtual void on_end_game(sim::SimTime /*t*/) {}

  /// The local peer completed the content and entered seed state.
  virtual void on_became_seed(sim::SimTime /*t*/) {}
};

/// Swarm-scope observer: the same callback stream as PeerObserver, but
/// every callback carries the id of the observed peer (`self`) so one
/// instance can subscribe to many peers at once through the swarm's
/// ObserverHub. No-op base like PeerObserver; implementations must stay
/// strictly passive (no event scheduling, no RNG draws).
class SwarmObserver {
 public:
  virtual ~SwarmObserver() = default;

  virtual void on_start(PeerId /*self*/, sim::SimTime /*t*/) {}
  virtual void on_stop(PeerId /*self*/, sim::SimTime /*t*/) {}
  virtual void on_peer_joined(PeerId /*self*/, sim::SimTime /*t*/,
                              PeerId /*remote*/) {}
  virtual void on_peer_left(PeerId /*self*/, sim::SimTime /*t*/,
                            PeerId /*remote*/) {}
  virtual void on_message_sent(PeerId /*self*/, sim::SimTime /*t*/,
                               PeerId /*to*/, const wire::Message& /*msg*/) {}
  virtual void on_message_received(PeerId /*self*/, sim::SimTime /*t*/,
                                   PeerId /*from*/,
                                   const wire::Message& /*msg*/) {}
  virtual void on_interest_change(PeerId /*self*/, sim::SimTime /*t*/,
                                  PeerId /*remote*/, bool /*interested*/) {}
  virtual void on_remote_interest_change(PeerId /*self*/, sim::SimTime /*t*/,
                                         PeerId /*remote*/,
                                         bool /*interested*/) {}
  virtual void on_local_choke_change(PeerId /*self*/, sim::SimTime /*t*/,
                                     PeerId /*remote*/, bool /*unchoked*/) {}
  virtual void on_remote_choke_change(PeerId /*self*/, sim::SimTime /*t*/,
                                      PeerId /*remote*/, bool /*unchoked*/) {}
  virtual void on_choke_round(PeerId /*self*/, sim::SimTime /*t*/,
                              bool /*seed_state*/,
                              const std::vector<PeerId>& /*unchoked*/) {}
  virtual void on_block_received(PeerId /*self*/, sim::SimTime /*t*/,
                                 PeerId /*from*/, wire::BlockRef /*block*/,
                                 std::uint32_t /*bytes*/) {}
  virtual void on_block_uploaded(PeerId /*self*/, sim::SimTime /*t*/,
                                 PeerId /*to*/, wire::BlockRef /*block*/,
                                 std::uint32_t /*bytes*/) {}
  virtual void on_piece_complete(PeerId /*self*/, sim::SimTime /*t*/,
                                 wire::PieceIndex /*piece*/) {}
  virtual void on_piece_failed(PeerId /*self*/, sim::SimTime /*t*/,
                               wire::PieceIndex /*piece*/) {}
  virtual void on_end_game(PeerId /*self*/, sim::SimTime /*t*/) {}
  virtual void on_became_seed(PeerId /*self*/, sim::SimTime /*t*/) {}
};

/// Adapts one peer's PeerObserver callback stream onto a SwarmObserver,
/// stamping the observed peer's id onto every callback. The ObserverHub
/// materializes one per (peer, swarm observer) subscription.
class PeerScopedObserver final : public PeerObserver {
 public:
  PeerScopedObserver(PeerId self, SwarmObserver* target)
      : self_(self), target_(target) {}

  [[nodiscard]] SwarmObserver* target() const { return target_; }

  void on_start(sim::SimTime t) override { target_->on_start(self_, t); }
  void on_stop(sim::SimTime t) override { target_->on_stop(self_, t); }
  void on_peer_joined(sim::SimTime t, PeerId remote) override {
    target_->on_peer_joined(self_, t, remote);
  }
  void on_peer_left(sim::SimTime t, PeerId remote) override {
    target_->on_peer_left(self_, t, remote);
  }
  void on_message_sent(sim::SimTime t, PeerId to,
                       const wire::Message& msg) override {
    target_->on_message_sent(self_, t, to, msg);
  }
  void on_message_received(sim::SimTime t, PeerId from,
                           const wire::Message& msg) override {
    target_->on_message_received(self_, t, from, msg);
  }
  void on_interest_change(sim::SimTime t, PeerId remote,
                          bool interested) override {
    target_->on_interest_change(self_, t, remote, interested);
  }
  void on_remote_interest_change(sim::SimTime t, PeerId remote,
                                 bool interested) override {
    target_->on_remote_interest_change(self_, t, remote, interested);
  }
  void on_local_choke_change(sim::SimTime t, PeerId remote,
                             bool unchoked) override {
    target_->on_local_choke_change(self_, t, remote, unchoked);
  }
  void on_remote_choke_change(sim::SimTime t, PeerId remote,
                              bool unchoked) override {
    target_->on_remote_choke_change(self_, t, remote, unchoked);
  }
  void on_choke_round(sim::SimTime t, bool seed_state,
                      const std::vector<PeerId>& unchoked) override {
    target_->on_choke_round(self_, t, seed_state, unchoked);
  }
  void on_block_received(sim::SimTime t, PeerId from, wire::BlockRef block,
                         std::uint32_t bytes) override {
    target_->on_block_received(self_, t, from, block, bytes);
  }
  void on_block_uploaded(sim::SimTime t, PeerId to, wire::BlockRef block,
                         std::uint32_t bytes) override {
    target_->on_block_uploaded(self_, t, to, block, bytes);
  }
  void on_piece_complete(sim::SimTime t, wire::PieceIndex piece) override {
    target_->on_piece_complete(self_, t, piece);
  }
  void on_piece_failed(sim::SimTime t, wire::PieceIndex piece) override {
    target_->on_piece_failed(self_, t, piece);
  }
  void on_end_game(sim::SimTime t) override { target_->on_end_game(self_, t); }
  void on_became_seed(sim::SimTime t) override {
    target_->on_became_seed(self_, t);
  }

 private:
  PeerId self_;
  SwarmObserver* target_;
};

}  // namespace swarmlab::peer
