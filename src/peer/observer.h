// Instrumentation hook: the paper's "instrumented client" (§III-C) logs
// every message, every choke-algorithm state change, the rate estimations
// and the important protocol events. A PeerObserver receives exactly that
// stream from the peer it is attached to.
#pragma once

#include <vector>

#include "peer/types.h"
#include "sim/types.h"
#include "wire/geometry.h"
#include "wire/messages.h"

namespace swarmlab::peer {

/// No-op base; the instrument library overrides what it needs.
class PeerObserver {
 public:
  virtual ~PeerObserver() = default;

  /// The peer joined the torrent.
  virtual void on_start(sim::SimTime /*t*/) {}
  /// The peer left the torrent.
  virtual void on_stop(sim::SimTime /*t*/) {}

  /// A remote peer entered / left the local peer set.
  virtual void on_peer_joined(sim::SimTime /*t*/, PeerId /*remote*/) {}
  virtual void on_peer_left(sim::SimTime /*t*/, PeerId /*remote*/) {}

  /// Full message log (both directions).
  virtual void on_message_sent(sim::SimTime /*t*/, PeerId /*to*/,
                               const wire::Message& /*msg*/) {}
  virtual void on_message_received(sim::SimTime /*t*/, PeerId /*from*/,
                                   const wire::Message& /*msg*/) {}

  /// Local interest in a remote peer changed.
  virtual void on_interest_change(sim::SimTime /*t*/, PeerId /*remote*/,
                                  bool /*interested*/) {}
  /// The remote peer's interest in the local peer changed.
  virtual void on_remote_interest_change(sim::SimTime /*t*/,
                                         PeerId /*remote*/,
                                         bool /*interested*/) {}

  /// Local peer (un)choked a remote peer. `unchoked` true = unchoke.
  virtual void on_local_choke_change(sim::SimTime /*t*/, PeerId /*remote*/,
                                     bool /*unchoked*/) {}
  /// A remote peer (un)choked the local peer.
  virtual void on_remote_choke_change(sim::SimTime /*t*/, PeerId /*remote*/,
                                      bool /*unchoked*/) {}

  /// One choke-algorithm round completed; `unchoked` is the new active
  /// selection. `seed_state` says which algorithm ran.
  virtual void on_choke_round(sim::SimTime /*t*/, bool /*seed_state*/,
                              const std::vector<PeerId>& /*unchoked*/) {}

  /// Data-plane events.
  virtual void on_block_received(sim::SimTime /*t*/, PeerId /*from*/,
                                 wire::BlockRef /*block*/,
                                 std::uint32_t /*bytes*/) {}
  virtual void on_block_uploaded(sim::SimTime /*t*/, PeerId /*to*/,
                                 wire::BlockRef /*block*/,
                                 std::uint32_t /*bytes*/) {}
  virtual void on_piece_complete(sim::SimTime /*t*/,
                                 wire::PieceIndex /*piece*/) {}

  /// A completed piece failed hash verification and was discarded.
  virtual void on_piece_failed(sim::SimTime /*t*/,
                               wire::PieceIndex /*piece*/) {}

  /// End game mode engaged (logged once).
  virtual void on_end_game(sim::SimTime /*t*/) {}

  /// The local peer completed the content and entered seed state.
  virtual void on_became_seed(sim::SimTime /*t*/) {}
};

}  // namespace swarmlab::peer
