#include "peer/peer_set_manager.h"

#include <algorithm>

#include "peer/download_scheduler.h"
#include "peer/observer.h"
#include "peer/super_seed_policy.h"
#include "peer/upload_servicer.h"
#include "sim/simulation.h"

namespace swarmlab::peer {

namespace {

/// Minimum spacing between need-more-peers tracker announces.
constexpr double kRefillCooldown = 60.0;

}  // namespace

// --- lifecycle -------------------------------------------------------------

void PeerSetManager::start() {
  announce(AnnounceEvent::kStarted);
  schedule_announce();
}

void PeerSetManager::start_liveness() { schedule_liveness_tick(); }

void PeerSetManager::cancel_timers() {
  if (announce_event_ != 0) ctx_.fabric.simulation().cancel(announce_event_);
  if (announce_retry_event_ != 0) {
    ctx_.fabric.simulation().cancel(announce_retry_event_);
  }
  if (liveness_event_ != 0) ctx_.fabric.simulation().cancel(liveness_event_);
  announce_event_ = 0;
  announce_retry_event_ = 0;
  liveness_event_ = 0;
}

// --- connection admission --------------------------------------------------

bool PeerSetManager::accepts_connection(PeerId from) const {
  return ctx_.active() && !ctx_.conns.contains(from) &&
         !banned_.contains(from) &&
         ctx_.conns.size() < ctx_.cfg.params.max_peer_set;
}

void PeerSetManager::on_connected(PeerId remote, bool initiated_by_us) {
  if (!ctx_.active() || ctx_.conns.contains(remote)) return;
  Connection conn;
  conn.remote = remote;
  conn.initiated_by_us = initiated_by_us;
  conn.connected_at = ctx_.now();
  conn.last_seen = ctx_.now();
  conn.last_sent = ctx_.now();
  conn.remote_have = core::Bitfield(ctx_.geo.num_pieces());
  Connection& inserted = ctx_.conns.insert(std::move(conn));
  if (!ctx_.is_seed()) {
    ctx_.max_peer_set_leecher =
        std::max(ctx_.max_peer_set_leecher, ctx_.conns.size());
  }
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_peer_joined(ctx_.now(), remote);
  }
  if (mods_.super_seed != nullptr) {
    // Super seeding: advertise nothing; reveal pieces one at a time.
    mods_.super_seed->reveal_next(inserted);
  } else if (ctx_.cfg.params.fast_extension && ctx_.have.complete()) {
    ctx_.send(remote, wire::HaveAllMsg{});
  } else if (ctx_.cfg.params.fast_extension && ctx_.have.none()) {
    ctx_.send(remote, wire::HaveNoneMsg{});
  } else if (ctx_.have.count() > 0) {
    ctx_.send(remote, wire::BitfieldMsg{ctx_.have.bits()});
  }
}

void PeerSetManager::ban(PeerId remote) {
  banned_.insert(remote);
  if (ctx_.conns.contains(remote)) {
    ctx_.fabric.disconnect(ctx_.cfg.id, remote);
  }
}

std::size_t PeerSetManager::initiated_connections() const {
  std::size_t n = 0;
  for (const Connection& conn : ctx_.conns) {
    if (conn.initiated_by_us) ++n;
  }
  return n;
}

// --- tracker ---------------------------------------------------------------

void PeerSetManager::schedule_announce() {
  announce_event_ = ctx_.fabric.simulation().schedule_in(
      ctx_.cfg.params.tracker_reannounce_interval, [this] {
        if (!ctx_.active()) return;
        announce(AnnounceEvent::kRegular);
        schedule_announce();
      });
}

void PeerSetManager::announce(AnnounceEvent event) {
  const AnnounceResult result = ctx_.fabric.announce(ctx_.cfg.id, event);
  if (!result.ok) {
    // Tracker outage. A stopping peer gives up (as a real client's final
    // announce does); everyone else retries with exponential backoff.
    ++announce_failures_;
    if (event != AnnounceEvent::kStopped) schedule_announce_retry();
    return;
  }
  announce_backoff_level_ = 0;
  if (event == AnnounceEvent::kStopped) return;
  initiate_connections(result.peers);
}

void PeerSetManager::schedule_announce_retry() {
  if (announce_retry_event_ != 0) return;  // one pending retry at a time
  const std::uint32_t level = std::min<std::uint32_t>(
      announce_backoff_level_, 10);  // 15 s * 2^10 already beyond any cap
  double delay = ctx_.cfg.params.announce_retry_base *
                 static_cast<double>(std::uint64_t{1} << level);
  delay = std::min(delay, ctx_.cfg.params.announce_retry_max);
  // +/-25% jitter desynchronizes the retry storm when an outage ends.
  // This draw is on the main simulation Rng, which is safe for the
  // determinism contract: the failure path is unreachable unless a fault
  // plan is active.
  delay *= ctx_.fabric.simulation().rng().uniform(0.75, 1.25);
  ++announce_backoff_level_;
  announce_retry_event_ = ctx_.fabric.simulation().schedule_in(delay, [this] {
    announce_retry_event_ = 0;
    if (!ctx_.active()) return;
    announce(AnnounceEvent::kRegular);
  });
}

void PeerSetManager::maybe_refill_peer_set() {
  if (ctx_.conns.size() >= ctx_.cfg.params.min_peer_set) return;
  if (ctx_.now() - last_refill_announce_ < kRefillCooldown) return;
  last_refill_announce_ = ctx_.now();
  announce(AnnounceEvent::kRegular);
}

void PeerSetManager::initiate_connections(
    const std::vector<PeerId>& candidates) {
  std::size_t initiated = initiated_connections();
  for (const PeerId c : candidates) {
    if (ctx_.conns.size() >= ctx_.cfg.params.max_peer_set) break;
    if (initiated >= ctx_.cfg.params.max_initiated) break;
    if (c == ctx_.cfg.id || ctx_.conns.contains(c) || banned_.contains(c)) {
      continue;
    }
    ctx_.fabric.connect(ctx_.cfg.id, c);
    ++initiated;  // optimistic: failed attempts free the slot via conns
  }
}

// --- liveness timers -------------------------------------------------------

void PeerSetManager::schedule_liveness_tick() {
  liveness_event_ = ctx_.fabric.simulation().schedule_in(
      ctx_.cfg.params.liveness_check_interval,
      [this] { run_liveness_tick(); });
}

void PeerSetManager::run_liveness_tick() {
  if (!ctx_.active()) return;
  const double t = ctx_.now();
  std::vector<PeerId> ghosts;
  bool blocks_freed = false;
  for (Connection& conn : ctx_.conns) {
    // Silence detection: a peer that crashed (or whose link is wholly
    // lossy) sends nothing — not even keepalives — and gets evicted.
    if (t - conn.last_seen > ctx_.cfg.params.silence_timeout) {
      ghosts.push_back(conn.remote);
      continue;
    }
    // Keepalive: mainline sends one after keepalive_interval of tx
    // silence so a healthy-but-quiet link never trips the remote's
    // silence timeout.
    if (t - conn.last_sent >= ctx_.cfg.params.keepalive_interval) {
      ctx_.send(conn.remote, wire::KeepAliveMsg{});
    }
    // Request timeout: an unchoked link that stopped delivering returns
    // its outstanding blocks to the picker for re-request elsewhere.
    blocks_freed = mods_.download->check_request_timeout(conn, t) ||
                   blocks_freed;
    mods_.upload->recover_wedged_upload(conn);
  }
  for (const PeerId r : ghosts) {
    ++ghosts_evicted_;
    blocks_freed = true;  // on_disconnected released its outstanding
    ctx_.fabric.disconnect(ctx_.cfg.id, r);
  }
  if (blocks_freed) mods_.download->refill_all();
  schedule_liveness_tick();
}

}  // namespace swarmlab::peer
