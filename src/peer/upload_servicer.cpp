#include "peer/upload_servicer.h"

#include <algorithm>

#include "net/network.h"
#include "peer/fabric.h"
#include "peer/observer.h"
#include "peer/super_seed_policy.h"

namespace swarmlab::peer {

namespace {

/// Upload requests queued behind the in-flight block are bounded; extra
/// requests are dropped (the remote re-requests after its own timeout /
/// choke cycle — in practice the pipeline depth keeps queues tiny).
constexpr std::size_t kMaxUploadQueue = 256;

}  // namespace

void UploadServicer::handle_request(Connection& conn,
                                    const wire::RequestMsg& msg) {
  if (ctx_.cfg.free_rider) return;  // never serves anyone
  if (conn.am_choking) {
    // Fast Extension: requests that will not be served are rejected
    // explicitly so the requester can re-route without waiting.
    if (ctx_.cfg.params.fast_extension) {
      ctx_.send(conn.remote,
                wire::RejectRequestMsg{msg.piece, msg.begin, msg.length});
    }
    return;  // stale request
  }
  if (msg.piece >= ctx_.geo.num_pieces()) return;
  if (!ctx_.have.has(msg.piece)) return;
  if (mods_.super_seed != nullptr &&
      !mods_.super_seed->allows_request(conn.remote, msg.piece)) {
    return;  // piece not offered to this peer yet
  }
  if (msg.begin % ctx_.geo.block_size() != 0) return;
  const wire::BlockRef block{msg.piece, ctx_.geo.block_at_offset(msg.begin)};
  if (block.block >= ctx_.geo.blocks_in_piece(msg.piece)) return;
  if (msg.length != ctx_.geo.block_bytes(block)) return;
  if (conn.upload_queue.size() >= kMaxUploadQueue) return;
  conn.upload_queue.push_back(QueuedRequest{block, msg.length});
  if (conn.upload_flow == 0) start_next_upload(conn);
}

void UploadServicer::handle_cancel(Connection& conn,
                                   const wire::CancelMsg& msg) {
  const wire::BlockRef block{msg.piece, ctx_.geo.block_at_offset(msg.begin)};
  auto& q = conn.upload_queue;
  q.erase(std::remove_if(
              q.begin(), q.end(),
              [&](const QueuedRequest& r) { return r.block == block; }),
          q.end());
  // An in-flight block is not aborted (it is already in the TCP pipe).
}

void UploadServicer::start_next_upload(Connection& conn) {
  while (!conn.upload_queue.empty()) {
    const QueuedRequest req = conn.upload_queue.front();
    conn.upload_queue.pop_front();
    conn.upload_flow = ctx_.fabric.send_block(ctx_.cfg.id, conn.remote,
                                              req.block);
    if (conn.upload_flow != 0) {
      conn.upload_in_flight = req.block;
      return;
    }
  }
}

void UploadServicer::on_block_sent(Connection& conn, wire::BlockRef block,
                                   std::uint32_t bytes) {
  conn.upload_flow = 0;
  conn.upload_rate.add(ctx_.now(), bytes);
  uploaded_ += bytes;
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_block_uploaded(ctx_.now(), conn.remote, block, bytes);
  }
  start_next_upload(conn);
}

void UploadServicer::on_disconnect(Connection& conn) {
  if (conn.upload_flow != 0) {
    ctx_.fabric.network().cancel_flow(conn.upload_flow);
    conn.upload_flow = 0;
  }
}

void UploadServicer::recover_wedged_upload(Connection& conn) {
  if (conn.upload_flow != 0 &&
      !ctx_.fabric.network().has_flow(conn.upload_flow)) {
    conn.upload_flow = 0;
    start_next_upload(conn);
  }
}

}  // namespace swarmlab::peer
