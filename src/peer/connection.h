// Per-remote-peer connection state, one instance per entry in the local
// peer set. Both endpoints hold their own Connection for the same link.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/bitfield.h"
#include "net/fluid_network.h"
#include "peer/types.h"
#include "stats/rate_estimator.h"
#include "wire/geometry.h"

namespace swarmlab::peer {

/// A queued upload request (mirrors wire::RequestMsg).
struct QueuedRequest {
  wire::BlockRef block;
  std::uint32_t bytes = 0;
};

/// The local peer's view of one remote peer.
struct Connection {
  PeerId remote = kNoPeer;
  bool initiated_by_us = false;
  /// When the connection was established (drives the optimistic-unchoke
  /// bootstrap bias for new peers).
  double connected_at = 0.0;

  /// What the remote peer has (from its bitfield + HAVEs).
  core::Bitfield remote_have;

  /// Pieces the remote has that the local peer lacks, maintained
  /// incrementally (interest holds iff missing_count > 0). Avoids an
  /// O(pieces) bitfield scan on every HAVE.
  std::uint32_t missing_count = 0;

  // --- the four protocol flags (paper §II-A) ---
  bool am_choking = true;       ///< we choke them
  bool am_interested = false;   ///< we are interested in them
  bool peer_choking = true;     ///< they choke us
  bool peer_interested = false; ///< they are interested in us

  /// When we last unchoked them (-1 = never); drives the new seed-state
  /// choke ordering.
  double last_unchoke_time = -1.0;

  // --- liveness (only consulted when params.liveness_timers is on) ---
  /// When we last heard anything from them (any message; set to the
  /// connect time on establishment).
  double last_seen = -1.0;
  /// When we last sent them anything (drives keepalive sends).
  double last_sent = -1.0;
  /// When this link last hit the request timeout (-1: never); a recently
  /// timed-out link is skipped by fill_requests so the freed blocks go to
  /// other peers first. Cleared when a block arrives.
  double last_request_timeout = -1.0;

  // --- rate estimation (mainline: trailing 20 s window) ---
  stats::RateEstimator download_rate{20.0};  ///< bytes they send us
  stats::RateEstimator upload_rate{20.0};    ///< bytes we send them

  // --- download side ---
  /// Blocks we requested from them and have not yet received/cancelled.
  std::vector<wire::BlockRef> outstanding;
  /// When the last block arrived from them (-1: never); drives the
  /// anti-snubbing check.
  double last_block_time = -1.0;
  /// When we last sent them a request (reference point for snubbing when
  /// no block has arrived yet).
  double last_request_time = -1.0;

  // --- upload side ---
  /// Requests received from them, waiting behind the in-flight block.
  std::deque<QueuedRequest> upload_queue;
  /// The block currently being transferred to them (0 = none).
  net::FlowId upload_flow = 0;
  wire::BlockRef upload_in_flight{};

  [[nodiscard]] bool has_outstanding(wire::BlockRef b) const {
    for (const auto& r : outstanding) {
      if (r == b) return true;
    }
    return false;
  }
};

}  // namespace swarmlab::peer
