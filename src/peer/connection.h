// Per-remote-peer connection state, one instance per entry in the local
// peer set. Both endpoints hold their own Connection for the same link.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/bitfield.h"
#include "net/types.h"
#include "peer/types.h"
#include "stats/rate_estimator.h"
#include "wire/geometry.h"

namespace swarmlab::peer {

/// A queued upload request (mirrors wire::RequestMsg).
struct QueuedRequest {
  wire::BlockRef block;
  std::uint32_t bytes = 0;
};

/// The local peer's view of one remote peer.
struct Connection {
  PeerId remote = kNoPeer;
  bool initiated_by_us = false;
  /// When the connection was established (drives the optimistic-unchoke
  /// bootstrap bias for new peers).
  double connected_at = 0.0;

  /// What the remote peer has (from its bitfield + HAVEs).
  core::Bitfield remote_have;

  /// Pieces the remote has that the local peer lacks, maintained
  /// incrementally (interest holds iff missing_count > 0). Avoids an
  /// O(pieces) bitfield scan on every HAVE.
  std::uint32_t missing_count = 0;

  // --- the four protocol flags (paper §II-A) ---
  bool am_choking = true;       ///< we choke them
  bool am_interested = false;   ///< we are interested in them
  bool peer_choking = true;     ///< they choke us
  bool peer_interested = false; ///< they are interested in us

  /// When we last unchoked them (-1 = never); drives the new seed-state
  /// choke ordering.
  double last_unchoke_time = -1.0;

  // --- liveness (only consulted when params.liveness_timers is on) ---
  /// When we last heard anything from them (any message; set to the
  /// connect time on establishment).
  double last_seen = -1.0;
  /// When we last sent them anything (drives keepalive sends).
  double last_sent = -1.0;
  /// When this link last hit the request timeout (-1: never); a recently
  /// timed-out link is skipped by fill_requests so the freed blocks go to
  /// other peers first. Cleared when a block arrives.
  double last_request_timeout = -1.0;

  // --- rate estimation (mainline: trailing 20 s window) ---
  stats::RateEstimator download_rate{20.0};  ///< bytes they send us
  stats::RateEstimator upload_rate{20.0};    ///< bytes we send them

  // --- download side ---
  /// Blocks we requested from them and have not yet received/cancelled.
  std::vector<wire::BlockRef> outstanding;
  /// When the last block arrived from them (-1: never); drives the
  /// anti-snubbing check.
  double last_block_time = -1.0;
  /// When we last sent them a request (reference point for snubbing when
  /// no block has arrived yet).
  double last_request_time = -1.0;

  // --- upload side ---
  /// Requests received from them, waiting behind the in-flight block.
  std::deque<QueuedRequest> upload_queue;
  /// The block currently being transferred to them (0 = none).
  net::FlowId upload_flow = 0;
  wire::BlockRef upload_in_flight{};

  [[nodiscard]] bool has_outstanding(wire::BlockRef b) const {
    for (const auto& r : outstanding) {
      if (r == b) return true;
    }
    return false;
  }
};

/// The local peer set, indexed directly by remote PeerId (ids are dense —
/// assigned 1, 2, ... by the swarm and never recycled — so the table is a
/// plain pointer vector). find() is O(1); iteration visits connections in
/// ascending remote id, the same order the ordered map it replaced gave,
/// which choke rounds and broadcasts rely on for deterministic replay.
///
/// Connections are heap-allocated, so a Connection* stays valid across
/// inserts and erases of other entries. Erasing during iteration is safe
/// (the slot nulls in place); inserting during iteration is not.
class ConnectionTable {
 public:
  [[nodiscard]] Connection* find(PeerId remote) {
    return remote >= 1 && remote <= slots_.size() ? slots_[remote - 1].get()
                                                  : nullptr;
  }
  [[nodiscard]] const Connection* find(PeerId remote) const {
    return remote >= 1 && remote <= slots_.size() ? slots_[remote - 1].get()
                                                  : nullptr;
  }
  [[nodiscard]] bool contains(PeerId remote) const {
    return find(remote) != nullptr;
  }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Takes ownership of `conn` (keyed by conn.remote, which must not
  /// already be present). The returned reference is stable for the
  /// connection's lifetime.
  Connection& insert(Connection conn) {
    assert(conn.remote >= 1);
    const std::size_t idx = static_cast<std::size_t>(conn.remote) - 1;
    if (idx >= slots_.size()) slots_.resize(idx + 1);
    assert(slots_[idx] == nullptr);
    slots_[idx] = std::make_unique<Connection>(std::move(conn));
    ++count_;
    return *slots_[idx];
  }

  /// Returns true if `remote` was present.
  bool erase(PeerId remote) {
    if (!contains(remote)) return false;
    slots_[remote - 1].reset();
    --count_;
    return true;
  }

  template <bool Const>
  class Iter {
    using Table = std::conditional_t<Const, const ConnectionTable,
                                     ConnectionTable>;
    using Ref = std::conditional_t<Const, const Connection&, Connection&>;

   public:
    Iter(Table* table, std::size_t idx) : table_(table), idx_(idx) { skip(); }
    Ref operator*() const { return *table_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    bool operator!=(const Iter& other) const { return idx_ != other.idx_; }

   private:
    void skip() {
      while (idx_ < table_->slots_.size() &&
             table_->slots_[idx_] == nullptr) {
        ++idx_;
      }
    }
    Table* table_;
    std::size_t idx_;
  };

  [[nodiscard]] Iter<false> begin() { return {this, 0}; }
  [[nodiscard]] Iter<false> end() { return {this, slots_.size()}; }
  [[nodiscard]] Iter<true> begin() const { return {this, 0}; }
  [[nodiscard]] Iter<true> end() const { return {this, slots_.size()}; }

 private:
  std::vector<std::unique_ptr<Connection>> slots_;  // index = remote - 1
  std::size_t count_ = 0;
};

}  // namespace swarmlab::peer
