#include "peer/download_scheduler.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <vector>

#include "peer/fabric.h"
#include "peer/interest_tracker.h"
#include "peer/observer.h"
#include "peer/peer_set_manager.h"
#include "sim/simulation.h"

namespace swarmlab::peer {

DownloadScheduler::DownloadScheduler(PeerContext& ctx, PeerModules& mods)
    : ctx_(ctx),
      mods_(mods),
      picker_(core::make_picker(ctx.cfg.params.picker, ctx.cfg.params)) {
  // Count the initially unrequested blocks (those of missing pieces).
  for (wire::PieceIndex p = 0; p < ctx_.geo.num_pieces(); ++p) {
    if (!ctx_.have.has(p)) unrequested_blocks_ += ctx_.geo.blocks_in_piece(p);
  }
}

// --- message handlers ------------------------------------------------------

void DownloadScheduler::handle_choke(Connection& conn, bool choked) {
  if (conn.peer_choking == choked) return;
  conn.peer_choking = choked;
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_remote_choke_change(ctx_.now(), conn.remote, !choked);
  }
  if (choked) {
    // Everything outstanding on this link is implicitly dropped by the
    // remote; return the blocks to the pool so other links can fetch
    // them.
    for (const wire::BlockRef b : conn.outstanding) release_request(b);
    conn.outstanding.clear();
  } else {
    fill_requests(conn);
  }
}

void DownloadScheduler::handle_reject(Connection& conn,
                                      const wire::RejectRequestMsg& msg) {
  const wire::BlockRef block{msg.piece, ctx_.geo.block_at_offset(msg.begin)};
  auto& out = conn.outstanding;
  const auto it = std::find(out.begin(), out.end(), block);
  if (it == out.end()) return;  // stale reject
  out.erase(it);
  release_request(block);
  // Re-route the freed pipeline slot immediately.
  if (conn.am_interested && !conn.peer_choking) fill_requests(conn);
}

void DownloadScheduler::handle_block(Connection& conn,
                                     const wire::PieceMsg& msg) {
  const wire::BlockRef block{msg.piece, ctx_.geo.block_at_offset(msg.begin)};
  const std::uint32_t bytes = ctx_.geo.block_bytes(block);
  conn.download_rate.add(ctx_.now(), bytes);
  conn.last_block_time = ctx_.now();
  conn.last_request_timeout = -1.0;  // the link is delivering again
  downloaded_ += bytes;
  // Without the data plane, the simulator marks blocks from a corrupting
  // sender with a non-empty payload; a real client discovers corruption
  // at the piece hash check, which the data plane performs for real.
  const bool corrupt_marker = ctx_.store == nullptr && !msg.data.empty();
  if (ctx_.store != nullptr) {
    if (msg.data.size() != bytes) return;  // malformed frame: drop
    if (!ctx_.have.has(block.piece)) {
      ctx_.store->put_block(block, std::span<const std::uint8_t>(
                                       msg.data.data(), msg.data.size()));
    }
  }

  // Remove from this link's outstanding set (absent for a stale arrival
  // that raced a choke).
  auto& out = conn.outstanding;
  const auto it = std::find(out.begin(), out.end(), block);
  const bool was_outstanding = it != out.end();
  if (was_outstanding) out.erase(it);

  if (ctx_.observer != nullptr) {
    ctx_.observer->on_block_received(ctx_.now(), conn.remote, block, bytes);
  }

  if (ctx_.have.has(block.piece)) {
    // Piece already complete (end-game duplicate); keep pipeline moving.
    fill_requests(conn);
    return;
  }
  auto prog_it = active_pieces_.find(block.piece);
  if (prog_it == active_pieces_.end()) {
    // Stale arrival for a piece we released entirely; (re)create progress.
    PieceProgress prog;
    prog.requested_count.assign(ctx_.geo.blocks_in_piece(block.piece), 0);
    prog.received.assign(ctx_.geo.blocks_in_piece(block.piece), false);
    prog_it = active_pieces_.emplace(block.piece, std::move(prog)).first;
  }
  PieceProgress& prog = prog_it->second;
  if (prog.received[block.block]) {
    // Duplicate (end game): data discarded.
    fill_requests(conn);
    return;
  }
  if (was_outstanding) {
    assert(prog.requested_count[block.block] > 0);
    --prog.requested_count[block.block];
  } else if (prog.requested_count[block.block] == 0) {
    // The block had returned to the unrequested pool; it is now received.
    assert(unrequested_blocks_ > 0);
    --unrequested_blocks_;
  }
  prog.received[block.block] = true;
  ++prog.received_blocks;
  prog.tainted = prog.tainted || corrupt_marker;
  prog.contributors.insert(conn.remote);

  // End game: cancel this block everywhere else it is outstanding.
  if (end_game_active_) {
    for (Connection& other : ctx_.conns) {
      if (other.remote == conn.remote) continue;
      auto& oo = other.outstanding;
      const auto oit = std::find(oo.begin(), oo.end(), block);
      if (oit != oo.end()) {
        oo.erase(oit);
        auto pit = active_pieces_.find(block.piece);
        if (pit != active_pieces_.end() &&
            pit->second.requested_count[block.block] > 0) {
          --pit->second.requested_count[block.block];
        }
        ctx_.send(other.remote,
                  wire::CancelMsg{block.piece, ctx_.geo.block_offset(block),
                                  ctx_.geo.block_bytes(block)});
      }
    }
  }

  const PeerId remote = conn.remote;
  if (prog.received_blocks == ctx_.geo.blocks_in_piece(block.piece)) {
    // May transition to seed state and disconnect `conn`; re-resolve.
    complete_piece(block.piece);
  }
  if (Connection* still = ctx_.find_conn(remote);
      still != nullptr && ctx_.active()) {
    fill_requests(*still);
  }
}

// --- request pipeline ------------------------------------------------------

void DownloadScheduler::mark_requested(wire::BlockRef block) {
  PieceProgress& prog = active_pieces_.at(block.piece);
  if (prog.requested_count[block.block] == 0 && !prog.received[block.block]) {
    assert(unrequested_blocks_ > 0);
    --unrequested_blocks_;
  }
  ++prog.requested_count[block.block];
}

void DownloadScheduler::release_request(wire::BlockRef block) {
  const auto it = active_pieces_.find(block.piece);
  if (it == active_pieces_.end()) return;  // piece completed meanwhile
  PieceProgress& prog = it->second;
  if (prog.requested_count[block.block] == 0) return;
  --prog.requested_count[block.block];
  if (prog.requested_count[block.block] == 0 && !prog.received[block.block]) {
    ++unrequested_blocks_;
  }
}

void DownloadScheduler::fill_requests(Connection& conn) {
  if (!conn.am_interested || conn.peer_choking) return;
  if (ctx_.cfg.params.liveness_timers && conn.last_request_timeout >= 0.0 &&
      ctx_.now() - conn.last_request_timeout <
          ctx_.cfg.params.request_timeout) {
    // This link just timed out: leave the returned blocks for other
    // peers instead of immediately re-pinning them to a silent link.
    return;
  }
  while (conn.outstanding.size() < ctx_.cfg.params.pipeline_depth) {
    const auto block = next_block(conn);
    if (!block.has_value()) break;
    conn.outstanding.push_back(*block);
    conn.last_request_time = ctx_.now();
    ctx_.send(conn.remote,
              wire::RequestMsg{block->piece, ctx_.geo.block_offset(*block),
                               ctx_.geo.block_bytes(*block)});
  }
}

std::optional<wire::BlockRef> DownloadScheduler::next_block(Connection& conn) {
  // Strict priority: finish partially received pieces first so they can
  // be served onward as soon as possible (paper §II-C.1).
  if (ctx_.cfg.params.strict_priority) {
    if (const auto b = next_partial_block(conn); b.has_value()) {
      mark_requested(*b);
      return b;
    }
  }
  if (const auto b = start_new_piece(conn); b.has_value()) {
    mark_requested(*b);
    return b;
  }
  if (!ctx_.cfg.params.strict_priority) {
    if (const auto b = next_partial_block(conn); b.has_value()) {
      mark_requested(*b);
      return b;
    }
  }
  // End game mode: everything is requested; duplicate the stragglers.
  if (ctx_.cfg.params.end_game && unrequested_blocks_ == 0 &&
      !ctx_.have.complete()) {
    if (!end_game_active_) {
      end_game_active_ = true;
      if (ctx_.observer != nullptr) ctx_.observer->on_end_game(ctx_.now());
    }
    return next_end_game_block(conn);  // not mark_requested: already counted
  }
  return std::nullopt;
}

std::optional<wire::BlockRef> DownloadScheduler::next_partial_block(
    const Connection& conn) {
  for (const auto& [piece, prog] : active_pieces_) {
    if (ctx_.have.has(piece) || !conn.remote_have.has(piece)) continue;
    if (prog.exclusive_source.has_value() &&
        *prog.exclusive_source != conn.remote) {
      continue;  // single-source retry: only its assigned peer may fetch
    }
    const std::uint32_t nblocks = ctx_.geo.blocks_in_piece(piece);
    for (wire::BlockIndex b = 0; b < nblocks; ++b) {
      if (!prog.received[b] && prog.requested_count[b] == 0) {
        return wire::BlockRef{piece, b};
      }
    }
  }
  return std::nullopt;
}

std::optional<wire::BlockRef> DownloadScheduler::start_new_piece(
    Connection& conn) {
  const std::function<bool(wire::PieceIndex)> startable =
      [this](wire::PieceIndex p) { return !active_pieces_.contains(p); };
  const core::AvailabilityMap& avail =
      ctx_.cfg.params.picker == core::PickerKind::kGlobalRarest
          ? ctx_.fabric.global_availability()
          : ctx_.availability;
  const core::PickContext pctx{ctx_.have, conn.remote_have, avail, startable,
                               ctx_.have.count()};
  const auto piece = picker_->pick(pctx, ctx_.fabric.simulation().rng());
  if (!piece.has_value()) return std::nullopt;
  PieceProgress prog;
  prog.requested_count.assign(ctx_.geo.blocks_in_piece(*piece), 0);
  prog.received.assign(ctx_.geo.blocks_in_piece(*piece), false);
  if (retry_exclusive_.contains(*piece)) {
    // Previously failed verification with multiple sources: fetch it
    // entirely from this peer so a repeat failure is attributable.
    prog.exclusive_source = conn.remote;
  }
  active_pieces_.emplace(*piece, std::move(prog));
  return wire::BlockRef{*piece, 0};
}

std::optional<wire::BlockRef> DownloadScheduler::next_end_game_block(
    Connection& conn) {
  std::vector<wire::BlockRef> candidates;
  for (const auto& [piece, prog] : active_pieces_) {
    if (ctx_.have.has(piece) || !conn.remote_have.has(piece)) continue;
    if (prog.exclusive_source.has_value() &&
        *prog.exclusive_source != conn.remote) {
      continue;  // end-game duplication would break attribution
    }
    const std::uint32_t nblocks = ctx_.geo.blocks_in_piece(piece);
    for (wire::BlockIndex b = 0; b < nblocks; ++b) {
      const wire::BlockRef ref{piece, b};
      if (!prog.received[b] && !conn.has_outstanding(ref)) {
        candidates.push_back(ref);
      }
    }
  }
  if (candidates.empty()) return std::nullopt;
  const wire::BlockRef pick =
      candidates[ctx_.fabric.simulation().rng().index(candidates.size())];
  // Track multiplicity so releases on choke/disconnect stay balanced.
  ++active_pieces_.at(pick.piece).requested_count[pick.block];
  return pick;
}

// --- piece completion ------------------------------------------------------

void DownloadScheduler::complete_piece(wire::PieceIndex piece) {
  // Hash verification before committing (a real client checks the piece
  // SHA-1 against the metainfo; only verified pieces may be served).
  if (ctx_.cfg.params.verify_pieces) {
    const auto it = active_pieces_.find(piece);
    const bool marker_bad = it != active_pieces_.end() && it->second.tainted;
    const bool hash_bad =
        ctx_.store != nullptr && !ctx_.store->verify_piece(piece);
    if (marker_bad || hash_bad) {
      discard_piece(piece);
      return;
    }
  }
  active_pieces_.erase(piece);
  retry_exclusive_.erase(piece);
  ctx_.have.set(piece);
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_piece_complete(ctx_.now(), piece);
  }
  ctx_.fabric.broadcast_have(ctx_.cfg.id, piece);
  // Interest in some peers may vanish now.
  mods_.interest->on_local_piece_complete(piece);
  if (ctx_.have.complete()) become_seed();
}

void DownloadScheduler::discard_piece(wire::PieceIndex piece) {
  const auto it = active_pieces_.find(piece);
  if (it == active_pieces_.end()) return;
  ++corrupted_pieces_;
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_piece_failed(ctx_.now(), piece);
  }

  // Blocks of this piece currently counted as unrequested (the rest were
  // consumed from the pool by requests/receipts and must be returned).
  const std::uint32_t nblocks = ctx_.geo.blocks_in_piece(piece);
  std::uint32_t pool_now = 0;
  for (wire::BlockIndex b = 0; b < nblocks; ++b) {
    if (it->second.requested_count[b] == 0 && !it->second.received[b]) {
      ++pool_now;
    }
  }
  const std::set<PeerId> contributors = std::move(it->second.contributors);
  active_pieces_.erase(it);
  unrequested_blocks_ += nblocks - pool_now;
  if (ctx_.store != nullptr) ctx_.store->drop_piece(piece);

  // Withdraw every outstanding request for the piece (in-flight data may
  // still arrive; it is handled as a fresh stale arrival).
  for (Connection& conn : ctx_.conns) {
    auto& out = conn.outstanding;
    for (auto oit = out.begin(); oit != out.end();) {
      if (oit->piece == piece) {
        ctx_.send(conn.remote,
                  wire::CancelMsg{piece, ctx_.geo.block_offset(*oit),
                                  ctx_.geo.block_bytes(*oit)});
        oit = out.erase(oit);
      } else {
        ++oit;
      }
    }
  }

  // Banning policy (cf. libtorrent's smart ban): a piece that came
  // entirely from one peer and failed verification proves that peer
  // corrupt — ban it permanently. A multi-source failure proves nothing
  // about any single contributor, so the piece is flagged for
  // single-source retry, which isolates the polluter on the next pass.
  if (ctx_.cfg.params.ban_corrupt_sources && contributors.size() == 1) {
    const PeerId culprit = *contributors.begin();
    retry_exclusive_.erase(piece);
    mods_.peer_set->ban(culprit);
  } else {
    retry_exclusive_.insert(piece);
  }
}

void DownloadScheduler::become_seed() {
  ctx_.completion_time = ctx_.now();
  end_game_active_ = false;
  if (ctx_.observer != nullptr) {
    ctx_.observer->on_became_seed(ctx_.completion_time);
  }
  mods_.peer_set->announce(AnnounceEvent::kCompleted);
  // A new seed closes its connections to all the seeds (paper §IV-A.2.b).
  std::vector<PeerId> seeds;
  for (const Connection& conn : ctx_.conns) {
    if (conn.remote_have.complete()) seeds.push_back(conn.remote);
  }
  for (const PeerId r : seeds) ctx_.fabric.disconnect(ctx_.cfg.id, r);
}

// --- lifecycle hooks -------------------------------------------------------

void DownloadScheduler::on_disconnect(Connection& conn) {
  // Give outstanding requests back to the pool.
  for (const wire::BlockRef b : conn.outstanding) release_request(b);
  conn.outstanding.clear();
}

void DownloadScheduler::clear_exclusive_source(PeerId remote) {
  for (auto& [piece, prog] : active_pieces_) {
    if (prog.exclusive_source == remote) prog.exclusive_source.reset();
  }
}

bool DownloadScheduler::check_request_timeout(Connection& conn, double t) {
  if (conn.outstanding.empty() || conn.peer_choking) return false;
  const double ref = std::max(conn.last_block_time, conn.last_request_time);
  if (ref < 0.0 || t - ref <= ctx_.cfg.params.request_timeout) return false;
  timed_out_requests_ += conn.outstanding.size();
  for (const wire::BlockRef b : conn.outstanding) release_request(b);
  conn.outstanding.clear();
  conn.last_request_timeout = t;
  return true;
}

void DownloadScheduler::refill_all() {
  // Route the returned blocks through links with pipeline room.
  for (Connection& conn : ctx_.conns) {
    if (conn.am_interested && !conn.peer_choking) fill_requests(conn);
  }
}

}  // namespace swarmlab::peer
