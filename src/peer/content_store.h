// In-memory content storage for the optional data plane.
//
// The simulator normally exchanges empty PieceMsg payloads (bandwidth is
// modeled by the fluid network; integrity by a taint marker). With the
// data plane enabled, every block carries its actual bytes, pieces are
// assembled here, and completion is gated on the real SHA-1 from the
// .torrent metainfo — exactly a real client's write path.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "wire/metainfo.h"

namespace swarmlab::peer {

/// Per-peer piece/block byte storage with hash verification.
class ContentStore {
 public:
  explicit ContentStore(const wire::Metainfo& meta)
      : meta_(&meta), geo_(meta.geometry()) {}

  /// Loads the full synthetic content (a seed's disk state).
  void fill_complete();

  /// Loads one piece (e.g., after verification).
  void put_piece(wire::PieceIndex piece, std::vector<std::uint8_t> bytes);

  /// Writes one received block into its piece buffer.
  void put_block(wire::BlockRef block, std::span<const std::uint8_t> data);

  /// Reads one block for upload. Precondition: the piece's bytes are
  /// present (the caller owns the have-bitfield invariant).
  [[nodiscard]] std::vector<std::uint8_t> read_block(
      wire::BlockRef block) const;

  /// Verifies the assembled piece against the metainfo hash.
  [[nodiscard]] bool verify_piece(wire::PieceIndex piece) const;

  /// Drops a piece buffer (after a failed verification).
  void drop_piece(wire::PieceIndex piece) { pieces_.erase(piece); }

  [[nodiscard]] bool has_piece_bytes(wire::PieceIndex piece) const {
    return pieces_.contains(piece);
  }

  /// Total bytes currently buffered (diagnostics).
  [[nodiscard]] std::size_t stored_bytes() const;

 private:
  const wire::Metainfo* meta_;
  wire::ContentGeometry geo_;
  std::map<wire::PieceIndex, std::vector<std::uint8_t>> pieces_;
};

}  // namespace swarmlab::peer
