// The environment a peer lives in.
//
// Peers never hold pointers to each other; all interaction goes through
// the Fabric (implemented by swarm::Swarm), which routes control messages
// with latency, carries block data over the fluid network, brokers
// connections, and fronts the tracker.
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"
#include "peer/types.h"
#include "wire/geometry.h"
#include "wire/messages.h"
#include "wire/metainfo.h"

namespace swarmlab::core {
class AvailabilityMap;
}  // namespace swarmlab::core

namespace swarmlab::net {
class Network;
}  // namespace swarmlab::net

namespace swarmlab::sim {
class Simulation;
}  // namespace swarmlab::sim

namespace swarmlab::peer {

/// Tracker announce verdict: the peers handed back.
struct AnnounceResult {
  std::vector<PeerId> peers;
  /// False when the announce failed (tracker outage): `peers` is empty
  /// and the peer retries with exponential backoff.
  bool ok = true;
};

/// What a tracker announce reports (paper §II-B).
enum class AnnounceEvent { kStarted, kRegular, kCompleted, kStopped };

/// Services the swarm provides to each peer.
class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual sim::Simulation& simulation() = 0;

  /// The underlying network backend (e.g., to cancel an upload flow when
  /// a connection closes mid-transfer).
  virtual net::Network& network() = 0;

  /// Delivers `msg` to `to` after the control latency. Delivery is
  /// dropped silently if either endpoint left the torrent meanwhile.
  virtual void send_control(PeerId from, PeerId to, wire::Message msg) = 0;

  /// Broadcasts HAVE(piece) from `from` to all its current connections in
  /// a single scheduled delivery (equivalent to per-peer sends; batched
  /// for event economy).
  virtual void broadcast_have(PeerId from, wire::PieceIndex piece) = 0;

  /// Starts the data transfer of one block. The receiver gets the
  /// corresponding PieceMsg on completion; the sender gets
  /// Peer::on_block_sent. Returns the network flow id.
  virtual net::FlowId send_block(PeerId from, PeerId to,
                                 wire::BlockRef block) = 0;

  /// Attempts to open a connection; if the target accepts, both sides get
  /// Peer::on_connected after the handshake latency.
  virtual void connect(PeerId from, PeerId to) = 0;

  /// Tears down a connection; both sides get Peer::on_disconnected.
  virtual void disconnect(PeerId a, PeerId b) = 0;

  /// Tracker announce; returns a random subset of current torrent members
  /// (paper: 50 peers).
  virtual AnnounceResult announce(PeerId who, AnnounceEvent event) = 0;

  /// Torrent-wide piece copy counts (the global-knowledge oracle used by
  /// PickerKind::kGlobalRarest; see DESIGN.md A1).
  virtual const core::AvailabilityMap& global_availability() const = 0;

  /// Non-null when the data plane is enabled: peers then exchange real
  /// content bytes and verify pieces against these SHA-1 hashes.
  virtual const wire::Metainfo* metainfo() const { return nullptr; }
};

}  // namespace swarmlab::peer
