#include "peer/super_seed_policy.h"

#include <limits>

namespace swarmlab::peer {

void SuperSeedPolicy::reveal_next(Connection& conn) {
  auto& revealed = revealed_[conn.remote];
  // Offer the piece with the fewest prior offers that this peer has not
  // been offered and has not announced, preferring unconfirmed pieces.
  std::optional<wire::PieceIndex> best;
  std::uint32_t best_score = std::numeric_limits<std::uint32_t>::max();
  for (wire::PieceIndex p = 0; p < ctx_.geo.num_pieces(); ++p) {
    if (revealed.contains(p) || conn.remote_have.has(p)) continue;
    const std::uint32_t score =
        offer_count_[p] * 2 + (confirmed_.contains(p) ? 1 : 0);
    if (score < best_score) {
      best_score = score;
      best = p;
    }
  }
  if (!best.has_value()) return;
  revealed.insert(*best);
  pending_offer_[conn.remote] = *best;
  ++offer_count_[*best];
  ctx_.send(conn.remote, wire::HaveMsg{*best});
}

void SuperSeedPolicy::on_remote_have(wire::PieceIndex piece, PeerId from) {
  confirmed_.insert(piece);
  for (auto& [remote, offer] : pending_offer_) {
    if (!offer.has_value() || *offer != piece) continue;
    // Reveal the next piece once the offered one is confirmed replicated
    // by someone else (or by the offeree itself when it is alone).
    if (remote != from || ctx_.conns.size() <= 1) {
      offer.reset();
      if (Connection* conn = ctx_.find_conn(remote); conn != nullptr) {
        reveal_next(*conn);
      }
    }
  }
}

}  // namespace swarmlab::peer
