// Identifiers shared by the peer and swarm layers.
#pragma once

#include <cstdint>

namespace swarmlab::peer {

/// Swarm-wide peer identity (also used as the choker's PeerKey).
using PeerId = std::uint32_t;

/// Sentinel for "no peer".
inline constexpr PeerId kNoPeer = 0;

}  // namespace swarmlab::peer
