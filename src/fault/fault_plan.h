// FaultPlan: a declarative schedule of environment failures for one
// scenario run.
//
// The plan is plain data carried on swarm::ScenarioConfig; it does
// nothing by itself. A fault::FaultInjector executes it against a running
// swarm, drawing every stochastic choice from its own RNG stream (forked
// from the scenario seed with kFaultRngStream) so that
//  - an all-zero plan leaves the run byte-identical to a build without
//    the fault subsystem (no injector, no extra events, no extra draws);
//  - a faulted run is a pure function of (config, seed), independent of
//    batch worker count.
// See docs/fault_injection.md for the full determinism contract.
//
// Header-only on purpose: swarm::ScenarioConfig embeds a FaultPlan, while
// the injector library (swarmlab_fault) sits *above* swarmlab_swarm — the
// plan must not drag the injector into the swarm layer.
#pragma once

#include <cstdint>
#include <vector>

namespace swarmlab::fault {

/// RNG stream id for the injector's forked seed:
/// fault_seed = sim::fork_seed(scenario_seed, kFaultRngStream).
inline constexpr std::uint64_t kFaultRngStream = 0xFA017;

/// One tracker outage window: every announce in
/// [start, start + duration) fails (the peer retries with backoff).
struct TrackerOutage {
  double start = 0.0;     ///< simulated seconds
  double duration = 0.0;  ///< window length; <= 0 disables the window
};

/// The full fault schedule. All defaults are "off".
struct FaultPlan {
  // --- abrupt peer crashes ---------------------------------------------
  /// Kill every initial seed at this time (< 0: never). The paper's
  /// transient state hinges on the initial seed surviving (§IV-A.2.a);
  /// this knob creates the rare-piece regime Khan et al. study.
  double initial_seed_death_time = -1.0;
  /// Poisson hazard (crashes/second) of an abrupt crash of one random
  /// active peer. A crash sends no Stopped announce and no disconnect
  /// callbacks: remote peer sets keep ghost entries until their liveness
  /// timers evict them.
  double peer_crash_rate = 0.0;
  /// Random crashes skip initial seeds (so initial_seed_death_time stays
  /// the only seed-killing knob; set false for fully uniform carnage).
  bool crash_spares_initial_seeds = true;

  // --- control-message faults ------------------------------------------
  /// Probability that any single control message (HAVE, CHOKE, REQUEST,
  /// ...) is silently lost in transit.
  double message_loss_rate = 0.0;
  /// Extra one-way delay, uniform in [0, message_delay_jitter] seconds,
  /// added to each delivered control message.
  double message_delay_jitter = 0.0;

  // --- data-plane faults -----------------------------------------------
  /// Poisson hazard (kills/second) of aborting one random in-flight
  /// block transfer mid-stream (no completion callback fires; the
  /// receiver recovers via request timeout, the sender via its liveness
  /// tick).
  double flow_kill_rate = 0.0;

  // --- tracker outages -------------------------------------------------
  std::vector<TrackerOutage> tracker_outages;

  /// True when any fault is enabled. The gate for creating an injector —
  /// and for ScenarioRunner enabling the liveness timers.
  [[nodiscard]] bool any() const {
    if (initial_seed_death_time >= 0.0) return true;
    if (peer_crash_rate > 0.0 || flow_kill_rate > 0.0) return true;
    if (message_loss_rate > 0.0 || message_delay_jitter > 0.0) return true;
    for (const TrackerOutage& o : tracker_outages) {
      if (o.duration > 0.0) return true;
    }
    return false;
  }
};

}  // namespace swarmlab::fault
