// FaultInjector: executes a FaultPlan against a live Swarm.
//
// The injector is pure scheduling glue: it owns no protocol state. It
// drives crashes/flow kills from self-rescheduling Poisson events,
// installs the control-message fault hook on the swarm, and toggles the
// tracker's online flag for outage windows. Every random draw comes from
// its private Rng (forked stream), never from the simulation Rng — a run
// with a given plan perturbs the no-fault event sequence only through the
// faults themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "peer/types.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace swarmlab::swarm {
class Swarm;
class ScenarioRunner;
}  // namespace swarmlab::swarm

namespace swarmlab::fault {

/// What the injector actually did (all sim-deterministic; embedded in
/// batch reports under metrics.faults).
struct FaultStats {
  std::uint64_t seed_deaths = 0;       ///< initial seeds crashed at T
  std::uint64_t peer_crashes = 0;      ///< random abrupt crashes
  std::uint64_t messages_dropped = 0;  ///< control messages lost
  std::uint64_t messages_delayed = 0;  ///< control messages jittered
  std::uint64_t flows_killed = 0;      ///< block transfers aborted
  std::uint64_t outages = 0;           ///< tracker outage windows entered
};

class FaultInjector {
 public:
  /// Wires `plan` into `swarm`. `never_crash` peers (e.g. the
  /// instrumented local peer) are exempt from random crashes;
  /// `initial_seeds` are the targets of initial_seed_death_time.
  FaultInjector(sim::Simulation& sim, swarm::Swarm& swarm, FaultPlan plan,
                std::uint64_t fault_seed,
                std::vector<peer::PeerId> never_crash = {},
                std::vector<peer::PeerId> initial_seeds = {});

  /// Convenience: injects `runner.config().faults` into the runner's
  /// swarm, sparing the local peer, with the fault RNG forked from
  /// `scenario_seed` via kFaultRngStream.
  FaultInjector(swarm::ScenarioRunner& runner, std::uint64_t scenario_seed);

  /// Uninstalls the control hook, restores the tracker, and cancels all
  /// pending injection events (safe to destroy before the Simulation).
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  void install();
  void schedule_crash_tick();
  void schedule_flow_kill_tick();
  void kill_initial_seeds();
  void crash_random_peer();
  void kill_random_flow();

  sim::Simulation& sim_;
  swarm::Swarm& swarm_;
  FaultPlan plan_;
  sim::Rng rng_;
  std::vector<peer::PeerId> never_crash_;
  std::vector<peer::PeerId> initial_seeds_;
  FaultStats stats_;
  bool hook_installed_ = false;

  sim::EventId crash_event_ = 0;
  sim::EventId flow_kill_event_ = 0;
  std::vector<sim::EventId> one_shot_events_;  // seed death + outage edges
};

}  // namespace swarmlab::fault
