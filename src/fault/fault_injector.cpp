#include "fault/fault_injector.h"

#include <algorithm>

#include "swarm/scenario.h"
#include "swarm/swarm.h"

namespace swarmlab::fault {

FaultInjector::FaultInjector(sim::Simulation& sim, swarm::Swarm& swarm,
                             FaultPlan plan, std::uint64_t fault_seed,
                             std::vector<peer::PeerId> never_crash,
                             std::vector<peer::PeerId> initial_seeds)
    : sim_(sim),
      swarm_(swarm),
      plan_(std::move(plan)),
      rng_(fault_seed),
      never_crash_(std::move(never_crash)),
      initial_seeds_(std::move(initial_seeds)) {
  install();
}

FaultInjector::FaultInjector(swarm::ScenarioRunner& runner,
                             std::uint64_t scenario_seed)
    : FaultInjector(runner.simulation(), runner.swarm(),
                    runner.config().faults,
                    sim::fork_seed(scenario_seed, kFaultRngStream),
                    {runner.local_peer_id()}, runner.initial_seed_ids()) {}

FaultInjector::~FaultInjector() {
  if (hook_installed_) swarm_.set_control_fault(nullptr);
  swarm_.tracker().set_online(true);
  if (crash_event_ != 0) sim_.cancel(crash_event_);
  if (flow_kill_event_ != 0) sim_.cancel(flow_kill_event_);
  for (const sim::EventId e : one_shot_events_) sim_.cancel(e);
}

void FaultInjector::install() {
  if (plan_.initial_seed_death_time >= 0.0) {
    const double at = std::max(plan_.initial_seed_death_time, sim_.now());
    one_shot_events_.push_back(
        sim_.schedule_at(at, [this] { kill_initial_seeds(); }));
  }
  if (plan_.peer_crash_rate > 0.0) schedule_crash_tick();
  if (plan_.flow_kill_rate > 0.0) schedule_flow_kill_tick();
  for (const TrackerOutage& o : plan_.tracker_outages) {
    if (o.duration <= 0.0) continue;
    const double start = std::max(o.start, sim_.now());
    one_shot_events_.push_back(sim_.schedule_at(start, [this] {
      ++stats_.outages;
      swarm_.tracker().set_online(false);
    }));
    one_shot_events_.push_back(sim_.schedule_at(
        start + o.duration, [this] { swarm_.tracker().set_online(true); }));
  }
  if (plan_.message_loss_rate > 0.0 || plan_.message_delay_jitter > 0.0) {
    hook_installed_ = true;
    swarm_.set_control_fault([this](double* extra_delay) {
      if (plan_.message_loss_rate > 0.0 &&
          rng_.chance(plan_.message_loss_rate)) {
        ++stats_.messages_dropped;
        return false;
      }
      if (plan_.message_delay_jitter > 0.0) {
        const double jitter = rng_.uniform(0.0, plan_.message_delay_jitter);
        if (jitter > 0.0) {
          *extra_delay = jitter;
          ++stats_.messages_delayed;
        }
      }
      return true;
    });
  }
}

void FaultInjector::schedule_crash_tick() {
  const double gap = rng_.exponential(1.0 / plan_.peer_crash_rate);
  crash_event_ = sim_.schedule_in(gap, [this] {
    crash_random_peer();
    schedule_crash_tick();
  });
}

void FaultInjector::schedule_flow_kill_tick() {
  const double gap = rng_.exponential(1.0 / plan_.flow_kill_rate);
  flow_kill_event_ = sim_.schedule_in(gap, [this] {
    kill_random_flow();
    schedule_flow_kill_tick();
  });
}

void FaultInjector::kill_initial_seeds() {
  for (const peer::PeerId id : initial_seeds_) {
    if (swarm_.crash_peer(id)) ++stats_.seed_deaths;
  }
}

void FaultInjector::crash_random_peer() {
  const auto spared = [this](peer::PeerId id) {
    if (std::find(never_crash_.begin(), never_crash_.end(), id) !=
        never_crash_.end()) {
      return true;
    }
    return plan_.crash_spares_initial_seeds &&
           std::find(initial_seeds_.begin(), initial_seeds_.end(), id) !=
               initial_seeds_.end();
  };
  std::vector<peer::PeerId> candidates;
  for (const peer::PeerId id : swarm_.peer_ids()) {
    const peer::Peer* p = swarm_.find_peer(id);
    if (p != nullptr && p->active() && !spared(id)) candidates.push_back(id);
  }
  if (candidates.empty()) return;
  if (swarm_.crash_peer(candidates[rng_.index(candidates.size())])) {
    ++stats_.peer_crashes;
  }
}

void FaultInjector::kill_random_flow() {
  // active_flow_ids() is sorted, so victim selection is deterministic.
  const std::vector<net::FlowId> flows = swarm_.network().active_flow_ids();
  if (flows.empty()) return;
  if (swarm_.network().cancel_flow(flows[rng_.index(flows.size())])) {
    ++stats_.flows_killed;
  }
}

}  // namespace swarmlab::fault
