#include "model/fluid_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace swarmlab::model {

namespace {

struct Derivative {
  double dx;
  double dy;
};

Derivative rhs(const FluidParams& p, double x, double y) {
  const double service = std::min(p.c * x, p.mu * (p.eta * x + y));
  return {p.lambda - p.theta * x - service, service - p.gamma * y};
}

}  // namespace

std::vector<FluidState> integrate(const FluidParams& params, double x0,
                                  double y0, double horizon,
                                  double dt_sample, double dt_step) {
  assert(dt_step > 0 && dt_sample >= dt_step && horizon >= 0);
  std::vector<FluidState> out;
  double x = x0, y = y0, t = 0.0;
  double next_sample = 0.0;
  out.push_back({0.0, x, y});
  next_sample += dt_sample;
  while (t < horizon) {
    const double h = std::min(dt_step, horizon - t);
    // Classic RK4 on the clamped state.
    const Derivative k1 = rhs(params, x, y);
    const Derivative k2 =
        rhs(params, x + 0.5 * h * k1.dx, y + 0.5 * h * k1.dy);
    const Derivative k3 =
        rhs(params, x + 0.5 * h * k2.dx, y + 0.5 * h * k2.dy);
    const Derivative k4 = rhs(params, x + h * k3.dx, y + h * k3.dy);
    x += h / 6.0 * (k1.dx + 2 * k2.dx + 2 * k3.dx + k4.dx);
    y += h / 6.0 * (k1.dy + 2 * k2.dy + 2 * k3.dy + k4.dy);
    x = std::max(0.0, x);
    y = std::max(0.0, y);
    t += h;
    if (t + 1e-9 >= next_sample) {
      out.push_back({t, x, y});
      next_sample += dt_sample;
    }
  }
  if (out.back().t < horizon) out.push_back({horizon, x, y});
  return out;
}

FluidEquilibrium equilibrium(const FluidParams& params) {
  assert(params.lambda > 0 && params.gamma > 0);
  FluidEquilibrium eq;
  // In equilibrium the completion flux equals lambda' = lambda - theta x.
  // Case 1 (upload constrained): service = mu (eta x + y), y = flux/gamma.
  // Following Qiu-Srikant with theta small, define
  //   1/nu = max(1/c, 1/eta * (1/mu - 1/gamma))
  // and x_bar = lambda/nu (their eq. for the download-time bound), with
  // y_bar = lambda/gamma.
  const double inv_upload =
      (1.0 / params.eta) * (1.0 / params.mu - 1.0 / params.gamma);
  const double inv_download = 1.0 / params.c;
  const double inv_nu = std::max(inv_download, std::max(inv_upload, 0.0));
  eq.download_constrained = inv_download >= inv_upload;
  const double effective_lambda =
      params.lambda;  // theta shrinks throughput; first-order ignored
  eq.leechers = effective_lambda * inv_nu;
  eq.seeds = effective_lambda / params.gamma;
  eq.download_time = inv_nu;
  return eq;
}

}  // namespace swarmlab::model
