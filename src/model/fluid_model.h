// The Qiu-Srikant fluid model of BitTorrent-like networks
// (D. Qiu, R. Srikant, "Modeling and performance analysis of
// BitTorrent-like peer-to-peer networks", SIGCOMM 2004) — the analytical
// baseline the paper discusses in §V. The paper's point: these models
// assume global knowledge; swarmlab lets you compare the fluid
// prediction against a protocol-faithful simulation with 80-peer local
// views.
//
//   dx/dt = lambda - theta x - min(c x, mu (eta x + y))
//   dy/dt = min(c x, mu (eta x + y)) - gamma y
//
// x: leechers, y: seeds; lambda: arrival rate; theta: abort rate;
// gamma: seed departure rate; c: download capacity, mu: upload capacity
// (both in file copies per second); eta: sharing effectiveness (~1 for
// rarest first with large peer sets).
#pragma once

#include <vector>

namespace swarmlab::model {

/// Model parameters, all rates per second and capacities in file copies
/// per second (i.e., bytes/sec divided by the file size).
struct FluidParams {
  double lambda = 0.05;  ///< leecher arrival rate
  double mu = 0.001;     ///< upload capacity (copies/s)
  double c = 0.008;      ///< download capacity (copies/s)
  double theta = 0.0;    ///< leecher abort rate
  double gamma = 0.005;  ///< seed departure rate
  double eta = 1.0;      ///< sharing effectiveness
};

/// One trajectory point.
struct FluidState {
  double t = 0.0;
  double leechers = 0.0;
  double seeds = 0.0;
};

/// Integrates the ODE with RK4 from (x0, y0) over [0, horizon], sampling
/// every `dt_sample`. Populations are clamped at 0.
std::vector<FluidState> integrate(const FluidParams& params, double x0,
                                  double y0, double horizon,
                                  double dt_sample = 10.0,
                                  double dt_step = 0.1);

/// Steady-state populations (Qiu-Srikant eq. (4)-(5)); valid when
/// lambda > 0 and gamma > 0. Returns {x_bar, y_bar}.
struct FluidEquilibrium {
  double leechers = 0.0;
  double seeds = 0.0;
  /// Mean download time via Little's law: x_bar / (lambda (1 - theta-
  /// fraction)); with theta = 0 simply x_bar / lambda.
  double download_time = 0.0;
  /// True when the download constraint (c) binds rather than upload.
  bool download_constrained = false;
};

FluidEquilibrium equilibrium(const FluidParams& params);

}  // namespace swarmlab::model
