#include "net/packet_network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace swarmlab::net {

namespace {
// Service completions are scheduled with a tiny epsilon so float drift in
// settle() cannot leave a sliver of a segment unfinished.
constexpr double kByteEpsilon = 1e-6;
}  // namespace

NodeId PacketNetwork::add_node(double up_bytes_per_sec,
                               double down_bytes_per_sec) {
  assert(up_bytes_per_sec > 0.0 && down_bytes_per_sec > 0.0);
  NodeSlot node;
  node.up.capacity = up_bytes_per_sec;
  node.down.capacity = down_bytes_per_sec;
  node.alive = true;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size());
}

void PacketNetwork::remove_node(NodeId node) {
  if (!has_node(node)) return;
  // Abort every flow touching the node, in creation order (matching the
  // enumeration order fault injection sees). cancel_flow evicts each flow
  // from the node's links as it goes.
  std::vector<std::pair<std::uint64_t, FlowId>> doomed;
  for (std::uint32_t s = 0; s < flows_.size(); ++s) {
    const FlowSlot& f = flows_[s];
    if (f.seq != 0 && (f.from == node || f.to == node)) {
      doomed.emplace_back(f.seq, pack(f.gen, s));
    }
  }
  std::sort(doomed.begin(), doomed.end());
  for (const auto& [seq, id] : doomed) cancel_flow(id);
  NodeSlot& n = nodes_[node - 1];
  // Both links are idle now (they only ever serve the node's own flows);
  // drop any tickets left behind by the aborted flows.
  assert(n.up.serving == kNil && n.down.serving == kNil);
  n.up.rr.clear();
  n.down.rr.clear();
  n.alive = false;
}

double PacketNetwork::node_up(NodeId node) const {
  return has_node(node) ? nodes_[node - 1].up.capacity : 0.0;
}

void PacketNetwork::set_node_capacity(NodeId node, double up_bytes_per_sec,
                                      double down_bytes_per_sec) {
  if (!has_node(node)) return;
  NodeSlot& n = nodes_[node - 1];
  n.up.capacity = std::max(0.0, up_bytes_per_sec);
  n.down.capacity = std::max(0.0, down_bytes_per_sec);
  // Settle the in-service segment (if any) at its old rate and re-rate
  // it. A segment parked at rate 0 keeps the link formally busy, so this
  // reschedule is the guaranteed wake-up when capacity returns.
  for (const bool up : {true, false}) {
    Link& link = up ? n.up : n.down;
    if (link.serving == kNil) continue;
    settle(link);
    link.rate = link.capacity;
    reschedule(link, node, up);
  }
}

std::vector<FlowId> PacketNetwork::active_flow_ids() const {
  // Creation order — the deterministic enumeration fault injection draws
  // random victims from. Slot indices are not creation-ordered (the free
  // list reuses them), so sort by seq.
  std::vector<std::pair<std::uint64_t, FlowId>> live;
  live.reserve(flow_count_);
  for (std::uint32_t s = 0; s < flows_.size(); ++s) {
    if (flows_[s].seq != 0) {
      live.emplace_back(flows_[s].seq, pack(flows_[s].gen, s));
    }
  }
  std::sort(live.begin(), live.end());
  std::vector<FlowId> ids;
  ids.reserve(live.size());
  for (const auto& [seq, id] : live) ids.push_back(id);
  return ids;
}

double PacketNetwork::segment_size(const FlowSlot& flow,
                                   std::uint32_t index) const {
  assert(index < flow.segments);
  if (index + 1 < flow.segments) {
    return static_cast<double>(segment_bytes_);
  }
  const std::uint64_t before =
      std::uint64_t{flow.segments - 1} * segment_bytes_;
  return static_cast<double>(flow.bytes - before);
}

FlowId PacketNetwork::start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                                 std::function<void()> on_complete) {
  assert(has_node(from) && has_node(to));
  assert(bytes > 0);
  std::uint32_t slot;
  if (!free_flows_.empty()) {
    slot = free_flows_.back();
    free_flows_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
  }
  FlowSlot& flow = flows_[slot];
  flow.from = from;
  flow.to = to;
  flow.bytes = bytes;
  flow.segments = static_cast<std::uint32_t>(
      (bytes + segment_bytes_ - 1) / segment_bytes_);
  flow.sent = 0;
  flow.pending_down = 0;
  flow.delivered = 0;
  flow.in_up_queue = true;
  flow.in_down_queue = false;
  flow.on_complete = std::move(on_complete);
  flow.seq = next_seq_++;
  ++flow_count_;
  const FlowId id = pack(flow.gen, slot);
  nodes_[from - 1].up.rr.push_back({slot, flow.seq});
  serve(from, /*up=*/true);
  return id;
}

bool PacketNetwork::cancel_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return false;
  FlowSlot& flow = flows_[slot];
  const NodeId from = flow.from;
  const NodeId to = flow.to;
  retire(slot);
  // Retire first (the slot's seq is zeroed, so queued tickets and
  // in-flight propagation arrivals go stale), then free any link the
  // flow was occupying so the next queued segment starts immediately.
  evict_from_link(nodes_[from - 1].up, slot, from, /*up=*/true);
  evict_from_link(nodes_[to - 1].down, slot, to, /*up=*/false);
  return true;
}

double PacketNetwork::flow_rate(FlowId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return 0.0;
  const FlowSlot& flow = flows_[slot];
  // The instantaneous service rate: what the wire is doing for this flow
  // right now (0 while it only has queued or propagating segments).
  const Link& up = nodes_[flow.from - 1].up;
  if (up.serving == slot) return up.rate;
  const Link& down = nodes_[flow.to - 1].down;
  if (down.serving == slot) return down.rate;
  return 0.0;
}

void PacketNetwork::send_control(std::function<void()> deliver,
                                 double extra_delay) {
  sim_.schedule_in(control_latency_ + std::max(0.0, extra_delay),
                   std::move(deliver));
}

void PacketNetwork::settle(Link& link) {
  const sim::SimTime now = sim_.now();
  if (now > link.last_update && link.rate > 0.0) {
    link.remaining =
        std::max(0.0, link.remaining - link.rate * (now - link.last_update));
  }
  link.last_update = now;
}

void PacketNetwork::reschedule(Link& link, NodeId node, bool up) {
  if (link.event != 0) {
    sim_.cancel(link.event);
    link.event = 0;
  }
  if (link.rate <= 0.0) return;  // parked; set_node_capacity wakes it
  const double secs =
      std::max(0.0, link.remaining - kByteEpsilon) / link.rate;
  link.event = sim_.schedule_in(secs, [this, node, up] {
    if (up) {
      on_uplink_done(node);
    } else {
      on_downlink_done(node);
    }
  });
}

void PacketNetwork::serve(NodeId node, bool up) {
  Link& link = up ? nodes_[node - 1].up : nodes_[node - 1].down;
  if (link.serving != kNil) return;  // busy (possibly parked at rate 0)
  while (!link.rr.empty()) {
    const RRticket ticket = link.rr.front();
    link.rr.pop_front();
    FlowSlot& flow = flows_[ticket.slot];
    if (flow.seq != ticket.seq) continue;  // cancelled; stale ticket
    if (up) {
      flow.in_up_queue = false;
    } else {
      flow.in_down_queue = false;
      assert(flow.pending_down > 0);
      --flow.pending_down;
    }
    link.serving = ticket.slot;
    link.remaining = segment_size(flow, up ? flow.sent : flow.delivered);
    link.rate = link.capacity;
    link.last_update = sim_.now();
    reschedule(link, node, up);
    return;
  }
}

void PacketNetwork::on_uplink_done(NodeId node) {
  Link& link = nodes_[node - 1].up;
  assert(link.serving != kNil);
  const std::uint32_t slot = link.serving;
  FlowSlot& flow = flows_[slot];
  link.event = 0;
  link.serving = kNil;
  link.rate = 0.0;
  ++flow.sent;
  // The segment propagates; the arrival re-validates the id so a flow
  // cancelled mid-propagation drops its segments silently.
  sim_.schedule_in(control_latency_, [this, id = pack(flow.gen, slot)] {
    on_segment_arrival(id);
  });
  if (flow.sent < flow.segments) {
    flow.in_up_queue = true;
    link.rr.push_back({slot, flow.seq});  // round-robin: back of the line
  }
  serve(node, /*up=*/true);
}

void PacketNetwork::on_segment_arrival(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return;  // aborted while propagating
  FlowSlot& flow = flows_[slot];
  ++flow.pending_down;
  if (!flow.in_down_queue) {
    flow.in_down_queue = true;
    nodes_[flow.to - 1].down.rr.push_back({slot, flow.seq});
  }
  serve(flow.to, /*up=*/false);
}

void PacketNetwork::on_downlink_done(NodeId node) {
  Link& link = nodes_[node - 1].down;
  assert(link.serving != kNil);
  const std::uint32_t slot = link.serving;
  FlowSlot& flow = flows_[slot];
  link.event = 0;
  link.serving = kNil;
  link.rate = 0.0;
  ++flow.delivered;
  if (flow.delivered == flow.segments) {
    // The last byte arrived. Retire before the callback — the callback
    // typically starts the sender's next flow.
    std::function<void()> on_complete = std::move(flow.on_complete);
    retire(slot);
    serve(node, /*up=*/false);
    if (on_complete) on_complete();
    return;
  }
  if (flow.pending_down > 0 && !flow.in_down_queue) {
    flow.in_down_queue = true;
    link.rr.push_back({slot, flow.seq});
  }
  serve(node, /*up=*/false);
}

void PacketNetwork::evict_from_link(Link& link, std::uint32_t slot,
                                    NodeId node, bool up) {
  if (link.serving != slot) return;
  if (link.event != 0) {
    sim_.cancel(link.event);
    link.event = 0;
  }
  link.serving = kNil;
  link.rate = 0.0;
  serve(node, up);
}

void PacketNetwork::retire(std::uint32_t slot) {
  FlowSlot& flow = flows_[slot];
  assert(flow.seq != 0);
  ++flow.gen;
  flow.seq = 0;  // queued tickets and propagation arrivals go stale
  flow.in_up_queue = false;
  flow.in_down_queue = false;
  flow.pending_down = 0;
  flow.on_complete = nullptr;
  free_flows_.push_back(slot);
  --flow_count_;
}

}  // namespace swarmlab::net
