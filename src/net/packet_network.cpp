#include "net/packet_network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace swarmlab::net {

namespace {
// Service completions are scheduled with a tiny epsilon so float drift in
// settle() cannot leave a sliver of a segment unfinished.
constexpr double kByteEpsilon = 1e-6;
}  // namespace

PacketNetwork::PacketNetwork(sim::Simulation& sim, double control_latency,
                             std::uint32_t segment_bytes,
                             std::uint32_t max_train)
    : sim_(sim),
      control_latency_(control_latency),
      segment_bytes_(segment_bytes > 0 ? segment_bytes : kDefaultSegmentBytes),
      max_train_(max_train > 0 ? max_train : 1),
      ch_link_done_(sim.add_fast_channel(&link_done_trampoline, this)),
      ch_arrive_(sim.add_fast_channel(&arrive_trampoline, this)) {}

void PacketNetwork::link_done_trampoline(void* ctx,
                                         const sim::FastPayload& p) {
  auto* self = static_cast<PacketNetwork*>(ctx);
  const auto node = static_cast<NodeId>(p.a);
  if (p.b != 0) {
    self->on_uplink_done(node);
  } else {
    self->on_downlink_done(node);
  }
}

void PacketNetwork::arrive_trampoline(void* ctx, const sim::FastPayload& p) {
  static_cast<PacketNetwork*>(ctx)->on_arrive(static_cast<FlowId>(p.a),
                                              p.b != 0);
}

NodeId PacketNetwork::add_node(double up_bytes_per_sec,
                               double down_bytes_per_sec) {
  assert(up_bytes_per_sec > 0.0 && down_bytes_per_sec > 0.0);
  NodeSlot node;
  node.up.capacity = up_bytes_per_sec;
  node.down.capacity = down_bytes_per_sec;
  node.alive = true;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size());
}

void PacketNetwork::remove_node(NodeId node) {
  if (!has_node(node)) return;
  // Abort every flow touching the node, in creation order (matching the
  // enumeration order fault injection sees). cancel_flow evicts each flow
  // from the node's links as it goes.
  std::vector<FlowId> doomed;
  for (std::uint32_t s = all_head_; s != kNil; s = flows_[s].all_next) {
    const FlowSlot& f = flows_[s];
    if (f.from == node || f.to == node) doomed.push_back(pack(f.gen, s));
  }
  for (const FlowId id : doomed) cancel_flow(id);
  NodeSlot& n = nodes_[node - 1];
  // Both links are idle now (they only ever serve the node's own flows);
  // drop any tickets left behind by the aborted flows.
  assert(n.up.serving == kNil && n.down.serving == kNil);
  n.up.rr.clear();
  n.down.rr.clear();
  n.alive = false;
}

double PacketNetwork::node_up(NodeId node) const {
  return has_node(node) ? nodes_[node - 1].up.capacity : 0.0;
}

void PacketNetwork::set_node_capacity(NodeId node, double up_bytes_per_sec,
                                      double down_bytes_per_sec) {
  if (!has_node(node)) return;
  nodes_[node - 1].up.capacity = std::max(0.0, up_bytes_per_sec);
  nodes_[node - 1].down.capacity = std::max(0.0, down_bytes_per_sec);
  // Settle the in-service segment (if any) at its old rate and re-rate
  // it. A segment parked at rate 0 keeps the link formally busy, so this
  // reschedule is the guaranteed wake-up when capacity returns. A
  // mid-batch link first falls back to the exact single-segment state;
  // break_plan can complete a flow, whose callback may reshape the node
  // and flow tables, so every reference is re-resolved after.
  for (const bool up : {true, false}) {
    if (!has_node(node)) return;
    Link* link = up ? &nodes_[node - 1].up : &nodes_[node - 1].down;
    if (link->serving == kNil) continue;
    if (link->batch != 0) {
      if (up) {
        break_train(*link, node);
      } else {
        break_plan(*link, node);
      }
      if (!has_node(node)) return;
      link = up ? &nodes_[node - 1].up : &nodes_[node - 1].down;
      // A batch that elapsed in full re-served the link; anything the
      // re-serve started already runs at the new capacity.
      if (link->serving == kNil || link->batch != 0) continue;
    }
    settle(*link);
    link->rate = link->capacity;
    reschedule(*link, node, up);
  }
}

std::vector<FlowId> PacketNetwork::active_flow_ids() const {
  // Creation order — the deterministic enumeration fault injection draws
  // random victims from. The intrusive list keeps it without a sort.
  std::vector<FlowId> ids;
  ids.reserve(flow_count_);
  for (std::uint32_t s = all_head_; s != kNil; s = flows_[s].all_next) {
    ids.push_back(pack(flows_[s].gen, s));
  }
  return ids;
}

double PacketNetwork::segment_size(const FlowSlot& flow,
                                   std::uint32_t index) const {
  assert(index < flow.segments);
  if (index + 1 < flow.segments) {
    return static_cast<double>(segment_bytes_);
  }
  const std::uint64_t before =
      std::uint64_t{flow.segments - 1} * segment_bytes_;
  return static_cast<double>(flow.bytes - before);
}

std::uint32_t PacketNetwork::full_segments_from(const FlowSlot& flow,
                                                std::uint32_t first) const {
  // The final segment carries the remainder; it only counts as full when
  // the flow divides evenly.
  const std::uint32_t full = flow.bytes % segment_bytes_ == 0
                                 ? flow.segments
                                 : flow.segments - 1;
  return first < full ? full - first : 0;
}

double PacketNetwork::seg_time(double size, double rate) {
  // The exact expression reschedule() uses for a fresh segment.
  return std::max(0.0, size - kByteEpsilon) / rate;
}

FlowId PacketNetwork::start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                                 std::function<void()> on_complete) {
  assert(has_node(from) && has_node(to));
  assert(bytes > 0);
  // A new ticket is about to contend the sender's uplink; a mid-train
  // batch there must first fall back to the exact single-segment state
  // (an uncontested-queue train ends the moment contention appears).
  if (nodes_[from - 1].up.batch != 0) {
    break_train(nodes_[from - 1].up, from);
  }
  std::uint32_t slot;
  if (!free_flows_.empty()) {
    slot = free_flows_.back();
    free_flows_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
  }
  FlowSlot& flow = flows_[slot];
  flow.from = from;
  flow.to = to;
  flow.bytes = bytes;
  flow.segments = static_cast<std::uint32_t>(
      (bytes + segment_bytes_ - 1) / segment_bytes_);
  flow.sent = 0;
  flow.pending_down = 0;
  flow.delivered = 0;
  flow.in_up_queue = true;
  flow.in_down_queue = false;
  flow.on_complete = std::move(on_complete);
  flow.seq = next_seq_++;
  flow.train_u = 0.0;
  flow.train_spacing = 0.0;
  flow.train_tail = -1.0;
  flow.train_left = 0;
  flow.arr_event = 0;
  // Append to the creation-order list.
  flow.all_prev = all_tail_;
  flow.all_next = kNil;
  if (all_tail_ != kNil) {
    flows_[all_tail_].all_next = slot;
  } else {
    all_head_ = slot;
  }
  all_tail_ = slot;
  ++flow_count_;
  const FlowId id = pack(flow.gen, slot);
  nodes_[from - 1].up.rr.push_back({slot, flow.seq});
  serve(from, /*up=*/true);
  return id;
}

bool PacketNetwork::cancel_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return false;
  FlowSlot& flow = flows_[slot];
  const NodeId from = flow.from;
  const NodeId to = flow.to;
  retire(slot);
  // Retire first (the slot's seq is zeroed, so queued tickets and
  // in-flight propagation arrivals go stale), then free any link the
  // flow was occupying so the next queued segment starts immediately.
  evict_from_link(nodes_[from - 1].up, slot, from, /*up=*/true);
  evict_from_link(nodes_[to - 1].down, slot, to, /*up=*/false);
  return true;
}

double PacketNetwork::flow_rate(FlowId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return 0.0;
  const FlowSlot& flow = flows_[slot];
  // The instantaneous service rate: what the wire is doing for this flow
  // right now (0 while it only has queued or propagating segments).
  const Link& up = nodes_[flow.from - 1].up;
  if (up.serving == slot) return up.rate;
  const Link& down = nodes_[flow.to - 1].down;
  if (down.serving == slot) return down.rate;
  return 0.0;
}

void PacketNetwork::send_control(std::function<void()> deliver,
                                 double extra_delay) {
  sim_.schedule_in(control_latency_ + std::max(0.0, extra_delay),
                   std::move(deliver));
}

void PacketNetwork::settle(Link& link) {
  const sim::SimTime now = sim_.now();
  if (now > link.last_update && link.rate > 0.0) {
    link.remaining =
        std::max(0.0, link.remaining - link.rate * (now - link.last_update));
  }
  link.last_update = now;
}

void PacketNetwork::reschedule(Link& link, NodeId node, bool up) {
  if (link.event != 0) {
    sim_.cancel(link.event);
    link.event = 0;
  }
  if (link.rate <= 0.0) return;  // parked; set_node_capacity wakes it
  const double secs =
      std::max(0.0, link.remaining - kByteEpsilon) / link.rate;
  link.event = sim_.schedule_fast_in(
      secs, ch_link_done_,
      {static_cast<std::uint64_t>(node), up ? 1u : 0u});
}

void PacketNetwork::serve(NodeId node, bool up) {
  Link& link = up ? nodes_[node - 1].up : nodes_[node - 1].down;
  if (link.serving != kNil) return;  // busy (possibly parked at rate 0)
  while (!link.rr.empty()) {
    const RRticket ticket = link.rr.front();
    link.rr.pop_front();
    FlowSlot& flow = flows_[ticket.slot];
    if (flow.seq != ticket.seq) continue;  // cancelled; stale ticket
    if (up) {
      flow.in_up_queue = false;
      start_uplink(link, node, ticket.slot);
    } else {
      flow.in_down_queue = false;
      start_downlink(link, node, ticket.slot);
    }
    return;
  }
}

void PacketNetwork::start_uplink(Link& link, NodeId node,
                                 std::uint32_t slot) {
  FlowSlot& flow = flows_[slot];
  link.serving = slot;
  link.rate = link.capacity;
  link.last_update = sim_.now();
  // Train: an uncontested queue means the flow's next K equal-size
  // segments would serialize back-to-back; serve them as one event.
  std::uint32_t k = 0;
  if (max_train_ > 1 && link.rr.empty() && link.rate > 0.0) {
    k = std::min(full_segments_from(flow, flow.sent), max_train_);
  }
  if (k >= 2) {
    const double size = static_cast<double>(segment_bytes_);
    const double d = seg_time(size, link.rate);
    // Arrival chaining: if the previous train's chain is still
    // delivering and this train continues it exactly (same spacing,
    // starting at the chain's continuation time), append; otherwise a
    // live mismatched chain forbids coalescing (its addition chain could
    // not produce this train's arrival times).
    const bool append = flow.train_left > 0 && d == flow.train_spacing &&
                        sim_.now() == flow.train_tail;
    if (flow.train_left > 0 && !append) {
      link.batch = 0;
      link.remaining = segment_size(flow, flow.sent);
      reschedule(link, node, /*up=*/true);
      return;
    }
    link.batch = k;
    link.batch_t0 = sim_.now();
    link.remaining = size;
    // Completion at the exact iterated end time U_K (the same addition
    // chain K single-segment reschedules would walk).
    double end = sim_.now();
    for (std::uint32_t i = 0; i < k; ++i) end += d;
    link.event = sim_.schedule_fast_at(
        end, ch_link_done_, {static_cast<std::uint64_t>(node), 1u});
    if (append) {
      flow.train_left += k;
    } else {
      assert(flow.arr_event == 0);
      flow.train_u = sim_.now() + d;
      flow.train_spacing = d;
      flow.train_left = k;
      flow.arr_event = sim_.schedule_fast_at(
          flow.train_u + control_latency_, ch_arrive_,
          {pack(flow.gen, slot), 1u});
    }
    flow.train_tail = end;
    return;
  }
  link.batch = 0;
  link.remaining = segment_size(flow, flow.sent);
  reschedule(link, node, /*up=*/true);
}

void PacketNetwork::start_downlink(Link& link, NodeId node,
                                   std::uint32_t slot) {
  FlowSlot& flow = flows_[slot];
  assert(flow.pending_down > 0);
  link.serving = slot;
  link.rate = link.capacity;
  link.last_update = sim_.now();
  // Batch: with an uncontested queue, already-arrived equal-size
  // segments serialize back-to-back; serve them as one event.
  std::uint32_t k = 0;
  if (max_train_ > 1 && link.rr.empty() && link.rate > 0.0) {
    k = std::min({full_segments_from(flow, flow.delivered),
                  flow.pending_down, max_train_});
  }
  if (k >= 2) {
    const double size = static_cast<double>(segment_bytes_);
    const double d = seg_time(size, link.rate);
    flow.pending_down -= k;  // claimed; a break returns the unstarted ones
    link.batch = k;
    link.batch_t0 = sim_.now();
    link.remaining = size;
    double end = sim_.now();
    for (std::uint32_t i = 0; i < k; ++i) end += d;
    link.event = sim_.schedule_fast_at(
        end, ch_link_done_, {static_cast<std::uint64_t>(node), 0u});
    return;
  }
  --flow.pending_down;
  link.batch = 0;
  link.remaining = segment_size(flow, flow.delivered);
  reschedule(link, node, /*up=*/false);
}

void PacketNetwork::on_uplink_done(NodeId node) {
  Link& link = nodes_[node - 1].up;
  assert(link.serving != kNil);
  const std::uint32_t slot = link.serving;
  FlowSlot& flow = flows_[slot];
  link.event = 0;
  link.serving = kNil;
  link.rate = 0.0;
  if (link.batch != 0) {
    // Train completed; its arrivals keep flowing through the chain.
    flow.sent += link.batch;
    train_segments_ += link.batch;
    link.batch = 0;
  } else {
    ++flow.sent;
    // The segment propagates; the arrival re-validates the id so a flow
    // cancelled mid-propagation drops its segments silently.
    sim_.schedule_fast_in(control_latency_, ch_arrive_,
                          {pack(flow.gen, slot), 0u});
  }
  if (flow.sent < flow.segments) {
    flow.in_up_queue = true;
    link.rr.push_back({slot, flow.seq});  // round-robin: back of the line
  }
  serve(node, /*up=*/true);
}

void PacketNetwork::on_arrive(FlowId id, bool chained) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return;  // aborted while propagating
  FlowSlot& flow = flows_[slot];
  if (chained) {
    flow.arr_event = 0;
    assert(flow.train_left > 0);
    --flow.train_left;
    if (flow.train_left > 0) {
      flow.train_u += flow.train_spacing;
      flow.arr_event = sim_.schedule_fast_at(
          flow.train_u + control_latency_, ch_arrive_, {id, 1u});
    }
  }
  ++flow.pending_down;
  const NodeId to = flow.to;
  if (!flow.in_down_queue) {
    Link& down = nodes_[to - 1].down;
    if (down.batch != 0 && down.serving != slot) {
      // A competing ticket ends another flow's downlink batch. The break
      // can complete that flow; its callback may reshape the tables, so
      // re-resolve ourselves before enqueuing.
      break_plan(down, to);
      const std::uint32_t s2 = slot_of(id);
      if (s2 == kNil) return;
      FlowSlot& f2 = flows_[s2];
      if (!f2.in_down_queue) {
        f2.in_down_queue = true;
        nodes_[to - 1].down.rr.push_back({s2, f2.seq});
      }
      serve(to, /*up=*/false);
      return;
    }
    flow.in_down_queue = true;
    down.rr.push_back({slot, flow.seq});
  }
  serve(to, /*up=*/false);
}

void PacketNetwork::on_downlink_done(NodeId node) {
  Link& link = nodes_[node - 1].down;
  assert(link.serving != kNil);
  const std::uint32_t slot = link.serving;
  FlowSlot& flow = flows_[slot];
  link.event = 0;
  link.serving = kNil;
  link.rate = 0.0;
  if (link.batch != 0) {
    flow.delivered += link.batch;
    train_segments_ += link.batch;
    link.batch = 0;
  } else {
    ++flow.delivered;
  }
  if (flow.delivered == flow.segments) {
    // The last byte arrived. Retire before the callback — the callback
    // typically starts the sender's next flow.
    std::function<void()> on_complete = std::move(flow.on_complete);
    retire(slot);
    serve(node, /*up=*/false);
    if (on_complete) on_complete();
    return;
  }
  if (flow.pending_down > 0 && !flow.in_down_queue) {
    flow.in_down_queue = true;
    link.rr.push_back({slot, flow.seq});
  }
  serve(node, /*up=*/false);
}

void PacketNetwork::break_train(Link& link, NodeId node) {
  assert(link.batch != 0 && link.serving != kNil);
  const std::uint32_t slot = link.serving;
  FlowSlot& flow = flows_[slot];
  const double t = sim_.now();
  const double size = static_cast<double>(segment_bytes_);
  const double d = seg_time(size, link.rate);
  // Re-derive each boundary with the exact addition chain the
  // single-segment execution would have walked.
  const std::uint32_t k = link.batch;
  std::uint32_t done = 0;
  double prev = link.batch_t0;
  double next = prev + d;
  while (next <= t && done < k) {
    prev = next;
    next = prev + d;
    ++done;
  }
  link.batch = 0;
  sim_.cancel(link.event);
  link.event = 0;
  flow.sent += done;
  train_segments_ += done;
  // Drop announced arrivals for the segments that never serialized; a
  // truncated chain can no longer be appended to.
  assert(flow.train_left >= k - done);
  flow.train_left -= k - done;
  flow.train_tail = -1.0;
  if (flow.train_left == 0 && flow.arr_event != 0) {
    sim_.cancel(flow.arr_event);
    flow.arr_event = 0;
  }
  if (done == k) {
    // The whole train elapsed at exactly now(); complete it as
    // on_uplink_done would have.
    link.serving = kNil;
    link.rate = 0.0;
    if (flow.sent < flow.segments) {
      flow.in_up_queue = true;
      link.rr.push_back({slot, flow.seq});
    }
    serve(node, /*up=*/true);
    return;
  }
  // Reconstruct the in-service segment exactly: full remaining, progress
  // accounted from its exact start time, completion at its exact
  // single-segment time.
  link.remaining = size;
  link.last_update = prev;
  link.event = sim_.schedule_fast_at(
      next, ch_link_done_, {static_cast<std::uint64_t>(node), 1u});
}

void PacketNetwork::break_plan(Link& link, NodeId node) {
  assert(link.batch != 0 && link.serving != kNil);
  const std::uint32_t slot = link.serving;
  FlowSlot& flow = flows_[slot];
  const double t = sim_.now();
  const double size = static_cast<double>(segment_bytes_);
  const double d = seg_time(size, link.rate);
  const std::uint32_t k = link.batch;
  std::uint32_t done = 0;
  double prev = link.batch_t0;
  double next = prev + d;
  while (next <= t && done < k) {
    prev = next;
    next = prev + d;
    ++done;
  }
  link.batch = 0;
  sim_.cancel(link.event);
  link.event = 0;
  flow.delivered += done;
  train_segments_ += done;
  if (done == k) {
    // The whole batch elapsed at exactly now(); complete it as
    // on_downlink_done would have — including, possibly, the flow.
    link.serving = kNil;
    link.rate = 0.0;
    if (flow.delivered == flow.segments) {
      std::function<void()> on_complete = std::move(flow.on_complete);
      retire(slot);
      serve(node, /*up=*/false);
      if (on_complete) on_complete();
      return;
    }
    if (flow.pending_down > 0 && !flow.in_down_queue) {
      flow.in_down_queue = true;
      link.rr.push_back({slot, flow.seq});
    }
    serve(node, /*up=*/false);
    return;
  }
  // Unstarted claimed segments return to the pending pool; the
  // in-service one is reconstructed exactly.
  flow.pending_down += k - done - 1;
  link.remaining = size;
  link.last_update = prev;
  link.event = sim_.schedule_fast_at(
      next, ch_link_done_, {static_cast<std::uint64_t>(node), 0u});
}

void PacketNetwork::evict_from_link(Link& link, std::uint32_t slot,
                                    NodeId node, bool up) {
  if (link.serving != slot) return;
  if (link.event != 0) {
    sim_.cancel(link.event);
    link.event = 0;
  }
  link.batch = 0;  // the evicted flow is gone; no state to reconstruct
  link.serving = kNil;
  link.rate = 0.0;
  serve(node, up);
}

void PacketNetwork::retire(std::uint32_t slot) {
  FlowSlot& flow = flows_[slot];
  assert(flow.seq != 0);
  if (flow.arr_event != 0) {
    sim_.cancel(flow.arr_event);
    flow.arr_event = 0;
  }
  flow.train_left = 0;
  flow.train_tail = -1.0;
  // Unlink from the creation-order list.
  if (flow.all_prev != kNil) {
    flows_[flow.all_prev].all_next = flow.all_next;
  } else {
    all_head_ = flow.all_next;
  }
  if (flow.all_next != kNil) {
    flows_[flow.all_next].all_prev = flow.all_prev;
  } else {
    all_tail_ = flow.all_prev;
  }
  flow.all_prev = kNil;
  flow.all_next = kNil;
  ++flow.gen;
  flow.seq = 0;  // queued tickets and propagation arrivals go stale
  flow.in_up_queue = false;
  flow.in_down_queue = false;
  flow.pending_down = 0;
  flow.on_complete = nullptr;
  free_flows_.push_back(slot);
  --flow_count_;
}

}  // namespace swarmlab::net
