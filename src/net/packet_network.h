// Packet-level ("packet") network model.
//
// Where the fluid backend assigns each flow a max-min style rate and
// integrates bytes continuously, this backend moves data the way a real
// access network does: a flow is chopped into fixed-size segments, and
// each segment is store-and-forwarded through two queueing stages —
//
//   sender uplink            propagation           receiver downlink
//   (serialize one   --->    (control_latency  --> (serialize one
//    segment at a time)       per segment)          segment at a time)
//
// Each node owns one uplink and one downlink server. A server transmits
// exactly one segment at a time at the link's capacity and round-robins
// across the node's flows that have segments pending, so capacity
// sharing emerges from segment interleaving instead of a closed-form
// rate formula. This reproduces the wire-level behavior Legout et al.'s
// measurement argument rests on — per-message pacing, head-of-line
// waits, pipelining across the propagation delay — that the fluid
// abstraction integrates away, and serves as the second transfer model
// RFwPMS (Khan et al., 2022) shows rarest-first conclusions can be
// sensitive to.
//
// The seam contract (net/network.h) is honored in full:
//  * FlowIds are generation-checked slab handles (same scheme as the
//    fluid backend): a stale id held across fault-injected aborts can
//    never touch the slot's next tenant;
//  * active_flow_ids() enumerates in creation order;
//  * set_node_capacity settles the in-service segment at its old rate
//    and re-rates it — segments parked at rate 0 resume the moment
//    capacity returns;
//  * cancel_flow never fires the completion callback and immediately
//    frees the link for the next queued segment;
//  * send_control delivers after control_latency + extra_delay.
//
// Cost model: ~3 executed events per segment (uplink done, arrival,
// downlink done) with O(1) work each — there is no reallocate storm, so
// event *churn* is far below fluid's, but executed-event counts are
// several times higher. See docs/performance.md for guidance on
// choosing a backend.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/network.h"
#include "net/types.h"
#include "sim/simulation.h"
#include "sim/types.h"

namespace swarmlab::net {

/// The packet network. One instance per simulation; registered as
/// "packet" (see net/backend.h).
class PacketNetwork final : public Network {
 public:
  /// Default segment size: 4 KiB — a quarter of a standard 16 KiB block,
  /// so concurrent block transfers genuinely interleave on the wire.
  static constexpr std::uint32_t kDefaultSegmentBytes = 4096;

  /// `control_latency` is the one-way delay applied to control messages
  /// and to every segment's propagation, in seconds.
  explicit PacketNetwork(sim::Simulation& sim, double control_latency = 0.05,
                         std::uint32_t segment_bytes = kDefaultSegmentBytes)
      : sim_(sim),
        control_latency_(control_latency),
        segment_bytes_(segment_bytes > 0 ? segment_bytes
                                         : kDefaultSegmentBytes) {}

  PacketNetwork(const PacketNetwork&) = delete;
  PacketNetwork& operator=(const PacketNetwork&) = delete;

  NodeId add_node(double up_bytes_per_sec, double down_bytes_per_sec) override;
  void remove_node(NodeId node) override;
  void set_node_capacity(NodeId node, double up_bytes_per_sec,
                         double down_bytes_per_sec) override;

  [[nodiscard]] bool has_node(NodeId node) const override {
    return node >= 1 && node <= nodes_.size() && nodes_[node - 1].alive;
  }

  [[nodiscard]] bool has_flow(FlowId flow) const override {
    return slot_of(flow) != kNil;
  }

  [[nodiscard]] std::vector<FlowId> active_flow_ids() const override;

  FlowId start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                    std::function<void()> on_complete) override;
  bool cancel_flow(FlowId flow) override;
  [[nodiscard]] double flow_rate(FlowId flow) const override;

  void send_control(std::function<void()> deliver,
                    double extra_delay = 0.0) override;

  [[nodiscard]] double control_latency() const override {
    return control_latency_;
  }

  [[nodiscard]] std::size_t active_flows() const override {
    return flow_count_;
  }

  [[nodiscard]] double node_up(NodeId node) const override;

  /// Configured segment size in bytes (diagnostics).
  [[nodiscard]] std::uint32_t segment_bytes() const { return segment_bytes_; }

 private:
  /// "No slot" sentinel.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// A round-robin queue entry; `seq` pins the tenant so entries left
  /// behind by a cancelled flow are skipped instead of dequeuing the
  /// slot's next occupant.
  struct RRticket {
    std::uint32_t slot = kNil;
    std::uint64_t seq = 0;
  };

  /// One direction of a node's access link: a single-server queue that
  /// serializes one segment at a time and round-robins across flows.
  struct Link {
    double capacity = kUnlimited;  // bytes/sec
    std::deque<RRticket> rr;       // flows with pending segments
    std::uint32_t serving = kNil;  // flow slot in service (kNil = idle)
    double remaining = 0.0;        // bytes left of the in-service segment
    double rate = 0.0;             // current service rate (0 = parked)
    sim::SimTime last_update = 0.0;
    sim::EventId event = 0;        // pending service-completion event
  };

  struct NodeSlot {
    Link up;
    Link down;
    bool alive = false;
  };

  struct FlowSlot {
    NodeId from = 0;
    NodeId to = 0;
    std::uint64_t bytes = 0;
    std::uint32_t segments = 0;      // total segment count
    std::uint32_t sent = 0;          // segments fully serialized at uplink
    std::uint32_t pending_down = 0;  // arrived, waiting for downlink service
    std::uint32_t delivered = 0;     // segments fully through the downlink
    bool in_up_queue = false;        // ticket outstanding in sender uplink RR
    bool in_down_queue = false;      // ticket outstanding in receiver downlink
    std::function<void()> on_complete;
    std::uint64_t seq = 0;  // creation order; 0 marks a vacant slot
    std::uint32_t gen = 0;  // bumped on retirement; stale ids mismatch
  };

  static constexpr FlowId pack(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<FlowId>(gen) << 32) | (static_cast<FlowId>(slot) + 1);
  }

  /// Slab slot of a live flow id; kNil when the id is stale or malformed.
  [[nodiscard]] std::uint32_t slot_of(FlowId id) const {
    const std::uint64_t biased = id & 0xffffffffu;
    if (biased == 0 || biased > flows_.size()) return kNil;
    const std::uint32_t slot = static_cast<std::uint32_t>(biased - 1);
    const FlowSlot& f = flows_[slot];
    if (f.seq == 0 || f.gen != static_cast<std::uint32_t>(id >> 32)) {
      return kNil;
    }
    return slot;
  }

  /// Size in bytes of segment `index` (0-based) of `flow`: segment_bytes_
  /// for all but the last, which carries the remainder.
  [[nodiscard]] double segment_size(const FlowSlot& flow,
                                    std::uint32_t index) const;

  /// Starts serving the next queued segment on an idle link. `up` selects
  /// the direction (for event routing back to the right handler).
  void serve(NodeId node, bool up);

  /// Applies progress accrued since last_update to the in-service segment.
  void settle(Link& link);

  /// (Re)schedules the link's service-completion event from its current
  /// remaining/rate; rate <= 0 parks the segment with no event.
  void reschedule(Link& link, NodeId node, bool up);

  void on_uplink_done(NodeId node);
  void on_downlink_done(NodeId node);
  void on_segment_arrival(FlowId id);

  /// If `slot` is the in-service flow on `link`, aborts the service and
  /// starts the next queued segment.
  void evict_from_link(Link& link, std::uint32_t slot, NodeId node, bool up);

  /// Unlinks a flow, bumps its generation, recycles the slot. Does not
  /// touch the links — callers evict first.
  void retire(std::uint32_t slot);

  sim::Simulation& sim_;
  double control_latency_;
  std::uint32_t segment_bytes_;
  std::vector<NodeSlot> nodes_;  // index = NodeId - 1; ids never reused
  std::vector<FlowSlot> flows_;  // slab; index = low id half - 1
  std::vector<std::uint32_t> free_flows_;  // retired slots awaiting reuse
  std::size_t flow_count_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace swarmlab::net
