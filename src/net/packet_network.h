// Packet-level ("packet") network model.
//
// Where the fluid backend assigns each flow a max-min style rate and
// integrates bytes continuously, this backend moves data the way a real
// access network does: a flow is chopped into fixed-size segments, and
// each segment is store-and-forwarded through two queueing stages —
//
//   sender uplink            propagation           receiver downlink
//   (serialize one   --->    (control_latency  --> (serialize one
//    segment at a time)       per segment)          segment at a time)
//
// Each node owns one uplink and one downlink server. A server transmits
// exactly one segment at a time at the link's capacity and round-robins
// across the node's flows that have segments pending, so capacity
// sharing emerges from segment interleaving instead of a closed-form
// rate formula. This reproduces the wire-level behavior Legout et al.'s
// measurement argument rests on — per-message pacing, head-of-line
// waits, pipelining across the propagation delay — that the fluid
// abstraction integrates away, and serves as the second transfer model
// RFwPMS (Khan et al., 2022) shows rarest-first conclusions can be
// sensitive to.
//
// The seam contract (net/network.h) is honored in full:
//  * FlowIds are generation-checked slab handles (same scheme as the
//    fluid backend): a stale id held across fault-injected aborts can
//    never touch the slot's next tenant;
//  * active_flow_ids() enumerates in creation order (intrusive list —
//    no scan-and-sort);
//  * set_node_capacity settles the in-service segment at its old rate
//    and re-rates it — segments parked at rate 0 resume the moment
//    capacity returns;
//  * cancel_flow never fires the completion callback and immediately
//    frees the link for the next queued segment;
//  * send_control delivers after control_latency + extra_delay.
//
// Cost model — segment-train coalescing. The naive execution is ~3
// events per segment (uplink done, arrival, downlink done), each built
// as a std::function. Two optimizations collapse that without changing
// a single timestamp:
//
//  * When a link's round-robin queue is empty after dequeuing a ticket,
//    the in-service flow would re-queue behind nobody, so its next K
//    equal-size segments serialize back-to-back at known times. The
//    uplink serves them as one *train* — a single completion event at
//    the exact iterated end time U_K (the same `end += d` addition chain
//    the single-segment execution performs) — and the propagation leg
//    becomes a *chained* arrival: one fast event in flight per flow,
//    each firing at the exact per-segment arrival time u_i + L and
//    rescheduling the next at u_{i+1} = u_i + d. A downlink whose queue
//    is uncontested batches segments that have *already arrived* the
//    same way (one completion event at the iterated end). Every
//    intermediate time the single-segment execution would produce is
//    reconstructed exactly (same floating-point operations in the same
//    order) whenever a train/batch must be cut short: a competing ticket
//    (round-robin contention), set_node_capacity (partial settle at the
//    old rate) and cancel_flow all break the batch back to the
//    single-segment state the naive execution would be in at that
//    instant. The only permitted deviation is event *count* and
//    scheduling sequence — so exactly-equal-time ties against unrelated
//    events may order differently than an un-coalesced run; per-flow
//    segment and completion times are bit-identical.
//
//  * All hot-path events (service completions, arrivals, wakes) go
//    through sim::Simulation's typed fast-path channels: a 16-byte POD
//    payload dispatched via a function pointer, never a std::function.
//
// See docs/performance.md for guidance on choosing a backend.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/network.h"
#include "net/types.h"
#include "sim/simulation.h"
#include "sim/types.h"

namespace swarmlab::net {

/// The packet network. One instance per simulation; registered as
/// "packet" (see net/backend.h).
class PacketNetwork final : public Network {
 public:
  /// Default segment size: 4 KiB — a quarter of a standard 16 KiB block,
  /// so concurrent block transfers genuinely interleave on the wire.
  static constexpr std::uint32_t kDefaultSegmentBytes = 4096;

  /// Default cap on segments coalesced into one train/plan. Bounds the
  /// O(K) reconstruction walk a mid-train settle performs.
  static constexpr std::uint32_t kDefaultMaxTrain = 64;

  /// `control_latency` is the one-way delay applied to control messages
  /// and to every segment's propagation, in seconds. `max_train` <= 1
  /// disables coalescing (pure single-segment execution; tests use this
  /// to assert train/single timing identity).
  explicit PacketNetwork(sim::Simulation& sim, double control_latency = 0.05,
                         std::uint32_t segment_bytes = kDefaultSegmentBytes,
                         std::uint32_t max_train = kDefaultMaxTrain);

  PacketNetwork(const PacketNetwork&) = delete;
  PacketNetwork& operator=(const PacketNetwork&) = delete;

  NodeId add_node(double up_bytes_per_sec, double down_bytes_per_sec) override;
  void remove_node(NodeId node) override;
  void set_node_capacity(NodeId node, double up_bytes_per_sec,
                         double down_bytes_per_sec) override;

  [[nodiscard]] bool has_node(NodeId node) const override {
    return node >= 1 && node <= nodes_.size() && nodes_[node - 1].alive;
  }

  [[nodiscard]] bool has_flow(FlowId flow) const override {
    return slot_of(flow) != kNil;
  }

  [[nodiscard]] std::vector<FlowId> active_flow_ids() const override;

  FlowId start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                    std::function<void()> on_complete) override;
  bool cancel_flow(FlowId flow) override;
  [[nodiscard]] double flow_rate(FlowId flow) const override;

  void send_control(std::function<void()> deliver,
                    double extra_delay = 0.0) override;

  [[nodiscard]] double control_latency() const override {
    return control_latency_;
  }

  [[nodiscard]] std::size_t active_flows() const override {
    return flow_count_;
  }

  [[nodiscard]] double node_up(NodeId node) const override;

  /// Segments served through coalesced trains/plans (perf counter).
  [[nodiscard]] std::uint64_t train_segments() const override {
    return train_segments_;
  }

  /// Configured segment size in bytes (diagnostics).
  [[nodiscard]] std::uint32_t segment_bytes() const { return segment_bytes_; }

 private:
  /// "No slot" sentinel.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// A round-robin queue entry; `seq` pins the tenant so entries left
  /// behind by a cancelled flow are skipped instead of dequeuing the
  /// slot's next occupant.
  struct RRticket {
    std::uint32_t slot = kNil;
    std::uint64_t seq = 0;
  };

  /// One direction of a node's access link: a single-server queue that
  /// serializes one segment at a time (or a coalesced batch of them)
  /// and round-robins across flows.
  struct Link {
    double capacity = kUnlimited;  // bytes/sec
    std::deque<RRticket> rr;       // flows with pending segments
    std::uint32_t serving = kNil;  // flow slot in service (kNil = idle)
    double remaining = 0.0;        // bytes left of the in-service segment
    double rate = 0.0;             // current service rate (0 = parked)
    sim::SimTime last_update = 0.0;
    sim::EventId event = 0;  // pending service-completion event
    // Coalesced service ("batch"): 0 = plain single-segment mode, else
    // the number of equal-size segments the in-flight completion event
    // covers. On an uplink the batch is a segment train; on a downlink
    // it covers already-arrived segments. batch_t0 is the serve() time
    // the batch started (reconstruction walks re-derive every
    // intermediate boundary from it with the exact addition chain).
    std::uint32_t batch = 0;
    double batch_t0 = 0.0;
  };

  struct NodeSlot {
    Link up;
    Link down;
    bool alive = false;
  };

  struct FlowSlot {
    NodeId from = 0;
    NodeId to = 0;
    std::uint64_t bytes = 0;
    std::uint32_t segments = 0;      // total segment count
    std::uint32_t sent = 0;          // segments fully serialized at uplink
    std::uint32_t pending_down = 0;  // arrived, waiting for downlink service
    std::uint32_t delivered = 0;     // segments fully through the downlink
    bool in_up_queue = false;        // ticket outstanding in sender uplink RR
    bool in_down_queue = false;      // ticket outstanding in receiver downlink
    std::function<void()> on_complete;
    std::uint64_t seq = 0;  // creation order; 0 marks a vacant slot
    std::uint32_t gen = 0;  // bumped on retirement; stale ids mismatch
    // Intrusive all-flows list in creation order (active_flow_ids /
    // remove_node walk it; no scan-and-sort).
    std::uint32_t all_prev = kNil;
    std::uint32_t all_next = kNil;
    // Chained train-arrival state: `train_left` arrivals are still owed
    // by the sender's train(s), the next at exact uplink completion time
    // `train_u` (+ control latency); `arr_event` is the single in-flight
    // arrival event (0 = none). Each arrival advances
    // train_u += train_spacing — the same addition chain the
    // single-segment execution performs. `train_tail` is the chain's
    // continuation value (the final announced completion time): a new
    // back-to-back train starting exactly there with the same spacing
    // appends to the chain instead of opening a second one; a broken
    // train poisons it (-1) so no later train can append to a truncated
    // chain.
    double train_u = 0.0;
    double train_spacing = 0.0;
    double train_tail = -1.0;
    std::uint32_t train_left = 0;
    sim::EventId arr_event = 0;
  };

  static constexpr FlowId pack(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<FlowId>(gen) << 32) | (static_cast<FlowId>(slot) + 1);
  }

  /// Slab slot of a live flow id; kNil when the id is stale or malformed.
  [[nodiscard]] std::uint32_t slot_of(FlowId id) const {
    const std::uint64_t biased = id & 0xffffffffu;
    if (biased == 0 || biased > flows_.size()) return kNil;
    const std::uint32_t slot = static_cast<std::uint32_t>(biased - 1);
    const FlowSlot& f = flows_[slot];
    if (f.seq == 0 || f.gen != static_cast<std::uint32_t>(id >> 32)) {
      return kNil;
    }
    return slot;
  }

  /// Size in bytes of segment `index` (0-based) of `flow`: segment_bytes_
  /// for all but the last, which carries the remainder.
  [[nodiscard]] double segment_size(const FlowSlot& flow,
                                    std::uint32_t index) const;

  /// Full segments of `flow` remaining from `first` before its (possibly
  /// short) final segment.
  [[nodiscard]] std::uint32_t full_segments_from(const FlowSlot& flow,
                                                 std::uint32_t first) const;

  /// Exact single-segment serialization time at `rate` for a segment of
  /// `size` bytes — the same expression reschedule() uses.
  [[nodiscard]] static double seg_time(double size, double rate);

  /// Starts serving the next queued segment (or batch) on an idle link.
  /// `up` selects the direction.
  void serve(NodeId node, bool up);

  /// Begins service on `slot` after its ticket was dequeued; chooses
  /// between a coalesced batch and plain single-segment service.
  void start_uplink(Link& link, NodeId node, std::uint32_t slot);
  void start_downlink(Link& link, NodeId node, std::uint32_t slot);

  /// Applies progress accrued since last_update to the in-service segment.
  void settle(Link& link);

  /// (Re)schedules the link's service-completion event from its current
  /// remaining/rate; rate <= 0 parks the segment with no event.
  void reschedule(Link& link, NodeId node, bool up);

  /// Reverts a mid-flight batch to the exact single-segment state the
  /// naive execution would be in at now(): fully-elapsed segments are
  /// accounted (and their arrival chain truncated, for trains), the
  /// in-service segment is reconstructed (remaining, last_update,
  /// completion event at its exact single-segment time) and, for
  /// downlink batches, unstarted claimed segments return to
  /// pending_down. break_plan may complete the flow (every batched
  /// segment already delivered at a time exactly equal to now()) — it
  /// then fires the completion callback, so callers must re-resolve any
  /// slot/node references after.
  void break_train(Link& link, NodeId node);
  void break_plan(Link& link, NodeId node);

  void on_uplink_done(NodeId node);
  void on_downlink_done(NodeId node);

  /// Fast-channel handlers. Payload: {node, up} for service completions,
  /// {flow id, chained} for propagation arrivals (chained = 1 means the
  /// arrival is part of a train's chain and must reschedule the next).
  static void link_done_trampoline(void* ctx, const sim::FastPayload& p);
  static void arrive_trampoline(void* ctx, const sim::FastPayload& p);
  void on_arrive(FlowId id, bool chained);

  /// If `slot` is the in-service flow on `link`, aborts the service
  /// (batch included) and starts the next queued segment.
  void evict_from_link(Link& link, std::uint32_t slot, NodeId node, bool up);

  /// Unlinks a flow, bumps its generation, recycles the slot. Does not
  /// touch the links — callers evict first.
  void retire(std::uint32_t slot);

  sim::Simulation& sim_;
  double control_latency_;
  std::uint32_t segment_bytes_;
  std::uint32_t max_train_;
  std::uint16_t ch_link_done_ = 0;  // fast channel: service completions
  std::uint16_t ch_arrive_ = 0;     // fast channel: propagation arrivals
  std::vector<NodeSlot> nodes_;  // index = NodeId - 1; ids never reused
  std::vector<FlowSlot> flows_;  // slab; index = low id half - 1
  std::vector<std::uint32_t> free_flows_;  // retired slots awaiting reuse
  std::uint32_t all_head_ = kNil;  // creation-order list of live flows
  std::uint32_t all_tail_ = kNil;
  std::size_t flow_count_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t train_segments_ = 0;
};

}  // namespace swarmlab::net
