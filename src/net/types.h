// Identifiers and constants shared by every network backend.
#pragma once

#include <cstdint>
#include <limits>

namespace swarmlab::net {

/// Identifies an endpoint (a simulated host).
using NodeId = std::uint32_t;

/// Identifies a live flow. 0 is never a valid id (callers use it as a
/// "no flow" sentinel).
using FlowId = std::uint64_t;

/// Unlimited capacity marker.
inline constexpr double kUnlimited = std::numeric_limits<double>::infinity();

}  // namespace swarmlab::net
