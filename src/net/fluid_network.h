// Flow-level ("fluid") network model.
//
// Data transfers are flows with a byte size; a flow's instantaneous rate is
//
//     rate = min( up(sender)   / #active-outgoing(sender),
//                 down(receiver) / #active-incoming(receiver) )
//
// i.e., the sender's upload pipe is split equally across its concurrent
// uploads (mirroring TCP sharing across connections plus mainline's global
// upload rate cap), with a one-pass receiver-side cap. Rates are
// recomputed whenever a flow starts or ends at either endpoint.
//
// This sender-bottleneck model matches the regime the paper studies: the
// monitored client uploads at most 20 kB/s with effectively unlimited
// download, and the transient-state analysis (§IV-A.2.a) hinges on the
// initial seed's upload capacity being the binding constraint.
//
// Control messages (have/interested/choke/...) are a few dozen bytes and
// are modeled as pure latency via `send_control`.
//
// Storage: nodes and flows live in index-addressed slabs instead of hash
// maps. NodeIds are never reused (a removed node's slot stays dead);
// FlowIds are generation-checked slot handles, so a stale id held by a
// sender after fault injection aborts its upload can never alias the
// slot's next tenant. Each flow is threaded onto three intrusive lists —
// its sender's outgoing list, its receiver's incoming list, and a global
// list — all in creation order, which is exactly the ascending-id order
// the pre-slab implementation produced by sorting. See
// docs/performance.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"
#include "net/types.h"
#include "sim/simulation.h"
#include "sim/types.h"

namespace swarmlab::net {

/// The fluid network. One instance per simulation. The default
/// net::Network backend, registered as "fluid" (see net/backend.h).
class FluidNetwork final : public Network {
 public:
  /// `control_latency` is the one-way delay applied to control messages
  /// and to the first byte of each flow, in seconds.
  explicit FluidNetwork(sim::Simulation& sim, double control_latency = 0.05)
      : sim_(sim), control_latency_(control_latency) {}

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Registers a host with the given capacities in bytes/second
  /// (kUnlimited allowed). Returns its id.
  NodeId add_node(double up_bytes_per_sec, double down_bytes_per_sec) override;

  /// Removes a host; all its flows are silently aborted (no completion
  /// callbacks fire).
  void remove_node(NodeId node) override;

  /// Changes a node's capacities mid-run (fault injection, throttling).
  /// Every flow touching the node is settled at its old rate, re-rated,
  /// and rescheduled — including flows parked at rate 0, which resume the
  /// moment capacity returns. Zero is allowed (parks all flows); negative
  /// values clamp to zero. Unknown nodes are ignored.
  void set_node_capacity(NodeId node, double up_bytes_per_sec,
                         double down_bytes_per_sec) override;

  [[nodiscard]] bool has_node(NodeId node) const override {
    return node >= 1 && node <= nodes_.size() && nodes_[node - 1].alive;
  }

  /// True while the flow is in transit (neither completed nor
  /// cancelled). Lets a sender detect an upload aborted by fault
  /// injection, which fires no callback. Generation-checked: a stale id
  /// is never confused with the slot's next tenant.
  [[nodiscard]] bool has_flow(FlowId flow) const override {
    return find_flow(flow) != nullptr;
  }

  /// Ids of all in-transit flows, in creation order — a deterministic
  /// enumeration for fault injection's random victim pick. (Until a flow
  /// slot is reused this equals ascending-id order, which is what the
  /// pre-slab implementation returned.)
  [[nodiscard]] std::vector<FlowId> active_flow_ids() const override;

  /// Starts a transfer of `bytes` from `from` to `to`; `on_complete` fires
  /// when the last byte arrives. Returns the flow id (never 0).
  FlowId start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                    std::function<void()> on_complete) override;

  /// Aborts a flow. Returns true when the flow was still active; the
  /// completion callback never fires.
  bool cancel_flow(FlowId flow) override;

  /// Current rate of a flow in bytes/second (0 if unknown/finished).
  [[nodiscard]] double flow_rate(FlowId flow) const override;

  /// Delivers `deliver` to the destination after the control latency
  /// plus `extra_delay` (fault-injected jitter; default none). The
  /// destination is not checked for liveness here; higher layers guard
  /// against delivery to departed peers.
  void send_control(std::function<void()> deliver,
                    double extra_delay = 0.0) override;

  [[nodiscard]] double control_latency() const override {
    return control_latency_;
  }

  /// Number of active flows (for tests/diagnostics).
  [[nodiscard]] std::size_t active_flows() const override {
    return flow_count_;
  }

  /// Upload capacity of a node (for diagnostics).
  [[nodiscard]] double node_up(NodeId node) const override;

 private:
  /// "No slot" sentinel for intrusive links.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct NodeSlot {
    double up = kUnlimited;
    double down = kUnlimited;
    bool alive = false;
    // Intrusive list heads/tails (flow slab indices), creation order.
    std::uint32_t out_head = kNil, out_tail = kNil;
    std::uint32_t in_head = kNil, in_tail = kNil;
    std::uint32_t out_count = 0, in_count = 0;
  };

  struct FlowSlot {
    NodeId from = 0;
    NodeId to = 0;
    double remaining = 0.0;  // bytes
    double rate = 0.0;       // bytes/sec
    sim::SimTime last_update = 0.0;
    sim::EventId completion_event = 0;
    std::function<void()> on_complete;
    std::uint64_t seq = 0;  // creation order; 0 marks a vacant slot
    std::uint32_t gen = 0;  // bumped on retirement; stale ids mismatch
    // Intrusive links (flow slab indices).
    std::uint32_t out_prev = kNil, out_next = kNil;  // sender's outgoing
    std::uint32_t in_prev = kNil, in_next = kNil;    // receiver's incoming
    std::uint32_t all_prev = kNil, all_next = kNil;  // global, creation order
  };

  static constexpr FlowId pack(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<FlowId>(gen) << 32) | (static_cast<FlowId>(slot) + 1);
  }

  /// Slab slot of a live flow id; kNil when the id is stale or malformed.
  [[nodiscard]] std::uint32_t slot_of(FlowId id) const {
    const std::uint64_t biased = id & 0xffffffffu;
    if (biased == 0 || biased > flows_.size()) return kNil;
    const std::uint32_t slot = static_cast<std::uint32_t>(biased - 1);
    const FlowSlot& f = flows_[slot];
    if (f.seq == 0 || f.gen != static_cast<std::uint32_t>(id >> 32)) {
      return kNil;
    }
    return slot;
  }

  [[nodiscard]] const FlowSlot* find_flow(FlowId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot == kNil ? nullptr : &flows_[slot];
  }

  [[nodiscard]] NodeSlot* find_node(NodeId id) {
    return has_node(id) ? &nodes_[id - 1] : nullptr;
  }
  [[nodiscard]] const NodeSlot* find_node(NodeId id) const {
    return has_node(id) ? &nodes_[id - 1] : nullptr;
  }

  /// Threads a fresh flow onto its three lists (tail = creation order).
  void link(std::uint32_t slot);

  /// Unlinks a flow from its lists, bumps its generation (invalidating
  /// outstanding ids) and recycles the slot.
  void detach(std::uint32_t slot);

  /// Applies progress accrued since `last_update` at the current rate.
  void settle(FlowSlot& flow);

  /// Recomputes rates and completion events for every flow touching
  /// `from`'s outgoing set and `to`'s incoming set, in creation order
  /// (two-pointer merge of the per-node lists by `seq`).
  void reallocate(NodeId from, NodeId to);

  /// Recomputes one flow's rate from the current share counts.
  [[nodiscard]] double compute_rate(const FlowSlot& flow) const;

  /// Reschedules the completion event for a settled flow.
  void reschedule(FlowId id, FlowSlot& flow);

  void complete_flow(FlowId id);

  sim::Simulation& sim_;
  double control_latency_;
  std::vector<NodeSlot> nodes_;  // index = NodeId - 1; ids never reused
  std::vector<FlowSlot> flows_;  // slab; index = low id half - 1
  std::vector<std::uint32_t> free_flows_;  // retired slots awaiting reuse
  std::uint32_t all_head_ = kNil, all_tail_ = kNil;
  std::size_t flow_count_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace swarmlab::net
