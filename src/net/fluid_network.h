// Flow-level ("fluid") network model.
//
// Data transfers are flows with a byte size; a flow's instantaneous rate is
//
//     rate = min( up(sender)   / #active-outgoing(sender),
//                 down(receiver) / #active-incoming(receiver) )
//
// i.e., the sender's upload pipe is split equally across its concurrent
// uploads (mirroring TCP sharing across connections plus mainline's global
// upload rate cap), with a one-pass receiver-side cap. Rates are
// recomputed whenever a flow starts or ends at either endpoint.
//
// This sender-bottleneck model matches the regime the paper studies: the
// monitored client uploads at most 20 kB/s with effectively unlimited
// download, and the transient-state analysis (§IV-A.2.a) hinges on the
// initial seed's upload capacity being the binding constraint.
//
// Control messages (have/interested/choke/...) are a few dozen bytes and
// are modeled as pure latency via `send_control`.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/simulation.h"
#include "sim/types.h"

namespace swarmlab::net {

/// Identifies an endpoint (a simulated host).
using NodeId = std::uint32_t;

/// Identifies a live flow.
using FlowId = std::uint64_t;

/// Unlimited capacity marker.
inline constexpr double kUnlimited = std::numeric_limits<double>::infinity();

/// The fluid network. One instance per simulation.
class FluidNetwork {
 public:
  /// `control_latency` is the one-way delay applied to control messages
  /// and to the first byte of each flow, in seconds.
  explicit FluidNetwork(sim::Simulation& sim, double control_latency = 0.05)
      : sim_(sim), control_latency_(control_latency) {}

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Registers a host with the given capacities in bytes/second
  /// (kUnlimited allowed). Returns its id.
  NodeId add_node(double up_bytes_per_sec, double down_bytes_per_sec);

  /// Removes a host; all its flows are silently aborted (no completion
  /// callbacks fire).
  void remove_node(NodeId node);

  /// Changes a node's capacities mid-run (fault injection, throttling).
  /// Every flow touching the node is settled at its old rate, re-rated,
  /// and rescheduled — including flows parked at rate 0, which resume the
  /// moment capacity returns. Zero is allowed (parks all flows); negative
  /// values clamp to zero. Unknown nodes are ignored.
  void set_node_capacity(NodeId node, double up_bytes_per_sec,
                         double down_bytes_per_sec);

  [[nodiscard]] bool has_node(NodeId node) const {
    return nodes_.contains(node);
  }

  /// True while the flow is in transit (neither completed nor
  /// cancelled). Lets a sender detect an upload aborted by fault
  /// injection, which fires no callback.
  [[nodiscard]] bool has_flow(FlowId flow) const {
    return flows_.contains(flow);
  }

  /// Ids of all in-transit flows, sorted ascending — a deterministic
  /// enumeration (the internal map is unordered) for fault injection's
  /// random victim pick.
  [[nodiscard]] std::vector<FlowId> active_flow_ids() const;

  /// Starts a transfer of `bytes` from `from` to `to`; `on_complete` fires
  /// when the last byte arrives. Returns the flow id.
  FlowId start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                    std::function<void()> on_complete);

  /// Aborts a flow. Returns true when the flow was still active; the
  /// completion callback never fires.
  bool cancel_flow(FlowId flow);

  /// Current rate of a flow in bytes/second (0 if unknown/finished).
  [[nodiscard]] double flow_rate(FlowId flow) const;

  /// Delivers `deliver` to the destination after the control latency
  /// plus `extra_delay` (fault-injected jitter; default none). The
  /// destination is not checked for liveness here; higher layers guard
  /// against delivery to departed peers.
  void send_control(std::function<void()> deliver, double extra_delay = 0.0);

  [[nodiscard]] double control_latency() const { return control_latency_; }

  /// Number of active flows (for tests/diagnostics).
  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Upload capacity of a node (for diagnostics).
  [[nodiscard]] double node_up(NodeId node) const;

 private:
  struct Node {
    double up = kUnlimited;
    double down = kUnlimited;
    std::unordered_set<FlowId> outgoing;
    std::unordered_set<FlowId> incoming;
  };

  struct Flow {
    NodeId from = 0;
    NodeId to = 0;
    double remaining = 0.0;  // bytes
    double rate = 0.0;       // bytes/sec
    sim::SimTime last_update = 0.0;
    sim::EventId completion_event = 0;
    std::function<void()> on_complete;
  };

  /// Applies progress accrued since `last_update` at the current rate.
  void settle(Flow& flow);

  /// Recomputes rates and completion events for every flow touching
  /// `from`'s outgoing set and `to`'s incoming set.
  void reallocate(NodeId from, NodeId to);

  /// Recomputes one flow's rate from the current share counts.
  [[nodiscard]] double compute_rate(const Flow& flow) const;

  /// Reschedules the completion event for a settled flow.
  void reschedule(FlowId id, Flow& flow);

  void complete_flow(FlowId id);

  sim::Simulation& sim_;
  double control_latency_;
  std::unordered_map<NodeId, Node> nodes_;
  std::unordered_map<FlowId, Flow> flows_;
  NodeId next_node_ = 1;
  FlowId next_flow_ = 1;
};

}  // namespace swarmlab::net
