// Network-backend registry.
//
// Maps backend names to factories so that swarm::Swarm (and anything
// else that needs a network) can construct one without naming a concrete
// implementation. "fluid" (net::FluidNetwork) is built in; additional
// backends register themselves at static-init or startup time:
//
//   net::register_network_backend("packet", [](sim::Simulation& sim,
//                                              double latency) {
//     return std::make_unique<PacketNetwork>(sim, latency);
//   });
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace swarmlab::sim {
class Simulation;
}  // namespace swarmlab::sim

namespace swarmlab::net {

class Network;

/// The backend every scenario uses unless told otherwise.
inline constexpr const char* kDefaultNetworkBackend = "fluid";

using NetworkFactory = std::function<std::unique_ptr<Network>(
    sim::Simulation& sim, double control_latency)>;

/// Registers `factory` under `name`. Returns false (and keeps the
/// existing entry) when the name is already taken.
bool register_network_backend(const std::string& name,
                              NetworkFactory factory);

/// Instantiates the backend registered under `name`. Throws
/// std::invalid_argument for an unknown name.
std::unique_ptr<Network> make_network(const std::string& name,
                                      sim::Simulation& sim,
                                      double control_latency);

/// Registered backend names, sorted (for --help text and error messages).
std::vector<std::string> network_backends();

}  // namespace swarmlab::net
