// The abstract network backend.
//
// Everything above the network layer — swarm::Swarm, the peer modules,
// fault::FaultInjector — talks to this interface only: flow lifecycle
// (start / cancel / completion), node capacity updates, and latency-only
// control-message delivery. net::FluidNetwork is the default
// implementation; alternative backends (packet-level, latency-matrix,
// mock) register themselves via net/backend.h and slot in without any
// change to swarm or fault code.
//
// Backend contract, required for replay identity:
//  * start_flow returns ids that are never 0 and never alias a live flow;
//  * completion/delivery callbacks run on the owning sim::Simulation, so
//    event-tie ordering follows the scheduler's insertion sequence;
//  * active_flow_ids() enumerates in a deterministic order (creation
//    order for FluidNetwork) — fault injection picks victims from it;
//  * cancel_flow never fires the completion callback.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/types.h"

namespace swarmlab::net {

class Network {
 public:
  virtual ~Network() = default;

  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a host with the given capacities in bytes/second
  /// (kUnlimited allowed). Returns its id.
  virtual NodeId add_node(double up_bytes_per_sec,
                          double down_bytes_per_sec) = 0;

  /// Removes a host; all its flows are silently aborted (no completion
  /// callbacks fire).
  virtual void remove_node(NodeId node) = 0;

  /// Changes a node's capacities mid-run (fault injection, throttling).
  /// Flows parked at rate 0 must resume the moment capacity returns.
  virtual void set_node_capacity(NodeId node, double up_bytes_per_sec,
                                 double down_bytes_per_sec) = 0;

  [[nodiscard]] virtual bool has_node(NodeId node) const = 0;

  /// True while the flow is in transit (neither completed nor
  /// cancelled). Lets a sender detect an upload aborted by fault
  /// injection, which fires no callback.
  [[nodiscard]] virtual bool has_flow(FlowId flow) const = 0;

  /// Ids of all in-transit flows, in a deterministic order — the
  /// enumeration fault injection draws random victims from.
  [[nodiscard]] virtual std::vector<FlowId> active_flow_ids() const = 0;

  /// Starts a transfer of `bytes` from `from` to `to`; `on_complete`
  /// fires when the last byte arrives. Returns the flow id (never 0).
  virtual FlowId start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                            std::function<void()> on_complete) = 0;

  /// Aborts a flow. Returns true when the flow was still active; the
  /// completion callback never fires.
  virtual bool cancel_flow(FlowId flow) = 0;

  /// Current rate of a flow in bytes/second (0 if unknown/finished).
  [[nodiscard]] virtual double flow_rate(FlowId flow) const = 0;

  /// Delivers `deliver` to the destination after the control latency
  /// plus `extra_delay` (fault-injected jitter; default none). The
  /// destination is not checked for liveness here; higher layers guard
  /// against delivery to departed peers.
  virtual void send_control(std::function<void()> deliver,
                            double extra_delay = 0.0) = 0;

  [[nodiscard]] virtual double control_latency() const = 0;

  /// Number of active flows (for tests/diagnostics).
  [[nodiscard]] virtual std::size_t active_flows() const = 0;

  /// Upload capacity of a node (for diagnostics).
  [[nodiscard]] virtual double node_up(NodeId node) const = 0;

  /// Segments served through coalesced multi-segment service events
  /// (segment trains / downlink plans). Zero for backends that do not
  /// coalesce; surfaced in the batch report's perf object.
  [[nodiscard]] virtual std::uint64_t train_segments() const { return 0; }
};

}  // namespace swarmlab::net
