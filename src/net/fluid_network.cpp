#include "net/fluid_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace swarmlab::net {

namespace {
// Completion times are scheduled with a tiny epsilon so that float drift
// in settle() cannot leave a sliver of bytes unfinished.
constexpr double kByteEpsilon = 1e-6;
}  // namespace

NodeId FluidNetwork::add_node(double up_bytes_per_sec,
                              double down_bytes_per_sec) {
  assert(up_bytes_per_sec > 0.0 && down_bytes_per_sec > 0.0);
  NodeSlot node;
  node.up = up_bytes_per_sec;
  node.down = down_bytes_per_sec;
  node.alive = true;
  nodes_.push_back(node);
  return static_cast<NodeId>(nodes_.size());
}

void FluidNetwork::remove_node(NodeId node) {
  NodeSlot* n = find_node(node);
  if (n == nullptr) return;
  // Collect first: cancel_flow relinks the lists we iterate. Outgoing
  // then incoming, each in creation order.
  std::vector<FlowId> doomed;
  doomed.reserve(n->out_count + n->in_count);
  for (std::uint32_t s = n->out_head; s != kNil; s = flows_[s].out_next) {
    doomed.push_back(pack(flows_[s].gen, s));
  }
  for (std::uint32_t s = n->in_head; s != kNil; s = flows_[s].in_next) {
    doomed.push_back(pack(flows_[s].gen, s));
  }
  for (const FlowId f : doomed) cancel_flow(f);
  n->alive = false;
}

double FluidNetwork::node_up(NodeId node) const {
  const NodeSlot* n = find_node(node);
  return n == nullptr ? 0.0 : n->up;
}

void FluidNetwork::set_node_capacity(NodeId node, double up_bytes_per_sec,
                                     double down_bytes_per_sec) {
  NodeSlot* n = find_node(node);
  if (n == nullptr) return;
  n->up = std::max(0.0, up_bytes_per_sec);
  n->down = std::max(0.0, down_bytes_per_sec);
  // reallocate(node, node) covers exactly the affected set — the node's
  // outgoing plus incoming flows — settling each at its old rate and
  // rescheduling it at the new one. This is the guaranteed wake-up for
  // flows parked at rate 0 (see reschedule()).
  reallocate(node, node);
}

std::vector<FlowId> FluidNetwork::active_flow_ids() const {
  std::vector<FlowId> ids;
  ids.reserve(flow_count_);
  for (std::uint32_t s = all_head_; s != kNil; s = flows_[s].all_next) {
    ids.push_back(pack(flows_[s].gen, s));
  }
  return ids;
}

void FluidNetwork::link(std::uint32_t slot) {
  FlowSlot& flow = flows_[slot];
  NodeSlot& sender = nodes_[flow.from - 1];
  NodeSlot& receiver = nodes_[flow.to - 1];
  flow.out_prev = sender.out_tail;
  flow.out_next = kNil;
  if (sender.out_tail != kNil) {
    flows_[sender.out_tail].out_next = slot;
  } else {
    sender.out_head = slot;
  }
  sender.out_tail = slot;
  ++sender.out_count;
  flow.in_prev = receiver.in_tail;
  flow.in_next = kNil;
  if (receiver.in_tail != kNil) {
    flows_[receiver.in_tail].in_next = slot;
  } else {
    receiver.in_head = slot;
  }
  receiver.in_tail = slot;
  ++receiver.in_count;
  flow.all_prev = all_tail_;
  flow.all_next = kNil;
  if (all_tail_ != kNil) {
    flows_[all_tail_].all_next = slot;
  } else {
    all_head_ = slot;
  }
  all_tail_ = slot;
  ++flow_count_;
}

void FluidNetwork::detach(std::uint32_t slot) {
  FlowSlot& flow = flows_[slot];
  NodeSlot& sender = nodes_[flow.from - 1];
  NodeSlot& receiver = nodes_[flow.to - 1];
  if (flow.out_prev != kNil) {
    flows_[flow.out_prev].out_next = flow.out_next;
  } else {
    sender.out_head = flow.out_next;
  }
  if (flow.out_next != kNil) {
    flows_[flow.out_next].out_prev = flow.out_prev;
  } else {
    sender.out_tail = flow.out_prev;
  }
  --sender.out_count;
  if (flow.in_prev != kNil) {
    flows_[flow.in_prev].in_next = flow.in_next;
  } else {
    receiver.in_head = flow.in_next;
  }
  if (flow.in_next != kNil) {
    flows_[flow.in_next].in_prev = flow.in_prev;
  } else {
    receiver.in_tail = flow.in_prev;
  }
  --receiver.in_count;
  if (flow.all_prev != kNil) {
    flows_[flow.all_prev].all_next = flow.all_next;
  } else {
    all_head_ = flow.all_next;
  }
  if (flow.all_next != kNil) {
    flows_[flow.all_next].all_prev = flow.all_prev;
  } else {
    all_tail_ = flow.all_prev;
  }
  --flow_count_;
  // Retire: invalidate outstanding ids, drop the callback, recycle.
  ++flow.gen;
  flow.seq = 0;
  flow.on_complete = nullptr;
  free_flows_.push_back(slot);
}

FlowId FluidNetwork::start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                                std::function<void()> on_complete) {
  assert(has_node(from) && has_node(to));
  assert(bytes > 0);
  std::uint32_t slot;
  if (!free_flows_.empty()) {
    slot = free_flows_.back();
    free_flows_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
  }
  FlowSlot& flow = flows_[slot];
  flow.from = from;
  flow.to = to;
  flow.remaining = static_cast<double>(bytes);
  flow.rate = 0.0;
  flow.last_update = sim_.now();
  flow.completion_event = 0;
  flow.on_complete = std::move(on_complete);
  flow.seq = next_seq_++;
  link(slot);
  const FlowId id = pack(flow.gen, slot);
  reallocate(from, to);
  return id;
}

bool FluidNetwork::cancel_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return false;
  FlowSlot& flow = flows_[slot];
  const NodeId from = flow.from;
  const NodeId to = flow.to;
  if (flow.completion_event != 0) {
    sim_.cancel(flow.completion_event);
  }
  detach(slot);
  reallocate(from, to);
  return true;
}

double FluidNetwork::flow_rate(FlowId id) const {
  const FlowSlot* flow = find_flow(id);
  return flow == nullptr ? 0.0 : flow->rate;
}

void FluidNetwork::send_control(std::function<void()> deliver,
                                double extra_delay) {
  sim_.schedule_in(control_latency_ + std::max(0.0, extra_delay),
                   std::move(deliver));
}

void FluidNetwork::settle(FlowSlot& flow) {
  const sim::SimTime now = sim_.now();
  if (now > flow.last_update && flow.rate > 0.0) {
    flow.remaining =
        std::max(0.0, flow.remaining - flow.rate * (now - flow.last_update));
  }
  flow.last_update = now;
}

double FluidNetwork::compute_rate(const FlowSlot& flow) const {
  const NodeSlot* sender = find_node(flow.from);
  const NodeSlot* receiver = find_node(flow.to);
  if (sender == nullptr || receiver == nullptr) return 0.0;
  const double up_share =
      sender->up /
      static_cast<double>(std::max<std::uint32_t>(1, sender->out_count));
  const double down_share =
      receiver->down /
      static_cast<double>(std::max<std::uint32_t>(1, receiver->in_count));
  return std::min(up_share, down_share);
}

void FluidNetwork::reschedule(FlowId id, FlowSlot& flow) {
  if (flow.completion_event != 0) {
    sim_.cancel(flow.completion_event);
    flow.completion_event = 0;
  }
  // A flow at rate <= 0 is parked with no completion event. Every path
  // that changes its share — start_flow/cancel_flow/complete_flow at
  // either endpoint and set_node_capacity — goes through reallocate(),
  // which re-rates and reschedules it, so a parked flow is guaranteed to
  // resume when capacity returns (tests: FluidNetwork.StalledFlow*).
  if (flow.rate <= 0.0) return;
  const double secs = std::max(0.0, flow.remaining - kByteEpsilon) / flow.rate;
  flow.completion_event =
      sim_.schedule_in(secs, [this, id] { complete_flow(id); });
}

void FluidNetwork::reallocate(NodeId from, NodeId to) {
  // Walk the affected flow set — outgoing of `from` merged with incoming
  // of `to` by creation seq (both lists are creation-ordered, and equal
  // seq means the same flow appears in both). This visits flows in the
  // exact ascending order the old sort+unique produced, with no
  // allocation. reschedule() only touches the event queue, never these
  // lists, so live iteration is safe.
  const NodeSlot* f = find_node(from);
  const NodeSlot* t = find_node(to);
  std::uint32_t a = f != nullptr ? f->out_head : kNil;
  std::uint32_t b = t != nullptr ? t->in_head : kNil;
  while (a != kNil || b != kNil) {
    std::uint32_t cur;
    if (b == kNil) {
      cur = a;
      a = flows_[a].out_next;
    } else if (a == kNil) {
      cur = b;
      b = flows_[b].in_next;
    } else if (flows_[a].seq < flows_[b].seq) {
      cur = a;
      a = flows_[a].out_next;
    } else if (flows_[b].seq < flows_[a].seq) {
      cur = b;
      b = flows_[b].in_next;
    } else {  // same flow on both lists (from → to itself)
      cur = a;
      a = flows_[a].out_next;
      b = flows_[b].in_next;
    }
    FlowSlot& flow = flows_[cur];
    settle(flow);
    flow.rate = compute_rate(flow);
    // Always cancel + reschedule, even when the rate is unchanged: a
    // fresh event takes a fresh tie-break sequence, and same-fire-time
    // ties are common among sender-bound flows (identical remaining and
    // rate), so skipping the churn here reorders tied completions and
    // breaks replay identity. Cancellation is O(1)-lazy, so the cost is
    // one heap push.
    reschedule(pack(flow.gen, cur), flow);
  }
}

void FluidNetwork::complete_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNil) return;
  FlowSlot& flow = flows_[slot];
  settle(flow);
  flow.completion_event = 0;
  const NodeId from = flow.from;
  const NodeId to = flow.to;
  // Detach before the callback: the callback typically starts a new flow.
  std::function<void()> on_complete = std::move(flow.on_complete);
  detach(slot);
  reallocate(from, to);
  if (on_complete) on_complete();
}

}  // namespace swarmlab::net
