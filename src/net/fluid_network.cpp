#include "net/fluid_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace swarmlab::net {

namespace {
// Completion times are scheduled with a tiny epsilon so that float drift
// in settle() cannot leave a sliver of bytes unfinished.
constexpr double kByteEpsilon = 1e-6;
}  // namespace

NodeId FluidNetwork::add_node(double up_bytes_per_sec,
                              double down_bytes_per_sec) {
  assert(up_bytes_per_sec > 0.0 && down_bytes_per_sec > 0.0);
  const NodeId id = next_node_++;
  Node node;
  node.up = up_bytes_per_sec;
  node.down = down_bytes_per_sec;
  nodes_.emplace(id, std::move(node));
  return id;
}

void FluidNetwork::remove_node(NodeId node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  // Collect first: cancel_flow mutates the sets we iterate.
  std::vector<FlowId> doomed(it->second.outgoing.begin(),
                             it->second.outgoing.end());
  doomed.insert(doomed.end(), it->second.incoming.begin(),
                it->second.incoming.end());
  for (const FlowId f : doomed) cancel_flow(f);
  nodes_.erase(node);
}

double FluidNetwork::node_up(NodeId node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0.0 : it->second.up;
}

void FluidNetwork::set_node_capacity(NodeId node, double up_bytes_per_sec,
                                     double down_bytes_per_sec) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  it->second.up = std::max(0.0, up_bytes_per_sec);
  it->second.down = std::max(0.0, down_bytes_per_sec);
  // reallocate(node, node) covers exactly the affected set — the node's
  // outgoing plus incoming flows — settling each at its old rate and
  // rescheduling it at the new one. This is the guaranteed wake-up for
  // flows parked at rate 0 (see reschedule()).
  reallocate(node, node);
}

std::vector<FlowId> FluidNetwork::active_flow_ids() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

FlowId FluidNetwork::start_flow(NodeId from, NodeId to, std::uint64_t bytes,
                                std::function<void()> on_complete) {
  assert(nodes_.contains(from) && nodes_.contains(to));
  assert(bytes > 0);
  const FlowId id = next_flow_++;
  Flow flow;
  flow.from = from;
  flow.to = to;
  flow.remaining = static_cast<double>(bytes);
  flow.last_update = sim_.now();
  flow.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(flow));
  nodes_[from].outgoing.insert(id);
  nodes_[to].incoming.insert(id);
  reallocate(from, to);
  return id;
}

bool FluidNetwork::cancel_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  const NodeId from = it->second.from;
  const NodeId to = it->second.to;
  if (it->second.completion_event != 0) {
    sim_.cancel(it->second.completion_event);
  }
  if (auto n = nodes_.find(from); n != nodes_.end()) {
    n->second.outgoing.erase(id);
  }
  if (auto n = nodes_.find(to); n != nodes_.end()) {
    n->second.incoming.erase(id);
  }
  flows_.erase(it);
  reallocate(from, to);
  return true;
}

double FluidNetwork::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FluidNetwork::send_control(std::function<void()> deliver,
                                double extra_delay) {
  sim_.schedule_in(control_latency_ + std::max(0.0, extra_delay),
                   std::move(deliver));
}

void FluidNetwork::settle(Flow& flow) {
  const sim::SimTime now = sim_.now();
  if (now > flow.last_update && flow.rate > 0.0) {
    flow.remaining =
        std::max(0.0, flow.remaining - flow.rate * (now - flow.last_update));
  }
  flow.last_update = now;
}

double FluidNetwork::compute_rate(const Flow& flow) const {
  const auto from_it = nodes_.find(flow.from);
  const auto to_it = nodes_.find(flow.to);
  if (from_it == nodes_.end() || to_it == nodes_.end()) return 0.0;
  const Node& sender = from_it->second;
  const Node& receiver = to_it->second;
  const double up_share =
      sender.up / static_cast<double>(std::max<std::size_t>(
                      1, sender.outgoing.size()));
  const double down_share =
      receiver.down / static_cast<double>(std::max<std::size_t>(
                          1, receiver.incoming.size()));
  return std::min(up_share, down_share);
}

void FluidNetwork::reschedule(FlowId id, Flow& flow) {
  if (flow.completion_event != 0) {
    sim_.cancel(flow.completion_event);
    flow.completion_event = 0;
  }
  // A flow at rate <= 0 is parked with no completion event. Every path
  // that changes its share — start_flow/cancel_flow/complete_flow at
  // either endpoint and set_node_capacity — goes through reallocate(),
  // which re-rates and reschedules it, so a parked flow is guaranteed to
  // resume when capacity returns (tests: FluidNetwork.StalledFlow*).
  if (flow.rate <= 0.0) return;
  const double secs = std::max(0.0, flow.remaining - kByteEpsilon) / flow.rate;
  flow.completion_event =
      sim_.schedule_in(secs, [this, id] { complete_flow(id); });
}

void FluidNetwork::reallocate(NodeId from, NodeId to) {
  // Gather the affected flow set (outgoing of `from` plus incoming of
  // `to`); each is settled at the old rate, then re-rated and
  // rescheduled.
  std::vector<FlowId> affected;
  if (const auto it = nodes_.find(from); it != nodes_.end()) {
    affected.insert(affected.end(), it->second.outgoing.begin(),
                    it->second.outgoing.end());
  }
  if (const auto it = nodes_.find(to); it != nodes_.end()) {
    affected.insert(affected.end(), it->second.incoming.begin(),
                    it->second.incoming.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (const FlowId id : affected) {
    auto it = flows_.find(id);
    if (it == flows_.end()) continue;
    Flow& flow = it->second;
    settle(flow);
    flow.rate = compute_rate(flow);
    reschedule(id, flow);
  }
}

void FluidNetwork::complete_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  settle(flow);
  flow.completion_event = 0;
  const NodeId from = flow.from;
  const NodeId to = flow.to;
  // Detach before the callback: the callback typically starts a new flow.
  std::function<void()> on_complete = std::move(flow.on_complete);
  if (auto n = nodes_.find(from); n != nodes_.end()) {
    n->second.outgoing.erase(id);
  }
  if (auto n = nodes_.find(to); n != nodes_.end()) {
    n->second.incoming.erase(id);
  }
  flows_.erase(it);
  reallocate(from, to);
  if (on_complete) on_complete();
}

}  // namespace swarmlab::net
