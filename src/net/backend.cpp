#include "net/backend.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "net/fluid_network.h"
#include "net/network.h"
#include "net/packet_network.h"

namespace swarmlab::net {

namespace {

std::map<std::string, NetworkFactory>& registry() {
  // The built-in backends are seeded on first use so that registration
  // needs no static-init ordering guarantees.
  static std::map<std::string, NetworkFactory> backends{
      {kDefaultNetworkBackend,
       [](sim::Simulation& sim, double control_latency) {
         return std::unique_ptr<Network>(
             new FluidNetwork(sim, control_latency));
       }},
      {"packet",
       [](sim::Simulation& sim, double control_latency) {
         return std::unique_ptr<Network>(
             new PacketNetwork(sim, control_latency));
       }}};
  return backends;
}

}  // namespace

bool register_network_backend(const std::string& name,
                              NetworkFactory factory) {
  return registry().emplace(name, std::move(factory)).second;
}

std::unique_ptr<Network> make_network(const std::string& name,
                                      sim::Simulation& sim,
                                      double control_latency) {
  const auto& backends = registry();
  const auto it = backends.find(name);
  if (it == backends.end()) {
    std::string known;
    for (const auto& [n, f] : backends) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown network backend '" + name +
                                "' (registered: " + known + ")");
  }
  return it->second(sim, control_latency);
}

std::vector<std::string> network_backends() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

}  // namespace swarmlab::net
