#include "viz/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace swarmlab::viz {

namespace {

constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 36;
constexpr int kMarginBottom = 48;

const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                          "#9467bd", "#8c564b"};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void grow(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] bool valid() const { return lo <= hi; }
  void pad() {
    if (!valid()) {
      lo = 0.0;
      hi = 1.0;
    } else if (lo == hi) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
};

std::string fmt(double v) {
  char buf[32];
  if (std::abs(v) >= 10000 || (std::abs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buf, sizeof(buf), "%.2g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", std::round(v * 100) / 100);
  }
  return buf;
}

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

class Canvas {
 public:
  Canvas(const PlotOptions& options, Range x, Range y)
      : opt_(options), x_(x), y_(y) {
    plot_w_ = opt_.width - kMarginLeft - kMarginRight;
    plot_h_ = opt_.height - kMarginTop - kMarginBottom;
  }

  [[nodiscard]] double map_x(double v) const {
    double t = opt_.log_x ? std::log10(std::max(v, 1e-12)) : v;
    double lo = opt_.log_x ? std::log10(std::max(x_.lo, 1e-12)) : x_.lo;
    double hi = opt_.log_x ? std::log10(std::max(x_.hi, 1e-12)) : x_.hi;
    if (hi <= lo) hi = lo + 1.0;
    return kMarginLeft + (t - lo) / (hi - lo) * plot_w_;
  }

  [[nodiscard]] double map_y(double v) const {
    double lo = y_.lo, hi = y_.hi;
    if (hi <= lo) hi = lo + 1.0;
    return kMarginTop + plot_h_ - (v - lo) / (hi - lo) * plot_h_;
  }

  void header(std::string& svg) const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
                  "height=\"%d\" viewBox=\"0 0 %d %d\" "
                  "font-family=\"sans-serif\" font-size=\"12\">\n",
                  opt_.width, opt_.height, opt_.width, opt_.height);
    svg += buf;
    svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
    if (!opt_.title.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "<text x=\"%d\" y=\"20\" text-anchor=\"middle\" "
                    "font-size=\"14\" font-weight=\"bold\">%s</text>\n",
                    opt_.width / 2, escape(opt_.title).c_str());
      svg += buf;
    }
  }

  void axes(std::string& svg) const {
    char buf[512];
    // Frame.
    std::snprintf(buf, sizeof(buf),
                  "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
                  "fill=\"none\" stroke=\"#333\"/>\n",
                  kMarginLeft, kMarginTop, plot_w_, plot_h_);
    svg += buf;
    // Ticks: 5 on each axis.
    for (int i = 0; i <= 4; ++i) {
      const double frac = i / 4.0;
      // X tick.
      double xv;
      if (opt_.log_x) {
        const double lo = std::log10(std::max(x_.lo, 1e-12));
        const double hi = std::log10(std::max(x_.hi, 1e-12));
        xv = std::pow(10.0, lo + frac * (hi - lo));
      } else {
        xv = x_.lo + frac * (x_.hi - x_.lo);
      }
      const double xp = map_x(xv);
      std::snprintf(buf, sizeof(buf),
                    "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" "
                    "stroke=\"#333\"/>\n<text x=\"%.1f\" y=\"%d\" "
                    "text-anchor=\"middle\">%s</text>\n",
                    xp, kMarginTop + plot_h_, xp, kMarginTop + plot_h_ + 5,
                    xp, kMarginTop + plot_h_ + 20, fmt(xv).c_str());
      svg += buf;
      // Y tick.
      const double yv = y_.lo + frac * (y_.hi - y_.lo);
      const double yp = map_y(yv);
      std::snprintf(buf, sizeof(buf),
                    "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" "
                    "stroke=\"#333\"/>\n<text x=\"%d\" y=\"%.1f\" "
                    "text-anchor=\"end\">%s</text>\n",
                    kMarginLeft - 5, yp, kMarginLeft, yp, kMarginLeft - 8,
                    yp + 4, fmt(yv).c_str());
      svg += buf;
    }
    // Axis labels.
    if (!opt_.x_label.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\">"
                    "%s</text>\n",
                    kMarginLeft + plot_w_ / 2, opt_.height - 8,
                    escape(opt_.x_label).c_str());
      svg += buf;
    }
    if (!opt_.y_label.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "<text x=\"14\" y=\"%d\" text-anchor=\"middle\" "
                    "transform=\"rotate(-90 14 %d)\">%s</text>\n",
                    kMarginTop + plot_h_ / 2, kMarginTop + plot_h_ / 2,
                    escape(opt_.y_label).c_str());
      svg += buf;
    }
  }

  void legend(std::string& svg, const std::vector<Series>& series) const {
    char buf[256];
    int y = kMarginTop + 14;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series[i].label.empty()) continue;
      const char* color = kPalette[i % 6];
      std::snprintf(buf, sizeof(buf),
                    "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" "
                    "stroke=\"%s\" stroke-width=\"2\"/>\n"
                    "<text x=\"%d\" y=\"%d\">%s</text>\n",
                    kMarginLeft + 10, y - 4, kMarginLeft + 34, y - 4, color,
                    kMarginLeft + 40, y, escape(series[i].label).c_str());
      svg += buf;
      y += 16;
    }
  }

 private:
  const PlotOptions& opt_;
  Range x_, y_;
  int plot_w_;
  int plot_h_;
};

std::pair<Range, Range> data_range(const std::vector<Series>& series,
                                   const PlotOptions& options) {
  Range x, y;
  for (const Series& s : series) {
    for (const auto& [px, py] : s.points) {
      if (options.log_x && px <= 0.0) continue;
      x.grow(px);
      y.grow(py);
    }
  }
  x.pad();
  y.pad();
  if (options.y_from_zero) y.lo = std::min(y.lo, 0.0);
  return {x, y};
}

std::string render(const std::vector<Series>& series,
                   const PlotOptions& options, bool lines) {
  const auto [x, y] = data_range(series, options);
  Canvas canvas(options, x, y);
  std::string svg;
  canvas.header(svg);
  canvas.axes(svg);
  char buf[128];
  for (std::size_t i = 0; i < series.size(); ++i) {
    const char* color = kPalette[i % 6];
    if (lines) {
      svg += "<polyline fill=\"none\" stroke=\"";
      svg += color;
      svg += "\" stroke-width=\"1.5\" points=\"";
      for (const auto& [px, py] : series[i].points) {
        if (options.log_x && px <= 0.0) continue;
        std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", canvas.map_x(px),
                      canvas.map_y(py));
        svg += buf;
      }
      svg += "\"/>\n";
    } else {
      for (const auto& [px, py] : series[i].points) {
        if (options.log_x && px <= 0.0) continue;
        std::snprintf(buf, sizeof(buf),
                      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" "
                      "fill=\"%s\" fill-opacity=\"0.7\"/>\n",
                      canvas.map_x(px), canvas.map_y(py), color);
        svg += buf;
      }
    }
  }
  canvas.legend(svg, series);
  svg += "</svg>\n";
  return svg;
}

}  // namespace

std::string render_line_chart(const std::vector<Series>& series,
                              const PlotOptions& options) {
  return render(series, options, /*lines=*/true);
}

std::string render_scatter(const std::vector<Series>& series,
                           const PlotOptions& options) {
  return render(series, options, /*lines=*/false);
}

Series from_time_series(const stats::TimeSeries& ts, std::string label,
                        std::size_t max_points) {
  Series out;
  out.label = std::move(label);
  for (const auto& s : ts.downsample(max_points)) {
    out.points.emplace_back(s.time, s.value);
  }
  return out;
}

Series from_cdf(const stats::Cdf& cdf, std::string label) {
  Series out;
  out.label = std::move(label);
  if (cdf.empty()) return out;
  const auto& sorted = cdf.sorted_samples();
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Step function: (x_i, i/n) -> (x_i, (i+1)/n).
    out.points.emplace_back(sorted[i], static_cast<double>(i) / n);
    out.points.emplace_back(sorted[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

}  // namespace swarmlab::viz
