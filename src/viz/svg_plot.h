// Minimal, dependency-free SVG chart rendering for the figure
// reproductions: line charts (Figs. 2-6), CDF step plots on a log x-axis
// (Figs. 7-8), and scatter plots (Fig. 10). Output is a self-contained
// SVG document string.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "stats/cdf.h"
#include "stats/timeseries.h"

namespace swarmlab::viz {

/// One plotted series.
struct Series {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

/// Chart-wide options.
struct PlotOptions {
  int width = 720;
  int height = 420;
  std::string title;
  std::string x_label;
  std::string y_label;
  bool log_x = false;   ///< log10 x-axis (interarrival CDFs)
  bool y_from_zero = true;
};

/// Renders connected line series (downsampled by the caller if needed).
std::string render_line_chart(const std::vector<Series>& series,
                              const PlotOptions& options);

/// Renders unconnected points.
std::string render_scatter(const std::vector<Series>& series,
                           const PlotOptions& options);

/// Conversion helpers.
Series from_time_series(const stats::TimeSeries& ts, std::string label,
                        std::size_t max_points = 400);
Series from_cdf(const stats::Cdf& cdf, std::string label);

}  // namespace swarmlab::viz
