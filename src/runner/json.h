// Minimal dependency-free JSON model, writer and parser for the batch
// runner's machine-readable reports.
//
// Design constraints (see docs/batch_runner.md):
//  - Deterministic, byte-stable output: objects keep insertion order and
//    numbers are rendered with std::to_chars (shortest round-trip form,
//    locale-independent), so two runs that produce equal Values produce
//    equal bytes. This is what lets CI diff reports across worker counts.
//  - No external dependencies; the parser exists so tests (and tools) can
//    round-trip reports, not to be a general-purpose validator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swarmlab::runner::json {

/// A JSON value: null, bool, integer (signed/unsigned), double, string,
/// array, or object (insertion-ordered key/value members).
class Value {
 public:
  enum class Kind {
    kNull,
    kBool,
    kInt,     ///< stored as int64
    kUint,    ///< stored as uint64 (only used when > INT64_MAX territory)
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Member = std::pair<std::string, Value>;

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(int v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Value(long v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Value(long long v) : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Value(unsigned v) : kind_(Kind::kUint), uint_(v) {}  // NOLINT
  Value(unsigned long v) : kind_(Kind::kUint), uint_(v) {}  // NOLINT
  Value(unsigned long long v) : kind_(Kind::kUint), uint_(v) {}  // NOLINT
  Value(double v) : kind_(Kind::kDouble), double_(v) {}  // NOLINT
  Value(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  Value(std::string_view s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT

  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  /// Numeric value as double (coerces integers).
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const { return string_; }

  // --- array interface ------------------------------------------------------
  [[nodiscard]] std::size_t size() const;
  void push_back(Value v);
  [[nodiscard]] const std::vector<Value>& items() const { return array_; }
  [[nodiscard]] const Value& at(std::size_t i) const { return array_[i]; }

  // --- object interface -----------------------------------------------------
  /// Inserts (or finds) `key`, turning a null value into an object.
  /// Insertion order is preserved in the serialized output.
  Value& operator[](std::string_view key);
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const std::vector<Member>& members() const { return object_; }
  /// Removes a member if present; returns true when something was removed.
  bool erase(std::string_view key);

  friend bool operator==(const Value& a, const Value& b);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Serializes `v`. `indent` < 0 produces compact one-line output; >= 0
/// pretty-prints with that many spaces per level. Output is byte-stable:
/// equal Values always serialize to equal strings.
[[nodiscard]] std::string dump(const Value& v, int indent = -1);

/// Appends a JSON-escaped, quoted copy of `s` to `out`.
void append_quoted(std::string& out, std::string_view s);

/// Parses `text` into `*out`. Returns false (with a human-readable
/// message in `*error` if given) on malformed input or trailing garbage.
bool parse(std::string_view text, Value* out, std::string* error = nullptr);

}  // namespace swarmlab::runner::json
