#include "runner/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "fault/fault_injector.h"
#include "peer/peer.h"
#include "sim/rng.h"

#ifndef SWARMLAB_GIT_DESCRIBE
#define SWARMLAB_GIT_DESCRIBE "unknown"
#endif

namespace swarmlab::runner {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

RunResult guarded(const JobFn& fn, const BatchJob& job) {
  try {
    return fn(job);
  } catch (const std::exception& e) {
    RunResult r;
    r.id = job.id;
    r.name = job.name;
    r.seed = job.seed;
    r.backend = job.config.network_backend;
    r.error = e.what();
    return r;
  } catch (...) {
    RunResult r;
    r.id = job.id;
    r.name = job.name;
    r.seed = job.seed;
    r.backend = job.config.network_backend;
    r.error = "unknown exception";
    return r;
  }
}

}  // namespace

std::vector<RunResult> BatchRunner::run(const std::vector<BatchJob>& jobs,
                                        const JobFn& fn,
                                        const ResultFn& on_result) {
  const auto start = Clock::now();
  const std::size_t n = jobs.size();
  std::vector<RunResult> results(n);

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          n, static_cast<std::size_t>(opts_.jobs > 1 ? opts_.jobs : 1)));
  if (workers <= 1) {
    // Inline path: identical semantics (results stream in submission
    // order), no thread machinery.
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = guarded(fn, jobs[i]);
      if (on_result) on_result(results[i]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::vector<char> done(n, 0);

    const auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        RunResult r = guarded(fn, jobs[i]);
        {
          const std::lock_guard<std::mutex> lock(mu);
          results[i] = std::move(r);
          done[i] = 1;
        }
        done_cv.notify_one();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);

    // The calling thread merges: it emits each result as soon as every
    // earlier one has been emitted, so downstream consumers see
    // submission order regardless of completion order.
    {
      std::unique_lock<std::mutex> lock(mu);
      for (std::size_t emit = 0; emit < n; ++emit) {
        done_cv.wait(lock, [&] { return done[emit] != 0; });
        if (on_result) {
          lock.unlock();
          on_result(results[emit]);
          lock.lock();
        }
      }
    }
    for (auto& t : pool) t.join();
  }

  wall_seconds_ = seconds_since(start);
  for (const auto& r : results) {
    if (!r.error.empty()) {
      throw std::runtime_error("batch job " + std::to_string(r.id) +
                               " failed: " + r.error);
    }
  }
  return results;
}

RunResult run_scenario_job(const BatchJob& job, double extra_after,
                           const AnalyzeFn& analyze) {
  RunResult res;
  res.id = job.id;
  res.name = job.name;
  res.seed = job.seed;
  res.backend = job.config.network_backend;

  const auto t0 = Clock::now();
  instrument::LocalPeerLog log(job.config.num_pieces);
  swarm::ScenarioRunner runner(job.config, job.seed, &log);
  // The injector only exists for non-trivial plans: an all-zero FaultPlan
  // adds no events and no RNG draws, keeping the run byte-identical to a
  // fault-free build.
  std::unique_ptr<fault::FaultInjector> injector;
  if (job.config.faults.any()) {
    injector = std::make_unique<fault::FaultInjector>(runner, job.seed);
  }
  const auto t1 = Clock::now();

  res.end_time = runner.run_until_local_complete(extra_after);
  log.finalize(res.end_time);
  const auto t2 = Clock::now();

  res.local_completion =
      log.local_is_seed() ? runner.local_peer().completion_time() : -1.0;
  res.completed = res.local_completion >= 0.0;
  res.events_executed = runner.simulation().events_executed();
  res.events_scheduled = runner.simulation().events_scheduled();
  res.events_cancelled = runner.simulation().events_cancelled();
  res.peak_pending = runner.simulation().peak_pending_events();
  if (res.metrics.is_null()) res.metrics = json::Value::object();
  if (injector != nullptr) {
    // Embedded before `analyze` so bench analyzers can fold the fault
    // counters into their own text rows.
    const fault::FaultStats& fs = injector->stats();
    json::Value faults = json::Value::object();
    faults["seed_deaths"] = fs.seed_deaths;
    faults["peer_crashes"] = fs.peer_crashes;
    faults["messages_dropped"] = fs.messages_dropped;
    faults["messages_delayed"] = fs.messages_delayed;
    faults["flows_killed"] = fs.flows_killed;
    faults["tracker_outages"] = fs.outages;
    faults["announce_failures"] =
        runner.swarm().tracker().stats().failed;
    faults["local_ghosts_evicted"] = runner.local_peer().ghosts_evicted();
    faults["local_timed_out_requests"] =
        runner.local_peer().timed_out_requests();
    res.metrics["faults"] = std::move(faults);
  }
  if (analyze) analyze(runner, log, res);

  res.setup_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.sim_seconds = std::chrono::duration<double>(t2 - t1).count();
  res.analyze_seconds = seconds_since(t2);
  return res;
}

std::vector<BatchJob> table1_jobs(std::uint64_t master,
                                  const swarm::ScaleLimits& limits) {
  std::vector<BatchJob> jobs;
  jobs.reserve(26);
  for (int id = 1; id <= 26; ++id) {
    BatchJob job;
    job.id = id;
    job.config = swarm::scenario_from_table1(id, limits);
    job.name = job.config.name;
    job.seed = sim::fork_seed(master, static_cast<std::uint64_t>(id));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

json::Value make_report(const std::string& tool, const BatchOptions& opts,
                        const std::vector<RunResult>& results,
                        double wall_seconds) {
  json::Value report = json::Value::object();
  report["schema"] = kReportSchema;
  report["tool"] = tool;
  report["git"] = SWARMLAB_GIT_DESCRIBE;
  report["master_seed"] = opts.master_seed;
  report["scenarios"] = static_cast<unsigned long long>(results.size());

  json::Value host = json::Value::object();
#if defined(__unix__) || defined(__APPLE__)
  utsname uts{};
  if (uname(&uts) == 0) {
    host["sysname"] = uts.sysname;
    host["release"] = uts.release;
    host["machine"] = uts.machine;
  }
#endif
  host["hardware_threads"] = std::thread::hardware_concurrency();
  report["host"] = std::move(host);
  report["jobs"] = opts.jobs;
  report["wall_seconds"] = wall_seconds;

  json::Value arr = json::Value::array();
  for (const auto& r : results) {
    json::Value entry = json::Value::object();
    entry["id"] = r.id;
    entry["name"] = r.name;
    entry["seed"] = r.seed;
    entry["backend"] = r.backend;
    entry["end_time"] = r.end_time;
    entry["local_completion"] = r.local_completion;
    // Both flags are emitted so fault-sweep consumers can filter either
    // way without re-deriving the convention (deterministic fields).
    entry["completed"] = r.completed;
    entry["stalled"] = !r.completed;
    entry["events"] = r.events_executed;
    // Event-queue counters: deterministic (pure functions of the
    // simulated trajectory), hence outside the "wall" object and kept by
    // deterministic_view().
    json::Value perf = json::Value::object();
    perf["scheduled"] = r.events_scheduled;
    perf["cancelled"] = r.events_cancelled;
    perf["peak_pending"] = r.peak_pending;
    entry["perf"] = std::move(perf);
    entry["metrics"] = r.metrics;
    json::Value wall = json::Value::object();
    wall["setup"] = r.setup_seconds;
    wall["sim"] = r.sim_seconds;
    wall["analyze"] = r.analyze_seconds;
    // Wall clock elapsed when the simulation stopped (setup + sim; i.e.
    // excluding analysis/formatting) — how long a stalled run burned.
    wall["at_stop"] = r.setup_seconds + r.sim_seconds;
    entry["wall"] = std::move(wall);
    arr.push_back(std::move(entry));
  }
  report["results"] = std::move(arr);
  return report;
}

json::Value deterministic_view(const json::Value& report) {
  json::Value core = report;
  core.erase("host");
  core.erase("jobs");
  core.erase("wall_seconds");
  if (const json::Value* results = core.find("results")) {
    json::Value stripped = json::Value::array();
    for (const auto& entry : results->items()) {
      json::Value e = entry;
      e.erase("wall");
      stripped.push_back(std::move(e));
    }
    core["results"] = std::move(stripped);
  }
  return core;
}

bool write_report(const std::string& path, const json::Value& report,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << dump(report, 2) << '\n';
  if (!out) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace swarmlab::runner
