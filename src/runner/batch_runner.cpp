#include "runner/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "fault/fault_injector.h"
#include "instrument/swarm_probe.h"
#include "instrument/trace.h"
#include "peer/peer.h"
#include "sim/rng.h"

#ifndef SWARMLAB_GIT_DESCRIBE
#define SWARMLAB_GIT_DESCRIBE "unknown"
#endif

namespace swarmlab::runner {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

const char* observation_scope_name(swarm::ObservationPlan::Scope scope) {
  switch (scope) {
    case swarm::ObservationPlan::Scope::kLocal: return "local";
    case swarm::ObservationPlan::Scope::kSampled: return "sampled";
    case swarm::ObservationPlan::Scope::kAll: return "all";
  }
  return "local";
}

RunResult failure_result(const BatchJob& job, int attempt,
                         std::string error) {
  RunResult r;
  r.id = job.id;
  r.name = job.name;
  r.seed = job.seed;
  r.backend = job.config.network_backend;
  r.status = JobStatus::kFailed;
  r.attempts = attempt;
  r.error = std::move(error);
  return r;
}

/// Runs one job with exception containment and the deterministic retry
/// policy: every attempt re-runs the job on its ORIGINAL seed (a
/// deterministic failure fails identically — the honest answer — while
/// environmental or attempt-limited hostile failures get a clean rerun).
RunResult execute_job(const JobFnCtx& fn, const BatchJob& job,
                      const BatchOptions& opts) {
  RunResult r;
  const int max_attempts = 1 + std::max(0, opts.retries);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    JobContext ctx;
    ctx.attempt = attempt;
    ctx.monitor = opts.monitor;
    if (opts.job_timeout > 0.0) ctx.monitor.wall_budget = opts.job_timeout;
    try {
      r = fn(job, ctx);
      r.attempts = std::max(r.attempts, attempt);
    } catch (const std::exception& e) {
      r = failure_result(job, attempt, e.what());
    } catch (...) {
      r = failure_result(job, attempt, "unknown exception");
    }
    if (r.ok()) break;
  }
  return r;
}

/// JSONL checkpoint: a header line, then one complete result entry per
/// finished job, appended and flushed as each job completes so a killed
/// process loses at most the jobs still in flight. A torn final line
/// (the kill landed mid-write) parses as garbage and is skipped on
/// resume; a header that does not match this sweep (different master
/// seed or schema) invalidates the whole file and it is started fresh.
class Checkpoint {
 public:
  void open(const std::string& path, std::uint64_t master_seed) {
    bool header_ok = false;
    {
      std::ifstream in(path);
      std::string line;
      bool first = true;
      while (in && std::getline(in, line)) {
        if (line.empty()) continue;
        json::Value v;
        if (!json::parse(line, &v)) continue;  // torn tail line
        if (first) {
          first = false;
          const json::Value* schema = v.find("schema");
          const json::Value* seed = v.find("master_seed");
          header_ok = schema != nullptr && schema->is_string() &&
                      schema->as_string() == kCheckpointSchema &&
                      seed != nullptr && seed->is_number() &&
                      seed->as_uint64() == master_seed;
          if (!header_ok) {
            std::fprintf(stderr,
                         "batch: checkpoint %s belongs to a different "
                         "sweep (header mismatch); starting fresh\n",
                         path.c_str());
            break;
          }
          continue;
        }
        RunResult r;
        // Only completed entries are reusable; failed/wedged attempts
        // are re-run on resume. Later duplicates win (a resumed run
        // appends behind the entries of the interrupted one).
        if (result_from_entry(v, &r) && r.ok()) {
          entries_[r.id] = std::move(r);
        }
      }
    }
    out_.open(path, header_ok ? (std::ios::out | std::ios::app)
                              : (std::ios::out | std::ios::trunc));
    if (!out_) {
      throw std::runtime_error("batch: cannot open checkpoint " + path +
                               " for writing");
    }
    if (!header_ok) {
      json::Value header = json::Value::object();
      header["schema"] = kCheckpointSchema;
      header["master_seed"] = master_seed;
      out_ << dump(header) << '\n';
      out_.flush();
    }
  }

  [[nodiscard]] bool active() const { return out_.is_open(); }

  /// The cached result for `job`, or nullptr. Identity is the full
  /// (id, name, seed, backend) tuple so a stale checkpoint from an
  /// edited sweep never leaks a wrong trajectory into the report.
  [[nodiscard]] const RunResult* find(const BatchJob& job) const {
    const auto it = entries_.find(job.id);
    if (it == entries_.end()) return nullptr;
    const RunResult& r = it->second;
    if (r.name != job.name || r.seed != job.seed ||
        r.backend != job.config.network_backend) {
      return nullptr;
    }
    return &r;
  }

  void append(const RunResult& r) {
    if (!out_.is_open()) return;
    const std::string line = dump(result_entry(r, /*include_text=*/true));
    const std::lock_guard<std::mutex> lock(mu_);
    out_ << line << '\n';
    out_.flush();
  }

 private:
  std::map<int, RunResult> entries_;
  std::ofstream out_;
  std::mutex mu_;
};

JobStatus status_from_trip(sim::MonitorTrip trip) {
  switch (trip) {
    case sim::MonitorTrip::kWallBudget:
    case sim::MonitorTrip::kCancelled:
      return JobStatus::kTimeout;
    default:
      return JobStatus::kWedged;
  }
}

/// Self-rescheduling hostile event: step == 0 freezes simulated time
/// (livelock → kWedged), a tiny step crawls it forward so only the wall
/// budget can end the run (→ kTimeout).
struct HostileLoop {
  sim::Simulation* sim;
  double step;
  void operator()() const { sim->schedule_in(step, *this); }
};

void arm_hostility(sim::Simulation& sim, const HostileSpec& spec) {
  switch (spec.mode) {
    case HostileSpec::Mode::kNone:
      break;
    case HostileSpec::Mode::kThrow:
      sim.schedule_at(spec.at, [] {
        throw std::runtime_error("hostile job: induced crash");
      });
      break;
    case HostileSpec::Mode::kWedge:
      sim.schedule_at(spec.at, HostileLoop{&sim, 0.0});
      break;
    case HostileSpec::Mode::kSpin:
      sim.schedule_at(spec.at, HostileLoop{&sim, 1e-6});
      break;
  }
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kWedged: return "wedged";
    case JobStatus::kTimeout: return "timeout";
  }
  return "unknown";
}

std::vector<RunResult> BatchRunner::run(const std::vector<BatchJob>& jobs,
                                        const JobFnCtx& fn,
                                        const ResultFn& on_result) {
  const auto start = Clock::now();
  const std::size_t n = jobs.size();
  std::vector<RunResult> results(n);
  std::vector<char> done(n, 0);
  resumed_jobs_ = 0;

  Checkpoint ckpt;
  if (!opts_.checkpoint_path.empty()) {
    ckpt.open(opts_.checkpoint_path, opts_.master_seed);
    for (std::size_t i = 0; i < n; ++i) {
      if (const RunResult* cached = ckpt.find(jobs[i])) {
        results[i] = *cached;
        done[i] = 1;
        ++resumed_jobs_;
      }
    }
  }

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          n, static_cast<std::size_t>(opts_.jobs > 1 ? opts_.jobs : 1)));
  if (workers <= 1) {
    // Inline path: identical semantics (results stream in submission
    // order), no thread machinery.
    for (std::size_t i = 0; i < n; ++i) {
      if (!done[i]) {
        results[i] = execute_job(fn, jobs[i], opts_);
        ckpt.append(results[i]);
      }
      if (on_result) on_result(results[i]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;

    const auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        if (done[i]) continue;  // satisfied from the checkpoint
        RunResult r = execute_job(fn, jobs[i], opts_);
        ckpt.append(r);  // completion order; its own mutex + flush
        {
          const std::lock_guard<std::mutex> lock(mu);
          results[i] = std::move(r);
          done[i] = 1;
        }
        done_cv.notify_one();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);

    // The calling thread merges: it emits each result as soon as every
    // earlier one has been emitted, so downstream consumers see
    // submission order regardless of completion order.
    {
      std::unique_lock<std::mutex> lock(mu);
      for (std::size_t emit = 0; emit < n; ++emit) {
        done_cv.wait(lock, [&] { return done[emit] != 0; });
        if (on_result) {
          lock.unlock();
          on_result(results[emit]);
          lock.lock();
        }
      }
    }
    for (auto& t : pool) t.join();
  }

  wall_seconds_ = seconds_since(start);
  return results;
}

std::vector<RunResult> BatchRunner::run(const std::vector<BatchJob>& jobs,
                                        const JobFn& fn,
                                        const ResultFn& on_result) {
  return run(
      jobs,
      [&fn](const BatchJob& job, const JobContext&) { return fn(job); },
      on_result);
}

std::string failure_summary(const std::vector<RunResult>& results) {
  std::string lines;
  int failed = 0;
  for (const RunResult& r : results) {
    if (r.ok()) continue;
    ++failed;
    char buf[96];
    std::snprintf(buf, sizeof buf, "  job %d (%s): %s after %d attempt%s: ",
                  r.id, r.name.c_str(), to_string(r.status), r.attempts,
                  r.attempts == 1 ? "" : "s");
    lines += buf;
    lines += r.error.empty() ? "(no detail)" : r.error;
    lines += '\n';
  }
  if (failed == 0) return "";
  char head[96];
  std::snprintf(head, sizeof head, "%d of %zu job%s did not complete:\n",
                failed, results.size(), results.size() == 1 ? "" : "s");
  return head + lines;
}

RunResult run_scenario_job(const BatchJob& job, const JobContext& ctx,
                           double extra_after, const AnalyzeFn& analyze) {
  RunResult res;
  res.id = job.id;
  res.name = job.name;
  res.seed = job.seed;
  res.backend = job.config.network_backend;
  res.attempts = ctx.attempt;

  const auto t0 = Clock::now();
  const swarm::ObservationPlan& plan = job.config.observation;
  instrument::LocalPeerLog log(job.config.num_pieces);
  // Swarm-scope telemetry per the job's ObservationPlan. The probe is
  // strictly passive (no events, no RNG), so any scope leaves the
  // trajectory byte-identical — see the digest-under-observation test.
  instrument::MetricsRegistry registry;
  std::unique_ptr<instrument::SwarmProbe> probe;
  if (plan.swarm_scope()) {
    instrument::SwarmProbe::Options popts;
    popts.sampling_period = plan.sampling_period;
    popts.detail_peer_cap = plan.detail_peer_cap;
    // Reports embed every series; keep them bounded (drop accounting
    // surfaces anything the ring sheds).
    popts.series_capacity = 256;
    probe = std::make_unique<instrument::SwarmProbe>(
        registry, job.config.num_pieces, popts);
  }
  // The local trace rides the same hook as the LocalPeerLog; with no
  // trace requested the single-observer fast path is untouched.
  std::unique_ptr<instrument::TraceWriter> trace;
  instrument::ObserverList local_observers;
  peer::PeerObserver* local_hook = &log;
  if (plan.trace_format != swarm::ObservationPlan::TraceFormat::kNone) {
    trace = std::make_unique<instrument::TraceWriter>(plan.trace_max_events);
    local_observers.add(&log);
    local_observers.add(trace.get());
    local_hook = &local_observers;
  }
  swarm::ScenarioRunner runner(job.config, job.seed, local_hook, probe.get());
  if (probe != nullptr) {
    swarm::Swarm* sw = &runner.swarm();
    probe->bind(
        [sw](peer::PeerId id) -> const peer::Peer* { return sw->find_peer(id); });
    probe->bind_availability(&sw->global_availability());
    probe->set_focus(runner.local_peer_id());
  }
  // Liveness guard: observational until it trips, so attaching it keeps
  // healthy trajectories (and the golden digests) byte-identical.
  sim::ProgressMonitor monitor(ctx.monitor);
  runner.simulation().attach_monitor(&monitor);
  // The injector only exists for non-trivial plans: an all-zero FaultPlan
  // adds no events and no RNG draws, keeping the run byte-identical to a
  // fault-free build.
  std::unique_ptr<fault::FaultInjector> injector;
  if (job.config.faults.any()) {
    injector = std::make_unique<fault::FaultInjector>(runner, job.seed);
  }
  if (job.hostile.active(ctx.attempt)) {
    arm_hostility(runner.simulation(), job.hostile);
  }
  const auto t1 = Clock::now();

  res.end_time = runner.run_until_local_complete(extra_after);
  log.finalize(res.end_time);
  const auto t2 = Clock::now();

  if (monitor.tripped()) {
    res.status = status_from_trip(monitor.trip());
    res.error = monitor.diagnostic();
  }
  res.local_completion =
      log.local_is_seed() ? runner.local_peer().completion_time() : -1.0;
  res.completed = res.local_completion >= 0.0;
  res.events_executed = runner.simulation().events_executed();
  res.events_scheduled = runner.simulation().events_scheduled();
  res.events_cancelled = runner.simulation().events_cancelled();
  res.peak_pending = runner.simulation().peak_pending_events();
  res.events_fastpath = runner.simulation().events_fastpath();
  res.queue_compactions = runner.simulation().queue_compactions();
  res.train_segments = runner.swarm().network().train_segments();
  if (res.metrics.is_null()) res.metrics = json::Value::object();
  if (injector != nullptr) {
    // Embedded before `analyze` so bench analyzers can fold the fault
    // counters into their own text rows.
    const fault::FaultStats& fs = injector->stats();
    json::Value faults = json::Value::object();
    faults["seed_deaths"] = fs.seed_deaths;
    faults["peer_crashes"] = fs.peer_crashes;
    faults["messages_dropped"] = fs.messages_dropped;
    faults["messages_delayed"] = fs.messages_delayed;
    faults["flows_killed"] = fs.flows_killed;
    faults["tracker_outages"] = fs.outages;
    faults["announce_failures"] =
        runner.swarm().tracker().stats().failed;
    faults["local_ghosts_evicted"] = runner.local_peer().ghosts_evicted();
    faults["local_timed_out_requests"] =
        runner.local_peer().timed_out_requests();
    res.metrics["faults"] = std::move(faults);
  }
  // v7 telemetry: scope, registry snapshot, trace accounting. Derived
  // from observer callbacks only, so it is deterministic and part of the
  // report core.
  res.telemetry = json::Value::object();
  res.telemetry["scope"] = observation_scope_name(plan.scope);
  if (plan.scope == swarm::ObservationPlan::Scope::kSampled) {
    res.telemetry["sample_k"] = plan.sample_k;
  }
  if (probe != nullptr) {
    probe->finalize(res.end_time);
    res.telemetry["sampling_period"] = plan.sampling_period;
    res.telemetry["tracked_peers"] =
        static_cast<std::uint64_t>(probe->tracked_peers());
    res.telemetry["metrics"] = metrics_json(registry);
  }
  if (trace != nullptr) {
    const bool csv =
        plan.trace_format == swarm::ObservationPlan::TraceFormat::kCsv;
    json::Value tr = json::Value::object();
    tr["format"] = csv ? "csv" : "jsonl";
    tr["events"] = static_cast<std::uint64_t>(trace->events().size());
    tr["dropped"] = static_cast<std::uint64_t>(trace->dropped());
    if (!plan.trace_path.empty()) {
      tr["path"] = plan.trace_path;
      std::ofstream out(plan.trace_path);
      if (out) {
        csv ? trace->write_csv(out) : trace->write_jsonl(out);
      } else {
        tr["write_error"] = true;
      }
    }
    res.telemetry["trace"] = std::move(tr);
  }
  if (analyze) analyze(runner, log, res);
  runner.simulation().attach_monitor(nullptr);

  res.setup_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.sim_seconds = std::chrono::duration<double>(t2 - t1).count();
  res.analyze_seconds = seconds_since(t2);
  return res;
}

RunResult run_scenario_job(const BatchJob& job, double extra_after,
                           const AnalyzeFn& analyze) {
  return run_scenario_job(job, JobContext{}, extra_after, analyze);
}

std::vector<BatchJob> table1_jobs(std::uint64_t master,
                                  const swarm::ScaleLimits& limits) {
  std::vector<BatchJob> jobs;
  jobs.reserve(26);
  for (int id = 1; id <= 26; ++id) {
    BatchJob job;
    job.id = id;
    job.config = swarm::scenario_from_table1(id, limits);
    job.name = job.config.name;
    job.seed = sim::fork_seed(master, static_cast<std::uint64_t>(id));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

json::Value metrics_json(const instrument::MetricsRegistry& registry) {
  using Kind = instrument::MetricsRegistry::Kind;
  json::Value counters = json::Value::object();
  json::Value gauges = json::Value::object();
  json::Value histograms = json::Value::object();
  json::Value series = json::Value::object();
  const auto& all = registry.metrics();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto id = static_cast<instrument::MetricId>(i);
    const auto& m = all[i];
    switch (m.kind) {
      case Kind::kCounter:
        counters[m.name] = m.value;
        break;
      case Kind::kGauge:
        gauges[m.name] = m.value;
        break;
      case Kind::kHistogram: {
        json::Value h = json::Value::object();
        json::Value bounds = json::Value::array();
        for (const double b : m.bounds) bounds.push_back(b);
        json::Value counts = json::Value::array();
        for (const std::uint64_t c : m.counts) counts.push_back(c);
        h["bounds"] = std::move(bounds);
        h["counts"] = std::move(counts);
        h["count"] = m.total;
        h["sum"] = m.value;
        histograms[m.name] = std::move(h);
        break;
      }
      case Kind::kSeries: {
        json::Value s = json::Value::object();
        s["dropped"] = registry.dropped(id);
        json::Value samples = json::Value::array();
        for (const stats::Sample& smp : registry.samples(id)) {
          json::Value pair = json::Value::array();
          pair.push_back(smp.time);
          pair.push_back(smp.value);
          samples.push_back(std::move(pair));
        }
        s["samples"] = std::move(samples);
        series[m.name] = std::move(s);
        break;
      }
    }
  }
  json::Value out = json::Value::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  out["series"] = std::move(series);
  return out;
}

json::Value result_entry(const RunResult& r, bool include_text) {
  json::Value entry = json::Value::object();
  entry["id"] = r.id;
  entry["name"] = r.name;
  entry["seed"] = r.seed;
  entry["backend"] = r.backend;
  // Execution status (harness-level), distinct from the simulated
  // `completed` outcome below; `error` carries the exception message or
  // the ProgressMonitor diagnostic.
  entry["status"] = to_string(r.status);
  entry["attempts"] = r.attempts;
  if (!r.error.empty()) entry["error"] = r.error;
  entry["end_time"] = r.end_time;
  entry["local_completion"] = r.local_completion;
  // Both flags are emitted so fault-sweep consumers can filter either
  // way without re-deriving the convention (deterministic fields).
  entry["completed"] = r.completed;
  entry["stalled"] = !r.completed;
  entry["events"] = r.events_executed;
  // Event-queue counters: deterministic (pure functions of the
  // simulated trajectory), hence outside the "wall" object and kept by
  // deterministic_view().
  json::Value perf = json::Value::object();
  perf["scheduled"] = r.events_scheduled;
  perf["cancelled"] = r.events_cancelled;
  perf["peak_pending"] = r.peak_pending;
  perf["fastpath"] = r.events_fastpath;
  perf["compactions"] = r.queue_compactions;
  perf["train_segments"] = r.train_segments;
  entry["perf"] = std::move(perf);
  entry["metrics"] = r.metrics;
  // v7: the observability snapshot; always an object with at least the
  // observation scope (deterministic, kept by deterministic_view()).
  if (r.telemetry.is_object()) {
    entry["telemetry"] = r.telemetry;
  } else {
    json::Value telemetry = json::Value::object();
    telemetry["scope"] = "local";
    entry["telemetry"] = std::move(telemetry);
  }
  json::Value wall = json::Value::object();
  wall["setup"] = r.setup_seconds;
  wall["sim"] = r.sim_seconds;
  wall["analyze"] = r.analyze_seconds;
  // Wall clock elapsed when the simulation stopped (setup + sim; i.e.
  // excluding analysis/formatting) — how long a stalled run burned.
  wall["at_stop"] = r.setup_seconds + r.sim_seconds;
  entry["wall"] = std::move(wall);
  if (include_text) entry["text"] = r.text;
  return entry;
}

namespace {

bool parse_status(const json::Value* v, JobStatus* out) {
  if (v == nullptr || !v->is_string()) return false;
  for (const JobStatus s :
       {JobStatus::kCompleted, JobStatus::kFailed, JobStatus::kWedged,
        JobStatus::kTimeout}) {
    if (v->as_string() == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

}  // namespace

bool result_from_entry(const json::Value& entry, RunResult* out) {
  if (!entry.is_object()) return false;
  const json::Value* id = entry.find("id");
  const json::Value* name = entry.find("name");
  const json::Value* seed = entry.find("seed");
  const json::Value* backend = entry.find("backend");
  const json::Value* end_time = entry.find("end_time");
  const json::Value* local_completion = entry.find("local_completion");
  const json::Value* completed = entry.find("completed");
  const json::Value* events = entry.find("events");
  const json::Value* attempts = entry.find("attempts");
  const json::Value* perf = entry.find("perf");
  const json::Value* wall = entry.find("wall");
  const json::Value* text = entry.find("text");
  if (id == nullptr || !id->is_number() || name == nullptr ||
      !name->is_string() || seed == nullptr || !seed->is_number() ||
      backend == nullptr || !backend->is_string() || end_time == nullptr ||
      !end_time->is_number() || local_completion == nullptr ||
      !local_completion->is_number() || completed == nullptr ||
      !completed->is_bool() || events == nullptr || !events->is_number() ||
      attempts == nullptr || !attempts->is_number() || perf == nullptr ||
      !perf->is_object() || wall == nullptr || !wall->is_object() ||
      text == nullptr || !text->is_string()) {
    return false;
  }
  RunResult r;
  if (!parse_status(entry.find("status"), &r.status)) return false;
  r.id = static_cast<int>(id->as_int64());
  r.name = name->as_string();
  r.seed = seed->as_uint64();
  r.backend = backend->as_string();
  r.attempts = static_cast<int>(attempts->as_int64());
  if (const json::Value* e = entry.find("error")) {
    if (!e->is_string()) return false;
    r.error = e->as_string();
  }
  r.end_time = end_time->as_double();
  r.local_completion = local_completion->as_double();
  r.completed = completed->as_bool();
  r.events_executed = events->as_uint64();
  const json::Value* scheduled = perf->find("scheduled");
  const json::Value* cancelled = perf->find("cancelled");
  const json::Value* peak = perf->find("peak_pending");
  const json::Value* fastpath = perf->find("fastpath");
  const json::Value* compactions = perf->find("compactions");
  const json::Value* trains = perf->find("train_segments");
  if (scheduled == nullptr || cancelled == nullptr || peak == nullptr ||
      fastpath == nullptr || compactions == nullptr || trains == nullptr) {
    return false;
  }
  r.events_scheduled = scheduled->as_uint64();
  r.events_cancelled = cancelled->as_uint64();
  r.peak_pending = peak->as_uint64();
  r.events_fastpath = fastpath->as_uint64();
  r.queue_compactions = compactions->as_uint64();
  r.train_segments = trains->as_uint64();
  if (const json::Value* metrics = entry.find("metrics")) {
    r.metrics = *metrics;
  }
  // Checkpoint v3: `telemetry` is mandatory, so resumed sweeps replay
  // the v7 report byte-identically.
  const json::Value* telemetry = entry.find("telemetry");
  if (telemetry == nullptr || !telemetry->is_object()) return false;
  r.telemetry = *telemetry;
  const json::Value* setup = wall->find("setup");
  const json::Value* sim = wall->find("sim");
  const json::Value* analyze = wall->find("analyze");
  if (setup == nullptr || sim == nullptr || analyze == nullptr) return false;
  r.setup_seconds = setup->as_double();
  r.sim_seconds = sim->as_double();
  r.analyze_seconds = analyze->as_double();
  r.text = text->as_string();
  *out = std::move(r);
  return true;
}

json::Value make_report(const std::string& tool, const BatchOptions& opts,
                        const std::vector<RunResult>& results,
                        double wall_seconds) {
  json::Value report = json::Value::object();
  report["schema"] = kReportSchema;
  report["tool"] = tool;
  report["git"] = SWARMLAB_GIT_DESCRIBE;
  report["master_seed"] = opts.master_seed;
  report["scenarios"] = static_cast<unsigned long long>(results.size());
  // Count of results whose status != completed (deterministic except
  // when wall-clock timeouts are in play).
  int failed = 0;
  for (const RunResult& r : results) {
    if (!r.ok()) ++failed;
  }
  report["failed"] = failed;

  json::Value host = json::Value::object();
#if defined(__unix__) || defined(__APPLE__)
  utsname uts{};
  if (uname(&uts) == 0) {
    host["sysname"] = uts.sysname;
    host["release"] = uts.release;
    host["machine"] = uts.machine;
  }
#endif
  host["hardware_threads"] = std::thread::hardware_concurrency();
  report["host"] = std::move(host);
  report["jobs"] = opts.jobs;
  report["wall_seconds"] = wall_seconds;

  json::Value arr = json::Value::array();
  for (const auto& r : results) {
    arr.push_back(result_entry(r, /*include_text=*/false));
  }
  report["results"] = std::move(arr);
  return report;
}

json::Value deterministic_view(const json::Value& report) {
  json::Value core = report;
  core.erase("host");
  core.erase("jobs");
  core.erase("wall_seconds");
  if (const json::Value* results = core.find("results")) {
    json::Value stripped = json::Value::array();
    for (const auto& entry : results->items()) {
      json::Value e = entry;
      e.erase("wall");
      stripped.push_back(std::move(e));
    }
    core["results"] = std::move(stripped);
  }
  return core;
}

bool write_report(const std::string& path, const json::Value& report,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << dump(report, 2) << '\n';
  if (!out) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace swarmlab::runner
