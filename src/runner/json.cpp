#include "runner/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <system_error>

namespace swarmlab::runner::json {

std::int64_t Value::as_int64() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint: return static_cast<std::int64_t>(uint_);
    case Kind::kDouble: return static_cast<std::int64_t>(double_);
    default: return 0;
  }
}

std::uint64_t Value::as_uint64() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<std::uint64_t>(int_);
    case Kind::kUint: return uint_;
    case Kind::kDouble: return static_cast<std::uint64_t>(double_);
    default: return 0;
  }
}

double Value::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default: return 0.0;
  }
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

void Value::push_back(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  assert(kind_ == Kind::kArray);
  array_.push_back(std::move(v));
}

Value& Value::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Value());
  return object_.back().second;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Value::erase(std::string_view key) {
  if (kind_ != Kind::kObject) return false;
  for (auto it = object_.begin(); it != object_.end(); ++it) {
    if (it->first == key) {
      object_.erase(it);
      return true;
    }
  }
  return false;
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) {
    // Compare numerically so parse(dump(x)) == x even when an integral
    // double re-parses as an integer.
    if (a.kind_ == Value::Kind::kDouble || b.kind_ == Value::Kind::kDouble) {
      return a.as_double() == b.as_double();
    }
    if (a.kind_ == Value::Kind::kUint || b.kind_ == Value::Kind::kUint) {
      if (a.kind_ == Value::Kind::kInt && a.int_ < 0) return false;
      if (b.kind_ == Value::Kind::kInt && b.int_ < 0) return false;
      return a.as_uint64() == b.as_uint64();
    }
    return a.int_ == b.int_;
  }
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::kNull: return true;
    case Value::Kind::kBool: return a.bool_ == b.bool_;
    case Value::Kind::kString: return a.string_ == b.string_;
    case Value::Kind::kArray: return a.array_ == b.array_;
    case Value::Kind::kObject: return a.object_ == b.object_;
    default: return false;  // numbers handled above
  }
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  // Shortest round-trip representation, locale-independent — the
  // foundation of the byte-stable output guarantee.
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void dump_to(const Value& v, std::string& out, int indent, int depth) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (v.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, v.as_int64());
      out.append(buf, res.ptr);
      break;
    }
    case Value::Kind::kUint: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, v.as_uint64());
      out.append(buf, res.ptr);
      break;
    }
    case Value::Kind::kDouble:
      append_double(out, v.as_double());
      break;
    case Value::Kind::kString:
      append_quoted(out, v.as_string());
      break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        dump_to(item, out, indent, depth + 1);
      }
      if (!first) newline_pad(depth);
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        append_quoted(out, key);
        out += pretty ? ": " : ":";
        dump_to(member, out, indent, depth + 1);
      }
      if (!first) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

// --- parser ------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool run(Value* out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error) *error = fail_.empty() ? "malformed JSON" : fail_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (fail_.empty()) {
      fail_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value* out) {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't':
        if (!expect_literal("true")) return false;
        *out = Value(true);
        return true;
      case 'f':
        if (!expect_literal("false")) return false;
        *out = Value(false);
        return true;
      case 'n':
        if (!expect_literal("null")) return false;
        *out = Value();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value* out) {
    ++pos_;  // '{'
    ++depth_;
    *out = Value::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value member;
      if (!parse_value(&member)) return false;
      (*out)[key] = std::move(member);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    --depth_;
    return true;
  }

  bool parse_array(Value* out) {
    ++pos_;  // '['
    ++depth_;
    *out = Value::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      Value item;
      if (!parse_value(&item)) return false;
      out->push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    --depth_;
    return true;
  }

  bool parse_string_value(Value* out) {
    std::string s;
    if (!parse_string(&s)) return false;
    *out = Value(std::move(s));
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (at_end()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  static void append_utf8(std::string* out, unsigned code) {
    // BMP only; surrogate pairs are beyond what reports need.
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parse_number(Value* out) {
    // Strict RFC 8259 grammar: int = "0" / [1-9] DIGIT*, frac and exp
    // each require at least one digit. Sloppy forms ("01", "1.", ".5",
    // "1.e5") must be rejected, not silently normalised — reports are
    // byte-compared, so accepting them would mask producer bugs.
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (at_end() || peek() < '0' || peek() > '9') {
      return fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
      if (!at_end() && peek() >= '0' && peek() <= '9') {
        return fail("invalid number: leading zero");
      }
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("invalid number: fraction needs a digit");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("invalid number: exponent needs a digit");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    const char* first = tok.data();
    const char* last = tok.data() + tok.size();
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto res = std::from_chars(first, last, i);
        if (res.ec == std::errc() && res.ptr == last) {
          *out = Value(static_cast<long long>(i));
          return true;
        }
      } else {
        std::uint64_t u = 0;
        const auto res = std::from_chars(first, last, u);
        if (res.ec == std::errc() && res.ptr == last) {
          if (u <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
            *out = Value(static_cast<long long>(u));
          } else {
            *out = Value(static_cast<unsigned long long>(u));
          }
          return true;
        }
      }
      // Out-of-range integer: fall through to double.
    }
    double d = 0.0;
    const auto res = std::from_chars(first, last, d);
    if (res.ec != std::errc() || res.ptr != last) return fail("invalid number");
    *out = Value(d);
    return true;
  }

  static constexpr int kMaxDepth = 200;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string fail_;
};

}  // namespace

std::string dump(const Value& v, int indent) {
  std::string out;
  dump_to(v, out, indent, 0);
  return out;
}

bool parse(std::string_view text, Value* out, std::string* error) {
  return Parser(text).run(out, error);
}

}  // namespace swarmlab::runner::json
