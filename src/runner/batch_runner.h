// BatchRunner: executes a set of independent (ScenarioConfig, seed) jobs
// across a std::thread worker pool and merges the results in submission
// order, so output is bit-identical regardless of worker count.
//
// Determinism contract (see docs/batch_runner.md):
//  - every job owns its Simulation/Swarm/Rng, seeded only from the job's
//    own seed (fork per-job seeds from a master with sim::fork_seed);
//  - the job function must not touch shared mutable state or the
//    terminal — it returns preformatted text and metrics instead;
//  - results (and the on_result callback, which runs on the calling
//    thread) are delivered in submission order, never completion order.
// Under those rules the RunResult sequence — and therefore stdout and the
// deterministic sections of the JSON report — is a pure function of
// (jobs, master seed). Only wall-clock timings and host info vary.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "instrument/local_log.h"
#include "runner/json.h"
#include "swarm/scenario.h"

namespace swarmlab::runner {

/// One unit of work: an independent scenario run under its own seed.
struct BatchJob {
  int id = 0;          ///< caller-meaningful id (e.g. Table-I row 1-26)
  std::string name;    ///< scenario label for the report
  swarm::ScenarioConfig config;
  std::uint64_t seed = 0;
};

/// What one job produced. `text` carries the job's preformatted
/// per-scenario stdout (printed by the caller in submission order);
/// `metrics` is the machine-readable summary embedded in the JSON report.
struct RunResult {
  int id = 0;
  std::string name;
  std::uint64_t seed = 0;
  /// Network backend the job ran on (from ScenarioConfig::network_backend).
  std::string backend;

  // --- deterministic simulation outcomes -----------------------------------
  double end_time = 0.0;           ///< simulated stop time (seconds)
  double local_completion = -1.0;  ///< local-peer completion; -1 if never
  /// True when the local peer finished its download; false = the run
  /// stalled (hit the duration cap still leeching — the expected outcome
  /// of severe fault plans, and worth distinguishing machine-readably).
  bool completed = false;
  std::uint64_t events_executed = 0;
  /// Event-queue perf counters (deterministic: a pure function of the
  /// simulated trajectory, so they stay in the deterministic view).
  std::uint64_t events_scheduled = 0;  ///< fired + cancelled + pending
  std::uint64_t events_cancelled = 0;  ///< cancelled before firing
  std::uint64_t peak_pending = 0;      ///< high-water mark of live events
  json::Value metrics;             ///< bench-specific summary (object)
  std::string text;                ///< preformatted row(s) for stdout

  // --- non-deterministic per-phase wall clock (seconds) --------------------
  double setup_seconds = 0.0;    ///< scenario/peer construction
  double sim_seconds = 0.0;      ///< event-loop execution
  double analyze_seconds = 0.0;  ///< post-run analyzers + formatting

  std::string error;  ///< non-empty if the job threw
};

struct BatchOptions {
  int jobs = 1;                  ///< worker threads (1 = run inline)
  std::uint64_t master_seed = 0; ///< recorded in the report
};

using JobFn = std::function<RunResult(const BatchJob&)>;
using ResultFn = std::function<void(const RunResult&)>;

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions opts) : opts_(opts) {}

  /// Runs every job across the worker pool. `on_result` (optional) fires
  /// on the calling thread in submission order, as early as ordering
  /// allows — with one worker this streams exactly like a sequential
  /// loop. Throws std::runtime_error if any job threw; the returned
  /// vector is always indexed like `jobs`.
  std::vector<RunResult> run(const std::vector<BatchJob>& jobs,
                             const JobFn& fn,
                             const ResultFn& on_result = nullptr);

  [[nodiscard]] const BatchOptions& options() const { return opts_; }
  /// Wall-clock duration of the last run() call.
  [[nodiscard]] double wall_seconds() const { return wall_seconds_; }

 private:
  BatchOptions opts_;
  double wall_seconds_ = 0.0;
};

/// Phase-timing analyzer hook: inspect the finished run and fill
/// `result.metrics` / `result.text`.
using AnalyzeFn = std::function<void(const swarm::ScenarioRunner& runner,
                                     const instrument::LocalPeerLog& log,
                                     RunResult& result)>;

/// Canonical job function: runs `job.config` under `job.seed` with an
/// instrumented local peer until the local peer completes (plus
/// `extra_after` simulated seconds), then invokes `analyze` (if any) and
/// fills the standard RunResult fields including per-phase wall clock.
RunResult run_scenario_job(const BatchJob& job, double extra_after = 2500.0,
                           const AnalyzeFn& analyze = nullptr);

/// The 26-torrent Table-I job list with per-job seeds forked from
/// `master` via sim::fork_seed(master, id).
std::vector<BatchJob> table1_jobs(std::uint64_t master,
                                  const swarm::ScaleLimits& limits);

// --- report assembly ---------------------------------------------------------

/// Current report schema identifier (bump on breaking layout changes).
/// v2: per-result `completed`/`stalled` flags, `wall.at_stop`, and (for
/// faulted runs) a `metrics.faults` object.
/// v3: per-result `perf` object — event-queue counters `scheduled`,
/// `cancelled`, `peak_pending` (deterministic; see docs/performance.md).
/// v4: per-result `backend` — the network backend the scenario ran on
/// ("fluid", "packet", ...; deterministic).
inline constexpr const char* kReportSchema = "swarmlab.batch/4";

/// Assembles the aggregate report: schema version, tool name, git
/// describe (baked in at build time), host info, master seed, worker
/// count, total wall clock, and one entry per result. All
/// non-deterministic fields live under the "host", "jobs",
/// "wall_seconds" and per-result "wall" keys; everything else is
/// byte-identical across worker counts.
json::Value make_report(const std::string& tool, const BatchOptions& opts,
                        const std::vector<RunResult>& results,
                        double wall_seconds);

/// Returns `report` with every non-deterministic field removed — the
/// byte-comparable core used by determinism checks.
json::Value deterministic_view(const json::Value& report);

/// Writes `report` to `path` (pretty-printed, trailing newline).
bool write_report(const std::string& path, const json::Value& report,
                  std::string* error = nullptr);

}  // namespace swarmlab::runner
