// BatchRunner: executes a set of independent (ScenarioConfig, seed) jobs
// across a std::thread worker pool and merges the results in submission
// order, so output is bit-identical regardless of worker count.
//
// Determinism contract (see docs/batch_runner.md):
//  - every job owns its Simulation/Swarm/Rng, seeded only from the job's
//    own seed (fork per-job seeds from a master with sim::fork_seed);
//  - the job function must not touch shared mutable state or the
//    terminal — it returns preformatted text and metrics instead;
//  - results (and the on_result callback, which runs on the calling
//    thread) are delivered in submission order, never completion order.
// Under those rules the RunResult sequence — and therefore stdout and the
// deterministic sections of the JSON report — is a pure function of
// (jobs, master seed). Only wall-clock timings and host info vary.
//
// Resilience (this layer survives its own jobs; see docs/batch_runner.md):
//  - failure containment: a job that throws or trips its ProgressMonitor
//    is recorded with a per-result status (failed/wedged/timeout) and the
//    sweep continues; run() never throws for job failures;
//  - per-job liveness: each attempt gets a sim::ProgressMonitor budgeted
//    from BatchOptions (job_timeout → wall budget, plus livelock/stall
//    guards), so a wedged scenario terminates with a diagnostic;
//  - deterministic retries: failed jobs re-run on their original seed up
//    to `retries` extra attempts, recording the attempt count;
//  - checkpoint/resume: when `checkpoint_path` is set, completed results
//    stream to a JSONL checkpoint as they finish; a later run with the
//    same path skips finished jobs and merges the cached results in
//    submission order, so an interrupted-then-resumed sweep is
//    byte-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "instrument/local_log.h"
#include "instrument/metrics.h"
#include "runner/json.h"
#include "sim/progress_monitor.h"
#include "swarm/scenario.h"

namespace swarmlab::runner {

/// Test-only hostility switch: makes run_scenario_job misbehave on
/// demand so resilience tests and CI can induce a wedge, a crash, or a
/// timeout in an otherwise healthy sweep. Harness-level counterpart of
/// fault::FaultPlan (which attacks the simulated swarm, not the runner).
struct HostileSpec {
  enum class Mode {
    kNone,
    kThrow,  ///< throw std::runtime_error at `at` (job status: failed)
    kWedge,  ///< zero-delay reschedule loop at `at` — livelock (wedged)
    kSpin,   ///< tiny-step reschedule loop: sim crawls forward burning
             ///< wall clock until the wall budget trips (timeout);
             ///< requires a job timeout or event budget to terminate
  };
  Mode mode = Mode::kNone;
  double at = 25.0;  ///< simulated onset time
  /// Misbehave only while the attempt number is <= this (so retry tests
  /// can fail the first attempt and succeed on the second).
  int attempts = std::numeric_limits<int>::max();

  [[nodiscard]] bool active(int attempt) const {
    return mode != Mode::kNone && attempt <= attempts;
  }
};

/// One unit of work: an independent scenario run under its own seed.
struct BatchJob {
  int id = 0;          ///< caller-meaningful id (e.g. Table-I row 1-26)
  std::string name;    ///< scenario label for the report
  swarm::ScenarioConfig config;
  std::uint64_t seed = 0;
  HostileSpec hostile;  ///< test-only; kNone in real sweeps
};

/// How a job's execution ended (independent of the simulated outcome:
/// a run whose local peer stalls under faults still executes fine and is
/// kCompleted with RunResult::completed == false).
enum class JobStatus {
  kCompleted,  ///< the job function returned normally
  kFailed,     ///< the job threw
  kWedged,     ///< ProgressMonitor liveness trip (livelock/stall/events)
  kTimeout,    ///< wall-clock budget exhausted (or external cancel)
};

[[nodiscard]] const char* to_string(JobStatus status);

/// What one job produced. `text` carries the job's preformatted
/// per-scenario stdout (printed by the caller in submission order);
/// `metrics` is the machine-readable summary embedded in the JSON report.
struct RunResult {
  int id = 0;
  std::string name;
  std::uint64_t seed = 0;
  /// Network backend the job ran on (from ScenarioConfig::network_backend).
  std::string backend;

  /// How the job's execution ended; non-kCompleted detail is in `error`.
  JobStatus status = JobStatus::kCompleted;
  /// Attempts consumed (1 = first try; > 1 means retries were used).
  int attempts = 1;

  // --- deterministic simulation outcomes -----------------------------------
  double end_time = 0.0;           ///< simulated stop time (seconds)
  double local_completion = -1.0;  ///< local-peer completion; -1 if never
  /// True when the local peer finished its download; false = the run
  /// stalled (hit the duration cap still leeching — the expected outcome
  /// of severe fault plans, and worth distinguishing machine-readably).
  bool completed = false;
  std::uint64_t events_executed = 0;
  /// Event-queue perf counters (deterministic: a pure function of the
  /// simulated trajectory, so they stay in the deterministic view).
  std::uint64_t events_scheduled = 0;  ///< fired + cancelled + pending
  std::uint64_t events_cancelled = 0;  ///< cancelled before firing
  std::uint64_t peak_pending = 0;      ///< high-water mark of live events
  std::uint64_t events_fastpath = 0;   ///< fired via the POD fast channel
  std::uint64_t queue_compactions = 0; ///< event-queue dead-entry sweeps
  std::uint64_t train_segments = 0;    ///< segments served in coalesced trains
  json::Value metrics;             ///< bench-specific summary (object)
  /// Observability snapshot (object, schema v7): always carries "scope";
  /// swarm-scope plans add "metrics" (MetricsRegistry snapshot) and
  /// traced plans add "trace" accounting. Deterministic — it derives
  /// purely from the simulated trajectory, never from wall clock.
  json::Value telemetry;
  std::string text;                ///< preformatted row(s) for stdout

  // --- non-deterministic per-phase wall clock (seconds) --------------------
  double setup_seconds = 0.0;    ///< scenario/peer construction
  double sim_seconds = 0.0;      ///< event-loop execution
  double analyze_seconds = 0.0;  ///< post-run analyzers + formatting

  std::string error;  ///< failure/trip detail when status != kCompleted

  [[nodiscard]] bool ok() const { return status == JobStatus::kCompleted; }
};

struct BatchOptions {
  int jobs = 1;                  ///< worker threads (1 = run inline)
  std::uint64_t master_seed = 0; ///< recorded in the report
  /// Per-job wall-clock budget in seconds (<= 0 disables). A job that
  /// exceeds it is terminated at the next event boundary and recorded as
  /// kTimeout. Note: timeout trips depend on host speed, so reports from
  /// timeout-tripped sweeps are NOT byte-comparable across machines.
  double job_timeout = 0.0;
  /// Extra attempts for jobs that did not complete; each retry re-runs
  /// the job on its original seed (deterministic failures fail again,
  /// which is the honest answer; the hook exists for environmental
  /// flakiness and HostileSpec-style attempt-limited failures).
  int retries = 0;
  /// JSONL checkpoint path; empty disables. If the file exists and its
  /// header matches `master_seed`, completed entries are reused and only
  /// the remaining jobs run; fresh completions are appended as they
  /// finish (completion order, one flushed line each).
  std::string checkpoint_path;
  /// Liveness-guard defaults handed to every job attempt. `job_timeout`
  /// overrides `monitor.wall_budget` when positive.
  sim::MonitorConfig monitor;
};

/// Per-attempt context handed to the job function: the attempt number
/// (1-based) and the monitor budgets the runner asks the job to honor
/// (run_scenario_job wires them into the scenario's Simulation).
struct JobContext {
  int attempt = 1;
  sim::MonitorConfig monitor;
};

using JobFn = std::function<RunResult(const BatchJob&)>;
using JobFnCtx = std::function<RunResult(const BatchJob&, const JobContext&)>;
using ResultFn = std::function<void(const RunResult&)>;

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions opts) : opts_(opts) {}

  /// Runs every job across the worker pool. `on_result` (optional) fires
  /// on the calling thread in submission order, as early as ordering
  /// allows — with one worker this streams exactly like a sequential
  /// loop. Job failures are contained: the failing job's RunResult
  /// carries status/error, every other job still runs, and the returned
  /// vector is always indexed like `jobs` (use failure_summary() or
  /// RunResult::ok() to surface failures). Throws only for harness-level
  /// errors (e.g. an unusable checkpoint file).
  std::vector<RunResult> run(const std::vector<BatchJob>& jobs,
                             const JobFnCtx& fn,
                             const ResultFn& on_result = nullptr);

  /// Convenience overload for context-free job functions.
  std::vector<RunResult> run(const std::vector<BatchJob>& jobs,
                             const JobFn& fn,
                             const ResultFn& on_result = nullptr);

  [[nodiscard]] const BatchOptions& options() const { return opts_; }
  /// Wall-clock duration of the last run() call.
  [[nodiscard]] double wall_seconds() const { return wall_seconds_; }
  /// Jobs of the last run() that were satisfied from the checkpoint.
  [[nodiscard]] std::size_t resumed_jobs() const { return resumed_jobs_; }

 private:
  BatchOptions opts_;
  double wall_seconds_ = 0.0;
  std::size_t resumed_jobs_ = 0;
};

/// Multi-line human-readable summary of every non-completed result
/// ("" when all jobs completed). Callers print it to stderr and exit
/// nonzero — the report still contains every result either way.
[[nodiscard]] std::string failure_summary(
    const std::vector<RunResult>& results);

/// Phase-timing analyzer hook: inspect the finished run and fill
/// `result.metrics` / `result.text`.
using AnalyzeFn = std::function<void(const swarm::ScenarioRunner& runner,
                                     const instrument::LocalPeerLog& log,
                                     RunResult& result)>;

/// Canonical job function: runs `job.config` under `job.seed` with an
/// instrumented local peer until the local peer completes (plus
/// `extra_after` simulated seconds), then invokes `analyze` (if any) and
/// fills the standard RunResult fields including per-phase wall clock.
/// The context's MonitorConfig is attached to the scenario's Simulation
/// as a ProgressMonitor; a trip maps to kWedged (livelock/stall/event
/// budget) or kTimeout (wall budget/cancel) with the diagnostic in
/// `error`. Honors `job.hostile` (test-only misbehavior).
RunResult run_scenario_job(const BatchJob& job, const JobContext& ctx,
                           double extra_after = 2500.0,
                           const AnalyzeFn& analyze = nullptr);

/// Context-free convenience (no budgets, first attempt).
RunResult run_scenario_job(const BatchJob& job, double extra_after = 2500.0,
                           const AnalyzeFn& analyze = nullptr);

/// The 26-torrent Table-I job list with per-job seeds forked from
/// `master` via sim::fork_seed(master, id).
std::vector<BatchJob> table1_jobs(std::uint64_t master,
                                  const swarm::ScaleLimits& limits);

// --- report assembly ---------------------------------------------------------

/// Current report schema identifier (bump on breaking layout changes).
/// v2: per-result `completed`/`stalled` flags, `wall.at_stop`, and (for
/// faulted runs) a `metrics.faults` object.
/// v3: per-result `perf` object — event-queue counters `scheduled`,
/// `cancelled`, `peak_pending` (deterministic; see docs/performance.md).
/// v4: per-result `backend` — the network backend the scenario ran on
/// ("fluid", "packet", ...; deterministic).
/// v5: per-result `status` ("completed"|"failed"|"wedged"|"timeout"),
/// `attempts`, optional `error` detail, and a report-level `failed`
/// count — the failure-containment fields (see docs/batch_runner.md).
/// v6: `perf` gains `fastpath` (events dispatched via the allocation-free
/// fast channel), `compactions` (event-queue dead-entry sweeps) and
/// `train_segments` (packet segments served in coalesced trains; 0 on
/// the fluid backend). All three are deterministic.
/// v7: per-result `telemetry` object — observation scope, MetricsRegistry
/// snapshot (counters/gauges/histograms/series) for swarm-scope plans,
/// and trace accounting for traced plans (see docs/observability.md).
/// Deterministic: derived from observer callbacks only.
inline constexpr const char* kReportSchema = "swarmlab.batch/7";

/// Checkpoint header schema (first line of a checkpoint JSONL file).
/// v2: checkpoint entries carry the v6 perf counters (strict parse).
/// v3: checkpoint entries carry the v7 `telemetry` object (strict parse).
inline constexpr const char* kCheckpointSchema = "swarmlab.checkpoint/3";

/// Serializes a MetricsRegistry snapshot as the v7 `telemetry.metrics`
/// object: `counters`/`gauges` (name -> value), `histograms` (name ->
/// bounds/counts) and `series` (name -> dropped + [t,v] sample pairs),
/// all in registration order.
json::Value metrics_json(const instrument::MetricsRegistry& registry);

/// One result as a report entry (everything deterministic plus the
/// per-phase `wall` object; `text` is included only when requested —
/// report entries omit it, checkpoint lines carry it so resumed runs can
/// replay stdout byte-identically).
json::Value result_entry(const RunResult& result, bool include_text);

/// Inverse of result_entry(..., true); false if `entry` is not a
/// well-formed checkpoint entry.
bool result_from_entry(const json::Value& entry, RunResult* out);

/// Assembles the aggregate report: schema version, tool name, git
/// describe (baked in at build time), host info, master seed, worker
/// count, total wall clock, and one entry per result. All
/// non-deterministic fields live under the "host", "jobs",
/// "wall_seconds" and per-result "wall" keys; everything else is
/// byte-identical across worker counts.
json::Value make_report(const std::string& tool, const BatchOptions& opts,
                        const std::vector<RunResult>& results,
                        double wall_seconds);

/// Returns `report` with every non-deterministic field removed — the
/// byte-comparable core used by determinism checks.
json::Value deterministic_view(const json::Value& report);

/// Writes `report` to `path` (pretty-printed, trailing newline).
bool write_report(const std::string& path, const json::Value& report,
                  std::string* error = nullptr);

}  // namespace swarmlab::runner
