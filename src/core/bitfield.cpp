#include "core/bitfield.h"

namespace swarmlab::core {

Bitfield Bitfield::full(std::uint32_t num_pieces) {
  Bitfield b(num_pieces);
  b.bits_.assign(num_pieces, true);
  b.count_ = num_pieces;
  return b;
}

bool Bitfield::set(PieceIndex p) {
  assert(p < size());
  if (bits_[p]) return false;
  bits_[p] = true;
  ++count_;
  return true;
}

bool Bitfield::clear(PieceIndex p) {
  assert(p < size());
  if (!bits_[p]) return false;
  bits_[p] = false;
  --count_;
  return true;
}

bool Bitfield::interested_in(const Bitfield& other) const {
  assert(size() == other.size());
  // A complete peer is never interested; a peer is interested iff the
  // other side has some piece it lacks.
  for (std::uint32_t p = 0; p < size(); ++p) {
    if (other.bits_[p] && !bits_[p]) return true;
  }
  return false;
}

std::vector<PieceIndex> Bitfield::set_indices() const {
  std::vector<PieceIndex> out;
  out.reserve(count_);
  for (std::uint32_t p = 0; p < size(); ++p) {
    if (bits_[p]) out.push_back(p);
  }
  return out;
}

std::vector<PieceIndex> Bitfield::missing_from(const Bitfield& other) const {
  assert(size() == other.size());
  std::vector<PieceIndex> out;
  for (std::uint32_t p = 0; p < size(); ++p) {
    if (other.bits_[p] && !bits_[p]) out.push_back(p);
  }
  return out;
}

}  // namespace swarmlab::core
