#include "core/bitfield.h"

namespace swarmlab::core {

namespace {

/// Mask selecting the live bits of the trailing word (all-ones when the
/// size is a multiple of the word width).
Bitfield::Word trailing_mask(std::uint32_t num_pieces) {
  const std::uint32_t rem = num_pieces % Bitfield::kWordBits;
  return rem == 0 ? ~Bitfield::Word{0} : (Bitfield::Word{1} << rem) - 1;
}

}  // namespace

Bitfield::Bitfield(const std::vector<bool>& bits)
    : Bitfield(static_cast<std::uint32_t>(bits.size())) {
  for (std::uint32_t p = 0; p < size_; ++p) {
    if (bits[p]) {
      words_[p / kWordBits] |= Word{1} << (p % kWordBits);
      ++count_;
    }
  }
}

Bitfield Bitfield::full(std::uint32_t num_pieces) {
  Bitfield b(num_pieces);
  if (num_pieces > 0) {
    b.words_.assign(b.words_.size(), ~Word{0});
    b.words_.back() &= trailing_mask(num_pieces);
  }
  b.count_ = num_pieces;
  return b;
}

bool Bitfield::set(PieceIndex p) {
  assert(p < size());
  Word& w = words_[p / kWordBits];
  const Word bit = Word{1} << (p % kWordBits);
  if (w & bit) return false;
  w |= bit;
  ++count_;
  return true;
}

bool Bitfield::clear(PieceIndex p) {
  assert(p < size());
  Word& w = words_[p / kWordBits];
  const Word bit = Word{1} << (p % kWordBits);
  if (!(w & bit)) return false;
  w &= ~bit;
  --count_;
  return true;
}

bool Bitfield::interested_in(const Bitfield& other) const {
  assert(size() == other.size());
  // A complete peer is never interested; a peer is interested iff the
  // other side has some piece it lacks.
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (other.words_[w] & ~words_[w]) return true;
  }
  return false;
}

std::uint32_t Bitfield::count_missing_from(const Bitfield& other) const {
  assert(size() == other.size());
  std::uint32_t n = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    n += static_cast<std::uint32_t>(std::popcount(other.words_[w] &
                                                  ~words_[w]));
  }
  return n;
}

std::vector<PieceIndex> Bitfield::set_indices() const {
  std::vector<PieceIndex> out;
  out.reserve(count_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const PieceIndex base = static_cast<PieceIndex>(w * kWordBits);
    for (Word m = words_[w]; m != 0; m &= m - 1) {
      out.push_back(base + static_cast<PieceIndex>(std::countr_zero(m)));
    }
  }
  return out;
}

std::vector<PieceIndex> Bitfield::missing_from(const Bitfield& other) const {
  assert(size() == other.size());
  std::vector<PieceIndex> out;
  out.reserve(count_missing_from(other));
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const PieceIndex base = static_cast<PieceIndex>(w * kWordBits);
    for (Word m = other.words_[w] & ~words_[w]; m != 0; m &= m - 1) {
      out.push_back(base + static_cast<PieceIndex>(std::countr_zero(m)));
    }
  }
  return out;
}

std::vector<bool> Bitfield::bits() const {
  std::vector<bool> out(size_, false);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const PieceIndex base = static_cast<PieceIndex>(w * kWordBits);
    for (Word m = words_[w]; m != 0; m &= m - 1) {
      out[base + static_cast<PieceIndex>(std::countr_zero(m))] = true;
    }
  }
  return out;
}

}  // namespace swarmlab::core
