// Peer-selection (choke) strategies (paper §II-C.2).
//
// A choker is invoked every `choke_interval` (10 s) round and returns the
// peers to unchoke; every other peer gets choked. Implementations:
//
//  * LeecherChoker   — mainline leecher state: the 3 interested peers with
//                      the fastest download rate *to* the local peer
//                      (regular unchokes, RU) plus one optimistic unchoke
//                      (OU) re-drawn every 3 rounds (30 s).
//  * NewSeedChoker   — mainline >= 4.0.0 seed state: unchoked-and-
//                      interested peers ordered by most-recent unchoke
//                      time (SKU); two rounds out of three keep the top 3
//                      and add a random choked-and-interested peer (SRU),
//                      the third round keeps the top 4.
//  * OldSeedChoker   — pre-4.0.0 seed state: like the leecher state but
//                      ordered by the upload rate *from* the local peer.
//  * TitForTatChoker — bit-level tit-for-tat baseline from the literature
//                      the paper rebuts (§IV-B.1): a peer is eligible only
//                      while (uploaded-to - downloaded-from) stays under a
//                      byte threshold.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/params.h"
#include "sim/rng.h"

namespace swarmlab::core {

/// Opaque connection identity (stable across rounds for one peer).
using PeerKey = std::uint64_t;

/// One remote peer as seen by the choker at round time.
struct ChokeCandidate {
  PeerKey key = 0;
  bool interested = false;       ///< remote is interested in the local peer
  bool unchoked = false;         ///< local peer currently unchokes it
  double download_rate = 0.0;    ///< bytes/s it sends to the local peer
  double upload_rate = 0.0;      ///< bytes/s the local peer sends to it
  double last_unchoke_time = -1.0;  ///< when we last unchoked it (-1 never)
  std::uint64_t uploaded_to = 0;    ///< lifetime bytes we sent it
  std::uint64_t downloaded_from = 0;  ///< lifetime bytes it sent us
  /// Anti-snubbing: it owes us blocks and has stalled; regular unchokes
  /// skip it (mainline behaviour).
  bool snubbed = false;
  /// Recently connected (drives the optimistic-unchoke bootstrap bias).
  bool newly_connected = false;
};

/// Strategy interface. `round` increments once per choke interval.
class Choker {
 public:
  virtual ~Choker() = default;

  /// Returns the keys to unchoke this round (at most the active set
  /// size); all other candidates are to be choked.
  virtual std::vector<PeerKey> select(
      const std::vector<ChokeCandidate>& candidates, std::uint64_t round,
      sim::Rng& rng) = 0;
};

/// Mainline leecher-state choke algorithm.
class LeecherChoker final : public Choker {
 public:
  explicit LeecherChoker(const ProtocolParams& params)
      : regular_slots_(params.regular_unchoke_slots),
        optimistic_rounds_(params.optimistic_rounds),
        new_peer_weight_(params.optimistic_new_peer_weight) {}

  std::vector<PeerKey> select(const std::vector<ChokeCandidate>& candidates,
                              std::uint64_t round, sim::Rng& rng) override;

  /// The current optimistic-unchoke target (for instrumentation).
  [[nodiscard]] std::optional<PeerKey> optimistic_peer() const {
    return optimistic_;
  }

 private:
  std::uint32_t regular_slots_;
  std::uint32_t optimistic_rounds_;
  std::uint32_t new_peer_weight_;
  std::optional<PeerKey> optimistic_;
};

/// Mainline >= 4.0.0 seed-state choke algorithm (SKU/SRU rotation).
class NewSeedChoker final : public Choker {
 public:
  explicit NewSeedChoker(const ProtocolParams& params)
      : kept_slots_(params.regular_unchoke_slots),
        active_set_(params.active_set_size) {}

  std::vector<PeerKey> select(const std::vector<ChokeCandidate>& candidates,
                              std::uint64_t round, sim::Rng& rng) override;

 private:
  std::uint32_t kept_slots_;   // SKU peers kept in SRU rounds (3)
  std::uint32_t active_set_;   // total slots (4)
};

/// Pre-4.0.0 seed-state algorithm: fastest *uploads from* the local peer.
class OldSeedChoker final : public Choker {
 public:
  explicit OldSeedChoker(const ProtocolParams& params)
      : regular_slots_(params.regular_unchoke_slots),
        optimistic_rounds_(params.optimistic_rounds) {}

  std::vector<PeerKey> select(const std::vector<ChokeCandidate>& candidates,
                              std::uint64_t round, sim::Rng& rng) override;

 private:
  std::uint32_t regular_slots_;
  std::uint32_t optimistic_rounds_;
  std::optional<PeerKey> optimistic_;
};

/// Strawman baseline: unchokes `active_set_size` interested peers chosen
/// uniformly at random every round. No rate feedback, hence no stable
/// reciprocation pairs — the null model for the equilibrium analysis.
class RandomRotationChoker final : public Choker {
 public:
  explicit RandomRotationChoker(const ProtocolParams& params)
      : slots_(params.active_set_size) {}

  std::vector<PeerKey> select(const std::vector<ChokeCandidate>& candidates,
                              std::uint64_t round, sim::Rng& rng) override;

 private:
  std::uint32_t slots_;
};

/// Bit-level tit-for-tat baseline (deficit-gated unchoking).
class TitForTatChoker final : public Choker {
 public:
  explicit TitForTatChoker(const ProtocolParams& params)
      : slots_(params.active_set_size),
        deficit_threshold_(params.tft_deficit_threshold) {}

  std::vector<PeerKey> select(const std::vector<ChokeCandidate>& candidates,
                              std::uint64_t round, sim::Rng& rng) override;

 private:
  std::uint32_t slots_;
  std::uint64_t deficit_threshold_;
};

/// Factories keyed by the params enums.
std::unique_ptr<Choker> make_leecher_choker(const ProtocolParams& params);
std::unique_ptr<Choker> make_seed_choker(const ProtocolParams& params);

}  // namespace swarmlab::core
