#include "core/availability.h"

#include <cassert>

namespace swarmlab::core {

void AvailabilityMap::bump(PieceIndex p, int delta) {
  assert(p < copies_.size());
  const std::uint32_t old_count = copies_[p];
  assert(delta > 0 || old_count > 0);
  const std::uint32_t new_count =
      static_cast<std::uint32_t>(static_cast<int>(old_count) + delta);
  copies_[p] = new_count;
  assert(old_count < buckets_.size() && buckets_[old_count] > 0);
  --buckets_[old_count];
  if (new_count >= buckets_.size()) buckets_.resize(new_count + 1, 0);
  ++buckets_[new_count];
  total_copies_ += delta;
  // Trim empty high buckets so max_copies() stays O(1) amortized.
  while (buckets_.size() > 1 && buckets_.back() == 0) buckets_.pop_back();
}

void AvailabilityMap::add_peer(const Bitfield& have) {
  assert(have.size() == num_pieces());
  const auto& words = have.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    const PieceIndex base =
        static_cast<PieceIndex>(w * Bitfield::kWordBits);
    for (Bitfield::Word m = words[w]; m != 0; m &= m - 1) {
      bump(base + static_cast<PieceIndex>(std::countr_zero(m)), +1);
    }
  }
}

void AvailabilityMap::remove_peer(const Bitfield& have) {
  assert(have.size() == num_pieces());
  const auto& words = have.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    const PieceIndex base =
        static_cast<PieceIndex>(w * Bitfield::kWordBits);
    for (Bitfield::Word m = words[w]; m != 0; m &= m - 1) {
      bump(base + static_cast<PieceIndex>(std::countr_zero(m)), -1);
    }
  }
}

std::uint32_t AvailabilityMap::min_copies() const {
  for (std::uint32_t c = 0; c < buckets_.size(); ++c) {
    if (buckets_[c] > 0) return c;
  }
  return 0;
}

std::uint32_t AvailabilityMap::max_copies() const {
  for (std::uint32_t c = static_cast<std::uint32_t>(buckets_.size()); c > 0;
       --c) {
    if (buckets_[c - 1] > 0) return c - 1;
  }
  return 0;
}

double AvailabilityMap::mean_copies() const {
  if (copies_.empty()) return 0.0;
  return static_cast<double>(total_copies_) /
         static_cast<double>(copies_.size());
}

std::vector<PieceIndex> AvailabilityMap::rarest_set() const {
  const std::uint32_t min = min_copies();
  std::vector<PieceIndex> out;
  out.reserve(rarest_set_size());
  for (std::uint32_t p = 0; p < copies_.size(); ++p) {
    if (copies_[p] == min) out.push_back(p);
  }
  return out;
}

std::uint32_t AvailabilityMap::rarest_set_size() const {
  const std::uint32_t min = min_copies();
  return min < buckets_.size() ? buckets_[min] : 0;
}

}  // namespace swarmlab::core
