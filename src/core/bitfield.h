// Piece possession bitfield.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "wire/geometry.h"

namespace swarmlab::core {

using wire::PieceIndex;

/// A fixed-size set of piece indices, tracking its own cardinality.
class Bitfield {
 public:
  Bitfield() = default;
  explicit Bitfield(std::uint32_t num_pieces) : bits_(num_pieces, false) {}

  /// A bitfield with every piece set (a seed's bitfield).
  static Bitfield full(std::uint32_t num_pieces);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(bits_.size());
  }

  [[nodiscard]] bool has(PieceIndex p) const {
    assert(p < size());
    return bits_[p];
  }

  /// Sets piece `p`; returns true if it was newly set.
  bool set(PieceIndex p);

  /// Clears piece `p`; returns true if it was previously set.
  bool clear(PieceIndex p);

  /// Number of pieces set.
  [[nodiscard]] std::uint32_t count() const { return count_; }

  /// True when every piece is set (seed state).
  [[nodiscard]] bool complete() const { return count_ == size(); }

  /// True when no piece is set.
  [[nodiscard]] bool none() const { return count_ == 0; }

  /// True if `other` has at least one piece this bitfield lacks — i.e.,
  /// whether a peer holding `*this` is *interested* in a peer holding
  /// `other` (paper §II-A).
  [[nodiscard]] bool interested_in(const Bitfield& other) const;

  /// Indices set in this bitfield.
  [[nodiscard]] std::vector<PieceIndex> set_indices() const;

  /// Indices set in `other` but not in this (the pieces we could fetch).
  [[nodiscard]] std::vector<PieceIndex> missing_from(
      const Bitfield& other) const;

  /// Raw bit vector (e.g., for wire::BitfieldMsg).
  [[nodiscard]] const std::vector<bool>& bits() const { return bits_; }

  bool operator==(const Bitfield&) const = default;

 private:
  std::vector<bool> bits_;
  std::uint32_t count_ = 0;
};

}  // namespace swarmlab::core
