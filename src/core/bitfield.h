// Piece possession bitfield.
//
// Packed representation: one std::uint64_t word per 64 pieces, with the
// trailing word's unused high bits always zero (the *trailing-zero
// invariant*). Every set-algebra operation (interest, missing-set,
// counting) runs word-parallel with popcount/ctz instead of per-bit
// branches; see docs/performance.md for the layout and the invariant's
// role in operator== and whole-word loops.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "wire/geometry.h"

namespace swarmlab::core {

using wire::PieceIndex;

/// A fixed-size set of piece indices, tracking its own cardinality.
class Bitfield {
 public:
  /// Storage word. 64 pieces per word.
  using Word = std::uint64_t;
  static constexpr std::uint32_t kWordBits = 64;

  Bitfield() = default;
  explicit Bitfield(std::uint32_t num_pieces)
      : size_(num_pieces), words_(word_count(num_pieces), 0) {}

  /// Packs a wire-format bit vector (e.g. wire::BitfieldMsg::bits).
  explicit Bitfield(const std::vector<bool>& bits);

  /// A bitfield with every piece set (a seed's bitfield).
  static Bitfield full(std::uint32_t num_pieces);

  /// Words needed to hold `num_pieces` bits.
  static constexpr std::size_t word_count(std::uint32_t num_pieces) {
    return (static_cast<std::size_t>(num_pieces) + kWordBits - 1) / kWordBits;
  }

  [[nodiscard]] std::uint32_t size() const { return size_; }

  [[nodiscard]] bool has(PieceIndex p) const {
    assert(p < size());
    return (words_[p / kWordBits] >> (p % kWordBits)) & 1u;
  }

  /// Sets piece `p`; returns true if it was newly set.
  bool set(PieceIndex p);

  /// Clears piece `p`; returns true if it was previously set.
  bool clear(PieceIndex p);

  /// Number of pieces set.
  [[nodiscard]] std::uint32_t count() const { return count_; }

  /// True when every piece is set (seed state).
  [[nodiscard]] bool complete() const { return count_ == size(); }

  /// True when no piece is set.
  [[nodiscard]] bool none() const { return count_ == 0; }

  /// True if `other` has at least one piece this bitfield lacks — i.e.,
  /// whether a peer holding `*this` is *interested* in a peer holding
  /// `other` (paper §II-A). Word-wise ANDNOT; O(pieces / 64).
  [[nodiscard]] bool interested_in(const Bitfield& other) const;

  /// Number of pieces set in `other` but not in this — the size of
  /// missing_from(other) without materializing the vector (interest
  /// checks, reserve hints). O(pieces / 64).
  [[nodiscard]] std::uint32_t count_missing_from(const Bitfield& other) const;

  /// Indices set in this bitfield.
  [[nodiscard]] std::vector<PieceIndex> set_indices() const;

  /// Indices set in `other` but not in this (the pieces we could fetch).
  [[nodiscard]] std::vector<PieceIndex> missing_from(
      const Bitfield& other) const;

  /// Packed words, ascending piece order; the trailing word's bits past
  /// size() are zero. For word-parallel consumers (pickers, availability).
  [[nodiscard]] const std::vector<Word>& words() const { return words_; }

  /// Wire-format bit vector (e.g., for wire::BitfieldMsg). Materialized
  /// on demand; keep off hot paths.
  [[nodiscard]] std::vector<bool> bits() const;

  /// Identical size and membership. The trailing-zero invariant makes the
  /// defaulted word comparison exact.
  bool operator==(const Bitfield&) const = default;

 private:
  std::uint32_t size_ = 0;
  std::uint32_t count_ = 0;
  std::vector<Word> words_;
};

}  // namespace swarmlab::core
