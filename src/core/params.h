// Protocol parameters, defaulting to the mainline 4.0.2 values the paper's
// monitored client uses (§III-C).
#pragma once

#include <cstdint>

namespace swarmlab::core {

/// Which piece-selection strategy a peer runs.
enum class PickerKind {
  kRarestFirst,   // the paper's subject: local rarest first
  kRandom,        // uniform over needed pieces (the classic strawman)
  kSequential,    // in-order (worst case for diversity)
  kGlobalRarest,  // oracle: rarest over the *whole torrent* (coding-like
                  // ideal knowledge baseline, §IV-A.4 discussion)
};

/// Which peer-selection (choke) strategy a peer runs in each state.
enum class LeecherChokerKind {
  kChoke,            // mainline: 3 regular unchokes by download rate + 1 OU
  kTitForTat,        // bit-level tit-for-tat baseline (deficit-gated)
  kRandomRotation,   // strawman: active_set_size random interested peers
                     // re-drawn every round (no rate feedback; used to
                     // isolate the equilibrium the choke algorithm forms)
};

enum class SeedChokerKind {
  kNewSeed,  // mainline >= 4.0.0: SKU/SRU round-robin by last-unchoke time
  kOldSeed,  // pre-4.0.0: order by upload rate from the local peer
};

/// All tunables of a peer. Defaults are the paper's defaults.
struct ProtocolParams {
  // --- peer set / tracker interaction (paper §II-B) ---
  std::uint32_t max_peer_set = 80;
  std::uint32_t min_peer_set = 20;        // below this, re-announce
  std::uint32_t max_initiated = 40;       // outgoing connection cap
  std::uint32_t tracker_peers_per_announce = 50;
  double tracker_reannounce_interval = 1800.0;  // 30 min steady state

  // --- choke algorithm (paper §II-C.2) ---
  double choke_interval = 10.0;           // regular unchoke period
  std::uint32_t regular_unchoke_slots = 3;
  std::uint32_t optimistic_rounds = 3;    // OU rotates every 3 rounds = 30 s
  std::uint32_t active_set_size = 4;      // 3 RU + 1 OU
  // Mainline weights newly connected peers more heavily in the
  // optimistic-unchoke draw ("it allows to bootstrap new peers", §II-C.2).
  std::uint32_t optimistic_new_peer_weight = 3;
  double new_peer_age = 45.0;  // seconds a connection counts as "new"

  // --- piece selection (paper §II-C.1) ---
  std::uint32_t random_first_threshold = 4;  // pieces before rarest first
  bool strict_priority = true;               // finish partial pieces first
  bool end_game = true;                      // duplicate-request tail mode

  // --- request pipeline ---
  std::uint32_t pipeline_depth = 5;  // outstanding block requests per peer

  // --- anti-snubbing (mainline) ---
  // A remote peer that has unchoked us but delivered no block for
  // `snub_timeout` seconds while requests are outstanding is "snubbed"
  // and excluded from regular unchokes (it can still win the optimistic
  // unchoke).
  bool anti_snubbing = true;
  double snub_timeout = 60.0;

  // --- piece integrity ---
  // Verify each completed piece (SHA-1 in a real client; the simulator
  // models a corrupting sender via a taint marker). A failed piece is
  // discarded and re-downloaded; optionally the peers that contributed
  // blocks to it are disconnected.
  bool verify_pieces = true;
  bool ban_corrupt_sources = true;

  // --- strategy selection ---
  PickerKind picker = PickerKind::kRarestFirst;
  LeecherChokerKind leecher_choker = LeecherChokerKind::kChoke;
  SeedChokerKind seed_choker = SeedChokerKind::kNewSeed;

  // Bit-level tit-for-tat baseline: refuse upload when
  // (uploaded - downloaded) exceeds this many bytes (§IV-B.1).
  std::uint64_t tft_deficit_threshold = 2 * 256 * 1024;

  // Super-seeding (extension, §IV-A.4): the initial seed reveals pieces
  // one at a time and only advertises a new piece to a peer after the
  // previously revealed piece shows up at another peer.
  bool super_seeding = false;

  // Fast Extension (BEP 6) behaviour: seeds announce with have_all,
  // empty peers with have_none, and requests that will not be served
  // (choked / dropped on choke) are explicitly rejected instead of
  // silently discarded, letting the requester re-route immediately.
  // Off by default: the paper's mainline 4.0.2 predates BEP 6.
  bool fast_extension = false;

  // --- liveness timers (keepalive / silence / request timeout) ---
  // Mainline sends a keepalive after 2 minutes without traffic and drops
  // peers silent for several minutes. The simulator's graceful departures
  // need none of that (both endpoints always learn of a disconnect), so
  // the timers are OFF by default — keeping fault-free runs byte-identical
  // to pre-fault builds. Fault scenarios (src/fault) enable them swarm-
  // wide: abrupt crashes are detected by silence, lost requests by
  // timeout. Enable on ALL peers or none — a timer-running peer evicts
  // quiet neighbours that never send keepalives.
  bool liveness_timers = false;
  double keepalive_interval = 120.0;      ///< send after this much tx silence
  double silence_timeout = 240.0;         ///< drop a peer silent this long
  double liveness_check_interval = 30.0;  ///< timer granularity
  /// An unchoked link with outstanding requests but no block (and no new
  /// request) for this long returns its blocks to the picker so other
  /// links can re-request them.
  double request_timeout = 60.0;

  // --- tracker announce retry (only reachable when announces can fail,
  // i.e. under injected tracker outages) ---
  double announce_retry_base = 15.0;  ///< first retry delay (doubles)
  double announce_retry_max = 600.0;  ///< backoff cap
};

}  // namespace swarmlab::core
