// Piece availability within a peer set.
//
// Each peer maintains the number of copies of every piece among the peers
// in its peer set (paper §II-C.1) and derives the *rarest pieces set* —
// the pieces with the least number of copies. The map is updated on peer
// join (bitfield), peer leave, and each HAVE message.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bitfield.h"

namespace swarmlab::core {

/// Copy counts per piece over a peer set, with O(1) min-copy tracking.
class AvailabilityMap {
 public:
  AvailabilityMap() = default;
  explicit AvailabilityMap(std::uint32_t num_pieces)
      : copies_(num_pieces, 0), buckets_{} {
    buckets_.push_back(num_pieces);  // all pieces start at 0 copies
  }

  [[nodiscard]] std::uint32_t num_pieces() const {
    return static_cast<std::uint32_t>(copies_.size());
  }

  /// Copies of piece `p` in the peer set.
  [[nodiscard]] std::uint32_t copies(PieceIndex p) const {
    return copies_[p];
  }

  /// A peer with this bitfield joined the peer set.
  void add_peer(const Bitfield& have);

  /// A peer with this bitfield left the peer set.
  void remove_peer(const Bitfield& have);

  /// A peer in the set announced piece `p` (HAVE).
  void add_have(PieceIndex p) { bump(p, +1); }

  /// Fewest copies over all pieces.
  [[nodiscard]] std::uint32_t min_copies() const;

  /// Number of pieces with exactly `c` copies (0 for unoccupied buckets).
  /// Capacity hint for rarest-set consumers (picker tie vectors).
  [[nodiscard]] std::uint32_t bucket(std::uint32_t c) const {
    return c < buckets_.size() ? buckets_[c] : 0;
  }

  /// Most copies over all pieces (O(buckets)).
  [[nodiscard]] std::uint32_t max_copies() const;

  /// Mean copies over all pieces.
  [[nodiscard]] double mean_copies() const;

  /// The rarest pieces set: all pieces whose copy count equals
  /// min_copies() (paper §II-A). O(num_pieces).
  [[nodiscard]] std::vector<PieceIndex> rarest_set() const;

  /// Size of the rarest pieces set without materializing it.
  [[nodiscard]] std::uint32_t rarest_set_size() const;

 private:
  void bump(PieceIndex p, int delta);

  std::vector<std::uint32_t> copies_;
  // buckets_[c] = number of pieces with exactly c copies.
  std::vector<std::uint32_t> buckets_;
  std::int64_t total_copies_ = 0;
};

}  // namespace swarmlab::core
