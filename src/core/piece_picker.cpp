#include "core/piece_picker.h"

#include <bit>
#include <limits>

namespace swarmlab::core {

namespace {

/// Collects the pieces the remote has, the local peer lacks, and the
/// request manager allows starting. Candidate bits come from word-wise
/// `remote & ~local`; `startable` (the only per-piece indirect call) runs
/// only on surviving bits. Ascending index order — the same candidate
/// order as a full scalar scan, so rng.index() draws are unchanged.
std::vector<PieceIndex> eligible_pieces(const PickContext& ctx) {
  assert(ctx.local.size() == ctx.remote.size());
  std::vector<PieceIndex> out;
  out.reserve(ctx.local.count_missing_from(ctx.remote));
  const auto& lw = ctx.local.words();
  const auto& rw = ctx.remote.words();
  for (std::size_t w = 0; w < rw.size(); ++w) {
    const PieceIndex base = static_cast<PieceIndex>(w * Bitfield::kWordBits);
    for (Bitfield::Word m = rw[w] & ~lw[w]; m != 0; m &= m - 1) {
      const PieceIndex p =
          base + static_cast<PieceIndex>(std::countr_zero(m));
      if (ctx.startable(p)) out.push_back(p);
    }
  }
  return out;
}

/// Uniform choice among the eligible pieces with the fewest copies.
///
/// Single ascending pass over the `remote & ~local` words, keeping the
/// ties for the best rarity seen so far — draw-for-draw identical to the
/// reference scalar scan (tests: core_picker_test). The availability
/// buckets bound the work: `best` can never drop below the minimum
/// occupied rarity, and bucket(best) pre-sizes the tie vector.
std::optional<PieceIndex> pick_rarest(const PickContext& ctx, sim::Rng& rng) {
  assert(ctx.local.size() == ctx.remote.size());
  const std::uint32_t floor = ctx.availability.min_copies();
  std::vector<PieceIndex> rarest;
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  const auto& lw = ctx.local.words();
  const auto& rw = ctx.remote.words();
  for (std::size_t w = 0; w < rw.size(); ++w) {
    const PieceIndex base = static_cast<PieceIndex>(w * Bitfield::kWordBits);
    for (Bitfield::Word m = rw[w] & ~lw[w]; m != 0; m &= m - 1) {
      const PieceIndex p =
          base + static_cast<PieceIndex>(std::countr_zero(m));
      const std::uint32_t c = ctx.availability.copies(p);
      // Rarity check first: it is a cheap array load, while `startable`
      // is an indirect call. Pieces rarer than the global floor do not
      // exist, so once `best == floor` this branch rejects everything
      // except exact ties.
      if (c > best) continue;
      if (!ctx.startable(p)) continue;
      if (c < best) {
        best = c;
        rarest.clear();
        rarest.reserve(ctx.availability.bucket(best));
      }
      rarest.push_back(p);
      (void)floor;
      assert(best >= floor);
    }
  }
  if (rarest.empty()) return std::nullopt;
  return rarest[rng.index(rarest.size())];
}

}  // namespace

std::optional<PieceIndex> RarestFirstPicker::pick(const PickContext& ctx,
                                                  sim::Rng& rng) {
  // Random first policy: while fewer than the threshold pieces are
  // complete, pick uniformly — a random piece is likely more replicated
  // than the rarest one, so it downloads faster and gives the newcomer
  // something to reciprocate with (paper §II-C.1).
  if (ctx.pieces_completed < random_first_threshold_) {
    const auto candidates = eligible_pieces(ctx);
    if (candidates.empty()) return std::nullopt;
    return candidates[rng.index(candidates.size())];
  }
  return pick_rarest(ctx, rng);
}

std::optional<PieceIndex> RandomPicker::pick(const PickContext& ctx,
                                             sim::Rng& rng) {
  const auto candidates = eligible_pieces(ctx);
  if (candidates.empty()) return std::nullopt;
  return candidates[rng.index(candidates.size())];
}

std::optional<PieceIndex> SequentialPicker::pick(const PickContext& ctx,
                                                 sim::Rng& rng) {
  (void)rng;
  const auto& lw = ctx.local.words();
  const auto& rw = ctx.remote.words();
  for (std::size_t w = 0; w < rw.size(); ++w) {
    const PieceIndex base = static_cast<PieceIndex>(w * Bitfield::kWordBits);
    for (Bitfield::Word m = rw[w] & ~lw[w]; m != 0; m &= m - 1) {
      const PieceIndex p =
          base + static_cast<PieceIndex>(std::countr_zero(m));
      if (ctx.startable(p)) return p;
    }
  }
  return std::nullopt;
}

namespace {

/// Rarest-first over whatever availability map the context carries, with
/// no random-first warmup. Paired with a torrent-global AvailabilityMap
/// this is the global-knowledge oracle of §IV-A.4.
class GlobalRarestPicker final : public PiecePicker {
 public:
  std::optional<PieceIndex> pick(const PickContext& ctx,
                                 sim::Rng& rng) override {
    return pick_rarest(ctx, rng);
  }
};

}  // namespace

std::unique_ptr<PiecePicker> make_picker(PickerKind kind,
                                         const ProtocolParams& params) {
  switch (kind) {
    case PickerKind::kRarestFirst:
      return std::make_unique<RarestFirstPicker>(
          params.random_first_threshold);
    case PickerKind::kRandom:
      return std::make_unique<RandomPicker>();
    case PickerKind::kSequential:
      return std::make_unique<SequentialPicker>();
    case PickerKind::kGlobalRarest:
      return std::make_unique<GlobalRarestPicker>();
  }
  return std::make_unique<RarestFirstPicker>(params.random_first_threshold);
}

}  // namespace swarmlab::core
