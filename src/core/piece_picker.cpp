#include "core/piece_picker.h"

#include <limits>

namespace swarmlab::core {

namespace {

/// Collects the pieces the remote has, the local peer lacks, and the
/// request manager allows starting.
std::vector<PieceIndex> eligible_pieces(const PickContext& ctx) {
  std::vector<PieceIndex> out;
  for (PieceIndex p = 0; p < ctx.local.size(); ++p) {
    if (!ctx.local.has(p) && ctx.remote.has(p) && ctx.startable(p)) {
      out.push_back(p);
    }
  }
  return out;
}

/// Uniform choice among the eligible pieces with the fewest copies.
std::optional<PieceIndex> pick_rarest(const PickContext& ctx, sim::Rng& rng) {
  std::vector<PieceIndex> rarest;
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (PieceIndex p = 0; p < ctx.local.size(); ++p) {
    if (ctx.local.has(p) || !ctx.remote.has(p) || !ctx.startable(p)) continue;
    const std::uint32_t c = ctx.availability.copies(p);
    if (c < best) {
      best = c;
      rarest.clear();
      rarest.push_back(p);
    } else if (c == best) {
      rarest.push_back(p);
    }
  }
  if (rarest.empty()) return std::nullopt;
  return rarest[rng.index(rarest.size())];
}

}  // namespace

std::optional<PieceIndex> RarestFirstPicker::pick(const PickContext& ctx,
                                                  sim::Rng& rng) {
  // Random first policy: while fewer than the threshold pieces are
  // complete, pick uniformly — a random piece is likely more replicated
  // than the rarest one, so it downloads faster and gives the newcomer
  // something to reciprocate with (paper §II-C.1).
  if (ctx.pieces_completed < random_first_threshold_) {
    const auto candidates = eligible_pieces(ctx);
    if (candidates.empty()) return std::nullopt;
    return candidates[rng.index(candidates.size())];
  }
  return pick_rarest(ctx, rng);
}

std::optional<PieceIndex> RandomPicker::pick(const PickContext& ctx,
                                             sim::Rng& rng) {
  const auto candidates = eligible_pieces(ctx);
  if (candidates.empty()) return std::nullopt;
  return candidates[rng.index(candidates.size())];
}

std::optional<PieceIndex> SequentialPicker::pick(const PickContext& ctx,
                                                 sim::Rng& rng) {
  (void)rng;
  for (PieceIndex p = 0; p < ctx.local.size(); ++p) {
    if (!ctx.local.has(p) && ctx.remote.has(p) && ctx.startable(p)) return p;
  }
  return std::nullopt;
}

namespace {

/// Rarest-first over whatever availability map the context carries, with
/// no random-first warmup. Paired with a torrent-global AvailabilityMap
/// this is the global-knowledge oracle of §IV-A.4.
class GlobalRarestPicker final : public PiecePicker {
 public:
  std::optional<PieceIndex> pick(const PickContext& ctx,
                                 sim::Rng& rng) override {
    return pick_rarest(ctx, rng);
  }
};

}  // namespace

std::unique_ptr<PiecePicker> make_picker(PickerKind kind,
                                         const ProtocolParams& params) {
  switch (kind) {
    case PickerKind::kRarestFirst:
      return std::make_unique<RarestFirstPicker>(
          params.random_first_threshold);
    case PickerKind::kRandom:
      return std::make_unique<RandomPicker>();
    case PickerKind::kSequential:
      return std::make_unique<SequentialPicker>();
    case PickerKind::kGlobalRarest:
      return std::make_unique<GlobalRarestPicker>();
  }
  return std::make_unique<RarestFirstPicker>(params.random_first_threshold);
}

}  // namespace swarmlab::core
