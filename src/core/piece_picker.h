// Piece-selection strategies (paper §II-C.1).
//
// A picker chooses which *new* piece to start downloading from a given
// remote peer. Completing partially downloaded pieces (strict priority)
// and the end game mode operate at the block level and live in the peer's
// request manager; the picker is consulted only when a fresh piece must be
// chosen.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/availability.h"
#include "core/bitfield.h"
#include "core/params.h"
#include "sim/rng.h"

namespace swarmlab::core {

/// Everything a picker may consult when choosing a piece.
struct PickContext {
  /// Pieces the local peer already has (complete + verified).
  const Bitfield& local;
  /// Pieces the remote peer (we are picking for) has.
  const Bitfield& remote;
  /// Copy counts over the local peer set (or the global oracle map for
  /// PickerKind::kGlobalRarest).
  const AvailabilityMap& availability;
  /// Returns false for pieces that must not be (re)started — already in
  /// flight from some peer, or filtered by super-seeding.
  const std::function<bool(PieceIndex)>& startable;
  /// Number of pieces the local peer has completed (drives the
  /// random-first policy).
  std::uint32_t pieces_completed;
};

/// Interface shared by every strategy.
class PiecePicker {
 public:
  virtual ~PiecePicker() = default;

  /// Picks the next piece to start from the remote peer, or nullopt when
  /// nothing startable is available there.
  virtual std::optional<PieceIndex> pick(const PickContext& ctx,
                                         sim::Rng& rng) = 0;
};

/// Local rarest first with the random-first policy: random piece until
/// `random_first_threshold` pieces are complete, then a uniform choice
/// within the rarest (eligible) pieces set.
class RarestFirstPicker final : public PiecePicker {
 public:
  explicit RarestFirstPicker(std::uint32_t random_first_threshold = 4)
      : random_first_threshold_(random_first_threshold) {}

  std::optional<PieceIndex> pick(const PickContext& ctx,
                                 sim::Rng& rng) override;

 private:
  std::uint32_t random_first_threshold_;
};

/// Uniform choice over all eligible pieces (strawman baseline).
class RandomPicker final : public PiecePicker {
 public:
  std::optional<PieceIndex> pick(const PickContext& ctx,
                                 sim::Rng& rng) override;
};

/// Lowest-index-first (diversity worst case).
class SequentialPicker final : public PiecePicker {
 public:
  std::optional<PieceIndex> pick(const PickContext& ctx,
                                 sim::Rng& rng) override;
};

/// Factory. For kGlobalRarest the caller wires a global AvailabilityMap
/// into the PickContext; the picking rule is rarest-first without the
/// random-first warmup (the oracle needs no bootstrap).
std::unique_ptr<PiecePicker> make_picker(PickerKind kind,
                                         const ProtocolParams& params);

}  // namespace swarmlab::core
