#include "core/choker.h"

#include <algorithm>
#include <cassert>

namespace swarmlab::core {

namespace {

/// Stable sort of candidate indices by a strict-weak comparator on the
/// candidates. Stability plus the caller-provided deterministic candidate
/// order keeps runs reproducible.
template <typename Cmp>
std::vector<std::size_t> order_by(const std::vector<ChokeCandidate>& cs,
                                  Cmp cmp) {
  std::vector<std::size_t> idx(cs.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cmp(cs[a], cs[b]);
                   });
  return idx;
}

bool contains(const std::vector<PeerKey>& keys, PeerKey k) {
  return std::find(keys.begin(), keys.end(), k) != keys.end();
}

/// Draws one interested candidate not already selected, uniformly, with
/// newly connected peers entered `new_weight` times (the mainline
/// bootstrap bias; weight 1 = unbiased).
std::optional<PeerKey> random_interested(
    const std::vector<ChokeCandidate>& cs,
    const std::vector<PeerKey>& already, sim::Rng& rng,
    std::uint32_t new_weight = 1) {
  std::vector<PeerKey> pool;
  for (const ChokeCandidate& c : cs) {
    if (!c.interested || contains(already, c.key)) continue;
    const std::uint32_t entries =
        c.newly_connected ? std::max<std::uint32_t>(new_weight, 1) : 1;
    for (std::uint32_t i = 0; i < entries; ++i) pool.push_back(c.key);
  }
  if (pool.empty()) return std::nullopt;
  return pool[rng.index(pool.size())];
}

}  // namespace

std::vector<PeerKey> LeecherChoker::select(
    const std::vector<ChokeCandidate>& candidates, std::uint64_t round,
    sim::Rng& rng) {
  // Step 1 (every round): the `regular_slots_` interested peers with the
  // fastest download rate to the local peer.
  const auto order = order_by(candidates,
                              [](const ChokeCandidate& a,
                                 const ChokeCandidate& b) {
                                return a.download_rate > b.download_rate;
                              });
  std::vector<PeerKey> unchoke;
  for (const std::size_t i : order) {
    if (unchoke.size() >= regular_slots_) break;
    // Snubbed peers never earn a regular unchoke (anti-snubbing); they
    // remain eligible for the optimistic unchoke below.
    if (candidates[i].interested && !candidates[i].snubbed) {
      unchoke.push_back(candidates[i].key);
    }
  }

  // Step 2 (every `optimistic_rounds_` rounds = 30 s): re-draw the
  // optimistic unchoke among interested peers, uniformly at random.
  const bool rotate = (round % optimistic_rounds_) == 0;
  const bool current_valid =
      optimistic_.has_value() &&
      std::any_of(candidates.begin(), candidates.end(),
                  [&](const ChokeCandidate& c) {
                    return c.key == *optimistic_ && c.interested;
                  });
  if (rotate || !current_valid) {
    optimistic_ =
        random_interested(candidates, unchoke, rng, new_peer_weight_);
  }
  if (optimistic_.has_value() && !contains(unchoke, *optimistic_)) {
    unchoke.push_back(*optimistic_);
  }
  return unchoke;
}

std::vector<PeerKey> NewSeedChoker::select(
    const std::vector<ChokeCandidate>& candidates, std::uint64_t round,
    sim::Rng& rng) {
  // Order the *unchoked and interested* peers by the time they were last
  // unchoked, most recent first (SKU ordering).
  std::vector<std::size_t> sku;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].unchoked && candidates[i].interested) sku.push_back(i);
  }
  std::stable_sort(sku.begin(), sku.end(), [&](std::size_t a, std::size_t b) {
    return candidates[a].last_unchoke_time > candidates[b].last_unchoke_time;
  });

  // Two rounds out of three: keep the top `kept_slots_` and add one
  // random choked-and-interested peer (SRU). Third round: keep the top
  // `active_set_`.
  const bool sru_round = (round % 3) != 2;
  const std::uint32_t keep = sru_round ? kept_slots_ : active_set_;
  std::vector<PeerKey> unchoke;
  for (const std::size_t i : sku) {
    if (unchoke.size() >= keep) break;
    unchoke.push_back(candidates[i].key);
  }
  if (sru_round) {
    // SRU pool: choked and interested.
    std::vector<PeerKey> pool;
    for (const ChokeCandidate& c : candidates) {
      if (!c.unchoked && c.interested && !contains(unchoke, c.key)) {
        pool.push_back(c.key);
      }
    }
    if (!pool.empty()) unchoke.push_back(pool[rng.index(pool.size())]);
  }
  // Never exceed the active set; fill spare slots with random interested
  // peers so a seed with few unchoke-history peers still serves 4.
  while (unchoke.size() < active_set_) {
    const auto extra = random_interested(candidates, unchoke, rng);
    if (!extra.has_value()) break;
    unchoke.push_back(*extra);
  }
  if (unchoke.size() > active_set_) unchoke.resize(active_set_);
  return unchoke;
}

std::vector<PeerKey> OldSeedChoker::select(
    const std::vector<ChokeCandidate>& candidates, std::uint64_t round,
    sim::Rng& rng) {
  // Identical schedule to the leecher state, but ordered by the upload
  // rate from the local peer: fast downloaders are favored regardless of
  // their contribution (the unfairness the new algorithm fixes).
  const auto order = order_by(candidates,
                              [](const ChokeCandidate& a,
                                 const ChokeCandidate& b) {
                                return a.upload_rate > b.upload_rate;
                              });
  std::vector<PeerKey> unchoke;
  for (const std::size_t i : order) {
    if (unchoke.size() >= regular_slots_) break;
    if (candidates[i].interested) unchoke.push_back(candidates[i].key);
  }
  const bool rotate = (round % optimistic_rounds_) == 0;
  const bool current_valid =
      optimistic_.has_value() &&
      std::any_of(candidates.begin(), candidates.end(),
                  [&](const ChokeCandidate& c) {
                    return c.key == *optimistic_ && c.interested;
                  });
  if (rotate || !current_valid) {
    optimistic_ = random_interested(candidates, unchoke, rng);
  }
  if (optimistic_.has_value() && !contains(unchoke, *optimistic_)) {
    unchoke.push_back(*optimistic_);
  }
  return unchoke;
}

std::vector<PeerKey> RandomRotationChoker::select(
    const std::vector<ChokeCandidate>& candidates, std::uint64_t round,
    sim::Rng& rng) {
  (void)round;
  std::vector<PeerKey> pool;
  for (const ChokeCandidate& c : candidates) {
    if (c.interested) pool.push_back(c.key);
  }
  rng.shuffle(pool);
  if (pool.size() > slots_) pool.resize(slots_);
  return pool;
}

std::vector<PeerKey> TitForTatChoker::select(
    const std::vector<ChokeCandidate>& candidates, std::uint64_t round,
    sim::Rng& rng) {
  (void)round;
  (void)rng;
  // Deficit gate: a peer is served only while the local peer has not
  // out-uploaded it by more than the threshold. Eligible peers are served
  // fastest-downloader first. Note the paper's critique: excess capacity
  // is stranded (free riders and slow uploaders are starved even when
  // slots sit idle) and a seed (which downloads nothing) can serve nobody
  // once every peer hits the threshold.
  const auto order = order_by(candidates,
                              [](const ChokeCandidate& a,
                                 const ChokeCandidate& b) {
                                return a.download_rate > b.download_rate;
                              });
  std::vector<PeerKey> unchoke;
  for (const std::size_t i : order) {
    if (unchoke.size() >= slots_) break;
    const ChokeCandidate& c = candidates[i];
    if (!c.interested) continue;
    const std::uint64_t deficit =
        c.uploaded_to > c.downloaded_from ? c.uploaded_to - c.downloaded_from
                                          : 0;
    if (deficit <= deficit_threshold_) unchoke.push_back(c.key);
  }
  return unchoke;
}

std::unique_ptr<Choker> make_leecher_choker(const ProtocolParams& params) {
  switch (params.leecher_choker) {
    case LeecherChokerKind::kChoke:
      return std::make_unique<LeecherChoker>(params);
    case LeecherChokerKind::kTitForTat:
      return std::make_unique<TitForTatChoker>(params);
    case LeecherChokerKind::kRandomRotation:
      return std::make_unique<RandomRotationChoker>(params);
  }
  return std::make_unique<LeecherChoker>(params);
}

std::unique_ptr<Choker> make_seed_choker(const ProtocolParams& params) {
  switch (params.seed_choker) {
    case SeedChokerKind::kNewSeed:
      return std::make_unique<NewSeedChoker>(params);
    case SeedChokerKind::kOldSeed:
      return std::make_unique<OldSeedChoker>(params);
  }
  return std::make_unique<NewSeedChoker>(params);
}

}  // namespace swarmlab::core
