// Swarm-scope telemetry probe: one SwarmObserver subscribed (through the
// swarm's ObserverHub) to any subset of peers, aggregating the cross-peer
// series a single instrumented client can never see — piece replication
// entropy, choke/unchoke churn, per-capacity-class upload utilization and
// interested/unchoked matrix occupancy — into a MetricsRegistry.
//
// Strictly passive by construction: the probe schedules no simulator
// events and draws no randomness. Time series are sampled at observer
// callback times, throttled to the configured period, so attaching a
// probe never changes a trajectory (see the digest-under-observation
// test in observer_hub_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "instrument/analyzers.h"
#include "instrument/choke_market.h"
#include "instrument/local_log.h"
#include "instrument/metrics.h"
#include "peer/observer.h"

namespace swarmlab::core {
class AvailabilityMap;
}
namespace swarmlab::peer {
class Peer;
}

namespace swarmlab::instrument {

class SwarmProbe final : public peer::SwarmObserver {
 public:
  struct Options {
    /// Seconds between time-series samples (sampled at callback times,
    /// so an idle swarm produces no samples — and no events).
    double sampling_period = 20.0;
    /// Ring capacity per registered series.
    std::size_t series_capacity = 2048;
    /// Keep full per-peer detail (a LocalPeerLog + ChokeMarketLog per
    /// tracked peer) — required by peer_log() / market_stats() /
    /// unchoke_correlation(); disable for cheap counting-only probes.
    bool per_peer_detail = true;
    /// With per_peer_detail, cap detail to the first N tracked peers
    /// (0 = unlimited, the historical behavior). Peers beyond the cap
    /// still feed every counter, matrix aggregate and time series — only
    /// their per-peer logs are skipped. This is what makes kAll scope
    /// affordable on mega swarms: tracking 10k peers with detail logs is
    /// an allocation storm; capped detail keeps memory O(cap) while the
    /// swarm-level picture stays exact.
    std::uint32_t detail_peer_cap = 0;
  };

  /// Registers its metrics (counters, gauges, series, the tenure
  /// histogram) into `registry` immediately; ids are stable thereafter.
  SwarmProbe(MetricsRegistry& registry, std::uint32_t num_pieces,
             Options opts);
  SwarmProbe(MetricsRegistry& registry, std::uint32_t num_pieces)
      : SwarmProbe(registry, num_pieces, Options()) {}

  /// Read-only peer lookup, bound after the swarm exists; lets the probe
  /// read availability/capacity without an instrument->swarm dependency.
  /// Callbacks arriving before bind() are still counted — only the
  /// peer-state series wait for the resolver.
  using PeerResolver = std::function<const peer::Peer*(peer::PeerId)>;
  void bind(PeerResolver resolver) { resolver_ = std::move(resolver); }

  /// Swarm-global availability oracle for the replication-entropy
  /// series (Swarm::global_availability()); optional.
  void bind_availability(const core::AvailabilityMap* global) {
    global_ = global;
  }

  /// The peer whose availability view feeds the copies_min/mean/max,
  /// rarest_set and peer_set series. Defaults to the first tracked peer
  /// that starts.
  void set_focus(peer::PeerId id) { focus_ = id; }
  [[nodiscard]] peer::PeerId focus() const { return focus_; }

  /// Records one sample row immediately (outside the periodic grid);
  /// benches use it to capture t=0 after bind().
  void force_sample(double t) { sample(t); }

  /// Flushes per-peer detail logs, closes market tenures (filling the
  /// tenure histogram) and records a final sample. Idempotent; call
  /// before querying.
  void finalize(double t);

  // --- queries for migrated benches ------------------------------------
  [[nodiscard]] const LocalPeerLog* peer_log(peer::PeerId id) const;
  /// Market stats for one tracked peer (valid after finalize()).
  [[nodiscard]] MarketStats market_stats(peer::PeerId id) const;
  /// Unchoke/interest correlation for one tracked peer (valid after
  /// finalize()); `seed_state` selects the seed- or leecher-state split.
  [[nodiscard]] UnchokeCorrelation unchoke_correlation(peer::PeerId id,
                                                       bool seed_state) const;
  [[nodiscard]] std::size_t tracked_peers() const { return states_.size(); }
  [[nodiscard]] MetricsRegistry& registry() { return registry_; }

  // --- SwarmObserver ----------------------------------------------------
  void on_start(peer::PeerId self, sim::SimTime t) override;
  void on_stop(peer::PeerId self, sim::SimTime t) override;
  void on_peer_joined(peer::PeerId self, sim::SimTime t,
                      peer::PeerId remote) override;
  void on_peer_left(peer::PeerId self, sim::SimTime t,
                    peer::PeerId remote) override;
  void on_message_sent(peer::PeerId self, sim::SimTime t, peer::PeerId to,
                       const wire::Message& msg) override;
  void on_message_received(peer::PeerId self, sim::SimTime t,
                           peer::PeerId from,
                           const wire::Message& msg) override;
  void on_interest_change(peer::PeerId self, sim::SimTime t,
                          peer::PeerId remote, bool interested) override;
  void on_remote_interest_change(peer::PeerId self, sim::SimTime t,
                                 peer::PeerId remote,
                                 bool interested) override;
  void on_local_choke_change(peer::PeerId self, sim::SimTime t,
                             peer::PeerId remote, bool unchoked) override;
  void on_remote_choke_change(peer::PeerId self, sim::SimTime t,
                              peer::PeerId remote, bool unchoked) override;
  void on_choke_round(peer::PeerId self, sim::SimTime t, bool seed_state,
                      const std::vector<peer::PeerId>& unchoked) override;
  void on_block_received(peer::PeerId self, sim::SimTime t, peer::PeerId from,
                         wire::BlockRef block, std::uint32_t bytes) override;
  void on_block_uploaded(peer::PeerId self, sim::SimTime t, peer::PeerId to,
                         wire::BlockRef block, std::uint32_t bytes) override;
  void on_piece_complete(peer::PeerId self, sim::SimTime t,
                         wire::PieceIndex piece) override;
  void on_piece_failed(peer::PeerId self, sim::SimTime t,
                       wire::PieceIndex piece) override;
  void on_end_game(peer::PeerId self, sim::SimTime t) override;
  void on_became_seed(peer::PeerId self, sim::SimTime t) override;

 private:
  /// One (tracked peer, remote) cell of the interested/unchoked matrix.
  struct Cell {
    bool remote_interested = false;
    bool local_unchoked = false;
  };

  struct PeerState {
    std::unique_ptr<LocalPeerLog> log;        // null unless per_peer_detail
    std::unique_ptr<ChokeMarketLog> market;   // null unless per_peer_detail
    std::map<peer::PeerId, Cell> cells;       // current peer set
    std::uint64_t window_up_bytes = 0;        // since the last sample
    MarketStats stats;                        // filled by finalize()
    bool started = false;
  };

  PeerState& ensure(peer::PeerId self);
  void drop_cells(PeerState& st);
  void maybe_sample(double t);
  void sample(double t);

  MetricsRegistry& registry_;
  std::uint32_t num_pieces_;
  Options opts_;
  PeerResolver resolver_;
  const core::AvailabilityMap* global_ = nullptr;
  peer::PeerId focus_ = peer::kNoPeer;

  std::map<peer::PeerId, PeerState> states_;
  std::size_t detailed_peers_ = 0;  // states_ entries carrying logs

  // Matrix occupancy aggregates, maintained incrementally.
  std::uint64_t total_cells_ = 0;
  std::uint64_t interested_cells_ = 0;
  std::uint64_t unchoked_cells_ = 0;

  // Churn window (reset at each sample).
  std::uint64_t window_unchokes_ = 0;
  std::uint64_t window_chokes_ = 0;

  double next_sample_ = 0.0;
  double last_sample_t_ = 0.0;
  bool finalized_ = false;

  // Metric ids (registration order fixed by the constructor).
  MetricId c_msgs_sent_, c_msgs_recv_, c_blocks_recv_, c_blocks_sent_;
  MetricId c_bytes_down_, c_bytes_up_, c_pieces_done_, c_pieces_failed_;
  MetricId c_joins_, c_leaves_, c_unchokes_, c_chokes_, c_rounds_;
  MetricId c_end_games_, c_became_seeds_, c_starts_, c_stops_;
  MetricId g_tracked_;
  MetricId h_tenure_;
  MetricId s_entropy_, s_churn_, s_interested_, s_unchoked_;
  MetricId s_copies_min_, s_copies_mean_, s_copies_max_;
  MetricId s_rarest_, s_peer_set_;
};

}  // namespace swarmlab::instrument
