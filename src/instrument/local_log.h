// LocalPeerLog: the reproduction of the paper's client instrumentation
// (§III-C). Attached to the local peer as a PeerObserver, it records the
// complete message/choke/event stream and accumulates, per remote peer,
// the interval and byte statistics every figure of §IV is computed from.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "peer/observer.h"
#include "peer/types.h"
#include "wire/geometry.h"

namespace swarmlab::instrument {

/// One block arrival (drives Figs. 7-8).
struct BlockEvent {
  double time = 0.0;
  peer::PeerId from = peer::kNoPeer;
  wire::BlockRef block;
};

/// One piece completion (drives Figs. 7 and 2-6 cross-checks).
struct PieceEvent {
  double time = 0.0;
  wire::PieceIndex piece = 0;
};

/// Everything the local peer learned about one remote peer.
struct RemotePeerRecord {
  peer::PeerId id = peer::kNoPeer;

  // --- interval accumulators (seconds) -----------------------------------
  double time_in_set = 0.0;          ///< total time in the local peer set
  /// Denominator b (= d): remote in peer set, local in leecher state,
  /// remote itself a leecher (paper Fig. 1 is leecher-to-leecher only).
  double time_in_set_leecher = 0.0;
  double local_interested_leecher = 0.0;   ///< numerator a
  double remote_interested_leecher = 0.0;  ///< numerator c
  /// While the local peer is a seed (Fig. 10 bottom):
  double time_in_set_seed = 0.0;
  double remote_interested_seed = 0.0;

  // --- counters -----------------------------------------------------------
  std::uint32_t unchokes_leecher = 0;  ///< times we unchoked it (leecher)
  std::uint32_t unchokes_seed = 0;     ///< times we unchoked it (seed)
  std::uint64_t up_bytes_leecher = 0;
  std::uint64_t up_bytes_seed = 0;
  std::uint64_t down_bytes_from_leecher = 0;  ///< excludes its seed period
  std::uint64_t down_bytes_from_seed = 0;

  /// Pieces we believe the remote holds (bitfield + HAVEs).
  std::uint32_t remote_pieces = 0;
  bool remote_is_seed = false;
  bool ever_remote_seed = false;

  [[nodiscard]] std::uint64_t down_bytes() const {
    return down_bytes_from_leecher + down_bytes_from_seed;
  }
  [[nodiscard]] std::uint64_t up_bytes() const {
    return up_bytes_leecher + up_bytes_seed;
  }
};

/// Counts per wire message type, each direction.
struct MessageCounters {
  std::map<std::string, std::uint64_t> sent;
  std::map<std::string, std::uint64_t> received;
};

/// The instrumented-client log.
class LocalPeerLog final : public peer::PeerObserver {
 public:
  explicit LocalPeerLog(std::uint32_t num_pieces)
      : num_pieces_(num_pieces) {}

  // --- PeerObserver ---------------------------------------------------------
  void on_start(sim::SimTime t) override;
  void on_stop(sim::SimTime t) override;
  void on_peer_joined(sim::SimTime t, peer::PeerId remote) override;
  void on_peer_left(sim::SimTime t, peer::PeerId remote) override;
  void on_message_sent(sim::SimTime t, peer::PeerId to,
                       const wire::Message& msg) override;
  void on_message_received(sim::SimTime t, peer::PeerId from,
                           const wire::Message& msg) override;
  void on_interest_change(sim::SimTime t, peer::PeerId remote,
                          bool interested) override;
  void on_remote_interest_change(sim::SimTime t, peer::PeerId remote,
                                 bool interested) override;
  void on_local_choke_change(sim::SimTime t, peer::PeerId remote,
                             bool unchoked) override;
  void on_remote_choke_change(sim::SimTime t, peer::PeerId remote,
                              bool unchoked) override;
  void on_block_received(sim::SimTime t, peer::PeerId from,
                         wire::BlockRef block, std::uint32_t bytes) override;
  void on_block_uploaded(sim::SimTime t, peer::PeerId to,
                         wire::BlockRef block, std::uint32_t bytes) override;
  void on_piece_complete(sim::SimTime t, wire::PieceIndex piece) override;
  void on_end_game(sim::SimTime t) override;
  void on_became_seed(sim::SimTime t) override;

  // --- queries ------------------------------------------------------------
  /// Flushes interval accumulators up to `t` (call before reading records
  /// mid-run; analyzers call it with the final time).
  void finalize(double t);

  [[nodiscard]] const std::map<peer::PeerId, RemotePeerRecord>& records()
      const {
    return records_;
  }
  [[nodiscard]] const std::vector<PieceEvent>& piece_events() const {
    return piece_events_;
  }
  [[nodiscard]] const std::vector<BlockEvent>& block_events() const {
    return block_events_;
  }
  [[nodiscard]] const MessageCounters& message_counters() const {
    return message_counters_;
  }
  [[nodiscard]] double start_time() const { return start_time_; }
  /// Time the local peer became a seed; -1 if it never completed.
  [[nodiscard]] double seed_time() const { return seed_time_; }
  /// Time end game mode engaged; -1 if never.
  [[nodiscard]] double end_game_time() const { return end_game_time_; }
  [[nodiscard]] bool local_is_seed() const { return local_seed_; }

 private:
  struct LiveState {
    bool in_set = false;
    bool local_interested = false;
    bool remote_interested = false;
    double last_flush = 0.0;
  };

  RemotePeerRecord& record(peer::PeerId id);
  LiveState& live(peer::PeerId id);
  /// Accrues interval time for one remote up to `t`.
  void flush(peer::PeerId id, double t);
  void flush_all(double t);
  void note_remote_pieces(peer::PeerId id, std::uint32_t new_count, double t);

  std::uint32_t num_pieces_;
  std::map<peer::PeerId, RemotePeerRecord> records_;
  std::map<peer::PeerId, LiveState> live_;
  std::vector<PieceEvent> piece_events_;
  std::vector<BlockEvent> block_events_;
  MessageCounters message_counters_;
  double start_time_ = -1.0;
  double seed_time_ = -1.0;
  double end_game_time_ = -1.0;
  bool local_seed_ = false;
};

}  // namespace swarmlab::instrument
