// Full event tracing — the raw material of the paper's analysis ("a log
// of each BitTorrent message sent or received with the detailed content
// of the message, a log of each state change in the choke algorithm, and
// a log of important events", §III-C) — plus an observer fan-out so a
// peer can feed several instruments at once.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "peer/observer.h"

namespace swarmlab::instrument {

/// One trace row.
struct TraceEvent {
  double time = 0.0;
  std::string kind;      ///< "msg_sent", "msg_recv", "choke", "piece", ...
  peer::PeerId remote = peer::kNoPeer;
  std::string detail;    ///< message name / piece index / flag value
};

/// Records every observer callback as a structured row; can render the
/// log as CSV for offline analysis (the paper's trace files).
class TraceWriter final : public peer::PeerObserver {
 public:
  /// `max_events` caps memory (0 = unlimited); past the cap, new events
  /// are dropped and `dropped()` counts them.
  explicit TraceWriter(std::size_t max_events = 0)
      : max_events_(max_events) {}

  void on_start(sim::SimTime t) override;
  void on_stop(sim::SimTime t) override;
  void on_peer_joined(sim::SimTime t, peer::PeerId remote) override;
  void on_peer_left(sim::SimTime t, peer::PeerId remote) override;
  void on_message_sent(sim::SimTime t, peer::PeerId to,
                       const wire::Message& msg) override;
  void on_message_received(sim::SimTime t, peer::PeerId from,
                           const wire::Message& msg) override;
  void on_interest_change(sim::SimTime t, peer::PeerId remote,
                          bool interested) override;
  void on_remote_interest_change(sim::SimTime t, peer::PeerId remote,
                                 bool interested) override;
  void on_local_choke_change(sim::SimTime t, peer::PeerId remote,
                             bool unchoked) override;
  void on_remote_choke_change(sim::SimTime t, peer::PeerId remote,
                              bool unchoked) override;
  void on_choke_round(sim::SimTime t, bool seed_state,
                      const std::vector<peer::PeerId>& unchoked) override;
  void on_block_received(sim::SimTime t, peer::PeerId from,
                         wire::BlockRef block, std::uint32_t bytes) override;
  void on_block_uploaded(sim::SimTime t, peer::PeerId to,
                         wire::BlockRef block, std::uint32_t bytes) override;
  void on_piece_complete(sim::SimTime t, wire::PieceIndex piece) override;
  void on_piece_failed(sim::SimTime t, wire::PieceIndex piece) override;
  void on_end_game(sim::SimTime t) override;
  void on_became_seed(sim::SimTime t) override;

  /// Appends a custom annotation row (same cap/drop accounting as the
  /// observer callbacks). `kind` and `detail` may contain any bytes —
  /// both exports escape them (RFC 4180 quoting / JSON strings).
  void annotate(double t, std::string kind, peer::PeerId remote,
                std::string detail);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// Writes "time,kind,remote,detail" rows (with a header line). Fields
  /// containing a comma, double quote or line break are quoted per
  /// RFC 4180 (quotes doubled); plain fields stay unquoted. When
  /// `max_events` truncated the log, a final sentinel row
  /// `<t>,trace_truncated,0,dropped=<n>` surfaces the loss.
  void write_csv(std::ostream& out) const;

  /// Structured export: one JSON object per line ("swarmlab.trace/1").
  /// Line 1 is a header `{"schema":"swarmlab.trace/1"}`, then one
  /// `{"t":...,"kind":...,"remote":...,"detail":...}` per event, then a
  /// trailer `{"events":N,"dropped":M}` accounting for truncation.
  void write_jsonl(std::ostream& out) const;

 private:
  void push(double t, const char* kind, peer::PeerId remote,
            std::string detail);

  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
  double last_time_ = 0.0;  ///< time of the newest event, dropped or kept
};

/// Fans observer callbacks out to several instruments (e.g., a
/// LocalPeerLog and a TraceWriter on the same peer). Does not own them.
///
/// Mutation is safe during dispatch: an observer added from inside a
/// callback does not receive the in-flight event (only subsequent ones),
/// and a removed observer — including one removing itself — receives no
/// further callbacks of the in-flight event. Dispatch order is attach
/// order.
class ObserverList final : public peer::PeerObserver {
 public:
  /// Appends `observer`; it starts receiving events after the current
  /// dispatch (if any) completes.
  void add(peer::PeerObserver* observer) { observers_.push_back(observer); }

  /// Removes the first occurrence. Safe mid-dispatch (the slot is
  /// nulled and compacted once dispatch unwinds). Returns false when
  /// the observer was not attached.
  bool remove(peer::PeerObserver* observer);

  /// Currently attached observers (excludes slots removed mid-dispatch).
  [[nodiscard]] std::size_t size() const;

  void on_start(sim::SimTime t) override;
  void on_stop(sim::SimTime t) override;
  void on_peer_joined(sim::SimTime t, peer::PeerId remote) override;
  void on_peer_left(sim::SimTime t, peer::PeerId remote) override;
  void on_message_sent(sim::SimTime t, peer::PeerId to,
                       const wire::Message& msg) override;
  void on_message_received(sim::SimTime t, peer::PeerId from,
                           const wire::Message& msg) override;
  void on_interest_change(sim::SimTime t, peer::PeerId remote,
                          bool interested) override;
  void on_remote_interest_change(sim::SimTime t, peer::PeerId remote,
                                 bool interested) override;
  void on_local_choke_change(sim::SimTime t, peer::PeerId remote,
                             bool unchoked) override;
  void on_remote_choke_change(sim::SimTime t, peer::PeerId remote,
                              bool unchoked) override;
  void on_choke_round(sim::SimTime t, bool seed_state,
                      const std::vector<peer::PeerId>& unchoked) override;
  void on_block_received(sim::SimTime t, peer::PeerId from,
                         wire::BlockRef block, std::uint32_t bytes) override;
  void on_block_uploaded(sim::SimTime t, peer::PeerId to,
                         wire::BlockRef block, std::uint32_t bytes) override;
  void on_piece_complete(sim::SimTime t, wire::PieceIndex piece) override;
  void on_piece_failed(sim::SimTime t, wire::PieceIndex piece) override;
  void on_end_game(sim::SimTime t) override;
  void on_became_seed(sim::SimTime t) override;

 private:
  template <typename Fn>
  void dispatch(Fn&& fn);

  std::vector<peer::PeerObserver*> observers_;
  int depth_ = 0;       ///< re-entrant dispatch nesting
  bool dirty_ = false;  ///< null slots awaiting compaction
};

}  // namespace swarmlab::instrument
