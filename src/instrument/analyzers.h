// Analyzers that turn a LocalPeerLog into the paper's reported series.
#pragma once

#include <cstdint>
#include <vector>

#include "instrument/local_log.h"
#include "stats/cdf.h"

namespace swarmlab::instrument {

// --- Fig. 1: entropy characterization -----------------------------------

/// Per-torrent entropy distribution: the a/b and c/d ratios over remote
/// leechers, filtered by the paper's 10-second peer-set-residency rule.
struct EntropyResult {
  std::vector<double> local_interest_ratios;   ///< a/b per remote leecher
  std::vector<double> remote_interest_ratios;  ///< c/d per remote leecher
  double p20_local = 0.0, median_local = 0.0, p80_local = 0.0;
  double p20_remote = 0.0, median_remote = 0.0, p80_remote = 0.0;
};

/// `min_residency` is the paper's noise filter (peers that stayed in the
/// peer set less than 10 s are ignored).
EntropyResult analyze_entropy(const LocalPeerLog& log,
                              double min_residency = 10.0);

// --- Figs. 7-8: interarrival CDFs -----------------------------------------

/// CDFs of interarrival times: all samples, the first `k`, the last `k`.
struct InterarrivalResult {
  stats::Cdf all;
  stats::Cdf first_k;
  stats::Cdf last_k;
};

/// Piece completion interarrival times (Fig. 7). The first sample is the
/// gap from the download start to the first completion.
InterarrivalResult analyze_piece_interarrival(const LocalPeerLog& log,
                                              std::size_t k = 100);

/// Block arrival interarrival times (Fig. 8).
InterarrivalResult analyze_block_interarrival(const LocalPeerLog& log,
                                              std::size_t k = 100);

// --- Figs. 9 and 11: contribution by sets of 5 remote peers -----------------

/// Contribution of the best-downloader sets of `set_size` peers.
struct ContributionSets {
  /// set_fraction[i] = share of total bytes contributed by set i (set 0 =
  /// the 5 peers that received the most).
  std::vector<double> upload_fraction;
  /// Share of total *download* that came from the same sets (Fig. 9
  /// bottom; seeds excluded per the paper).
  std::vector<double> download_fraction;
  std::uint64_t total_uploaded = 0;
  std::uint64_t total_downloaded_from_leechers = 0;
};

/// Leecher-state contributions (Fig. 9): sets ordered by bytes uploaded
/// in leecher state; download side counts only bytes from leechers.
ContributionSets analyze_leecher_fairness(const LocalPeerLog& log,
                                          std::size_t set_size = 5,
                                          std::size_t num_sets = 6);

/// Seed-state contributions (Fig. 11): sets ordered by bytes uploaded in
/// seed state (download side is empty — a seed downloads nothing).
ContributionSets analyze_seed_fairness(const LocalPeerLog& log,
                                       std::size_t set_size = 5,
                                       std::size_t num_sets = 6);

// --- Fig. 10: unchoke count vs interested time -------------------------------

/// Scatter of (interested time, number of unchokes) per remote peer plus
/// rank correlation, one per local-peer state.
struct UnchokeCorrelation {
  std::vector<double> interested_time;
  std::vector<double> unchokes;
  double spearman = 0.0;
  double pearson = 0.0;
};

UnchokeCorrelation analyze_unchoke_correlation_leecher(
    const LocalPeerLog& log);
UnchokeCorrelation analyze_unchoke_correlation_seed(const LocalPeerLog& log);

}  // namespace swarmlab::instrument
