#include "instrument/metrics.h"

#include <algorithm>

namespace swarmlab::instrument {

MetricId MetricsRegistry::intern(std::string name, Kind kind) {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) {
      return metrics_[i].kind == kind ? static_cast<MetricId>(i) : kNoMetric;
    }
  }
  Metric m;
  m.name = std::move(name);
  m.kind = kind;
  metrics_.push_back(std::move(m));
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId MetricsRegistry::counter(std::string name) {
  return intern(std::move(name), Kind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string name) {
  return intern(std::move(name), Kind::kGauge);
}

MetricId MetricsRegistry::histogram(std::string name,
                                    std::vector<double> upper_bounds) {
  if (!std::is_sorted(upper_bounds.begin(), upper_bounds.end()) ||
      std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) !=
          upper_bounds.end()) {
    return kNoMetric;
  }
  const MetricId id = intern(std::move(name), Kind::kHistogram);
  if (id == kNoMetric) return id;
  Metric& m = metrics_[id];
  if (m.counts.empty()) {
    // First registration fixes the bucket layout.
    m.bounds = std::move(upper_bounds);
    m.counts.assign(m.bounds.size() + 1, 0);
  }
  return id;
}

MetricId MetricsRegistry::series(std::string name, std::size_t capacity) {
  const MetricId id = intern(std::move(name), Kind::kSeries);
  if (id == kNoMetric) return id;
  Metric& m = metrics_[id];
  if (m.capacity == 0) {
    m.capacity = capacity == 0 ? 1 : capacity;
    m.ring.reserve(std::min<std::size_t>(m.capacity, 1024));
  }
  return id;
}

MetricId MetricsRegistry::find(std::string_view name) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) return static_cast<MetricId>(i);
  }
  return kNoMetric;
}

MetricsRegistry::Metric* MetricsRegistry::slot(MetricId id, Kind kind) {
  if (id >= metrics_.size() || metrics_[id].kind != kind) return nullptr;
  return &metrics_[id];
}

const MetricsRegistry::Metric* MetricsRegistry::slot(MetricId id,
                                                     Kind kind) const {
  if (id >= metrics_.size() || metrics_[id].kind != kind) return nullptr;
  return &metrics_[id];
}

void MetricsRegistry::add(MetricId id, double delta) {
  if (Metric* m = slot(id, Kind::kCounter)) {
    m->value += delta;
    ++m->total;
  }
}

void MetricsRegistry::set(MetricId id, double value) {
  if (Metric* m = slot(id, Kind::kGauge)) {
    m->value = value;
    ++m->total;
  }
}

void MetricsRegistry::observe(MetricId id, double value) {
  if (Metric* m = slot(id, Kind::kHistogram)) {
    const auto it =
        std::lower_bound(m->bounds.begin(), m->bounds.end(), value);
    const auto bucket =
        static_cast<std::size_t>(std::distance(m->bounds.begin(), it));
    ++m->counts[bucket];
    m->value += value;
    ++m->total;
  }
}

void MetricsRegistry::record(MetricId id, double time, double value) {
  if (Metric* m = slot(id, Kind::kSeries)) {
    if (m->ring.size() < m->capacity) {
      m->ring.push_back(stats::Sample{time, value});
    } else {
      m->ring[m->head] = stats::Sample{time, value};
      m->head = (m->head + 1) % m->capacity;
    }
    ++m->total;
  }
}

double MetricsRegistry::value(MetricId id) const {
  if (id >= metrics_.size()) return 0.0;
  return metrics_[id].value;
}

const std::vector<double>& MetricsRegistry::bounds(MetricId id) const {
  static const std::vector<double> kEmpty;
  const Metric* m = slot(id, Kind::kHistogram);
  return m != nullptr ? m->bounds : kEmpty;
}

const std::vector<std::uint64_t>& MetricsRegistry::counts(MetricId id) const {
  static const std::vector<std::uint64_t> kEmpty;
  const Metric* m = slot(id, Kind::kHistogram);
  return m != nullptr ? m->counts : kEmpty;
}

std::vector<stats::Sample> MetricsRegistry::samples(MetricId id) const {
  const Metric* m = slot(id, Kind::kSeries);
  if (m == nullptr) return {};
  std::vector<stats::Sample> out;
  out.reserve(m->ring.size());
  // head is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < m->ring.size(); ++i) {
    out.push_back(m->ring[(m->head + i) % m->ring.size()]);
  }
  return out;
}

std::uint64_t MetricsRegistry::dropped(MetricId id) const {
  const Metric* m = slot(id, Kind::kSeries);
  if (m == nullptr) return 0;
  return m->total - m->ring.size();
}

}  // namespace swarmlab::instrument
